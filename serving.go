package exflow

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/expertmem"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ServePhase describes one era of offered traffic for Serve.
type ServePhase struct {
	// Name labels the phase in the report (default "phaseN").
	Name string
	// Duration is the phase length in simulated seconds.
	Duration float64
	// Rate is the mean request arrival rate in requests/second; zero means
	// ServeOptions.LoadFrac times the calibrated fleet capacity.
	Rate float64
	// Arrival selects the process: "poisson" (default), "bursty", "diurnal".
	Arrival string
	// Dataset is the token domain profile requests draw from; nil means the
	// system's profiling dataset (no drift).
	Dataset *synth.DatasetProfile
}

// ServeOptions configures Serve.
type ServeOptions struct {
	// Replicas is the number of expert-parallel replicas (default 2).
	Replicas int
	// MaxBatch is each replica's continuous-batching slot limit (default
	// 4 * GPUs).
	MaxBatch int
	// DecodeTokens is the per-request decode length (default 32).
	DecodeTokens int
	// ProfileTokens sizes the offline profiling trace that seeds both the
	// initial placement and the drift baseline (default 3000).
	ProfileTokens int
	// LoadFrac sets phase rates left at zero, as a fraction of the fleet's
	// calibrated token capacity (default 0.9 — near the knee, where placement
	// quality matters most).
	LoadFrac float64
	// CalibIters is the decode-iteration count of each calibration engine
	// run (default 3).
	CalibIters int
	// Phases is the traffic program; empty means one 30-second in-distribution
	// Poisson phase.
	Phases []ServePhase

	// Adaptive enables online re-placement; false serves the static
	// offline placement forever (the paper's deployment model).
	Adaptive bool
	// Window, CheckInterval, Patience, Cooldown, MinGain tune the drift
	// detector and controller; zero values take the serve package defaults.
	// DriftThreshold zero is auto-calibrated to 3x the in-distribution
	// sampling-noise floor measured on a held-out profiling slice.
	Window         int
	CheckInterval  float64
	DriftThreshold float64
	Patience       int
	Cooldown       float64
	MinGain        float64
	// SolveSeconds is the simulated latency of one background re-solve: the
	// controller solves on a snapshot of the live window while the fleet
	// keeps serving, charging the time to the simulated clock as overlap
	// rather than pause. A solve that lands after routing has drifted past
	// the detector threshold again is discarded (staleness guard; see
	// ServeReport.DiscardedSolves). Zero models an instantaneous solve.
	SolveSeconds float64
	// SolveWorkers is the annealing portfolio width of background re-solves
	// (and of the initial placement when set on the System): that many
	// independently seeded replicas solve concurrently and the best
	// objective wins, deterministically. 0 or 1 solves serially.
	SolveWorkers int
	// Oversubscription enables tiered expert-weight memory: each replica
	// GPU's HBM holds assigned-expert-weights/ratio expert slots and the
	// rest page from host DRAM over the topology's host link
	// (internal/expertmem). 0 disables the memory layer; 1 builds it with
	// everything resident (no stalls, by construction); 2 means half the
	// expert weights fit; values in (0, 1) are rejected.
	Oversubscription float64
	// CachePolicy selects the residency policy under oversubscription:
	// "lru", "lfu", "pin" (static pin-by-popularity), or "affinity" (the
	// default: affinity-mass eviction plus affinity-guided prefetching).
	CachePolicy string
	// PrefetchK is how many affinity successors the prefetcher chases per
	// routed expert (default 4; affinity policy only).
	PrefetchK int
	// HostSlots bounds how many expert master copies fit in host DRAM per
	// replica; the coldest experts by affinity popularity fall through to
	// NVMe and pay both hops on a fetch. 0 means everything fits in DRAM.
	HostSlots int
	// MemoryAware folds the expected expert-stall cost into the adaptive
	// controller's re-placement objective (see
	// System.SolvePlacementMemoryAware for the initial-placement
	// counterpart): live re-solves then price hot-set concentration
	// alongside crossings, and each MigrationEvent reports its predicted vs
	// realized stall-per-token delta. Requires Oversubscription >= 1; at
	// exactly 1 the term is inactive and re-solves stay bit-identical to
	// the crossing-only path.
	MemoryAware bool
	// ResidencyModel selects the residency model memory-aware re-solves
	// price with: "static" (or empty — the top-Slots warm set) or "che"
	// (Che-approximation fractional occupancy with prefetch-coverage
	// discount); each MigrationEvent's PredictedStallDelta is computed with
	// the selected model. Requires MemoryAware (or a fleet with paging
	// admission, which prices requests with the same oracle); static keeps
	// re-solves bit-identical to previous releases.
	ResidencyModel string
	// ReplicaBudget is the extra-copy budget the adaptive controller's
	// background re-solves carry (see System.SolvePlacementReplicated for
	// the initial-placement counterpart, threaded in via Calibration): each
	// re-solve may keep up to this many expert copies beyond the
	// one-per-expert primaries, the rollout installs and drops them like
	// migrations, and the router splits tokens across live copies
	// least-loaded-first. Requires Adaptive; zero keeps every re-solve
	// single-copy, bit-identical to the pre-replication controller.
	ReplicaBudget int
	// DispatchImbalance charges the Alltoall dispatch straggler in the
	// iteration-cost model: the fitted hop costs are batch means (all links
	// equally loaded), but bulk-synchronous dispatch completes when the
	// most-loaded receiving GPU's link drains, so with this on the hop cost
	// scales per iteration by the inbound-row imbalance factor. This is the
	// load concentration expert replication flattens — the replication
	// frontier turns it on for every arm, single-copy reference included,
	// so budgets compete under one model. Off (the default) keeps the
	// mean-hop model, bit-identical to previous releases.
	DispatchImbalance bool
	// StallTrigger arms the stall-rate migration trigger: the controller
	// also fires a re-solve when the charged expert-stall seconds per token
	// trend up at a stable routing mix — residency decay the drift detector
	// cannot see. Requires Adaptive and Oversubscription >= 1.
	StallTrigger bool
	// StallTriggerFactor is how far above its observed minimum the stall
	// rate must rise before the trigger fires (default 1.5).
	StallTriggerFactor float64
	// Fleet enables the node-level fleet tier (internal/fleet): a shared
	// host-DRAM master-copy cache across co-located replicas, a declarative
	// reconciliation-loop autoscaler on the simulated clock, and
	// admission control priced on predicted paging cost. Nil disables the
	// tier; the serve path is then bit-identical to previous releases.
	Fleet *FleetSpec
	// Chaos declares a fault-injection schedule for the run (see
	// internal/chaos): replica crashes with timed recoveries, degraded-link
	// windows, fetch stall-timeout retry with exponential backoff, and
	// preemptible speculative DMA. Nil (or an empty schedule) disables the
	// layer with zero overhead — the run is bit-identical to one without it.
	// Fault outcomes are ledgered in ServeReport.Faults. The memory-path
	// faults (FetchTimeout, PreemptibleDMA, link degradation) act on the
	// tiered memory layer and require Oversubscription >= 1; crashes only
	// require Replicas >= 2 (replica 0 anchors the fleet and cannot crash).
	Chaos *ChaosSchedule
	// Trace, when non-nil, records typed simulator events (admissions,
	// iteration spans, per-layer expert stalls, prefetch traffic, solver
	// lifecycle, migration pauses) into a bounded ring; export it with
	// obs.WritePerfetto for a Chrome/Perfetto-loadable timeline. Nil
	// disables tracing with zero overhead.
	Trace *obs.Tracer
	// Metrics, when non-nil, collects counters, gauges, and histograms from
	// every layer of the run (serve_*, controller_*, expertmem_*, solver_*);
	// the end-of-run snapshot is returned in ServeReport.Metrics. Nil
	// disables collection with zero overhead.
	Metrics *obs.Registry
	// Decisions, when non-nil, records a human-readable log line for every
	// controller decision (observe, skip, solve launch, discard, reject,
	// accept, migration completion) with the inputs that drove it.
	Decisions *obs.DecisionLog
	// AutoSolveSeconds derives the simulated background-solve latency from
	// the solver's measured host wall clock (running mean of completed
	// solves) instead of the fixed SolveSeconds. An explicit SolveSeconds > 0
	// always wins. The first solve uses SolveSecondsPrior; when that is zero
	// too, Serve seeds it with the calibration's measured initial-placement
	// solve wall (ServeCalibration.SolveWallSeconds).
	AutoSolveSeconds bool
	// SolveSecondsPrior seeds the AutoSolveSeconds estimate before any
	// background solve has completed. Requires AutoSolveSeconds.
	SolveSecondsPrior float64
	// LatencyBucket is the report time-bucket width in seconds (0 = auto).
	LatencyBucket float64
	// Calibration, when set, reuses offline artifacts from a previous
	// CalibrateServe call instead of re-profiling and re-running the engine —
	// the static-vs-adaptive comparisons share one calibration this way.
	Calibration *ServeCalibration
	// Seed overrides the system seed for the serving run (0 = system seed).
	Seed uint64
}

// Validate rejects malformed serving options up front — before the
// expensive engine calibration runs, and with a field-naming error instead
// of a deep panic (negative TraceWindow capacity) or a silent degeneration
// (a negative arrival rate would spin the arrival generator forever). Zero
// values are legal everywhere they mean "use the default".
func (o ServeOptions) Validate() error {
	switch {
	case o.Replicas < 0:
		return fmt.Errorf("exflow: Replicas must be positive (zero for the default %d), got %d", serve.DefaultReplicas, o.Replicas)
	case o.Window < 0:
		return fmt.Errorf("exflow: TraceWindow capacity must be positive (zero for the default %d), got %d", serve.DefaultWindow, o.Window)
	case o.MaxBatch < 0:
		return fmt.Errorf("exflow: MaxBatch must be positive (zero for the default), got %d", o.MaxBatch)
	case o.DecodeTokens < 0:
		return fmt.Errorf("exflow: DecodeTokens must be positive (zero for the default), got %d", o.DecodeTokens)
	case o.ProfileTokens < 0:
		return fmt.Errorf("exflow: ProfileTokens must be positive (zero for the default), got %d", o.ProfileTokens)
	case o.LoadFrac < 0:
		return fmt.Errorf("exflow: LoadFrac must be positive (zero for the default), got %v", o.LoadFrac)
	case o.CalibIters < 0:
		return fmt.Errorf("exflow: CalibIters must be positive (zero for the default), got %d", o.CalibIters)
	case o.CheckInterval < 0 || o.DriftThreshold < 0 || o.Patience < 0 || o.Cooldown < 0 ||
		o.MinGain < 0 || o.LatencyBucket < 0 || o.PrefetchK < 0 ||
		o.SolveSeconds < 0 || o.SolveWorkers < 0 || o.SolveSecondsPrior < 0:
		return fmt.Errorf("exflow: detector/controller tunables must be non-negative")
	case o.SolveSecondsPrior > 0 && !o.AutoSolveSeconds:
		// A prior without the estimator does nothing; rejected so the caller
		// notices the missing flag.
		return fmt.Errorf("exflow: SolveSecondsPrior set but AutoSolveSeconds is off; enable AutoSolveSeconds or drop the prior")
	case o.Oversubscription < 0 || (o.Oversubscription > 0 && o.Oversubscription < 1):
		return fmt.Errorf("exflow: Oversubscription must be 0 (off) or >= 1, got %v", o.Oversubscription)
	case o.HostSlots < 0:
		return fmt.Errorf("exflow: HostSlots must be non-negative, got %d", o.HostSlots)
	case o.Oversubscription == 0 && o.HostSlots > 0:
		// Without the memory layer there is no host tier to bound; the option
		// would silently do nothing, which almost always means the caller
		// forgot Oversubscription.
		return fmt.Errorf("exflow: HostSlots %d set but Oversubscription is 0 (memory layer disabled); set Oversubscription >= 1 or drop HostSlots", o.HostSlots)
	case o.Oversubscription == 0 && o.CachePolicy != "":
		// Rejected rather than silently ignored: a policy without the memory
		// layer does nothing, which almost always means the caller meant to
		// set Oversubscription too.
		return fmt.Errorf("exflow: CachePolicy %q set but Oversubscription is 0 (memory layer disabled); set Oversubscription >= 1 or drop the policy", o.CachePolicy)
	case o.Oversubscription == 0 && o.MemoryAware:
		return fmt.Errorf("exflow: MemoryAware requires the tiered memory layer; set Oversubscription >= 1")
	case o.ResidencyModel != "" && !o.MemoryAware &&
		!(o.Fleet != nil && o.Fleet.Admission == FleetAdmissionPaging):
		// A residency model without a consumer prices nothing; rejected so
		// the caller notices the missing flag. Paging admission is the one
		// consumer besides MemoryAware.
		return fmt.Errorf("exflow: ResidencyModel %q set but MemoryAware is off; enable MemoryAware or drop the model", o.ResidencyModel)
	case o.ReplicaBudget < 0:
		return fmt.Errorf("exflow: ReplicaBudget must be non-negative, got %d", o.ReplicaBudget)
	case o.ReplicaBudget > 0 && !o.Adaptive:
		// Only the adaptive controller's re-solves consume the budget; a
		// replicated *initial* placement arrives via Calibration.Placement
		// (System.SolvePlacementReplicated), not this knob.
		return fmt.Errorf("exflow: ReplicaBudget requires the adaptive controller; enable Adaptive or solve the initial placement with SolvePlacementReplicated")
	case o.StallTriggerFactor < 0:
		return fmt.Errorf("exflow: StallTriggerFactor must be non-negative, got %v", o.StallTriggerFactor)
	case o.StallTriggerFactor > 0 && !o.StallTrigger:
		return fmt.Errorf("exflow: StallTriggerFactor set but StallTrigger is off; enable it or drop the factor")
	case o.StallTrigger && o.Oversubscription == 0:
		return fmt.Errorf("exflow: StallTrigger watches tiered-memory stalls; set Oversubscription >= 1")
	case o.StallTrigger && !o.Adaptive:
		return fmt.Errorf("exflow: StallTrigger requires the adaptive controller; enable Adaptive")
	}
	if o.Fleet != nil {
		reps := o.Replicas
		if reps == 0 {
			reps = serve.DefaultReplicas
		}
		if err := o.Fleet.Validate(reps); err != nil {
			return err
		}
		if o.Fleet.SharedHostCache && o.Oversubscription == 0 {
			return fmt.Errorf("exflow: Fleet.SharedHostCache requires the tiered memory layer; set Oversubscription >= 1")
		}
		if o.Fleet.SharedHostCache && o.HostSlots == 0 {
			return fmt.Errorf("exflow: Fleet.SharedHostCache without HostSlots is inert (every master fits in DRAM); set HostSlots or drop the shared cache")
		}
		if o.Fleet.Admission == FleetAdmissionPaging && o.Oversubscription == 0 {
			return fmt.Errorf("exflow: Fleet paging admission prices tiered-memory stalls; set Oversubscription >= 1")
		}
	}
	if o.Oversubscription > 0 {
		if _, err := expertmem.ParsePolicy(o.CachePolicy); err != nil {
			return err
		}
	}
	if err := o.Chaos.Validate(); err != nil {
		return err
	}
	if o.Oversubscription == 0 && o.Chaos != nil &&
		(o.Chaos.FetchTimeout > 0 || o.Chaos.PreemptibleDMA || o.Chaos.Degraded()) {
		// Mirrors the serve layer's check (both-layer validation convention).
		return fmt.Errorf("exflow: Chaos memory-path faults (fetch timeout, preemptible DMA, link degrade) touch the tiered memory layer; set Oversubscription >= 1")
	}
	if _, err := placement.ParseResidencyModel(o.ResidencyModel); err != nil {
		return err
	}
	for i, p := range o.Phases {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("phase%d", i)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("exflow: phase %q needs a positive Duration, got %v", name, p.Duration)
		}
		if p.Rate < 0 {
			return fmt.Errorf("exflow: phase %q arrival rate must be positive (zero to derive it from LoadFrac), got %v", name, p.Rate)
		}
		if _, err := serve.ParseArrivalKind(p.Arrival); err != nil {
			return fmt.Errorf("exflow: phase %q: %w", name, err)
		}
	}
	return nil
}

// ServeReport is the outcome of a serving run (see internal/serve.Report).
type ServeReport = serve.Report

// FleetSpec declares the fleet tier's desired state (see internal/fleet):
// shared host-DRAM master cache, autoscaler bounds and cadences, and the
// admission policy. FleetReport is its run summary (ServeReport.Fleet).
type (
	FleetSpec   = fleet.Spec
	FleetReport = fleet.Report
)

// FleetAdmissionQueue and FleetAdmissionPaging name the fleet tier's
// admission policies: the queue-depth baseline and the paging-cost pricer.
const (
	FleetAdmissionQueue  = fleet.AdmissionQueue
	FleetAdmissionPaging = fleet.AdmissionPaging
)

// ChaosSchedule declares a fault-injection program for Serve (see
// internal/chaos): build one from ChaosCrash / ChaosCrashForever /
// ChaosDegradeLink faults plus the fetch-timeout and preemptible-DMA knobs.
// ChaosReport is the per-run fault ledger (ServeReport.Faults).
type (
	ChaosSchedule = chaos.Schedule
	ChaosFault    = chaos.Fault
	ChaosReport   = chaos.Report
)

// ChaosCrash, ChaosCrashForever, and ChaosDegradeLink construct the typed
// faults a ChaosSchedule is built from.
var (
	ChaosCrash        = chaos.Crash
	ChaosCrashForever = chaos.CrashForever
	ChaosDegradeLink  = chaos.DegradeLink
)

// ServeMetrics bundles what Serve derived before simulating: the fitted
// iteration-cost model and the capacity planning numbers.
type ServeMetrics struct {
	Cost workload.LocalityModel
	// TokenCapacity is one replica's asymptotic decode tokens/second at full
	// batch under the initial placement's locality.
	TokenCapacity float64
	// RequestCapacity is the fleet-wide request/second capacity at
	// DecodeTokens per request.
	RequestCapacity float64
	// FracNode / FracCross are the initial placement's dispatch fractions
	// measured during calibration.
	FracNode, FracCross float64
}

// Serve runs the online serving subsystem on top of a System: it profiles
// the model, solves the initial ExFlow placement, fits the locality-aware
// iteration-cost model from real engine runs, and then drives the
// multi-replica continuous-batching simulation — with live routing-drift
// detection and (when opts.Adaptive) background expert re-placement.
func Serve(sys *System, opts ServeOptions) (*ServeReport, *ServeMetrics, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	opts = opts.withDefaults(sys)
	seed := opts.Seed
	if seed == 0 {
		seed = sys.Seed
	}

	// Resolve the traffic program first: a malformed phase should fail fast,
	// before the expensive engine calibration runs. Zero rates are filled in
	// after calibration, once the capacity knee is known.
	phases := opts.Phases
	if len(phases) == 0 {
		phases = []ServePhase{{Name: "steady", Duration: 30}}
	}
	var sphases []serve.Phase
	for i, p := range phases {
		kind, err := serve.ParseArrivalKind(p.Arrival)
		if err != nil {
			return nil, nil, err
		}
		ds := p.Dataset
		if ds == nil {
			ds = sys.Dataset
		}
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("phase%d", i)
		}
		sphases = append(sphases, serve.Phase{
			Name: name, Duration: p.Duration, Rate: p.Rate, Kind: kind, Dataset: ds,
		})
	}

	cal := opts.Calibration
	if cal == nil {
		var err error
		if cal, err = CalibrateServe(sys, opts); err != nil {
			return nil, nil, err
		}
	}
	met := cal.Metrics

	for i := range sphases {
		if sphases[i].Rate == 0 {
			sphases[i].Rate = opts.LoadFrac * met.RequestCapacity
		}
	}

	prior := opts.SolveSecondsPrior
	if opts.AutoSolveSeconds && prior == 0 {
		// Seed the estimator with the measured initial-placement solve wall:
		// the closest available analogue of a background re-solve.
		prior = cal.SolveWallSeconds
	}

	rep, err := serve.Run(serve.Options{
		Topo:               sys.Topo,
		Kernel:             sys.Kernel,
		TopK:               sys.Model.Cfg.TopK,
		Placement:          cal.Placement,
		BaselineCounts:     cal.Trace.AllTransitionCounts(),
		Cost:               met.Cost,
		ExpertBytes:        int(sys.Model.Cfg.ExpertParams()) * 2, // fp16
		Replicas:           opts.Replicas,
		MaxBatch:           opts.MaxBatch,
		DecodeTokens:       opts.DecodeTokens,
		Phases:             sphases,
		Adaptive:           opts.Adaptive,
		Window:             opts.Window,
		CheckInterval:      opts.CheckInterval,
		DriftThreshold:     cal.DriftThreshold,
		Patience:           opts.Patience,
		Cooldown:           opts.Cooldown,
		MinGain:            opts.MinGain,
		SolveSeconds:       opts.SolveSeconds,
		SolveWorkers:       opts.SolveWorkers,
		Oversubscription:   opts.Oversubscription,
		CachePolicy:        opts.CachePolicy,
		PrefetchK:          opts.PrefetchK,
		HostSlots:          opts.HostSlots,
		MemoryAware:        opts.MemoryAware,
		ResidencyModel:     opts.ResidencyModel,
		ReplicaBudget:      opts.ReplicaBudget,
		DispatchImbalance:  opts.DispatchImbalance,
		StallTrigger:       opts.StallTrigger,
		StallTriggerFactor: opts.StallTriggerFactor,
		Fleet:              opts.Fleet,
		Chaos:              opts.Chaos,
		LatencyBucket:      opts.LatencyBucket,
		Seed:               seed,
		Trace:              opts.Trace,
		Metrics:            opts.Metrics,
		Decisions:          opts.Decisions,
		AutoSolveSeconds:   opts.AutoSolveSeconds,
		SolveSecondsPrior:  prior,
	})
	if err != nil {
		return nil, nil, err
	}
	m := met
	return rep, &m, nil
}

// ServeCalibration bundles the offline artifacts Serve needs before it can
// simulate: the profiling trace, the initial placement solved from it, the
// engine-fit cost model, and the resolved drift threshold. Compute it once
// with CalibrateServe and pass it via ServeOptions.Calibration to share
// across runs (e.g. a static-vs-adaptive comparison), halving the dominant
// engine-calibration cost.
type ServeCalibration struct {
	Trace          *trace.Trace
	Placement      *placement.Placement
	Metrics        ServeMetrics
	DriftThreshold float64
	// SolveWallSeconds is the measured host wall clock of the initial
	// placement solve — the prior ServeOptions.AutoSolveSeconds seeds its
	// latency estimate with before any background re-solve has completed.
	SolveWallSeconds float64
}

// CalibrateServe profiles the system, solves the initial placement, fits
// the locality-aware iteration-cost model from real engine runs, and
// resolves the drift threshold.
func CalibrateServe(sys *System, opts ServeOptions) (*ServeCalibration, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(sys)
	tr := sys.Profile(opts.ProfileTokens)
	// Time the initial solve on whichever clock the caller's registry uses
	// (tests pin it via SetNow; no registry reads the real wall clock).
	clock := opts.Metrics
	if clock == nil {
		clock = obs.NewRegistry()
	}
	t0 := clock.Now()
	pl := sys.SolvePlacement(tr)
	solveWall := clock.Now() - t0

	threshold := opts.DriftThreshold
	if threshold == 0 {
		threshold = calibrateDriftThreshold(sys, tr, opts.Window)
	}

	cost, fracNode, fracCross, err := fitLocalityModel(sys, pl, opts.CalibIters)
	if err != nil {
		return nil, fmt.Errorf("exflow: serve calibration failed: %w", err)
	}
	met := ServeMetrics{Cost: cost, FracNode: fracNode, FracCross: fracCross}
	met.TokenCapacity = float64(opts.MaxBatch) / cost.Time(opts.MaxBatch, fracNode, fracCross)
	met.RequestCapacity = met.TokenCapacity * float64(opts.Replicas) / float64(opts.DecodeTokens)
	return &ServeCalibration{Trace: tr, Placement: pl, Metrics: met, DriftThreshold: threshold, SolveWallSeconds: solveWall}, nil
}

// withDefaults resolves the option defaults Serve and CalibrateServe share.
func (o ServeOptions) withDefaults(sys *System) ServeOptions {
	if o.ProfileTokens == 0 {
		o.ProfileTokens = 3000
	}
	if o.LoadFrac == 0 {
		o.LoadFrac = 0.9
	}
	if o.DecodeTokens == 0 {
		o.DecodeTokens = 32
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 4 * sys.Topo.TotalGPUs()
	}
	if o.CalibIters == 0 {
		o.CalibIters = 3
	}
	if o.Replicas == 0 {
		o.Replicas = serve.DefaultReplicas
	}
	if o.Window == 0 {
		o.Window = serve.DefaultWindow
	}
	return o
}

// calibrateDriftThreshold bootstraps the detector threshold from the model
// itself: it scores a held-out, window-sized slice of in-distribution
// traffic against the profiling baseline — pure sampling noise — and sets
// the threshold at three times that floor. This keeps the detector quiet on
// the profiled distribution while firing on genuine mixture shift, whatever
// the window size, layer count, and expert count imply for the noise scale.
func calibrateDriftThreshold(sys *System, tr *trace.Trace, window int) float64 {
	held := sys.ProfileOn(sys.Dataset, window, 1<<21)
	experts := sys.Model.Cfg.Experts
	noise := serve.Divergence(serve.JS,
		serve.Pool(tr.AllTransitionCounts(), experts),
		serve.Pool(held.AllTransitionCounts(), experts))
	return 3 * noise
}

// fitLocalityModel measures the engine at three placements of different
// dispatch locality (contiguous, random, affinity-staged), two batch sizes
// each, and least-squares fits the locality-aware iteration-cost model. It
// returns the model plus the staged placement's measured dispatch fractions.
func fitLocalityModel(sys *System, staged *placement.Placement, iters int) (workload.LocalityModel, float64, float64, error) {
	cfg := sys.Model.Cfg
	gpus := sys.Topo.TotalGPUs()
	placements := []struct {
		pl   *placement.Placement
		mode engine.Mode
	}{
		{sys.Baseline(), engine.ContextCoherent},
		{placement.Random(cfg.Layers, cfg.Experts, gpus, sys.Seed+0xBAD), engine.ContextCoherent},
		{staged, engine.ExFlow},
	}
	var points []workload.LocalityPoint
	var fracNode, fracCross float64
	for pi, p := range placements {
		for _, perGPU := range []int{2, 8} {
			rep := sys.Run(p.mode, p.pl, Workload{RequestsPerGPU: perGPU, PromptLen: 8, GenerateTokens: iters})
			total := rep.DispatchSameGPU + rep.DispatchSameNode + rep.DispatchCrossNode
			if total == 0 {
				return workload.LocalityModel{}, 0, 0, fmt.Errorf("calibration run produced no dispatches")
			}
			fn := float64(rep.DispatchSameNode) / float64(total)
			fc := float64(rep.DispatchCrossNode) / float64(total)
			points = append(points, workload.LocalityPoint{
				Batch:     perGPU * gpus,
				FracNode:  fn,
				FracCross: fc,
				Seconds:   (rep.SimSeconds - rep.Breakdown["prefill"]) / float64(iters),
			})
			if pi == len(placements)-1 {
				fracNode, fracCross = fn, fc
			}
		}
	}
	m, err := workload.FitLocalityModel(points)
	return m, fracNode, fracCross, err
}

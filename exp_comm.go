package exflow

import (
	"repro/internal/engine"
	"repro/internal/moe"
)

func init() {
	register("table1", runTable1)
	register("fig6", runFig6)
	register("fig9", runFig9)
}

// runTable1 reproduces Table I: forward-pass communication volume per
// method. The analytic entries use the paper's formulas with the token
// ratios p (vanilla) and p* (ExFlow) measured from actual engine runs; the
// measured rows are the engine's byte counters.
func runTable1(opts ExperimentOptions) *Result {
	res := &Result{ID: "table1", Title: "Forward communication volume: Deepspeed-MoE vs ExFlow (top-1 gating)"}
	cfg := moe.GPTM(32)
	cfg.Layers = opts.scaled(24, 6)
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 16, Seed: opts.Seed})
	w := Workload{RequestsPerGPU: opts.scaled(8, 2), GenerateTokens: opts.scaled(4, 2)}

	base := sys.Run(engine.Vanilla, sys.Baseline(), w)
	pl := sys.SolvePlacement(sys.Profile(opts.scaled(3000, 400)))
	noAff := sys.Run(engine.ContextCoherent, sys.Baseline(), w)
	exf := sys.Run(engine.ExFlow, pl, w)

	g := float64(sys.Topo.TotalGPUs())
	n := float64(w.withDefaults().RequestsPerGPU)
	l := float64(cfg.Layers)
	iters := float64(w.withDefaults().GenerateTokens)
	unit := float64(cfg.TokenWireBytes())
	// Measured dispatch ratios: fraction of tokens leaving their GPU.
	p := 1 - base.FracDispatchLocal()
	pStar := 1 - exf.FracDispatchLocal()

	tb := newTableHelper(res, "per-iteration comm volume (token-activation units of G*N)", "row")
	formula := tb.NewSeries("analytic")
	measured := tb.NewSeries("measured-bytes")
	// Deepspeed: 2 * G*N*L*p token units per iteration.
	formula.Add(1, 2*l*p)
	measured.Add(1, float64(base.AlltoallBytes)/(g*n*unit*iters))
	// ExFlow: G*N*(L*p* + G) -> per G*N unit: L*p* + G... the +G models the
	// allgather fan-out (each token replicated to all GPUs).
	formula.Add(2, l*pStar+g)
	measured.Add(2, (float64(exf.AlltoallBytes)+float64(exf.AllgatherBytes))/(g*n*unit*iters))
	// Context coherence alone: L*p' + G with the contiguous placement.
	pPrime := 1 - noAff.FracDispatchLocal()
	formula.Add(3, l*pPrime+g)
	measured.Add(3, (float64(noAff.AlltoallBytes)+float64(noAff.AllgatherBytes))/(g*n*unit*iters))

	res.AddNote("rows: 1=Deepspeed-MoE (2 Alltoalls), 2=ExFlow w/ affinity, 3=context coherence only")
	res.AddNote("measured token-leave ratios: p=%.3f (vanilla), p'=%.3f (coherent, contiguous), p*=%.3f (ExFlow)", p, pPrime, pStar)
	res.AddNote("paper claim: ExFlow needs G*N*(L*p*+G) vs Deepspeed 2*G*N*L*p, with p* << p")
	if pStar >= p {
		res.AddNote("WARNING: p* >= p; affinity placement ineffective at this scale")
	}
	return res
}

// fig6Config is one bar group of Fig 6.
type fig6Config struct {
	label string
	model moe.Config
	gpus  int
}

// runFig6 reproduces Fig 6: total communication latency of the baseline
// (two Alltoalls per layer) vs the context-coherent design (one Alltoall
// plus an end-of-iteration Allgather), across model variants and
// expert-parallel sizes, normalized to each group's baseline.
func runFig6(opts ExperimentOptions) *Result {
	res := &Result{ID: "fig6", Title: "Scaled communication latency: baseline vs context-coherent Alltoall + Allgather"}
	shrinkL := func(c moe.Config) moe.Config {
		c.Layers = opts.scaled(c.Layers, 6)
		return c
	}
	groups := []fig6Config{
		{"8E@8", shrinkL(moe.GPTM(8)), 8},
		{"16E@8", shrinkL(moe.GPTM(16)), 8},
		{"32E@8", shrinkL(moe.GPTM(32)), 8},
		{"64E@8", shrinkL(moe.GPTM(64)), 8},
		{"32E@16", shrinkL(moe.GPTM(32)), 16},
		{"64E@16", shrinkL(moe.GPTM(64)), 16},
		{"32E-32L@32", shrinkL(moe.GPTM32L()), 32},
		{"32E-40L@32", shrinkL(moe.GPTM40L()), 32},
		{"64E@32", shrinkL(moe.GPTM(64)), 32},
		{"64E@64", shrinkL(moe.GPTM(64)), 64},
	}
	tb := newTableHelper(res, "scaled communication latency (baseline Alltoall = 1.0)", "group")
	sBase := tb.NewSeries("baseline-alltoall")
	sCohA2A := tb.NewSeries("coherent-alltoall")
	sCohAG := tb.NewSeries("coherent-allgather")
	w := Workload{RequestsPerGPU: opts.scaled(8, 2), GenerateTokens: opts.scaled(3, 2)}
	for gi, grp := range groups {
		sys := NewSystem(SystemOptions{Model: grp.model, GPUs: grp.gpus, Seed: opts.Seed})
		base := sys.Run(engine.Vanilla, sys.Baseline(), w)
		coh := sys.Run(engine.ContextCoherent, sys.Baseline(), w)
		denom := base.Breakdown["alltoall"]
		if denom == 0 {
			denom = 1
		}
		x := float64(gi)
		sBase.Add(x, 1.0)
		sCohA2A.Add(x, coh.Breakdown["alltoall"]/denom)
		sCohAG.Add(x, coh.Breakdown["allgather"]/denom)
		res.AddNote("group %d = %s (%s): coherent cuts alltoall to %.0f%% of baseline, allgather adds %.0f%%",
			gi, grp.label, grp.model.Name,
			100*coh.Breakdown["alltoall"]/denom, 100*coh.Breakdown["allgather"]/denom)
	}
	res.AddNote("paper: coherent Alltoall drops by >50%%; Allgather overhead is small and shrinks further for 32/40-layer models")
	return res
}

// runFig9 reproduces Fig 9: the proportion of time spent in gating,
// Alltoall, attention and expert FFN on 1/2/4/8 nodes under vanilla expert
// parallelism.
func runFig9(opts ExperimentOptions) *Result {
	res := &Result{ID: "fig9", Title: "Operation time proportions under vanilla expert parallelism (GPT-M MoE-32)"}
	cfg := moe.GPTM(32)
	cfg.Layers = opts.scaled(24, 6)
	tb := newTableHelper(res, "share of decode time per operation", "nodes")
	sGate := tb.NewSeries("gating")
	sA2A := tb.NewSeries("alltoall")
	sAttn := tb.NewSeries("attention")
	sFFN := tb.NewSeries("expert-ffn")
	w := Workload{RequestsPerGPU: opts.scaled(32, 4), GenerateTokens: opts.scaled(3, 2)}
	for _, nodes := range []int{1, 2, 4, 8} {
		sys := NewSystem(SystemOptions{Model: cfg, GPUs: nodes * 4, Seed: opts.Seed})
		rep := sys.Run(engine.Vanilla, sys.Baseline(), w)
		total := rep.ComputeSeconds() + rep.Breakdown["alltoall"]
		sGate.Add(float64(nodes), rep.Breakdown["gating"]/total)
		sA2A.Add(float64(nodes), rep.Breakdown["alltoall"]/total)
		sAttn.Add(float64(nodes), rep.Breakdown["attention"]/total)
		sFFN.Add(float64(nodes), rep.Breakdown["expert"]/total)
		res.AddNote("%d node(s): alltoall share %.1f%%", nodes, 100*rep.Breakdown["alltoall"]/total)
	}
	res.AddNote("paper: ~15%% on 1 node, ~63%% on 2, ~70%% on 4, ~76%% on 8 — inference becomes communication-bound as nodes are added")
	return res
}

// Multinode: staged (node-aware) expert affinity on a 4-node cluster.
//
// This example reproduces the paper's Section IV-C scenario: each GPU holds
// four experts per layer, NVLink joins GPUs inside a node and InfiniBand
// joins nodes. The staged solver first minimizes inter-node token hops,
// then intra-node hops, so a token that must leave its GPU lands on a
// sibling GPU rather than another node.
//
//	go run ./examples/multinode
package main

import (
	"fmt"

	"repro"
	"repro/internal/engine"
	"repro/internal/moe"
	"repro/internal/placement"
)

func main() {
	sys := exflow.NewSystem(exflow.SystemOptions{
		Model: moe.GPTM(64), // 64 experts -> 4 per GPU on 16 GPUs
		GPUs:  16,           // 4 nodes x 4 GPUs
		Seed:  7,
	})
	tr := sys.Profile(4000)
	counts := tr.AllTransitionCounts()
	total := float64(tr.Tokens() * (tr.Layers - 1))

	flat := placement.Solve(counts, tr.Layers, tr.Experts, 16, 7)
	staged := sys.SolvePlacement(tr) // node-first, then GPU
	base := sys.Baseline()

	fmt.Printf("placement comparison on %s:\n\n", sys.Topo)
	fmt.Printf("%-20s %12s %12s\n", "strategy", "cross-gpu", "cross-node")
	for _, row := range []struct {
		name string
		pl   *placement.Placement
	}{{"contiguous", base}, {"flat solver", flat}, {"staged solver", staged}} {
		fmt.Printf("%-20s %11.1f%% %11.1f%%\n", row.name,
			100*row.pl.Crossings(counts)/total,
			100*row.pl.NodeCrossings(counts, sys.Topo.GPUsPerNode)/total)
	}

	// End to end, the fewer inter-node hops translate into throughput.
	w := exflow.Workload{RequestsPerGPU: 8, PromptLen: 16, GenerateTokens: 4}
	repBase := sys.Run(engine.Vanilla, base, w)
	repFlat := sys.Run(engine.ExFlow, flat, w)
	repStaged := sys.Run(engine.ExFlow, staged, w)
	fmt.Printf("\nthroughput: baseline %.0f, flat %.0f, staged %.0f sim tok/s\n",
		repBase.Throughput, repFlat.Throughput, repStaged.Throughput)
	fmt.Printf("staged speedup over baseline: %.2fx\n", repStaged.Throughput/repBase.Throughput)
	fmt.Printf("intra-node dispatches: baseline %.1f%%, staged %.1f%%\n",
		repBase.FracDispatchIntraNode()*100, repStaged.FracDispatchIntraNode()*100)
}

// Learned gate: affinity is not an assumption — it emerges from training.
//
// This example trains a real softmax gate (cross-entropy + GShard auxiliary
// load-balancing loss) against an affinity-bearing teacher, watches
// inter-layer affinity appear in the *learned* routing, then runs the full
// ExFlow pipeline (profile -> place -> infer) on the trained gate.
//
//	go run ./examples/learnedgate
package main

import (
	"fmt"

	"repro/internal/affinity"
	"repro/internal/engine"
	"repro/internal/moe"
	"repro/internal/placement"
	"repro/internal/topo"
	"repro/internal/train"
)

func main() {
	const (
		layers  = 6
		experts = 16
		gpus    = 8
	)
	tr := train.New(train.Config{Layers: layers, Experts: experts, Seed: 3})

	fmt.Println("training a gate against an affinity-bearing teacher:")
	fmt.Printf("%-8s %10s %14s %16s\n", "steps", "accuracy", "top2-affinity", "placement-gain")
	for _, steps := range []int{0, 50, 100, 200, 400} {
		for tr.Step() < steps {
			tr.TrainSteps(1)
		}
		student := tr.TraceStudent(2000, 7)
		aff := affinity.Estimate(student)
		counts := student.AllTransitionCounts()
		base := placement.Contiguous(layers, experts, 4).Crossings(counts)
		solved := placement.Solve(counts, layers, experts, 4, 1).Crossings(counts)
		gain := base / solved
		fmt.Printf("%-8d %9.1f%% %14.3f %15.2fx\n",
			steps, tr.Accuracy(150)*100, aff.Concentration(2), gain)
	}

	// Full pipeline on the trained router.
	cfg := moe.GPTM(experts)
	cfg.Layers = layers
	mdl := moe.NewModel(cfg, 3)
	router := tr.StudentRouter()
	tp := topo.ForGPUs(gpus)
	student := tr.TraceStudent(3000, 99)
	pl := placement.Staged(student.AllTransitionCounts(), layers, experts, tp, 3)

	runOnce := func(mode engine.Mode, p *placement.Placement) *engine.Report {
		return engine.Run(engine.Config{
			Model: mdl, Router: router, Topo: tp, Placement: p, Mode: mode,
			Cost:           moe.DefaultCostModel(),
			RequestsPerGPU: 8, PromptLen: 12, GenerateTokens: 4, Seed: 3,
		})
	}
	base := runOnce(engine.Vanilla, placement.Contiguous(layers, experts, gpus))
	exf := runOnce(engine.ExFlow, pl)
	fmt.Printf("\nend-to-end on the trained gate (%d GPUs):\n", gpus)
	fmt.Printf("  vanilla: %8.0f sim tok/s, %5.1f%% local dispatches\n", base.Throughput, base.FracDispatchLocal()*100)
	fmt.Printf("  exflow:  %8.0f sim tok/s, %5.1f%% local dispatches\n", exf.Throughput, exf.FracDispatchLocal()*100)
	fmt.Printf("  speedup: %.2fx\n", exf.Throughput/base.Throughput)
}

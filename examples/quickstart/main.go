// Quickstart: the full ExFlow pipeline in ~40 lines.
//
// We build a GPT-M MoE-32 system on 8 simulated GPUs (2 NVLink nodes joined
// by InfiniBand), profile its expert routing on sample tokens, solve the
// staged affinity placement, and compare inference throughput against the
// Deepspeed-style baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
	"repro/internal/engine"
	"repro/internal/moe"
)

func main() {
	sys := exflow.NewSystem(exflow.SystemOptions{
		Model: moe.GPTM(32), // 24 layers x 32 experts, d=1024
		GPUs:  8,            // 2 nodes x 4 GPUs
		Seed:  1,
	})

	// 1. Profile: trace which expert each sample token visits per layer.
	tr := sys.Profile(3000)
	fmt.Printf("profiled %d tokens across %d layers\n", tr.Tokens(), tr.Layers)

	// 2. Place: two-stage (node-first, then GPU) affinity optimization.
	pl := sys.SolvePlacement(tr)
	counts := tr.AllTransitionCounts()
	fmt.Printf("cross-GPU transitions: baseline %.0f -> exflow %.0f\n",
		sys.Baseline().Crossings(counts), pl.Crossings(counts))

	// 3. Run: same workload under all three schemes.
	w := exflow.Workload{RequestsPerGPU: 8, PromptLen: 16, GenerateTokens: 4}
	base := sys.Run(engine.Vanilla, sys.Baseline(), w)
	coh := sys.Run(engine.ContextCoherent, sys.Baseline(), w)
	exf := sys.Run(engine.ExFlow, pl, w)

	fmt.Printf("\n%-18s %14s %16s %12s\n", "mode", "sim tok/s", "alltoall bytes", "local disp")
	for _, rep := range []*engine.Report{base, coh, exf} {
		fmt.Printf("%-18s %14.0f %16d %11.1f%%\n",
			rep.Mode, rep.Throughput, rep.AlltoallBytes, rep.FracDispatchLocal()*100)
	}
	fmt.Printf("\nExFlow speedup over Deepspeed baseline: %.2fx\n", exf.Throughput/base.Throughput)

	// The optimization never changes results: identical generated tokens.
	same := true
	for r := range base.Outputs {
		for i := range base.Outputs[r] {
			same = same && base.Outputs[r][i] == exf.Outputs[r][i]
		}
	}
	fmt.Printf("identical outputs across modes: %v\n", same)
}

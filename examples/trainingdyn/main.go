// Training dynamics: how expert affinity emerges during MoE pre-training
// (the paper's Figs 11 and 12).
//
// The training-evolution model starts with routing collapsed onto a few
// experts (random gate), spreads under GShard-style load balancing, then
// specializes. We measure the achievable locality (solved Formula 8) at a
// series of checkpoints — the paper's "scaled expert affinity".
//
//	go run ./examples/trainingdyn
package main

import (
	"fmt"
	"strings"

	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

const (
	layers  = 12
	experts = 32
	gpus    = 4
	tokens  = 1500
)

func main() {
	ev := synth.NewEvolution(3, layers, experts)

	fmt.Println("expert load at the last MoE layer (Fig 11):")
	fmt.Printf("%-10s %12s %12s %10s\n", "iteration", "max share", "top-4 share", "gini")
	for _, iter := range []int{0, 100, 300, 600, 1000, 2000} {
		shares := ev.LoadShares(iter, 4000)
		top4 := stats.NewHeatmap("", [][]float64{shares}).DominantColumnFraction(4)
		fmt.Printf("%-10d %11.1f%% %11.1f%% %10.3f\n",
			iter, stats.Max(shares)*100, top4*100, stats.GiniImbalance(shares))
	}

	fmt.Println("\nscaled expert affinity (Fig 12): achievable locality from solved placement")
	iters := []int{0, 200, 400, 800, 2000, 6000, 10000, 14000, 18000}
	raw := make([]float64, len(iters))
	for i, iter := range iters {
		k := ev.KernelAt(iter)
		router := synth.NewKernelRouter(k, synth.Pile(), 1)
		ids := make([]uint64, tokens)
		for j := range ids {
			ids[j] = rng.Mix64(uint64(iter), 0xD, uint64(j))
		}
		tr := trace.Collect(router, layers, ids)
		counts := tr.AllTransitionCounts()
		pl := placement.LayerSweep(counts, layers, experts, gpus, placement.LayerSweepOptions{})
		raw[i] = 1 - pl.Crossings(counts)/float64(tr.Tokens()*(layers-1))
	}
	scaled := stats.ScaleTo(raw, 1)
	for i, iter := range iters {
		bar := strings.Repeat("#", int(scaled[i]*50))
		fmt.Printf("%6d %5.3f |%-50s|\n", iter, scaled[i], bar)
	}
	fmt.Println("\nshape: high at iter 0 (collapsed routing), dips while balancing, climbs and stabilizes as experts specialize")
}

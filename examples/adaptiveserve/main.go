// Adaptive serving quickstart: keep the ExFlow placement fresh while the
// traffic drifts under it.
//
// The paper computes its expert placement once, offline, from a profiling
// trace. This example runs the online layer above it: a two-replica
// continuous-batching fleet serves a domain-specialized MoE checkpoint near
// its capacity knee while the traffic mixture shifts mid-run from the broad
// profiling distribution to a narrow viral burst. The serving subsystem
// watches live routing transitions in a sliding window, detects the drift
// (Jensen-Shannon divergence against the profiled baseline), re-solves the
// placement on the live window in the background, and migrates experts
// replica by replica — paying a visible parameter-copy pause, then serving
// at a lower cross-node dispatch fraction than the stale placement.
//
//	go run ./examples/adaptiveserve
package main

import (
	"fmt"

	"repro"
	"repro/internal/moe"
)

func main() {
	cfg := moe.GPTM(32)
	cfg.Layers = 12
	sys := exflow.NewSystem(exflow.SystemOptions{
		Model:      cfg,
		GPUs:       16, // 4 nodes x 4 GPUs per replica
		DomainTilt: 8,  // a domain-specialized checkpoint: routing follows traffic
		Seed:       7,
	})

	opts := exflow.ServeOptions{
		Replicas:     2,
		DecodeTokens: 32,
		LoadFrac:     0.95, // near the knee, where placement quality is latency
		SolveSeconds: 0.25, // the re-solve overlaps serving; only the copy pauses
		SolveWorkers: 4,    // deterministic 4-replica solve portfolio
		Phases: []exflow.ServePhase{
			{Name: "warm", Duration: 10},                                  // profiled distribution
			{Name: "drift", Duration: 20, Dataset: exflow.ViralDataset()}, // viral burst
		},
	}

	// Calibrate once (profiling + engine runs), share across both fleets.
	cal, err := exflow.CalibrateServe(sys, opts)
	if err != nil {
		panic(err)
	}
	opts.Calibration = cal

	fmt.Println("static fleet (offline placement, never re-placed):")
	opts.Adaptive = false
	static, met, err := exflow.Serve(sys, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  calibrated capacity %.0f tok/s per replica (cross-node hop costs %.2fus/token)\n",
		met.TokenCapacity, met.Cost.PerCrossHop*1e6)
	fmt.Print(static)

	fmt.Println("\nadaptive fleet (drift detection + live expert re-placement):")
	opts.Adaptive = true
	adaptive, _, err := exflow.Serve(sys, opts)
	if err != nil {
		panic(err)
	}
	fmt.Print(adaptive)

	tail0, tail1 := 20.0, 30.0
	st, ad := static.WindowStats(tail0, tail1), adaptive.WindowStats(tail0, tail1)
	fmt.Printf("\nafter the fleet settles (last 10s): static P95 %.3fs, adaptive P95 %.3fs\n", st.P95, ad.P95)
	for _, m := range adaptive.Migrations {
		fmt.Printf("the re-placement solved for %.0fms in the background (serving continued), then moved %d experts (%d cross-node) for a %.0fms pause per replica\n",
			m.SolveSeconds*1e3, m.Moves, m.CrossNodeMoves, m.Seconds*1e3)
	}
	if adaptive.DiscardedSolves > 0 {
		fmt.Printf("%d of %d background solves were discarded by the staleness guard\n",
			adaptive.DiscardedSolves, adaptive.Solves)
	}
}

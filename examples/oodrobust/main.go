// OOD robustness: expert affinity profiled on one corpus transfers to
// out-of-distribution corpora (the paper's Table III).
//
// The placement is solved from Pile-analogue traces only, then evaluated on
// C4/Dolma/Yelp analogues. Because affinity is a property of the *model*
// (its experts' specializations), not of the profiling data, locality holds
// within ~1% across datasets.
//
//	go run ./examples/oodrobust
package main

import (
	"fmt"

	"repro"
	"repro/internal/moe"
	"repro/internal/synth"
)

func main() {
	sys := exflow.NewSystem(exflow.SystemOptions{
		Model:   moe.GPTM(32),
		GPUs:    8,
		Dataset: synth.Pile(),
		Seed:    11,
	})

	// Solve placement from Pile only.
	pl := sys.SolvePlacement(sys.Profile(4000))

	fmt.Printf("%-10s %12s %12s %14s %14s\n", "dataset", "intra-gpu", "intra-node", "norm(gpu)", "norm(node)")
	var pileGPU, pileNode float64
	for i, ds := range synth.AllDatasets() {
		tr := sys.ProfileOn(ds, 5000, 1<<21)
		loc := pl.Locality(tr, sys.Topo)
		if i == 0 {
			pileGPU, pileNode = loc.FracSameGPU, loc.FracIntraNode
		}
		fmt.Printf("%-10s %11.1f%% %11.1f%% %14.3f %14.3f\n", ds.Name,
			loc.FracSameGPU*100, loc.FracIntraNode*100,
			loc.FracSameGPU/pileGPU, loc.FracIntraNode/pileNode)
	}
	fmt.Println("\npaper Table III: all normalized entries within ~1% of 1.000")
}

package exflow

import (
	"repro/internal/engine"
	"repro/internal/expertmem"
	"repro/internal/moe"
	"repro/internal/placement"
	"repro/internal/stats"
)

// seriesLast returns a series' most recent y value (0 when empty).
func seriesLast(s *stats.Series) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

func init() {
	register("placement_memory", runPlacementMemory)
}

// runPlacementMemory quantifies the ROADMAP's "co-locating affinity chains
// also concentrates the hot set" interaction on the offline path: at each
// oversubscription ratio it solves the placement twice — crossing-only
// (the paper's objective) and memory-aware (expected expert-stall folded
// into the annealer) — and measures both through full engine runs under
// tiered expert-weight memory. The model's predicted stall per token is
// reported alongside the engine's measured stall so the objective itself is
// validated, not just its effect.
func runPlacementMemory(opts ExperimentOptions) *Result {
	res := &Result{ID: "placement_memory", Title: "Memory-aware placement: folding expert residency into the solver objective"}
	cfg := moe.GPTM(32)
	cfg.Layers = opts.scaled(12, 8)
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 8, Seed: opts.Seed + 17, DomainTilt: servingDomainTilt})

	tr := sys.Profile(opts.scaled(3000, 2000))
	counts := tr.AllTransitionCounts()
	crossOnly := sys.SolvePlacement(tr)

	w := Workload{
		RequestsPerGPU: opts.scaled(8, 4),
		PromptLen:      8,
		GenerateTokens: opts.scaled(6, 3),
		CachePolicy:    "affinity",
	}

	tbHit := newTableHelper(res, "engine expert hit rate by oversubscription ratio", "oversub-ratio")
	tbStall := newTableHelper(res, "expert-stall seconds per generated token (engine-measured)", "oversub-ratio")
	tbPred := newTableHelper(res, "objective-predicted stall seconds per token", "oversub-ratio")
	tbCross := newTableHelper(res, "placement crossings on the profiling trace", "oversub-ratio")
	arms := []string{"crossing-only", "memory-aware"}
	series := map[string][4]*stats.Series{}
	for _, arm := range arms {
		series[arm] = [4]*stats.Series{
			tbHit.NewSeries(arm), tbStall.NewSeries(arm),
			tbPred.NewSeries(arm), tbCross.NewSeries(arm),
		}
	}

	for _, ratio := range []float64{1, 2, 4} {
		// The objective the memory-aware arm optimized, rebuilt here to score
		// BOTH arms' predicted stall on equal footing.
		pol, _ := expertmem.ParsePolicy("affinity")
		mcfg := expertmem.ConfigFor(sys.Topo, cfg.Layers, cfg.Experts, int(cfg.ExpertParams())*2,
			ratio, pol, 4, 0, counts)
		mo := placement.NewMemoryObjective(mcfg, 0)
		memAware := sys.SolvePlacementMemoryAware(tr, ratio, "affinity", 0, 0)

		if ratio == 1 {
			if crossOnly.Equal(memAware) {
				res.AddNote("1x: memory term inactive, memory-aware solve bit-identical to crossing-only")
			} else {
				res.AddNote("WARNING: 1x memory-aware solve diverged from crossing-only")
			}
		}

		wr := w
		wr.Oversubscription = ratio
		for i, pl := range []*placement.Placement{crossOnly, memAware} {
			rep := sys.Run(engine.ExFlow, pl, wr)
			s := series[arms[i]]
			s[0].Add(ratio, rep.ExpertMem.EffectiveHitRate())
			s[1].Add(ratio, rep.Breakdown["expert-stall"]*float64(sys.Topo.TotalGPUs())/float64(rep.GeneratedTokens))
			s[2].Add(ratio, mo.StallPerToken(pl))
			s[3].Add(ratio, pl.Crossings(counts))
		}
		if ratio == 2 {
			co, ma := series["crossing-only"], series["memory-aware"]
			res.AddNote("2x: memory-aware placement hit %.1f%% vs crossing-only %.1f%% (predicted stall/token %.3fms vs %.3fms, crossings +%.0f%%)",
				seriesLast(ma[0])*100, seriesLast(co[0])*100, seriesLast(ma[2])*1e3, seriesLast(co[2])*1e3,
				(seriesLast(ma[3])/seriesLast(co[3])-1)*100)
		}
	}
	res.AddNote("the memory-aware arm trades crossings for hot-set dilution; the trade pays once fetch cost dominates hop cost (oversubscription >= 2)")
	return res
}

// Command exflow-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	exflow-bench -experiment fig7          # one experiment
//	exflow-bench -experiment all           # everything
//	exflow-bench -experiment fig10 -scale 0.3 -csv -out results/
//
// Each experiment prints the series/tables behind the corresponding paper
// artifact plus notes comparing the measured shape with the published one.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/obs"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		scale      = flag.Float64("scale", 1.0, "workload scale in (0,1]; smaller is faster")
		seed       = flag.Uint64("seed", 1, "deterministic seed")
		csv        = flag.Bool("csv", false, "also emit CSV")
		outDir     = flag.String("out", "", "directory for CSV files (default: stdout only)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range exflow.Experiments() {
			fmt.Println(id)
		}
		return
	}

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = exflow.Experiments()
	}
	opts := exflow.ExperimentOptions{Scale: *scale, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		res, err := exflow.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exflow-bench:", err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csv {
			if *outDir != "" {
				if err := os.MkdirAll(*outDir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, "exflow-bench:", err)
					os.Exit(1)
				}
				path := filepath.Join(*outDir, id+".csv")
				if err := obs.WriteFileAtomic(path, []byte(res.CSV())); err != nil {
					fmt.Fprintln(os.Stderr, "exflow-bench:", err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", path)
			} else {
				fmt.Println(strings.TrimSpace(res.CSV()))
			}
		}
	}
}

// Command exflow-serve runs the online serving subsystem: a multi-replica
// continuous-batching fleet over the simulated cluster, with live
// routing-drift detection and (adaptive mode) background expert
// re-placement.
//
//	exflow-serve                    # steady in-distribution serving
//	exflow-serve -drift             # mid-run dataset drift: static vs adaptive
//	exflow-serve -drift -arrival bursty -load 0.95 -gpus 32
//	exflow-serve -oversub           # tiered expert memory: policy x ratio sweep
//	exflow-serve -replication       # expert-copy replication budget frontier
//	exflow-serve -scenarios         # chaos scenario matrix with pass/fail gates
//
// With -drift the command serves the same two-phase traffic program twice —
// once with the static offline ExFlow placement and once with the adaptive
// controller — and reports how much of the static fleet's P95 regression the
// adaptive fleet recovers. A machine-readable summary is written to the
// -json path (default BENCH_serve.json, "-" for stdout only).
//
// With -oversub the command instead serves the same steady traffic under
// tiered expert-weight memory (internal/expertmem) at oversubscription
// ratios 1x/1.5x/2x/4x for every cache policy (lru, lfu, pin, affinity;
// 1x runs once since every expert is resident and the policy cannot act),
// each ratio provisioned at 70% of its own probed capacity, plus a
// memory-disabled baseline. The sweep arms run concurrently (one goroutine
// per arm, each with a deterministic per-ratio seed) and the results are
// sorted before writing, so the JSON is byte-identical regardless of which
// arm finishes first. The summary lands in BENCH_expertmem.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"

	"repro"
	"repro/internal/expertmem"
	"repro/internal/moe"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/stats"
)

var models = map[string]func() moe.Config{
	"gptm-8":   func() moe.Config { return moe.GPTM(8) },
	"gptm-16":  func() moe.Config { return moe.GPTM(16) },
	"gptm-32":  func() moe.Config { return moe.GPTM(32) },
	"gptm-64":  func() moe.Config { return moe.GPTM(64) },
	"gptm-32l": moe.GPTM32L,
	"gptm-40l": moe.GPTM40L,
	"gptxl":    moe.GPTXL,
}

// phaseJSON / migrationJSON / summaryJSON shape the machine-readable output.
type phaseJSON struct {
	Name       string  `json:"name"`
	Requests   int     `json:"requests"`
	P50        float64 `json:"p50_s"`
	P95        float64 `json:"p95_s"`
	P99        float64 `json:"p99_s"`
	Throughput float64 `json:"tokens_per_sec"`
}

type migrationJSON struct {
	Time          float64 `json:"time_s"`
	Score         float64 `json:"drift_score"`
	Moves         int     `json:"moves"`
	CrossNode     int     `json:"cross_node_moves"`
	PauseSeconds  float64 `json:"pause_s_per_replica"`
	PredictedGain float64 `json:"predicted_per_token_gain"`
}

type runJSON struct {
	Phases     []phaseJSON     `json:"phases"`
	TailP95    float64         `json:"tail_p95_s"`
	Migrations []migrationJSON `json:"migrations,omitempty"`
}

type summaryJSON struct {
	Model            string   `json:"model"`
	Layers           int      `json:"layers"`
	GPUs             int      `json:"gpus"`
	Replicas         int      `json:"replicas"`
	LoadFrac         float64  `json:"load_frac"`
	Seed             uint64   `json:"seed"`
	TokenCapacity    float64  `json:"token_capacity_per_replica"`
	CostFixedUS      float64  `json:"cost_fixed_us"`
	CostPerTokenUS   float64  `json:"cost_per_token_us"`
	CostCrossHopUS   float64  `json:"cost_cross_hop_us"`
	Drift            bool     `json:"drift"`
	Static           *runJSON `json:"static,omitempty"`
	Adaptive         *runJSON `json:"adaptive"`
	WarmP95          float64  `json:"warm_p95_s"`
	RecoveryFraction float64  `json:"recovery_fraction"`
}

func toRunJSON(rep *exflow.ServeReport, t0, t1 float64) *runJSON {
	out := &runJSON{TailP95: rep.WindowStats(t0, t1).P95}
	for _, p := range rep.Phases {
		out.Phases = append(out.Phases, phaseJSON{
			Name: p.Name, Requests: p.Requests, P50: p.P50, P95: p.P95, P99: p.P99, Throughput: p.Throughput,
		})
	}
	for _, m := range rep.Migrations {
		out.Migrations = append(out.Migrations, migrationJSON{
			Time: m.Time, Score: m.Score, Moves: m.Moves, CrossNode: m.CrossNodeMoves,
			PauseSeconds: m.Seconds, PredictedGain: m.PredictedGain,
		})
	}
	return out
}

func main() {
	var (
		model       = flag.String("model", "gptm-32", "model preset: gptm-8/16/32/64, gptm-32l, gptm-40l, gptxl")
		layers      = flag.Int("layers", 16, "MoE layer count override; the 16-layer default keeps the demo fast — pass 0 to use the model preset's full depth")
		gpus        = flag.Int("gpus", 16, "expert-parallel group size per replica")
		replicas    = flag.Int("replicas", 2, "replica count behind the front-end")
		drift       = flag.Bool("drift", false, "inject a mid-run dataset drift and compare static vs adaptive")
		oversub     = flag.Bool("oversub", false, "sweep tiered expert-weight memory: cache policies x oversubscription ratios, write BENCH_expertmem.json")
		fleetBench  = flag.Bool("fleet", false, "drive the fleet tier through a flash crowd: shared host cache vs independent, paging vs queue-depth admission, autoscaler on/off; write BENCH_fleet.json")
		replication = flag.Bool("replication", false, "sweep expert-copy replication budgets at 1x-4x memory oversubscription and write the P95/tokens-per-sec frontier to BENCH_replication.json")
		scenarios   = flag.Bool("scenarios", false, "run the declarative chaos scenario matrix (crash/recovery, degraded links, retry exhaustion, autoscaler faults) with per-row pass/fail gates; write BENCH_scenarios.json and exit nonzero on any failing row")
		scale       = flag.String("scale", "bench", "with -scenarios: matrix scale, smoke (short eras, loose recovery gates — the CI quick pass) | bench (the checked-in matrix, tight gates)")
		memaware    = flag.Bool("memaware", false, "with -oversub: add a memory-aware-placement arm per ratio (expert-stall cost folded into the solver objective) and compare against crossing-only")
		residency   = flag.String("residency", "static", "residency model for memory-aware placement objectives: static | che; with -oversub, 'che' runs per-ratio adaptive drift arms under both models and records each one's predicted-vs-realized stall gap (the steady -memaware arm always solves with static so its cells stay comparable across runs)")
		hostSlots   = flag.Int("hostslots", 0, "with -oversub: bound host-DRAM expert master copies per replica; coldest experts fall to NVMe (0 = all fit in DRAM)")
		memRatio    = flag.Float64("memratio", 0, "serve the steady/-drift program under tiered expert memory at this oversubscription ratio (0 = memory layer off; ignored by -oversub, which sweeps its own ratios) — expert-stall and fetch spans then appear in -traceout")
		arrival     = flag.String("arrival", "poisson", "arrival process: poisson | bursty | diurnal")
		load        = flag.Float64("load", 0.97, "offered load as a fraction of the calibrated capacity knee")
		warm        = flag.Float64("warm", 20, "seconds of in-distribution traffic")
		duration    = flag.Float64("duration", 40, "seconds of the main (drifted, with -drift) traffic era")
		decode      = flag.Int("decode", 32, "decode tokens per request")
		tilt        = flag.Float64("tilt", 8, "domain specialization of the checkpoint (1 = paper-faithful mild tilt)")
		strength    = flag.Float64("strength", 0.85, "synthetic affinity strength")
		seed        = flag.Uint64("seed", 7, "deterministic seed")
		workers     = flag.Int("solveworkers", 1, "placement-solver portfolio width (initial solve and live re-solves); deterministic for any fixed value, 1 = serial")
		solveLat    = flag.Float64("solvelat", 0, "simulated latency of a background re-solve in seconds; the fleet keeps serving while it runs (overlap, not pause)")
		autoSolve   = flag.Bool("autosolve", false, "derive the simulated re-solve latency from the solver's measured wall clock (running mean; the calibration solve seeds the prior) — an explicit nonzero -solvelat always wins")
		jsonPath    = flag.String("json", "BENCH_serve.json", "machine-readable summary path ('-' to skip the file)")
		traceOut    = flag.String("traceout", "", "write a Chrome/Perfetto trace of the adaptive serving run to this path (chrome://tracing or ui.perfetto.dev)")
		traceSample = flag.Int("tracesample", 128, "keep 1-in-N of the high-volume trace events (fetch/evict/prefetch/admit); control-plane events are always kept. 0 records everything — under -memratio the ring then wraps and overwrites the oldest events, migrations included")
		metricsOut  = flag.String("metricsout", "", "write the adaptive run's metrics snapshot (counters/gauges/histograms JSON) to this path")
		decisionOut = flag.String("decisionlog", "", "write the adaptive run's controller decision log (human-readable) to this path")
	)
	flag.Parse()

	if *scenarios {
		// The matrix runs over its own fixed synthetic fixture (no engine,
		// no model preset): the rows exist to gate fault-handling invariants,
		// not to benchmark a particular checkpoint. -json defaults to
		// BENCH_scenarios.json here, honoring an explicit value.
		path := "BENCH_scenarios.json"
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "json" {
				path = *jsonPath
			}
		})
		runScenarioMatrix(*scale, *seed, path)
		return
	}

	mk, ok := models[*model]
	if !ok {
		fmt.Fprintf(os.Stderr, "exflow-serve: unknown model %q\n", *model)
		os.Exit(1)
	}
	cfg := mk()
	if *layers > 0 {
		cfg.Layers = *layers
	}
	if _, err := placement.ParseResidencyModel(*residency); err != nil {
		fmt.Fprintln(os.Stderr, "exflow-serve:", err)
		os.Exit(1)
	}
	sys := exflow.NewSystem(exflow.SystemOptions{
		Model: cfg, GPUs: *gpus, AffinityStrength: *strength, DomainTilt: *tilt,
		SolveWorkers: *workers, ResidencyModel: *residency, Seed: *seed,
	})
	if *oversub {
		// Two flags have oversub-specific defaults but honor explicit
		// values: -json defaults to BENCH_expertmem.json (not the drift
		// demo's file), and -load defaults to 0.7 because its 0.97 default
		// targets the 1x knee and would pin every oversubscribed run
		// against its capacity estimate's noise.
		path := "BENCH_expertmem.json"
		provision := 0.7
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "json":
				path = *jsonPath
			case "load":
				provision = *load
			}
		})
		runOversubSweep(sys, cfg, oversubConfig{
			gpus: *gpus, replicas: *replicas, decode: *decode, hostSlots: *hostSlots,
			seed: *seed, dur: *warm + *duration, arrival: *arrival, provision: provision,
			jsonPath: path, memaware: *memaware, residency: *residency,
			solveWorkers: *workers, solveLat: *solveLat, autoSolve: *autoSolve,
		})
		return
	}
	if *replication {
		// Two oversub-style default overrides: -json lands in
		// BENCH_replication.json and -load defaults to 0.7 (the 0.97 default
		// targets the 1x knee; see the -oversub comment above).
		path := "BENCH_replication.json"
		provision := 0.7
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "json":
				path = *jsonPath
			case "load":
				provision = *load
			}
		})
		runReplicationSweep(sys, cfg, replicationConfig{
			gpus: *gpus, replicas: *replicas, decode: *decode, hostSlots: *hostSlots,
			seed: *seed, dur: *warm + *duration, arrival: *arrival, provision: provision,
			jsonPath: path, residency: *residency, solveWorkers: *workers,
		})
		return
	}
	if *fleetBench {
		// -json defaults to BENCH_fleet.json here, honoring an explicit value.
		path := "BENCH_fleet.json"
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "json" {
				path = *jsonPath
			}
		})
		runFleetBench(sys, cfg, fleetConfig{
			gpus: *gpus, replicas: *replicas, decode: *decode, seed: *seed,
			warm: *warm, duration: *duration, arrival: *arrival,
			solveWorkers: *workers, jsonPath: path,
		})
		return
	}
	fmt.Printf("serving %s x%d replicas, %s arrivals at %.0f%% of capacity\n",
		cfg.String(), *replicas, *arrival, *load*100)

	phases := []exflow.ServePhase{{Name: "warm", Duration: *warm, Arrival: *arrival}}
	if *drift {
		phases = append(phases, exflow.ServePhase{
			Name: "drift", Duration: *duration, Arrival: *arrival, Dataset: exflow.ViralDataset(),
		})
	} else {
		phases[0].Duration = *warm + *duration
		phases[0].Name = "steady"
	}
	base := exflow.ServeOptions{
		Replicas:         *replicas,
		DecodeTokens:     *decode,
		LoadFrac:         *load,
		Phases:           phases,
		SolveSeconds:     *solveLat,
		SolveWorkers:     *workers,
		AutoSolveSeconds: *autoSolve,
		Oversubscription: *memRatio,
		HostSlots:        *hostSlots,
		LatencyBucket:    (*warm + *duration) / 80,
	}

	// Observability sinks, attached to the adaptive run only: the static arm
	// of a -drift comparison exists as a baseline, and the adaptive run is
	// where migrations, solve overlap, and stalls actually happen.
	var (
		tracer    *obs.Tracer
		registry  *obs.Registry
		decisions *obs.DecisionLog
	)
	if *traceOut != "" {
		// 4x the library's default ring: a -memratio run emits memory traffic
		// from every GPU and the whole point of the export is seeing the rare
		// control-plane spans next to it.
		tracer = obs.NewTracer(obs.TracerOptions{Cap: 1 << 20, Sample: *traceSample})
	}
	if *metricsOut != "" {
		registry = obs.NewRegistry()
	}
	if *decisionOut != "" {
		decisions = obs.NewDecisionLog(0)
	}
	// Calibrate once (profiling + ~6 real engine runs) and share it across
	// the static and adaptive fleets.
	cal, err := exflow.CalibrateServe(sys, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exflow-serve:", err)
		os.Exit(1)
	}
	base.Calibration = cal

	run := func(adaptive bool) (*exflow.ServeReport, *exflow.ServeMetrics) {
		o := base
		o.Adaptive = adaptive
		if adaptive {
			o.Trace, o.Metrics, o.Decisions = tracer, registry, decisions
		}
		rep, met, err := exflow.Serve(sys, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		return rep, met
	}

	tail0, tail1 := *warm+*duration/2, *warm+*duration
	sum := summaryJSON{
		Model: cfg.Name, Layers: cfg.Layers, GPUs: *gpus, Replicas: *replicas,
		LoadFrac: *load, Seed: *seed, Drift: *drift,
	}

	if !*drift {
		rep, met := run(true)
		fillMetrics(&sum, met)
		sum.Adaptive = toRunJSON(rep, tail0, tail1)
		sum.WarmP95 = rep.Phases[0].P95
		fmt.Print(rep.String())
	} else {
		fmt.Println("\n--- static placement (offline ExFlow, never re-placed) ---")
		st, met := run(false)
		fillMetrics(&sum, met)
		fmt.Print(st.String())
		fmt.Println("\n--- adaptive placement (drift detection + live re-placement) ---")
		ad, _ := run(true)
		fmt.Print(ad.String())

		tb := stats.NewTable("P95 request latency (s) over time — the migration pause is the adaptive spike after drift hits", "sim-seconds")
		addSeries(tb, st.LatencyP95, "static")
		addSeries(tb, ad.LatencyP95, "adaptive")
		fmt.Println()
		fmt.Print(tb.Render())

		sum.Static = toRunJSON(st, tail0, tail1)
		sum.Adaptive = toRunJSON(ad, tail0, tail1)
		sum.WarmP95 = st.Phases[0].P95
		// A regression below 5% of the warm P95 is measurement noise; leave
		// the recovery fraction at 0 rather than dividing by it.
		reg := sum.Static.TailP95 - sum.WarmP95
		measurable := reg > 0.05*sum.WarmP95
		if measurable {
			sum.RecoveryFraction = (sum.Static.TailP95 - sum.Adaptive.TailP95) / reg
		}
		fmt.Printf("\nwarm P95 %.3fs | static tail P95 %.3fs | adaptive tail P95 %.3fs\n",
			sum.WarmP95, sum.Static.TailP95, sum.Adaptive.TailP95)
		if measurable {
			fmt.Printf("adaptive re-placement recovered %.0f%% of the P95 regression static ExFlow suffered under drift\n",
				sum.RecoveryFraction*100)
		} else {
			fmt.Println("static placement did not measurably regress under this drift; nothing to recover")
		}
	}

	if tracer != nil {
		if err := obs.WritePerfetto(tracer, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d events recorded, %d emitted)\n", *traceOut, tracer.Len(), tracer.Emitted())
	}
	if registry != nil {
		blob, err := registry.Snapshot().MarshalIndentJSON()
		if err == nil {
			err = obs.WriteFileAtomic(*metricsOut, blob)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	if decisions != nil {
		if err := decisions.WriteFile(*decisionOut); err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d decisions)\n", *decisionOut, decisions.Len())
	}

	if *jsonPath != "-" {
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		if err := obs.WriteFileAtomic(*jsonPath, append(blob, '\n')); err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// fillMetrics copies calibration numbers into the summary.
func fillMetrics(sum *summaryJSON, met *exflow.ServeMetrics) {
	sum.TokenCapacity = met.TokenCapacity
	sum.CostFixedUS = met.Cost.Fixed * 1e6
	sum.CostPerTokenUS = met.Cost.PerToken * 1e6
	sum.CostCrossHopUS = met.Cost.PerCrossHop * 1e6
}

// addSeries registers a report series on a table under a new name.
func addSeries(tb *stats.Table, s *stats.Series, name string) {
	c := tb.NewSeries(name)
	c.X = append(c.X, s.X...)
	c.Y = append(c.Y, s.Y...)
}

// memRunJSON is one cell of the oversubscription sweep. Placement is empty
// for the crossing-only solver and "memory-aware" for the -memaware arm.
type memRunJSON struct {
	Ratio            float64 `json:"oversubscription"`
	Policy           string  `json:"policy"`
	Placement        string  `json:"placement,omitempty"`
	OfferedRPS       float64 `json:"offered_req_per_sec"`
	HitRate          float64 `json:"hit_rate"`
	LateHits         int     `json:"late_hits"`
	Misses           int     `json:"misses"`
	Prefetches       int     `json:"prefetches"`
	PrefetchHits     int     `json:"prefetch_hits"`
	WastedPrefetches int     `json:"wasted_prefetches"`
	StallPerToken    float64 `json:"clock_stall_s_per_token"`
	AccessStallTotal float64 `json:"access_stall_s_total"`
	P50              float64 `json:"p50_s"`
	P95              float64 `json:"p95_s"`
	P99              float64 `json:"p99_s"`
	Throughput       float64 `json:"tokens_per_sec"`
}

// memSummaryJSON is the BENCH_expertmem.json shape.
type memSummaryJSON struct {
	Model           string  `json:"model"`
	Layers          int     `json:"layers"`
	GPUs            int     `json:"gpus"`
	Replicas        int     `json:"replicas"`
	Seed            uint64  `json:"seed"`
	Arrival         string  `json:"arrival"`
	Provision       float64 `json:"provision_frac"`
	ExpertMB        float64 `json:"expert_mb"`
	WeightsPerGPUGB float64 `json:"expert_weights_per_gpu_gb"`
	HBMPerGPUGB     float64 `json:"hbm_per_gpu_gb"`
	DisabledP95     float64 `json:"memory_disabled_p95_s"`

	Runs []memRunJSON `json:"runs"`

	Acceptance struct {
		OneXMatchesDisabled  bool    `json:"one_x_matches_disabled_exactly"`
		OneXP95DeltaSeconds  float64 `json:"one_x_p95_delta_s"`
		Affinity2xHitRate    float64 `json:"affinity_2x_hit_rate"`
		LRU2xHitRate         float64 `json:"lru_2x_hit_rate"`
		Affinity2xP95        float64 `json:"affinity_2x_p95_s"`
		LRU2xP95             float64 `json:"lru_2x_p95_s"`
		AffinityBeatsLRUAt2x bool    `json:"affinity_beats_lru_at_2x"`
	} `json:"acceptance"`

	// MemAware compares crossing-only vs memory-aware placement per ratio
	// (affinity policy, identical offered rate); present with -memaware.
	MemAware *memAwareJSON `json:"memaware,omitempty"`

	// Residency compares the static and Che residency models' stall
	// predictions against realized serving stall across live migrations;
	// present with -residency che.
	Residency *residencyJSON `json:"residency,omitempty"`
}

// memAwareJSON summarizes the -memaware arm.
type memAwareJSON struct {
	// OneXBitIdentical: at 1x the memory term is inactive, so the
	// memory-aware solve must reproduce the crossing-only placement (and
	// hence the whole run) exactly.
	OneXBitIdentical bool `json:"one_x_bit_identical"`
	// Per-ratio deltas (memory-aware minus crossing-only).
	HitRateDelta2x        float64 `json:"hit_rate_delta_2x"`
	P95Delta2xSeconds     float64 `json:"p95_delta_2x_s"`
	HitRateDelta4x        float64 `json:"hit_rate_delta_4x"`
	P95Delta4xSeconds     float64 `json:"p95_delta_4x_s"`
	BeatsCrossingOnlyAt2x bool    `json:"beats_crossing_only_at_2x"`
}

// residencyArmJSON is one adaptive drift run under a residency model: the
// fleet serves a warm era then a drifted era with memory-aware re-placement
// on, and every migration's PredictedStallDelta (computed with the arm's
// model) is scored against the RealizedStallDelta measured from the serve
// timeline. MeanAbsGap is the model-conformance figure the Che model exists
// to shrink.
type residencyArmJSON struct {
	Ratio         float64 `json:"oversubscription"`
	Model         string  `json:"residency_model"`
	OfferedRPS    float64 `json:"offered_req_per_sec"`
	Migrations    int     `json:"migrations"`
	MeanPredicted float64 `json:"mean_predicted_stall_delta_s_per_token"`
	MeanRealized  float64 `json:"mean_realized_stall_delta_s_per_token"`
	MeanAbsGap    float64 `json:"mean_abs_stall_gap_s_per_token"`
	HitRate       float64 `json:"hit_rate"`
	P95           float64 `json:"p95_s"`
}

// residencyJSON summarizes the -residency che comparison. Both models at a
// ratio share the arrival stream and the initial placement; only the
// objective the controller re-solves (and predicts) with differs.
type residencyJSON struct {
	Arms []residencyArmJSON `json:"arms"`

	Static2xGap      float64 `json:"static_2x_mean_abs_gap_s"`
	Che2xGap         float64 `json:"che_2x_mean_abs_gap_s"`
	CheClosesGapAt2x bool    `json:"che_closes_gap_at_2x"`
}

// oversubConfig carries the sweep's knobs from the flag set.
type oversubConfig struct {
	gpus, replicas, decode, hostSlots int
	seed                              uint64
	dur, provision                    float64
	arrival, jsonPath                 string
	memaware                          bool
	residency                         string
	solveWorkers                      int
	solveLat                          float64
	autoSolve                         bool
}

// residencyArm is one finished residency-model conformance arm.
type residencyArm struct {
	ratioIdx int
	ratio    float64
	model    string
	rate     float64
	rep      *exflow.ServeReport
}

// stallGapStats summarizes a run's migrations: the mean predicted and
// realized stall-per-token deltas and the mean absolute gap between them —
// how faithfully the residency model's pricing tracked the serve timeline.
func stallGapStats(rep *exflow.ServeReport) (n int, pred, realized, gap float64) {
	for _, m := range rep.Migrations {
		pred += m.PredictedStallDelta
		realized += m.RealizedStallDelta
		gap += math.Abs(m.PredictedStallDelta - m.RealizedStallDelta)
	}
	if n = len(rep.Migrations); n > 0 {
		k := float64(n)
		pred, realized, gap = pred/k, realized/k, gap/k
	}
	return n, pred, realized, gap
}

// sweepArm is one finished cell of the oversubscription sweep.
type sweepArm struct {
	ratioIdx  int // -1 for the memory-disabled baseline
	ratio     float64
	policy    string
	placement string // "" or "memory-aware"
	rate      float64
	rep       *exflow.ServeReport
	memPl     *placement.Placement // the memory-aware solve's placement (memaware arms)
}

// runOversubSweep serves steady traffic under tiered expert-weight memory
// for every (cache policy, oversubscription ratio) cell plus a
// memory-disabled baseline, and writes the machine-readable summary. The
// arms are independent simulations sharing only read-only state (system,
// calibration), so they fan out across goroutines — one per ratio for the
// capacity probe, then one per (policy, placement) cell — with a
// deterministic per-ratio seed (the memory-disabled baseline shares the 1x
// arm's seed so the bit-identity acceptance compares identical arrival
// streams). Results are collected and sorted by (ratio, policy, placement)
// before printing and writing, so the output is byte-identical no matter
// which arm finishes first.
func runOversubSweep(sys *exflow.System, cfg moe.Config, oc oversubConfig) {
	gpus, replicas, decode, hostSlots := oc.gpus, oc.replicas, oc.decode, oc.hostSlots
	seed, dur, jsonPath := oc.seed, oc.dur, oc.jsonPath
	fmt.Printf("oversubscription sweep: %s on %d GPUs x%d replicas, %.0fs of %s traffic per run at %.0f%% of each ratio's capacity\n",
		cfg.String(), gpus, replicas, dur, oc.arrival, oc.provision*100)
	// HostSlots stays out of base: base also drives calibration and the
	// memory-disabled baseline, where a host-DRAM bound without the memory
	// layer is rejected. runWith applies it to every oversubscribed arm.
	base := exflow.ServeOptions{
		Replicas:         replicas,
		DecodeTokens:     decode,
		SolveSeconds:     oc.solveLat,
		SolveWorkers:     oc.solveWorkers,
		AutoSolveSeconds: oc.autoSolve,
		LatencyBucket:    dur / 80,
		Seed:             seed,
	}
	cal, err := exflow.CalibrateServe(sys, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exflow-serve:", err)
		os.Exit(1)
	}
	base.Calibration = cal

	expertBytes := float64(cfg.ExpertParams()) * 2
	sum := memSummaryJSON{
		Model: cfg.Name, Layers: cfg.Layers, GPUs: gpus, Replicas: replicas, Seed: seed,
		Arrival: oc.arrival, Provision: oc.provision,
		ExpertMB:        expertBytes / (1 << 20),
		WeightsPerGPUGB: expertBytes * float64(cfg.Layers*cfg.Experts/gpus) / 1e9,
		HBMPerGPUGB:     float64(sys.Topo.HBMCapacity()) / 1e9,
	}

	// armSeed derives the per-ratio arm seed. Every policy at a ratio (and
	// the memaware arm) shares it, so cross-policy and placement
	// comparisons at that ratio see the identical arrival stream.
	armSeed := func(ratioIdx int) uint64 { return rng.Mix64(seed, 0x0A53, uint64(ratioIdx)) }

	runWith := func(ratio float64, policy string, rate float64, c *exflow.ServeCalibration, aware bool, armSeed uint64) (*exflow.ServeReport, error) {
		o := base
		o.Calibration = c
		o.Oversubscription = ratio
		o.CachePolicy = policy
		o.MemoryAware = aware
		if ratio > 0 {
			o.HostSlots = hostSlots
		}
		o.Seed = armSeed
		o.Phases = []exflow.ServePhase{{Name: "steady", Duration: dur, Rate: rate, Arrival: oc.arrival}}
		rep, _, err := exflow.Serve(sys, o)
		return rep, err
	}

	baseRate := oc.provision * cal.Metrics.RequestCapacity

	var (
		mu      sync.Mutex
		arms    []sweepArm
		resRuns []residencyArm
		errs    []error
	)
	collect := func(a sweepArm, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errs = append(errs, err)
			return
		}
		arms = append(arms, a)
	}
	collectRes := func(a residencyArm, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errs = append(errs, err)
			return
		}
		resRuns = append(resRuns, a)
	}

	var wg sync.WaitGroup
	// The memory-disabled baseline rides the 1x arm's seed: the 1x
	// acceptance check asserts bitwise-equal outcomes, which only means
	// something when both runs saw the same arrivals.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep, err := runWith(0, "", baseRate, cal, false, armSeed(0))
		collect(sweepArm{ratioIdx: -1, rate: baseRate, rep: rep}, err)
	}()
	for i, ratio := range exflow.MemorySweepRatios {
		wg.Add(1)
		go func(i int, ratio float64) {
			defer wg.Done()
			rate := baseRate
			policies := expertmem.PolicyNames()
			if ratio == 1 {
				// At 1x every expert is resident, so the policy can never
				// act: one run stands for all of them.
				policies = []string{"affinity"}
			} else {
				probeBase := base
				probeBase.HostSlots = hostSlots
				capTok, err := exflow.ProbeMemoryCapacity(sys, probeBase, ratio, dur/2)
				if err != nil {
					collect(sweepArm{}, err)
					return
				}
				rate = oc.provision * capTok / float64(decode)
			}
			var pwg sync.WaitGroup
			for _, policy := range policies {
				pwg.Add(1)
				go func(policy string) {
					defer pwg.Done()
					rep, err := runWith(ratio, policy, rate, cal, false, armSeed(i))
					collect(sweepArm{ratioIdx: i, ratio: ratio, policy: policy, rate: rate, rep: rep}, err)
				}(policy)
			}
			if oc.memaware {
				// The memory-aware arm: same policy, same offered rate, but
				// the placement was solved with the expert-stall term in
				// the objective. At 1x the term is inactive and the solve
				// must be bit-identical to the crossing-only one. The arm is
				// pinned to the static residency model regardless of
				// -residency so its cells stay comparable (and bit-identical)
				// across regenerations; the Che model is measured by the
				// conformance arms below.
				pwg.Add(1)
				go func() {
					defer pwg.Done()
					sysStatic := *sys
					sysStatic.ResidencyModel = "static"
					memPl := sysStatic.SolvePlacementMemoryAware(cal.Trace, ratio, "affinity", 0, oc.hostSlots)
					calMem := *cal
					calMem.Placement = memPl
					rep, err := runWith(ratio, "affinity", rate, &calMem, true, armSeed(i))
					collect(sweepArm{ratioIdx: i, ratio: ratio, policy: "affinity", placement: "memory-aware",
						rate: rate, rep: rep, memPl: memPl}, err)
				}()
			}
			if oc.residency == "che" && ratio > 1 {
				// Residency-model conformance arms: the fleet serves a warm
				// era then a drifted one with adaptive memory-aware
				// re-placement, once per model. Both models share the seed,
				// rate, and initial placement, so the only difference is the
				// objective the controller re-solves — and predicts — with;
				// each migration's PredictedStallDelta is then scored
				// against the RealizedStallDelta the serve timeline measured.
				for _, model := range []string{"static", "che"} {
					pwg.Add(1)
					go func(model string) {
						defer pwg.Done()
						o := base
						o.Calibration = cal
						o.Oversubscription = ratio
						o.CachePolicy = "affinity"
						o.HostSlots = hostSlots
						o.MemoryAware = true
						o.ResidencyModel = model
						o.Adaptive = true
						o.Seed = rng.Mix64(seed, 0xD1CE, uint64(i))
						o.Phases = []exflow.ServePhase{
							{Name: "warm", Duration: dur / 3, Rate: rate, Arrival: oc.arrival},
							{Name: "drift", Duration: dur * 2 / 3, Rate: rate, Arrival: oc.arrival, Dataset: exflow.ViralDataset()},
						}
						rep, _, err := exflow.Serve(sys, o)
						collectRes(residencyArm{ratioIdx: i, ratio: ratio, model: model, rate: rate, rep: rep}, err)
					}(model)
				}
			}
			pwg.Wait()
		}(i, ratio)
	}
	wg.Wait()
	if len(errs) > 0 {
		// Arms fail independently; report every error, not just the first
		// collected (whose identity depends on goroutine scheduling).
		for _, err := range errs {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
		}
		os.Exit(1)
	}

	// Deterministic order regardless of completion order: baseline first,
	// then (ratio, policy, placement) ascending.
	sort.Slice(arms, func(a, b int) bool {
		x, y := arms[a], arms[b]
		if x.ratio != y.ratio {
			return x.ratio < y.ratio
		}
		if x.policy != y.policy {
			return x.policy < y.policy
		}
		return x.placement < y.placement
	})

	record := func(a sweepArm) float64 {
		rep := a.rep
		em := rep.ExpertMem
		hit := em.EffectiveHitRate()
		sum.Runs = append(sum.Runs, memRunJSON{
			Ratio: a.ratio, Policy: a.policy, Placement: a.placement, OfferedRPS: a.rate,
			HitRate: hit, LateHits: em.LateHits, Misses: em.Misses,
			Prefetches: em.Prefetches, PrefetchHits: em.PrefetchHits, WastedPrefetches: em.WastedPrefetches,
			StallPerToken: rep.MemStallSeconds / float64(rep.Tokens), AccessStallTotal: em.StallSeconds,
			P50: rep.Overall.P50, P95: rep.Overall.P95, P99: rep.Overall.P99,
			Throughput: rep.Overall.Throughput,
		})
		label := a.policy
		if a.placement != "" {
			label += "+" + a.placement
		}
		fmt.Printf("  %.1fx %-17s hit %5.1f%%  P95 %8.4fs  stall/token %.3fms  (%.1f req/s offered)\n",
			a.ratio, label, hit*100, rep.Overall.P95, rep.MemStallSeconds/float64(rep.Tokens)*1e3, a.rate)
		return hit
	}

	var disabled, oneX, lru2x, aff2x *exflow.ServeReport
	affHit := map[float64]float64{}
	affRep := map[float64]*exflow.ServeReport{}
	memHit := map[float64]float64{}
	memRep := map[float64]*exflow.ServeReport{}
	memOneXIdentical := false
	var memPl1x *placement.Placement
	for _, a := range arms {
		if a.ratioIdx == -1 {
			disabled = a.rep
			sum.DisabledP95 = a.rep.Overall.P95
			fmt.Printf("memory disabled: P95 %.4fs at %.1f req/s\n", a.rep.Overall.P95, a.rate)
		}
	}
	for _, a := range arms {
		if a.ratioIdx == -1 {
			continue
		}
		hit := record(a)
		if a.placement == "memory-aware" {
			memHit[a.ratio], memRep[a.ratio] = hit, a.rep
			if a.ratio == 1 {
				memPl1x = a.memPl
			}
			continue
		}
		if a.policy == "affinity" {
			affHit[a.ratio], affRep[a.ratio] = hit, a.rep
		}
		switch {
		case a.ratio == 1 && a.policy == "affinity":
			oneX = a.rep
		case a.ratio == 2 && a.policy == "lru":
			lru2x = a.rep
		case a.ratio == 2 && a.policy == "affinity":
			aff2x = a.rep
		}
	}
	if oc.memaware && memPl1x != nil && memRep[1] != nil && affRep[1] != nil {
		memOneXIdentical = memPl1x.Equal(cal.Placement) &&
			memRep[1].Overall.P95 == affRep[1].Overall.P95 && memRep[1].Makespan == affRep[1].Makespan
	}

	a := &sum.Acceptance
	if oneX != nil {
		a.OneXP95DeltaSeconds = oneX.Overall.P95 - disabled.Overall.P95
		a.OneXMatchesDisabled = oneX.Overall.P95 == disabled.Overall.P95 && oneX.Makespan == disabled.Makespan
	}
	if lru2x != nil && aff2x != nil {
		a.Affinity2xHitRate = aff2x.ExpertMem.HitRate()
		a.LRU2xHitRate = lru2x.ExpertMem.HitRate()
		a.Affinity2xP95 = aff2x.Overall.P95
		a.LRU2xP95 = lru2x.Overall.P95
		a.AffinityBeatsLRUAt2x = a.Affinity2xHitRate > a.LRU2xHitRate && a.Affinity2xP95 < a.LRU2xP95
	}
	fmt.Printf("\n1x vs disabled: P95 delta %+.6fs (exact match: %v)\n", a.OneXP95DeltaSeconds, a.OneXMatchesDisabled)
	fmt.Printf("2x acceptance: affinity hit %.1f%% vs lru %.1f%%, P95 %.4fs vs %.4fs -> beats lru: %v\n",
		a.Affinity2xHitRate*100, a.LRU2xHitRate*100, a.Affinity2xP95, a.LRU2xP95, a.AffinityBeatsLRUAt2x)

	if oc.memaware {
		ma := &memAwareJSON{OneXBitIdentical: memOneXIdentical}
		if m, c := memRep[2], affRep[2]; m != nil && c != nil {
			ma.HitRateDelta2x = memHit[2] - affHit[2]
			ma.P95Delta2xSeconds = m.Overall.P95 - c.Overall.P95
			ma.BeatsCrossingOnlyAt2x = ma.HitRateDelta2x > 0 && ma.P95Delta2xSeconds < 0
		}
		if m, c := memRep[4], affRep[4]; m != nil && c != nil {
			ma.HitRateDelta4x = memHit[4] - affHit[4]
			ma.P95Delta4xSeconds = m.Overall.P95 - c.Overall.P95
		}
		sum.MemAware = ma
		fmt.Printf("memory-aware placement: 1x bit-identical to crossing-only: %v\n", ma.OneXBitIdentical)
		fmt.Printf("memory-aware vs crossing-only at 2x: hit %+.1fpp, P95 %+.4fs -> beats crossing-only: %v\n",
			ma.HitRateDelta2x*100, ma.P95Delta2xSeconds, ma.BeatsCrossingOnlyAt2x)
		fmt.Printf("memory-aware vs crossing-only at 4x: hit %+.1fpp, P95 %+.4fs\n",
			ma.HitRateDelta4x*100, ma.P95Delta4xSeconds)
	}

	if oc.residency == "che" {
		sort.Slice(resRuns, func(a, b int) bool {
			if resRuns[a].ratio != resRuns[b].ratio {
				return resRuns[a].ratio < resRuns[b].ratio
			}
			return resRuns[a].model < resRuns[b].model
		})
		res := &residencyJSON{}
		static2xMigs, che2xMigs := 0, 0
		fmt.Println("\nresidency-model conformance (adaptive drift arms, memory-aware re-placement):")
		for _, a := range resRuns {
			n, pred, realized, gap := stallGapStats(a.rep)
			res.Arms = append(res.Arms, residencyArmJSON{
				Ratio: a.ratio, Model: a.model, OfferedRPS: a.rate,
				Migrations: n, MeanPredicted: pred, MeanRealized: realized, MeanAbsGap: gap,
				HitRate: a.rep.ExpertMem.EffectiveHitRate(), P95: a.rep.Overall.P95,
			})
			fmt.Printf("  %.1fx %-7s %d migrations  stall/token predicted %+.4fms realized %+.4fms  |gap| %.4fms  hit %5.1f%%  P95 %.4fs\n",
				a.ratio, a.model, n, pred*1e3, realized*1e3, gap*1e3, a.rep.ExpertMem.EffectiveHitRate()*100, a.rep.Overall.P95)
			if a.ratio == 2 {
				if a.model == "che" {
					res.Che2xGap, che2xMigs = gap, n
				} else {
					res.Static2xGap, static2xMigs = gap, n
				}
			}
		}
		res.CheClosesGapAt2x = static2xMigs > 0 && che2xMigs > 0 && res.Che2xGap < res.Static2xGap
		sum.Residency = res
		fmt.Printf("residency acceptance at 2x: che |gap| %.4fms vs static %.4fms -> che closes the gap: %v\n",
			res.Che2xGap*1e3, res.Static2xGap*1e3, res.CheClosesGapAt2x)
	}

	if jsonPath != "-" {
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		if err := obs.WriteFileAtomic(jsonPath, append(blob, '\n')); err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

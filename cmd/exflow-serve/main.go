// Command exflow-serve runs the online serving subsystem: a multi-replica
// continuous-batching fleet over the simulated cluster, with live
// routing-drift detection and (adaptive mode) background expert
// re-placement.
//
//	exflow-serve                    # steady in-distribution serving
//	exflow-serve -drift             # mid-run dataset drift: static vs adaptive
//	exflow-serve -drift -arrival bursty -load 0.95 -gpus 32
//
// With -drift the command serves the same two-phase traffic program twice —
// once with the static offline ExFlow placement and once with the adaptive
// controller — and reports how much of the static fleet's P95 regression the
// adaptive fleet recovers. A machine-readable summary is written to the
// -json path (default BENCH_serve.json, "-" for stdout only).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/moe"
	"repro/internal/stats"
)

var models = map[string]func() moe.Config{
	"gptm-8":   func() moe.Config { return moe.GPTM(8) },
	"gptm-16":  func() moe.Config { return moe.GPTM(16) },
	"gptm-32":  func() moe.Config { return moe.GPTM(32) },
	"gptm-64":  func() moe.Config { return moe.GPTM(64) },
	"gptm-32l": moe.GPTM32L,
	"gptm-40l": moe.GPTM40L,
	"gptxl":    moe.GPTXL,
}

// phaseJSON / migrationJSON / summaryJSON shape the machine-readable output.
type phaseJSON struct {
	Name       string  `json:"name"`
	Requests   int     `json:"requests"`
	P50        float64 `json:"p50_s"`
	P95        float64 `json:"p95_s"`
	P99        float64 `json:"p99_s"`
	Throughput float64 `json:"tokens_per_sec"`
}

type migrationJSON struct {
	Time          float64 `json:"time_s"`
	Score         float64 `json:"drift_score"`
	Moves         int     `json:"moves"`
	CrossNode     int     `json:"cross_node_moves"`
	PauseSeconds  float64 `json:"pause_s_per_replica"`
	PredictedGain float64 `json:"predicted_per_token_gain"`
}

type runJSON struct {
	Phases     []phaseJSON     `json:"phases"`
	TailP95    float64         `json:"tail_p95_s"`
	Migrations []migrationJSON `json:"migrations,omitempty"`
}

type summaryJSON struct {
	Model            string   `json:"model"`
	Layers           int      `json:"layers"`
	GPUs             int      `json:"gpus"`
	Replicas         int      `json:"replicas"`
	LoadFrac         float64  `json:"load_frac"`
	Seed             uint64   `json:"seed"`
	TokenCapacity    float64  `json:"token_capacity_per_replica"`
	CostFixedUS      float64  `json:"cost_fixed_us"`
	CostPerTokenUS   float64  `json:"cost_per_token_us"`
	CostCrossHopUS   float64  `json:"cost_cross_hop_us"`
	Drift            bool     `json:"drift"`
	Static           *runJSON `json:"static,omitempty"`
	Adaptive         *runJSON `json:"adaptive"`
	WarmP95          float64  `json:"warm_p95_s"`
	RecoveryFraction float64  `json:"recovery_fraction"`
}

func toRunJSON(rep *exflow.ServeReport, t0, t1 float64) *runJSON {
	out := &runJSON{TailP95: rep.WindowStats(t0, t1).P95}
	for _, p := range rep.Phases {
		out.Phases = append(out.Phases, phaseJSON{
			Name: p.Name, Requests: p.Requests, P50: p.P50, P95: p.P95, P99: p.P99, Throughput: p.Throughput,
		})
	}
	for _, m := range rep.Migrations {
		out.Migrations = append(out.Migrations, migrationJSON{
			Time: m.Time, Score: m.Score, Moves: m.Moves, CrossNode: m.CrossNodeMoves,
			PauseSeconds: m.Seconds, PredictedGain: m.PredictedGain,
		})
	}
	return out
}

func main() {
	var (
		model    = flag.String("model", "gptm-32", "model preset: gptm-8/16/32/64, gptm-32l, gptm-40l, gptxl")
		layers   = flag.Int("layers", 16, "MoE layer count override; the 16-layer default keeps the demo fast — pass 0 to use the model preset's full depth")
		gpus     = flag.Int("gpus", 16, "expert-parallel group size per replica")
		replicas = flag.Int("replicas", 2, "replica count behind the front-end")
		drift    = flag.Bool("drift", false, "inject a mid-run dataset drift and compare static vs adaptive")
		arrival  = flag.String("arrival", "poisson", "arrival process: poisson | bursty | diurnal")
		load     = flag.Float64("load", 0.97, "offered load as a fraction of the calibrated capacity knee")
		warm     = flag.Float64("warm", 20, "seconds of in-distribution traffic")
		duration = flag.Float64("duration", 40, "seconds of the main (drifted, with -drift) traffic era")
		decode   = flag.Int("decode", 32, "decode tokens per request")
		tilt     = flag.Float64("tilt", 8, "domain specialization of the checkpoint (1 = paper-faithful mild tilt)")
		strength = flag.Float64("strength", 0.85, "synthetic affinity strength")
		seed     = flag.Uint64("seed", 7, "deterministic seed")
		jsonPath = flag.String("json", "BENCH_serve.json", "machine-readable summary path ('-' to skip the file)")
	)
	flag.Parse()

	mk, ok := models[*model]
	if !ok {
		fmt.Fprintf(os.Stderr, "exflow-serve: unknown model %q\n", *model)
		os.Exit(1)
	}
	cfg := mk()
	if *layers > 0 {
		cfg.Layers = *layers
	}
	sys := exflow.NewSystem(exflow.SystemOptions{
		Model: cfg, GPUs: *gpus, AffinityStrength: *strength, DomainTilt: *tilt, Seed: *seed,
	})
	fmt.Printf("serving %s x%d replicas, %s arrivals at %.0f%% of capacity\n",
		cfg.String(), *replicas, *arrival, *load*100)

	phases := []exflow.ServePhase{{Name: "warm", Duration: *warm, Arrival: *arrival}}
	if *drift {
		phases = append(phases, exflow.ServePhase{
			Name: "drift", Duration: *duration, Arrival: *arrival, Dataset: exflow.ViralDataset(),
		})
	} else {
		phases[0].Duration = *warm + *duration
		phases[0].Name = "steady"
	}
	base := exflow.ServeOptions{
		Replicas:      *replicas,
		DecodeTokens:  *decode,
		LoadFrac:      *load,
		Phases:        phases,
		LatencyBucket: (*warm + *duration) / 80,
	}
	// Calibrate once (profiling + ~6 real engine runs) and share it across
	// the static and adaptive fleets.
	cal, err := exflow.CalibrateServe(sys, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exflow-serve:", err)
		os.Exit(1)
	}
	base.Calibration = cal

	run := func(adaptive bool) (*exflow.ServeReport, *exflow.ServeMetrics) {
		o := base
		o.Adaptive = adaptive
		rep, met, err := exflow.Serve(sys, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		return rep, met
	}

	tail0, tail1 := *warm+*duration/2, *warm+*duration
	sum := summaryJSON{
		Model: cfg.Name, Layers: cfg.Layers, GPUs: *gpus, Replicas: *replicas,
		LoadFrac: *load, Seed: *seed, Drift: *drift,
	}

	if !*drift {
		rep, met := run(true)
		fillMetrics(&sum, met)
		sum.Adaptive = toRunJSON(rep, tail0, tail1)
		sum.WarmP95 = rep.Phases[0].P95
		fmt.Print(rep.String())
	} else {
		fmt.Println("\n--- static placement (offline ExFlow, never re-placed) ---")
		st, met := run(false)
		fillMetrics(&sum, met)
		fmt.Print(st.String())
		fmt.Println("\n--- adaptive placement (drift detection + live re-placement) ---")
		ad, _ := run(true)
		fmt.Print(ad.String())

		tb := stats.NewTable("P95 request latency (s) over time — the migration pause is the adaptive spike after drift hits", "sim-seconds")
		addSeries(tb, st.LatencyP95, "static")
		addSeries(tb, ad.LatencyP95, "adaptive")
		fmt.Println()
		fmt.Print(tb.Render())

		sum.Static = toRunJSON(st, tail0, tail1)
		sum.Adaptive = toRunJSON(ad, tail0, tail1)
		sum.WarmP95 = st.Phases[0].P95
		// A regression below 5% of the warm P95 is measurement noise; leave
		// the recovery fraction at 0 rather than dividing by it.
		reg := sum.Static.TailP95 - sum.WarmP95
		measurable := reg > 0.05*sum.WarmP95
		if measurable {
			sum.RecoveryFraction = (sum.Static.TailP95 - sum.Adaptive.TailP95) / reg
		}
		fmt.Printf("\nwarm P95 %.3fs | static tail P95 %.3fs | adaptive tail P95 %.3fs\n",
			sum.WarmP95, sum.Static.TailP95, sum.Adaptive.TailP95)
		if measurable {
			fmt.Printf("adaptive re-placement recovered %.0f%% of the P95 regression static ExFlow suffered under drift\n",
				sum.RecoveryFraction*100)
		} else {
			fmt.Println("static placement did not measurably regress under this drift; nothing to recover")
		}
	}

	if *jsonPath != "-" {
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// fillMetrics copies calibration numbers into the summary.
func fillMetrics(sum *summaryJSON, met *exflow.ServeMetrics) {
	sum.TokenCapacity = met.TokenCapacity
	sum.CostFixedUS = met.Cost.Fixed * 1e6
	sum.CostPerTokenUS = met.Cost.PerToken * 1e6
	sum.CostCrossHopUS = met.Cost.PerCrossHop * 1e6
}

// addSeries registers a report series on a table under a new name.
func addSeries(tb *stats.Table, s *stats.Series, name string) {
	c := tb.NewSeries(name)
	c.X = append(c.X, s.X...)
	c.Y = append(c.Y, s.Y...)
}

package main

// The -replication sweep: expert-copy replication vs memory pressure.
//
// Replication relaxes ExFlow's exclusivity constraint (Formula 10): an extra
// copy of a hot expert lets the router keep more transitions on-GPU or
// on-node, buying back iteration time — but every copy occupies an HBM slot
// that could have held a resident expert, so under tiered-memory
// oversubscription the same copy also buys stalls. This sweep maps that
// frontier: for each oversubscription ratio (1x = exactly provisioned, 2x/4x
// = half/quarter resident) it serves identical traffic under placements
// solved with increasing replication budgets and records P95 and
// tokens-per-second per arm. Budget 0 must be bit-identical to the
// single-copy solver; the replication win is expected at >= 2x, where the
// crossing relief outweighs the residency displacement the annealer prices.
//
// The sweep serves the viral near-single-domain mixture, profiled and solved
// on that same mixture — replication's paying regime. Under the broad
// profiling mixture expert popularity is near-uniform (each GPU's serialized
// fetch queue holds ~one expert per layer, and every copy displaces a slot
// another expert earns more with), so a replication budget correctly buys
// nothing: the annealer keeps zero copies and the frontier degenerates to
// flat columns. A domain-specialized checkpoint under near-single-domain
// traffic concentrates demand onto a few hot experts whose host links become
// the stall ceiling, and copies of exactly those experts are what a budget
// buys.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro"
	"repro/internal/moe"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/rng"
)

// repRunJSON is one (oversubscription ratio, replication budget) cell of the
// frontier.
type repRunJSON struct {
	Ratio         float64 `json:"oversubscription"`
	Budget        int     `json:"budget"`
	ExtraCopies   int     `json:"extra_copies"`
	OfferedRPS    float64 `json:"offered_req_per_sec"`
	HitRate       float64 `json:"hit_rate"`
	StallPerToken float64 `json:"clock_stall_s_per_token"`
	P50           float64 `json:"p50_s"`
	P95           float64 `json:"p95_s"`
	P99           float64 `json:"p99_s"`
	Throughput    float64 `json:"tokens_per_sec"`
}

// repSummaryJSON is the BENCH_replication.json shape.
type repSummaryJSON struct {
	Model     string    `json:"model"`
	Layers    int       `json:"layers"`
	GPUs      int       `json:"gpus"`
	Replicas  int       `json:"replicas"`
	Seed      uint64    `json:"seed"`
	Arrival   string    `json:"arrival"`
	Dataset   string    `json:"dataset"`
	Straggler bool      `json:"dispatch_imbalance"`
	Provision float64   `json:"provision_frac"`
	Residency string    `json:"residency_model"`
	Budgets   []int     `json:"budgets"`
	Ratios    []float64 `json:"oversubscriptions"`

	Runs []repRunJSON `json:"runs"`

	Acceptance struct {
		// Budget0BitIdentical: at budget 0 the replication pass must be a
		// no-op — the solved placement equals the single-copy solver's
		// output exactly and carries no replica sets.
		Budget0BitIdentical bool `json:"budget0_bit_identical"`
		// ReplicationWins: some budget > 0 arm beats the single-copy P95 at
		// an oversubscription ratio >= 2.
		ReplicationWins     bool    `json:"replication_beats_single_copy_at_2x"`
		SingleCopy2xP95     float64 `json:"single_copy_2x_p95_s"`
		BestReplicated2xP95 float64 `json:"best_replicated_2x_p95_s"`
		BestBudget2x        int     `json:"best_budget_2x"`
		SingleCopy4xP95     float64 `json:"single_copy_4x_p95_s"`
		BestReplicated4xP95 float64 `json:"best_replicated_4x_p95_s"`
		BestBudget4x        int     `json:"best_budget_4x"`
	} `json:"acceptance"`
}

// replicationConfig carries the sweep's knobs from the flag set.
type replicationConfig struct {
	gpus, replicas, decode, hostSlots int
	seed                              uint64
	dur, provision                    float64
	arrival, jsonPath, residency      string
	solveWorkers                      int
}

// repArm is one finished cell.
type repArm struct {
	ratioIdx, budgetIdx int
	ratio               float64
	budget              int
	rate                float64
	pl                  *placement.Placement
	rep                 *exflow.ServeReport
}

// runReplicationSweep serves identical steady traffic per oversubscription
// ratio under placements solved with each replication budget, plus a direct
// single-copy solve per ratio as the bit-identity reference. Arms at a ratio
// share a deterministic per-ratio seed (identical arrival streams), so P95
// differences between budgets are placement, not luck. Results are sorted
// before writing, so the JSON is byte-identical regardless of which arm
// finishes first.
func runReplicationSweep(sys *exflow.System, cfg moe.Config, rc replicationConfig) {
	gpus, replicas, decode, hostSlots := rc.gpus, rc.replicas, rc.decode, rc.hostSlots
	seed, dur, jsonPath := rc.seed, rc.dur, rc.jsonPath
	ratios := []float64{1, 2, 4}
	budgets := []int{0, gpus / 2, gpus, 2 * gpus, 4 * gpus}
	hot := exflow.ViralDataset()
	fmt.Printf("replication sweep: %s on %d GPUs x%d replicas, budgets %v at %vx oversubscription, %.0fs of %s %s traffic per arm\n",
		cfg.String(), gpus, replicas, budgets[1:], ratios, dur, rc.arrival, hot.Name)

	base := exflow.ServeOptions{
		Replicas:      replicas,
		DecodeTokens:  decode,
		SolveWorkers:  rc.solveWorkers,
		LatencyBucket: dur / 80,
		Seed:          seed,
		// Every arm — the single-copy reference included — is measured under
		// the straggler-aware hop model, so budgets compete on one cost
		// surface: the mean-hop model can only see replication's slot
		// displacement, never the inbound concentration it flattens.
		DispatchImbalance: true,
	}
	cal, err := exflow.CalibrateServe(sys, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exflow-serve:", err)
		os.Exit(1)
	}
	base.Calibration = cal

	// Every arm — the single-copy reference included — solves on a trace
	// profiled from the mixture it will serve, so budgets are the only
	// degree of freedom on the frontier and the budget-0 bit-identity check
	// stays meaningful.
	profTokens := base.ProfileTokens
	if profTokens == 0 {
		profTokens = 3000
	}
	trHot := sys.ProfileOn(hot, profTokens, 0)

	sum := repSummaryJSON{
		Model: cfg.Name, Layers: cfg.Layers, GPUs: gpus, Replicas: replicas, Seed: seed,
		Arrival: rc.arrival, Dataset: hot.Name, Straggler: true,
		Provision: rc.provision, Residency: rc.residency,
		Budgets: budgets, Ratios: ratios,
	}
	if sum.Residency == "" {
		sum.Residency = "static"
	}

	// armSeed matches the oversub sweep's convention: every budget at a ratio
	// shares the ratio's seed, so the frontier compares identical arrivals.
	armSeed := func(ratioIdx int) uint64 { return rng.Mix64(seed, 0x2E71, uint64(ratioIdx)) }

	baseRate := rc.provision * cal.Metrics.RequestCapacity

	var (
		mu        sync.Mutex
		arms      []repArm
		errs      []error
		identical = true
	)
	collect := func(a repArm, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errs = append(errs, err)
			return
		}
		arms = append(arms, a)
	}

	var wg sync.WaitGroup
	for i, ratio := range ratios {
		wg.Add(1)
		go func(i int, ratio float64) {
			defer wg.Done()
			rate := baseRate
			if ratio > 1 {
				// Saturating capacity probe under the hot mixture itself (the
				// knee shifts with the mixture's residency footprint), as the
				// operator provisioning this traffic would measure it.
				probe := base
				probe.HostSlots = hostSlots
				probe.Adaptive = false
				probe.Oversubscription = ratio
				probe.CachePolicy = "affinity"
				probe.Phases = []exflow.ServePhase{{Name: "probe", Duration: dur / 2,
					Rate: 3 * cal.Metrics.RequestCapacity, Arrival: "poisson", Dataset: hot}}
				rep, _, err := exflow.Serve(sys, probe)
				if err != nil {
					collect(repArm{}, err)
					return
				}
				if rep.Makespan <= 0 {
					collect(repArm{}, fmt.Errorf("exflow-serve: replication capacity probe served nothing"))
					return
				}
				rate = rc.provision * (float64(rep.Tokens) / rep.Makespan) / float64(decode)
			}
			// The single-copy reference the budget-0 arm must reproduce bit
			// for bit: the pre-replication solver entry for this ratio.
			single := sys.SolvePlacementMemoryAware(trHot, ratio, "affinity", 0, hostSlots)
			var bwg sync.WaitGroup
			for bi, budget := range budgets {
				bwg.Add(1)
				go func(bi, budget int) {
					defer bwg.Done()
					pl := sys.SolvePlacementReplicated(trHot, ratio, "affinity", 0, hostSlots, budget)
					if budget == 0 {
						mu.Lock()
						identical = identical && pl.Equal(single) && !pl.Replicated()
						mu.Unlock()
					}
					calR := *cal
					calR.Placement = pl
					o := base
					o.Calibration = &calR
					o.Oversubscription = ratio
					o.CachePolicy = "affinity"
					o.HostSlots = hostSlots
					o.Seed = armSeed(i)
					o.Phases = []exflow.ServePhase{{Name: "steady", Duration: dur, Rate: rate, Arrival: rc.arrival, Dataset: hot}}
					rep, _, err := exflow.Serve(sys, o)
					collect(repArm{ratioIdx: i, budgetIdx: bi, ratio: ratio, budget: budget,
						rate: rate, pl: pl, rep: rep}, err)
				}(bi, budget)
			}
			bwg.Wait()
		}(i, ratio)
	}
	wg.Wait()
	if len(errs) > 0 {
		for _, err := range errs {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
		}
		os.Exit(1)
	}

	sort.Slice(arms, func(a, b int) bool {
		if arms[a].ratio != arms[b].ratio {
			return arms[a].ratio < arms[b].ratio
		}
		return arms[a].budget < arms[b].budget
	})

	// singleP95 / bestRep index the frontier's acceptance lookups.
	singleP95 := map[float64]float64{}
	bestRepP95 := map[float64]float64{}
	bestBudget := map[float64]int{}
	for _, a := range arms {
		rep := a.rep
		stallPerToken := 0.0
		if rep.Tokens > 0 {
			stallPerToken = rep.MemStallSeconds / float64(rep.Tokens)
		}
		sum.Runs = append(sum.Runs, repRunJSON{
			Ratio: a.ratio, Budget: a.budget, ExtraCopies: a.pl.TotalExtras(), OfferedRPS: a.rate,
			HitRate: rep.ExpertMem.EffectiveHitRate(), StallPerToken: stallPerToken,
			P50: rep.Overall.P50, P95: rep.Overall.P95, P99: rep.Overall.P99,
			Throughput: rep.Overall.Throughput,
		})
		fmt.Printf("  %.0fx budget %3d (%3d copies kept)  P95 %8.4fs  %7.0f tok/s  hit %5.1f%%  stall/token %.3fms\n",
			a.ratio, a.budget, a.pl.TotalExtras(), rep.Overall.P95, rep.Overall.Throughput,
			rep.ExpertMem.EffectiveHitRate()*100, stallPerToken*1e3)
		if a.budget == 0 {
			singleP95[a.ratio] = rep.Overall.P95
		} else if best, ok := bestRepP95[a.ratio]; !ok || rep.Overall.P95 < best {
			bestRepP95[a.ratio] = rep.Overall.P95
			bestBudget[a.ratio] = a.budget
		}
	}

	ac := &sum.Acceptance
	ac.Budget0BitIdentical = identical
	ac.SingleCopy2xP95, ac.BestReplicated2xP95, ac.BestBudget2x = singleP95[2], bestRepP95[2], bestBudget[2]
	ac.SingleCopy4xP95, ac.BestReplicated4xP95, ac.BestBudget4x = singleP95[4], bestRepP95[4], bestBudget[4]
	for _, ratio := range ratios {
		if ratio >= 2 && bestRepP95[ratio] > 0 && bestRepP95[ratio] < singleP95[ratio] {
			ac.ReplicationWins = true
		}
	}
	fmt.Printf("\nbudget-0 bit-identical to the single-copy solver: %v\n", ac.Budget0BitIdentical)
	fmt.Printf("2x: single-copy P95 %.4fs vs best replicated %.4fs (budget %d)\n",
		ac.SingleCopy2xP95, ac.BestReplicated2xP95, ac.BestBudget2x)
	fmt.Printf("4x: single-copy P95 %.4fs vs best replicated %.4fs (budget %d)\n",
		ac.SingleCopy4xP95, ac.BestReplicated4xP95, ac.BestBudget4x)
	fmt.Printf("replication beats single-copy at >= 2x oversubscription: %v\n", ac.ReplicationWins)

	if jsonPath != "-" {
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		if err := obs.WriteFileAtomic(jsonPath, append(blob, '\n')); err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

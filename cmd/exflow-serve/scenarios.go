package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// runScenarioMatrix drives the declarative chaos scenario matrix
// (internal/scenario) and writes the machine-readable summary. The process
// exits nonzero if any row fails its gate, so CI can run this directly.
func runScenarioMatrix(scale string, seed uint64, jsonPath string) {
	fmt.Printf("chaos scenario matrix: %s scale, seed %d\n", scale, seed)
	sum, err := scenario.RunAll(scenario.Config{Seed: seed, Scale: scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "exflow-serve:", err)
		os.Exit(1)
	}
	for _, r := range sum.Scenarios {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		fmt.Printf("  %-4s %-26s %-7s %-3s %s\n", status, r.ID, r.Category, r.Priority, r.Notes)
	}
	blob, err := sum.Marshal()
	if err != nil {
		fmt.Fprintln(os.Stderr, "exflow-serve:", err)
		os.Exit(1)
	}
	if jsonPath != "-" {
		if err := obs.WriteFileAtomic(jsonPath, blob); err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if !sum.AllPass {
		fmt.Fprintln(os.Stderr, "exflow-serve: scenario matrix failed its gates")
		os.Exit(1)
	}
}

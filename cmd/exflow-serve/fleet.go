package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"

	"repro"
	"repro/internal/moe"
	"repro/internal/obs"
)

// fleetConfig carries the fleet benchmark's knobs from the flag set.
type fleetConfig struct {
	gpus, replicas, decode int
	seed                   uint64
	warm, duration         float64
	arrival                string
	solveWorkers           int
	jsonPath               string
}

// fleetArmJSON is one serving run of the fleet benchmark.
type fleetArmJSON struct {
	Name string `json:"name"`
	// Spike / Recover stats are over the requests arriving in that phase;
	// Overall spans the run.
	SpikeP95   float64 `json:"spike_p95_s"`
	SpikeP99   float64 `json:"spike_p99_s"`
	RecoverP95 float64 `json:"recover_p95_s"`
	OverallP95 float64 `json:"overall_p95_s"`
	Makespan   float64 `json:"makespan_s"`
	Requests   int     `json:"requests"`
	// Fleet accounting (zero for the fleet-nil baseline).
	Arrivals    int `json:"arrivals"`
	Shed        int `json:"shed"`
	Deferred    int `json:"deferred"`
	ScaleUps    int `json:"scale_ups"`
	ScaleDowns  int `json:"scale_downs"`
	MaxLive     int `json:"max_live"`
	FinalLive   int `json:"final_live"`
	NVMeFetches int `json:"nvme_fetches"`
	DRAMHits    int `json:"dram_hits"`
	// QueueBound is the matched MaxQueuePerReplica (queue-admission arm only).
	QueueBound int `json:"queue_bound,omitempty"`
}

// fleetSummaryJSON is the BENCH_fleet.json shape (schema/fleet.schema.json).
type fleetSummaryJSON struct {
	Model            string  `json:"model"`
	Layers           int     `json:"layers"`
	GPUs             int     `json:"gpus"`
	Replicas         int     `json:"replicas"`
	MaxReplicas      int     `json:"max_replicas"`
	Seed             uint64  `json:"seed"`
	Oversubscription float64 `json:"oversubscription"`
	HostSlots        int     `json:"host_slots"`
	SLOSeconds       float64 `json:"slo_s"`
	WarmRPS          float64 `json:"warm_req_per_sec"`
	SpikeRPS         float64 `json:"spike_req_per_sec"`
	WarmSeconds      float64 `json:"warm_s"`
	SpikeSeconds     float64 `json:"spike_s"`
	RecoverSeconds   float64 `json:"recover_s"`

	Arms []fleetArmJSON `json:"arms"`

	Acceptance struct {
		// FleetDisabledBitIdentical: an all-zero FleetSpec (admit everything,
		// never scale, no shared cache) reproduces the fleet-nil run exactly.
		FleetDisabledBitIdentical bool `json:"fleet_disabled_bit_identical"`
		// SharedCacheReducesNVMe: the shared node-level master tier strictly
		// reduces fleet-wide NVMe fetches vs per-replica static splits.
		SharedCacheReducesNVMe bool `json:"shared_cache_reduces_nvme_fetches"`
		NVMeIndependent        int  `json:"nvme_fetches_independent"`
		NVMeShared             int  `json:"nvme_fetches_shared"`
		// PagingBeatsQueueP99: at a queue bound matched to shed the same
		// number of requests, paging-aware admission yields a lower
		// flash-crowd P99 than the queue-depth baseline.
		PagingBeatsQueueP99 bool    `json:"paging_beats_queue_p99_at_equal_shed"`
		PagingShed          int     `json:"paging_shed"`
		QueueShed           int     `json:"queue_shed"`
		PagingSpikeP99      float64 `json:"paging_spike_p99_s"`
		QueueSpikeP99       float64 `json:"queue_spike_p99_s"`
		// AutoscalerRecoversP95: scaling up within MaxReplicas beats the
		// fixed fleet's flash-crowd P95. AutoscalerScalesBackDown: the fleet
		// returns toward MinReplicas once the crowd passes.
		AutoscalerRecoversP95    bool `json:"autoscaler_recovers_p95"`
		AutoscalerScalesBackDown bool `json:"autoscaler_scales_back_down"`
	} `json:"acceptance"`
}

// toFleetArm summarizes one run.
func toFleetArm(name string, rep *exflow.ServeReport, warm, spike float64) fleetArmJSON {
	a := fleetArmJSON{
		Name:       name,
		SpikeP95:   rep.WindowStats(warm, warm+spike).P95,
		SpikeP99:   rep.WindowStats(warm, warm+spike).P99,
		RecoverP95: rep.WindowStats(warm+spike, rep.Makespan+1).P95,
		OverallP95: rep.Overall.P95,
		Makespan:   rep.Makespan,
		Requests:   rep.Requests,
	}
	if rep.ExpertMem != nil {
		a.NVMeFetches = rep.ExpertMem.NVMeFetches
	}
	if fl := rep.Fleet; fl != nil {
		a.Arrivals, a.Shed, a.Deferred = fl.Arrivals, fl.Shed, fl.Deferred
		a.ScaleUps, a.ScaleDowns = fl.ScaleUps, fl.ScaleDowns
		a.MaxLive, a.FinalLive = fl.MaxLive, fl.FinalLive
		if fl.HostCache != nil {
			a.DRAMHits = fl.HostCache.DRAMHits
		}
	}
	return a
}

// runFleetBench drives the fleet tier through a flash crowd: a warm era at
// comfortable load, a 2.5x spike on a shifted token mixture, and a recovery
// era — once per fleet configuration over the identical arrival stream. The
// arms establish the tier's three claims (shared host cache cuts NVMe
// traffic, paging-aware admission beats queue depth at equal shed, the
// autoscaler recovers the spike and stands back down) plus the inert-spec
// bit-identity guarantee.
func runFleetBench(sys *exflow.System, cfg moe.Config, fc fleetConfig) {
	const ratio = 2.0
	spikeDur, recoverDur := fc.duration/2, fc.duration/2
	hostSlots := cfg.Layers * cfg.Experts / 4
	fmt.Printf("fleet benchmark: %s on %d GPUs x%d replicas, %.0fs warm + %.0fs flash crowd + %.0fs recovery at %.1fx oversubscription\n",
		cfg.String(), fc.gpus, fc.replicas, fc.warm, spikeDur, recoverDur, ratio)

	base := exflow.ServeOptions{
		Replicas:     fc.replicas,
		DecodeTokens: fc.decode,
		SolveWorkers: fc.solveWorkers,
		Seed:         fc.seed,
	}
	cal, err := exflow.CalibrateServe(sys, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exflow-serve:", err)
		os.Exit(1)
	}
	base.Calibration = cal
	probeBase := base
	probeBase.HostSlots = hostSlots
	capTok, err := exflow.ProbeMemoryCapacity(sys, probeBase, ratio, fc.warm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exflow-serve:", err)
		os.Exit(1)
	}
	warmRate := 0.6 * capTok / float64(fc.decode)
	spikeRate := 2.5 * warmRate
	phases := []exflow.ServePhase{
		{Name: "warm", Duration: fc.warm, Rate: warmRate, Arrival: fc.arrival},
		{Name: "spike", Duration: spikeDur, Rate: spikeRate, Arrival: fc.arrival, Dataset: exflow.ViralDataset()},
		{Name: "recover", Duration: recoverDur, Rate: warmRate, Arrival: fc.arrival},
	}

	run := func(spec *exflow.FleetSpec, slo float64) *exflow.ServeReport {
		o := base
		o.Oversubscription = ratio
		o.HostSlots = hostSlots
		o.Phases = phases
		o.Fleet = spec
		if spec != nil && spec.Admission == exflow.FleetAdmissionPaging {
			spec.SLOSeconds = slo
		}
		rep, _, err := exflow.Serve(sys, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		return rep
	}

	// Reconciliation cadences scale with the traffic program so the bench
	// behaves at smoke scale too.
	recon := math.Max(0.25, fc.warm/16)
	autoSpec := func() *exflow.FleetSpec {
		return &exflow.FleetSpec{
			MinReplicas:       fc.replicas,
			MaxReplicas:       3 * fc.replicas,
			ReconcileInterval: recon,
			ScaleUpCooldown:   2 * recon,
			ScaleDownCooldown: 4 * recon,
			DownscaleStreak:   2,
			ForecastHalfLife:  math.Max(1, fc.warm/8),
		}
	}

	// The fleet-nil baseline first: its warm-era P95 sets the paging SLO.
	nilRun := run(nil, 0)
	warmP95 := nilRun.Phases[0].P95
	slo := 1.5 * warmP95
	fmt.Printf("warm P95 %.4fs -> admission SLO %.4fs (%.1f req/s warm, %.1f req/s spike)\n",
		warmP95, slo, warmRate, spikeRate)

	// Independent arms share the arrival stream (same seed, same phases) and
	// only read shared state, so they fan out; results land in named slots.
	var (
		wg                  sync.WaitGroup
		inertRun, sharedRun *exflow.ServeReport
		pagingRun, autoRun  *exflow.ServeReport
	)
	launch := func(dst **exflow.ServeReport, spec *exflow.FleetSpec) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			*dst = run(spec, slo)
		}()
	}
	launch(&inertRun, &exflow.FleetSpec{})
	launch(&sharedRun, &exflow.FleetSpec{SharedHostCache: true})
	launch(&pagingRun, &exflow.FleetSpec{Admission: exflow.FleetAdmissionPaging})
	launch(&autoRun, autoSpec())
	wg.Wait()

	// Queue-depth baseline at matched shed volume: integer bisection on the
	// per-replica queue bound (shedding falls as the bound rises).
	target := pagingRun.Fleet.Shed
	lo, hi := 1, 512
	bestK, bestDiff := 0, math.MaxInt32
	var queueRun *exflow.ServeReport
	for lo <= hi {
		mid := (lo + hi) / 2
		rep := run(&exflow.FleetSpec{Admission: exflow.FleetAdmissionQueue, MaxQueuePerReplica: mid}, 0)
		diff := rep.Fleet.Shed - target
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			queueRun, bestK, bestDiff = rep, mid, diff
		}
		switch {
		case rep.Fleet.Shed > target:
			lo = mid + 1
		case rep.Fleet.Shed < target:
			hi = mid - 1
		default:
			lo = hi + 1 // exact match
		}
	}

	sum := fleetSummaryJSON{
		Model: cfg.Name, Layers: cfg.Layers, GPUs: fc.gpus,
		Replicas: fc.replicas, MaxReplicas: 3 * fc.replicas, Seed: fc.seed,
		Oversubscription: ratio, HostSlots: hostSlots, SLOSeconds: slo,
		WarmRPS: warmRate, SpikeRPS: spikeRate,
		WarmSeconds: fc.warm, SpikeSeconds: spikeDur, RecoverSeconds: recoverDur,
	}
	queueArm := toFleetArm("queue-admission", queueRun, fc.warm, spikeDur)
	queueArm.QueueBound = bestK
	sum.Arms = []fleetArmJSON{
		toFleetArm("fleet-nil", nilRun, fc.warm, spikeDur),
		toFleetArm("inert-spec", inertRun, fc.warm, spikeDur),
		toFleetArm("shared-cache", sharedRun, fc.warm, spikeDur),
		toFleetArm("paging-admission", pagingRun, fc.warm, spikeDur),
		queueArm,
		toFleetArm("autoscaler", autoRun, fc.warm, spikeDur),
	}

	a := &sum.Acceptance
	a.FleetDisabledBitIdentical = inertRun.Overall.P95 == nilRun.Overall.P95 &&
		inertRun.Makespan == nilRun.Makespan && inertRun.Requests == nilRun.Requests
	a.NVMeIndependent = nilRun.ExpertMem.NVMeFetches
	a.NVMeShared = sharedRun.ExpertMem.NVMeFetches
	a.SharedCacheReducesNVMe = a.NVMeShared < a.NVMeIndependent
	a.PagingShed, a.QueueShed = pagingRun.Fleet.Shed, queueRun.Fleet.Shed
	a.PagingSpikeP99 = pagingRun.WindowStats(fc.warm, fc.warm+spikeDur).P99
	a.QueueSpikeP99 = queueRun.WindowStats(fc.warm, fc.warm+spikeDur).P99
	a.PagingBeatsQueueP99 = a.PagingSpikeP99 < a.QueueSpikeP99
	nilSpikeP95 := nilRun.WindowStats(fc.warm, fc.warm+spikeDur).P95
	autoSpikeP95 := autoRun.WindowStats(fc.warm, fc.warm+spikeDur).P95
	a.AutoscalerRecoversP95 = autoRun.Fleet.ScaleUps > 0 &&
		autoRun.Fleet.MaxLive <= 3*fc.replicas && autoSpikeP95 < nilSpikeP95
	a.AutoscalerScalesBackDown = autoRun.Fleet.ScaleDowns > 0 &&
		autoRun.Fleet.FinalLive < autoRun.Fleet.MaxLive

	for _, arm := range sum.Arms {
		fmt.Printf("  %-17s spike P95 %8.4fs P99 %8.4fs  recover P95 %8.4fs  shed %4d defer %4d  scale %d/%d  live max %d final %d  nvme %d\n",
			arm.Name, arm.SpikeP95, arm.SpikeP99, arm.RecoverP95, arm.Shed, arm.Deferred,
			arm.ScaleUps, arm.ScaleDowns, arm.MaxLive, arm.FinalLive, arm.NVMeFetches)
	}
	fmt.Printf("\ninert spec bit-identical to fleet-nil: %v\n", a.FleetDisabledBitIdentical)
	fmt.Printf("shared host tier NVMe fetches %d vs independent %d -> reduces: %v\n",
		a.NVMeShared, a.NVMeIndependent, a.SharedCacheReducesNVMe)
	fmt.Printf("paging admission spike P99 %.4fs (shed %d) vs queue-depth %.4fs (shed %d, bound %d) -> paging wins: %v\n",
		a.PagingSpikeP99, a.PagingShed, a.QueueSpikeP99, a.QueueShed, bestK, a.PagingBeatsQueueP99)
	fmt.Printf("autoscaler spike P95 %.4fs vs fixed %.4fs, live max %d final %d -> recovers: %v, scales back down: %v\n",
		autoSpikeP95, nilSpikeP95, autoRun.Fleet.MaxLive, autoRun.Fleet.FinalLive,
		a.AutoscalerRecoversP95, a.AutoscalerScalesBackDown)

	if fc.jsonPath != "-" {
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		if err := obs.WriteFileAtomic(fc.jsonPath, append(blob, '\n')); err != nil {
			fmt.Fprintln(os.Stderr, "exflow-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", fc.jsonPath)
	}
}

// Command exflow-trace generates and inspects expert-routing traces — the
// offline profiling step of the ExFlow pipeline.
//
// Generate:
//
//	exflow-trace -experts 32 -layers 24 -tokens 5000 -o pile.trace
//
// Inspect:
//
//	exflow-trace -inspect pile.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/affinity"
	"repro/internal/moe"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	var (
		experts  = flag.Int("experts", 32, "experts per layer")
		layers   = flag.Int("layers", 24, "MoE layers")
		tokens   = flag.Int("tokens", 5000, "tokens to profile")
		strength = flag.Float64("strength", 0.85, "affinity strength of the synthetic model in [0,1]")
		dataset  = flag.String("dataset", "pile", "dataset profile: pile, c4, dolma, yelp")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		out      = flag.String("o", "", "output trace file")
		inspect  = flag.String("inspect", "", "trace file to inspect instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		fatalIf(err)
		defer f.Close()
		tr, err := trace.Decode(f)
		fatalIf(err)
		fmt.Printf("trace: %d tokens, %d layers, %d experts\n", tr.Tokens(), tr.Layers, tr.Experts)
		aff := affinity.Estimate(tr)
		fmt.Printf("mean top-1/top-3 affinity concentration: %.3f / %.3f\n",
			aff.Concentration(1), aff.Concentration(3))
		fmt.Print(affinity.PairHeatmap(tr, 0, 1).Render())
		return
	}

	var ds *synth.DatasetProfile
	for _, d := range synth.AllDatasets() {
		if d.Name == *dataset {
			ds = d
		}
	}
	if ds == nil {
		fatalIf(fmt.Errorf("unknown dataset %q", *dataset))
	}
	// Derive the kernel seed exactly as exflow.NewSystem does, so traces
	// generated here describe the same synthetic model that exflow-sim
	// -seed N simulates, and plans solved from them transfer.
	kernel := synth.NewKernel(synth.KernelParams{
		Seed: rng.Mix64(*seed, 0x5F5), Layers: *layers, Experts: *experts, Strength: *strength,
	})
	router := synth.NewKernelRouter(kernel, ds, 1)
	tr := trace.Collect(router, *layers, trace.SequentialIDs(*tokens, ds.TokenID))
	fmt.Printf("profiled %d tokens through %s\n", tr.Tokens(),
		moe.Config{Name: "synthetic", Layers: *layers, Experts: *experts}.Name)

	if *out == "" {
		fmt.Println("no -o given; printing layer-0 transition heatmap")
		fmt.Print(affinity.PairHeatmap(tr, 0, 1).Render())
		return
	}
	f, err := os.Create(*out)
	fatalIf(err)
	defer f.Close()
	fatalIf(tr.Encode(f))
	fmt.Printf("wrote %s\n", *out)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "exflow-trace:", err)
		os.Exit(1)
	}
}

// Command exflow-place solves expert placements from a routing trace and
// compares strategies on the paper's Formula-8 objective.
//
//	exflow-trace -experts 32 -layers 12 -tokens 4000 -o pile.trace
//	exflow-place -trace pile.trace -gpus 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/affinity"
	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "trace file produced by exflow-trace")
		gpus      = flag.Int("gpus", 8, "expert-parallel group size")
		seed      = flag.Uint64("seed", 1, "annealer seed")
		planOut   = flag.String("plan", "", "write the staged (exflow) placement as a JSON plan to this file")
		name      = flag.String("name", "custom", "model name recorded in the plan")
	)
	flag.Parse()
	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "exflow-place: -trace is required")
		os.Exit(1)
	}
	f, err := os.Open(*traceFile)
	fatalIf(err)
	defer f.Close()
	tr, err := trace.Decode(f)
	fatalIf(err)
	if tr.Experts%*gpus != 0 {
		fatalIf(fmt.Errorf("experts %d not divisible by gpus %d", tr.Experts, *gpus))
	}

	tp := topo.ForGPUs(*gpus)
	counts := tr.AllTransitionCounts()
	total := float64(tr.Tokens() * (tr.Layers - 1))
	aff := affinity.Estimate(tr)

	fmt.Printf("trace: %d tokens, %d layers, %d experts; topology: %s\n\n",
		tr.Tokens(), tr.Layers, tr.Experts, tp)
	fmt.Printf("%-22s %14s %14s %14s\n", "strategy", "cross-gpu", "cross-node", "intra-gpu%")
	show := func(name string, pl *placement.Placement) {
		if err := pl.Validate(); err != nil {
			fatalIf(fmt.Errorf("%s produced invalid placement: %w", name, err))
		}
		loc := pl.Locality(tr, tp)
		fmt.Printf("%-22s %14.0f %14.0f %13.1f%%\n", name,
			pl.Crossings(counts), pl.NodeCrossings(counts, tp.GPUsPerNode), loc.FracSameGPU*100)
	}
	show("contiguous (baseline)", placement.Contiguous(tr.Layers, tr.Experts, *gpus))
	show("random", placement.Random(tr.Layers, tr.Experts, *gpus, *seed))
	show("greedy", placement.Greedy(aff, *gpus))
	show("layersweep", placement.LayerSweep(counts, tr.Layers, tr.Experts, *gpus, placement.LayerSweepOptions{}))
	show("sweep+anneal", placement.Solve(counts, tr.Layers, tr.Experts, *gpus, *seed))
	show("staged (exflow)", placement.Staged(counts, tr.Layers, tr.Experts, tp, *seed))
	fmt.Printf("\ntotal transitions: %.0f\n", total)

	if *planOut != "" {
		opt := &core.Optimizer{ModelName: *name, Topo: tp, Seed: *seed}
		plan, err := opt.Solve(tr)
		fatalIf(err)
		out, err := os.Create(*planOut)
		fatalIf(err)
		defer out.Close()
		fatalIf(plan.Encode(out))
		fmt.Printf("wrote plan to %s (improvement %.2fx over contiguous)\n", *planOut, plan.ImprovementRatio())
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "exflow-place:", err)
		os.Exit(1)
	}
}

// Command exflow-validate checks a JSON document against one of the repo's
// checked-in JSON schemas (schema/*.schema.json) using the dependency-free
// validator in internal/obs. CI's export-smoke job runs it over the
// -traceout / -metricsout files exflow-serve produced, so a drifting export
// shape fails the build rather than silently breaking downstream tooling.
//
//	exflow-validate -schema schema/trace.schema.json run.json
//	exflow-validate -schema schema/metrics.schema.json metrics.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	schemaPath := flag.String("schema", "", "path to the JSON schema to validate against")
	flag.Parse()
	if *schemaPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: exflow-validate -schema <schema.json> <doc.json>...")
		os.Exit(2)
	}
	schema, err := os.ReadFile(*schemaPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exflow-validate:", err)
		os.Exit(1)
	}
	for _, path := range flag.Args() {
		doc, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exflow-validate:", err)
			os.Exit(1)
		}
		if err := obs.ValidateJSONSchema(schema, doc); err != nil {
			fmt.Fprintf(os.Stderr, "exflow-validate: %s does not match %s: %v\n", path, *schemaPath, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid against %s\n", path, *schemaPath)
	}
}

// Command exflow-sim runs one end-to-end distributed MoE inference
// simulation and prints the full timing breakdown and locality report.
//
//	exflow-sim -model gptm-32 -gpus 16 -mode exflow
//	exflow-sim -model gptxl -gpus 8 -mode vanilla -requests 16 -iters 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/moe"
	"repro/internal/placement"
)

// models maps CLI names to presets.
var models = map[string]func() moe.Config{
	"gptm-8":   func() moe.Config { return moe.GPTM(8) },
	"gptm-16":  func() moe.Config { return moe.GPTM(16) },
	"gptm-32":  func() moe.Config { return moe.GPTM(32) },
	"gptm-64":  func() moe.Config { return moe.GPTM(64) },
	"gptm-32l": moe.GPTM32L,
	"gptm-40l": moe.GPTM40L,
	"gptxl":    moe.GPTXL,
}

func main() {
	var (
		model    = flag.String("model", "gptm-32", "model preset: gptm-8/16/32/64, gptm-32l, gptm-40l, gptxl")
		gpus     = flag.Int("gpus", 8, "expert-parallel group size")
		mode     = flag.String("mode", "exflow", "vanilla | coherent | exflow")
		requests = flag.Int("requests", 8, "requests per GPU")
		prompt   = flag.Int("prompt", 16, "prompt length")
		iters    = flag.Int("iters", 4, "decode iterations")
		profile  = flag.Int("profile", 3000, "profiling tokens for the affinity placement")
		strength = flag.Float64("strength", 0.85, "synthetic affinity strength")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		planFile = flag.String("plan", "", "load the expert placement from a JSON plan (exflow mode)")
	)
	flag.Parse()

	mk, ok := models[*model]
	if !ok {
		fmt.Fprintf(os.Stderr, "exflow-sim: unknown model %q\n", *model)
		os.Exit(1)
	}
	sys := exflow.NewSystem(exflow.SystemOptions{
		Model: mk(), GPUs: *gpus, AffinityStrength: *strength, Seed: *seed,
	})
	w := exflow.Workload{RequestsPerGPU: *requests, PromptLen: *prompt, GenerateTokens: *iters}

	var rep *engine.Report
	switch *mode {
	case "vanilla":
		rep = sys.Run(engine.Vanilla, sys.Baseline(), w)
	case "coherent":
		rep = sys.Run(engine.ContextCoherent, sys.Baseline(), w)
	case "exflow":
		var pl *placement.Placement
		if *planFile != "" {
			f, err := os.Open(*planFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "exflow-sim:", err)
				os.Exit(1)
			}
			plan, err := core.DecodePlan(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "exflow-sim:", err)
				os.Exit(1)
			}
			cfg := mk()
			if err := plan.CheckCompatible(cfg.Layers, cfg.Experts, sys.Topo); err != nil {
				fmt.Fprintln(os.Stderr, "exflow-sim:", err)
				os.Exit(1)
			}
			pl = plan.Placement()
		} else {
			pl = sys.SolvePlacement(sys.Profile(*profile))
		}
		rep = sys.Run(engine.ExFlow, pl, w)
	default:
		fmt.Fprintf(os.Stderr, "exflow-sim: unknown mode %q\n", *mode)
		os.Exit(1)
	}
	fmt.Print(rep.String())
	fmt.Printf("alltoall bytes: %d, allgather bytes: %d\n", rep.AlltoallBytes, rep.AllgatherBytes)
	fmt.Printf("alltoall share of decode time: %.1f%%\n", rep.AlltoallShare()*100)
}

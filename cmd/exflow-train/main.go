// Command exflow-train trains a miniature MoE gate (cross-entropy + GShard
// auxiliary loss against an affinity-bearing teacher) and reports the
// emergence of inter-layer expert affinity across checkpoints, optionally
// writing a routing trace of the trained gate for exflow-place.
//
//	exflow-train -steps 400 -experts 16 -layers 6
//	exflow-train -steps 400 -o student.trace && exflow-place -trace student.trace -gpus 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/affinity"
	"repro/internal/placement"
	"repro/internal/stats"
	"repro/internal/train"
)

func main() {
	var (
		layers   = flag.Int("layers", 6, "MoE layers")
		experts  = flag.Int("experts", 16, "experts per layer")
		steps    = flag.Int("steps", 400, "SGD steps")
		every    = flag.Int("every", 50, "checkpoint interval")
		tokens   = flag.Int("tokens", 2000, "tokens traced per checkpoint")
		gpus     = flag.Int("gpus", 4, "GPUs for the placement-gain metric")
		strength = flag.Float64("teacher", 0.9, "teacher kernel affinity strength")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		out      = flag.String("o", "", "write the final student routing trace to this file")
	)
	flag.Parse()

	tr := train.New(train.Config{
		Layers: *layers, Experts: *experts, TeacherStrength: *strength, Seed: *seed,
	})
	fmt.Printf("%-8s %8s %10s %14s %14s %14s\n",
		"steps", "CE", "accuracy", "top2-affinity", "gini-load", "place-gain")
	report := func() {
		student := tr.TraceStudent(*tokens, 7)
		aff := affinity.Estimate(student)
		counts := student.AllTransitionCounts()
		base := placement.Contiguous(*layers, *experts, *gpus).Crossings(counts)
		solved := placement.Solve(counts, *layers, *experts, *gpus, *seed).Crossings(counts)
		gain := 0.0
		if solved > 0 {
			gain = base / solved
		}
		load := student.LayerLoad(*layers - 1)
		ce := tr.TrainSteps(1) // one extra step to sample the loss
		fmt.Printf("%-8d %8.3f %9.1f%% %14.3f %14.3f %13.2fx\n",
			tr.Step(), ce, tr.Accuracy(150)*100, aff.Concentration(2),
			stats.GiniImbalance(load), gain)
	}
	report()
	for tr.Step() < *steps {
		n := *every
		if tr.Step()+n > *steps {
			n = *steps - tr.Step()
		}
		tr.TrainSteps(n)
		report()
	}

	if *out != "" {
		student := tr.TraceStudent(*tokens, 99)
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exflow-train:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := student.Encode(f); err != nil {
			fmt.Fprintln(os.Stderr, "exflow-train:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d-token student trace to %s\n", student.Tokens(), *out)
	}
}

package exflow

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

func init() {
	register("fig11", runFig11)
	register("fig12", runFig12)
}

// evolutionLayers is the depth of the training-evolution model used by
// Figs 11-12 (the paper profiles the last layer of a 12-layer model).
const evolutionLayers = 12

// runFig11 reproduces Fig 11: the proportion of tokens routed to each
// expert at the last MoE layer over training iterations 0-2000. Training
// starts collapsed onto a few experts and the GShard balancing pressure
// spreads the load until the distribution is near-uniform.
func runFig11(opts ExperimentOptions) *Result {
	res := &Result{ID: "fig11", Title: "Expert load distribution at the last MoE layer over early training"}
	iters := []int{0, 100, 200, 400, 600, 800, 1000, 1500, 2000}
	tokens := opts.scaled(4000, 500)
	for _, experts := range []int{8, 16, 32, 64} {
		ev := synth.NewEvolution(rng.Mix64(opts.Seed, uint64(experts)), evolutionLayers, experts)
		tb := newTableHelper(res, fmt.Sprintf("GPT MoE-%d expert load over training", experts), "iteration")
		sMax := tb.NewSeries("max-expert-share")
		sTop4 := tb.NewSeries("top4-share")
		sGini := tb.NewSeries("imbalance-gini")
		for _, it := range iters {
			shares := ev.LoadShares(it, tokens)
			sMax.Add(float64(it), stats.Max(shares))
			top4 := stats.NewHeatmap("", [][]float64{shares}).DominantColumnFraction(4)
			sTop4.Add(float64(it), top4)
			sGini.Add(float64(it), stats.GiniImbalance(shares))
		}
		res.AddNote("MoE-%d: max share falls from %.2f at iter 0 toward the balanced %.3f", experts,
			stats.Max(ev.LoadShares(0, tokens)), 1/float64(experts))
	}
	res.AddNote("paper: the first hundreds of iterations see a few experts receiving most tokens; GShard loss then balances the distribution")
	return res
}

// runFig12 reproduces Fig 12a/b: the scaled expert affinity over training,
// measured exactly as the paper does — by solving the placement objective
// (Formula 8) on traces from each checkpoint and reporting the achievable
// locality, scaled to the series maximum.
func runFig12(opts ExperimentOptions) *Result {
	res := &Result{ID: "fig12", Title: "Scaled expert affinity during training (solved from Formula 8 at checkpoints)"}
	early := []int{0, 200, 400, 600, 800, 1000, 2000}
	late := []int{2000, 4000, 6000, 8000, 10000, 12000, 14000, 16000, 18000}
	tokens := opts.scaled(2000, 300)
	gpus := 4

	measure := func(ev *synth.Evolution, iter int) float64 {
		k := ev.KernelAt(iter)
		router := synth.NewKernelRouter(k, synth.Pile(), 1)
		ids := make([]uint64, tokens)
		for i := range ids {
			ids[i] = rng.Mix64(uint64(iter), 0xF12, uint64(i))
		}
		tr := trace.Collect(router, evolutionLayers, ids)
		counts := tr.AllTransitionCounts()
		pl := placement.LayerSweep(counts, evolutionLayers, ev.Experts, gpus, placement.LayerSweepOptions{})
		total := float64(tr.Tokens() * (evolutionLayers - 1))
		return 1 - pl.Crossings(counts)/total // achievable locality
	}

	for _, phase := range []struct {
		name  string
		iters []int
	}{{"fig12a (0-2000)", early}, {"fig12b (2000-18000)", late}} {
		tb := newTableHelper(res, "scaled expert affinity, "+phase.name, "iteration")
		for _, experts := range []int{8, 16, 32, 64} {
			ev := synth.NewEvolution(rng.Mix64(opts.Seed, uint64(experts)), evolutionLayers, experts)
			raw := make([]float64, len(phase.iters))
			for i, it := range phase.iters {
				raw[i] = measure(ev, it)
			}
			scaled := stats.ScaleTo(raw, 1)
			s := tb.NewSeries(fmt.Sprintf("%d-experts", experts))
			for i, it := range phase.iters {
				s.Add(float64(it), scaled[i])
			}
		}
	}
	res.AddNote("paper: affinity starts high (collapsed routing), oscillates/dips in the first ~1k iterations, then climbs steadily and stabilizes from 2k onward")
	return res
}

package exflow

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/expertmem"
	"repro/internal/moe"
	"repro/internal/placement"
	"repro/internal/serve"
)

// The cross-layer stall-model conformance suite: the serving layer prices
// expert paging with a bulk-synchronous per-layer approximation
// (serve.LayerStallTimeline, surfaced as Report.MemStallSeconds), while the
// engine charges real per-rank stalls through the identical expertmem
// Manager ("expert-stall" in the breakdown). The two walk different clocks —
// the serve model holds each layer for its slowest fetch; engine ranks
// drift within a layer and resynchronize at the per-layer Alltoalls — so
// they cannot agree exactly. This suite replays each engine run's exact
// routing through the serve model and pins how far apart the two are
// allowed to drift, across the policy x oversubscription x prefetch grid.
//
// Documented tolerances (relative unless stated; see the asserts):
//   - access-level stall seconds (Manager stats, replay vs engine): 10%.
//     Both sides issue the same demand set against the same oracle with
//     engine-matched clocking (per-GPU sequential access times, per-owner
//     hint timing); measured agreement is within ~2%, the tolerance leaves
//     margin for configuration drift.
//   - demand hit rate: 5 percentage points absolute (measured: within 2).
//   - wall-clock: the serve timeline total vs the engine's measured
//     slowdown (paged minus unpaged SimSeconds): 20% (measured: within 8%).
//     The engine figure also absorbs second-order collective re-timing,
//     which the serve model does not represent — this is the approximation
//     the ROADMAP's "engine-side validation" item asked to bound.
//
// At oversubscription 1 every figure must be exactly zero on both sides
// (the 1x-adds-no-overhead guarantee).
//
// Validating the model against the engine this way surfaced (and fixed) two
// genuine mistimings in the original serve approximation: hints were issued
// at the shared layer start — where they were dropped against the owner's
// own in-flight demand fetch — and a GPU's same-layer accesses were all
// stamped at the layer start, double-charging queue time the engine's
// advancing rank clock never pays. See LayerStallTimeline.

// stallCase is one conformance grid cell.
type stallCase struct {
	policy    string
	oversub   float64
	prefetchK int
}

func (c stallCase) name() string {
	return fmt.Sprintf("%s-%.1fx-k%d", c.policy, c.oversub, c.prefetchK)
}

// conformanceTolerance* document the suite's acceptance bounds.
const (
	conformanceToleranceStall   = 0.10 // access-level stall seconds, relative
	conformanceToleranceHitRate = 0.05 // demand hit rate, absolute
	conformanceToleranceClock   = 0.20 // wall-clock stall vs engine slowdown, relative
)

func TestStallModelConformance(t *testing.T) {
	cfg := moe.GPTM(16)
	cfg.Layers = 8
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 8, Seed: 21, DomainTilt: servingDomainTilt})
	pl := sys.SolvePlacement(sys.Profile(1500))
	base := Workload{RequestsPerGPU: 4, PromptLen: 8, GenerateTokens: 6}

	// The memory-free reference run: its per-iteration duration is the serve
	// model's overlap budget, and its makespan is the baseline the paged
	// runs' slowdown is measured against.
	unpaged := sys.Run(engine.ExFlow, pl, base)
	iters := base.GenerateTokens
	perIter := (unpaged.SimSeconds - unpaged.Breakdown["prefill"]) / float64(iters)

	// PrefetchK 0 is not a grid point: Workload defaults it to 4, so the
	// prefetch axis spans a narrow (1) and a wide (8) fan-out instead.
	cases := []stallCase{
		{"affinity", 1, 4},
		{"affinity", 1.5, 4},
		{"affinity", 2, 4},
		{"affinity", 4, 4},
		{"affinity", 2, 1},
		{"affinity", 2, 8},
		{"lru", 2, 4},
		{"lfu", 4, 4},
		{"pin", 2, 4},
	}
	for _, c := range cases {
		t.Run(c.name(), func(t *testing.T) {
			w := base
			w.Oversubscription = c.oversub
			w.CachePolicy = c.policy
			w.PrefetchK = c.prefetchK
			rep := sys.Run(engine.ExFlow, pl, w)
			gpus := float64(sys.Topo.TotalGPUs())
			engineStall := rep.Breakdown["expert-stall"] * gpus
			engineSlowdown := rep.SimSeconds - unpaged.SimSeconds

			replayStats, timeline := replayServeModel(t, sys, pl, w, iters, perIter)

			if c.oversub == 1 {
				// Exact on both sides: the budget is not binding, nothing
				// may stall, and the serve model must agree bit-for-bit.
				if engineStall != 0 || rep.ExpertMem.StallSeconds != 0 {
					t.Fatalf("1x engine stalled: breakdown %v, stats %+v", engineStall, rep.ExpertMem)
				}
				if timeline != 0 || replayStats.StallSeconds != 0 {
					t.Fatalf("1x serve model stalled: timeline %v, stats %+v", timeline, replayStats)
				}
				if rep.SimSeconds != unpaged.SimSeconds {
					t.Fatalf("1x changed the engine clock: %v vs %v", rep.SimSeconds, unpaged.SimSeconds)
				}
				return
			}

			// Access-level stall: same demand stream, same oracle; only
			// fetch timing may diverge.
			if engineStall <= 0 {
				t.Fatalf("oversubscribed engine run reported no stall")
			}
			if rel := math.Abs(replayStats.StallSeconds-engineStall) / engineStall; rel > conformanceToleranceStall {
				t.Errorf("access stall diverged %.0f%%: serve model %.4fs vs engine %.4fs (tolerance %.0f%%)",
					rel*100, replayStats.StallSeconds, engineStall, conformanceToleranceStall*100)
			}
			// Demand hit rate.
			if d := math.Abs(replayStats.HitRate() - rep.ExpertMem.HitRate()); d > conformanceToleranceHitRate {
				t.Errorf("hit rate diverged %.1fpp: serve model %.1f%% vs engine %.1f%% (tolerance %.0fpp)",
					d*100, replayStats.HitRate()*100, rep.ExpertMem.HitRate()*100, conformanceToleranceHitRate*100)
			}
			// Wall-clock: the serve timeline must predict the engine's
			// measured slowdown.
			if engineSlowdown <= 0 {
				t.Fatalf("oversubscribed engine run was not slower than unpaged: %v", engineSlowdown)
			}
			if rel := math.Abs(timeline-engineSlowdown) / engineSlowdown; rel > conformanceToleranceClock {
				t.Errorf("wall-clock stall diverged %.0f%%: serve model %.4fs vs engine slowdown %.4fs (tolerance %.0f%%)",
					rel*100, timeline, engineSlowdown, conformanceToleranceClock*100)
			}
			t.Logf("serve model: stall %.4fs (engine %.4fs), hit %.1f%% (engine %.1f%%), clock %.4fs (engine slowdown %.4fs)",
				replayStats.StallSeconds, engineStall, replayStats.HitRate()*100,
				rep.ExpertMem.HitRate()*100, timeline, engineSlowdown)
		})
	}
}

// replayServeModel drives the exact routing of an engine run through the
// serving layer's stall approximation: the same memory config (oracle,
// slots, links), the same warm preload, and the same token paths — the
// engine's routing is deterministic in (layer, token id, previous expert),
// so the paths are reconstructed rather than instrumented out of the
// engine. Returns the replay Manager's stats and the summed timeline stall.
func replayServeModel(t *testing.T, sys *System, pl *placement.Placement, w Workload, iters int, perIter float64) (expertmem.Stats, float64) {
	t.Helper()
	w = w.withDefaults()
	mcfg := sys.memoryConfigFor(w)
	if mcfg == nil {
		t.Fatal("replay called without a memory config")
	}
	mem := expertmem.New(*mcfg)
	mem.Warm(pl.Assign)

	layers := sys.Model.Cfg.Layers
	batch := sys.Topo.TotalGPUs() * w.RequestsPerGPU
	paths := make([][]int, batch)
	for i := range paths {
		paths[i] = make([]int, layers)
	}
	now := 0.0
	timeline := 0.0
	for iter := 0; iter < iters; iter++ {
		for req := 0; req < batch; req++ {
			id := sys.Dataset.TokenID(uint64(w.EvalOffset + req*4096 + iter))
			prev := -1
			for j := 0; j < layers; j++ {
				experts := sys.Router.Route(j, id, prev, nil)
				paths[req][j] = experts[0]
				prev = experts[0]
			}
		}
		st := serve.LayerStallTimeline(mem, pl, paths, batch, now, perIter)
		timeline += st
		now += perIter + st
	}
	return mem.Stats(), timeline
}

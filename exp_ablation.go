package exflow

import (
	"repro/internal/affinity"
	"repro/internal/engine"
	"repro/internal/ilp"
	"repro/internal/moe"
	"repro/internal/placement"
	"repro/internal/synth"
	"repro/internal/topo"
	"repro/internal/trace"
)

func init() {
	register("ablation_coherence", runAblationCoherence)
	register("ablation_solvers", runAblationSolvers)
	register("ablation_staged", runAblationStaged)
	register("ablation_replication", runAblationReplication)
}

// runAblationCoherence isolates the contribution of context coherence: the
// same contiguous placement run under vanilla (two Alltoalls) and coherent
// (one Alltoall + Allgather) dataflow.
func runAblationCoherence(opts ExperimentOptions) *Result {
	res := &Result{ID: "ablation_coherence", Title: "Ablation: context coherence alone (no affinity placement)"}
	cfg := moe.GPTM(32)
	cfg.Layers = opts.scaled(24, 6)
	tb := newTableHelper(res, "throughput normalized to vanilla", "gpus")
	sVan := tb.NewSeries("vanilla")
	sCoh := tb.NewSeries("coherent")
	w := Workload{RequestsPerGPU: opts.scaled(8, 2), GenerateTokens: opts.scaled(3, 2)}
	for _, gpus := range []int{4, 8, 16, 32} {
		sys := NewSystem(SystemOptions{Model: cfg, GPUs: gpus, Seed: opts.Seed})
		van := sys.Run(engine.Vanilla, sys.Baseline(), w)
		coh := sys.Run(engine.ContextCoherent, sys.Baseline(), w)
		sVan.Add(float64(gpus), 1.0)
		sCoh.Add(float64(gpus), coh.Throughput/van.Throughput)
		res.AddNote("%d GPUs: coherence alone gives %.2fx (alltoall bytes %.0f%% of vanilla)",
			gpus, coh.Throughput/van.Throughput, 100*float64(coh.AlltoallBytes)/float64(van.AlltoallBytes))
	}
	return res
}

// runAblationSolvers compares placement strategies on the Formula-8
// objective, certifying the heuristic pipeline against the exact ILP on a
// small instance.
func runAblationSolvers(opts ExperimentOptions) *Result {
	res := &Result{ID: "ablation_solvers", Title: "Ablation: placement solver quality (crossings, lower is better)"}
	layers, experts, gpus := opts.scaled(12, 5), 16, 4
	kernel := synth.NewKernel(synth.KernelParams{Seed: opts.Seed + 1, Layers: layers, Experts: experts, Strength: 0.85})
	router := synth.NewKernelRouter(kernel, synth.Pile(), 1)
	tr := trace.Collect(router, layers, trace.SequentialIDs(opts.scaled(3000, 400), synth.Pile().TokenID))
	counts := tr.AllTransitionCounts()
	aff := affinity.Estimate(tr)
	total := float64(tr.Tokens() * (layers - 1))

	tb := newTableHelper(res, "fraction of transitions crossing GPUs", "strategy#")
	s := tb.NewSeries("crossing-fraction")
	strategies := []struct {
		name string
		pl   *placement.Placement
	}{
		{"contiguous", placement.Contiguous(layers, experts, gpus)},
		{"random", placement.Random(layers, experts, gpus, opts.Seed)},
		{"greedy", placement.Greedy(aff, gpus)},
		{"layersweep", placement.LayerSweep(counts, layers, experts, gpus, placement.LayerSweepOptions{})},
		{"sweep+anneal", placement.Solve(counts, layers, experts, gpus, opts.Seed)},
	}
	for i, st := range strategies {
		frac := st.pl.Crossings(counts) / total
		s.Add(float64(i), frac)
		res.AddNote("strategy %d = %s: %.3f of transitions cross GPUs", i, st.name, frac)
	}

	// Exact certification on a tiny instance.
	smallLayers, smallExperts, smallGPUs := 3, 4, 2
	smallKernel := synth.NewKernel(synth.KernelParams{Seed: opts.Seed + 2, Layers: smallLayers, Experts: smallExperts, Strength: 0.8})
	smallTr := trace.Collect(synth.NewKernelRouter(smallKernel, synth.Pile(), 1), smallLayers,
		trace.SequentialIDs(60, synth.Pile().TokenID))
	smallCounts := smallTr.AllTransitionCounts()
	heur := placement.Solve(smallCounts, smallLayers, smallExperts, smallGPUs, opts.Seed).Crossings(smallCounts)
	pm := ilp.BuildPlacement(ilp.PlacementProblem{Layers: smallLayers, Experts: smallExperts, GPUs: smallGPUs, Counts: smallCounts})
	_, exact, ok := pm.Solve(ilp.SolveOptions{})
	res.AddNote("exact ILP certification (3L x 4E x 2GPU): heuristic=%.0f exact=%.0f optimal-proved=%v", heur, exact, ok)
	return res
}

// runAblationStaged compares the two-stage node-aware solve against a flat
// GPU-level solve on a multi-node topology.
func runAblationStaged(opts ExperimentOptions) *Result {
	res := &Result{ID: "ablation_staged", Title: "Ablation: staged (node-first) vs flat placement on 4 nodes x 4 GPUs"}
	layers, experts := opts.scaled(12, 5), 32
	tp := topo.Wilkes3(4)
	kernel := synth.NewKernel(synth.KernelParams{Seed: opts.Seed + 3, Layers: layers, Experts: experts, Strength: 0.85})
	router := synth.NewKernelRouter(kernel, synth.Pile(), 1)
	tr := trace.Collect(router, layers, trace.SequentialIDs(opts.scaled(3000, 400), synth.Pile().TokenID))
	counts := tr.AllTransitionCounts()
	total := float64(tr.Tokens() * (layers - 1))

	flat := placement.Solve(counts, layers, experts, tp.TotalGPUs(), opts.Seed)
	staged := placement.Staged(counts, layers, experts, tp, opts.Seed)
	weighted := placement.WeightedSweep(counts, layers, experts, tp, 5, opts.Seed)

	tb := newTableHelper(res, "crossing fractions", "strategy# (0=flat, 1=staged, 2=weighted)")
	sGPU := tb.NewSeries("cross-gpu")
	sNode := tb.NewSeries("cross-node")
	for i, pl := range []*placement.Placement{flat, staged, weighted} {
		sGPU.Add(float64(i), pl.Crossings(counts)/total)
		sNode.Add(float64(i), pl.NodeCrossings(counts, tp.GPUsPerNode)/total)
	}
	res.AddNote("flat: cross-gpu %.3f, cross-node %.3f", flat.Crossings(counts)/total, flat.NodeCrossings(counts, 4)/total)
	res.AddNote("staged: cross-gpu %.3f, cross-node %.3f", staged.Crossings(counts)/total, staged.NodeCrossings(counts, 4)/total)
	res.AddNote("weighted (penalty=5): cross-gpu %.3f, cross-node %.3f", weighted.Crossings(counts)/total, weighted.NodeCrossings(counts, 4)/total)
	res.AddNote("staged trades a little GPU-level locality for fewer inter-node hops — the right trade because IB is ~6x slower than NVLink; the single-shot weighted objective is a competitive alternative")
	return res
}

// runAblationReplication compares ExFlow's zero-copy placement against the
// Lina-style popularity-replication baseline, including its memory cost.
func runAblationReplication(opts ExperimentOptions) *Result {
	res := &Result{ID: "ablation_replication", Title: "Ablation: affinity placement vs popularity replication (extra memory)"}
	layers, experts, gpus := opts.scaled(12, 5), 32, 8
	tp := topo.ForGPUs(gpus)
	kernel := synth.NewKernel(synth.KernelParams{Seed: opts.Seed + 4, Layers: layers, Experts: experts, Strength: 0.85})
	router := synth.NewKernelRouter(kernel, synth.Pile(), 1)
	tr := trace.Collect(router, layers, trace.SequentialIDs(opts.scaled(3000, 400), synth.Pile().TokenID))
	counts := tr.AllTransitionCounts()
	eval := trace.Collect(router, layers, trace.SequentialIDs(opts.scaled(3000, 400), func(i uint64) uint64 {
		return synth.Pile().TokenID(i + 1<<22)
	}))

	exf := placement.Staged(counts, layers, experts, tp, opts.Seed)
	exfLocal := exf.Locality(eval, tp).FracSameGPU

	tb := newTableHelper(res, "locality vs extra expert copies per GPU", "replicas-per-layer")
	sLocal := tb.NewSeries("popularity-local-frac")
	sMem := tb.NewSeries("extra-slots")
	for _, k := range []int{0, 1, 2, 4, 8} {
		pr := placement.NewPopularityReplication(eval, gpus, k)
		sLocal.Add(float64(k), pr.FractionLocal(eval))
		sMem.Add(float64(k), float64(pr.ExtraExpertSlots))
	}
	res.AddNote("exflow placement local fraction: %.3f with ZERO extra expert copies", exfLocal)
	res.AddNote("paper Section VI: replication chases local optima (Formula 2) and pays memory; ExFlow optimizes globally with no replicas")
	return res
}

// Package tensor implements the dense linear-algebra kernels used by the MoE
// transformer forward pass: float32 matrices, blocked (optionally parallel)
// matrix multiplication, and the activation/normalization functions a GPT
// block needs.
//
// The package exists so that the inference engine performs *real* attention
// and expert-FFN computation on the CPU. The paper's Fig 9 compares the time
// spent on computation (attention, expert FFN, gating) against Alltoall
// communication; reproducing that ratio requires genuine FLOPs, not a stub.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense, row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether two matrices have identical shape and elements within
// tolerance eps.
func (m *Matrix) Equal(o *Matrix, eps float32) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		d := m.Data[i] - o.Data[i]
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// matMulSerialInto computes dst = a*b without spawning goroutines, using an
// ikj loop order that keeps the inner loop streaming over contiguous rows.
func matMulSerialInto(dst, a, b *Matrix, rowStart, rowEnd int) {
	n := b.Cols
	for i := rowStart; i < rowEnd; i++ {
		dRow := dst.Row(i)
		for j := range dRow {
			dRow[j] = 0
		}
		aRow := a.Row(i)
		for k, av := range aRow {
			if av == 0 {
				continue
			}
			bRow := b.Data[k*n : k*n+n]
			for j, bv := range bRow {
				dRow[j] += av * bv
			}
		}
	}
}

// parallelThreshold is the minimum number of scalar multiply-adds before
// MatMul fans out to multiple goroutines; below it the spawn overhead
// dominates.
const parallelThreshold = 1 << 16

// MatMul returns a * b. It panics on a shape mismatch. Large products are
// split across GOMAXPROCS goroutines by row blocks.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst := NewMatrix(a.Rows, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers <= 1 || a.Rows == 1 {
		matMulSerialInto(dst, a, b, 0, a.Rows)
		return dst
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > a.Rows {
			end = a.Rows
		}
		if start >= end {
			break
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			matMulSerialInto(dst, a, b, s, e)
		}(start, end)
	}
	wg.Wait()
	return dst
}

// MatVec returns a * x where x is treated as a column vector.
func MatVec(a *Matrix, x []float32) []float32 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: matvec shape mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	y := make([]float32, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var sum float32
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return y
}

// VecMat returns x^T * a, i.e. a row vector times a matrix. This is the hot
// path for single-token decode (1 x d times d x f).
func VecMat(x []float32, a *Matrix) []float32 {
	if len(x) != a.Rows {
		panic(fmt.Sprintf("tensor: vecmat shape mismatch %d * %dx%d", len(x), a.Rows, a.Cols))
	}
	y := make([]float32, a.Cols)
	for k, xv := range x {
		if xv == 0 {
			continue
		}
		row := a.Row(k)
		for j, av := range row {
			y[j] += xv * av
		}
	}
	return y
}

// AddBias adds bias (length Cols) to every row of m in place and returns m.
func (m *Matrix) AddBias(bias []float32) *Matrix {
	if len(bias) != m.Cols {
		panic("tensor: bias length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
	return m
}

// AddInto computes dst = a + b element-wise; shapes must match.
func AddInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("tensor: add shape mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// AddVec adds b into a element-wise in place.
func AddVec(a, b []float32) {
	if len(a) != len(b) {
		panic("tensor: addvec length mismatch")
	}
	for i := range a {
		a[i] += b[i]
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: dot length mismatch")
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Scale multiplies every element of v by c in place.
func Scale(v []float32, c float32) {
	for i := range v {
		v[i] *= c
	}
}

// L2Norm returns the Euclidean norm of v.
func L2Norm(v []float32) float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

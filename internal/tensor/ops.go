package tensor

import "math"

// GELU applies the Gaussian Error Linear Unit activation (tanh approximation,
// the variant used by GPT-style models) to v in place.
func GELU(v []float32) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, x := range v {
		xf := float64(x)
		v[i] = float32(0.5 * xf * (1 + math.Tanh(c*(xf+0.044715*xf*xf*xf))))
	}
}

// GELUMatrix applies GELU to every element of m in place and returns m.
func GELUMatrix(m *Matrix) *Matrix {
	GELU(m.Data)
	return m
}

// Softmax normalizes v into a probability distribution in place using the
// numerically stable max-shift formulation.
func Softmax(v []float32) {
	if len(v) == 0 {
		return
	}
	maxV := v[0]
	for _, x := range v[1:] {
		if x > maxV {
			maxV = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(float64(x - maxV))
		v[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range v {
		v[i] *= inv
	}
}

// SoftmaxRows applies Softmax to each row of m in place and returns m.
func SoftmaxRows(m *Matrix) *Matrix {
	for i := 0; i < m.Rows; i++ {
		Softmax(m.Row(i))
	}
	return m
}

// LayerNorm normalizes v in place to zero mean and unit variance, then
// applies the learned gain and bias. gain and bias may be nil for identity.
func LayerNorm(v []float32, gain, bias []float32) {
	n := len(v)
	if n == 0 {
		return
	}
	var mean float64
	for _, x := range v {
		mean += float64(x)
	}
	mean /= float64(n)
	var variance float64
	for _, x := range v {
		d := float64(x) - mean
		variance += d * d
	}
	variance /= float64(n)
	inv := 1 / math.Sqrt(variance+1e-5)
	for i, x := range v {
		nx := (float64(x) - mean) * inv
		if gain != nil {
			nx *= float64(gain[i])
		}
		if bias != nil {
			nx += float64(bias[i])
		}
		v[i] = float32(nx)
	}
}

// ArgMax returns the index of the largest element of v (first on ties).
// It panics on an empty slice.
func ArgMax(v []float32) int {
	if len(v) == 0 {
		panic("tensor: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// TopK returns the indices of the k largest elements of v in descending
// value order. It panics if k exceeds len(v) or k <= 0.
func TopK(v []float32, k int) []int {
	if k <= 0 || k > len(v) {
		panic("tensor: TopK with invalid k")
	}
	idx := make([]int, 0, k)
	for i := 0; i < k; i++ {
		best := -1
		for j := range v {
			taken := false
			for _, t := range idx {
				if t == j {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			if best == -1 || v[j] > v[best] {
				best = j
			}
		}
		idx = append(idx, best)
	}
	return idx
}

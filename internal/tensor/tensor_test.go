package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randomMatrix(r *rng.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64())
	}
	return m
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("matrix not zeroed")
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("At/Set mismatch")
	}
	row := m.Row(1)
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must be a mutable view")
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
	if !m.Equal(FromRows([][]float32{{1, 2}, {3, 4}}), 0) {
		t.Fatal("FromRows content wrong")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	got := MatMul(a, b)
	want := FromRows([][]float32{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-6) {
		t.Fatalf("got %v want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(1)
	a := randomMatrix(r, 7, 7)
	id := NewMatrix(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
	}
	if !MatMul(a, id).Equal(a, 1e-6) {
		t.Fatal("A*I != A")
	}
	if !MatMul(id, a).Equal(a, 1e-6) {
		t.Fatal("I*A != A")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(4, 2))
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Large enough to trip the parallel path.
	r := rng.New(2)
	a := randomMatrix(r, 120, 90)
	b := randomMatrix(r, 90, 110)
	got := MatMul(a, b)
	want := NewMatrix(120, 110)
	matMulSerialInto(want, a, b, 0, 120)
	if !got.Equal(want, 1e-4) {
		t.Fatal("parallel result differs from serial")
	}
}

func TestMatMulAssociativityWithVec(t *testing.T) {
	// (A*B)*x == A*(B*x) within float tolerance.
	r := rng.New(3)
	a := randomMatrix(r, 8, 6)
	b := randomMatrix(r, 6, 5)
	x := make([]float32, 5)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	left := MatVec(MatMul(a, b), x)
	right := MatVec(a, MatVec(b, x))
	for i := range left {
		if math.Abs(float64(left[i]-right[i])) > 1e-3 {
			t.Fatalf("associativity violated at %d: %v vs %v", i, left[i], right[i])
		}
	}
}

func TestVecMatMatchesMatVecTranspose(t *testing.T) {
	r := rng.New(4)
	a := randomMatrix(r, 9, 5)
	x := make([]float32, 9)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	got := VecMat(x, a)
	want := MatVec(a.Transpose(), x)
	for i := range got {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("VecMat mismatch at %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		m := randomMatrix(r, 1+r.Intn(10), 1+r.Intn(10))
		return m.Transpose().Transpose().Equal(m, 0)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAddBiasAndAddVec(t *testing.T) {
	m := FromRows([][]float32{{1, 1}, {2, 2}})
	m.AddBias([]float32{10, 20})
	want := FromRows([][]float32{{11, 21}, {12, 22}})
	if !m.Equal(want, 0) {
		t.Fatalf("AddBias wrong: %v", m.Data)
	}
	a := []float32{1, 2}
	AddVec(a, []float32{3, 4})
	if a[0] != 4 || a[1] != 6 {
		t.Fatal("AddVec wrong")
	}
}

func TestAddInto(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{3, 4}})
	dst := NewMatrix(1, 2)
	AddInto(dst, a, b)
	if dst.At(0, 0) != 4 || dst.At(0, 1) != 6 {
		t.Fatal("AddInto wrong")
	}
}

func TestDotScaleNorm(t *testing.T) {
	if Dot([]float32{1, 2, 3}, []float32{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	v := []float32{3, 4}
	Scale(v, 2)
	if v[0] != 6 || v[1] != 8 {
		t.Fatal("Scale wrong")
	}
	if math.Abs(L2Norm([]float32{3, 4})-5) > 1e-9 {
		t.Fatal("L2Norm wrong")
	}
}

func TestFill(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Fill(3)
	for _, v := range m.Data {
		if v != 3 {
			t.Fatal("Fill wrong")
		}
	}
}

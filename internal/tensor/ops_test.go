package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGELUKnownValues(t *testing.T) {
	v := []float32{0, 1, -1, 3}
	GELU(v)
	// Reference values of the tanh-approximated GELU.
	want := []float32{0, 0.8412, -0.1588, 2.9964}
	for i := range v {
		if math.Abs(float64(v[i]-want[i])) > 1e-3 {
			t.Fatalf("GELU(%d): got %v want %v", i, v[i], want[i])
		}
	}
}

func TestGELUMonotoneForPositive(t *testing.T) {
	prev := float32(-1)
	for x := float32(0); x < 5; x += 0.1 {
		v := []float32{x}
		GELU(v)
		if v[0] < prev {
			t.Fatalf("GELU not monotone at %v", x)
		}
		prev = v[0]
	}
}

func TestSoftmaxProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(40)
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(r.NormFloat64() * 5)
		}
		orig := append([]float32(nil), v...)
		Softmax(v)
		sum := 0.0
		for _, x := range v {
			if x < 0 || x > 1 {
				return false
			}
			sum += float64(x)
		}
		if math.Abs(sum-1) > 1e-4 {
			return false
		}
		// Softmax preserves order.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if orig[i] > orig[j] && v[i] < v[j] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	v := []float32{1000, 1001, 1002}
	Softmax(v)
	for _, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			t.Fatal("softmax overflowed")
		}
	}
	if !(v[2] > v[1] && v[1] > v[0]) {
		t.Fatal("softmax order wrong")
	}
}

func TestSoftmaxEmptyNoop(t *testing.T) {
	Softmax(nil) // must not panic
}

func TestSoftmaxRows(t *testing.T) {
	m := FromRows([][]float32{{1, 2, 3}, {0, 0, 0}})
	SoftmaxRows(m)
	for i := 0; i < 2; i++ {
		sum := float32(0)
		for _, v := range m.Row(i) {
			sum += v
		}
		if math.Abs(float64(sum-1)) > 1e-5 {
			t.Fatalf("row %d does not sum to 1", i)
		}
	}
	if m.At(1, 0) != m.At(1, 1) {
		t.Fatal("uniform row should stay uniform")
	}
}

func TestLayerNormStats(t *testing.T) {
	r := rng.New(9)
	v := make([]float32, 128)
	for i := range v {
		v[i] = float32(r.NormFloat64()*3 + 7)
	}
	LayerNorm(v, nil, nil)
	var mean, variance float64
	for _, x := range v {
		mean += float64(x)
	}
	mean /= float64(len(v))
	for _, x := range v {
		d := float64(x) - mean
		variance += d * d
	}
	variance /= float64(len(v))
	if math.Abs(mean) > 1e-4 {
		t.Fatalf("post-norm mean %v", mean)
	}
	if math.Abs(variance-1) > 1e-2 {
		t.Fatalf("post-norm variance %v", variance)
	}
}

func TestLayerNormGainBias(t *testing.T) {
	v := []float32{1, 2, 3, 4}
	gain := []float32{2, 2, 2, 2}
	bias := []float32{1, 1, 1, 1}
	LayerNorm(v, gain, bias)
	var mean float64
	for _, x := range v {
		mean += float64(x)
	}
	mean /= 4
	if math.Abs(mean-1) > 1e-4 {
		t.Fatalf("bias not applied, mean %v", mean)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float32{1, 5, 3}) != 1 {
		t.Fatal("ArgMax wrong")
	}
	if ArgMax([]float32{7}) != 0 {
		t.Fatal("ArgMax singleton wrong")
	}
	// Ties go to the first occurrence.
	if ArgMax([]float32{2, 9, 9}) != 1 {
		t.Fatal("ArgMax tie-break wrong")
	}
}

func TestArgMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ArgMax(nil)
}

func TestTopK(t *testing.T) {
	got := TopK([]float32{5, 9, 1, 7}, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("TopK wrong: %v", got)
	}
	all := TopK([]float32{3, 1, 2}, 3)
	if all[0] != 0 || all[1] != 2 || all[2] != 1 {
		t.Fatalf("TopK full-order wrong: %v", all)
	}
}

func TestTopKInvalidPanics(t *testing.T) {
	for _, k := range []int{0, 4, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for k=%d", k)
				}
			}()
			TopK([]float32{1, 2, 3}, k)
		}()
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := rng.New(1)
	a := randomMatrix(r, 128, 128)
	c := randomMatrix(r, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(a, c)
	}
}

func BenchmarkVecMat1024x4096(b *testing.B) {
	r := rng.New(1)
	a := randomMatrix(r, 1024, 4096)
	x := make([]float32, 1024)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = VecMat(x, a)
	}
}

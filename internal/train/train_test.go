package train

import (
	"testing"

	"repro/internal/affinity"
	"repro/internal/placement"
	"repro/internal/stats"
)

func quickTrainer() *Trainer {
	return New(Config{Layers: 4, Experts: 8, BatchSize: 16, Seed: 1})
}

func TestDefaultsApplied(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Layers == 0 || c.Experts == 0 || c.Dim == 0 || c.LR == 0 || c.AuxWeight == 0 {
		t.Fatalf("defaults missing: %+v", c)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	tr := quickTrainer()
	first := tr.TrainSteps(1)
	_ = tr.TrainSteps(150)
	last := tr.TrainSteps(1)
	if last >= first {
		t.Fatalf("cross-entropy did not fall: %v -> %v", first, last)
	}
}

func TestTrainingImprovesAccuracy(t *testing.T) {
	tr := quickTrainer()
	before := tr.Accuracy(100)
	tr.TrainSteps(200)
	after := tr.Accuracy(100)
	if after <= before {
		t.Fatalf("accuracy did not improve: %v -> %v", before, after)
	}
	// The teacher *samples* its expert choices (strength 0.9 over spiky
	// Dirichlet rows), so even a perfect student argmax cannot exceed the
	// teacher rows' expected top-1 mass (~0.5). Demand clearly-above-chance.
	if after < 0.3 {
		t.Fatalf("trained accuracy %v too low — gate failed to learn the teacher (chance = %v)",
			after, 1.0/float64(tr.Cfg.Experts))
	}
}

func TestEarlyCollapseThenConvergeToTeacherLoad(t *testing.T) {
	// Fig 11's mechanism: an untrained gate is confidently wrong and routes
	// most tokens to a few experts (collapse); training then moves the
	// student's load distribution toward the teacher's.
	tr := quickTrainer()
	teacherLoad := make([]float64, tr.Cfg.Experts)
	{
		profile := tr.profile
		last := tr.Cfg.Layers - 1
		for i := uint64(0); i < 2000; i++ {
			path := tr.Teacher.Path(i, profile.TokenDomain(i))
			teacherLoad[path[last]]++
		}
		teacherLoad = stats.Normalize(teacherLoad)
	}
	dist := func(load []float64) float64 {
		p := stats.Normalize(load)
		d := 0.0
		for i := range p {
			d += abs(p[i] - teacherLoad[i])
		}
		return d
	}
	early := tr.TraceStudent(800, 1).LayerLoad(tr.Cfg.Layers - 1)
	// Collapse: the untrained gate's most popular expert holds far more
	// than the teacher's most popular one.
	if stats.Max(stats.Normalize(early)) < 1.5/float64(tr.Cfg.Experts) {
		t.Fatalf("untrained gate unexpectedly balanced: %v", early)
	}
	dEarly := dist(early)
	tr.TrainSteps(400)
	late := tr.TraceStudent(800, 1).LayerLoad(tr.Cfg.Layers - 1)
	dLate := dist(late)
	if dLate >= dEarly {
		t.Fatalf("student load should approach the teacher's: L1 %v -> %v", dEarly, dLate)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestLearnedGateDevelopsAffinity(t *testing.T) {
	// The core claim: affinity in the *learned* routing emerges from
	// training against an affinity-bearing teacher, and it is exploitable —
	// a solved placement beats contiguous on student traces.
	tr := quickTrainer()
	tr.TrainSteps(300)
	student := tr.TraceStudent(2500, 7)
	aff := affinity.Estimate(student)
	conc := aff.Concentration(2)
	uniform := 2.0 / float64(tr.Cfg.Experts)
	if conc < uniform*1.8 {
		t.Fatalf("learned routing shows no affinity: top-2 mass %v (uniform %v)", conc, uniform)
	}
	counts := student.AllTransitionCounts()
	base := placement.Contiguous(tr.Cfg.Layers, tr.Cfg.Experts, 4)
	solved := placement.Solve(counts, tr.Cfg.Layers, tr.Cfg.Experts, 4, 1)
	if solved.Crossings(counts) >= base.Crossings(counts) {
		t.Fatal("placement solver found nothing to exploit in learned routing")
	}
}

func TestStudentRouterConsistentWithRoute(t *testing.T) {
	tr := quickTrainer()
	tr.TrainSteps(50)
	router := tr.StudentRouter()
	for id := uint64(0); id < 30; id++ {
		path := tr.Route(id)
		prev := -1
		for l := 0; l < tr.Cfg.Layers; l++ {
			got := router.Route(l, id, prev, nil)
			if got[0] != path[l] {
				t.Fatalf("router layer %d: %d vs path %d", l, got[0], path[l])
			}
			prev = got[0]
		}
	}
}

func TestRouterLayerRangePanics(t *testing.T) {
	tr := quickTrainer()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.StudentRouter().Route(99, 0, -1, nil)
}

func TestDeterministicTraining(t *testing.T) {
	a := quickTrainer()
	b := quickTrainer()
	a.TrainSteps(40)
	b.TrainSteps(40)
	pa := a.TraceStudent(50, 3)
	pb := b.TraceStudent(50, 3)
	for i := range pa.Paths {
		for j := range pa.Paths[i] {
			if pa.Paths[i][j] != pb.Paths[i][j] {
				t.Fatal("training not deterministic")
			}
		}
	}
}

func TestStepCounter(t *testing.T) {
	tr := quickTrainer()
	tr.TrainSteps(5)
	if tr.Step() != 5 {
		t.Fatalf("step counter %d", tr.Step())
	}
}

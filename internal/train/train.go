// Package train implements a miniature MoE gate-training loop that shows
// *how* inter-layer expert affinity arises — the mechanism behind the
// paper's Section V-F study (Figs 11-12) — rather than assuming it.
//
// Setup: a teacher routing kernel (synth.Kernel) defines which expert each
// token should use at each layer. The student is a stack of learned gates
// (one DxE matrix per layer, exactly the gating of a real MoE). The crucial
// modeling choice is the hidden-state dynamics: applying expert e adds that
// expert's signature vector to the token's hidden state. The hidden state
// therefore *encodes the previous expert choice*, and a gate trained with
// cross-entropy against the teacher learns precisely the conditional
// structure P(E_{j+1} | E_j) — which is what ExFlow later exploits.
//
// Training uses the GShard auxiliary load-balancing loss
// (alpha * E * sum_e f_e * P_e), reproducing the paper's observation that
// routing starts collapsed onto a few experts and balances over the first
// ~1-2k iterations while affinity dips, then re-sharpens as the gates
// specialize.
package train

import (
	"fmt"
	"math"

	"repro/internal/moe"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Config parameterizes the trainer.
type Config struct {
	Layers  int
	Experts int
	// Dim is the hidden width of the student gates.
	Dim int
	// BatchSize is tokens per training step.
	BatchSize int
	// LR is the SGD learning rate.
	LR float64
	// AuxWeight is the GShard balancing loss coefficient (paper-standard
	// 1e-2 scale).
	AuxWeight float64
	// TeacherStrength is the affinity concentration of the teacher kernel.
	TeacherStrength float64
	Seed            uint64
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Layers == 0 {
		c.Layers = 6
	}
	if c.Experts == 0 {
		c.Experts = 16
	}
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.5
	}
	if c.AuxWeight == 0 {
		c.AuxWeight = 0.01
	}
	if c.TeacherStrength == 0 {
		c.TeacherStrength = 0.9
	}
	return c
}

// Trainer holds the student gates and training state.
type Trainer struct {
	Cfg     Config
	Teacher *synth.Kernel

	gates      []*tensor.Matrix // [layer] Dim x Experts
	signatures []*tensor.Matrix // [layer] Experts x Dim (expert signatures)
	domainEmb  *tensor.Matrix   // Domains x Dim
	profile    *synth.DatasetProfile
	rng        *rng.RNG
	step       int
}

// New builds a trainer with randomly initialized gates.
func New(cfg Config) *Trainer {
	cfg = cfg.WithDefaults()
	t := &Trainer{
		Cfg: cfg,
		Teacher: synth.NewKernel(synth.KernelParams{
			Seed: rng.Mix64(cfg.Seed, 0x7EAC), Layers: cfg.Layers,
			Experts: cfg.Experts, Strength: cfg.TeacherStrength,
		}),
		profile: synth.Pile(),
		rng:     rng.New(rng.Mix64(cfg.Seed, 0x7124)),
	}
	init := rng.New(rng.Mix64(cfg.Seed, 0x6A7E))
	t.gates = make([]*tensor.Matrix, cfg.Layers)
	t.signatures = make([]*tensor.Matrix, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		g := tensor.NewMatrix(cfg.Dim, cfg.Experts)
		for i := range g.Data {
			// Deliberately non-tiny init: a random gate over structured
			// inputs is confidently wrong, which produces the early expert
			// collapse of Fig 11.
			g.Data[i] = float32(init.NormFloat64() * 0.8)
		}
		t.gates[l] = g
		s := tensor.NewMatrix(cfg.Experts, cfg.Dim)
		for i := range s.Data {
			s.Data[i] = float32(init.NormFloat64())
		}
		t.signatures[l] = s
	}
	t.domainEmb = tensor.NewMatrix(len(t.profile.Mix), cfg.Dim)
	for i := range t.domainEmb.Data {
		t.domainEmb.Data[i] = float32(init.NormFloat64())
	}
	return t
}

// Step reports the number of completed training steps.
func (t *Trainer) Step() int { return t.step }

// tokenInput builds the layer-0 hidden state of a token: its domain
// embedding plus token-specific noise.
func (t *Trainer) tokenInput(id uint64) []float32 {
	domain := t.profile.TokenDomain(id)
	h := append([]float32(nil), t.domainEmb.Row(domain)...)
	noise := rng.New(rng.Mix64(t.Cfg.Seed, id, 0x401))
	for i := range h {
		h[i] += float32(noise.NormFloat64() * 0.3)
	}
	return h
}

// advanceHidden applies expert e's signature to the hidden state — the
// mechanism that makes the next layer's gate able to condition on the
// previous expert.
func (t *Trainer) advanceHidden(h []float32, layer, expert int) {
	sig := t.signatures[layer].Row(expert)
	for i := range h {
		h[i] = 0.5*h[i] + float32(sig[i])
	}
	tensor.LayerNorm(h, nil, nil)
}

// TrainSteps runs n SGD steps and returns the mean cross-entropy of the
// last step.
func (t *Trainer) TrainSteps(n int) float64 {
	lastCE := 0.0
	for s := 0; s < n; s++ {
		lastCE = t.trainStep()
	}
	return lastCE
}

// trainStep samples a batch of tokens, walks them through the layers with
// teacher-forced expert choices, and applies CE + GShard-aux gradients to
// every gate.
func (t *Trainer) trainStep() float64 {
	cfg := t.Cfg
	ceTotal := 0.0
	counts := 0
	// Per-layer accumulators for the aux loss: dispatch fractions f_e (by
	// student argmax) and mean gate probability P_e.
	for b := 0; b < cfg.BatchSize; b++ {
		id := rng.Mix64(cfg.Seed, 0xBA7C, uint64(t.step), uint64(b))
		domain := t.profile.TokenDomain(id)
		h := t.tokenInput(id)
		teacherPrev := -1
		for l := 0; l < cfg.Layers; l++ {
			var target int
			if l == 0 {
				target = t.Teacher.First(id, domain)
			} else {
				target = t.Teacher.Next(id, l, teacherPrev, domain)
			}
			probs := t.gateProbs(l, h)
			ceTotal += -math.Log(math.Max(float64(probs[target]), 1e-9))
			counts++
			t.applyGradients(l, h, probs, target)
			// Teacher forcing: the hidden advances with the *teacher*
			// expert so the conditional structure stays on-distribution.
			t.advanceHidden(h, l, target)
			teacherPrev = target
		}
		t.step0Barrier()
	}
	t.step++
	return ceTotal / float64(counts)
}

// step0Barrier exists only to keep the batch loop structure explicit; the
// per-token gradient application above is plain SGD (batch size amortizes
// through the learning rate).
func (t *Trainer) step0Barrier() {}

// gateProbs evaluates softmax(h . W_l).
func (t *Trainer) gateProbs(l int, h []float32) []float32 {
	logits := tensor.VecMat(h, t.gates[l])
	tensor.Softmax(logits)
	return logits
}

// applyGradients performs one SGD update on gate l for one token:
// cross-entropy toward the teacher target plus the GShard auxiliary
// balancing term. For the aux term we use its standard per-token surrogate
// gradient: alpha * E * f_e acting on the softmax probabilities, where f is
// approximated by the current probability mass itself (self-balancing).
func (t *Trainer) applyGradients(l int, h []float32, probs []float32, target int) {
	cfg := t.Cfg
	g := t.gates[l]
	lr := float32(cfg.LR / float64(cfg.BatchSize))
	e := float64(cfg.Experts)
	for j := 0; j < cfg.Experts; j++ {
		// dCE/dlogit_j = p_j - [j == target]
		grad := float64(probs[j])
		if j == target {
			grad -= 1
		}
		// d(aux)/dlogit_j with f ≈ p: alpha * E * p_j * (p_j - sum p^2).
		var sumSq float64
		for _, pv := range probs {
			sumSq += float64(pv) * float64(pv)
		}
		grad += cfg.AuxWeight * e * float64(probs[j]) * (float64(probs[j]) - sumSq)
		if grad == 0 {
			continue
		}
		gf := float32(grad) * lr
		for i, hv := range h {
			g.Data[i*cfg.Experts+j] -= gf * hv
		}
	}
}

// Route routes a token through the *student* gates (argmax, no teacher),
// returning the expert path — used to trace the learned routing behaviour.
func (t *Trainer) Route(id uint64) []int {
	h := t.tokenInput(id)
	path := make([]int, t.Cfg.Layers)
	for l := 0; l < t.Cfg.Layers; l++ {
		probs := t.gateProbs(l, h)
		path[l] = tensor.ArgMax(probs)
		t.advanceHidden(h, l, path[l])
	}
	return path
}

// TraceStudent collects a routing trace of n tokens through the learned
// gates.
func (t *Trainer) TraceStudent(n int, offset uint64) *trace.Trace {
	tr := trace.New(t.Cfg.Layers, t.Cfg.Experts)
	for i := 0; i < n; i++ {
		id := rng.Mix64(t.Cfg.Seed, 0x57CD, offset, uint64(i))
		tr.Append(t.Route(id))
	}
	return tr
}

// Accuracy measures how often the student's argmax matches the teacher
// along teacher-forced paths (held-out tokens).
func (t *Trainer) Accuracy(n int) float64 {
	correct, total := 0, 0
	for i := 0; i < n; i++ {
		id := rng.Mix64(t.Cfg.Seed, 0xACC, uint64(i))
		domain := t.profile.TokenDomain(id)
		h := t.tokenInput(id)
		prev := -1
		for l := 0; l < t.Cfg.Layers; l++ {
			var target int
			if l == 0 {
				target = t.Teacher.First(id, domain)
			} else {
				target = t.Teacher.Next(id, l, prev, domain)
			}
			if tensor.ArgMax(t.gateProbs(l, h)) == target {
				correct++
			}
			total++
			t.advanceHidden(h, l, target)
			prev = target
		}
	}
	return float64(correct) / float64(total)
}

// Router adapts the trained gates to the moe.Router interface so the
// inference engine can run on a *learned* gate instead of the synthetic
// kernel. It is stateless across calls: the hidden recurrence is replayed
// from the token id, preserving the engine's shared-gating invariant.
type Router struct{ t *Trainer }

// StudentRouter returns the adapter.
func (t *Trainer) StudentRouter() *Router { return &Router{t: t} }

// Experts implements moe.Router.
func (r *Router) Experts() int { return r.t.Cfg.Experts }

// Route implements moe.Router. It replays the student recurrence up to
// `layer`; prev and h are ignored (the trainer's own hidden dynamics define
// the routing).
func (r *Router) Route(layer int, tokenID uint64, prev int, h []float32) []int {
	if layer < 0 || layer >= r.t.Cfg.Layers {
		panic(fmt.Sprintf("train: layer %d out of range", layer))
	}
	hid := r.t.tokenInput(tokenID)
	for l := 0; l < layer; l++ {
		e := tensor.ArgMax(r.t.gateProbs(l, hid))
		r.t.advanceHidden(hid, l, e)
	}
	return []int{tensor.ArgMax(r.t.gateProbs(layer, hid))}
}

var _ moe.Router = (*Router)(nil)

package engine

import (
	"testing"

	"repro/internal/moe"
	"repro/internal/placement"
	"repro/internal/synth"
	"repro/internal/topo"
)

// top2Setup builds a top-2 gating configuration.
func top2Setup(t *testing.T, mode Mode, gpus int, capacityFactor float64) Config {
	t.Helper()
	cfg := moe.GPTM(16)
	cfg.Layers = 5
	cfg.TopK = 2
	mdl := moe.NewModel(cfg, 1)
	kernel := synth.NewKernel(synth.KernelParams{Seed: 4, Layers: cfg.Layers, Experts: cfg.Experts, Strength: 0.85})
	router := synth.NewKernelRouter(kernel, synth.Pile(), 2)
	tp := topo.ForGPUs(gpus)
	return Config{
		Model:          mdl,
		Router:         router,
		Topo:           tp,
		Placement:      placement.Contiguous(cfg.Layers, cfg.Experts, gpus),
		Mode:           mode,
		Cost:           moe.DefaultCostModel(),
		RequestsPerGPU: 2,
		PromptLen:      6,
		GenerateTokens: 3,
		CapacityFactor: capacityFactor,
		Seed:           9,
	}
}

func TestTop2ModesGenerateIdenticalTokens(t *testing.T) {
	van := Run(top2Setup(t, Vanilla, 8, 0))
	coh := Run(top2Setup(t, ContextCoherent, 8, 0))
	for r := range van.Outputs {
		for i := range van.Outputs[r] {
			if van.Outputs[r][i] != coh.Outputs[r][i] {
				t.Fatalf("top-2 outputs diverge at req %d pos %d", r, i)
			}
		}
	}
}

func TestTop2DoublesDispatches(t *testing.T) {
	top1 := Run(testSetup(t, Vanilla, 8, false))
	top2 := Run(top2Setup(t, Vanilla, 8, 0))
	d1 := top1.DispatchSameGPU + top1.DispatchSameNode + top1.DispatchCrossNode
	d2 := top2.DispatchSameGPU + top2.DispatchSameNode + top2.DispatchCrossNode
	// Different layer counts (6 vs 5); normalize per layer per token.
	perLayer1 := float64(d1) / float64(top1.GeneratedTokens*6)
	perLayer2 := float64(d2) / float64(top2.GeneratedTokens*5)
	if perLayer2 != 2*perLayer1 {
		t.Fatalf("top-2 should exactly double per-layer dispatches: %v vs %v", perLayer2, perLayer1)
	}
}

func TestTop2MoreAlltoallBytesThanTop1(t *testing.T) {
	top2 := Run(top2Setup(t, ContextCoherent, 8, 0))
	// top-1 coherent config with otherwise similar shape.
	cfg := top2Setup(t, ContextCoherent, 8, 0)
	mcfg := moe.GPTM(16)
	mcfg.Layers = 5
	cfg.Model = moe.NewModel(mcfg, 1)
	kernel := synth.NewKernel(synth.KernelParams{Seed: 4, Layers: 5, Experts: 16, Strength: 0.85})
	cfg.Router = synth.NewKernelRouter(kernel, synth.Pile(), 1)
	top1 := Run(cfg)
	if top2.AlltoallBytes <= top1.AlltoallBytes {
		t.Fatalf("top-2 must move more bytes: %d vs %d", top2.AlltoallBytes, top1.AlltoallBytes)
	}
}

func TestTop2CoherentMovesFewerBytes(t *testing.T) {
	// With top-2 gating both modes need two Alltoalls per layer (dispatch
	// copies + output combine), so the latency win shrinks — the paper's
	// headline throughput numbers are all top-1 (Section V-A). What must
	// still hold is the volume reduction: vanilla returns BOTH expert
	// outputs to the home GPU, coherent returns only the secondary output
	// to the primary owner (Table I: 4*L*p vs 2*L*p* + G).
	van := Run(top2Setup(t, Vanilla, 8, 0))
	coh := Run(top2Setup(t, ContextCoherent, 8, 0))
	if coh.AlltoallBytes >= van.AlltoallBytes {
		t.Fatalf("coherent top-2 must move fewer alltoall bytes: %d vs %d",
			coh.AlltoallBytes, van.AlltoallBytes)
	}
	if coh.Throughput < 0.85*van.Throughput {
		t.Fatalf("coherent top-2 throughput %v collapsed vs vanilla %v", coh.Throughput, van.Throughput)
	}
}

func TestCapacityDropsJobs(t *testing.T) {
	unlimited := Run(top2Setup(t, ContextCoherent, 8, 0))
	if unlimited.DroppedJobs != 0 {
		t.Fatalf("no capacity factor must mean no drops, got %d", unlimited.DroppedJobs)
	}
	tight := Run(top2Setup(t, ContextCoherent, 8, 0.5))
	if tight.DroppedJobs == 0 {
		t.Fatal("tight capacity should drop jobs")
	}
	loose := Run(top2Setup(t, ContextCoherent, 8, 8))
	if loose.DroppedJobs >= tight.DroppedJobs {
		t.Fatalf("looser capacity should drop fewer: %d vs %d", loose.DroppedJobs, tight.DroppedJobs)
	}
}

func TestCapacityPreservesModeInvariance(t *testing.T) {
	// Capacity enforcement is owner-side and deterministic, so vanilla and
	// coherent modes must drop the same jobs and still generate identical
	// tokens.
	van := Run(top2Setup(t, Vanilla, 8, 1.0))
	coh := Run(top2Setup(t, ContextCoherent, 8, 1.0))
	if van.DroppedJobs != coh.DroppedJobs {
		t.Fatalf("drop counts differ across modes: %d vs %d", van.DroppedJobs, coh.DroppedJobs)
	}
	for r := range van.Outputs {
		for i := range van.Outputs[r] {
			if van.Outputs[r][i] != coh.Outputs[r][i] {
				t.Fatalf("capacity broke output invariance at req %d pos %d", r, i)
			}
		}
	}
}

func TestCapacityChangesOutputs(t *testing.T) {
	// Dropping real expert computation must actually change the numbers
	// (the residual passthrough is not a no-op model-wise).
	full := Run(top2Setup(t, ContextCoherent, 8, 0))
	tight := Run(top2Setup(t, ContextCoherent, 8, 0.25))
	diff := false
	for r := range full.Outputs {
		for i := range full.Outputs[r] {
			if full.Outputs[r][i] != tight.Outputs[r][i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("severe capacity limits should alter generated tokens")
	}
}

func TestHierarchicalDispatchSameOutputs(t *testing.T) {
	flat := testSetup(t, ExFlow, 8, true)
	rep1 := Run(flat)
	hier := testSetup(t, ExFlow, 8, true)
	hier.HierarchicalA2A = true
	rep2 := Run(hier)
	for r := range rep1.Outputs {
		for i := range rep1.Outputs[r] {
			if rep1.Outputs[r][i] != rep2.Outputs[r][i] {
				t.Fatal("hierarchical dispatch changed generated tokens")
			}
		}
	}
	if rep2.SimSeconds >= rep1.SimSeconds {
		t.Fatalf("hierarchical dispatch should be faster on 2 nodes: %v vs %v",
			rep2.SimSeconds, rep1.SimSeconds)
	}
}

func TestTop1WeightIsUnity(t *testing.T) {
	// RouteWeights for a top-1 kernel router must return weight 1, so the
	// weighted-combine path reduces exactly to the unweighted one.
	kernel := synth.NewKernel(synth.KernelParams{Seed: 4, Layers: 3, Experts: 8, Strength: 0.7})
	router := synth.NewKernelRouter(kernel, synth.Pile(), 1)
	_, weights := moe.RouteWeights(router, 0, 7, -1, nil)
	if len(weights) != 1 || weights[0] != 1 {
		t.Fatalf("top-1 weights wrong: %v", weights)
	}
}

func TestTop2WeightsNormalizedAndOrdered(t *testing.T) {
	kernel := synth.NewKernel(synth.KernelParams{Seed: 4, Layers: 3, Experts: 8, Strength: 0.7})
	router := synth.NewKernelRouter(kernel, synth.Pile(), 2)
	for tok := uint64(0); tok < 50; tok++ {
		experts, weights := moe.RouteWeights(router, 1, tok, int(tok)%8, nil)
		if len(experts) != 2 || len(weights) != 2 {
			t.Fatal("top-2 shape wrong")
		}
		sum := weights[0] + weights[1]
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("weights not normalized: %v", weights)
		}
		if weights[0] <= 0 || weights[1] <= 0 {
			t.Fatalf("non-positive weight: %v", weights)
		}
	}
}

// Package engine runs distributed GPT MoE inference on the simulated
// cluster, implementing the three expert-parallelism schemes the paper
// compares:
//
//   - Vanilla (Deepspeed-MoE style): data parallelism keeps every token's
//     context on its home GPU, so every MoE layer needs TWO Alltoalls —
//     dispatch to the expert's GPU, combine back home for the next
//     attention (paper Fig 3).
//   - Context-coherent (ExFlow without affinity): every GPU replicates all
//     requests' contexts, so a token attends in place wherever its last
//     expert lived; each layer needs ONE Alltoall, plus one Allgather per
//     iteration to share newly generated tokens (paper Section IV-A).
//   - ExFlow: context-coherent execution under an affinity-optimized expert
//     placement, so most dispatches stay on the current GPU or node.
//
// The engine performs the real (ComputeDim-width) forward math — embeddings,
// attention over KV caches, gating, expert FFNs, greedy decode — so that all
// three modes provably generate identical tokens (the paper's "no accuracy
// degradation"), while the simulated clock is charged with paper-scale
// compute costs (moe.CostModel) and topology-aware communication costs.
package engine

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/expertmem"
	"repro/internal/moe"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/topo"
)

// Mode selects the parallelism scheme.
type Mode int

const (
	// Vanilla is Deepspeed-MoE-style expert parallelism: two Alltoalls per
	// MoE layer.
	Vanilla Mode = iota
	// ContextCoherent is ExFlow's one-Alltoall scheme without affinity
	// placement.
	ContextCoherent
	// ExFlow is ContextCoherent plus an affinity-optimized placement; the
	// dataflow is identical to ContextCoherent, the distinction exists for
	// labeling in reports.
	ExFlow
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Vanilla:
		return "vanilla"
	case ContextCoherent:
		return "context-coherent"
	case ExFlow:
		return "exflow"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// coherent reports whether the mode uses context-coherent dataflow.
func (m Mode) coherent() bool { return m != Vanilla }

// Config describes one inference run.
type Config struct {
	Model     *moe.Model
	Router    moe.Router
	Topo      *topo.Topology
	Placement *placement.Placement
	Mode      Mode
	Cost      moe.CostModel

	// RequestsPerGPU is the data-parallel batch per GPU (the paper's N is
	// tokens per GPU; with one in-flight token per request per iteration,
	// N = RequestsPerGPU).
	RequestsPerGPU int
	// CapacityFactor, when positive, enforces GShard-style expert capacity:
	// each expert accepts at most ceil(CapacityFactor * totalTokens * TopK /
	// Experts) tokens per layer per iteration; the rest are dropped
	// (residual passthrough). Zero disables capacity limits ("variable
	// token capacity", Section V-A).
	CapacityFactor float64
	// HierarchicalA2A routes token dispatch through node leaders
	// (collective.HierarchicalAlltoall) instead of the flat pairwise
	// schedule — fewer inter-node messages when chunks are latency-bound.
	HierarchicalA2A bool
	// PromptLen is the number of context tokens prefilled per request.
	PromptLen int
	// GenerateTokens is the number of decode iterations.
	GenerateTokens int
	// TokenID maps (request, iteration) to the global token identity used
	// for routing; nil uses a seed-mixed default.
	TokenID func(req, iter int) uint64
	// Seed feeds workload generation and the default TokenID.
	Seed uint64
	// Memory, when non-nil, places the run under tiered expert-weight
	// memory: each rank's HBM holds at most Memory.SlotsPerGPU expert
	// weights, a non-resident expert stalls the rank for its host-link
	// fetch ("expert-stall" in the breakdown), and — under the
	// affinity-prefetch policy — ranks exchange prefetch hints each layer
	// so predicted successors are fetched while the current layer computes.
	// The memory layer only affects the simulated clock, never the math, so
	// the identical-outputs invariant across modes is preserved.
	Memory *expertmem.Config
	// Trace and Metrics optionally receive the run's observability stream:
	// per-rank iteration spans and — under tiered expert memory — fetch,
	// prefetch, and eviction events plus the expertmem_* metric family
	// (Manager.Instrument). Rank goroutines emit concurrently; the tracer
	// and registry are race-safe, but cross-rank ring order is
	// scheduling-dependent — byte-deterministic exports are pinned only on
	// the single-threaded serve path. Nil disables with zero overhead.
	Trace   *obs.Tracer
	Metrics *obs.Registry
}

// validate panics on inconsistent configuration (programmer error).
func (c *Config) validate() {
	if c.Model == nil || c.Router == nil || c.Topo == nil || c.Placement == nil {
		panic("engine: incomplete config")
	}
	if c.Placement.GPUs != c.Topo.TotalGPUs() {
		panic(fmt.Sprintf("engine: placement for %d gpus, topology has %d", c.Placement.GPUs, c.Topo.TotalGPUs()))
	}
	if c.Placement.Layers != c.Model.Cfg.Layers || c.Placement.Experts != c.Model.Cfg.Experts {
		panic("engine: placement shape does not match model")
	}
	if c.Router.Experts() != c.Model.Cfg.Experts {
		panic("engine: router expert count does not match model")
	}
	if c.RequestsPerGPU <= 0 || c.GenerateTokens <= 0 || c.PromptLen < 0 {
		panic("engine: invalid workload")
	}
	if c.Memory != nil {
		if c.Memory.Layers != c.Model.Cfg.Layers || c.Memory.Experts != c.Model.Cfg.Experts ||
			c.Memory.GPUs != c.Topo.TotalGPUs() {
			panic("engine: memory config shape does not match model/topology")
		}
	}
}

// tokenID resolves the token identity function.
func (c *Config) tokenID(req, iter int) uint64 {
	if c.TokenID != nil {
		return c.TokenID(req, iter)
	}
	return rng.Mix64(c.Seed, 0x70CE, uint64(req), uint64(iter))
}

// token is a unit of in-flight work: one request's current decode position.
type token struct {
	req    int
	id     uint64
	home   int
	hidden []float32
	prev   int // expert at the previous layer (-1 before layer 0)
}

// expertJob is one (token, expert) dispatch: top-k gating produces k jobs
// per token per layer. The primary job (k = 0) carries the token itself in
// coherent modes; every job's expert output is routed to combineAt, where
// the weighted mixture and the residual are applied.
type expertJob struct {
	tok       *token
	kIdx      int
	expert    int
	weight    float64
	combineAt int
	hidden    []float32 // expert input (post-attention activation)
	out       []float32 // expert output, nil when dropped
	dropped   bool
}

// enforceCapacity marks jobs beyond each expert's capacity as dropped,
// smallest token ids kept first — a deterministic rule that every mode and
// every rank applies identically, so capacity never breaks the
// identical-outputs invariant across modes.
func enforceCapacity(jobs []*expertJob, capacity int, m *rankMetrics) {
	byExpert := map[int][]*expertJob{}
	for _, j := range jobs {
		byExpert[j.expert] = append(byExpert[j.expert], j)
	}
	for _, js := range byExpert {
		if len(js) <= capacity {
			continue
		}
		sort.Slice(js, func(a, b int) bool {
			if js[a].tok.id != js[b].tok.id {
				return js[a].tok.id < js[b].tok.id
			}
			return js[a].kIdx < js[b].kIdx
		})
		for _, j := range js[capacity:] {
			j.dropped = true
			m.droppedJobs++
		}
	}
}

// combineJobs applies the weighted expert mixture plus residual and norm
// for every token whose jobs have arrived at this rank, returning the
// tokens now resident here (sorted by request for determinism). Dropped
// jobs contribute nothing: the token passes through on its residual.
func combineJobs(mdl *moe.Model, jobs []*expertJob) []*token {
	byTok := map[*token][]*expertJob{}
	for _, j := range jobs {
		byTok[j.tok] = append(byTok[j.tok], j)
	}
	out := make([]*token, 0, len(byTok))
	for t, js := range byTok {
		sort.Slice(js, func(a, b int) bool { return js[a].kIdx < js[b].kIdx })
		for _, j := range js {
			if j.dropped || j.out == nil {
				continue
			}
			w := float32(j.weight)
			for i := range t.hidden {
				t.hidden[i] += w * j.out[i]
			}
		}
		mdl.LayerNorm(t.hidden)
		out = append(out, t)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].req < out[b].req })
	return out
}

// request holds the per-request state shared (coherently) across ranks.
// In coherent modes this sharing models the replicated context; in vanilla
// mode only the home rank ever touches it.
type request struct {
	home   int
	caches []*moe.KVCache // per layer
	prompt []int
	output []int
}

// Run executes the configured inference and returns the measurement report.
func Run(cfg Config) *Report {
	cfg.validate()
	mdl := cfg.Model
	mcfg := mdl.Cfg
	cl := cluster.New(cfg.Topo)
	gpus := cl.Size()
	totalReqs := gpus * cfg.RequestsPerGPU

	// Build requests with deterministic prompts.
	reqs := make([]*request, totalReqs)
	wr := rng.New(rng.Mix64(cfg.Seed, 0x9E9))
	for r := range reqs {
		reqs[r] = &request{home: r / cfg.RequestsPerGPU}
		reqs[r].caches = make([]*moe.KVCache, mcfg.Layers)
		for l := range reqs[r].caches {
			reqs[r].caches[l] = &moe.KVCache{}
		}
		reqs[r].prompt = make([]int, cfg.PromptLen)
		for i := range reqs[r].prompt {
			reqs[r].prompt[i] = wr.Intn(1 << 16)
		}
	}

	// The tiered expert-weight memory is sharded per GPU; every rank only
	// touches its own shard (demand accesses and received prefetch hints),
	// so the shared Manager needs no locking and stays deterministic.
	var mem *expertmem.Manager
	if cfg.Memory != nil {
		mem = expertmem.New(*cfg.Memory)
		mem.WarmReplicated(cfg.Placement.Assign, cfg.Placement.Extra)
		mem.Instrument(cfg.Trace, cfg.Metrics, 0)
	}

	perRank := make([]*rankMetrics, gpus)
	ranks := cl.Run(func(rk *cluster.Rank) {
		m := newRankMetrics()
		perRank[rk.ID] = m
		runRank(rk, &cfg, reqs, m, mem)
	})

	return buildReport(&cfg, reqs, ranks, perRank, mem)
}

// runRank is the SPMD body executed by every simulated GPU.
func runRank(rk *cluster.Rank, cfg *Config, reqs []*request, m *rankMetrics, mem *expertmem.Manager) {
	mdl := cfg.Model
	mcfg := mdl.Cfg
	gpus := rk.Cluster.Size()
	wire := mcfg.TokenWireBytes()
	// paging: expert weights may miss HBM and stall; hinting: additionally
	// exchange affinity-prefetch hints each layer. Both off when every
	// assigned expert fits (the 1x case costs nothing, not even collectives).
	paging := mem != nil && mem.Oversubscribed()
	hinting := paging && mem.Prefetching()

	// --- Prefill ---------------------------------------------------------
	// Each home rank computes its requests' prompt KV caches. The per-token
	// per-layer cost is a KV projection; the math is shared Go memory, but
	// only the home rank writes a request's caches here.
	for _, req := range reqs {
		if req.home != rk.ID {
			continue
		}
		for _, tok := range req.prompt {
			h := mdl.Embed(tok)
			for l := 0; l < mcfg.Layers; l++ {
				k, v := mdl.Attention(l).Project(h)
				req.caches[l].Append(k, v)
			}
		}
	}
	prefillTime := float64(cfg.PromptLen) * float64(mcfg.Layers) * cfg.Cost.Time(0.5*moe.AttentionFlops(mcfg, cfg.PromptLen))
	rk.Advance("prefill", float64(cfg.RequestsPerGPU)*prefillTime)

	// Context-coherent modes start by allgathering all contexts (paper
	// Fig 4, "before inference"). Volume: each rank's prompts.
	if cfg.Mode.coherent() {
		payload := make([]byte, cfg.RequestsPerGPU*cfg.PromptLen) // placeholder content
		all := collective.Allgather(rk, payload, wire, "allgather")
		m.allgatherBytes += collective.TotalBytes(all, wire) - len(payload)*wire
	}
	rk.Barrier()

	// Per-rank iteration observability, resolved once: nil handles when no
	// registry/tracer is attached make every update a no-op.
	iterSeconds := cfg.Metrics.Histogram("engine_iteration_seconds", obs.SecondsBuckets())
	iterations := cfg.Metrics.Counter("engine_iterations_total")

	// --- Decode iterations ----------------------------------------------
	for iter := 0; iter < cfg.GenerateTokens; iter++ {
		iterStart := rk.Now()
		// Tokens resident on this rank at the current layer boundary.
		var resident []*token
		for r, req := range reqs {
			if req.home != rk.ID {
				continue
			}
			var inputTok int
			if len(req.output) > 0 {
				inputTok = req.output[len(req.output)-1]
			} else if len(req.prompt) > 0 {
				inputTok = req.prompt[len(req.prompt)-1]
			}
			resident = append(resident, &token{
				req:    r,
				id:     cfg.tokenID(r, iter),
				home:   rk.ID,
				hidden: mdl.Embed(inputTok),
				prev:   -1,
			})
		}

		topK := mcfg.TopK
		// GShard capacity per expert per layer (0 = unlimited).
		capacity := 0
		if cfg.CapacityFactor > 0 {
			totalTokens := gpus * cfg.RequestsPerGPU
			capacity = int(math.Ceil(cfg.CapacityFactor * float64(totalTokens) * float64(topK) / float64(mcfg.Experts)))
			if capacity < 1 {
				capacity = 1
			}
		}

		// Replica routing signals: hop class for locality tie-breaks, and a
		// per-layer dispatch-load counter so the rank spreads its own jobs
		// across an expert's copies least-loaded-first. Nil for single-copy
		// placements — PickReplica then returns the primary untouched, the
		// pre-replication routing path bit for bit.
		class := func(from, to int) int { return int(cfg.Topo.Classify(from, to)) }
		var dispatchLoad []int
		if cfg.Placement.Replicated() {
			dispatchLoad = make([]int, gpus)
		}

		for layer := 0; layer < mcfg.Layers; layer++ {
			if dispatchLoad != nil {
				for i := range dispatchLoad {
					dispatchLoad[i] = 0
				}
			}
			// 1. Attention in place for resident tokens.
			for _, t := range resident {
				ctxLen := reqs[t.req].caches[layer].Len()
				out := mdl.Attention(layer).Forward(t.hidden, reqs[t.req].caches[layer])
				addResidualNorm(mdl, t.hidden, out)
				rk.Advance("attention", cfg.Cost.AttentionTime(mcfg, ctxLen+1))
			}
			// 2. Gating: top-k experts and mixture weights per token.
			rk.Advance("gating", cfg.Cost.GatingTime(mcfg, len(resident)))
			send := make([][]*expertJob, gpus)
			// Affinity-prefetch hints for the next layer, keyed by the GPU
			// that owns the predicted successor expert.
			var hints [][]int
			var hinted map[[2]int]bool
			if hinting && layer+1 < mcfg.Layers {
				hints = make([][]int, gpus)
				hinted = make(map[[2]int]bool)
			}
			for _, t := range resident {
				experts, weights := moe.RouteWeights(cfg.Router, layer, t.id, t.prev, t.hidden)
				t.prev = experts[0]
				if hints != nil {
					for _, sc := range mem.Successors(layer, experts[0]) {
						owner := cfg.Placement.PickReplica(layer+1, sc, rk.ID, nil, class)
						if k := [2]int{owner, sc}; !hinted[k] {
							hinted[k] = true
							hints[owner] = append(hints[owner], sc)
						}
					}
				}
				// The combine site: the primary expert's chosen copy in
				// coherent modes (the token continues there), the home GPU in
				// vanilla mode (the context lives there).
				primaryOwner := cfg.Placement.PickReplica(layer, experts[0], rk.ID, dispatchLoad, class)
				combineAt := primaryOwner
				if !cfg.Mode.coherent() {
					combineAt = t.home
				}
				for k, e := range experts {
					owner := primaryOwner
					if k > 0 {
						owner = cfg.Placement.PickReplica(layer, e, rk.ID, dispatchLoad, class)
					}
					if dispatchLoad != nil {
						dispatchLoad[owner]++
					}
					m.recordDispatch(rk, owner)
					job := &expertJob{
						tok: t, kIdx: k, expert: e, weight: weights[k],
						combineAt: combineAt, hidden: t.hidden,
					}
					send[owner] = append(send[owner], job)
				}
			}
			// 3. Alltoall #1: dispatch jobs to expert owners.
			recvJobs := dispatchAlltoall(rk, cfg, send, wire)
			m.alltoallBytes += outboundBytes(send, rk.ID, wire)
			var working []*expertJob
			for _, chunk := range recvJobs {
				working = append(working, chunk...)
			}
			// 3b. Exchange prefetch hints: each rank learns which of its
			// layer-(l+1) experts the affinity oracle predicts it will need.
			var hintRecv [][]int
			if hints != nil {
				hintRecv = collective.Alltoall(rk, hints, prefetchHintWire, "prefetch-hint")
			}
			// 4. Expert FFN on the owner, with capacity enforcement: each
			// expert serves at most `capacity` jobs, smallest token ids
			// first (a deterministic rule every mode agrees on); the rest
			// are dropped and pass through as residual-only.
			if capacity > 0 {
				enforceCapacity(working, capacity, m)
			}
			// 4a. Page in this layer's expert weights: each distinct expert
			// with surviving jobs must be HBM-resident before its FFN runs;
			// misses stall the rank for the (serialized) host-link fetch.
			// Demand accesses go first so same-instant speculation can never
			// delay them; then the layer-(l+1) prefetches start, overlapping
			// this layer's expert compute.
			if paging {
				for _, e := range distinctExperts(working) {
					rk.Advance("expert-stall", mem.Access(rk.ID, layer, e, rk.Now()))
				}
			}
			for _, chunk := range hintRecv {
				for _, e := range chunk {
					mem.Prefetch(rk.ID, layer+1, e, rk.Now())
				}
			}
			for _, job := range working {
				if !job.dropped {
					e := mdl.Expert(layer, job.expert)
					job.out = e.Forward(job.hidden)
					rk.Advance("expert", cfg.Cost.ExpertTime(mcfg))
				}
			}
			// 5. Route outputs to their combine sites. Coherent top-1 skips
			// the collective entirely: every job is already at its combine
			// site (owner == combineAt).
			var combineInput []*expertJob
			if cfg.Mode.coherent() && topK == 1 {
				combineInput = working
			} else {
				back := make([][]*expertJob, gpus)
				var local []*expertJob
				for _, job := range working {
					if job.combineAt == rk.ID {
						local = append(local, job)
						continue
					}
					back[job.combineAt] = append(back[job.combineAt], job)
				}
				m.alltoallBytes += outboundBytes(back, rk.ID, wire)
				ret := dispatchAlltoall(rk, cfg, back, wire)
				combineInput = local
				for d, chunk := range ret {
					if d == rk.ID {
						continue // local chunk placeholder; already in local
					}
					combineInput = append(combineInput, chunk...)
				}
			}
			// 6. Weighted combine + residual + norm per token; the tokens
			// whose combine happened here are resident for the next layer
			// (coherent) or remain the home batch (vanilla).
			resident = combineJobs(mdl, combineInput)
		}

		// Decode next token wherever each token ended up; the LM head is
		// replicated (it is part of the dense backbone).
		type genMsg struct {
			req int
			tok int
		}
		var gen []genMsg
		for _, t := range resident {
			next := mdl.NextToken(t.hidden)
			gen = append(gen, genMsg{req: t.req, tok: next})
		}
		if cfg.Mode.coherent() {
			// Allgather newly generated tokens so every rank's context stays
			// coherent (paper Fig 4, "upon iteration completion").
			all := collective.Allgather(rk, gen, wire, "allgather")
			m.allgatherBytes += collective.TotalBytes(all, wire) - len(gen)*wire
			// Rank 0 applies the appends once; shared memory models the
			// replicated context, so a single writer keeps it race-free.
			if rk.ID == 0 {
				for _, chunk := range all {
					for _, g := range chunk {
						reqs[g.req].output = append(reqs[g.req].output, g.tok)
					}
				}
			}
		} else {
			// Vanilla: tokens are home; the home rank records its own.
			for _, g := range gen {
				reqs[g.req].output = append(reqs[g.req].output, g.tok)
			}
		}
		// Span the rank's own work this iteration (pre-barrier, so the
		// duration excludes waiting for slower ranks).
		if cfg.Trace != nil {
			cfg.Trace.Emit(obs.Event{Kind: obs.EvIteration, Rep: 0, GPU: int32(rk.ID),
				Layer: -1, Expert: -1, T: iterStart, Dur: rk.Now() - iterStart, Aux: int64(iter)})
		}
		iterations.Inc()
		iterSeconds.Observe(rk.Now() - iterStart)
		rk.Barrier()
	}
}

// addResidualNorm applies x = LayerNorm(x + out) in place.
func addResidualNorm(mdl *moe.Model, x, out []float32) {
	for i := range x {
		x[i] += out[i]
	}
	mdl.LayerNorm(x)
}

// prefetchHintWire is the wire size of one prefetch hint (an expert index).
const prefetchHintWire = 4

// distinctExperts returns the sorted distinct experts among non-dropped
// jobs — the weights the rank must page in this layer.
func distinctExperts(jobs []*expertJob) []int {
	seen := map[int]bool{}
	var out []int
	for _, j := range jobs {
		if !j.dropped && !seen[j.expert] {
			seen[j.expert] = true
			out = append(out, j.expert)
		}
	}
	sort.Ints(out)
	return out
}

// dispatchAlltoall selects the flat or hierarchical token-dispatch
// schedule.
func dispatchAlltoall(rk *cluster.Rank, cfg *Config, send [][]*expertJob, wire int) [][]*expertJob {
	if cfg.HierarchicalA2A {
		return collective.HierarchicalAlltoall(rk, send, wire, "alltoall")
	}
	return collective.Alltoall(rk, send, wire, "alltoall")
}

// outboundBytes sums the wire size of chunks addressed to other ranks.
func outboundBytes[T any](send [][]T, self, elemBytes int) int {
	total := 0
	for d, chunk := range send {
		if d != self {
			total += len(chunk) * elemBytes
		}
	}
	return total
}

package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/expertmem"
	"repro/internal/topo"
)

// rankMetrics accumulates per-rank counters outside the simulated clock.
type rankMetrics struct {
	alltoallBytes  int
	allgatherBytes int
	dispatchSame   int
	dispatchNode   int
	dispatchCross  int
	droppedJobs    int
}

func newRankMetrics() *rankMetrics { return &rankMetrics{} }

// recordDispatch classifies a token dispatch from the rank to the owner GPU.
func (m *rankMetrics) recordDispatch(rk *cluster.Rank, owner int) {
	switch rk.Cluster.Topo.Classify(rk.ID, owner) {
	case topo.SameGPU:
		m.dispatchSame++
	case topo.SameNode:
		m.dispatchNode++
	default:
		m.dispatchCross++
	}
}

// Report is the outcome of an engine run.
type Report struct {
	Mode Mode
	// SimSeconds is the modeled wall-clock of the whole run (max rank
	// clock).
	SimSeconds float64
	// GeneratedTokens is the total number of decode steps completed across
	// requests.
	GeneratedTokens int
	// Throughput is GeneratedTokens / SimSeconds.
	Throughput float64
	// Breakdown maps operation categories (attention, expert, gating,
	// alltoall, allgather, prefill) to average per-rank simulated seconds.
	Breakdown map[string]float64
	// AlltoallBytes / AllgatherBytes are total wire bytes across ranks.
	AlltoallBytes  int
	AllgatherBytes int
	// Dispatches classifies every token->expert dispatch by locality.
	DispatchSameGPU   int
	DispatchSameNode  int
	DispatchCrossNode int
	// DroppedJobs counts (token, expert) dispatches dropped by capacity
	// enforcement (zero unless Config.CapacityFactor is set).
	DroppedJobs int
	// ExpertMem summarizes tiered expert-weight memory activity: hits,
	// misses, prefetches and stall time (nil unless Config.Memory is set).
	// The stall time also appears as the "expert-stall" breakdown category.
	ExpertMem *expertmem.Stats
	// Outputs[r] is request r's generated token ids — identical across
	// modes for identical seeds (the no-accuracy-change invariant).
	Outputs [][]int
}

// FracDispatchLocal returns the fraction of dispatches that stayed on the
// token's current GPU (paper Fig 7's bar metric).
func (r *Report) FracDispatchLocal() float64 {
	total := r.DispatchSameGPU + r.DispatchSameNode + r.DispatchCrossNode
	if total == 0 {
		return 0
	}
	return float64(r.DispatchSameGPU) / float64(total)
}

// FracDispatchIntraNode returns the fraction of dispatches that stayed
// within the token's current node (paper Fig 8's bar metric).
func (r *Report) FracDispatchIntraNode() float64 {
	total := r.DispatchSameGPU + r.DispatchSameNode + r.DispatchCrossNode
	if total == 0 {
		return 0
	}
	return float64(r.DispatchSameGPU+r.DispatchSameNode) / float64(total)
}

// CommSeconds returns the average per-rank time in communication
// categories.
func (r *Report) CommSeconds() float64 {
	return r.Breakdown["alltoall"] + r.Breakdown["allgather"]
}

// ComputeSeconds returns the average per-rank time in compute categories
// (decode only; prefill excluded to match the paper's per-iteration view).
func (r *Report) ComputeSeconds() float64 {
	return r.Breakdown["attention"] + r.Breakdown["expert"] + r.Breakdown["gating"]
}

// AlltoallShare returns the Alltoall fraction of the decode-time budget —
// the quantity in the paper's Fig 9 pies.
func (r *Report) AlltoallShare() float64 {
	total := r.ComputeSeconds() + r.CommSeconds()
	if total == 0 {
		return 0
	}
	return r.Breakdown["alltoall"] / total
}

// String renders a compact human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s simTime=%.6fs tokens=%d throughput=%.1f tok/s\n",
		r.Mode, r.SimSeconds, r.GeneratedTokens, r.Throughput)
	cats := make([]string, 0, len(r.Breakdown))
	for k := range r.Breakdown {
		cats = append(cats, k)
	}
	sort.Strings(cats)
	for _, k := range cats {
		fmt.Fprintf(&b, "  %-10s %.6fs\n", k, r.Breakdown[k])
	}
	fmt.Fprintf(&b, "  dispatch: %.1f%% same-gpu, %.1f%% intra-node\n",
		r.FracDispatchLocal()*100, r.FracDispatchIntraNode()*100)
	if r.ExpertMem != nil {
		fmt.Fprintf(&b, "  %s\n", r.ExpertMem)
	}
	return b.String()
}

// buildReport aggregates rank results into a Report.
func buildReport(cfg *Config, reqs []*request, ranks []*cluster.Rank, perRank []*rankMetrics, mem *expertmem.Manager) *Report {
	rep := &Report{
		Mode:      cfg.Mode,
		Breakdown: cluster.MergedBreakdown(ranks),
	}
	if mem != nil {
		st := mem.Stats()
		rep.ExpertMem = &st
	}
	rep.SimSeconds = cluster.MaxClock(ranks)
	for _, m := range perRank {
		rep.AlltoallBytes += m.alltoallBytes
		rep.AllgatherBytes += m.allgatherBytes
		rep.DispatchSameGPU += m.dispatchSame
		rep.DispatchSameNode += m.dispatchNode
		rep.DispatchCrossNode += m.dispatchCross
		rep.DroppedJobs += m.droppedJobs
	}
	rep.Outputs = make([][]int, len(reqs))
	for i, rq := range reqs {
		rep.Outputs[i] = rq.output
		rep.GeneratedTokens += len(rq.output)
	}
	if rep.SimSeconds > 0 {
		rep.Throughput = float64(rep.GeneratedTokens) / rep.SimSeconds
	}
	return rep
}

package engine

import (
	"math"
	"testing"

	"repro/internal/moe"
	"repro/internal/placement"
	"repro/internal/synth"
	"repro/internal/topo"
	"repro/internal/trace"
)

// testSetup builds a small but non-trivial inference configuration.
func testSetup(t *testing.T, mode Mode, gpus int, affinityPlacement bool) Config {
	t.Helper()
	cfg := moe.GPTM(16)
	cfg.Layers = 6 // keep runs fast
	mdl := moe.NewModel(cfg, 1)
	kernel := synth.NewKernel(synth.KernelParams{Seed: 2, Layers: cfg.Layers, Experts: cfg.Experts, Strength: 0.85})
	router := synth.NewKernelRouter(kernel, synth.Pile(), 1)
	tp := topo.ForGPUs(gpus)

	var pl *placement.Placement
	if affinityPlacement {
		tr := trace.Collect(router, cfg.Layers, trace.SequentialIDs(2000, synth.Pile().TokenID))
		pl = placement.Staged(tr.AllTransitionCounts(), cfg.Layers, cfg.Experts, tp, 5)
	} else {
		pl = placement.Contiguous(cfg.Layers, cfg.Experts, gpus)
	}
	return Config{
		Model:          mdl,
		Router:         router,
		Topo:           tp,
		Placement:      pl,
		Mode:           mode,
		Cost:           moe.DefaultCostModel(),
		RequestsPerGPU: 2,
		PromptLen:      8,
		GenerateTokens: 4,
		TokenID: func(req, iter int) uint64 {
			return synth.Pile().TokenID(uint64(1_000_000 + req*1000 + iter))
		},
		Seed: 7,
	}
}

func TestRunProducesTokens(t *testing.T) {
	rep := Run(testSetup(t, Vanilla, 8, false))
	if rep.GeneratedTokens != 8*2*4 {
		t.Fatalf("generated %d tokens, want %d", rep.GeneratedTokens, 8*2*4)
	}
	if rep.SimSeconds <= 0 || rep.Throughput <= 0 {
		t.Fatalf("bad timing: %+v", rep)
	}
	for r, out := range rep.Outputs {
		if len(out) != 4 {
			t.Fatalf("request %d generated %d tokens", r, len(out))
		}
	}
}

func TestModesGenerateIdenticalTokens(t *testing.T) {
	// The paper's core claim: ExFlow changes *where* computation happens,
	// never *what* is computed — no accuracy degradation. All three modes
	// must emit identical token streams.
	van := Run(testSetup(t, Vanilla, 8, false))
	coh := Run(testSetup(t, ContextCoherent, 8, false))
	exf := Run(testSetup(t, ExFlow, 8, true))
	for r := range van.Outputs {
		for i := range van.Outputs[r] {
			if van.Outputs[r][i] != coh.Outputs[r][i] {
				t.Fatalf("vanilla vs coherent diverge at req %d pos %d", r, i)
			}
			if van.Outputs[r][i] != exf.Outputs[r][i] {
				t.Fatalf("vanilla vs exflow diverge at req %d pos %d", r, i)
			}
		}
	}
}

func TestContextCoherentHalvesAlltoall(t *testing.T) {
	van := Run(testSetup(t, Vanilla, 8, false))
	coh := Run(testSetup(t, ContextCoherent, 8, false))
	// Vanilla sends every dispatched token twice (dispatch + combine);
	// coherent sends it at most once. Bytes should drop by roughly half or
	// more (tokens that stay local send nothing).
	if coh.AlltoallBytes >= van.AlltoallBytes*3/4 {
		t.Fatalf("coherent alltoall bytes %d not clearly below vanilla %d",
			coh.AlltoallBytes, van.AlltoallBytes)
	}
	if coh.AllgatherBytes == 0 {
		t.Fatal("coherent mode must pay for allgather")
	}
	if van.AllgatherBytes != 0 {
		t.Fatal("vanilla mode must not use allgather")
	}
}

func TestExFlowImprovesLocalityAndThroughput(t *testing.T) {
	coh := Run(testSetup(t, ContextCoherent, 8, false))
	exf := Run(testSetup(t, ExFlow, 8, true))
	if exf.FracDispatchLocal() <= coh.FracDispatchLocal() {
		t.Fatalf("affinity placement should raise same-GPU dispatches: %v vs %v",
			exf.FracDispatchLocal(), coh.FracDispatchLocal())
	}
	if exf.Throughput <= coh.Throughput {
		t.Fatalf("exflow throughput %v should beat coherent %v", exf.Throughput, coh.Throughput)
	}
}

func TestExFlowBeatsVanillaThroughput(t *testing.T) {
	van := Run(testSetup(t, Vanilla, 8, false))
	exf := Run(testSetup(t, ExFlow, 8, true))
	if exf.Throughput <= van.Throughput {
		t.Fatalf("exflow throughput %v should beat vanilla %v (the paper's headline)",
			exf.Throughput, van.Throughput)
	}
}

func TestBreakdownCategoriesPresent(t *testing.T) {
	rep := Run(testSetup(t, Vanilla, 4, false))
	for _, cat := range []string{"attention", "expert", "gating", "alltoall"} {
		if rep.Breakdown[cat] <= 0 {
			t.Fatalf("missing breakdown category %q: %v", cat, rep.Breakdown)
		}
	}
	if rep.ComputeSeconds() <= 0 || rep.CommSeconds() <= 0 {
		t.Fatal("aggregate compute/comm must be positive")
	}
	share := rep.AlltoallShare()
	if share <= 0 || share >= 1 {
		t.Fatalf("alltoall share %v out of (0,1)", share)
	}
}

func TestAlltoallShareGrowsWithNodes(t *testing.T) {
	// Paper Fig 9: the Alltoall proportion rises steeply as nodes are added.
	share4 := Run(testSetup(t, Vanilla, 4, false)).AlltoallShare()
	share16 := Run(testSetup(t, Vanilla, 16, false)).AlltoallShare()
	if share16 <= share4 {
		t.Fatalf("alltoall share should grow with nodes: 4gpu=%v 16gpu=%v", share4, share16)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := Run(testSetup(t, ExFlow, 8, true))
	b := Run(testSetup(t, ExFlow, 8, true))
	if math.Abs(a.SimSeconds-b.SimSeconds) > 1e-12 {
		t.Fatalf("sim time not deterministic: %v vs %v", a.SimSeconds, b.SimSeconds)
	}
	if a.AlltoallBytes != b.AlltoallBytes || a.DispatchSameGPU != b.DispatchSameGPU {
		t.Fatal("metrics not deterministic")
	}
	for r := range a.Outputs {
		for i := range a.Outputs[r] {
			if a.Outputs[r][i] != b.Outputs[r][i] {
				t.Fatal("outputs not deterministic")
			}
		}
	}
}

func TestDispatchCountsConsistent(t *testing.T) {
	cfg := testSetup(t, ContextCoherent, 8, false)
	rep := Run(cfg)
	total := rep.DispatchSameGPU + rep.DispatchSameNode + rep.DispatchCrossNode
	want := 8 * cfg.RequestsPerGPU * cfg.GenerateTokens * cfg.Model.Cfg.Layers
	if total != want {
		t.Fatalf("dispatch count %d, want %d", total, want)
	}
}

func TestSingleGPUAllLocal(t *testing.T) {
	rep := Run(testSetup(t, ContextCoherent, 1, false))
	if rep.FracDispatchLocal() != 1 {
		t.Fatalf("single GPU must keep all dispatches local, got %v", rep.FracDispatchLocal())
	}
	if rep.AlltoallBytes != 0 {
		t.Fatal("single GPU must move no alltoall bytes")
	}
}

func TestValidationPanics(t *testing.T) {
	base := testSetup(t, Vanilla, 4, false)
	mutations := []func(c Config) Config{
		func(c Config) Config { c.Model = nil; return c },
		func(c Config) Config { c.RequestsPerGPU = 0; return c },
		func(c Config) Config { c.Placement = placement.Contiguous(3, 16, 4); return c },
		func(c Config) Config { c.Topo = topo.ForGPUs(8); return c },
	}
	for i, mut := range mutations {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("mutation %d: expected panic", i)
				}
			}()
			Run(mut(base))
		}()
	}
}

func TestModeString(t *testing.T) {
	if Vanilla.String() != "vanilla" || ContextCoherent.String() != "context-coherent" || ExFlow.String() != "exflow" {
		t.Fatal("mode strings wrong")
	}
}

func TestReportString(t *testing.T) {
	rep := Run(testSetup(t, ExFlow, 4, true))
	s := rep.String()
	if len(s) == 0 || rep.FracDispatchIntraNode() < rep.FracDispatchLocal() {
		t.Fatalf("report rendering or locality ordering wrong:\n%s", s)
	}
}

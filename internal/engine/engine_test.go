package engine

import (
	"math"
	"testing"

	"repro/internal/expertmem"
	"repro/internal/moe"
	"repro/internal/placement"
	"repro/internal/synth"
	"repro/internal/topo"
	"repro/internal/trace"
)

// testSetup builds a small but non-trivial inference configuration.
func testSetup(t *testing.T, mode Mode, gpus int, affinityPlacement bool) Config {
	t.Helper()
	cfg := moe.GPTM(16)
	cfg.Layers = 6 // keep runs fast
	mdl := moe.NewModel(cfg, 1)
	kernel := synth.NewKernel(synth.KernelParams{Seed: 2, Layers: cfg.Layers, Experts: cfg.Experts, Strength: 0.85})
	router := synth.NewKernelRouter(kernel, synth.Pile(), 1)
	tp := topo.ForGPUs(gpus)

	var pl *placement.Placement
	if affinityPlacement {
		tr := trace.Collect(router, cfg.Layers, trace.SequentialIDs(2000, synth.Pile().TokenID))
		pl = placement.Staged(tr.AllTransitionCounts(), cfg.Layers, cfg.Experts, tp, 5)
	} else {
		pl = placement.Contiguous(cfg.Layers, cfg.Experts, gpus)
	}
	return Config{
		Model:          mdl,
		Router:         router,
		Topo:           tp,
		Placement:      pl,
		Mode:           mode,
		Cost:           moe.DefaultCostModel(),
		RequestsPerGPU: 2,
		PromptLen:      8,
		GenerateTokens: 4,
		TokenID: func(req, iter int) uint64 {
			return synth.Pile().TokenID(uint64(1_000_000 + req*1000 + iter))
		},
		Seed: 7,
	}
}

func TestRunProducesTokens(t *testing.T) {
	rep := Run(testSetup(t, Vanilla, 8, false))
	if rep.GeneratedTokens != 8*2*4 {
		t.Fatalf("generated %d tokens, want %d", rep.GeneratedTokens, 8*2*4)
	}
	if rep.SimSeconds <= 0 || rep.Throughput <= 0 {
		t.Fatalf("bad timing: %+v", rep)
	}
	for r, out := range rep.Outputs {
		if len(out) != 4 {
			t.Fatalf("request %d generated %d tokens", r, len(out))
		}
	}
}

func TestModesGenerateIdenticalTokens(t *testing.T) {
	// The paper's core claim: ExFlow changes *where* computation happens,
	// never *what* is computed — no accuracy degradation. All three modes
	// must emit identical token streams.
	van := Run(testSetup(t, Vanilla, 8, false))
	coh := Run(testSetup(t, ContextCoherent, 8, false))
	exf := Run(testSetup(t, ExFlow, 8, true))
	for r := range van.Outputs {
		for i := range van.Outputs[r] {
			if van.Outputs[r][i] != coh.Outputs[r][i] {
				t.Fatalf("vanilla vs coherent diverge at req %d pos %d", r, i)
			}
			if van.Outputs[r][i] != exf.Outputs[r][i] {
				t.Fatalf("vanilla vs exflow diverge at req %d pos %d", r, i)
			}
		}
	}
}

func TestContextCoherentHalvesAlltoall(t *testing.T) {
	van := Run(testSetup(t, Vanilla, 8, false))
	coh := Run(testSetup(t, ContextCoherent, 8, false))
	// Vanilla sends every dispatched token twice (dispatch + combine);
	// coherent sends it at most once. Bytes should drop by roughly half or
	// more (tokens that stay local send nothing).
	if coh.AlltoallBytes >= van.AlltoallBytes*3/4 {
		t.Fatalf("coherent alltoall bytes %d not clearly below vanilla %d",
			coh.AlltoallBytes, van.AlltoallBytes)
	}
	if coh.AllgatherBytes == 0 {
		t.Fatal("coherent mode must pay for allgather")
	}
	if van.AllgatherBytes != 0 {
		t.Fatal("vanilla mode must not use allgather")
	}
}

func TestExFlowImprovesLocalityAndThroughput(t *testing.T) {
	coh := Run(testSetup(t, ContextCoherent, 8, false))
	exf := Run(testSetup(t, ExFlow, 8, true))
	if exf.FracDispatchLocal() <= coh.FracDispatchLocal() {
		t.Fatalf("affinity placement should raise same-GPU dispatches: %v vs %v",
			exf.FracDispatchLocal(), coh.FracDispatchLocal())
	}
	if exf.Throughput <= coh.Throughput {
		t.Fatalf("exflow throughput %v should beat coherent %v", exf.Throughput, coh.Throughput)
	}
}

func TestExFlowBeatsVanillaThroughput(t *testing.T) {
	van := Run(testSetup(t, Vanilla, 8, false))
	exf := Run(testSetup(t, ExFlow, 8, true))
	if exf.Throughput <= van.Throughput {
		t.Fatalf("exflow throughput %v should beat vanilla %v (the paper's headline)",
			exf.Throughput, van.Throughput)
	}
}

func TestBreakdownCategoriesPresent(t *testing.T) {
	rep := Run(testSetup(t, Vanilla, 4, false))
	for _, cat := range []string{"attention", "expert", "gating", "alltoall"} {
		if rep.Breakdown[cat] <= 0 {
			t.Fatalf("missing breakdown category %q: %v", cat, rep.Breakdown)
		}
	}
	if rep.ComputeSeconds() <= 0 || rep.CommSeconds() <= 0 {
		t.Fatal("aggregate compute/comm must be positive")
	}
	share := rep.AlltoallShare()
	if share <= 0 || share >= 1 {
		t.Fatalf("alltoall share %v out of (0,1)", share)
	}
}

func TestAlltoallShareGrowsWithNodes(t *testing.T) {
	// Paper Fig 9: the Alltoall proportion rises steeply as nodes are added.
	share4 := Run(testSetup(t, Vanilla, 4, false)).AlltoallShare()
	share16 := Run(testSetup(t, Vanilla, 16, false)).AlltoallShare()
	if share16 <= share4 {
		t.Fatalf("alltoall share should grow with nodes: 4gpu=%v 16gpu=%v", share4, share16)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := Run(testSetup(t, ExFlow, 8, true))
	b := Run(testSetup(t, ExFlow, 8, true))
	if math.Abs(a.SimSeconds-b.SimSeconds) > 1e-12 {
		t.Fatalf("sim time not deterministic: %v vs %v", a.SimSeconds, b.SimSeconds)
	}
	if a.AlltoallBytes != b.AlltoallBytes || a.DispatchSameGPU != b.DispatchSameGPU {
		t.Fatal("metrics not deterministic")
	}
	for r := range a.Outputs {
		for i := range a.Outputs[r] {
			if a.Outputs[r][i] != b.Outputs[r][i] {
				t.Fatal("outputs not deterministic")
			}
		}
	}
}

func TestDispatchCountsConsistent(t *testing.T) {
	cfg := testSetup(t, ContextCoherent, 8, false)
	rep := Run(cfg)
	total := rep.DispatchSameGPU + rep.DispatchSameNode + rep.DispatchCrossNode
	want := 8 * cfg.RequestsPerGPU * cfg.GenerateTokens * cfg.Model.Cfg.Layers
	if total != want {
		t.Fatalf("dispatch count %d, want %d", total, want)
	}
}

func TestSingleGPUAllLocal(t *testing.T) {
	rep := Run(testSetup(t, ContextCoherent, 1, false))
	if rep.FracDispatchLocal() != 1 {
		t.Fatalf("single GPU must keep all dispatches local, got %v", rep.FracDispatchLocal())
	}
	if rep.AlltoallBytes != 0 {
		t.Fatal("single GPU must move no alltoall bytes")
	}
}

func TestValidationPanics(t *testing.T) {
	base := testSetup(t, Vanilla, 4, false)
	mutations := []func(c Config) Config{
		func(c Config) Config { c.Model = nil; return c },
		func(c Config) Config { c.RequestsPerGPU = 0; return c },
		func(c Config) Config { c.Placement = placement.Contiguous(3, 16, 4); return c },
		func(c Config) Config { c.Topo = topo.ForGPUs(8); return c },
	}
	for i, mut := range mutations {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("mutation %d: expected panic", i)
				}
			}()
			Run(mut(base))
		}()
	}
}

func TestModeString(t *testing.T) {
	if Vanilla.String() != "vanilla" || ContextCoherent.String() != "context-coherent" || ExFlow.String() != "exflow" {
		t.Fatal("mode strings wrong")
	}
}

func TestReportString(t *testing.T) {
	rep := Run(testSetup(t, ExFlow, 4, true))
	s := rep.String()
	if len(s) == 0 || rep.FracDispatchIntraNode() < rep.FracDispatchLocal() {
		t.Fatalf("report rendering or locality ordering wrong:\n%s", s)
	}
}

// memConfig attaches a tiered expert-memory config at the given
// oversubscription ratio, with the routing kernel's ground-truth transition
// rows as the affinity oracle.
func memConfig(t *testing.T, cfg *Config, oversub float64, policy expertmem.Policy) {
	t.Helper()
	mcfg := cfg.Model.Cfg
	kernel := synth.NewKernel(synth.KernelParams{Seed: 2, Layers: mcfg.Layers, Experts: mcfg.Experts, Strength: 0.85})
	aff := make([][][]float64, mcfg.Layers-1)
	for l := range aff {
		aff[l] = make([][]float64, mcfg.Experts)
		for from := range aff[l] {
			aff[l][from] = kernel.Transition(l, from)
		}
	}
	cfg.Memory = &expertmem.Config{
		Layers: mcfg.Layers, Experts: mcfg.Experts, GPUs: cfg.Topo.TotalGPUs(),
		ExpertBytes: int(mcfg.ExpertParams()) * 2,
		SlotsPerGPU: expertmem.SlotsFor(mcfg.Layers, mcfg.Experts, cfg.Topo.TotalGPUs(), oversub),
		HostLink:    cfg.Topo.HostPath(),
		NVMeLink:    cfg.Topo.NVMePath(),
		Policy:      policy,
		PrefetchK:   4,
		Affinity:    aff,
	}
}

func TestMemoryStallsVisibleAndOutputsUnchanged(t *testing.T) {
	base := Run(testSetup(t, ExFlow, 8, true))

	over := testSetup(t, ExFlow, 8, true)
	memConfig(t, &over, 2, expertmem.LRU())
	rep := Run(over)

	if rep.ExpertMem == nil || rep.ExpertMem.Misses == 0 {
		t.Fatalf("2x oversubscription produced no misses: %+v", rep.ExpertMem)
	}
	if rep.Breakdown["expert-stall"] <= 0 {
		t.Fatal("expert-miss stalls not charged to the clock")
	}
	if rep.SimSeconds <= base.SimSeconds {
		t.Fatalf("oversubscribed run not slower: %v vs %v", rep.SimSeconds, base.SimSeconds)
	}
	// Paging changes when things happen, never what is computed.
	for r := range base.Outputs {
		for i := range base.Outputs[r] {
			if base.Outputs[r][i] != rep.Outputs[r][i] {
				t.Fatalf("memory layer changed outputs at req %d pos %d", r, i)
			}
		}
	}
}

func TestMemoryAtOneXAddsNoOverhead(t *testing.T) {
	base := Run(testSetup(t, ExFlow, 8, true))
	at1x := testSetup(t, ExFlow, 8, true)
	memConfig(t, &at1x, 1, expertmem.AffinityPrefetch())
	rep := Run(at1x)
	if rep.SimSeconds != base.SimSeconds {
		t.Fatalf("1x memory layer changed iteration time: %v vs %v", rep.SimSeconds, base.SimSeconds)
	}
	if rep.ExpertMem.Misses != 0 || rep.ExpertMem.StallSeconds != 0 {
		t.Fatalf("1x produced paging activity: %+v", rep.ExpertMem)
	}
}

func TestMemoryAffinityPrefetchReducesStalls(t *testing.T) {
	lru := testSetup(t, ExFlow, 8, true)
	memConfig(t, &lru, 2, expertmem.LRU())
	lruRep := Run(lru)

	pf := testSetup(t, ExFlow, 8, true)
	memConfig(t, &pf, 2, expertmem.AffinityPrefetch())
	pfRep := Run(pf)

	if pfRep.ExpertMem.Prefetches == 0 || pfRep.ExpertMem.PrefetchHits == 0 {
		t.Fatalf("prefetcher idle: %+v", pfRep.ExpertMem)
	}
	if pfRep.ExpertMem.HitRate() <= lruRep.ExpertMem.HitRate() {
		t.Fatalf("affinity prefetch hit rate %.3f not above lru %.3f",
			pfRep.ExpertMem.HitRate(), lruRep.ExpertMem.HitRate())
	}
	if pfRep.Breakdown["expert-stall"] >= lruRep.Breakdown["expert-stall"] {
		t.Fatalf("affinity prefetch stall %v not below lru %v",
			pfRep.Breakdown["expert-stall"], lruRep.Breakdown["expert-stall"])
	}
}

func TestMemoryDeterministicReplay(t *testing.T) {
	mk := func() *Report {
		cfg := testSetup(t, ExFlow, 8, true)
		memConfig(t, &cfg, 2, expertmem.AffinityPrefetch())
		return Run(cfg)
	}
	a, b := mk(), mk()
	if a.SimSeconds != b.SimSeconds || *a.ExpertMem != *b.ExpertMem {
		t.Fatalf("memory replay diverged:\n%+v\n%+v", a.ExpertMem, b.ExpertMem)
	}
}

package collective

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/topo"
)

func TestHierarchicalAlltoallMatchesFlat(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		tp := topo.Wilkes3(nodes)
		p := tp.TotalGPUs()
		var mu sync.Mutex
		got := make(map[[2]int]string)
		run(tp, func(r *cluster.Rank) {
			send := make([][]string, p)
			for d := 0; d < p; d++ {
				send[d] = []string{fmt.Sprintf("%d->%d", r.ID, d)}
			}
			recv := HierarchicalAlltoall(r, send, 16, "ha2a")
			mu.Lock()
			defer mu.Unlock()
			for s := 0; s < p; s++ {
				if len(recv[s]) == 1 {
					got[[2]int{s, r.ID}] = recv[s][0]
				}
			}
		})
		for s := 0; s < p; s++ {
			for d := 0; d < p; d++ {
				want := fmt.Sprintf("%d->%d", s, d)
				if got[[2]int{s, d}] != want {
					t.Fatalf("nodes=%d: chunk (%d,%d) = %q, want %q", nodes, s, d, got[[2]int{s, d}], want)
				}
			}
		}
	}
}

func TestHierarchicalAlltoallIrregular(t *testing.T) {
	tp := topo.Wilkes3(2)
	p := tp.TotalGPUs()
	run(tp, func(r *cluster.Rank) {
		send := make([][]int, p)
		for d := 0; d < p; d++ {
			for k := 0; k < (r.ID+d)%3; k++ {
				send[d] = append(send[d], r.ID*100+d)
			}
		}
		recv := HierarchicalAlltoall(r, send, 8, "ha2a")
		for s := 0; s < p; s++ {
			wantLen := (s + r.ID) % 3
			if len(recv[s]) != wantLen {
				t.Errorf("rank %d: chunk from %d has %d elems, want %d", r.ID, s, len(recv[s]), wantLen)
				return
			}
			for _, v := range recv[s] {
				if v != s*100+r.ID {
					t.Errorf("rank %d: wrong payload from %d", r.ID, s)
					return
				}
			}
		}
	})
}

func TestHierarchicalFewerInterNodeMessagesAtSmallChunks(t *testing.T) {
	// With tiny per-pair chunks the flat Alltoall pays the IB latency
	// GPUsPerNode^2 times per node pair; the hierarchical schedule pays it
	// once (plus NVLink staging). The simulated time must reflect that.
	tp := topo.Wilkes3(4) // 16 ranks
	p := tp.TotalGPUs()
	timeOf := func(hier bool) float64 {
		ranks := run(tp, func(r *cluster.Rank) {
			send := make([][]byte, p)
			for d := range send {
				send[d] = make([]byte, 128) // latency-dominated
			}
			if hier {
				HierarchicalAlltoall(r, send, 1, "x")
			} else {
				Alltoall(r, send, 1, "x")
			}
			r.Barrier()
		})
		return cluster.MaxClock(ranks)
	}
	flat, hier := timeOf(false), timeOf(true)
	if hier >= flat {
		t.Fatalf("hierarchical (%v) should beat flat (%v) on latency-bound chunks", hier, flat)
	}
}

func TestHierarchicalSingleNodeDelegates(t *testing.T) {
	tp := topo.SingleNode(4)
	p := tp.TotalGPUs()
	run(tp, func(r *cluster.Rank) {
		send := make([][]int, p)
		for d := range send {
			send[d] = []int{r.ID}
		}
		recv := HierarchicalAlltoall(r, send, 8, "x")
		for s := 0; s < p; s++ {
			if len(recv[s]) != 1 || recv[s][0] != s {
				t.Errorf("rank %d: wrong delivery from %d", r.ID, s)
			}
		}
	})
}

func TestHierarchicalWrongChunkCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	run(topo.Wilkes3(2), func(r *cluster.Rank) {
		HierarchicalAlltoall(r, make([][]int, 3), 8, "x")
	})
}

package collective

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/topo"
)

func run(t *topo.Topology, fn func(r *cluster.Rank)) []*cluster.Rank {
	return cluster.New(t).Run(fn)
}

func TestAlltoallPermutesData(t *testing.T) {
	tp := topo.Wilkes3(2)
	p := tp.TotalGPUs()
	var mu sync.Mutex
	got := make(map[[2]int]string) // (src,dst) -> payload received at dst
	run(tp, func(r *cluster.Rank) {
		send := make([][]string, p)
		for d := 0; d < p; d++ {
			send[d] = []string{fmt.Sprintf("%d->%d", r.ID, d)}
		}
		recv := Alltoall(r, send, 16, "a2a")
		mu.Lock()
		defer mu.Unlock()
		for s := 0; s < p; s++ {
			got[[2]int{s, r.ID}] = recv[s][0]
		}
	})
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			want := fmt.Sprintf("%d->%d", s, d)
			if got[[2]int{s, d}] != want {
				t.Fatalf("chunk (%d,%d) = %q, want %q", s, d, got[[2]int{s, d}], want)
			}
		}
	}
}

func TestAlltoallIrregularChunks(t *testing.T) {
	tp := topo.SingleNode(4)
	p := tp.TotalGPUs()
	run(tp, func(r *cluster.Rank) {
		send := make([][]int, p)
		for d := 0; d < p; d++ {
			// Rank r sends d copies of r to rank d (possibly empty chunk).
			for k := 0; k < d; k++ {
				send[d] = append(send[d], r.ID)
			}
		}
		recv := Alltoall(r, send, 8, "a2a")
		for s := 0; s < p; s++ {
			if len(recv[s]) != r.ID {
				t.Errorf("rank %d: chunk from %d has len %d, want %d", r.ID, s, len(recv[s]), r.ID)
				return
			}
			for _, v := range recv[s] {
				if v != s {
					t.Errorf("rank %d: wrong payload from %d", r.ID, s)
					return
				}
			}
		}
	})
}

func TestAlltoallWrongChunkCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	run(topo.SingleNode(2), func(r *cluster.Rank) {
		Alltoall(r, make([][]int, 3), 8, "x")
	})
}

func TestAlltoallCostGrowsWithBytes(t *testing.T) {
	cost := func(chunk int) float64 {
		tp := topo.Wilkes3(2)
		p := tp.TotalGPUs()
		ranks := run(tp, func(r *cluster.Rank) {
			send := make([][]byte, p)
			for d := range send {
				send[d] = make([]byte, chunk)
			}
			Alltoall(r, send, 1, "a2a")
			r.Barrier()
		})
		return cluster.MaxClock(ranks)
	}
	small, large := cost(1<<10), cost(1<<20)
	if large <= small {
		t.Fatalf("Alltoall cost not monotone: %v vs %v", small, large)
	}
}

func TestAllgatherIdenticalEverywhere(t *testing.T) {
	tp := topo.Wilkes3(2)
	p := tp.TotalGPUs()
	var mu sync.Mutex
	views := make([][][]int, p)
	run(tp, func(r *cluster.Rank) {
		mine := []int{r.ID * 10, r.ID*10 + 1}
		all := Allgather(r, mine, 8, "ag")
		mu.Lock()
		views[r.ID] = all
		mu.Unlock()
	})
	for rank, view := range views {
		if len(view) != p {
			t.Fatalf("rank %d view has %d chunks", rank, len(view))
		}
		for src, chunk := range view {
			if len(chunk) != 2 || chunk[0] != src*10 || chunk[1] != src*10+1 {
				t.Fatalf("rank %d: chunk from %d wrong: %v", rank, src, chunk)
			}
		}
	}
}

func TestAllgatherEmptyChunks(t *testing.T) {
	tp := topo.SingleNode(3)
	run(tp, func(r *cluster.Rank) {
		var mine []int
		if r.ID == 1 {
			mine = []int{42}
		}
		all := Allgather(r, mine, 8, "ag")
		if len(all[0]) != 0 || len(all[2]) != 0 || len(all[1]) != 1 || all[1][0] != 42 {
			t.Errorf("rank %d: wrong gather result %v", r.ID, all)
		}
	})
}

func TestAllReduceSumCorrect(t *testing.T) {
	for _, gpus := range []int{1, 2, 3, 4, 8} {
		tp := topo.ForGPUs(gpus)
		p := tp.TotalGPUs()
		const n = 17 // deliberately not divisible by p
		run(tp, func(r *cluster.Rank) {
			mine := make([]float64, n)
			for i := range mine {
				mine[i] = float64(r.ID*100 + i)
			}
			got := AllReduceSum(r, mine, "ar")
			for i := range got {
				want := 0.0
				for s := 0; s < p; s++ {
					want += float64(s*100 + i)
				}
				if math.Abs(got[i]-want) > 1e-9 {
					t.Errorf("gpus=%d rank=%d elem %d: got %v want %v", gpus, r.ID, i, got[i], want)
					return
				}
			}
		})
	}
}

func TestAllReduceDoesNotMutateInput(t *testing.T) {
	tp := topo.SingleNode(2)
	run(tp, func(r *cluster.Rank) {
		mine := []float64{1, 2, 3}
		AllReduceSum(r, mine, "ar")
		if mine[0] != 1 || mine[1] != 2 || mine[2] != 3 {
			t.Errorf("input mutated: %v", mine)
		}
	})
}

func TestBroadcastFromEveryRoot(t *testing.T) {
	tp := topo.Wilkes3(2)
	p := tp.TotalGPUs()
	for root := 0; root < p; root++ {
		var mu sync.Mutex
		got := make([]int, p)
		run(tp, func(r *cluster.Rank) {
			val := -1
			if r.ID == root {
				val = 4242
			}
			out := Broadcast(r, root, val, 8, "bc")
			mu.Lock()
			got[r.ID] = out
			mu.Unlock()
		})
		for rank, v := range got {
			if v != 4242 {
				t.Fatalf("root=%d rank=%d got %d", root, rank, v)
			}
		}
	}
}

func TestBroadcastInvalidRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	run(topo.SingleNode(2), func(r *cluster.Rank) {
		Broadcast(r, 5, 1, 8, "bc")
	})
}

func TestBroadcastSingleRank(t *testing.T) {
	run(topo.SingleNode(1), func(r *cluster.Rank) {
		if Broadcast(r, 0, 7, 8, "bc") != 7 {
			t.Error("single-rank broadcast wrong")
		}
	})
}

func TestTotalBytes(t *testing.T) {
	chunks := [][]int{{1, 2}, nil, {3}}
	if TotalBytes(chunks, 8) != 24 {
		t.Fatalf("TotalBytes = %d", TotalBytes(chunks, 8))
	}
}

func TestAlltoallTimeScalesWithClusterSize(t *testing.T) {
	cost := func(gpus int) float64 {
		tp := topo.ForGPUs(gpus)
		p := tp.TotalGPUs()
		ranks := run(tp, func(r *cluster.Rank) {
			send := make([][]byte, p)
			for d := range send {
				send[d] = make([]byte, 64<<10)
			}
			Alltoall(r, send, 1, "a2a")
			r.Barrier()
		})
		return cluster.MaxClock(ranks)
	}
	// More GPUs (and especially more nodes) must make the same per-pair
	// chunk Alltoall slower — the premise of the paper's Fig 9.
	c4, c16, c32 := cost(4), cost(16), cost(32)
	if !(c4 < c16 && c16 < c32) {
		t.Fatalf("Alltoall scaling broken: 4gpu=%v 16gpu=%v 32gpu=%v", c4, c16, c32)
	}
}

func BenchmarkAlltoall16GPU(b *testing.B) {
	tp := topo.ForGPUs(16)
	p := tp.TotalGPUs()
	for i := 0; i < b.N; i++ {
		run(tp, func(r *cluster.Rank) {
			send := make([][]byte, p)
			for d := range send {
				send[d] = make([]byte, 4096)
			}
			Alltoall(r, send, 1, "a2a")
		})
	}
}

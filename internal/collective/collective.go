// Package collective implements the MPI/NCCL-style collective operations MoE
// expert parallelism is built from — Alltoall, Allgather, AllReduce,
// Broadcast — over the simulated cluster runtime.
//
// Each collective both moves real data between rank goroutines and advances
// the simulated clocks according to the algorithm's communication structure:
//   - Alltoall: pairwise exchange, P-1 steps, rank r sends chunk to
//     (r+step) mod P and receives from (r-step) mod P.
//   - Allgather: ring, P-1 steps, each step forwarding the chunk received in
//     the previous step.
//   - AllReduce: ring reduce-scatter followed by ring allgather.
//   - Broadcast: binomial tree from the root.
//
// These are the algorithms NCCL uses at the message sizes MoE inference
// produces, so the simulated time has the right shape in both P and bytes.
package collective

import (
	"fmt"

	"repro/internal/cluster"
)

// Alltoall performs a personalized all-to-all exchange: send[d] is delivered
// to rank d, and the returned recv[s] holds the chunk rank s addressed to
// this rank. Chunks may have different lengths (MoE token dispatch is
// irregular). elemBytes is the wire size of one T. The simulated time charged
// reflects the pairwise-exchange schedule; chunks addressed to the local rank
// are charged as a local copy.
func Alltoall[T any](r *cluster.Rank, send [][]T, elemBytes int, category string) [][]T {
	p := r.Cluster.Size()
	if len(send) != p {
		panic(fmt.Sprintf("collective: Alltoall needs %d chunks, got %d", p, len(send)))
	}
	recv := make([][]T, p)
	// Local chunk: an on-GPU copy, not a network transfer.
	recv[r.ID] = send[r.ID]
	r.LocalCopy(len(send[r.ID])*elemBytes, category)
	for step := 1; step < p; step++ {
		dst := (r.ID + step) % p
		src := (r.ID - step + p) % p
		r.Send(dst, send[dst], len(send[dst])*elemBytes, category)
		recv[src] = r.Recv(src).([]T)
	}
	return recv
}

// Allgather collects each rank's chunk onto every rank using a ring. The
// result slice is indexed by source rank and is identical (element-wise) on
// all ranks.
func Allgather[T any](r *cluster.Rank, mine []T, elemBytes int, category string) [][]T {
	p := r.Cluster.Size()
	out := make([][]T, p)
	out[r.ID] = mine
	next := (r.ID + 1) % p
	prev := (r.ID - 1 + p) % p
	carry := mine
	carryOwner := r.ID
	for step := 1; step < p; step++ {
		r.Send(next, ringPacket[T]{owner: carryOwner, data: carry}, len(carry)*elemBytes, category)
		pkt := r.Recv(prev).(ringPacket[T])
		out[pkt.owner] = pkt.data
		carry = pkt.data
		carryOwner = pkt.owner
	}
	return out
}

// ringPacket carries a chunk plus its originating rank around the ring.
type ringPacket[T any] struct {
	owner int
	data  []T
}

// AllReduceSum sums float64 vectors of equal length across all ranks; every
// rank returns the same totals. Implemented as ring reduce-scatter + ring
// allgather over contiguous blocks, the bandwidth-optimal schedule.
func AllReduceSum(r *cluster.Rank, mine []float64, category string) []float64 {
	p := r.Cluster.Size()
	n := len(mine)
	acc := append([]float64(nil), mine...)
	if p == 1 {
		return acc
	}
	const elemBytes = 8
	// Block boundaries: block b covers [bounds[b], bounds[b+1]).
	bounds := make([]int, p+1)
	for b := 0; b <= p; b++ {
		bounds[b] = b * n / p
	}
	next := (r.ID + 1) % p
	prev := (r.ID - 1 + p) % p
	// Reduce-scatter: after p-1 steps, rank r holds the full sum of block r.
	for step := 0; step < p-1; step++ {
		sendBlock := (r.ID - step + p) % p
		recvBlock := (r.ID - step - 1 + p) % p
		chunk := append([]float64(nil), acc[bounds[sendBlock]:bounds[sendBlock+1]]...)
		r.Send(next, chunk, len(chunk)*elemBytes, category)
		in := r.Recv(prev).([]float64)
		dst := acc[bounds[recvBlock]:bounds[recvBlock+1]]
		for i := range dst {
			dst[i] += in[i]
		}
	}
	// Allgather the reduced blocks.
	for step := 0; step < p-1; step++ {
		sendBlock := (r.ID + 1 - step + p) % p
		recvBlock := (r.ID - step + p) % p
		chunk := append([]float64(nil), acc[bounds[sendBlock]:bounds[sendBlock+1]]...)
		r.Send(next, chunk, len(chunk)*elemBytes, category)
		in := r.Recv(prev).([]float64)
		copy(acc[bounds[recvBlock]:bounds[recvBlock+1]], in)
	}
	return acc
}

// Broadcast distributes root's value to every rank via a binomial tree and
// returns it. Non-root ranks pass any placeholder (ignored).
func Broadcast[T any](r *cluster.Rank, root int, value T, bytes int, category string) T {
	p := r.Cluster.Size()
	if root < 0 || root >= p {
		panic("collective: invalid broadcast root")
	}
	// Work in a rotated space where the root is rank 0. At step `mask`,
	// ranks [0, mask) already hold the value and each sends to vrank+mask;
	// ranks [mask, 2*mask) receive.
	vrank := (r.ID - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if vrank < mask {
			peer := vrank + mask
			if peer < p {
				r.Send((peer+root)%p, value, bytes, category)
			}
		} else if vrank < 2*mask {
			value = r.Recv(((vrank - mask) + root) % p).(T)
		}
	}
	return value
}

// TotalBytes is a helper computing the wire volume of a chunked payload.
func TotalBytes[T any](chunks [][]T, elemBytes int) int {
	total := 0
	for _, c := range chunks {
		total += len(c) * elemBytes
	}
	return total
}

package collective

import (
	"repro/internal/cluster"
)

// Gather collects each rank's chunk onto the root using direct sends (the
// flat algorithm NCCL uses for gather). Non-root ranks return nil; the root
// returns chunks indexed by source rank.
func Gather[T any](r *cluster.Rank, root int, mine []T, elemBytes int, category string) [][]T {
	p := r.Cluster.Size()
	if root < 0 || root >= p {
		panic("collective: invalid gather root")
	}
	if r.ID == root {
		out := make([][]T, p)
		out[root] = mine
		r.LocalCopy(len(mine)*elemBytes, category)
		for src := 0; src < p; src++ {
			if src == root {
				continue
			}
			out[src] = r.Recv(src).([]T)
		}
		return out
	}
	r.Send(root, mine, len(mine)*elemBytes, category)
	return nil
}

// Scatter distributes root's per-rank chunks: rank i receives chunks[i].
// Non-root ranks pass nil chunks.
func Scatter[T any](r *cluster.Rank, root int, chunks [][]T, elemBytes int, category string) []T {
	p := r.Cluster.Size()
	if root < 0 || root >= p {
		panic("collective: invalid scatter root")
	}
	if r.ID == root {
		if len(chunks) != p {
			panic("collective: Scatter needs one chunk per rank")
		}
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			r.Send(dst, chunks[dst], len(chunks[dst])*elemBytes, category)
		}
		r.LocalCopy(len(chunks[root])*elemBytes, category)
		return chunks[root]
	}
	return r.Recv(root).([]T)
}

// ReduceScatterSum splits equal-length float64 vectors into P blocks,
// reduces block b across all ranks, and leaves the reduced block b on rank
// b — the first half of the ring AllReduce, exposed directly because MoE
// gradient pipelines use it standalone. Returns this rank's reduced block
// (and its start offset in the original vector).
func ReduceScatterSum(r *cluster.Rank, mine []float64, category string) ([]float64, int) {
	p := r.Cluster.Size()
	n := len(mine)
	bounds := make([]int, p+1)
	for b := 0; b <= p; b++ {
		bounds[b] = b * n / p
	}
	acc := append([]float64(nil), mine...)
	if p == 1 {
		return acc, 0
	}
	const elemBytes = 8
	next := (r.ID + 1) % p
	prev := (r.ID - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendBlock := (r.ID - step + p) % p
		recvBlock := (r.ID - step - 1 + p) % p
		chunk := append([]float64(nil), acc[bounds[sendBlock]:bounds[sendBlock+1]]...)
		r.Send(next, chunk, len(chunk)*elemBytes, category)
		in := r.Recv(prev).([]float64)
		dst := acc[bounds[recvBlock]:bounds[recvBlock+1]]
		for i := range dst {
			dst[i] += in[i]
		}
	}
	// After p-1 steps this rank holds the complete block (ID+1) mod p.
	owned := (r.ID + 1) % p
	out := append([]float64(nil), acc[bounds[owned]:bounds[owned+1]]...)
	return out, bounds[owned]
}

package collective

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/topo"
)

func TestGatherCollectsAllChunks(t *testing.T) {
	tp := topo.Wilkes3(2)
	p := tp.TotalGPUs()
	for root := 0; root < p; root += 3 {
		var mu sync.Mutex
		var rootView [][]int
		run(tp, func(r *cluster.Rank) {
			mine := []int{r.ID, r.ID * 10}
			out := Gather(r, root, mine, 8, "g")
			if r.ID == root {
				mu.Lock()
				rootView = out
				mu.Unlock()
			} else if out != nil {
				t.Errorf("non-root rank %d got non-nil gather result", r.ID)
			}
		})
		if len(rootView) != p {
			t.Fatalf("root=%d: got %d chunks", root, len(rootView))
		}
		for src, chunk := range rootView {
			if len(chunk) != 2 || chunk[0] != src || chunk[1] != src*10 {
				t.Fatalf("root=%d: chunk from %d wrong: %v", root, src, chunk)
			}
		}
	}
}

func TestScatterDistributes(t *testing.T) {
	tp := topo.Wilkes3(2)
	p := tp.TotalGPUs()
	const root = 2
	var mu sync.Mutex
	got := make([]int, p)
	run(tp, func(r *cluster.Rank) {
		var chunks [][]int
		if r.ID == root {
			chunks = make([][]int, p)
			for d := range chunks {
				chunks[d] = []int{d * 7}
			}
		}
		mine := Scatter(r, root, chunks, 8, "s")
		mu.Lock()
		got[r.ID] = mine[0]
		mu.Unlock()
	})
	for rank, v := range got {
		if v != rank*7 {
			t.Fatalf("rank %d got %d", rank, v)
		}
	}
}

func TestScatterWrongChunksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	run(topo.SingleNode(2), func(r *cluster.Rank) {
		var chunks [][]int
		if r.ID == 0 {
			chunks = make([][]int, 1) // wrong count
		}
		Scatter(r, 0, chunks, 8, "s")
	})
}

func TestGatherScatterInvalidRootPanics(t *testing.T) {
	for _, f := range []func(r *cluster.Rank){
		func(r *cluster.Rank) { Gather(r, 9, []int{1}, 8, "x") },
		func(r *cluster.Rank) { Scatter[int](r, -1, nil, 8, "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			run(topo.SingleNode(2), f)
		}()
	}
}

func TestReduceScatterSumCorrect(t *testing.T) {
	for _, gpus := range []int{1, 2, 4, 8} {
		tp := topo.ForGPUs(gpus)
		p := tp.TotalGPUs()
		const n = 23
		var mu sync.Mutex
		blocks := make(map[int][]float64)
		offsets := make(map[int]int)
		run(tp, func(r *cluster.Rank) {
			mine := make([]float64, n)
			for i := range mine {
				mine[i] = float64(r.ID + i*i)
			}
			block, off := ReduceScatterSum(r, mine, "rs")
			mu.Lock()
			blocks[r.ID] = block
			offsets[r.ID] = off
			mu.Unlock()
		})
		// Reassemble and check against the expected sums.
		full := make([]float64, n)
		covered := make([]bool, n)
		for rank, block := range blocks {
			off := offsets[rank]
			for i, v := range block {
				if covered[off+i] {
					t.Fatalf("gpus=%d: element %d covered twice", gpus, off+i)
				}
				covered[off+i] = true
				full[off+i] = v
			}
		}
		for i := 0; i < n; i++ {
			if !covered[i] {
				t.Fatalf("gpus=%d: element %d not covered", gpus, i)
			}
			want := 0.0
			for s := 0; s < p; s++ {
				want += float64(s + i*i)
			}
			if math.Abs(full[i]-want) > 1e-9 {
				t.Fatalf("gpus=%d elem %d: got %v want %v", gpus, i, full[i], want)
			}
		}
	}
}

func TestReduceScatterMatchesAllReducePrefix(t *testing.T) {
	// ReduceScatter must agree with the corresponding slice of AllReduce.
	tp := topo.SingleNode(4)
	const n = 16
	var mu sync.Mutex
	rsBlocks := map[int][]float64{}
	rsOffsets := map[int]int{}
	var arFull []float64
	run(tp, func(r *cluster.Rank) {
		mine := make([]float64, n)
		for i := range mine {
			mine[i] = float64(r.ID*n + i)
		}
		block, off := ReduceScatterSum(r, append([]float64(nil), mine...), "rs")
		full := AllReduceSum(r, mine, "ar")
		mu.Lock()
		rsBlocks[r.ID] = block
		rsOffsets[r.ID] = off
		if r.ID == 0 {
			arFull = full
		}
		mu.Unlock()
	})
	for rank, block := range rsBlocks {
		off := rsOffsets[rank]
		for i, v := range block {
			if math.Abs(v-arFull[off+i]) > 1e-9 {
				t.Fatalf("rank %d block elem %d: rs %v vs ar %v", rank, i, v, arFull[off+i])
			}
		}
	}
}

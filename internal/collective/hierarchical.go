package collective

import (
	"repro/internal/cluster"
)

// HierarchicalAlltoall performs a personalized all-to-all in two stages that
// exploit the topology's bandwidth hierarchy, the way NCCL's PXN / rail-
// optimized schedules do:
//
//  1. Intra-node gather: every rank forwards its inter-node chunks to the
//     node's leader (local rank 0) over NVLink, bundled per destination
//     node.
//  2. Inter-node exchange: node leaders exchange the bundled chunks over
//     the slow fabric (one large message per node pair instead of
//     GPUsPerNode^2 small ones), then scatter arrivals to their local
//     ranks.
//
// Intra-node chunks are delivered directly. The result is semantically
// identical to Alltoall; the win is fewer inter-node messages, which
// matters when the per-message latency term dominates (small-chunk MoE
// dispatch at scale).
type hierPacket[T any] struct {
	srcRank int
	dstRank int
	data    []T
}

// HierarchicalAlltoall has the same contract as Alltoall.
func HierarchicalAlltoall[T any](r *cluster.Rank, send [][]T, elemBytes int, category string) [][]T {
	tp := r.Cluster.Topo
	p := r.Cluster.Size()
	if len(send) != p {
		panic("collective: HierarchicalAlltoall chunk count mismatch")
	}
	if tp.Nodes == 1 {
		return Alltoall(r, send, elemBytes, category)
	}
	recv := make([][]T, p)
	myNode := tp.NodeOf(r.ID)
	leader := tp.Rank(myNode, 0)
	isLeader := r.ID == leader

	// Stage 0: direct intra-node (and self) deliveries via the flat
	// pairwise schedule restricted to the node.
	recv[r.ID] = send[r.ID]
	r.LocalCopy(len(send[r.ID])*elemBytes, category)
	local := tp.RanksOnNode(myNode)
	for step := 1; step < len(local); step++ {
		me := indexOf(local, r.ID)
		dst := local[(me+step)%len(local)]
		src := local[(me-step+len(local))%len(local)]
		r.Send(dst, send[dst], len(send[dst])*elemBytes, category)
		recv[src] = r.Recv(src).([]T)
	}

	// Stage 1: forward inter-node chunks to the node leader, bundled per
	// destination node.
	type bundle = []hierPacket[T]
	outByNode := make([]bundle, tp.Nodes)
	bytesByNode := make([]int, tp.Nodes)
	for dst := 0; dst < p; dst++ {
		dn := tp.NodeOf(dst)
		if dn == myNode {
			continue
		}
		outByNode[dn] = append(outByNode[dn], hierPacket[T]{srcRank: r.ID, dstRank: dst, data: send[dst]})
		bytesByNode[dn] += len(send[dst]) * elemBytes
	}
	if !isLeader {
		total := 0
		var all bundle
		for dn := 0; dn < tp.Nodes; dn++ {
			all = append(all, outByNode[dn]...)
			total += bytesByNode[dn]
		}
		r.Send(leader, all, total, category)
	}
	var staged []bundle // leader: per destination node
	if isLeader {
		staged = make([]bundle, tp.Nodes)
		for dn := 0; dn < tp.Nodes; dn++ {
			staged[dn] = append(staged[dn], outByNode[dn]...)
		}
		for _, peer := range local {
			if peer == leader {
				continue
			}
			in := r.Recv(peer).(bundle)
			for _, pkt := range in {
				staged[tp.NodeOf(pkt.dstRank)] = append(staged[tp.NodeOf(pkt.dstRank)], pkt)
			}
		}
	}

	// Stage 2: leaders exchange node bundles pairwise, then scatter to
	// local ranks; non-leaders receive their forwarded chunks.
	if isLeader {
		arrivals := make([]bundle, 0, tp.Nodes)
		for step := 1; step < tp.Nodes; step++ {
			dstNode := (myNode + step) % tp.Nodes
			srcNode := (myNode - step + tp.Nodes) % tp.Nodes
			out := staged[dstNode]
			bytes := 0
			for _, pkt := range out {
				bytes += len(pkt.data) * elemBytes
			}
			r.Send(tp.Rank(dstNode, 0), out, bytes, category)
			arrivals = append(arrivals, r.Recv(tp.Rank(srcNode, 0)).(bundle))
		}
		// Scatter arrivals: keep own, forward the rest over NVLink.
		perLocal := make(map[int]bundle)
		for _, in := range arrivals {
			for _, pkt := range in {
				if pkt.dstRank == r.ID {
					recv[pkt.srcRank] = pkt.data
				} else {
					perLocal[pkt.dstRank] = append(perLocal[pkt.dstRank], pkt)
				}
			}
		}
		for _, peer := range local {
			if peer == leader {
				continue
			}
			out := perLocal[peer]
			bytes := 0
			for _, pkt := range out {
				bytes += len(pkt.data) * elemBytes
			}
			r.Send(peer, out, bytes, category)
		}
	} else {
		in := r.Recv(leader).(bundle)
		for _, pkt := range in {
			recv[pkt.srcRank] = pkt.data
		}
	}
	// Chunks from ranks that sent nothing to us stay nil, matching the
	// flat Alltoall's behaviour for empty sends only when senders used nil
	// chunks; normalize to empty slices where the flat version would have
	// delivered a non-nil empty chunk is unnecessary for callers.
	return recv
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	panic("collective: rank not on its own node")
}

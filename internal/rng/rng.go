// Package rng provides deterministic pseudo-random number generation for the
// ExFlow simulator.
//
// Every stochastic component in the repository (synthetic routing kernels,
// token sampling, workload generation, simulated annealing) draws from this
// package rather than math/rand so that experiments are reproducible
// bit-for-bit across runs and machines, and so that independent streams can
// be derived for each token/layer without contention.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output. It is
// used both as a standalone mixer (per-token seeding) and to initialize
// xoshiro256** state from a single seed.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 deterministically mixes an arbitrary set of 64-bit values into a
// single well-distributed 64-bit value. It is the repository-wide way to
// derive independent seeds, e.g. Mix64(seed, tokenID, layer).
func Mix64(vs ...uint64) uint64 {
	state := uint64(0x243f6a8885a308d3) // pi digits; arbitrary non-zero
	for _, v := range vs {
		state ^= v
		_ = splitMix64(&state)
	}
	return splitMix64(&state)
}

// RNG is a xoshiro256** generator. The zero value is not valid; use New.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from a single 64-bit seed via SplitMix64,
// following the reference initialization recommended by the xoshiro authors.
func New(seed uint64) *RNG {
	r := &RNG{}
	state := seed
	r.s0 = splitMix64(&state)
	r.s1 = splitMix64(&state)
	r.s2 = splitMix64(&state)
	r.s3 = splitMix64(&state)
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be faster, but the
	// simple modulo of a 64-bit value has negligible bias for the n used here
	// (n is at most a few thousand) and is easier to audit.
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the integers in s in place.
func (r *RNG) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform. It intentionally trades a little speed for having no internal
// cached state, keeping RNG copies independent.
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 > 0 {
			u2 := r.Float64()
			return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		}
	}
}

// Exponential returns an Exp(1) variate.
func (r *RNG) Exponential() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Categorical samples an index from the unnormalized non-negative weights.
// It panics if the weights are empty or sum to zero.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative categorical weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("rng: categorical with empty or zero-sum weights")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1 // floating-point slack
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia-Tsang method.
// shape must be positive.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost to shape+1 and scale back (Marsaglia-Tsang section 6).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet samples a probability vector from a symmetric Dirichlet
// distribution with concentration alpha over n categories.
func (r *RNG) Dirichlet(n int, alpha float64) []float64 {
	p := make([]float64, n)
	total := 0.0
	for i := range p {
		p[i] = r.Gamma(alpha)
		total += p[i]
	}
	if total == 0 {
		// Degenerate draw (possible only for pathologically tiny alpha);
		// fall back to uniform rather than returning NaNs.
		for i := range p {
			p[i] = 1 / float64(n)
		}
		return p
	}
	for i := range p {
		p[i] /= total
	}
	return p
}

// DirichletWeighted samples from Dirichlet(alpha * base), i.e. a Dirichlet
// whose mean is the (normalized) base distribution and whose concentration
// around the mean grows with alpha.
func (r *RNG) DirichletWeighted(base []float64, alpha float64) []float64 {
	p := make([]float64, len(base))
	total := 0.0
	for i, b := range base {
		a := alpha * b
		if a <= 0 {
			a = 1e-9
		}
		p[i] = r.Gamma(a)
		total += p[i]
	}
	if total == 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
		return p
	}
	for i := range p {
		p[i] /= total
	}
	return p
}

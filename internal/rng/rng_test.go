package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestMix64Deterministic(t *testing.T) {
	if Mix64(1, 2, 3) != Mix64(1, 2, 3) {
		t.Fatal("Mix64 not deterministic")
	}
	if Mix64(1, 2, 3) == Mix64(1, 2, 4) {
		t.Fatal("Mix64 collision on trivially different inputs")
	}
	if Mix64(1, 2) == Mix64(2, 1) {
		t.Fatal("Mix64 should be order-sensitive")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 17 {
		t.Fatalf("Intn(17) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(5)
	s := []int{1, 2, 2, 3, 9, 9, 9}
	counts := map[int]int{}
	for _, v := range s {
		counts[v]++
	}
	r.Shuffle(s)
	for _, v := range s {
		counts[v]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("shuffle changed multiplicity of %d by %d", k, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	r := New(17)
	weights := []float64{1, 2, 3, 4}
	counts := make([]float64, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := counts[i] / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d: got frequency %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalSingleton(t *testing.T) {
	r := New(19)
	for i := 0; i < 10; i++ {
		if r.Categorical([]float64{5}) != 0 {
			t.Fatal("singleton categorical must return 0")
		}
	}
}

func TestCategoricalZeroWeightNeverChosen(t *testing.T) {
	r := New(23)
	weights := []float64{0, 1, 0, 1}
	for i := 0; i < 10000; i++ {
		c := r.Categorical(weights)
		if c == 0 || c == 2 {
			t.Fatalf("chose zero-weight category %d", c)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {-1, 2}}
	for _, ws := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for weights %v", ws)
				}
			}()
			New(1).Categorical(ws)
		}()
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		p := New(seed).Dirichlet(8, 0.5)
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletConcentration(t *testing.T) {
	// High alpha should concentrate near uniform; low alpha should be spiky.
	high := New(29).Dirichlet(16, 100)
	low := New(29).Dirichlet(16, 0.05)
	maxHigh, maxLow := 0.0, 0.0
	for i := range high {
		maxHigh = math.Max(maxHigh, high[i])
		maxLow = math.Max(maxLow, low[i])
	}
	if maxHigh > 0.15 {
		t.Fatalf("high-concentration Dirichlet too spiky: max=%v", maxHigh)
	}
	if maxLow < 0.5 {
		t.Fatalf("low-concentration Dirichlet not spiky enough: max=%v", maxLow)
	}
}

func TestDirichletWeightedMean(t *testing.T) {
	base := []float64{0.7, 0.2, 0.1}
	const n = 5000
	sums := make([]float64, 3)
	r := New(31)
	for i := 0; i < n; i++ {
		p := r.DirichletWeighted(base, 50)
		for j, v := range p {
			sums[j] += v
		}
	}
	for j, b := range base {
		got := sums[j] / n
		if math.Abs(got-b) > 0.02 {
			t.Fatalf("component %d mean %v, want ~%v", j, got, b)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(37)
	for _, shape := range []float64{0.5, 1, 2, 5} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Fatalf("Gamma(%v) mean %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(41)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exponential mean %v, want ~1", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkCategorical32(b *testing.B) {
	r := New(1)
	w := make([]float64, 32)
	for i := range w {
		w[i] = float64(i + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Categorical(w)
	}
}

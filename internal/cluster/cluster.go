// Package cluster implements the simulated distributed runtime the ExFlow
// engine executes on: every simulated GPU ("rank") is a goroutine, ranks
// exchange real data over per-pair channels, and each rank carries a
// deterministic simulated clock advanced by an alpha-beta network cost model
// (from package topo) and by modeled compute costs.
//
// The design follows the LogP tradition: a send charges the sender the full
// transfer time, the message is stamped with the sender's clock at
// completion, and a receive completes at max(receiver clock, message stamp).
// Synchronizing operations (Barrier, and the collectives built in package
// collective) therefore propagate the critical path exactly the way a real
// bulk-synchronous MoE inference step does.
package cluster

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/topo"
)

// message is a stamped payload traveling between ranks.
type message struct {
	data    any
	arrival float64 // sender clock when the transfer completes
	poison  bool    // set when a peer rank panicked; Recv re-panics
}

// mailboxDepth bounds the per-(src,dst) channel. Collectives never have more
// than a handful of outstanding messages per pair; the generous depth means
// sends never block and the simulation cannot deadlock on buffer space.
const mailboxDepth = 4096

// Cluster owns the topology, the mailboxes, and the shared barrier.
type Cluster struct {
	Topo  *topo.Topology
	n     int
	boxes [][]chan message // boxes[src][dst]
	bar   *timeBarrier
}

// New creates a cluster with one rank per GPU in the topology.
func New(t *topo.Topology) *Cluster {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	n := t.TotalGPUs()
	boxes := make([][]chan message, n)
	for s := range boxes {
		boxes[s] = make([]chan message, n)
		for d := range boxes[s] {
			boxes[s][d] = make(chan message, mailboxDepth)
		}
	}
	return &Cluster{Topo: t, n: n, boxes: boxes, bar: newTimeBarrier(n)}
}

// Size returns the number of ranks.
func (c *Cluster) Size() int { return c.n }

// Rank is the per-goroutine handle a rank uses to communicate and to account
// simulated time. It is not safe for concurrent use by multiple goroutines.
type Rank struct {
	ID      int
	Cluster *Cluster

	clock      float64
	categories map[string]float64
}

// Now returns the rank's current simulated time in seconds.
func (r *Rank) Now() float64 { return r.clock }

// Advance moves the simulated clock forward by dt seconds, attributing the
// interval to the named category (e.g. "attention", "alltoall").
func (r *Rank) Advance(category string, dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("cluster: negative time advance %v", dt))
	}
	r.clock += dt
	if r.categories == nil {
		r.categories = make(map[string]float64)
	}
	r.categories[category] += dt
}

// advanceTo moves the clock to at least t without attributing the waiting
// time to any category (idle waiting).
func (r *Rank) advanceTo(t float64) {
	if t > r.clock {
		r.clock = t
	}
}

// Breakdown returns a copy of the per-category time totals.
func (r *Rank) Breakdown() map[string]float64 {
	out := make(map[string]float64, len(r.categories))
	for k, v := range r.categories {
		out[k] = v
	}
	return out
}

// Send transfers data to rank dst, charging the sender the modeled transfer
// time for bytes payload bytes under the given accounting category. The data
// value itself is passed by reference; callers must not mutate shared
// payloads after sending.
func (r *Rank) Send(dst int, data any, bytes int, category string) {
	if dst == r.ID {
		panic("cluster: self-send; use local state instead")
	}
	cost := r.Cluster.Topo.TransferTime(r.ID, dst, bytes)
	r.Advance(category, cost)
	r.Cluster.boxes[r.ID][dst] <- message{data: data, arrival: r.clock}
}

// Recv blocks until a message from src arrives and returns its payload,
// advancing the receiver's clock to the message arrival time.
func (r *Rank) Recv(src int) any {
	if src == r.ID {
		panic("cluster: self-recv")
	}
	m := <-r.Cluster.boxes[src][r.ID]
	if m.poison {
		panic("cluster: recv aborted by a peer rank panic")
	}
	r.advanceTo(m.arrival)
	return m.data
}

// LocalCopy charges the rank for moving bytes within its own memory.
func (r *Rank) LocalCopy(bytes int, category string) {
	r.Advance(category, r.Cluster.Topo.TransferTime(r.ID, r.ID, bytes))
}

// Barrier blocks until all ranks reach it; every rank leaves with its clock
// advanced to the maximum clock over all participants (the defining property
// of a synchronizing collective).
func (r *Rank) Barrier() {
	t := r.Cluster.bar.wait(r.clock)
	r.advanceTo(t)
}

// Node returns the node index hosting this rank.
func (r *Rank) Node() int { return r.Cluster.Topo.NodeOf(r.ID) }

// Run launches fn on every rank concurrently and returns the per-rank
// handles (with their final clocks and breakdowns) once all have finished.
// Any rank panic is re-raised on the caller after all goroutines stop.
func (c *Cluster) Run(fn func(r *Rank)) []*Rank {
	ranks := make([]*Rank, c.n)
	panics := make([]any, c.n)
	var wg sync.WaitGroup
	for i := 0; i < c.n; i++ {
		ranks[i] = &Rank{ID: i, Cluster: c}
		wg.Add(1)
		go func(r *Rank, slot *any) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					*slot = p
					// Release peers stuck in the barrier or in Recv so Run
					// can return and re-raise the original panic.
					c.poison()
				}
			}()
			fn(r)
		}(ranks[i], &panics[i])
	}
	wg.Wait()
	// Prefer reporting a root-cause panic over the poison-abort panics it
	// triggered on peer ranks.
	abortIdx := -1
	for i, p := range panics {
		if p == nil {
			continue
		}
		if s, ok := p.(string); ok && strings.Contains(s, "aborted by a peer rank panic") {
			if abortIdx == -1 {
				abortIdx = i
			}
			continue
		}
		panic(fmt.Sprintf("cluster: rank %d panicked: %v", i, p))
	}
	if abortIdx != -1 {
		panic(fmt.Sprintf("cluster: rank %d panicked: %v", abortIdx, panics[abortIdx]))
	}
	return ranks
}

// poison tears the cluster down after a rank panic: it releases barrier
// waiters and floods every mailbox with poison sentinels so blocked Recv
// calls wake up and re-panic. Sends are non-blocking — a full mailbox means
// the receiver has plenty to read before it could block again on this pair.
func (c *Cluster) poison() {
	c.bar.poison()
	for src := range c.boxes {
		for dst := range c.boxes[src] {
			select {
			case c.boxes[src][dst] <- message{poison: true}:
			default:
			}
		}
	}
}

// MaxClock returns the largest simulated clock across ranks — the modeled
// wall-clock time of the whole run.
func MaxClock(ranks []*Rank) float64 {
	m := 0.0
	for _, r := range ranks {
		if r.clock > m {
			m = r.clock
		}
	}
	return m
}

// MergedBreakdown sums each category across ranks and divides by the rank
// count, yielding the average per-rank time spent per category.
func MergedBreakdown(ranks []*Rank) map[string]float64 {
	out := map[string]float64{}
	for _, r := range ranks {
		for k, v := range r.categories {
			out[k] += v
		}
	}
	for k := range out {
		out[k] /= float64(len(ranks))
	}
	return out
}

// timeBarrier is a reusable barrier that additionally computes the max of
// the participants' clocks per generation.
type timeBarrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	arrived  int
	gen      int
	maxTime  float64
	result   float64
	poisoned bool
}

func newTimeBarrier(n int) *timeBarrier {
	b := &timeBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until n participants have called it, then releases everyone
// with the maximum submitted time. It is reusable across generations.
func (b *timeBarrier) wait(t float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic("cluster: barrier poisoned by a peer rank panic")
	}
	gen := b.gen
	if t > b.maxTime {
		b.maxTime = t
	}
	b.arrived++
	if b.arrived == b.n {
		b.result = b.maxTime
		b.arrived = 0
		b.maxTime = 0
		b.gen++
		b.cond.Broadcast()
		return b.result
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned {
		panic("cluster: barrier poisoned by a peer rank panic")
	}
	return b.result
}

// poison permanently releases all current and future waiters with a panic,
// used to tear down the barrier when some rank has already panicked.
func (b *timeBarrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

package cluster

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/topo"
)

func smallTopo() *topo.Topology { return topo.Wilkes3(2) } // 8 ranks

func TestRunExecutesAllRanks(t *testing.T) {
	c := New(smallTopo())
	var count int64
	c.Run(func(r *Rank) {
		atomic.AddInt64(&count, 1)
	})
	if count != int64(c.Size()) {
		t.Fatalf("ran %d ranks, want %d", count, c.Size())
	}
}

func TestSendRecvDelivers(t *testing.T) {
	c := New(smallTopo())
	c.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, "hello", 100, "test")
		}
		if r.ID == 1 {
			got := r.Recv(0).(string)
			if got != "hello" {
				t.Errorf("got %q", got)
			}
		}
	})
}

func TestSendChargesSenderByTier(t *testing.T) {
	c := New(smallTopo())
	ranks := c.Run(func(r *Rank) {
		const bytes = 1 << 20
		switch r.ID {
		case 0:
			r.Send(1, 1, bytes, "intra") // same node
			r.Send(4, 1, bytes, "inter") // other node
		case 1:
			r.Recv(0)
		case 4:
			r.Recv(0)
		}
	})
	bd := ranks[0].Breakdown()
	if bd["intra"] <= 0 || bd["inter"] <= 0 {
		t.Fatalf("missing charges: %v", bd)
	}
	if bd["inter"] <= bd["intra"] {
		t.Fatalf("inter-node send (%v) should cost more than intra-node (%v)", bd["inter"], bd["intra"])
	}
}

func TestRecvAdvancesToArrival(t *testing.T) {
	c := New(smallTopo())
	ranks := c.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Advance("compute", 1.0) // sender is busy for 1s first
			r.Send(1, 1, 1000, "comm")
		}
		if r.ID == 1 {
			r.Recv(0) // receiver idle; clock must jump past 1s
		}
	})
	if ranks[1].Now() < 1.0 {
		t.Fatalf("receiver clock %v did not advance to message arrival", ranks[1].Now())
	}
	// Idle waiting is not attributed to any category.
	if got := ranks[1].Breakdown()["comm"]; got != 0 {
		t.Fatalf("receiver should not be charged comm time, got %v", got)
	}
}

func TestAdvanceAccumulatesCategories(t *testing.T) {
	c := New(smallTopo())
	ranks := c.Run(func(r *Rank) {
		r.Advance("a", 1)
		r.Advance("b", 2)
		r.Advance("a", 3)
	})
	bd := ranks[0].Breakdown()
	if bd["a"] != 4 || bd["b"] != 2 {
		t.Fatalf("breakdown wrong: %v", bd)
	}
	if ranks[0].Now() != 6 {
		t.Fatalf("clock %v, want 6", ranks[0].Now())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic to propagate from Run")
		}
		if !strings.Contains(p.(string), "negative") {
			t.Fatalf("unexpected panic: %v", p)
		}
	}()
	c := New(topo.SingleNode(1))
	c.Run(func(r *Rank) {
		r.Advance("x", -1)
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	c := New(smallTopo())
	ranks := c.Run(func(r *Rank) {
		r.Advance("compute", float64(r.ID)) // rank i busy for i seconds
		r.Barrier()
	})
	want := float64(c.Size() - 1)
	for _, r := range ranks {
		if math.Abs(r.Now()-want) > 1e-12 {
			t.Fatalf("rank %d clock %v after barrier, want %v", r.ID, r.Now(), want)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	c := New(smallTopo())
	ranks := c.Run(func(r *Rank) {
		for i := 0; i < 5; i++ {
			r.Advance("w", 1)
			r.Barrier()
		}
	})
	for _, r := range ranks {
		if r.Now() != 5 {
			t.Fatalf("rank %d clock %v, want 5", r.ID, r.Now())
		}
	}
}

func TestMaxClockAndMergedBreakdown(t *testing.T) {
	c := New(smallTopo())
	ranks := c.Run(func(r *Rank) {
		r.Advance("op", float64(r.ID+1))
	})
	if MaxClock(ranks) != float64(c.Size()) {
		t.Fatalf("MaxClock = %v", MaxClock(ranks))
	}
	avg := MergedBreakdown(ranks)["op"]
	want := float64(c.Size()+1) / 2
	if math.Abs(avg-want) > 1e-12 {
		t.Fatalf("merged avg %v, want %v", avg, want)
	}
}

func TestSelfSendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := New(topo.SingleNode(1))
	c.Run(func(r *Rank) { r.Send(0, 1, 1, "x") })
}

func TestLocalCopyCheaperThanNetwork(t *testing.T) {
	c := New(smallTopo())
	ranks := c.Run(func(r *Rank) {
		if r.ID == 0 {
			r.LocalCopy(1<<20, "local")
			r.Send(1, 1, 1<<20, "net")
		}
		if r.ID == 1 {
			r.Recv(0)
		}
	})
	bd := ranks[0].Breakdown()
	if bd["local"] >= bd["net"] {
		t.Fatalf("local copy (%v) should be cheaper than network (%v)", bd["local"], bd["net"])
	}
}

func TestRankPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected rank panic to propagate")
		}
	}()
	c := New(smallTopo())
	c.Run(func(r *Rank) {
		if r.ID == 3 {
			panic("boom")
		}
		r.Barrier() // would deadlock without barrier poisoning
	})
}

func TestManyMessagesOrdered(t *testing.T) {
	c := New(topo.SingleNode(2))
	c.Run(func(r *Rank) {
		const n = 500
		if r.ID == 0 {
			for i := 0; i < n; i++ {
				r.Send(1, i, 8, "x")
			}
		} else {
			for i := 0; i < n; i++ {
				if got := r.Recv(0).(int); got != i {
					t.Errorf("message %d arrived as %d", i, got)
					return
				}
			}
		}
	})
}

func TestDeterministicClocks(t *testing.T) {
	run := func() []float64 {
		c := New(smallTopo())
		ranks := c.Run(func(r *Rank) {
			next := (r.ID + 1) % c.Size()
			prev := (r.ID - 1 + c.Size()) % c.Size()
			for i := 0; i < 10; i++ {
				r.Send(next, r.ID, 1000, "ring")
				r.Recv(prev)
			}
			r.Barrier()
		})
		out := make([]float64, len(ranks))
		for i, r := range ranks {
			out[i] = r.Now()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic clock at rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}

package cluster

import (
	"strings"
	"testing"

	"repro/internal/topo"
)

// These tests pin the failure-isolation behaviour: a panic on one rank must
// tear the whole run down promptly even when peers are blocked in
// point-to-point receives (not just in the barrier), and the reported panic
// must be the root cause, not the poison-abort it triggered.

func TestPanicUnblocksPeerStuckInRecv(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic to propagate")
		}
		if !strings.Contains(p.(string), "root-cause-boom") {
			t.Fatalf("expected root cause in panic, got: %v", p)
		}
	}()
	c := New(topo.SingleNode(2))
	c.Run(func(r *Rank) {
		if r.ID == 0 {
			panic("root-cause-boom")
		}
		// Rank 1 waits for a message that will never come; without mailbox
		// poisoning this deadlocks Run forever.
		r.Recv(0)
	})
}

func TestPanicUnblocksManyPeers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := New(topo.Wilkes3(2))
	c.Run(func(r *Rank) {
		switch {
		case r.ID == 3:
			panic("boom")
		case r.ID%2 == 0:
			r.Recv((r.ID + 1) % c.Size())
		default:
			r.Barrier()
		}
	})
}

func TestHealthyRunUnaffectedByPoisonMachinery(t *testing.T) {
	c := New(topo.SingleNode(4))
	ranks := c.Run(func(r *Rank) {
		next := (r.ID + 1) % 4
		prev := (r.ID + 3) % 4
		for i := 0; i < 20; i++ {
			r.Send(next, i, 64, "ring")
			if got := r.Recv(prev).(int); got != i {
				t.Errorf("got %d want %d", got, i)
				return
			}
		}
		r.Barrier()
	})
	if len(ranks) != 4 {
		t.Fatal("run did not complete")
	}
}

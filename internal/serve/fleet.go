package serve

import (
	"container/heap"

	"repro/internal/expertmem"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/stats"
)

// fleetState is the server's fleet-tier bookkeeping (nil when Options.Fleet
// is nil): the normalized spec, the shared host cache and autoscaler, the
// admission pricing inputs, and the run counters behind fleet.Report. The
// serve event loop drives everything; the fleet package holds only policy.
type fleetState struct {
	spec   fleet.Spec
	cache  *fleet.HostCache
	scaler *fleet.Autoscaler
	met    fleetMetrics

	// warmup is the simulated seconds a scale-up spends copying parameters
	// and filling its HBM working set before serving.
	warmup float64
	// stallEst is the predicted expert-stall seconds per full-batch-token
	// under the current placement (refreshed on the drift-check cadence);
	// fn/fc are the last iteration's dispatch fractions. Together they price
	// the fleet's decode capacity for admission and scaling.
	//
	// The raw oracle prices each token's expected miss independently, but an
	// iteration fetches each missing expert once for the whole batch, so
	// stall is really a per-iteration quantity: raw*MaxBatch runs a roughly
	// constant factor hot. calib is that factor, learned as an EWMA of
	// realized-per-iteration / predicted-per-iteration over the run: the
	// oracle stays the predictive signal (it jumps the instant the routing
	// mix shifts, before any stall is charged), the charged stall sets its
	// scale. Until the first calibration sample lands, stallEst stays zero —
	// optimistic capacity never triggers a spurious scale-up, and the first
	// drift check fixes it.
	stallEst  float64
	calib     float64
	haveCalib bool
	fn, fc    float64

	lastReconcile float64
	warming       int

	arrivals, admitted, shed, deferred int
	scaleUps, scaleDowns               int
	maxLive                            int

	repT, repY []float64

	// retiredStats accumulates memory-manager counters of replicas whose
	// manager was replaced on re-activation, so Report.ExpertMem still sums
	// the whole run.
	retiredStats expertmem.Stats
}

func newFleetState(o *Options) *fleetState {
	spec := o.Fleet.WithDefaults()
	return &fleetState{
		spec:   spec,
		scaler: fleet.NewAutoscaler(spec),
		met:    newFleetMetrics(o.Metrics),
	}
}

// newMem builds one replica's tiered memory: fresh residency tables warmed
// on the given placement's copy sets (extras included), wired to the shared
// host tier when one exists (before Warm, so the preload registers its
// master references).
func (s *server) newMem(r int, pl *placement.Placement) *expertmem.Manager {
	mem := expertmem.New(s.memCfg)
	if s.fl != nil && s.fl.cache != nil {
		mem.SetHostTier(s.fl.cache, r)
	}
	s.applyChaosHooks(mem)
	mem.WarmReplicated(pl.Assign, pl.Extra)
	mem.Instrument(s.opts.Trace, s.opts.Metrics, r)
	return mem
}

// liveCounts returns the serving replica count (live, not draining) and the
// committed count the autoscaler reconciles against (serving + warming;
// draining replicas are already leaving and do not count).
func (s *server) liveCounts() (live, committed int) {
	for _, r := range s.replicas {
		if r.warming {
			committed++
		}
		if r.live && !r.draining {
			live++
			committed++
		}
	}
	return live, committed
}

// sampleFleet records the committed replica count on the report series, the
// gauge, and the trace counter track.
func (s *server) sampleFleet(now float64) {
	fl := s.fl
	live, committed := s.liveCounts()
	if live > fl.maxLive {
		fl.maxLive = live
	}
	if n := len(fl.repT); n > 0 && fl.repT[n-1] == now {
		fl.repY[n-1] = float64(committed)
	} else {
		fl.repT = append(fl.repT, now)
		fl.repY = append(fl.repY, float64(committed))
	}
	fl.met.committed.Set(float64(committed))
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvFleetSize, Rep: -1, GPU: -1, Layer: -1, Expert: -1,
			T: now, Value: float64(committed)})
	}
}

// refreshFleetPricing rebuilds the pricing inputs on the drift-check
// cadence: the selected residency model's predicted stall per token over the
// live window under the current placement — the same oracle the solver's
// memory objective prices re-solves with, here pricing admission and
// capacity instead — rescaled by the learned predicted-to-realized
// calibration factor (batch amortization the per-token oracle cannot see).
func (s *server) refreshFleetPricing(now float64) {
	fl := s.fl
	if fl.spec.Admission != fleet.AdmissionPaging && !fl.spec.Autoscaling() {
		return
	}
	fl.stallEst = 0
	if s.mems == nil || !s.mems[0].Oversubscribed() {
		return
	}
	mo := residencyObjective(&s.opts, s.opts.Placement.Layers, s.opts.Placement.Experts, s.window.Snapshot())
	if mo == nil {
		return
	}
	raw := mo.StallPerToken(s.replicas[0].pl)
	if raw > 0 {
		// Realized stall per iteration over the recent window: the fetch
		// bill depends on the distinct experts an iteration touches, not on
		// how many tokens shared them, so per-iteration (normalized to full
		// batch) is the stable realized quantity — per-token would read
		// inflated exactly when the fleet idles on small batches.
		if sum, n := s.iterStallWindow(now - 4*s.opts.CheckInterval); n > 0 {
			r := sum / float64(n) / (raw * float64(s.opts.MaxBatch))
			if !fl.haveCalib {
				fl.calib, fl.haveCalib = r, true
			} else {
				fl.calib += 0.25 * (r - fl.calib)
			}
		}
	}
	if fl.haveCalib {
		fl.stallEst = fl.calib * raw
	}
	fl.met.stallEst.Set(fl.stallEst)
}

// iterStallWindow sums the charged expert-stall seconds and counts the
// iterations since t0.
func (s *server) iterStallWindow(t0 float64) (sum float64, n int) {
	for i := len(s.memSamples) - 1; i >= 0 && s.memSamples[i].t >= t0; i-- {
		sum += s.memSamples[i].stall
		n++
	}
	return sum, n
}

// fleetIterSeconds is the predicted full-batch iteration time at the last
// observed dispatch fractions, inflated by the calibrated paging stall.
func (s *server) fleetIterSeconds() float64 {
	b := s.opts.MaxBatch
	return s.opts.Cost.Time(b, s.fl.fn, s.fl.fc) + float64(b)*s.fl.stallEst
}

// fleetTokensPerSec estimates decode capacity for live replicas at full
// batch: the locality model's iteration time at the last observed dispatch
// fractions, inflated by the predicted paging stall per token.
func (s *server) fleetTokensPerSec(live int) float64 {
	b := s.opts.MaxBatch
	iter := s.fleetIterSeconds()
	if iter <= 0 {
		return 0
	}
	return float64(live) * float64(b) / iter
}

// fleetAdmit runs admission control on one offered request; false means the
// request was deferred (it will re-arrive) or shed (it is gone) and must not
// be enqueued.
func (s *server) fleetAdmit(now float64, rq *request) bool {
	fl := s.fl
	if rq.defers == 0 {
		fl.arrivals++
		fl.scaler.ObserveArrival()
	}
	s.maybeReconcile(now)
	if fl.spec.Admission == "" {
		fl.admitted++
		return true
	}
	live, _ := s.liveCounts()
	queued, backlog := 0, 0
	for _, r := range s.replicas {
		if !r.live {
			continue
		}
		queued += r.load()
		backlog += len(r.queue) * s.opts.DecodeTokens
		for _, a := range r.active {
			backlog += a.remaining
		}
	}
	in := fleet.AdmissionInput{
		Queued: queued, Live: live,
		BacklogTokens: backlog,
		TokensPerSec:  s.fleetTokensPerSec(live),
		DecodeSeconds: float64(s.opts.DecodeTokens) * s.fleetIterSeconds(),
		Defers:        rq.defers,
	}
	// The priced wait the paging policy weighs against the SLO (zero for the
	// queue policy, whose threshold is a depth) — narrated on every defer and
	// shed so the decision log shows the arithmetic, not just the verdict.
	waitEst := 0.0
	if in.TokensPerSec > 0 {
		waitEst = float64(in.BacklogTokens)/in.TokensPerSec + in.DecodeSeconds
	}
	switch fl.spec.Admit(in) {
	case fleet.Defer:
		rq.defers++
		fl.deferred++
		fl.met.defers.Inc()
		if s.tr != nil {
			s.tr.Emit(obs.Event{Kind: obs.EvDefer, Rep: -1, GPU: -1, Layer: -1, Expert: -1,
				T: now, Aux: int64(rq.seq)})
		}
		s.opts.Decisions.Logf(now, "admission-defer req=%d queued=%d backlog=%d-tokens wait-est=%.3fs slo=%.3fs stall-est=%.6fs/token defers=%d retry=%.2fs",
			rq.seq, queued, backlog, waitEst, fl.spec.SLOSeconds, fl.stallEst, rq.defers, fl.spec.DeferSeconds)
		heap.Push(&s.events, event{t: now + fl.spec.DeferSeconds, kind: evArrival, seq: rq.seq})
		return false
	case fleet.Shed:
		rq.shed = true
		fl.shed++
		fl.met.sheds.Inc()
		if s.tr != nil {
			s.tr.Emit(obs.Event{Kind: obs.EvShed, Rep: -1, GPU: -1, Layer: -1, Expert: -1,
				T: now, Aux: int64(rq.seq)})
		}
		s.opts.Decisions.Logf(now, "admission-shed req=%d queued=%d backlog=%d-tokens wait-est=%.3fs slo=%.3fs stall-est=%.6fs/token defers=%d",
			rq.seq, queued, backlog, waitEst, fl.spec.SLOSeconds, fl.stallEst, rq.defers)
		return false
	}
	fl.admitted++
	return true
}

// maybeReconcile runs the autoscaler's reconciliation step on its own
// cadence, piggybacked on arrivals and iteration ends — no self-perpetuating
// clock events, so an idle run drains exactly as before.
func (s *server) maybeReconcile(now float64) {
	fl := s.fl
	if now-fl.lastReconcile < fl.spec.ReconcileInterval {
		return
	}
	fl.lastReconcile = now
	s.sampleFleet(now)
	if !fl.spec.Autoscaling() {
		return
	}
	if s.pending != nil {
		// Never resize the replica set under a rolling migration — the baton
		// hand-off assumes a stable live set. Keep the forecast warm so the
		// next reconcile acts on fresh demand.
		fl.scaler.Hold(now)
		return
	}
	_, committed := s.liveCounts()
	dec, ok := fl.scaler.Reconcile(now, committed, s.fleetTokensPerSec(1), s.opts.DecodeTokens)
	if !ok {
		return
	}
	if dec.Delta > 0 {
		for i := 0; i < dec.Delta; i++ {
			s.scaleUp(now, dec)
		}
	} else {
		s.scaleDown(now, dec)
	}
}

// scaleUp marks a free replica slot warming and schedules its activation
// after the warm-up window (parameter copy + HBM cache fill over the host
// link), charged to the simulated clock like every other transfer.
func (s *server) scaleUp(now float64, dec fleet.Decision) {
	var slot *replica
	for _, r := range s.replicas {
		// Crashed slots with a scheduled recovery are reserved — the chaos
		// layer will bring them back itself.
		if !r.live && !r.warming && !r.crashed {
			slot = r
			break
		}
	}
	if slot == nil {
		return // MaxReplicas sized the slice; every slot live means at max
	}
	slot.warming = true
	s.fl.warming++
	s.fl.scaleUps++
	s.fl.met.scaleUps.Inc()
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvScaleUp, Rep: -1, GPU: -1, Layer: -1, Expert: -1,
			T: now, Dur: s.fl.warmup, Aux: int64(slot.id)})
	}
	s.opts.Decisions.Logf(now, "scale-up replica=%d rate=%.2freq/s desired=%d warmup=%.3fs",
		slot.id, dec.Rate, dec.Desired, s.fl.warmup)
	s.seq++
	heap.Push(&s.events, event{t: now + s.fl.warmup, kind: evScaleUp, rep: slot.id, seq: s.seq, gen: slot.gen})
	s.sampleFleet(now)
}

// onScaleUp activates a warmed replica. It adopts the fleet's current
// placement lineage — the migrated placement when the rollout already passed
// its id, the pre-migration one otherwise (the rolling baton will reach it
// like any live replica) — and a fresh memory manager warmed on it.
func (s *server) onScaleUp(now float64, r *replica) {
	r.warming = false
	r.live = true
	s.fl.warming--
	pl := s.curPl
	if s.pending != nil && r.id < s.pending.next {
		pl = s.pending.newPl
	}
	r.pl = pl.Clone()
	if s.mems != nil {
		if old := s.mems[r.id]; old != nil {
			// A re-activated slot gets a cold manager (a new replica, not a
			// resurrected one); keep the old counters for the run totals.
			s.fl.retiredStats.Add(old.Stats())
		}
		s.mems[r.id] = s.newMem(r.id, r.pl)
	}
	s.opts.Decisions.Logf(now, "scale-up-complete replica=%d", r.id)
	s.sampleFleet(now)
	s.start(now, r)
}

// scaleDown drains one replica: it stops receiving arrivals and retires once
// its queue and batch are empty. Replica 0 is the anchor — drift scoring and
// churn pricing read it — and is never drained.
func (s *server) scaleDown(now float64, dec fleet.Decision) {
	var victim *replica
	for _, r := range s.replicas[1:] {
		if !r.live || r.draining {
			continue
		}
		if victim == nil || r.load() < victim.load() ||
			(r.load() == victim.load() && r.id > victim.id) {
			victim = r
		}
	}
	if victim == nil {
		return
	}
	victim.draining = true
	s.fl.scaleDowns++
	s.fl.met.scaleDowns.Inc()
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvScaleDown, Rep: -1, GPU: -1, Layer: -1, Expert: -1,
			T: now, Aux: int64(victim.id)})
	}
	// Graceful drain: queued requests never started decoding here — hand them
	// to the survivors immediately instead of making them wait out the drain
	// behind a retiring replica. In-flight actives finish in place.
	moved := victim.queue
	victim.queue = nil
	s.opts.Decisions.Logf(now, "scale-down replica=%d rate=%.2freq/s desired=%d streak=%d redispatched=%d draining-active=%d",
		victim.id, dec.Rate, dec.Desired, dec.Streak, len(moved), len(victim.active))
	if victim.load() == 0 && !victim.running && !victim.stalled {
		s.retireReplica(now, victim)
	} else {
		s.sampleFleet(now)
	}
	s.redispatch(now, moved)
}

// redispatch hands orphaned requests — a draining or crashed replica's — to
// the least-loaded serving replicas, then kicks every idle recipient.
func (s *server) redispatch(now float64, reqs []*request) {
	if len(reqs) == 0 {
		return
	}
	for _, rq := range reqs {
		var best *replica
		for _, t := range s.replicas {
			if !t.live || t.draining {
				continue
			}
			if best == nil || t.load() < best.load() {
				best = t
			}
		}
		// best is never nil: replica 0 anchors the fleet — it is never
		// drained, and chaos.Validate refuses to crash it.
		rq.replica = best.id
		best.queue = append(best.queue, rq)
	}
	for _, t := range s.replicas {
		if t.live && !t.draining {
			s.start(now, t)
		}
	}
}

// retireReplica removes a drained replica from the serving set and drops its
// shared-cache references so they stop pinning masters.
func (s *server) retireReplica(now float64, r *replica) {
	r.draining = false
	r.live = false
	if s.fl.cache != nil {
		s.fl.cache.ReleaseReplica(r.id)
	}
	s.opts.Decisions.Logf(now, "scale-down-complete replica=%d", r.id)
	s.sampleFleet(now)
	if s.pending != nil && s.pending.next == r.id {
		// The retiring replica held the rollout baton; pass it on.
		s.advanceRollout(now)
	}
}

// fleetReport builds the report's fleet section.
func (s *server) fleetReport() *fleet.Report {
	fl := s.fl
	live, _ := s.liveCounts()
	rep := &fleet.Report{
		Arrivals: fl.arrivals, Admitted: fl.admitted, Shed: fl.shed, Deferred: fl.deferred,
		ScaleUps: fl.scaleUps, ScaleDowns: fl.scaleDowns,
		MaxLive: fl.maxLive, FinalLive: live,
		Replicas: &stats.Series{Name: "fleet-replicas", X: fl.repT, Y: fl.repY},
	}
	if fl.cache != nil {
		cs := fl.cache.Stats()
		rep.HostCache = &cs
	}
	return rep
}

package serve

import (
	"testing"

	"repro/internal/synth"
	"repro/internal/trace"
)

// driftKernel is the shared fixture: a routing kernel plus a pooled baseline
// estimated from a pile profiling trace, as the server builds at startup.
func driftKernel(t *testing.T, tilt float64) (*synth.Kernel, [][]float64) {
	t.Helper()
	k := synth.NewKernel(synth.KernelParams{
		Seed: 0xFEED, Layers: 12, Experts: 32, Strength: 0.85, DomainTilt: tilt,
	})
	pile := synth.Pile()
	tr := trace.Collect(synth.NewKernelRouter(k, pile, 1), k.Layers, trace.SequentialIDs(3000, pile.TokenID))
	return k, poolCounts(tr.AllTransitionCounts(), k.Experts)
}

func TestDetectorQuietInDistribution(t *testing.T) {
	k, base := driftKernel(t, 1)
	// Held-out pile tokens, disjoint from the baseline's ordinals.
	w := NewTraceWindow(k.Layers, k.Experts, 4096)
	fillFromDataset(w, k, synth.Pile(), 4096, 1<<22)
	det := NewDetector(JS, 0.008, 1, base)
	score, fired := det.Observe(w.Pooled())
	if fired {
		t.Fatalf("detector fired on in-distribution traffic (score %v)", score)
	}
	if score <= 0 {
		t.Fatal("sampling noise should give a small positive score")
	}
}

func TestDetectorFiresOnShiftedDataset(t *testing.T) {
	k, base := driftKernel(t, 1)
	w := NewTraceWindow(k.Layers, k.Experts, 4096)
	fillFromDataset(w, k, synth.Yelp(), 4096, 1<<22)
	det := NewDetector(JS, 0.008, 2, base)
	if _, fired := det.Observe(w.Pooled()); fired {
		t.Fatal("patience 2 must not fire on the first observation")
	}
	score, fired := det.Observe(w.Pooled())
	if !fired {
		t.Fatalf("detector should fire on shifted dataset (score %v)", score)
	}
	// Rebase to the live distribution: the same traffic is now in-baseline.
	det.Rebase(w.Pooled())
	if score2, fired2 := det.Observe(w.Pooled()); fired2 || score2 != 0 {
		t.Fatalf("after rebase the live window must score 0, got %v fired=%v", score2, fired2)
	}
}

func TestDetectorSeparationGrowsWithTilt(t *testing.T) {
	// The more domain-specialized the checkpoint, the louder mixture drift
	// should be relative to the in-distribution noise floor.
	scoreFor := func(tilt float64) (quiet, loud float64) {
		k, base := driftKernel(t, tilt)
		w := NewTraceWindow(k.Layers, k.Experts, 4096)
		fillFromDataset(w, k, synth.Pile(), 4096, 1<<22)
		quiet = Divergence(JS, base, w.Pooled())
		w2 := NewTraceWindow(k.Layers, k.Experts, 4096)
		fillFromDataset(w2, k, synth.Yelp(), 4096, 1<<22)
		loud = Divergence(JS, base, w2.Pooled())
		return quiet, loud
	}
	q1, l1 := scoreFor(1)
	q8, l8 := scoreFor(8)
	if l1 <= q1 || l8 <= q8 {
		t.Fatalf("shifted traffic must out-score held-out traffic: tilt1 %v<=%v tilt8 %v<=%v", l1, q1, l8, q8)
	}
	if l8/q8 <= l1/q1 {
		t.Fatalf("separation should grow with tilt: %v vs %v", l8/q8, l1/q1)
	}
}

func TestDivergenceProperties(t *testing.T) {
	a := [][]float64{{4, 0}, {1, 3}}
	b := [][]float64{{0, 4}, {1, 3}}
	if d := Divergence(JS, a, a); d != 0 {
		t.Fatalf("self-divergence %v", d)
	}
	if d := Divergence(JS, a, b); d <= 0 {
		t.Fatal("distinct distributions must diverge")
	}
	if d := Divergence(L1, a, b); d <= 0 || d > 2 {
		t.Fatalf("L1 out of range: %v", d)
	}
	// Empty live window: no evidence, no drift.
	if d := Divergence(JS, a, [][]float64{{0, 0}, {0, 0}}); d != 0 {
		t.Fatalf("empty window should score 0, got %v", d)
	}
}

package serve

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/synth"
)

// Serve-level fault-injection tests: the chaos layer's integration with the
// event loop (crash/recover, redispatch, quiet windows), the tiered memory
// layer (degraded links, retry exhaustion, shedding), and the report ledger.

func TestServeChaosEmptyScheduleBitIdentical(t *testing.T) {
	base, _ := testSystem(t)
	base.Phases = steadyProgram(base, 0.8, 4)
	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.Chaos = &chaos.Schedule{}
	got, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != off.Makespan || got.Requests != off.Requests ||
		got.Iterations != off.Iterations ||
		got.Overall.P50 != off.Overall.P50 || got.Overall.P95 != off.Overall.P95 {
		t.Fatalf("empty chaos schedule changed the run:\n  nil:   %+v\n  empty: %+v", off.Overall, got.Overall)
	}
	if got.Faults != nil {
		t.Fatal("fault ledger present for an empty schedule")
	}
}

func TestServeChaosCrashRecoversTail(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Phases = steadyProgram(opts, 0.7, 10)
	base, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	const crashAt, recoverAfter = 3.0, 1.0
	opts.Chaos = &chaos.Schedule{Faults: []chaos.Fault{chaos.Crash(crashAt, 1, recoverAfter)}}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	fr := rep.Faults
	if fr == nil || len(fr.Crashes) != 1 {
		t.Fatalf("fault ledger missing or wrong: %+v", fr)
	}
	c := fr.Crashes[0]
	if c.Replica != 1 || c.At != crashAt {
		t.Fatalf("crash outcome %+v, want replica 1 at %v", c, crashAt)
	}
	if fr.Recoveries != 1 || c.RecoveredAt < crashAt+recoverAfter {
		t.Fatalf("recovery missing or too early: %+v", fr)
	}
	if fr.DowntimeSeconds < recoverAfter {
		t.Fatalf("downtime %.3fs below the scheduled %vs outage", fr.DowntimeSeconds, recoverAfter)
	}
	if c.Redispatched == 0 || fr.Redispatched != c.Redispatched {
		t.Fatalf("crash at 70%% load redispatched nothing: %+v", fr)
	}
	// No request is lost to the crash: redispatch preserves every admitted
	// request end to end.
	if rep.Requests != base.Requests {
		t.Fatalf("crash lost requests: %d vs %d fault-free", rep.Requests, base.Requests)
	}
	// The outage is visible in the tail...
	during := rep.WindowStats(crashAt, c.RecoveredAt)
	pre := rep.WindowStats(0.5, crashAt)
	if during.Requests == 0 || pre.Requests == 0 {
		t.Fatal("comparison windows empty")
	}
	if during.P95 <= pre.P95 {
		t.Fatalf("outage invisible: during P95 %.3fs <= pre-crash %.3fs", during.P95, pre.P95)
	}
	// ...and the recovery pulls P95 back toward the pre-crash level within a
	// recovery window (the scenario matrix gates the 25%% bound at bench
	// scale; the small fixture gets a looser 50%%).
	post := rep.WindowStats(c.RecoveredAt+1, 10)
	if post.Requests == 0 {
		t.Fatal("post-recovery window empty")
	}
	if post.P95 > 1.5*pre.P95 {
		t.Fatalf("tail never recovered: post P95 %.3fs vs pre-crash %.3fs", post.P95, pre.P95)
	}
}

func TestServeChaosCrashForeverLosesCapacity(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Phases = steadyProgram(opts, 0.6, 6)
	base, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Chaos = &chaos.Schedule{Faults: []chaos.Fault{chaos.CrashForever(2, 1)}}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	fr := rep.Faults
	if fr == nil || len(fr.Crashes) != 1 || fr.Recoveries != 0 {
		t.Fatalf("permanent crash ledger wrong: %+v", fr)
	}
	if fr.Crashes[0].RecoveredAt != 0 {
		t.Fatalf("permanent crash recovered: %+v", fr.Crashes[0])
	}
	// Work conserves (the survivor absorbs everything)...
	if rep.Requests != base.Requests {
		t.Fatalf("permanent crash lost requests: %d vs %d", rep.Requests, base.Requests)
	}
	// ...but at half capacity the post-crash tail is strictly worse.
	post, basePost := rep.WindowStats(2.5, 6), base.WindowStats(2.5, 6)
	if post.P95 <= basePost.P95 {
		t.Fatalf("halving the fleet did not hurt the tail: %.3fs vs %.3fs", post.P95, basePost.P95)
	}
}

func TestServeChaosDegradedLinkStretchesStalls(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Oversubscription = 2
	opts.CachePolicy = "affinity"
	opts.Phases = steadyProgram(opts, 0.7, 4)
	base, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Chaos = &chaos.Schedule{Faults: []chaos.Fault{chaos.DegradeLink(1, 2.5, 4)}}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == nil || rep.Faults.LinkDegradeWindows != 1 {
		t.Fatalf("degrade window not ledgered: %+v", rep.Faults)
	}
	if rep.MemStallSeconds <= base.MemStallSeconds {
		t.Fatalf("4x degraded link did not stretch stalls: %.4fs vs %.4fs",
			rep.MemStallSeconds, base.MemStallSeconds)
	}
}

func TestServeChaosRetryExhaustionShedsGracefully(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Oversubscription = 2
	opts.CachePolicy = "lru"
	opts.Phases = steadyProgram(opts, 0.7, 4)
	base, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	// A permanently degraded link under a tight stall timeout: demand fetches
	// time out, retry, exhaust, and the affected requests shed instead of
	// wedging the batch.
	opts.Chaos = &chaos.Schedule{
		Faults:       []chaos.Fault{chaos.DegradeLink(0.5, 3.5, 50)},
		FetchTimeout: 0.002, FetchRetries: 1, FetchBackoff: 0.001,
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	fr := rep.Faults
	if fr == nil || fr.FetchTimeouts == 0 || fr.RetryExhausted == 0 {
		t.Fatalf("tight timeout under a 50x degraded link never exhausted: %+v", fr)
	}
	if fr.ShedRetryExhausted == 0 {
		t.Fatalf("exhausted fetches shed nothing: %+v", fr)
	}
	// Conservation: every admitted request either finished or was shed, and
	// the run terminated (no hang) — reaching this line at all proves the
	// batch never wedged.
	if rep.Requests+fr.ShedRetryExhausted != base.Requests {
		t.Fatalf("request conservation broke: %d finished + %d shed != %d offered",
			rep.Requests, fr.ShedRetryExhausted, base.Requests)
	}
}

func TestServeChaosPreemptibleDMA(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Oversubscription = 2
	opts.CachePolicy = "affinity"
	opts.Phases = steadyProgram(opts, 0.7, 4)
	fifo, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Chaos = &chaos.Schedule{PreemptibleDMA: true}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == nil || rep.Faults.Preemptions == 0 {
		t.Fatalf("preemptible DMA never preempted a speculative transfer: %+v", rep.Faults)
	}
	// Yielding the link to demand misses must not hurt the charged stall (the
	// scenario matrix gates the strict P95 win at bench scale).
	if rep.MemStallSeconds > fifo.MemStallSeconds {
		t.Fatalf("preemptible DMA raised stalls: %.4fs vs FIFO %.4fs",
			rep.MemStallSeconds, fifo.MemStallSeconds)
	}
}

func TestServeChaosCrashDuringAutoscale(t *testing.T) {
	opts, _ := testSystem(t)
	warm := nearKneeRate(opts, 0.5, 0.2, 0.5)
	opts.Phases = []Phase{
		{Name: "warm", Duration: 3, Rate: warm, Dataset: synth.Pile()},
		{Name: "tail", Duration: 7, Rate: warm, Dataset: synth.Pile()},
	}
	opts.Fleet = &fleet.Spec{
		MinReplicas: 2, MaxReplicas: 4,
		ReconcileInterval: 0.25,
		ScaleUpCooldown:   0.5,
		ScaleDownCooldown: 1,
		DownscaleStreak:   2,
		ForecastHalfLife:  0.5,
	}
	// A permanent crash under an autoscaling fleet: the dead slot's capacity
	// loss shows up in the reconciler's committed count, and the autoscaler
	// is free to re-commission a different slot.
	opts.Chaos = &chaos.Schedule{Faults: []chaos.Fault{chaos.CrashForever(3, 1)}}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	fr, fl := rep.Faults, rep.Fleet
	if fr == nil || len(fr.Crashes) != 1 {
		t.Fatalf("crash not ledgered: %+v", fr)
	}
	if fl == nil {
		t.Fatal("fleet report missing")
	}
	if fl.ScaleUps == 0 {
		t.Fatalf("autoscaler never replaced the crashed capacity: %+v", fl)
	}
	if fl.Arrivals != fl.Admitted+fl.Shed || rep.Requests != fl.Admitted {
		t.Fatalf("fleet accounting broke under chaos: %+v vs %d requests", fl, rep.Requests)
	}
}

func TestServeChaosDrainConservation(t *testing.T) {
	// Scale-down with a queued backlog: the drained replica's queue moves to
	// the survivors immediately and every admitted request still finishes.
	opts, _ := testSystem(t)
	warm := nearKneeRate(opts, 0.4, 0.2, 0.5)
	opts.Phases = []Phase{
		{Name: "spike", Duration: 2, Rate: 4 * warm, Dataset: synth.Pile()},
		{Name: "calm", Duration: 8, Rate: warm / 2, Dataset: synth.Pile()},
	}
	opts.Fleet = &fleet.Spec{
		MinReplicas: 1, MaxReplicas: 4,
		ReconcileInterval: 0.25,
		ScaleUpCooldown:   0.5,
		ScaleDownCooldown: 0.5,
		DownscaleStreak:   2,
		ForecastHalfLife:  0.5,
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	fl := rep.Fleet
	if fl.ScaleDowns == 0 {
		t.Fatalf("fleet never drained after the spike: %+v", fl)
	}
	if fl.Arrivals != fl.Admitted+fl.Shed {
		t.Fatalf("arrival accounting broke: %d != %d + %d", fl.Arrivals, fl.Admitted, fl.Shed)
	}
	// finished + shed == arrivals: nothing was stranded on a retired replica.
	if rep.Requests != fl.Admitted {
		t.Fatalf("%d admitted but %d finished — drain stranded requests", fl.Admitted, rep.Requests)
	}
}

func TestServeChaosValidation(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Phases = steadyProgram(opts, 0.5, 2)

	bad := opts
	bad.Chaos = &chaos.Schedule{Faults: []chaos.Fault{chaos.Crash(1, 0, 1)}}
	if _, err := Run(bad); err == nil {
		t.Fatal("crashing replica 0 must be rejected")
	}
	bad = opts
	bad.Chaos = &chaos.Schedule{Faults: []chaos.Fault{chaos.Crash(1, 7, 1)}}
	if _, err := Run(bad); err == nil {
		t.Fatal("crashing a replica beyond the slot count must be rejected")
	}
	bad = opts
	bad.Chaos = &chaos.Schedule{FetchTimeout: 0.01}
	if _, err := Run(bad); err == nil {
		t.Fatal("memory-path fault without Oversubscription must be rejected")
	}
	bad = opts
	bad.Chaos = &chaos.Schedule{PreemptibleDMA: true}
	if _, err := Run(bad); err == nil {
		t.Fatal("preemptible DMA without Oversubscription must be rejected")
	}
	bad = opts
	bad.Chaos = &chaos.Schedule{Faults: []chaos.Fault{chaos.DegradeLink(1, 1, 0.5)}}
	if _, err := Run(bad); err == nil {
		t.Fatal("degrade factor below 1 must be rejected")
	}
}

func TestServeChaosDeterministicReplay(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Oversubscription = 2
	opts.CachePolicy = "affinity"
	opts.Phases = steadyProgram(opts, 0.7, 5)
	opts.Chaos = &chaos.Schedule{
		Faults: []chaos.Fault{
			chaos.Crash(1.5, 1, 0.5),
			chaos.DegradeLink(3, 1, 3),
		},
		FetchTimeout: 0.05, FetchRetries: 2,
	}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Requests != b.Requests || a.Iterations != b.Iterations ||
		a.Overall.P95 != b.Overall.P95 || a.MemStallSeconds != b.MemStallSeconds {
		t.Fatalf("chaos replay diverged:\n  a: %+v\n  b: %+v", a.Overall, b.Overall)
	}
	af, bf := a.Faults, b.Faults
	if af.String() != bf.String() {
		t.Fatalf("fault ledger diverged:\n  a: %s\n  b: %s", af, bf)
	}
	if len(af.Crashes) != len(bf.Crashes) {
		t.Fatalf("crash count diverged: %d vs %d", len(af.Crashes), len(bf.Crashes))
	}
	for i := range af.Crashes {
		if af.Crashes[i] != bf.Crashes[i] {
			t.Fatalf("crash outcome %d diverged: %+v vs %+v", i, af.Crashes[i], bf.Crashes[i])
		}
	}
}

package serve

import (
	"testing"

	"repro/internal/synth"
)

// TestArrivalsDeterministicPerSeed: the arrival generator is pure in the
// RNG stream — identical seeds reproduce the identical arrival sequence for
// every process kind, and different seeds diverge. This is what makes whole
// serving runs replayable.
func TestArrivalsDeterministicPerSeed(t *testing.T) {
	for _, kind := range []ArrivalKind{Poisson, Bursty, Diurnal} {
		p := Phase{Name: kind.String(), Duration: 20, Rate: 150, Kind: kind, Dataset: synth.Pile()}
		a := generateArrivals(rngFor(42), p, 0)
		b := generateArrivals(rngFor(42), p, 0)
		if len(a) == 0 {
			t.Fatalf("%s: empty arrival stream", kind)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: replay lengths diverge: %d vs %d", kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: replay diverges at %d: %v vs %v", kind, i, a[i], b[i])
			}
		}
		c := generateArrivals(rngFor(43), p, 0)
		same := len(a) == len(c)
		if same {
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced the identical stream", kind)
		}
		// The start offset shifts every arrival uniformly.
		d := generateArrivals(rngFor(42), p, 100)
		for i := range a {
			if d[i] != a[i]+100 {
				t.Fatalf("%s: offset not applied at %d: %v vs %v", kind, i, d[i], a[i])
			}
		}
	}
}

// Package serve is the online serving subsystem layered above the ExFlow
// pipeline: a discrete-event simulation of a multi-replica MoE deployment
// under continuous batching, whose per-iteration cost is a locality-aware
// model fit from real engine runs (workload.LocalityModel). While requests
// stream through, every decoded token's routing path is recorded in a
// sliding TraceWindow; a drift Detector compares the live transition
// distribution against the offline profiling baseline, and when routing
// drifts — the token mixture shifted and the once-optimal placement decays —
// a background controller re-solves the placement on the live window and
// applies it replica by replica, charging the parameter-copy pause to the
// simulated clock so its latency cost is visible in the report.
//
// The paper computes its placement once, offline (Section V-A); this package
// is the production loop that keeps that placement fresh under live traffic.
package serve

import (
	"container/heap"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/expertmem"
	"repro/internal/fleet"
	"repro/internal/moe"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Options configures a serving run. The first block wires the system under
// test (all required); the rest tune the workload and the adaptive
// controller and have serviceable defaults.
type Options struct {
	// Topo is the per-replica hardware topology.
	Topo *topo.Topology
	// Kernel is the model's routing behaviour; TopK the gating fan-out.
	Kernel *synth.Kernel
	TopK   int
	// Placement is the initial expert placement every replica starts from.
	Placement *placement.Placement
	// BaselineCounts are the offline profiling-trace transition counts: the
	// drift detector's reference distribution.
	BaselineCounts [][][]float64
	// Cost converts (batch, dispatch locality) into iteration seconds.
	Cost workload.LocalityModel
	// ExpertBytes is the parameter size of one expert (prices migrations).
	ExpertBytes int

	// Replicas is the number of independent expert-parallel replicas behind
	// the front-end (default 2).
	Replicas int
	// MaxBatch is each replica's continuous-batching slot limit (default
	// 4 GPUs' worth: 4 * Topo.TotalGPUs()).
	MaxBatch int
	// DecodeTokens is the per-request decode length (default 32).
	DecodeTokens int
	// Phases is the traffic program; at least one phase is required.
	Phases []Phase

	// Adaptive enables the re-placement controller; when false the server
	// still tracks drift (the series appears in the report) but never
	// migrates — the static-ExFlow baseline.
	Adaptive bool
	// Window is the TraceWindow capacity in token paths (default 4096).
	Window int
	// CheckInterval is the drift-check cadence in simulated seconds
	// (default 0.5).
	CheckInterval float64
	// Metric, DriftThreshold, Patience parameterize the Detector (defaults:
	// JS, 0.008, 2).
	Metric         DriftMetric
	DriftThreshold float64
	Patience       int
	// Cooldown is the minimum simulated seconds between re-solves
	// (default 5).
	Cooldown float64
	// MinFill is the window fill fraction required before a re-solve
	// (default 0.5).
	MinFill float64
	// MinGain is the minimum fractional crossing reduction worth migrating
	// for (default 0.01).
	MinGain float64
	// SolveSeconds is the simulated latency of one background re-solve: the
	// controller solves on a window snapshot in a goroutine while the fleet
	// keeps serving, and the result lands SolveSeconds later on the
	// simulated clock — overlap, not pause. A finished solve is discarded
	// if routing drifted past the detector threshold again while it ran
	// (the staleness guard). Zero models an instantaneous solve.
	SolveSeconds float64
	// SolveWorkers is the annealing portfolio width of controller re-solves
	// (placement.StagedOptions.Workers); any fixed value is deterministic
	// and 0/1 reproduces the single-replica solve bit-identically.
	SolveWorkers int
	// Oversubscription enables tiered expert-weight memory: each replica
	// GPU's HBM holds assigned-expert-weights/ratio expert slots, the rest
	// page from host DRAM (expertmem). Zero disables the memory layer
	// entirely; 1 builds it but every expert fits (no stalls, by
	// construction); values in (0, 1) are rejected.
	Oversubscription float64
	// CachePolicy selects the residency policy under oversubscription:
	// lru, lfu, pin, or affinity (the default — affinity-mass eviction
	// plus affinity-guided prefetching).
	CachePolicy string
	// PrefetchK is how many affinity successors the prefetcher chases per
	// routed expert (default 4; affinity policy only).
	PrefetchK int
	// HostSlots bounds the host-DRAM master-copy working set; the coldest
	// experts fall through to NVMe (0 = everything fits in DRAM).
	HostSlots int
	// MemoryAware folds the expected expert-stall cost into the background
	// re-placement objective (placement.MemoryObjective over the live
	// window counts): re-solves then price hot-set concentration alongside
	// crossings, and MigrationEvent reports predicted vs realized stall
	// deltas. Requires Oversubscription > 0; at exactly 1 the term is
	// inactive by construction and re-solves stay bit-identical to the
	// crossing-only path.
	MemoryAware bool
	// ResidencyModel is the residency model memory-aware re-solves price
	// with ("" or "static": the top-Slots warm set; "che": Che-approximation
	// fractional occupancy with prefetch-coverage discount). Each
	// MigrationEvent's PredictedStallDelta is computed with the selected
	// model. Only meaningful with MemoryAware.
	ResidencyModel string
	// StallTrigger arms the stall-rate migration trigger: the controller also
	// fires a re-solve when charged expert-stall seconds per token trend up
	// at a stable routing mix — residency decay the transition-distribution
	// drift detector cannot see. Requires Adaptive and Oversubscription > 0.
	StallTrigger bool
	// StallTriggerFactor is how far above its observed minimum the smoothed
	// stall rate must rise before the trigger fires (default 1.5).
	StallTriggerFactor float64
	// ReplicaBudget is the extra-copy budget controller re-solves carry
	// (placement.StagedOptions.ReplicaBudget): each background re-placement
	// may hold up to this many additional expert copies beyond the
	// one-per-expert primaries, and the router splits tokens across live
	// copies. Zero keeps every solve single-copy — bit-identical to the
	// pre-replication solver.
	ReplicaBudget int
	// DispatchImbalance charges the Alltoall dispatch straggler: the fitted
	// hop costs are batch means (every link equally loaded), but the
	// bulk-synchronous dispatch actually completes when the most-loaded
	// receiving GPU's link drains, so with this on the per-iteration hop
	// cost scales by the inbound-row imbalance factor (max over GPUs of
	// remote rows received, over the balanced share). A hot expert that
	// concentrates inbound traffic on one GPU then costs what its straggler
	// link costs — the load imbalance expert replication exists to flatten.
	// Off (the default) is bit-identical to the mean-hop model.
	DispatchImbalance bool
	// Fleet enables the node-level fleet tier (internal/fleet): a shared
	// host-DRAM master-copy cache across co-located replicas, a
	// reconciliation-loop autoscaler on the simulated clock, and paging-aware
	// admission control. Nil disables the tier entirely — the serve path is
	// then bit-identical to a build without it.
	Fleet *fleet.Spec
	// Chaos injects deterministic faults on the simulated clock
	// (internal/chaos): replica crashes with timed recovery, degraded
	// host/NVMe link windows, fetch stall-timeouts with bounded retry, and
	// preemptible DMA. Nil (or an empty schedule) disables the layer — the
	// run is then bit-identical to a build without it. The memory-path knobs
	// (link degrade, fetch timeout, preemptible DMA) require the tiered
	// memory layer (Oversubscription >= 1); crash faults work with or
	// without a fleet, and their outcomes land in Report.Faults.
	Chaos *chaos.Schedule
	// LatencyBucket is the report's time-bucket width in seconds for the
	// P95/throughput series (0 = makespan/80).
	LatencyBucket float64
	// Seed makes the whole run deterministic.
	Seed uint64

	// Trace optionally records typed events on the simulated clock (request
	// admits/finishes, iterations, expert stalls, fetch/prefetch traffic,
	// solves, migrations, drift scores); export with obs.WritePerfetto.
	// Metrics optionally receives the run's counters, gauges, and histograms
	// (mem_stall_seconds, expertmem_fetch_seconds, solver_wall_seconds, ...),
	// snapshotable mid-run and surfaced as Report.Metrics. Decisions
	// optionally records the controller's human-readable decision log. All
	// three nil by default: the instrumented paths then cost nothing
	// measurable (the obs nil fast path).
	Trace     *obs.Tracer
	Metrics   *obs.Registry
	Decisions *obs.DecisionLog
	// AutoSolveSeconds derives the simulated re-solve latency from measured
	// solver wall clock instead of the SolveSeconds guess: the first solve
	// uses SolveSecondsPrior and each completed solve's wall time (as
	// measured by Metrics.Now around the actual StagedOpt call) refines a
	// running mean used for subsequent solves. An explicit SolveSeconds > 0
	// always overrides auto-calibration. Note the simulated timeline then
	// depends on host solver speed — leave this off for byte-reproducible
	// benchmark runs.
	AutoSolveSeconds bool
	// SolveSecondsPrior seeds the auto-calibrated estimate before any solve
	// has been measured (e.g. CalibrateServe's measured initial-solve wall).
	SolveSecondsPrior float64
}

// DefaultReplicas and DefaultWindow are the fleet-size and trace-window
// defaults, exported so callers resolving their own defaults (the root
// package's Serve) stay in sync.
const (
	DefaultReplicas = 2
	DefaultWindow   = 4096
)

func (o Options) withDefaults() Options {
	if o.Replicas == 0 {
		o.Replicas = DefaultReplicas
	}
	if o.MaxBatch == 0 && o.Topo != nil {
		o.MaxBatch = 4 * o.Topo.TotalGPUs()
	}
	if o.DecodeTokens == 0 {
		o.DecodeTokens = 32
	}
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.CheckInterval == 0 {
		o.CheckInterval = 0.5
	}
	if o.DriftThreshold == 0 {
		// JS sampling noise on a full default window sits near 0.005 and a
		// clear mixture shift near 0.02+ (see the drift detector tests);
		// 0.008 separates them with margin on both sides.
		o.DriftThreshold = 0.008
	}
	if o.Patience == 0 {
		o.Patience = 2
	}
	if o.Cooldown == 0 {
		o.Cooldown = 5
	}
	if o.MinFill == 0 {
		o.MinFill = 0.5
	}
	if o.MinGain == 0 {
		o.MinGain = 0.01
	}
	if o.TopK == 0 {
		o.TopK = 1
	}
	if o.PrefetchK == 0 {
		o.PrefetchK = 4
	}
	if o.SolveWorkers == 0 {
		o.SolveWorkers = 1
	}
	if o.StallTrigger && o.StallTriggerFactor == 0 {
		o.StallTriggerFactor = 1.5
	}
	return o
}

// pagingAdmission reports whether the fleet tier prices admission with the
// residency oracle — the one configuration where ResidencyModel is
// meaningful without MemoryAware.
func (o *Options) pagingAdmission() bool {
	return o.Fleet != nil && o.Fleet.Admission == fleet.AdmissionPaging
}

// Validate checks the options.
func (o *Options) Validate() error {
	switch {
	case o.Topo == nil || o.Kernel == nil || o.Placement == nil:
		return fmt.Errorf("serve: Topo, Kernel and Placement are required")
	case o.BaselineCounts == nil:
		return fmt.Errorf("serve: BaselineCounts required (profile the system first)")
	case o.Cost.Fixed <= 0 && o.Cost.PerToken <= 0 && o.Cost.PerNodeHop <= 0 && o.Cost.PerCrossHop <= 0:
		// Mirrors FitLocalityModel's degeneracy criterion: any single
		// positive coefficient is a usable (if lopsided) cost model.
		return fmt.Errorf("serve: Cost model is empty (fit it from engine runs)")
	case o.ExpertBytes <= 0:
		return fmt.Errorf("serve: ExpertBytes must be positive")
	case o.Replicas <= 0 || o.MaxBatch <= 0 || o.DecodeTokens <= 0:
		return fmt.Errorf("serve: Replicas, MaxBatch, DecodeTokens must be positive")
	case len(o.Phases) == 0:
		return fmt.Errorf("serve: at least one traffic phase required")
	case o.Oversubscription < 0 || (o.Oversubscription > 0 && o.Oversubscription < 1):
		return fmt.Errorf("serve: Oversubscription must be 0 (off) or >= 1, got %v", o.Oversubscription)
	case o.HostSlots < 0:
		return fmt.Errorf("serve: HostSlots must be non-negative")
	case o.Oversubscription == 0 && o.HostSlots > 0:
		// HostSlots bounds the host-DRAM tier of the memory layer; without
		// Oversubscription there is no memory layer and the bound would
		// silently do nothing.
		return fmt.Errorf("serve: HostSlots %d set but Oversubscription is 0 (memory layer disabled); set Oversubscription >= 1 or drop HostSlots", o.HostSlots)
	case o.Oversubscription == 0 && o.CachePolicy != "":
		// A policy without the memory layer would silently do nothing; that
		// almost always means the caller forgot Oversubscription.
		return fmt.Errorf("serve: CachePolicy %q set but Oversubscription is 0 (memory layer disabled); set Oversubscription >= 1 or drop the policy", o.CachePolicy)
	case o.Oversubscription == 0 && o.MemoryAware:
		return fmt.Errorf("serve: MemoryAware requires the tiered memory layer; set Oversubscription >= 1")
	case o.ResidencyModel != "" && !o.MemoryAware && !o.pagingAdmission():
		return fmt.Errorf("serve: ResidencyModel %q set but MemoryAware is off; enable MemoryAware or drop the model", o.ResidencyModel)
	case o.StallTriggerFactor < 0:
		return fmt.Errorf("serve: StallTriggerFactor must be non-negative, got %v", o.StallTriggerFactor)
	case o.StallTriggerFactor > 0 && !o.StallTrigger:
		return fmt.Errorf("serve: StallTriggerFactor set but StallTrigger is off; enable it or drop the factor")
	case o.StallTrigger && o.Oversubscription == 0:
		return fmt.Errorf("serve: StallTrigger watches tiered-memory stalls; set Oversubscription >= 1")
	case o.StallTrigger && !o.Adaptive:
		return fmt.Errorf("serve: StallTrigger requires the adaptive controller; enable Adaptive")
	case o.SolveSeconds < 0:
		return fmt.Errorf("serve: SolveSeconds must be non-negative, got %v", o.SolveSeconds)
	case o.SolveSecondsPrior < 0:
		return fmt.Errorf("serve: SolveSecondsPrior must be non-negative, got %v", o.SolveSecondsPrior)
	case o.SolveSecondsPrior > 0 && !o.AutoSolveSeconds:
		return fmt.Errorf("serve: SolveSecondsPrior set but AutoSolveSeconds is off; enable it or drop the prior")
	case o.SolveWorkers < 0:
		return fmt.Errorf("serve: SolveWorkers must be non-negative (zero for the default 1), got %d", o.SolveWorkers)
	}
	if o.Oversubscription > 0 {
		if _, err := expertmem.ParsePolicy(o.CachePolicy); err != nil {
			return err
		}
	}
	if _, err := placement.ParseResidencyModel(o.ResidencyModel); err != nil {
		return err
	}
	if err := o.Chaos.Validate(); err != nil {
		return err
	}
	if o.Oversubscription == 0 && o.Chaos != nil &&
		(o.Chaos.FetchTimeout > 0 || o.Chaos.PreemptibleDMA || o.Chaos.Degraded()) {
		return fmt.Errorf("serve: Chaos memory-path faults (fetch timeout, preemptible DMA, link degrade) touch the tiered memory layer; set Oversubscription >= 1")
	}
	if o.Fleet != nil {
		if err := o.Fleet.Validate(o.Replicas); err != nil {
			return err
		}
		if o.Fleet.SharedHostCache && o.Oversubscription == 0 {
			return fmt.Errorf("serve: Fleet.SharedHostCache requires the tiered memory layer; set Oversubscription >= 1")
		}
		if o.Fleet.SharedHostCache && o.HostSlots == 0 {
			return fmt.Errorf("serve: Fleet.SharedHostCache without HostSlots is inert (every master fits in DRAM); set HostSlots or drop the shared cache")
		}
		if o.Fleet.Admission == fleet.AdmissionPaging && o.Oversubscription == 0 {
			return fmt.Errorf("serve: Fleet paging admission prices tiered-memory stalls; set Oversubscription >= 1")
		}
	}
	for _, p := range o.Phases {
		if err := p.validate(); err != nil {
			return err
		}
	}
	return nil
}

// tokenOrdinalBase offsets serving token ordinals past both the profiling
// stream ([0, profileTokens)) and the engine's evaluation stream (1<<20 + …)
// so live traffic never replays profiled tokens.
const tokenOrdinalBase = 1 << 22

// request is one in-flight generation request.
type request struct {
	arrival   float64
	phase     int
	remaining int
	finish    float64
	replica   int
	home      int // home GPU inside the replica (layer-0 dispatch origin)
	seq       int // index into server.arrivals
	// defers / shed are the fleet tier's admission outcome: how many times
	// the request was re-offered, and whether it was ultimately dropped.
	defers int
	shed   bool
}

// replica is one expert-parallel deployment behind the front-end.
type replica struct {
	id      int
	pl      *placement.Placement
	queue   []*request
	active  []*request
	running bool
	stalled bool
	admits  int
	// live / draining / warming are the fleet tier's lifecycle: serving,
	// finishing its queue before retiring, or copying parameters before
	// activation. Without a fleet every replica is permanently live.
	live     bool
	draining bool
	warming  bool
	// gen is the incarnation counter (see event.gen); crashed marks a slot
	// reserved by a scheduled chaos recovery (the autoscaler must not
	// re-commission it), with crashedAt the fault instant.
	gen       int
	crashed   bool
	crashedAt float64
}

// load is the front-end's routing metric: queued plus active requests.
func (r *replica) load() int { return len(r.queue) + len(r.active) }

// Event kinds, in tie-break priority order at equal timestamps: crashes
// first (a fault at time T kills the replica before anything else at T can
// touch it), then scale-up activations and crash recoveries (a replica going
// live at time T must be visible to same-instant arrivals), then arrivals
// (so a request arriving exactly at an iteration boundary can be admitted by
// it), then stall completions, then background-solve completions (so an
// instantaneous solve's plan is visible to iteration ends at the same
// timestamp), then iteration completions.
const (
	evCrash = iota
	evScaleUp
	evRecover
	evArrival
	evStallEnd
	evSolveEnd
	evIterEnd
)

type event struct {
	t    float64
	kind int
	rep  int // replica id (evIterEnd, evStallEnd, evScaleUp, evRecover)
	seq  int // arrival index (evArrival); crash-fault index (evCrash); monotonic otherwise
	// gen stamps replica-targeted events with the replica's generation at
	// push time; a crash bumps the generation, invalidating every event the
	// dead incarnation still has in flight.
	gen int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	if h[i].rep != h[j].rep {
		return h[i].rep < h[j].rep
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// server is the run state.
type server struct {
	opts     Options
	routers  []moe.Router // per phase
	replicas []*replica
	window   *TraceWindow
	ctrl     *controller
	// mems[r] is replica r's tiered expert-weight memory (nil slices when
	// Oversubscription is zero). paths is the per-iteration routing scratch.
	mems  []*expertmem.Manager
	paths [][]int

	// fl is the fleet tier (nil when Options.Fleet is nil — every fleet
	// branch below is gated on it so the nil path stays bit-identical).
	// memCfg is retained so scale-ups can build fresh memory managers, and
	// curPl tracks the fleet's placement lineage for replicas activated
	// outside a rollout.
	fl     *fleetState
	memCfg expertmem.Config
	curPl  *placement.Placement

	// ch is the chaos layer (nil when Options.Chaos is nil or empty — every
	// chaos branch below is gated on it so the nil path stays bit-identical).
	ch *chaosState

	// tr/met are the observability hooks (nil / zero when off).
	tr  *obs.Tracer
	met serveMetrics

	events    eventHeap
	arrivals  []*request
	pending   *pendingMigration
	solving   *pendingSolve
	lastCheck float64
	ordinal   uint64
	seq       int

	iterations int
	batchTotal int
	kappaSum   float64     // summed per-iteration inbound imbalance (DispatchImbalance on)
	kappaN     int         // iterations that priced a straggler factor
	memStall   float64     // expert-miss stall actually charged to iteration clocks
	memSamples []memSample // per-iteration stall samples (realized-delta accounting)
	decoded    []tick      // (time, tokens decoded) per iteration
	fracT      []float64
	fracY      []float64 // per-iteration cross-node dispatch fraction
	driftT     []float64
	driftY     []float64
	queueT     []float64
	queueY     []float64
	migrations []MigrationEvent
}

// tick is a timestamped count.
type tick struct {
	t float64
	n int
}

// memSample records one iteration's charged expert-stall and decode size,
// backing the migrations' realized stall-per-token deltas.
type memSample struct {
	t      float64
	stall  float64
	tokens int
}

// Run executes the serving simulation and returns its report.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	layers := opts.Placement.Layers
	if opts.Kernel.Layers != layers || opts.Kernel.Experts != opts.Placement.Experts {
		return nil, fmt.Errorf("serve: kernel %dx%d does not match placement %dx%d",
			opts.Kernel.Layers, opts.Kernel.Experts, layers, opts.Placement.Experts)
	}
	if opts.Topo.TotalGPUs() != opts.Placement.GPUs {
		return nil, fmt.Errorf("serve: topology %d gpus, placement %d", opts.Topo.TotalGPUs(), opts.Placement.GPUs)
	}

	s := &server{
		opts:   opts,
		window: NewTraceWindow(layers, opts.Placement.Experts, opts.Window),
		tr:     opts.Trace,
		met:    newServeMetrics(opts.Metrics),
	}
	s.ctrl = newController(&s.opts, s.window, poolCounts(opts.BaselineCounts, opts.Placement.Experts))
	s.curPl = opts.Placement
	for _, p := range opts.Phases {
		s.routers = append(s.routers, synth.NewKernelRouter(opts.Kernel, p.Dataset, opts.TopK))
	}
	// With an autoscaling fleet the replica slice holds every slot the spec
	// could ever commit; slots beyond the initial Replicas start dark.
	slots := opts.Replicas
	if opts.Fleet != nil {
		s.fl = newFleetState(&s.opts)
		if s.fl.spec.Autoscaling() && s.fl.spec.MaxReplicas > slots {
			slots = s.fl.spec.MaxReplicas
		}
	}
	for r := 0; r < slots; r++ {
		s.replicas = append(s.replicas, &replica{id: r, pl: opts.Placement.Clone(), live: r < opts.Replicas})
	}
	if opts.Chaos.Enabled() {
		if err := opts.Chaos.ValidateReplicas(slots); err != nil {
			return nil, err
		}
		s.ch = newChaosState(&s.opts)
	}
	if opts.Oversubscription > 0 {
		pol, err := expertmem.ParsePolicy(opts.CachePolicy)
		if err != nil {
			return nil, err
		}
		s.memCfg = expertmem.ConfigFor(opts.Topo, layers, opts.Placement.Experts, opts.ExpertBytes,
			opts.Oversubscription, pol, opts.PrefetchK, opts.HostSlots, opts.BaselineCounts)
		if s.fl != nil && s.fl.spec.SharedHostCache {
			// The shared node tier replaces each replica's private static
			// DRAM/NVMe split: one popularity-ranked master working set for
			// the whole node, seeded from the same affinity oracle.
			oracle := expertmem.New(s.memCfg)
			s.fl.cache = fleet.NewHostCache(layers, opts.Placement.Experts, opts.HostSlots,
				opts.Topo.NVMePath().Time(opts.ExpertBytes), oracle.Popularity)
		}
		s.mems = make([]*expertmem.Manager, len(s.replicas))
		for r := 0; r < opts.Replicas; r++ {
			s.mems[r] = s.newMem(r, opts.Placement)
		}
		// The controller must price residency churn, not just parameter
		// copies: a migration invalidates the HBM copies of every moved
		// expert, and under oversubscription each one costs a host-link
		// refetch before the replica is warm again. Replica 0's residency
		// stands in for the fleet, mirroring how drift is scored. At 1x
		// nothing can ever churn (Resident is vacuously true but no refetch
		// happens), so the pricing hook stays uninstalled.
		if s.mems[0].Oversubscribed() {
			s.ctrl.churn = func(moves []placement.Move) (int, float64) {
				n, sec := 0, 0.0
				for _, mv := range moves {
					if mv.Install() {
						continue // a new copy destroys no residency
					}
					if mv.Drop() {
						// Dropping a copy invalidates its residency but frees
						// the slot; nothing is refetched.
						if s.mems[0].Resident(mv.From, mv.Layer, mv.Expert) {
							n++
						}
						continue
					}
					if s.mems[0].Resident(mv.From, mv.Layer, mv.Expert) {
						n++
						sec += s.mems[0].FetchSeconds(mv.Layer, mv.Expert)
					}
				}
				return n, sec
			}
		}
	}

	if s.fl != nil {
		s.fl.warmup = s.paramCopySeconds()
		s.sampleFleet(0)
	}
	if s.ch != nil {
		// A crash recovery pays the same parameter re-copy a scale-up does,
		// plus the re-warm surcharge charged when the recovery lands.
		s.ch.warmup = s.paramCopySeconds()
		s.scheduleChaos()
	}

	// Pre-draw every arrival: phase by phase, deterministic in the seed.
	ar := rng.New(rng.Mix64(opts.Seed, 0xA881))
	start := 0.0
	for pi, p := range opts.Phases {
		for _, t := range generateArrivals(ar, p, start) {
			s.arrivals = append(s.arrivals, &request{arrival: t, phase: pi, remaining: opts.DecodeTokens, seq: len(s.arrivals)})
		}
		start += p.Duration
	}
	if len(s.arrivals) == 0 {
		return nil, fmt.Errorf("serve: traffic program produced no arrivals")
	}
	heap.Init(&s.events)
	for i := range s.arrivals {
		heap.Push(&s.events, event{t: s.arrivals[i].arrival, kind: evArrival, seq: i})
	}

	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		// Replica-targeted events from a crashed incarnation are stale: the
		// generation check drops an iteration, stall, warm-up, or recovery
		// the fault aborted.
		switch e.kind {
		case evArrival:
			s.onArrival(e.t, s.arrivals[e.seq])
		case evIterEnd:
			if e.gen == s.replicas[e.rep].gen {
				s.onIterEnd(e.t, s.replicas[e.rep])
			}
		case evStallEnd:
			if e.gen == s.replicas[e.rep].gen {
				s.onStallEnd(e.t, s.replicas[e.rep])
			}
		case evSolveEnd:
			s.onSolveEnd(e.t)
		case evScaleUp:
			if e.gen == s.replicas[e.rep].gen {
				s.onScaleUp(e.t, s.replicas[e.rep])
			}
		case evCrash:
			s.onCrash(e.t, e.seq)
		case evRecover:
			if e.gen == s.replicas[e.rep].gen {
				s.onRecover(e.t, s.replicas[e.rep])
			}
		}
	}
	return s.buildReport(), nil
}

// paramCopySeconds is the simulated time to copy one replica's per-GPU HBM
// working set over the host link (GPUs fill in parallel; the links are
// per-GPU) — the warm-up a scale-up or crash recovery charges.
func (s *server) paramCopySeconds() float64 {
	perGPU := s.opts.Placement.Layers * s.opts.Placement.Experts / s.opts.Topo.TotalGPUs()
	if s.opts.Oversubscription > 0 && s.memCfg.SlotsPerGPU < perGPU {
		perGPU = s.memCfg.SlotsPerGPU
	}
	return s.opts.Topo.HostPath().Time(perGPU * s.opts.ExpertBytes)
}

// onArrival admits a request to the least-loaded serving replica's queue,
// after the fleet tier's admission control (when enabled) has priced it.
func (s *server) onArrival(now float64, rq *request) {
	if s.fl != nil && !s.fleetAdmit(now, rq) {
		return
	}
	var best *replica
	for _, r := range s.replicas {
		if (s.fl != nil || s.ch != nil) && (!r.live || r.draining) {
			continue
		}
		if best == nil || r.load() < best.load() {
			best = r
		}
	}
	if best == nil {
		return // unreachable: replica 0 is never drained and cannot crash
	}
	rq.replica = best.id
	best.queue = append(best.queue, rq)
	s.met.requests.Inc()
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvAdmit, Rep: int32(best.id), GPU: -1, Layer: -1, Expert: -1, T: now})
	}
	if !best.running && !best.stalled {
		s.start(now, best)
	}
}

// onIterEnd retires finished requests, runs the drift check, and begins the
// replica's next activity (stall or iteration).
func (s *server) onIterEnd(now float64, r *replica) {
	r.running = false
	kept := r.active[:0]
	for _, rq := range r.active {
		rq.remaining--
		if rq.remaining == 0 {
			rq.finish = now
			s.met.finished.Inc()
			if s.tr != nil {
				s.tr.Emit(obs.Event{Kind: obs.EvFinish, Rep: int32(r.id), GPU: -1, Layer: -1, Expert: -1,
					T: now, Value: now - rq.arrival})
			}
		} else {
			kept = append(kept, rq)
		}
	}
	s.decoded = append(s.decoded, tick{t: now, n: len(r.active)})
	r.active = kept

	if s.fl != nil {
		s.maybeReconcile(now)
		if r.draining && r.load() == 0 {
			s.retireReplica(now, r)
		}
	}
	s.maybeCheckDrift(now)

	if s.pending != nil && s.pending.next == r.id && !r.stalled && r.live {
		s.beginStall(now, r)
		return
	}
	s.start(now, r)
}

// onStallEnd installs the new placement on the migrated replica and passes
// the baton to the next one.
func (s *server) onStallEnd(now float64, r *replica) {
	r.stalled = false
	if s.mems != nil {
		moves := placement.Diff(r.pl, s.pending.newPl)
		if s.fl != nil && s.fl.cache != nil && !s.pending.invalidated {
			// Coherence: the migration rewrites the moved experts' canonical
			// weights, so the node's shared master copies are stale the
			// moment the first replica installs. Invalidate once; replicas
			// refetch from NVMe on next demand.
			s.pending.invalidated = true
			for _, mv := range moves {
				if mv.Install() || mv.Drop() {
					continue // replica churn reuses the same canonical weights
				}
				s.fl.cache.Invalidate(mv.Layer, mv.Expert)
			}
		}
		// The parameter copy lands each moved expert on its new owner's HBM
		// and invalidates the stale copy — the residency churn the
		// controller priced into the pause. Replica installs land a fresh
		// copy; drops free the slot.
		for _, mv := range moves {
			switch {
			case mv.Install():
				s.mems[r.id].Install(mv.Layer, mv.Expert, mv.To, now)
			case mv.Drop():
				s.mems[r.id].Discard(mv.Layer, mv.Expert, mv.From)
			default:
				s.mems[r.id].Relocate(mv.Layer, mv.Expert, mv.From, mv.To, now)
			}
		}
	}
	r.pl = s.pending.newPl.Clone()
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvInstall, Rep: int32(r.id), GPU: -1, Layer: -1, Expert: -1,
			T: now, Aux: int64(s.pending.event.Moves)})
	}
	s.advanceRollout(now)
	s.start(now, r)
}

// advanceRollout passes the rolling-migration baton to the next live
// replica, completing the migration when none remain. Dark fleet slots
// (never activated, or retired) hold no parameters and are skipped; a
// replica activated later adopts the migrated placement directly.
func (s *server) advanceRollout(now float64) {
	p := s.pending
	p.next++
	for p.next < len(s.replicas) && !s.replicas[p.next].live {
		p.next++
	}
	if p.next >= len(s.replicas) {
		p.event.Completed = now
		s.migrations = append(s.migrations, *p.event)
		s.met.migrations.Inc()
		s.opts.Decisions.Logf(now, "migration-complete started=%.3fs pause/replica=%.3fms moves=%d",
			p.event.Time, p.event.Seconds*1e3, p.event.Moves)
		s.curPl = p.newPl
		s.pending = nil
		s.ctrl.finish(now)
	} else if nxt := s.replicas[p.next]; !nxt.running && !nxt.stalled {
		s.beginStall(now, nxt)
	}
}

// beginStall pauses a replica for the migration's parameter-copy time.
func (s *server) beginStall(now float64, r *replica) {
	r.stalled = true
	s.met.pauseSeconds.Observe(s.pending.event.Seconds)
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvPause, Rep: int32(r.id), GPU: -1, Layer: -1, Expert: -1,
			T: now, Dur: s.pending.event.Seconds})
	}
	s.seq++
	heap.Push(&s.events, event{t: now + s.pending.event.Seconds, kind: evStallEnd, rep: r.id, seq: s.seq, gen: r.gen})
}

// maybeCheckDrift runs the periodic drift observation and, when the
// controller launches a background re-solve, schedules its completion on
// the simulated clock. The solve overlaps serving: no replica pauses until
// the solve lands, clears the staleness guard, and becomes a migration.
func (s *server) maybeCheckDrift(now float64) {
	if now-s.lastCheck < s.opts.CheckInterval {
		return
	}
	s.lastCheck = now
	if s.fl != nil {
		s.refreshFleetPricing(now)
	}
	// Crash transients pollute the drift signal: redispatch spikes the queue
	// and the stall rate while the fleet absorbs the lost capacity, none of
	// which is routing drift. Inside the quiet window the controller still
	// scores (the series stays continuous) but launches no solve and sees no
	// stall-trigger samples.
	quiet := s.ch != nil && now < s.ch.quietUntil
	if s.opts.StallTrigger && !quiet {
		// Feed the controller the recent charged stall rate so residency
		// decay can fire a re-solve even when the routing mix looks stable.
		if rate, ok := s.stallPerToken(now-4*s.opts.CheckInterval, now); ok {
			s.ctrl.noteStall(rate)
		}
	}
	// All replicas share placement lineage; score drift against replica 0's.
	score, solve := s.ctrl.observe(now, s.replicas[0].pl, s.pending != nil || s.solving != nil || quiet)
	s.driftT = append(s.driftT, now)
	s.driftY = append(s.driftY, score)
	depth := 0
	for _, r := range s.replicas {
		depth += r.load()
	}
	s.queueT = append(s.queueT, now)
	s.queueY = append(s.queueY, float64(depth))
	s.met.drift.Set(score)
	s.met.queueDepth.Set(float64(depth))
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvDrift, Rep: -1, GPU: -1, Layer: -1, Expert: -1, T: now, Value: score})
		s.tr.Emit(obs.Event{Kind: obs.EvQueueDepth, Rep: -1, GPU: -1, Layer: -1, Expert: -1, T: now, Value: float64(depth)})
	}
	if solve == nil {
		return
	}
	s.solving = solve
	s.seq++
	heap.Push(&s.events, event{t: now + s.solveLatency(), kind: evSolveEnd, seq: s.seq})
}

// solveLatency is the simulated seconds one background re-solve charges to
// the clock: the explicit SolveSeconds when set, otherwise — under
// AutoSolveSeconds — the controller's running mean of measured solve walls,
// seeded by SolveSecondsPrior before the first completed solve.
func (s *server) solveLatency() float64 {
	if s.opts.SolveSeconds > 0 || !s.opts.AutoSolveSeconds {
		return s.opts.SolveSeconds
	}
	return s.ctrl.solveEstimate()
}

// onSolveEnd collects the background re-solve. The wall-clock join with the
// solver goroutine happens inside complete; the simulated clock already
// charged the solve as overlap (the fleet kept decoding since SolveStarted).
func (s *server) onSolveEnd(now float64) {
	ps := s.solving
	s.solving = nil
	plan := s.ctrl.complete(now, s.replicas[0].pl, ps)
	if plan == nil {
		return // discarded (stale) or rejected (below MinGain)
	}
	s.pending = plan
	// Idle replicas produce no events; if the first in line is idle, stall
	// it immediately so the rollout is not wedged behind silence.
	if r := s.replicas[plan.next]; !r.running && !r.stalled {
		s.beginStall(now, r)
	}
}

// start admits queued requests into free slots and launches one decode
// iteration, routing every active token to obtain the iteration's dispatch
// locality under the replica's current placement.
func (s *server) start(now float64, r *replica) {
	if r.stalled || r.running {
		return
	}
	gpus := s.opts.Topo.TotalGPUs()
	for len(r.active) < s.opts.MaxBatch && len(r.queue) > 0 {
		rq := r.queue[0]
		r.queue = r.queue[1:]
		rq.home = r.admits % gpus
		r.admits++
		r.active = append(r.active, rq)
	}
	if len(r.active) == 0 {
		return
	}
	layers := s.opts.Kernel.Layers
	for len(s.paths) < len(r.active) {
		s.paths = append(s.paths, make([]int, layers))
	}
	same, node, cross := 0, 0, 0
	// Replica routing signals (single-copy placements leave both nil and the
	// walk below reduces to the primary-owner walk bit for bit): hop class
	// for locality tie-breaks, and a per-iteration token-load counter so the
	// batch spreads across an expert's copies least-loaded-first.
	class := func(from, to int) int { return int(s.opts.Topo.Classify(from, to)) }
	var routeLoad []int
	if r.pl.Replicated() {
		routeLoad = make([]int, gpus)
	}
	var inbound []int
	if s.opts.DispatchImbalance {
		inbound = make([]int, gpus)
	}
	for i, rq := range r.active {
		router := s.routers[rq.phase]
		id := s.opts.Phases[rq.phase].Dataset.TokenID(tokenOrdinalBase + s.ordinal)
		s.ordinal++
		path := s.paths[i]
		prev := -1
		for j := 0; j < layers; j++ {
			experts := router.Route(j, id, prev, nil)
			path[j] = experts[0]
			prev = experts[0]
		}
		s.window.Push(path)
		at := rq.home
		for j := 0; j < layers; j++ {
			owner := r.pl.PickReplica(j, path[j], at, routeLoad, class)
			if routeLoad != nil {
				routeLoad[owner]++
			}
			switch s.opts.Topo.Classify(at, owner) {
			case topo.SameGPU:
				same++
			case topo.SameNode:
				node++
				if inbound != nil {
					inbound[owner]++
				}
			default:
				cross++
				if inbound != nil {
					inbound[owner]++
				}
			}
			at = owner
		}
	}
	total := float64(same + node + cross)
	fn, fc := float64(node)/total, float64(cross)/total
	if remote := node + cross; inbound != nil && remote > 0 {
		// The straggler link sets the Alltoall pace: scale the hop terms by
		// the most-loaded GPU's inbound share over the balanced share. The
		// cost model is linear in the fractions, so scaling them is exactly
		// "hop cost x imbalance"; the raw fractions still feed the report
		// series and the fleet estimator below.
		maxIn := 0
		for _, v := range inbound {
			if v > maxIn {
				maxIn = v
			}
		}
		kappa := float64(maxIn) * float64(gpus) / float64(remote)
		fn *= kappa
		fc *= kappa
		s.kappaSum += kappa
		s.kappaN++
	}
	dt := s.opts.Cost.Time(len(r.active), fn, fc)
	var failedRows []int
	if s.mems != nil {
		st, failed := s.memoryStalls(r, len(r.active), now, dt)
		dt += st
		failedRows = failed
		// The metric mirrors the report field addition-for-addition so the
		// exported mem_stall_seconds equals Report.MemStallSeconds exactly.
		s.memStall += st
		s.met.memStall.Add(st)
		s.memSamples = append(s.memSamples, memSample{t: now, stall: st, tokens: len(r.active)})
	}
	s.fracT = append(s.fracT, now)
	s.fracY = append(s.fracY, float64(cross)/total)
	if s.fl != nil {
		s.fl.fn, s.fl.fc = float64(node)/total, float64(cross)/total
	}
	s.iterations++
	s.batchTotal += len(r.active)
	s.met.iterations.Inc()
	s.met.tokens.Add(float64(len(r.active)))
	s.met.iterSeconds.Observe(dt)
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvIteration, Rep: int32(r.id), GPU: -1, Layer: -1, Expert: -1,
			T: now, Dur: dt, Aux: int64(len(r.active))})
	}
	r.running = true
	s.seq++
	heap.Push(&s.events, event{t: now + dt, kind: evIterEnd, rep: r.id, seq: s.seq, gen: r.gen})
	if len(failedRows) > 0 {
		// Retry-exhausted fetches stranded these tokens' iterations: shed
		// them now (the batch accounting above already counted the launch)
		// so the run degrades gracefully instead of hanging on weights that
		// never arrive.
		s.shedFailedRows(now, r, failedRows)
	}
}

// memoryStalls walks one iteration's per-layer timeline through the
// replica's tiered expert-weight memory (see LayerStallTimeline) and
// returns the total stall added to the iteration, plus — when the chaos
// fetch-timeout model is armed — the batch rows whose tokens hit a
// retry-exhausted fetch and must be shed.
func (s *server) memoryStalls(r *replica, batch int, now, computeDur float64) (float64, []int) {
	if s.ch != nil && s.ch.sched.FetchTimeout > 0 {
		return LayerStallTimelineChecked(s.mems[r.id], r.pl, s.paths, batch, now, computeDur, s.tr, r.id)
	}
	return LayerStallTimelineTraced(s.mems[r.id], r.pl, s.paths, batch, now, computeDur, s.tr, r.id), nil
}

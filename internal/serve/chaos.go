package serve

import (
	"container/heap"

	"repro/internal/chaos"
	"repro/internal/expertmem"
	"repro/internal/obs"
)

// chaosState is the server's fault-injection bookkeeping (nil when
// Options.Chaos is nil or empty). The chaos package holds the declarative
// schedule and its arithmetic; this file injects the faults into the event
// loop and ledgers their outcomes for Report.Faults.
type chaosState struct {
	sched  chaos.Schedule // WithDefaults-normalized copy
	met    chaosMetrics
	warmup float64 // parameter re-copy seconds a recovery charges

	// crashes indexes the schedule's crash faults (evCrash.seq); outcomeIdx
	// maps a dead replica to its open ledger row so the recovery can close
	// it.
	crashes    []chaos.Fault
	outcomes   []chaos.CrashOutcome
	outcomeIdx map[int]int

	// quietUntil suppresses solve launches and stall-trigger samples while
	// the fleet absorbs a crash or recovery transient — redispatch spikes
	// are capacity loss, not routing drift.
	quietUntil float64

	recoveries   int
	downtime     float64
	redispatched int
	lostIters    int
	shed         int // requests shed on retry-exhausted fetches

	// retiredStats accumulates the memory-manager counters of crashed
	// replicas (their manager dies with them), so Report.ExpertMem still
	// sums the whole run.
	retiredStats expertmem.Stats
}

func newChaosState(o *Options) *chaosState {
	return &chaosState{
		sched:      o.Chaos.WithDefaults(),
		met:        newChaosMetrics(o.Metrics),
		outcomeIdx: make(map[int]int),
	}
}

// scheduleChaos seeds the event heap with the schedule's crash faults and
// records the degraded-link windows (the per-fetch slowdown itself is
// applied inside expertmem via the LinkFactor hook).
func (s *server) scheduleChaos() {
	ch := s.ch
	ch.crashes = ch.sched.Crashes()
	for i, f := range ch.crashes {
		heap.Push(&s.events, event{t: f.At, kind: evCrash, seq: i})
	}
	for _, f := range ch.sched.Faults {
		if f.Kind != chaos.FaultLinkDegrade {
			continue
		}
		ch.met.degrades.Inc()
		if s.tr != nil {
			s.tr.Emit(obs.Event{Kind: obs.EvLinkDegrade, Rep: -1, GPU: -1, Layer: -1, Expert: -1,
				T: f.At, Dur: f.Duration, Value: f.Factor})
		}
	}
}

// applyChaosHooks installs the schedule's fetch-model hooks on one memory
// manager (no-op without a chaos layer). Called before Warm and Instrument.
func (s *server) applyChaosHooks(mem *expertmem.Manager) {
	if s.ch == nil {
		return
	}
	sc := &s.ch.sched
	if sc.Degraded() {
		mem.SetLinkScale(sc.LinkFactor)
	}
	if sc.FetchTimeout > 0 {
		mem.SetFetchRetry(sc.FetchTimeout, sc.FetchRetries, sc.FetchBackoff)
	}
	if sc.PreemptibleDMA {
		mem.SetPreemptibleDMA(true)
	}
}

// chaosQuiet extends the post-fault quiet window on the controller.
func (s *server) chaosQuiet(now float64) {
	s.ch.quietUntil = max(s.ch.quietUntil, now+2*s.opts.CheckInterval)
}

// onCrash kills a replica: its residency tables and in-flight iteration are
// lost, its queued and active requests re-dispatch to the survivors, and its
// shared-cache references are released. A fault with a recovery schedules it
// (parameter re-copy charged on the clock); one without leaves the slot free
// for the autoscaler to re-commission.
func (s *server) onCrash(now float64, idx int) {
	ch := s.ch
	f := ch.crashes[idx]
	r := s.replicas[f.Replica]
	if !r.live && !r.warming {
		return // dark or already-dead slot: nothing to kill
	}
	wasWarming := r.warming
	// Bump the incarnation: every event the dead replica still has in
	// flight (iteration end, migration stall, warm-up, recovery) is stale.
	r.gen++
	r.live = false
	r.warming = false
	r.draining = false
	r.stalled = false
	lost := 0
	if r.running {
		lost = 1
		r.running = false
	}
	if wasWarming && s.fl != nil {
		s.fl.warming--
	}
	moved := make([]*request, 0, len(r.queue)+len(r.active))
	moved = append(moved, r.queue...)
	moved = append(moved, r.active...)
	r.queue, r.active = nil, nil
	ch.redispatched += len(moved)
	ch.lostIters += lost
	ch.met.crashes.Inc()
	ch.met.redispatch.Add(float64(len(moved)))
	ch.met.lostIters.Add(float64(lost))
	ch.outcomeIdx[f.Replica] = len(ch.outcomes)
	ch.outcomes = append(ch.outcomes, chaos.CrashOutcome{Replica: f.Replica, At: now, Redispatched: len(moved)})
	if s.mems != nil && s.mems[r.id] != nil {
		// The crash destroys the replica's residency tables; keep the dead
		// manager's counters for the run totals.
		ch.retiredStats.Add(s.mems[r.id].Stats())
		s.mems[r.id] = nil
	}
	if s.fl != nil && s.fl.cache != nil {
		s.fl.cache.ReleaseReplica(r.id)
	}
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvCrash, Rep: int32(r.id), GPU: -1, Layer: -1, Expert: -1,
			T: now, Value: float64(len(moved)), Aux: int64(r.id)})
	}
	s.opts.Decisions.Logf(now, "chaos-crash replica=%d redispatched=%d lost-iterations=%d recovery=%v",
		r.id, len(moved), lost, f.Recovers())
	s.chaosQuiet(now)
	if s.pending != nil && s.pending.next == r.id {
		// The dead replica held the rollout baton; pass it on.
		s.advanceRollout(now)
	}
	if f.Recovers() {
		r.crashed = true
		r.crashedAt = now
		s.seq++
		heap.Push(&s.events, event{t: now + f.RecoverAfter + ch.warmup, kind: evRecover,
			rep: r.id, seq: s.seq, gen: r.gen})
	}
	if s.fl != nil {
		s.sampleFleet(now)
	}
	// Hand the dead replica's work to the survivors and kick any idle ones —
	// they may have no event of their own coming.
	s.redispatch(now, moved)
}

// onRecover brings a crashed replica back. Two phases share the event kind:
// the first landing (no memory manager yet) adopts the fleet's placement
// lineage and rebuilds the residency tables with the re-warm surcharge
// charged to the clock (masters the crash dropped from the host cache come
// back from NVMe); once nothing more is owed the replica goes live.
func (s *server) onRecover(now float64, r *replica) {
	ch := s.ch
	pl := s.curPl
	if s.pending != nil && r.id < s.pending.next {
		pl = s.pending.newPl
	}
	if s.mems != nil && s.mems[r.id] == nil {
		r.pl = pl.Clone()
		mem := expertmem.New(s.memCfg)
		if s.fl != nil && s.fl.cache != nil {
			mem.SetHostTier(s.fl.cache, r.id)
		}
		s.applyChaosHooks(mem)
		extra := mem.WarmChargedReplicated(r.pl.Assign, r.pl.Extra, now)
		mem.Instrument(s.opts.Trace, s.opts.Metrics, r.id)
		s.mems[r.id] = mem
		if extra > 0 {
			s.seq++
			heap.Push(&s.events, event{t: now + extra, kind: evRecover, rep: r.id, seq: s.seq, gen: r.gen})
			return
		}
	} else if s.mems == nil {
		r.pl = pl.Clone()
	}
	r.crashed = false
	r.live = true
	down := now - r.crashedAt
	ch.recoveries++
	ch.downtime += down
	if i, ok := ch.outcomeIdx[r.id]; ok {
		ch.outcomes[i].RecoveredAt = now
	}
	ch.met.recoveries.Inc()
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.EvRecover, Rep: int32(r.id), GPU: -1, Layer: -1, Expert: -1,
			T: now, Value: down, Aux: int64(r.id)})
	}
	s.opts.Decisions.Logf(now, "chaos-recover replica=%d downtime=%.3fs", r.id, down)
	// The recovered replica is cold: quiet the controller while its
	// residency refills, for the same reason as the crash transient.
	s.chaosQuiet(now)
	if s.fl != nil {
		s.sampleFleet(now)
	}
	s.start(now, r)
}

// shedFailedRows drops the requests whose tokens hit a retry-exhausted fetch
// this iteration: their weights will never arrive, so they leave the batch
// (graceful degradation) instead of wedging it.
func (s *server) shedFailedRows(now float64, r *replica, rows []int) {
	drop := make(map[int]bool, len(rows))
	for _, i := range rows {
		drop[i] = true
	}
	kept := r.active[:0]
	for i, rq := range r.active {
		if !drop[i] {
			kept = append(kept, rq)
			continue
		}
		rq.shed = true
		s.ch.shed++
		s.ch.met.sheds.Inc()
		if s.tr != nil {
			s.tr.Emit(obs.Event{Kind: obs.EvShed, Rep: int32(r.id), GPU: -1, Layer: -1, Expert: -1,
				T: now, Aux: int64(rq.seq)})
		}
		s.opts.Decisions.Logf(now, "chaos-shed req=%d replica=%d reason=retry-exhausted", rq.seq, r.id)
	}
	r.active = kept
}

// faultReport assembles Report.Faults from the ledger plus the fleet-wide
// fetch failure-model counters.
func (s *server) faultReport(mem *expertmem.Stats) *chaos.Report {
	ch := s.ch
	fr := &chaos.Report{
		Crashes:            ch.outcomes,
		Recoveries:         ch.recoveries,
		DowntimeSeconds:    ch.downtime,
		Redispatched:       ch.redispatched,
		LostIterations:     ch.lostIters,
		LinkDegradeWindows: ch.sched.DegradeWindows(),
		ShedRetryExhausted: ch.shed,
	}
	if mem != nil {
		fr.FetchRetries = mem.FetchRetries
		fr.FetchTimeouts = mem.FetchTimeouts
		fr.RetryExhausted = mem.FetchFailures
		fr.Preemptions = mem.Preemptions
	}
	return fr
}

package serve

import (
	"testing"

	"repro/internal/synth"
)

// Serve-layer replica tests: the router's copy-aware path must be
// deterministic under a fixed seed, and a degree-1 placement carrying an
// allocated-but-empty replica structure must serve bit-identically to the
// canonical nil-Extra representation (the tentpole's end-to-end pin).

// replicatedOpts is testSystem with a few extra expert copies installed and
// tiered memory enabled, so both the engine router and the stall walk
// exercise PickReplica.
func replicatedOpts(t *testing.T) Options {
	t.Helper()
	opts, _ := testSystem(t)
	pl := opts.Placement.Clone()
	for j := 0; j < pl.Layers; j++ {
		e := (j * 5) % pl.Experts
		g := (pl.Assign[j][e] + 1 + j%4) % pl.GPUs
		if !pl.HasCopy(j, e, g) {
			pl.AddReplica(j, e, g)
		}
	}
	if !pl.Replicated() {
		t.Fatal("fixture failed to install any replica")
	}
	opts.Placement = pl
	opts.Oversubscription = 2
	opts.CachePolicy = "affinity"
	rate := nearKneeRate(opts, 0.8, 0.2, 0.5)
	opts.Phases = []Phase{{Name: "steady", Duration: 4, Rate: rate, Dataset: synth.Pile()}}
	return opts
}

func sameReport(t *testing.T, a, b *Report, what string) {
	t.Helper()
	if a.Requests != b.Requests || a.Makespan != b.Makespan || a.Iterations != b.Iterations {
		t.Fatalf("%s: %d/%v/%d vs %d/%v/%d",
			what, a.Requests, a.Makespan, a.Iterations, b.Requests, b.Makespan, b.Iterations)
	}
	for i := range a.Phases {
		if a.Phases[i].P95 != b.Phases[i].P95 || a.Phases[i].P99 != b.Phases[i].P99 {
			t.Fatalf("%s: phase %d percentiles diverged", what, i)
		}
	}
}

func TestServeReplicatedDeterministicReplay(t *testing.T) {
	opts := replicatedOpts(t)
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, a, b, "replicated replay diverged")
	if a.Requests == 0 {
		t.Fatal("replicated run served no requests")
	}
}

func TestServeReplicatedDiffersFromSingleCopy(t *testing.T) {
	// The copy-aware router must actually route through the extra copies:
	// the same traffic under the replicated placement and its single-copy
	// primaries cannot produce an identical makespan by accident.
	opts := replicatedOpts(t)
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	single := opts
	pl := opts.Placement.Clone()
	pl.Extra = nil
	single.Placement = pl
	base, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan == base.Makespan && rep.Phases[0].P95 == base.Phases[0].P95 {
		t.Fatal("replicated run is indistinguishable from single-copy: router never used a copy")
	}
}

func TestServeDegree1EmptyExtraBitIdentical(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Oversubscription = 2
	opts.CachePolicy = "affinity"
	rate := nearKneeRate(opts, 0.8, 0.2, 0.5)
	opts.Phases = []Phase{{Name: "steady", Duration: 4, Rate: rate, Dataset: synth.Pile()}}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	pl := opts.Placement.Clone()
	pl.Extra = make([][][]int, pl.Layers)
	for j := range pl.Extra {
		pl.Extra[j] = make([][]int, pl.Experts)
	}
	opts.Placement = pl
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, a, b, "empty-Extra degree-1 run diverged from nil-Extra")
}

package serve

import (
	"testing"

	"repro/internal/synth"
)

// steadyProgram is a single in-distribution phase at the given load
// fraction of the memory-free capacity knee.
func steadyProgram(o Options, frac, dur float64) []Phase {
	return []Phase{{Name: "steady", Duration: dur, Rate: nearKneeRate(o, frac, 0.2, 0.5), Dataset: synth.Pile()}}
}

func TestServeOversubscription1xAddsNoOverhead(t *testing.T) {
	base, _ := testSystem(t)
	base.Phases = steadyProgram(base, 0.8, 4)

	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	at1x := base
	at1x.Oversubscription = 1
	at1x.CachePolicy = "affinity"
	on, err := Run(at1x)
	if err != nil {
		t.Fatal(err)
	}
	// Every expert fits, so the memory layer must not move a single number:
	// identical makespan and percentiles, zero stall.
	if on.Makespan != off.Makespan || on.Overall.P95 != off.Overall.P95 {
		t.Fatalf("1x memory layer changed timing: makespan %v vs %v, P95 %v vs %v",
			on.Makespan, off.Makespan, on.Overall.P95, off.Overall.P95)
	}
	if on.ExpertMem == nil || on.ExpertMem.StallSeconds != 0 || on.ExpertMem.Misses != 0 {
		t.Fatalf("1x produced paging activity: %+v", on.ExpertMem)
	}
	if off.ExpertMem != nil {
		t.Fatal("disabled memory layer reported stats")
	}
}

func TestServeAffinityPrefetchBeatsLRUAt2x(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Phases = steadyProgram(opts, 0.6, 5)
	opts.Oversubscription = 2

	run := func(policy string) *Report {
		o := opts
		o.CachePolicy = policy
		rep, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ExpertMem == nil || rep.ExpertMem.Accesses == 0 {
			t.Fatalf("%s: no memory activity", policy)
		}
		return rep
	}
	lru := run("lru")
	aff := run("affinity")

	if aff.ExpertMem.Prefetches == 0 || aff.ExpertMem.PrefetchHits == 0 {
		t.Fatalf("affinity prefetcher idle: %+v", aff.ExpertMem)
	}
	if aff.ExpertMem.HitRate() <= lru.ExpertMem.HitRate() {
		t.Fatalf("affinity hit rate %.3f not above lru %.3f",
			aff.ExpertMem.HitRate(), lru.ExpertMem.HitRate())
	}
	if aff.Overall.P95 >= lru.Overall.P95 {
		t.Fatalf("affinity P95 %.4fs not below lru %.4fs", aff.Overall.P95, lru.Overall.P95)
	}
}

func TestServeOversubscribedDeterministicReplay(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Phases = steadyProgram(opts, 0.6, 3)
	opts.Oversubscription = 2
	opts.CachePolicy = "affinity"
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || *a.ExpertMem != *b.ExpertMem {
		t.Fatalf("oversubscribed replay diverged:\n%+v\n%+v", a.ExpertMem, b.ExpertMem)
	}
}

func TestServeMigrationPricesResidencyChurn(t *testing.T) {
	opts, drifted := testSystem(t)
	opts.Adaptive = true
	opts.Oversubscription = 2
	opts.CachePolicy = "affinity"
	rate := nearKneeRate(opts, 0.5, 0.2, 0.5)
	opts.Phases = []Phase{
		{Name: "warm", Duration: 3, Rate: rate, Dataset: synth.Pile()},
		{Name: "drift", Duration: 6, Rate: rate, Dataset: drifted},
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("adaptive oversubscribed fleet never migrated under drift")
	}
	m := rep.Migrations[0]
	if m.ResidencyChurn == 0 || m.ChurnSeconds <= 0 {
		t.Fatalf("migration did not price residency churn: %+v", m)
	}
	if m.Seconds <= m.ChurnSeconds {
		t.Fatalf("pause %v should include parameter copies on top of churn %v", m.Seconds, m.ChurnSeconds)
	}
}

func TestServeMigrationAt1xChurnsNothing(t *testing.T) {
	// At 1x every expert fits: migrations must not be charged any
	// residency-churn refetch (the 1x-adds-no-overhead guarantee extends
	// to the controller's pricing).
	opts, drifted := testSystem(t)
	opts.Adaptive = true
	opts.Oversubscription = 1
	opts.CachePolicy = "affinity"
	opts.Phases = driftProgram(opts, drifted)
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("adaptive fleet never migrated under drift")
	}
	for _, m := range rep.Migrations {
		if m.ResidencyChurn != 0 || m.ChurnSeconds != 0 {
			t.Fatalf("1x migration priced churn: %+v", m)
		}
	}
}

func TestServeValidatesMemoryOptions(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Phases = steadyProgram(opts, 0.5, 1)
	opts.Oversubscription = 0.5
	if _, err := Run(opts); err == nil {
		t.Fatal("fractional oversubscription below 1 accepted")
	}
	opts.Oversubscription = 2
	opts.CachePolicy = "bogus"
	if _, err := Run(opts); err == nil {
		t.Fatal("unknown cache policy accepted")
	}
	opts.Oversubscription = 0
	opts.CachePolicy = "affinity"
	if _, err := Run(opts); err == nil {
		t.Fatal("cache policy without the memory layer accepted")
	}
	opts.CachePolicy = ""
	opts.MemoryAware = true
	if _, err := Run(opts); err == nil {
		t.Fatal("memory-aware re-placement without the memory layer accepted")
	}
	opts.MemoryAware = false
	opts.HostSlots = 32
	// Pinned: an earlier revision silently accepted a HostSlots bound with
	// the memory layer off, leaving the option a no-op.
	if _, err := Run(opts); err == nil {
		t.Fatal("HostSlots without the memory layer accepted")
	}
}

func TestServeMemoryAwareMigrationReportsStallDeltas(t *testing.T) {
	opts, drifted := testSystem(t)
	opts.Adaptive = true
	opts.Oversubscription = 2
	opts.CachePolicy = "affinity"
	opts.MemoryAware = true
	rate := nearKneeRate(opts, 0.5, 0.2, 0.5)
	opts.Phases = []Phase{
		{Name: "warm", Duration: 3, Rate: rate, Dataset: synth.Pile()},
		{Name: "drift", Duration: 6, Rate: rate, Dataset: drifted},
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("memory-aware adaptive fleet never migrated under drift")
	}
	m := rep.Migrations[0]
	if m.PredictedStallDelta == 0 {
		t.Fatalf("memory-aware migration predicted no stall change: %+v", m)
	}
	if m.RealizedStallDelta == 0 {
		t.Fatalf("realized stall delta not filled: %+v", m)
	}
}

func TestServeMemoryAwareAt1xMatchesCrossingOnly(t *testing.T) {
	// At 1x the memory objective is inactive by construction, so the
	// memory-aware controller must reproduce the crossing-only run exactly.
	opts, drifted := testSystem(t)
	opts.Adaptive = true
	opts.Oversubscription = 1
	opts.CachePolicy = "affinity"
	opts.Phases = driftProgram(opts, drifted)
	plain, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.MemoryAware = true
	aware, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != aware.Makespan || plain.Overall.P95 != aware.Overall.P95 {
		t.Fatalf("memory-aware at 1x diverged: makespan %v vs %v, P95 %v vs %v",
			aware.Makespan, plain.Makespan, aware.Overall.P95, plain.Overall.P95)
	}
	if len(plain.Migrations) != len(aware.Migrations) {
		t.Fatalf("migration count diverged: %d vs %d", len(aware.Migrations), len(plain.Migrations))
	}
	for i := range aware.Migrations {
		if aware.Migrations[i].PredictedStallDelta != 0 {
			t.Fatalf("1x migration predicted a stall change: %+v", aware.Migrations[i])
		}
	}
}

package serve

import (
	"testing"

	"repro/internal/rng"
)

// reportServerFixture builds a synthetic end-of-run server state of the given
// size: n requests over ~n/8 iterations with drift/locality/queue series at
// iteration granularity — the shape buildReport sees after a real run,
// without paying for one.
func reportServerFixture(n int) *server {
	r := rng.New(41)
	dur := 40.0
	s := &server{
		opts: Options{
			DecodeTokens:  16,
			LatencyBucket: dur / 80,
			Phases: []Phase{
				{Name: "warm", Duration: dur / 2},
				{Name: "steady", Duration: dur / 2},
			},
		},
		ctrl: &controller{},
	}
	for i := 0; i < n; i++ {
		at := dur * float64(i) / float64(n)
		s.arrivals = append(s.arrivals, &request{
			arrival: at,
			finish:  at + 0.05 + 0.3*r.Float64(),
		})
	}
	iters := n / 8
	for i := 0; i < iters; i++ {
		t := dur * float64(i) / float64(iters)
		s.decoded = append(s.decoded, tick{t: t, n: 8 + r.Intn(24)})
		s.fracT = append(s.fracT, t)
		s.fracY = append(s.fracY, r.Float64())
		s.memSamples = append(s.memSamples, memSample{t: t, stall: 1e-4 * r.Float64(), tokens: 16})
		if i%4 == 0 {
			s.driftT = append(s.driftT, t)
			s.driftY = append(s.driftY, 0.01*r.Float64())
			s.queueT = append(s.queueT, t)
			s.queueY = append(s.queueY, float64(r.Intn(40)))
		}
	}
	s.iterations = iters
	s.migrations = []MigrationEvent{{Time: dur / 2, Completed: dur/2 + 0.1, Seconds: 0.05}}
	return s
}

// BenchmarkBuildReport tracks the report path's allocation count: the
// windowed-percentile and throughput series used to copy and re-sort per
// bucket (stats.Percentile allocates a sorted copy per call; tokensIn
// rescanned every iteration tick per bucket). With in-place bucket sorts
// and an advancing cursor the per-bucket allocations are gone — the alloc
// budget below pins the reduction.
func BenchmarkBuildReport(b *testing.B) {
	s := reportServerFixture(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.buildReport()
	}
}

func TestBuildReportAllocBudget(t *testing.T) {
	// The pre-reuse report path allocated a sorted copy per series bucket:
	// 256 objects/run at this fixture size vs 166 with in-place sorts and
	// cursor-based bucketing. The budget sits between the two so a
	// reintroduced per-bucket copy fails loudly.
	s := reportServerFixture(4096)
	allocs := testing.AllocsPerRun(10, func() { _ = s.buildReport() })
	const budget = 200
	if allocs > budget {
		t.Fatalf("buildReport allocates %.0f objects/run, budget %d — per-bucket scratch reuse regressed", allocs, budget)
	}
}

package serve

import (
	"repro/internal/expertmem"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/topo"
)

// MigrationEvent records one live re-placement: when the controller fired,
// what it cost, and what it predicted the new placement would buy.
type MigrationEvent struct {
	// SolveStarted is the simulated second the drift detector fired and the
	// background re-solve began; SolveSeconds is how long the solve
	// overlapped serving on the simulated clock (Options.SolveSeconds).
	// The fleet keeps decoding throughout — solve time is overlap, never
	// pause, and is deliberately not part of Seconds below.
	SolveStarted float64
	SolveSeconds float64
	// Time is the simulated second the controller decided to migrate (the
	// background solve finished and cleared the staleness and MinGain
	// gates).
	Time float64
	// Completed is when the last replica finished its parameter copy.
	Completed float64
	// Score is the drift divergence that triggered the re-solve.
	Score float64
	// Moves / CrossNodeMoves count relocated experts (after canonicalization).
	Moves, CrossNodeMoves int
	// Seconds is the per-replica serving pause charged to the simulated
	// clock while that replica's expert parameters are copied (including
	// ChurnSeconds when tiered expert memory is on). Solve time is never
	// included — see SolveSeconds.
	Seconds float64
	// PredictedGain is the fractional reduction in live-window crossings the
	// re-solved placement promises (1 - fresh/stale).
	PredictedGain float64
	// PredictedStallDelta is the memory-aware objective's predicted
	// reduction in expert-stall seconds per token (stale minus fresh
	// placement, positive = improvement); zero unless Options.MemoryAware
	// priced the re-solve. RealizedStallDelta is the measured counterpart —
	// charged stall per token before the migration began minus after it
	// completed — filled into the report once post-migration traffic has
	// been observed.
	PredictedStallDelta float64
	RealizedStallDelta  float64
	// ResidencyChurn counts HBM-resident expert copies the migration
	// invalidates under tiered expert memory; ChurnSeconds is the host-link
	// refetch cost of restoring them, priced into Seconds. Both zero when
	// the memory layer is off.
	ResidencyChurn int
	ChurnSeconds   float64
	// Trigger records what fired the re-solve: "drift" (the transition
	// distribution moved) or "stall" (Options.StallTrigger saw the charged
	// stall rate trend up at a stable routing mix).
	Trigger string
}

// pendingMigration sequences a rolling re-placement across replicas: only
// the replica whose index equals next is stalled at any time, so the rest of
// the fleet keeps serving while parameters move.
type pendingMigration struct {
	newPl *placement.Placement
	event *MigrationEvent
	next  int
	// invalidated marks that the node-level shared host cache has already
	// dropped the moved experts' master copies (done once, on the first
	// replica's install — the canonical weights changed for the whole node).
	invalidated bool
}

// pendingSolve is a background re-solve in flight: the controller snapshots
// the live window, hands the solve to a goroutine, and the server charges
// Options.SolveSeconds to the simulated clock as overlap — the fleet keeps
// serving while the solver runs, exactly as a production control plane
// would re-solve off the serving path.
type pendingSolve struct {
	// started / score are the drift observation that launched the solve.
	started float64
	score   float64
	// pooled is the window's pooled transition distribution at solve start:
	// the staleness reference. If the live distribution drifts past the
	// detector threshold again while the solve runs, the solution answers a
	// stale question and is discarded.
	pooled [][]float64
	// counts is the deep-copied window snapshot the solve runs on.
	counts [][][]float64
	// trigger is what launched the solve ("drift" or "stall").
	trigger string
	// mo is the memory objective priced into the solve (nil when off).
	mo *placement.MemoryObjective
	// wall is the host wall-clock seconds the solve actually took, measured
	// by the solver goroutine via Metrics.Now (0 when no registry). Written
	// before the result send, read after the receive.
	wall float64
	// result delivers the solved placement; the channel is buffered so the
	// solver goroutine never blocks on a consumer.
	result chan *placement.Placement
}

// controller is the background re-placement loop: it watches the live
// TraceWindow through a drift Detector and, when drift persists, snapshots
// the window, re-solves the placement on the snapshot in a background
// goroutine (observe), and — once the solve's simulated latency has elapsed
// — prices the migration and hands the server a rolling migration plan
// (complete). The FPTAS-for-ISSP lineage motivates treating this as an
// incremental budgeted step — canonicalization keeps the move set
// near-minimal and MinGain rejects re-solves that would churn parameters
// for marginal benefit.
type controller struct {
	opts   *Options
	window *TraceWindow
	det    *Detector

	// churn, when set (tiered expert memory on), prices the HBM residency a
	// move set would invalidate: count and refetch seconds.
	churn func([]placement.Move) (int, float64)

	// met caches the controller's metric handles (zero value when metrics
	// are off). wallSum/wallCount accumulate measured solve walls for the
	// AutoSolveSeconds running-mean estimate.
	met       serveMetrics
	wallSum   float64
	wallCount int

	cooldownUntil float64
	solves        int
	discards      int

	// Stall-rate trigger state (Options.StallTrigger): the latest charged
	// stall rate handed in by noteStall, the minimum observed since the last
	// migration/reject (the healthy reference), and how many samples that
	// minimum rests on (warm-up guard against firing off the first noisy
	// observations).
	stallPending bool
	stallRate    float64
	stallMin     float64
	stallSamples int
}

// stallTriggerWarm is how many stall-rate samples must back the observed
// minimum before the trigger may fire; stallTriggerFloor is the absolute
// rise (seconds per token) below which ratios are considered noise.
const (
	stallTriggerWarm  = 3
	stallTriggerFloor = 1e-4
)

// noteStall feeds the controller one observation of the charged expert-stall
// seconds per token; the next observe consumes it.
func (c *controller) noteStall(rate float64) {
	c.stallPending = true
	c.stallRate = rate
}

func newController(opts *Options, window *TraceWindow, baseline [][]float64) *controller {
	return &controller{
		opts:   opts,
		window: window,
		det:    NewDetector(opts.Metric, opts.DriftThreshold, opts.Patience, baseline),
		met:    newServeMetrics(opts.Metrics),
	}
}

// solveEstimate is the AutoSolveSeconds latency estimate: the running mean
// of measured solve walls, or SolveSecondsPrior before any solve completed.
func (c *controller) solveEstimate() float64 {
	if c.wallCount > 0 {
		return c.wallSum / float64(c.wallCount)
	}
	return c.opts.SolveSecondsPrior
}

// observe scores the live window and, when the detector fires under the
// controller's gating conditions, snapshots the window and launches a
// background re-solve, returning its handle (nil otherwise). busy indicates
// a migration or another solve is already in flight.
func (c *controller) observe(now float64, cur *placement.Placement, busy bool) (float64, *pendingSolve) {
	// Pooled allocates a fresh matrix; one call serves both the detector
	// score and (below) the staleness snapshot — Observe does not retain it.
	pooled := c.window.Pooled()
	score, fired := c.det.Observe(pooled)
	dl := c.opts.Decisions
	if !c.opts.Adaptive {
		return score, nil
	}
	trigger := "drift"
	if c.stallPending {
		// Stall-rate trigger (ROADMAP 3d): residency decay raises the charged
		// stall per token even when the transition distribution — all the
		// drift detector can see — stays put. Track the healthy minimum and
		// fire a re-solve when the live rate rises well clear of it.
		rate := c.stallRate
		c.stallPending = false
		c.stallSamples++
		if c.stallMin == 0 || rate < c.stallMin {
			c.stallMin = rate
		}
		if !fired && c.stallSamples > stallTriggerWarm &&
			rate > c.opts.StallTriggerFactor*c.stallMin && rate-c.stallMin > stallTriggerFloor {
			fired = true
			trigger = "stall"
			dl.Logf(now, "stall-trigger rate=%.6fs/token min=%.6fs/token factor=%.2f",
				rate, c.stallMin, c.opts.StallTriggerFactor)
		}
	}
	switch {
	case busy:
		dl.Logf(now, "skip-busy drift=%.4f (solve or migration in flight)", score)
		return score, nil
	case !fired:
		dl.Logf(now, "observe drift=%.4f threshold=%.4f fired=false", score, c.opts.DriftThreshold)
		return score, nil
	}
	if fill := c.window.Fill(); fill < c.opts.MinFill {
		dl.Logf(now, "skip-fill drift=%.4f fill=%.2f<%.2f", score, fill, c.opts.MinFill)
		return score, nil
	}
	if now < c.cooldownUntil {
		dl.Logf(now, "skip-cooldown drift=%.4f cooldown-until=%.3fs", score, c.cooldownUntil)
		return score, nil
	}
	counts := c.window.Snapshot()
	c.solves++
	c.met.solves.Inc()
	// Under memory-aware re-placement the solver prices expected expert
	// stall alongside crossings, with the live window as the demand oracle —
	// the once-optimal hot-set split decays with routing drift exactly like
	// the crossing structure does.
	mo := c.memObjective(cur, counts)
	ps := &pendingSolve{
		started: now,
		score:   score,
		pooled:  pooled,
		counts:  counts,
		mo:      mo,
		trigger: trigger,
		result:  make(chan *placement.Placement, 1),
	}
	seed := c.opts.Seed + uint64(c.solves)*0x51ED
	layers, experts := cur.Layers, cur.Experts
	tp, workers := c.opts.Topo, c.opts.SolveWorkers
	reg := c.opts.Metrics
	if tr := c.opts.Trace; tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvSolveStart, Rep: -1, GPU: -1, Layer: -1, Expert: -1, T: now, Value: score})
	}
	dl.Logf(now, "solve-launch drift=%.4f window-fill=%.2f workers=%d memory-aware=%v trigger=%s",
		score, c.window.Fill(), workers, mo.Active(), trigger)
	go func() {
		t0 := reg.Now()
		pl := placement.StagedOpt(counts, layers, experts, tp, seed,
			placement.StagedOptions{Memory: mo, Workers: workers, Obs: reg, ReplicaBudget: c.opts.ReplicaBudget})
		ps.wall = reg.Now() - t0
		ps.result <- pl
	}()
	return score, ps
}

// complete collects a finished background solve: it applies the staleness
// guard, prices the candidate placement against the snapshot it was solved
// on, and returns a migration plan — or nil when the solve is discarded
// (stale) or rejected (below MinGain).
func (c *controller) complete(now float64, cur *placement.Placement, ps *pendingSolve) *pendingMigration {
	fresh := <-ps.result
	c.wallSum += ps.wall
	c.wallCount++
	c.met.solverWall.Observe(ps.wall)
	dl := c.opts.Decisions
	tr := c.opts.Trace
	// Staleness guard: if routing drifted past the detector threshold again
	// while the solve ran, the solution optimizes a distribution that no
	// longer exists. Discard it — the detector streak is still hot, so the
	// next drift check launches a new solve on the fresher window.
	if div := Divergence(c.opts.Metric, ps.pooled, c.window.Pooled()); div > c.opts.DriftThreshold {
		c.discards++
		c.met.discards.Inc()
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.EvSolveDiscard, Rep: -1, GPU: -1, Layer: -1, Expert: -1, T: now, Value: div})
		}
		dl.Logf(now, "solve-discard staleness=%.4f>threshold=%.4f (window moved while solving; overlap=%.3fs)",
			div, c.opts.DriftThreshold, now-ps.started)
		return nil
	}
	canon := placement.CanonicalizeTopo(cur, fresh, c.opts.Topo.GPUsPerNode)
	// Gain is measured in modeled per-token service time, the quantity the
	// queue actually feels — not raw crossings, which weight an NVLink hop
	// the same as an IB hop. The memory-aware term adds each placement's
	// predicted stall per token on top of the hop cost.
	gain := 0.0
	staleStall, freshStall := ps.mo.StallPerToken(cur), ps.mo.StallPerToken(canon)
	staleCost := c.perTokenCost(ps.counts, cur) + staleStall
	freshCost := c.perTokenCost(ps.counts, canon) + freshStall
	if staleCost > 0 {
		gain = 1 - freshCost/staleCost
	}
	if gain < c.opts.MinGain {
		// Not worth the parameter traffic; back off before re-solving again.
		c.cooldownUntil = now + c.opts.Cooldown
		c.det.Rebase(c.det.baseline) // clear the hot streak, keep the baseline
		c.stallMin, c.stallSamples = 0, 0
		c.met.rejects.Inc()
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.EvSolveReject, Rep: -1, GPU: -1, Layer: -1, Expert: -1, T: now, Value: gain})
		}
		dl.Logf(now, "solve-reject gain=%.4f<mingain=%.4f (stale=%.6fs/token fresh=%.6fs/token) cooldown-until=%.3fs",
			gain, c.opts.MinGain, staleCost, freshCost, c.cooldownUntil)
		return nil
	}
	// Price exactly the placement being installed (PriceMigration would
	// re-canonicalize and could plan for a different relabeling).
	plan := placement.PriceMoves(placement.Diff(cur, canon), c.opts.Topo, c.opts.ExpertBytes)
	ev := &MigrationEvent{
		SolveStarted:        ps.started,
		SolveSeconds:        now - ps.started,
		Time:                now,
		Score:               ps.score,
		Moves:               len(plan.Moves),
		CrossNodeMoves:      plan.CrossNodeMoves,
		Seconds:             plan.Seconds,
		PredictedGain:       gain,
		PredictedStallDelta: staleStall - freshStall,
		Trigger:             ps.trigger,
	}
	if c.churn != nil {
		// Under oversubscription the migration does not just copy
		// parameters: it destroys the HBM residency of every moved expert,
		// and each replica refills that hot set before serving at speed
		// again. Charge the refetch to the pause so the event prices the
		// full cost of churn.
		ev.ResidencyChurn, ev.ChurnSeconds = c.churn(plan.Moves)
		if ps.mo.Active() {
			// Occupancy-weighted re-warm (ROADMAP 3b): the flat
			// resident-count hook above charges a full refetch for every
			// moved expert that happened to be resident, but an expert the
			// destination's residency table would mostly not hold re-warms
			// almost for free — its misses are already priced into the
			// steady-state stall. Weight each arrival's fetch by its
			// steady-state occupancy at the destination under the selected
			// residency model (Che fractional occupancy or static warm-set
			// membership); keep the hook's churn count as the invalidation
			// tally.
			ev.ChurnSeconds = ps.mo.RewarmSeconds(canon, plan.Moves)
		}
		ev.Seconds += ev.ChurnSeconds
	}
	if tr != nil {
		// The solve span covers the whole overlap window (launch to accept) on
		// the controller track; Value carries the predicted gain, Aux the move
		// count of the plan being installed.
		tr.Emit(obs.Event{Kind: obs.EvSolve, Rep: -1, GPU: -1, Layer: -1, Expert: -1,
			T: ps.started, Dur: now - ps.started, Value: gain, Aux: int64(ev.Moves)})
	}
	c.met.predStallDelta.Set(ev.PredictedStallDelta)
	dl.Logf(now, "solve-accept gain=%.4f>=mingain=%.4f moves=%d cross-node=%d pause/replica=%.3fms pred-stall-delta=%.6fs/token churn=%d",
		gain, c.opts.MinGain, ev.Moves, ev.CrossNodeMoves, ev.Seconds*1e3, ev.PredictedStallDelta, ev.ResidencyChurn)
	return &pendingMigration{newPl: canon, event: ev}
}

// memObjective builds the memory-aware placement objective over the live
// window counts, or nil when memory-aware re-placement is off. At
// oversubscription 1 the objective is built but inactive, keeping the
// re-solve bit-identical to the crossing-only path. The objective carries
// Options.ResidencyModel, so both the solve and the migration's
// PredictedStallDelta price residency with the selected model.
func (c *controller) memObjective(cur *placement.Placement, counts [][][]float64) *placement.MemoryObjective {
	if !c.opts.MemoryAware || c.opts.Oversubscription == 0 {
		return nil
	}
	return residencyObjective(c.opts, cur.Layers, cur.Experts, counts)
}

// residencyObjective builds the residency-pricing oracle shared by the
// controller's memory-aware re-solves and the fleet tier's paging admission:
// the given transition counts as the demand oracle, Options.ResidencyModel
// (static or Che) as the occupancy model.
func residencyObjective(o *Options, layers, experts int, counts [][][]float64) *placement.MemoryObjective {
	if o.Oversubscription == 0 {
		return nil
	}
	pol, err := expertmem.ParsePolicy(o.CachePolicy)
	if err != nil {
		return nil // Validate already rejected this; belt and braces
	}
	model, err := placement.ParseResidencyModel(o.ResidencyModel)
	if err != nil {
		return nil // ditto
	}
	cfg := expertmem.ConfigFor(o.Topo, layers, experts, o.ExpertBytes,
		o.Oversubscription, pol, o.PrefetchK, o.HostSlots, counts)
	mo := placement.NewMemoryObjective(cfg, o.Cost.PerCrossHop)
	mo.Model = model
	// Serving is bulk-synchronous over MaxBatch-token iterations: a batch
	// demands each expert at most once per layer, so the per-token demand
	// oracle overstates residency churn by up to the batch size. Deflate it
	// (ROADMAP 3a) so both residency models price what the residency table
	// actually sees.
	mo.DeflateBatch(o.MaxBatch)
	return mo
}

// perTokenCost evaluates the cost model's per-token service time for a
// placement against a transition-count tensor: the count-weighted same-node
// and cross-node transition fractions plugged into the fitted coefficients.
func (c *controller) perTokenCost(counts [][][]float64, pl *placement.Placement) float64 {
	var node, cross, total float64
	gpn := c.opts.Topo.GPUsPerNode
	replicated := pl.Replicated()
	for j := range counts {
		for from := range counts[j] {
			gFrom := pl.GPUOf(j, from)
			for to, w := range counts[j][from] {
				if w == 0 {
					continue
				}
				total += w
				if replicated {
					// Optimistic replica routing: the transition lands on the
					// closest copy pair, matching the solver's replicated
					// crossing model.
					switch pl.TransitionHop(j, from, to, gpn) {
					case int(topo.SameNode):
						node += w
					case int(topo.CrossNode):
						cross += w
					}
					continue
				}
				switch c.opts.Topo.Classify(gFrom, pl.GPUOf(j+1, to)) {
				case topo.SameNode:
					node += w
				case topo.CrossNode:
					cross += w
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	m := c.opts.Cost
	return m.PerToken + m.PerNodeHop*node/total + m.PerCrossHop*cross/total
}

// finish is called when the last replica adopted the new placement: the live
// distribution becomes the new baseline and the cooldown window opens.
func (c *controller) finish(now float64) {
	c.det.Rebase(c.window.Pooled())
	c.cooldownUntil = now + c.opts.Cooldown
	// The migrated placement resets the stall reference: the post-migration
	// rate is the new healthy minimum.
	c.stallMin, c.stallSamples = 0, 0
}

package serve

import (
	"math"
	"testing"

	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testSystem builds a serving system without the engine: kernel, staged
// placement from a pile profile, and a hand-set locality cost model of
// engine-like magnitude.
func testSystem(t *testing.T) (Options, *synth.DatasetProfile) {
	t.Helper()
	tp := topo.ForGPUs(8) // 2 nodes x 4 GPUs
	k := synth.NewKernel(synth.KernelParams{
		Seed: 0xBEEF, Layers: 12, Experts: 32, Strength: 0.85, DomainTilt: 8,
	})
	pile := synth.Pile()
	tr := trace.Collect(synth.NewKernelRouter(k, pile, 1), k.Layers, trace.SequentialIDs(2500, pile.TokenID))
	counts := tr.AllTransitionCounts()
	pl := placement.Staged(counts, k.Layers, k.Experts, tp, 5)
	cost := workload.LocalityModel{Fixed: 500e-6, PerToken: 5e-6, PerNodeHop: 1e-6, PerCrossHop: 4e-6}
	opts := Options{
		Topo:           tp,
		Kernel:         k,
		Placement:      pl,
		BaselineCounts: counts,
		Cost:           cost,
		ExpertBytes:    16 << 20,
		Replicas:       2,
		MaxBatch:       32,
		DecodeTokens:   16,
		Window:         2048,
		// The fixture's pooled sample mass (2048 paths x 11 layer pairs) puts
		// the JS noise floor near 0.011 and the drifted signal near 0.05.
		DriftThreshold: 0.02,
		Seed:           9,
	}
	drifted := synth.Custom("drifted", []float64{0, 0, 0, 0, 1, 0}, 0xD81F)
	return opts, drifted
}

// nearKneeRate returns a request rate at the given fraction of the fleet's
// modeled capacity.
func nearKneeRate(o Options, frac, fracNode, fracCross float64) float64 {
	perReplica := float64(o.MaxBatch) / o.Cost.Time(o.MaxBatch, fracNode, fracCross)
	return frac * perReplica * float64(o.Replicas) / float64(o.DecodeTokens)
}

// driftProgram is the shared two-phase traffic program.
func driftProgram(o Options, drifted *synth.DatasetProfile) []Phase {
	rate := nearKneeRate(o, 0.95, 0.2, 0.5)
	return []Phase{
		{Name: "warm", Duration: 3, Rate: rate, Dataset: synth.Pile()},
		{Name: "drift", Duration: 6, Rate: rate, Dataset: drifted},
	}
}

func TestServeDeterministicReplay(t *testing.T) {
	opts, drifted := testSystem(t)
	opts.Adaptive = true
	opts.Phases = driftProgram(opts, drifted)
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != b.Requests || a.Makespan != b.Makespan || a.Iterations != b.Iterations {
		t.Fatalf("replay diverged: %d/%v/%d vs %d/%v/%d",
			a.Requests, a.Makespan, a.Iterations, b.Requests, b.Makespan, b.Iterations)
	}
	for i := range a.Phases {
		if a.Phases[i].P95 != b.Phases[i].P95 || a.Phases[i].P99 != b.Phases[i].P99 {
			t.Fatalf("phase %d percentiles diverged", i)
		}
	}
	if len(a.Migrations) != len(b.Migrations) {
		t.Fatalf("migration count diverged: %d vs %d", len(a.Migrations), len(b.Migrations))
	}
	for i := range a.Migrations {
		if a.Migrations[i] != b.Migrations[i] {
			t.Fatalf("migration %d diverged: %+v vs %+v", i, a.Migrations[i], b.Migrations[i])
		}
	}
}

func TestServeQuietInDistribution(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Adaptive = true
	rate := nearKneeRate(opts, 0.8, 0.2, 0.5)
	opts.Phases = []Phase{{Name: "steady", Duration: 6, Rate: rate, Dataset: synth.Pile()}}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != 0 {
		t.Fatalf("in-distribution traffic must not trigger re-placement, got %d", len(rep.Migrations))
	}
	if rep.Drift.Len() == 0 {
		t.Fatal("drift series missing")
	}
	if max := maxY(rep.Drift); max > 0.02 {
		t.Fatalf("in-distribution drift score %v above threshold", max)
	}
	if rep.Overall.Requests != rep.Requests || rep.Requests == 0 {
		t.Fatalf("request accounting wrong: %d vs %d", rep.Overall.Requests, rep.Requests)
	}
}

func TestServeAdaptiveRecoversUnderDrift(t *testing.T) {
	opts, drifted := testSystem(t)
	opts.Phases = driftProgram(opts, drifted)

	opts.Adaptive = false
	static, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Adaptive = true
	adaptive, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	if len(static.Migrations) != 0 {
		t.Fatal("static server must never migrate")
	}
	if len(adaptive.Migrations) == 0 {
		t.Fatal("adaptive server should have re-placed under drift")
	}
	mig := adaptive.Migrations[0]
	if mig.Time < 3 {
		t.Fatalf("migration at %v fired before the drift began", mig.Time)
	}
	if mig.Seconds <= 0 || mig.Moves == 0 {
		t.Fatalf("migration should cost something: %+v", mig)
	}

	// After recovery the adaptive fleet's cross-node fraction must sit below
	// the static fleet's, and its tail latency must be no worse.
	tail0, tail1 := mig.Completed+1, 9.0
	if avgIn(adaptive.CrossFrac, tail0, tail1) >= avgIn(static.CrossFrac, tail0, tail1) {
		t.Fatalf("re-placement did not reduce live cross-node dispatch: %v vs %v",
			avgIn(adaptive.CrossFrac, tail0, tail1), avgIn(static.CrossFrac, tail0, tail1))
	}
	at, st := adaptive.WindowStats(tail0, tail1), static.WindowStats(tail0, tail1)
	if at.Requests == 0 || st.Requests == 0 {
		t.Fatal("tail windows empty")
	}
	if at.P95 > st.P95 {
		t.Fatalf("adaptive tail P95 %v worse than static %v", at.P95, st.P95)
	}
	// The parameter-copy pause must be visible: the window spanning the
	// migration shows a higher P95 than the warm phase.
	pause := adaptive.WindowStats(mig.Time-0.5, mig.Completed+0.5)
	if pause.P95 <= adaptive.Phases[0].P95 {
		t.Fatalf("migration pause invisible: %v vs warm %v", pause.P95, adaptive.Phases[0].P95)
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("empty options must fail")
	}
	opts, _ := testSystem(t)
	opts.Phases = []Phase{{Name: "bad", Duration: 1, Rate: 0, Dataset: synth.Pile()}}
	if _, err := Run(opts); err == nil {
		t.Fatal("zero-rate phase must fail")
	}
	opts, _ = testSystem(t)
	opts.Phases = []Phase{{Name: "ok", Duration: 1, Rate: 10, Dataset: synth.Pile()}}
	opts.ExpertBytes = 0
	if _, err := Run(opts); err == nil {
		t.Fatal("missing expert bytes must fail")
	}
}

func TestArrivalProcessesMeanRate(t *testing.T) {
	for _, kind := range []ArrivalKind{Poisson, Bursty, Diurnal} {
		p := Phase{Name: kind.String(), Duration: 50, Rate: 200, Kind: kind, Dataset: synth.Pile()}
		// The on/off process has heavy per-seed variance; average a few
		// independent streams to test the long-run rate.
		total := 0
		for seed := uint64(1); seed <= 5; seed++ {
			times := generateArrivals(rngFor(seed), p, 0)
			total += len(times)
			for i := 1; i < len(times); i++ {
				if times[i] < times[i-1] {
					t.Fatalf("%s: arrivals not sorted", kind)
				}
			}
			if len(times) > 0 && times[len(times)-1] >= p.Duration {
				t.Fatalf("%s: arrival beyond phase end", kind)
			}
		}
		got := float64(total) / (5 * p.Duration)
		if math.Abs(got-p.Rate)/p.Rate > 0.2 {
			t.Fatalf("%s: mean rate %v too far from %v", kind, got, p.Rate)
		}
	}
}

// Helpers.

func rngFor(seed uint64) *rng.RNG { return rng.New(rng.Mix64(seed, 0xA881)) }

func maxY(s *stats.Series) float64 {
	m := 0.0
	for _, y := range s.Y {
		if y > m {
			m = y
		}
	}
	return m
}

func avgIn(s *stats.Series, t0, t1 float64) float64 {
	sum, n := 0.0, 0
	for i, x := range s.X {
		if x >= t0 && x < t1 {
			sum += s.Y[i]
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

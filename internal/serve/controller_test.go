package serve

import (
	"math"
	"testing"

	"repro/internal/placement"
	"repro/internal/synth"
	"repro/internal/trace"
)

// controllerFixture builds a controller over a window filled with drifted
// traffic, so the detector is hot and only the gating logic decides whether
// a plan is returned.
func controllerFixture(t *testing.T, minGain float64) (*controller, *placement.Placement, Options) {
	t.Helper()
	opts, drifted := testSystem(t)
	opts.Adaptive = true
	opts.MinGain = minGain
	opts = opts.withDefaults()

	window := NewTraceWindow(opts.Kernel.Layers, opts.Kernel.Experts, opts.Window)
	router := synth.NewKernelRouter(opts.Kernel, drifted, 1)
	ids := trace.SequentialIDs(opts.Window, drifted.TokenID)
	tr := trace.Collect(router, opts.Kernel.Layers, ids)
	for _, path := range tr.Paths {
		p := make([]int, len(path))
		for i, e := range path {
			p[i] = int(e)
		}
		window.Push(p)
	}
	ctrl := newController(&opts, window, poolCounts(opts.BaselineCounts, opts.Kernel.Experts))
	return ctrl, opts.Placement.Clone(), opts
}

// solveAndComplete drives the two-phase observe/complete flow until the
// detector fires, completing the background solve solveLatency simulated
// seconds after it started. Returns the plan (nil when discarded/rejected)
// and the drift score that launched the solve.
func solveAndComplete(ctrl *controller, cur *placement.Placement, patience int, solveLatency float64) (*pendingMigration, float64) {
	for i := 0; i < patience+1; i++ {
		score, solve := ctrl.observe(float64(i), cur, false)
		if solve != nil {
			return ctrl.complete(solve.started+solveLatency, cur, solve), score
		}
	}
	return nil, 0
}

func TestControllerAcceptsWhenGainClearsMinGain(t *testing.T) {
	ctrl, cur, opts := controllerFixture(t, 0.01)
	plan, score := solveAndComplete(ctrl, cur, opts.Patience, 0)
	if plan == nil {
		t.Fatalf("drifted window (score %v) produced no plan", score)
	}
	ev := plan.event
	if ev.Moves == 0 || ev.Seconds <= 0 {
		t.Fatalf("plan prices nothing: %+v", ev)
	}
	if ev.PredictedGain < opts.MinGain {
		t.Fatalf("accepted gain %v below MinGain %v", ev.PredictedGain, opts.MinGain)
	}
	if ev.Score != score {
		t.Fatalf("event score %v != observed %v", ev.Score, score)
	}
	// The planned placement must stay valid and differ from the current one.
	if err := plan.newPl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(placement.Diff(cur, plan.newPl)) != ev.Moves {
		t.Fatal("event move count does not match the installed diff")
	}
}

func TestControllerRejectsBelowMinGainAndCoolsDown(t *testing.T) {
	// An impossible gain requirement: every re-solve is rejected and the
	// rejection opens a cooldown window.
	ctrl, cur, opts := controllerFixture(t, 0.99)
	plan, _ := solveAndComplete(ctrl, cur, opts.Patience, 0)
	if plan != nil {
		t.Fatalf("gain cannot clear MinGain=0.99, yet got a plan: %+v", plan.event)
	}
	if ctrl.solves == 0 {
		t.Fatal("controller never re-solved, so MinGain gating was not exercised")
	}
	if ctrl.cooldownUntil <= 0 {
		t.Fatal("rejected re-solve must open a cooldown window")
	}
	// Inside the cooldown the controller must not even re-solve.
	solves := ctrl.solves
	for i := 0; i < opts.Patience+2; i++ {
		if _, p := ctrl.observe(float64(opts.Patience)+0.1*float64(i), cur, false); p != nil {
			t.Fatal("plan produced during cooldown")
		}
	}
	if ctrl.solves != solves {
		t.Fatal("controller re-solved during cooldown")
	}
}

func TestControllerGatesOnBusyAndFill(t *testing.T) {
	ctrl, cur, opts := controllerFixture(t, 0.01)
	// busy: a migration in flight suppresses new plans.
	for i := 0; i < opts.Patience+2; i++ {
		if _, p := ctrl.observe(float64(i), cur, true); p != nil {
			t.Fatal("plan produced while a migration is in flight")
		}
	}
	// Adaptive off: score still reported, never a plan.
	ctrl2, cur2, opts2 := controllerFixture(t, 0.01)
	ctrl2.opts.Adaptive = false
	for i := 0; i < opts2.Patience+2; i++ {
		score, p := ctrl2.observe(float64(i), cur2, false)
		if p != nil {
			t.Fatal("static controller returned a plan")
		}
		if score <= 0 {
			t.Fatal("score not reported")
		}
	}
}

func TestRollingMigrationPauseAccounting(t *testing.T) {
	// End to end: during a rolling migration only one replica stalls at a
	// time, so the fleet-wide completion spans at least Replicas stalls and
	// every replica keeps its own pause.
	opts, drifted := testSystem(t)
	opts.Adaptive = true
	opts.Phases = driftProgram(opts, drifted)
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("no migration to audit")
	}
	for _, m := range rep.Migrations {
		if m.Completed < m.Time+float64(opts.Replicas)*m.Seconds {
			t.Fatalf("rolling migration too fast: decided %v, done %v, %d replicas x %vs pause",
				m.Time, m.Completed, opts.Replicas, m.Seconds)
		}
		if m.ChurnSeconds != 0 || m.ResidencyChurn != 0 {
			t.Fatalf("churn priced without a memory layer: %+v", m)
		}
	}
}

func TestControllerStalenessGuardDiscardsDriftedSolve(t *testing.T) {
	// A solve that finishes after the routing mix has moved again answers a
	// stale question: complete must discard it instead of migrating.
	ctrl, cur, opts := controllerFixture(t, 0.01)
	var solve *pendingSolve
	for i := 0; i < opts.Patience+1 && solve == nil; i++ {
		_, solve = ctrl.observe(float64(i), cur, false)
	}
	if solve == nil {
		t.Fatal("drifted window launched no solve")
	}
	// While the solve "runs", the live mixture shifts again: overwrite the
	// window with traffic from a different domain than the snapshot saw.
	shifted := synth.Custom("shifted-again", []float64{1, 0, 0, 0, 0, 0}, 0x517)
	router := synth.NewKernelRouter(opts.Kernel, shifted, 1)
	tr := trace.Collect(router, opts.Kernel.Layers, trace.SequentialIDs(ctrl.window.Capacity(), shifted.TokenID))
	for _, path := range tr.Paths {
		p := make([]int, len(path))
		for i, e := range path {
			p[i] = int(e)
		}
		ctrl.window.Push(p)
	}
	if plan := ctrl.complete(solve.started+2, cur, solve); plan != nil {
		t.Fatalf("stale solve was installed: %+v", plan.event)
	}
	if ctrl.discards != 1 {
		t.Fatalf("discards = %d, want 1", ctrl.discards)
	}
	// A discard must not open a cooldown: the detector streak is still hot
	// and the next observation should be free to launch a fresh solve.
	if ctrl.cooldownUntil > 0 {
		t.Fatal("discard opened a cooldown window")
	}
	if _, again := ctrl.observe(solve.started+3, cur, false); again == nil {
		t.Fatal("controller could not re-solve after a discard")
	}
}

func TestControllerSolveOverlapNotChargedToPause(t *testing.T) {
	// The migration pause must price exactly the parameter copy (plus
	// residency churn when present) — never the solve latency, which the
	// fleet overlapped with serving. A solve completing 3 simulated seconds
	// after launch must yield the same pause as an instantaneous one.
	ctrl, cur, opts := controllerFixture(t, 0.01)
	var solve *pendingSolve
	for i := 0; i < opts.Patience+1 && solve == nil; i++ {
		_, solve = ctrl.observe(float64(i), cur, false)
	}
	if solve == nil {
		t.Fatal("drifted window launched no solve")
	}
	const latency = 3.0
	plan := ctrl.complete(solve.started+latency, cur, solve)
	if plan == nil {
		t.Fatal("solve rejected")
	}
	ev := plan.event
	if ev.SolveStarted != solve.started || ev.SolveSeconds != latency {
		t.Fatalf("overlap accounting: started %v (want %v), solve %v (want %v)",
			ev.SolveStarted, solve.started, ev.SolveSeconds, latency)
	}
	// Re-price the installed move set independently: the pause must equal
	// the parameter-copy cost alone (no churn hook in this fixture), with
	// no trace of the 3-second solve.
	want := placement.PriceMoves(placement.Diff(cur, plan.newPl), opts.Topo, opts.ExpertBytes).Seconds
	if ev.Seconds != want {
		t.Fatalf("pause %v != priced parameter copy %v (solve overlap double-charged?)", ev.Seconds, want)
	}
	if ev.Seconds >= latency {
		t.Fatalf("pause %v swallowed the solve latency %v", ev.Seconds, latency)
	}
	if ev.Time != solve.started+latency {
		t.Fatalf("decision time %v, want solve completion %v", ev.Time, solve.started+latency)
	}
}

func TestServeNonBlockingSolveEndToEnd(t *testing.T) {
	// Full run with a non-zero solve latency: migrations must record the
	// overlap, the pause accounting must be unchanged, and the run must
	// stay deterministic.
	opts, drifted := testSystem(t)
	opts.Adaptive = true
	opts.SolveSeconds = 0.4
	opts.Phases = driftProgram(opts, drifted)
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solves == 0 {
		t.Fatal("no background solves launched under drift")
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("no migration applied")
	}
	for _, m := range rep.Migrations {
		if math.Abs(m.SolveSeconds-opts.SolveSeconds) > 1e-9 {
			t.Fatalf("migration solve overlap %v, want %v", m.SolveSeconds, opts.SolveSeconds)
		}
		if math.Abs(m.Time-(m.SolveStarted+opts.SolveSeconds)) > 1e-9 {
			t.Fatalf("decision at %v, want solve start %v + %v", m.Time, m.SolveStarted, opts.SolveSeconds)
		}
		// Rolling pause accounting unchanged by the overlap: the fleet-wide
		// completion still spans at least Replicas serialized pauses.
		if m.Completed < m.Time+float64(opts.Replicas)*m.Seconds {
			t.Fatalf("rolling migration too fast: decided %v, done %v", m.Time, m.Completed)
		}
	}
	again, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Makespan != rep.Makespan || again.Iterations != rep.Iterations || len(again.Migrations) != len(rep.Migrations) {
		t.Fatal("non-blocking solve broke determinism")
	}
}

func TestControllerPerTokenCostOrdersPlacements(t *testing.T) {
	ctrl, _, opts := controllerFixture(t, 0.01)
	counts := ctrl.window.Snapshot()
	staged := placement.Staged(counts, opts.Kernel.Layers, opts.Kernel.Experts, opts.Topo, 77)
	random := placement.Random(opts.Kernel.Layers, opts.Kernel.Experts, opts.Topo.TotalGPUs(), 77)
	cs, cr := ctrl.perTokenCost(counts, staged), ctrl.perTokenCost(counts, random)
	if cs <= 0 || cr <= 0 {
		t.Fatalf("degenerate costs %v %v", cs, cr)
	}
	if cs >= cr {
		t.Fatalf("staged placement should cost less per token than random: %v vs %v", cs, cr)
	}
}

// TestControllerMemObjectiveHonorsResidencyModel: the controller must build
// its re-solve objective — and hence the migration's PredictedStallDelta —
// with the configured residency model, and the two models must actually
// disagree on a binding budget (Che prices churn the static warm set calls
// free and discounts prefetch-covered misses the static model charges in
// full, so the predictions genuinely differ).
func TestControllerMemObjectiveHonorsResidencyModel(t *testing.T) {
	ctrl, cur, _ := controllerFixture(t, 0.01)
	ctrl.opts.MemoryAware = true
	ctrl.opts.Oversubscription = 2
	ctrl.opts.CachePolicy = "affinity"
	ctrl.opts.PrefetchK = 4
	counts := ctrl.window.Snapshot()

	static := ctrl.memObjective(cur, counts)
	if static == nil || static.Model != placement.ResidencyStatic {
		t.Fatalf("default residency model: %+v", static)
	}
	ctrl.opts.ResidencyModel = "che"
	che := ctrl.memObjective(cur, counts)
	if che == nil || che.Model != placement.ResidencyChe {
		t.Fatalf("che residency model not honored: %+v", che)
	}
	if !che.Active() {
		t.Fatal("fixture budget must bind at 2x")
	}
	s, c := static.StallPerToken(cur), che.StallPerToken(cur)
	if s <= 0 || c <= 0 || s == c {
		t.Fatalf("models must both price a binding budget and disagree: static %v, che %v", s, c)
	}
}

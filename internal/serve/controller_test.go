package serve

import (
	"testing"

	"repro/internal/placement"
	"repro/internal/synth"
	"repro/internal/trace"
)

// controllerFixture builds a controller over a window filled with drifted
// traffic, so the detector is hot and only the gating logic decides whether
// a plan is returned.
func controllerFixture(t *testing.T, minGain float64) (*controller, *placement.Placement, Options) {
	t.Helper()
	opts, drifted := testSystem(t)
	opts.Adaptive = true
	opts.MinGain = minGain
	opts = opts.withDefaults()

	window := NewTraceWindow(opts.Kernel.Layers, opts.Kernel.Experts, opts.Window)
	router := synth.NewKernelRouter(opts.Kernel, drifted, 1)
	ids := trace.SequentialIDs(opts.Window, drifted.TokenID)
	tr := trace.Collect(router, opts.Kernel.Layers, ids)
	for _, path := range tr.Paths {
		p := make([]int, len(path))
		for i, e := range path {
			p[i] = int(e)
		}
		window.Push(p)
	}
	ctrl := newController(&opts, window, poolCounts(opts.BaselineCounts, opts.Kernel.Experts))
	return ctrl, opts.Placement.Clone(), opts
}

func TestControllerAcceptsWhenGainClearsMinGain(t *testing.T) {
	ctrl, cur, opts := controllerFixture(t, 0.01)
	var plan *pendingMigration
	var score float64
	// Patience debounces: observe until the detector has fired.
	for i := 0; i < opts.Patience+1 && plan == nil; i++ {
		score, plan = ctrl.observe(float64(i), cur, false)
	}
	if plan == nil {
		t.Fatalf("drifted window (score %v) produced no plan", score)
	}
	ev := plan.event
	if ev.Moves == 0 || ev.Seconds <= 0 {
		t.Fatalf("plan prices nothing: %+v", ev)
	}
	if ev.PredictedGain < opts.MinGain {
		t.Fatalf("accepted gain %v below MinGain %v", ev.PredictedGain, opts.MinGain)
	}
	if ev.Score != score {
		t.Fatalf("event score %v != observed %v", ev.Score, score)
	}
	// The planned placement must stay valid and differ from the current one.
	if err := plan.newPl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(placement.Diff(cur, plan.newPl)) != ev.Moves {
		t.Fatal("event move count does not match the installed diff")
	}
}

func TestControllerRejectsBelowMinGainAndCoolsDown(t *testing.T) {
	// An impossible gain requirement: every re-solve is rejected and the
	// rejection opens a cooldown window.
	ctrl, cur, opts := controllerFixture(t, 0.99)
	var plan *pendingMigration
	for i := 0; i < opts.Patience+1 && plan == nil; i++ {
		_, plan = ctrl.observe(float64(i), cur, false)
	}
	if plan != nil {
		t.Fatalf("gain cannot clear MinGain=0.99, yet got a plan: %+v", plan.event)
	}
	if ctrl.solves == 0 {
		t.Fatal("controller never re-solved, so MinGain gating was not exercised")
	}
	if ctrl.cooldownUntil <= 0 {
		t.Fatal("rejected re-solve must open a cooldown window")
	}
	// Inside the cooldown the controller must not even re-solve.
	solves := ctrl.solves
	for i := 0; i < opts.Patience+2; i++ {
		if _, p := ctrl.observe(float64(opts.Patience)+0.1*float64(i), cur, false); p != nil {
			t.Fatal("plan produced during cooldown")
		}
	}
	if ctrl.solves != solves {
		t.Fatal("controller re-solved during cooldown")
	}
}

func TestControllerGatesOnBusyAndFill(t *testing.T) {
	ctrl, cur, opts := controllerFixture(t, 0.01)
	// busy: a migration in flight suppresses new plans.
	for i := 0; i < opts.Patience+2; i++ {
		if _, p := ctrl.observe(float64(i), cur, true); p != nil {
			t.Fatal("plan produced while a migration is in flight")
		}
	}
	// Adaptive off: score still reported, never a plan.
	ctrl2, cur2, opts2 := controllerFixture(t, 0.01)
	ctrl2.opts.Adaptive = false
	for i := 0; i < opts2.Patience+2; i++ {
		score, p := ctrl2.observe(float64(i), cur2, false)
		if p != nil {
			t.Fatal("static controller returned a plan")
		}
		if score <= 0 {
			t.Fatal("score not reported")
		}
	}
}

func TestRollingMigrationPauseAccounting(t *testing.T) {
	// End to end: during a rolling migration only one replica stalls at a
	// time, so the fleet-wide completion spans at least Replicas stalls and
	// every replica keeps its own pause.
	opts, drifted := testSystem(t)
	opts.Adaptive = true
	opts.Phases = driftProgram(opts, drifted)
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("no migration to audit")
	}
	for _, m := range rep.Migrations {
		if m.Completed < m.Time+float64(opts.Replicas)*m.Seconds {
			t.Fatalf("rolling migration too fast: decided %v, done %v, %d replicas x %vs pause",
				m.Time, m.Completed, opts.Replicas, m.Seconds)
		}
		if m.ChurnSeconds != 0 || m.ResidencyChurn != 0 {
			t.Fatalf("churn priced without a memory layer: %+v", m)
		}
	}
}

func TestControllerPerTokenCostOrdersPlacements(t *testing.T) {
	ctrl, _, opts := controllerFixture(t, 0.01)
	counts := ctrl.window.Snapshot()
	staged := placement.Staged(counts, opts.Kernel.Layers, opts.Kernel.Experts, opts.Topo, 77)
	random := placement.Random(opts.Kernel.Layers, opts.Kernel.Experts, opts.Topo.TotalGPUs(), 77)
	cs, cr := ctrl.perTokenCost(counts, staged), ctrl.perTokenCost(counts, random)
	if cs <= 0 || cr <= 0 {
		t.Fatalf("degenerate costs %v %v", cs, cr)
	}
	if cs >= cr {
		t.Fatalf("staged placement should cost less per token than random: %v vs %v", cs, cr)
	}
}

package serve

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/synth"
)

func TestWindowCountsIncremental(t *testing.T) {
	w := NewTraceWindow(3, 4, 2)
	w.Push([]int{0, 1, 2})
	w.Push([]int{1, 1, 3})
	if w.Size() != 2 || w.Fill() != 1 {
		t.Fatalf("size %d fill %v", w.Size(), w.Fill())
	}
	c := w.Counts()
	if c[0][0][1] != 1 || c[1][1][2] != 1 || c[0][1][1] != 1 || c[1][1][3] != 1 {
		t.Fatalf("counts wrong: %v", c)
	}
	// Third push evicts the first path: its transitions must vanish.
	w.Push([]int{2, 0, 0})
	c = w.Counts()
	if c[0][0][1] != 0 || c[1][1][2] != 0 {
		t.Fatal("evicted path's counts not removed")
	}
	if c[0][2][0] != 1 || c[1][0][0] != 1 {
		t.Fatal("new path's counts missing")
	}
	if w.Size() != 2 || w.Pushed() != 3 {
		t.Fatalf("size %d pushed %d", w.Size(), w.Pushed())
	}
}

func TestWindowCountsTotalInvariant(t *testing.T) {
	// After arbitrary churn, total transition mass must equal
	// size * (layers-1) and every count must be non-negative.
	const layers, experts, capacity = 5, 8, 16
	w := NewTraceWindow(layers, experts, capacity)
	r := rng.New(11)
	for i := 0; i < 200; i++ {
		path := make([]int, layers)
		for j := range path {
			path[j] = r.Intn(experts)
		}
		w.Push(path)
	}
	total := 0.0
	for _, m := range w.Counts() {
		for _, row := range m {
			for _, v := range row {
				if v < 0 {
					t.Fatalf("negative count %v", v)
				}
				total += v
			}
		}
	}
	if want := float64(capacity * (layers - 1)); total != want {
		t.Fatalf("total mass %v, want %v", total, want)
	}
	pooledTotal := 0.0
	for _, row := range w.Pooled() {
		for _, v := range row {
			pooledTotal += v
		}
	}
	if pooledTotal != total {
		t.Fatalf("pooled mass %v != %v", pooledTotal, total)
	}
}

func TestWindowSnapshotIsolated(t *testing.T) {
	w := NewTraceWindow(3, 4, 4)
	w.Push([]int{0, 1, 2})
	snap := w.Snapshot()
	w.Push([]int{0, 1, 2})
	if snap[0][0][1] != 1 {
		t.Fatal("snapshot mutated by later push")
	}
}

// fillFromDataset routes n fresh tokens of a dataset through the kernel and
// pushes their paths, mirroring what the server does per decode iteration.
func fillFromDataset(w *TraceWindow, k *synth.Kernel, ds *synth.DatasetProfile, n, offset int) {
	r := synth.NewKernelRouter(k, ds, 1)
	for i := 0; i < n; i++ {
		id := ds.TokenID(uint64(offset + i))
		prev := -1
		path := make([]int, k.Layers)
		for j := 0; j < k.Layers; j++ {
			es := r.Route(j, id, prev, nil)
			path[j] = es[0]
			prev = es[0]
		}
		w.Push(path)
	}
}

package serve

import (
	"testing"

	"repro/internal/fleet"
	"repro/internal/synth"
)

// TestServeFleetInertSpecBitIdentical: an all-zero fleet spec must not move a
// single number relative to no fleet tier at all — the tier's hooks are pure
// bookkeeping until a policy is enabled.
func TestServeFleetInertSpecBitIdentical(t *testing.T) {
	base, _ := testSystem(t)
	base.Phases = steadyProgram(base, 0.8, 4)

	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.Fleet = &fleet.Spec{}
	got, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != off.Makespan || got.Requests != off.Requests ||
		got.Tokens != off.Tokens || got.Iterations != off.Iterations ||
		got.Overall.P50 != off.Overall.P50 || got.Overall.P95 != off.Overall.P95 ||
		got.Overall.P99 != off.Overall.P99 {
		t.Fatalf("inert fleet spec changed the run:\n  nil:   %+v\n  inert: %+v", off.Overall, got.Overall)
	}
	fl := got.Fleet
	if fl == nil {
		t.Fatal("fleet report missing with Fleet set")
	}
	if fl.Arrivals != fl.Admitted || fl.Shed != 0 || fl.Deferred != 0 ||
		fl.Admitted != got.Requests {
		t.Fatalf("inert fleet accounting: %+v (want every arrival admitted)", fl)
	}
	if off.Fleet != nil {
		t.Fatal("fleet report present without a fleet spec")
	}
}

// TestServeFleetAdmissionAccounting: every offered request is either admitted
// or shed, and only admitted ones reach the latency report.
func TestServeFleetAdmissionAccounting(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Phases = []Phase{{Name: "crush", Duration: 4, Rate: nearKneeRate(opts, 2.0, 0.2, 0.5), Dataset: synth.Pile()}}
	opts.Fleet = &fleet.Spec{Admission: fleet.AdmissionQueue, MaxQueuePerReplica: 8}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	fl := rep.Fleet
	if fl.Shed == 0 || fl.Deferred == 0 {
		t.Fatalf("2x overload against an 8-deep bound shed %d / deferred %d, want both > 0", fl.Shed, fl.Deferred)
	}
	if fl.Arrivals != fl.Admitted+fl.Shed {
		t.Fatalf("accounting broke: %d arrivals != %d admitted + %d shed", fl.Arrivals, fl.Admitted, fl.Shed)
	}
	if rep.Requests != fl.Admitted {
		t.Fatalf("report has %d requests, admission admitted %d", rep.Requests, fl.Admitted)
	}
}

// TestServeFleetPagingAdmissionSheds: the paging policy defends its SLO under
// sustained overload through the priced backlog, with the same accounting
// invariant.
func TestServeFleetPagingAdmissionSheds(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Oversubscription = 2
	opts.CachePolicy = "affinity"
	opts.Phases = []Phase{{Name: "crush", Duration: 4, Rate: nearKneeRate(opts, 2.0, 0.2, 0.5), Dataset: synth.Pile()}}
	opts.Fleet = &fleet.Spec{Admission: fleet.AdmissionPaging, SLOSeconds: 1}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	fl := rep.Fleet
	if fl.Shed == 0 {
		t.Fatalf("paging admission never shed under 2x overload against a 1s SLO: %+v", fl)
	}
	if fl.Arrivals != fl.Admitted+fl.Shed || rep.Requests != fl.Admitted {
		t.Fatalf("accounting broke: %+v vs %d requests", fl, rep.Requests)
	}
}

// TestServeFleetSharedHostCache: co-located replicas sharing one DRAM master
// tier must fetch strictly less from NVMe than replicas with independent
// tiers — the second replica's cold fetch becomes a DRAM hit.
func TestServeFleetSharedHostCache(t *testing.T) {
	opts, _ := testSystem(t)
	opts.Oversubscription = 2
	opts.CachePolicy = "affinity"
	opts.HostSlots = opts.Kernel.Layers * opts.Kernel.Experts / 4
	opts.Phases = steadyProgram(opts, 0.8, 4)

	indep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	shared := opts
	shared.Fleet = &fleet.Spec{SharedHostCache: true}
	rep, err := Run(shared)
	if err != nil {
		t.Fatal(err)
	}
	cs := rep.Fleet.HostCache
	if cs == nil {
		t.Fatal("shared host cache stats missing")
	}
	if cs.DRAMHits == 0 {
		t.Fatal("shared host tier never served a DRAM hit")
	}
	if rep.ExpertMem.NVMeFetches >= indep.ExpertMem.NVMeFetches {
		t.Fatalf("shared tier fetched %d from NVMe, independent tiers %d — sharing must strictly reduce fleet NVMe traffic",
			rep.ExpertMem.NVMeFetches, indep.ExpertMem.NVMeFetches)
	}
}

// TestServeFleetAutoscalerSpike: a flash crowd scales the fleet up within the
// spec's bounds and the recovery drains it back down.
func TestServeFleetAutoscalerSpike(t *testing.T) {
	opts, _ := testSystem(t)
	warm := nearKneeRate(opts, 0.4, 0.2, 0.5)
	opts.Phases = []Phase{
		{Name: "warm", Duration: 3, Rate: warm, Dataset: synth.Pile()},
		{Name: "spike", Duration: 3, Rate: 4 * warm, Dataset: synth.Pile()},
		{Name: "recover", Duration: 8, Rate: warm / 2, Dataset: synth.Pile()},
	}
	opts.Fleet = &fleet.Spec{
		MinReplicas: 2, MaxReplicas: 4,
		ReconcileInterval: 0.25,
		ScaleUpCooldown:   0.5,
		ScaleDownCooldown: 1,
		DownscaleStreak:   2,
		ForecastHalfLife:  0.5,
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	fl := rep.Fleet
	if fl.ScaleUps == 0 {
		t.Fatalf("autoscaler never scaled up through a 4x spike: %+v", fl)
	}
	if fl.MaxLive <= opts.Replicas || fl.MaxLive > 4 {
		t.Fatalf("peak live %d, want in (%d, 4]", fl.MaxLive, opts.Replicas)
	}
	if fl.ScaleDowns == 0 || fl.FinalLive >= fl.MaxLive {
		t.Fatalf("autoscaler never drained after the spike: %+v", fl)
	}
	if fl.Replicas == nil || len(fl.Replicas.X) == 0 {
		t.Fatal("fleet replica series missing")
	}
	// Elastic capacity must actually absorb the spike: requests arriving
	// during the 4x window see lower tail latency than on the fixed fleet.
	// (Makespan is no discriminator — both runs end with the same last
	// recover-phase arrival.)
	fixed := opts
	fixed.Fleet = nil
	base, err := Run(fixed)
	if err != nil {
		t.Fatal(err)
	}
	spike, baseSpike := rep.WindowStats(3, 6), base.WindowStats(3, 6)
	if spike.P95 >= baseSpike.P95 {
		t.Fatalf("autoscaled spike P95 %.3fs not below fixed fleet %.3fs", spike.P95, baseSpike.P95)
	}
}

package serve

import "repro/internal/obs"

// serveMetrics caches the registry handles the server loop updates, resolved
// once at run start. The zero value (all nil) is the observability-off fast
// path: every update is then a nil-check no-op.
type serveMetrics struct {
	requests   *obs.Counter // serve_requests_total: admitted requests
	finished   *obs.Counter // serve_requests_finished_total
	tokens     *obs.Counter // serve_tokens_decoded_total
	iterations *obs.Counter // serve_iterations_total
	// memStall mirrors server.memStall addition-for-addition (same float
	// order), so the snapshot equals Report.MemStallSeconds exactly.
	memStall *obs.Counter // mem_stall_seconds

	solves     *obs.Counter // controller_solves_total: background re-solves launched
	discards   *obs.Counter // controller_solve_discards_total: staleness guard
	rejects    *obs.Counter // controller_solve_rejects_total: below MinGain
	migrations *obs.Counter // migrations_total: completed rollouts

	drift          *obs.Gauge // controller_drift_score: last observed score
	predStallDelta *obs.Gauge // controller_predicted_stall_delta: last accepted solve's
	queueDepth     *obs.Gauge // serve_queue_depth: last sampled fleet depth

	pauseSeconds *obs.Histogram // migration_pause_seconds: per-replica pauses
	solverWall   *obs.Histogram // solver_wall_seconds: measured re-solve walls
	iterSeconds  *obs.Histogram // serve_iteration_seconds: per-iteration durations
}

// fleetMetrics caches the fleet tier's metric handles. Unlike serveMetrics
// these register only when the fleet tier is enabled, so runs without one
// keep exactly today's exported metric name set.
type fleetMetrics struct {
	committed  *obs.Gauge   // fleet_committed_replicas: live + warming
	stallEst   *obs.Gauge   // fleet_stall_estimate: predicted stall s/token
	scaleUps   *obs.Counter // fleet_scale_ups_total
	scaleDowns *obs.Counter // fleet_scale_downs_total
	sheds      *obs.Counter // fleet_shed_total
	defers     *obs.Counter // fleet_deferred_total
}

// chaosMetrics caches the fault-injection counters. Like fleetMetrics they
// register only when a chaos schedule is armed, so fault-free runs keep
// exactly today's exported metric name set.
type chaosMetrics struct {
	crashes    *obs.Counter // chaos_crashes_total: replica crash faults fired
	recoveries *obs.Counter // chaos_recoveries_total: replicas back in service
	redispatch *obs.Counter // chaos_redispatch_total: requests moved off crashed replicas
	lostIters  *obs.Counter // chaos_lost_iterations_total: in-flight iterations aborted
	degrades   *obs.Counter // chaos_link_degrade_windows_total
	sheds      *obs.Counter // chaos_shed_total: requests shed on retry-exhausted fetches
}

func newChaosMetrics(reg *obs.Registry) chaosMetrics {
	if reg == nil {
		return chaosMetrics{}
	}
	return chaosMetrics{
		crashes:    reg.Counter("chaos_crashes_total"),
		recoveries: reg.Counter("chaos_recoveries_total"),
		redispatch: reg.Counter("chaos_redispatch_total"),
		lostIters:  reg.Counter("chaos_lost_iterations_total"),
		degrades:   reg.Counter("chaos_link_degrade_windows_total"),
		sheds:      reg.Counter("chaos_shed_total"),
	}
}

func newFleetMetrics(reg *obs.Registry) fleetMetrics {
	if reg == nil {
		return fleetMetrics{}
	}
	return fleetMetrics{
		committed:  reg.Gauge("fleet_committed_replicas"),
		stallEst:   reg.Gauge("fleet_stall_estimate"),
		scaleUps:   reg.Counter("fleet_scale_ups_total"),
		scaleDowns: reg.Counter("fleet_scale_downs_total"),
		sheds:      reg.Counter("fleet_shed_total"),
		defers:     reg.Counter("fleet_deferred_total"),
	}
}

// newServeMetrics registers every serve-level metric up front so a snapshot
// always carries the full name set (zeros included), keeping exported
// metrics schema-stable across runs. A nil registry yields the zero value.
func newServeMetrics(reg *obs.Registry) serveMetrics {
	if reg == nil {
		return serveMetrics{}
	}
	return serveMetrics{
		requests:       reg.Counter("serve_requests_total"),
		finished:       reg.Counter("serve_requests_finished_total"),
		tokens:         reg.Counter("serve_tokens_decoded_total"),
		iterations:     reg.Counter("serve_iterations_total"),
		memStall:       reg.Counter("mem_stall_seconds"),
		solves:         reg.Counter("controller_solves_total"),
		discards:       reg.Counter("controller_solve_discards_total"),
		rejects:        reg.Counter("controller_solve_rejects_total"),
		migrations:     reg.Counter("migrations_total"),
		drift:          reg.Gauge("controller_drift_score"),
		predStallDelta: reg.Gauge("controller_predicted_stall_delta"),
		queueDepth:     reg.Gauge("serve_queue_depth"),
		pauseSeconds:   reg.Histogram("migration_pause_seconds", obs.SecondsBuckets()),
		solverWall:     reg.Histogram("solver_wall_seconds", obs.SecondsBuckets()),
		iterSeconds:    reg.Histogram("serve_iteration_seconds", obs.SecondsBuckets()),
	}
}

package serve

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

// reportFixture builds a Report directly from known arrivals/latencies.
func reportFixture(arrivals, latencies []float64) *Report {
	rep := &Report{}
	for i := range arrivals {
		rep.arrivalTimes = append(rep.arrivalTimes, arrivals[i])
		rep.latencies = append(rep.latencies, latencies[i])
		rep.finishTimes = append(rep.finishTimes, arrivals[i]+latencies[i])
	}
	return rep
}

func TestWindowStatsPercentiles(t *testing.T) {
	// 10 requests arriving at t=0..9 with latency = arrival index.
	var arr, lat []float64
	for i := 0; i < 10; i++ {
		arr = append(arr, float64(i))
		lat = append(lat, float64(i))
	}
	rep := reportFixture(arr, lat)

	// Full window: percentiles over 0..9.
	ps := rep.WindowStats(0, 10)
	if ps.Requests != 10 {
		t.Fatalf("requests %d", ps.Requests)
	}
	if want := stats.Mean(lat); ps.Mean != want {
		t.Fatalf("mean %v want %v", ps.Mean, want)
	}
	for _, c := range []struct {
		got, want float64
	}{
		{ps.P50, stats.Percentile(lat, 50)},
		{ps.P95, stats.Percentile(lat, 95)},
		{ps.P99, stats.Percentile(lat, 99)},
	} {
		if c.got != c.want {
			t.Fatalf("percentile %v want %v", c.got, c.want)
		}
	}

	// Half-open window [3, 7): only arrivals 3..6 counted.
	ps = rep.WindowStats(3, 7)
	if ps.Requests != 4 {
		t.Fatalf("windowed requests %d, want 4", ps.Requests)
	}
	if ps.P50 != stats.Percentile([]float64{3, 4, 5, 6}, 50) {
		t.Fatalf("windowed P50 %v", ps.P50)
	}

	// Empty window reports zeros, not NaNs.
	ps = rep.WindowStats(100, 200)
	if ps.Requests != 0 || ps.P95 != 0 || math.IsNaN(ps.Mean) {
		t.Fatalf("empty window %+v", ps)
	}
}

func TestBucketedMeanMath(t *testing.T) {
	times := []float64{0.1, 0.4, 1.2, 1.9, 4.5}
	vals := []float64{1, 3, 10, 20, 7}
	s := bucketedMean(times, vals, 1.0)
	// Buckets: [0,1): mean 2 @0.5; [1,2): mean 15 @1.5; [4,5): 7 @4.5.
	if s.Len() != 3 {
		t.Fatalf("bucket count %d: %+v", s.Len(), s)
	}
	wantX := []float64{0.5, 1.5, 4.5}
	wantY := []float64{2, 15, 7}
	for i := range wantX {
		if s.X[i] != wantX[i] || s.Y[i] != wantY[i] {
			t.Fatalf("bucket %d = (%v, %v), want (%v, %v)", i, s.X[i], s.Y[i], wantX[i], wantY[i])
		}
	}
	// Zero bucket width degrades to a copy.
	raw := bucketedMean(times, vals, 0)
	if raw.Len() != len(times) || raw.Y[2] != 10 {
		t.Fatalf("zero-bucket copy wrong: %+v", raw)
	}
}

func TestBucketedP95Math(t *testing.T) {
	// Bucket [0,1): latencies 1..20 -> P95 = Percentile(1..20, 95).
	// Bucket [1,2): single latency 100.
	var times, lats []float64
	var first []float64
	for i := 1; i <= 20; i++ {
		times = append(times, 0.02*float64(i))
		lats = append(lats, float64(i))
		first = append(first, float64(i))
	}
	times = append(times, 1.5)
	lats = append(lats, 100)
	s := bucketedP95(times, lats, 1.0)
	if s.Len() != 2 {
		t.Fatalf("bucket count %d", s.Len())
	}
	if want := stats.Percentile(first, 95); s.Y[0] != want {
		t.Fatalf("bucket-0 P95 %v, want %v", s.Y[0], want)
	}
	if s.Y[1] != 100 {
		t.Fatalf("bucket-1 P95 %v", s.Y[1])
	}
	// Input order must not matter (bucketedP95 sorts internally).
	rev := bucketedP95([]float64{1.5, 0.5}, []float64{100, 7}, 1.0)
	if rev.Len() != 2 || rev.Y[0] != 7 || rev.Y[1] != 100 {
		t.Fatalf("unsorted input mishandled: %+v", rev)
	}
}

func TestThroughputSeriesAndTokensIn(t *testing.T) {
	s := &server{opts: Options{DecodeTokens: 4}}
	s.decoded = []tick{{t: 0.5, n: 10}, {t: 1.5, n: 20}, {t: 1.9, n: 30}}
	if got := s.tokensIn(1, 2); got != 50 {
		t.Fatalf("tokensIn [1,2) = %v", got)
	}
	series := s.throughputSeries(1.0)
	if series.Len() != 2 || series.Y[0] != 10 || series.Y[1] != 50 {
		t.Fatalf("throughput series %+v", series)
	}
}

func TestReportStringIncludesChurn(t *testing.T) {
	rep := &Report{
		Migrations: []MigrationEvent{{
			Time: 1, Completed: 2, Score: 0.05, Moves: 3, Seconds: 0.01,
			PredictedGain: 0.2, ResidencyChurn: 5, ChurnSeconds: 0.004,
		}},
	}
	out := rep.String()
	if !strings.Contains(out, "5 resident copies churned") {
		t.Fatalf("churn missing from report string:\n%s", out)
	}
}

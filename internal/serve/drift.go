package serve

import (
	"fmt"
	"math"
)

// DriftMetric selects the divergence the detector computes between the
// baseline and live routing transition distributions.
type DriftMetric int

const (
	// JS is the Jensen-Shannon divergence (nats, bounded by ln 2) between
	// row-conditional transition distributions, mass-weighted across rows.
	JS DriftMetric = iota
	// L1 is the total-variation-style L1 distance (bounded by 2) between
	// row-conditional transition distributions, mass-weighted across rows.
	L1
)

// String implements fmt.Stringer.
func (m DriftMetric) String() string {
	switch m {
	case JS:
		return "js"
	case L1:
		return "l1"
	default:
		return fmt.Sprintf("DriftMetric(%d)", int(m))
	}
}

// rowDivergence computes the chosen divergence between two unnormalized
// count rows. Rows are normalized internally; an empty base row is treated
// as uniform (no evidence = no preference).
func rowDivergence(metric DriftMetric, base, live []float64) float64 {
	bSum, lSum := 0.0, 0.0
	for i := range base {
		bSum += base[i]
		lSum += live[i]
	}
	if lSum == 0 {
		return 0
	}
	n := float64(len(base))
	p := func(i int) float64 { // baseline
		if bSum == 0 {
			return 1 / n
		}
		return base[i] / bSum
	}
	q := func(i int) float64 { return live[i] / lSum }
	switch metric {
	case L1:
		d := 0.0
		for i := range base {
			d += math.Abs(p(i) - q(i))
		}
		return d
	default: // JS
		d := 0.0
		for i := range base {
			pi, qi := p(i), q(i)
			m := (pi + qi) / 2
			if pi > 0 {
				d += 0.5 * pi * math.Log(pi/m)
			}
			if qi > 0 {
				d += 0.5 * qi * math.Log(qi/m)
			}
		}
		return d
	}
}

// Divergence compares two transition-count matrices row by row, weighting
// each row's divergence by its live mass (rows the current traffic never
// visits cannot cause drift). Both matrices must be E x E.
func Divergence(metric DriftMetric, base, live [][]float64) float64 {
	total := 0.0
	for _, row := range live {
		for _, v := range row {
			total += v
		}
	}
	if total == 0 {
		return 0
	}
	d := 0.0
	for from := range live {
		mass := 0.0
		for _, v := range live[from] {
			mass += v
		}
		if mass == 0 {
			continue
		}
		d += mass / total * rowDivergence(metric, base[from], live[from])
	}
	return d
}

// Detector watches the live routing window for drift away from a baseline
// transition distribution. Observe returns the current score and whether the
// detector has fired: the score must exceed Threshold for Patience
// consecutive observations, debouncing transient bursts.
type Detector struct {
	// Metric selects JS (default) or L1.
	Metric DriftMetric
	// Threshold is the divergence above which an observation counts as hot.
	Threshold float64
	// Patience is the number of consecutive hot observations required to
	// fire (minimum 1).
	Patience int

	baseline [][]float64
	hot      int
}

// NewDetector builds a detector against a pooled baseline transition matrix
// (see TraceWindow.Pooled / poolCounts).
func NewDetector(metric DriftMetric, threshold float64, patience int, baseline [][]float64) *Detector {
	if threshold <= 0 {
		panic("serve: detector threshold must be positive")
	}
	if patience < 1 {
		patience = 1
	}
	return &Detector{Metric: metric, Threshold: threshold, Patience: patience, baseline: baseline}
}

// Observe scores the live pooled counts against the baseline.
func (d *Detector) Observe(live [][]float64) (score float64, fired bool) {
	score = Divergence(d.Metric, d.baseline, live)
	if score > d.Threshold {
		d.hot++
	} else {
		d.hot = 0
	}
	return score, d.hot >= d.Patience
}

// Rebase replaces the baseline (after a re-placement adopts the live
// distribution as the new normal) and clears the hot streak.
func (d *Detector) Rebase(baseline [][]float64) {
	d.baseline = baseline
	d.hot = 0
}

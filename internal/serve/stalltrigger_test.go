package serve

import (
	"testing"

	"repro/internal/synth"
)

// TestServeStallTriggerFiresWithoutDrift: residency decay must be able to
// launch a re-solve even when the drift detector is blind to it. The drift
// threshold is set far above any attainable score, so every solve in the run
// belongs to the stall trigger; the control run with the trigger off confirms
// nothing else launches one.
//
// The traffic program exploits the stall model's shape: charged stall is the
// per-layer max over GPUs of serialized distinct-miss fetches, so a
// concentrated mix (viral) touches few distinct experts per iteration and
// stalls LESS than a broad one (pile). Warming on viral therefore establishes
// a low stall floor, and the shift to pile raises the observed rate above
// factor*min without moving the drift score anywhere near the muzzled
// threshold. The static pin policy keeps the hot set fixed so the rise is
// purely traffic-driven, and the 4x oversubscription with heavyweight experts
// makes the delta clear the trigger's absolute noise floor.
func TestServeStallTriggerFiresWithoutDrift(t *testing.T) {
	viral := synth.Custom("viral", []float64{0, 0, 0, 0, 1, 0}, 0xD81F)
	opts, _ := testSystem(t)
	opts.Adaptive = true
	opts.Oversubscription = 4
	opts.CachePolicy = "pin"
	opts.ExpertBytes = 64 << 20
	opts.MemoryAware = true
	opts.DriftThreshold = 10 // unattainable: the detector never fires
	rate := nearKneeRate(opts, 0.05, 0.2, 0.5)
	opts.Phases = []Phase{
		{Name: "warm", Duration: 3, Rate: rate, Dataset: viral},
		{Name: "drift", Duration: 6, Rate: rate, Dataset: synth.Pile()},
	}

	off := opts
	rep, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solves != 0 || len(rep.Migrations) != 0 {
		t.Fatalf("control run launched %d solves / %d migrations with both triggers off",
			rep.Solves, len(rep.Migrations))
	}

	opts.StallTrigger = true
	opts.StallTriggerFactor = 1.03
	rep, err = Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The re-solve may be rejected by MinGain (the placement is already
	// near-optimal for the broad mix), so the stable assertion is that the
	// trigger launched solves at all; any that do apply must carry its name.
	if rep.Solves == 0 {
		t.Fatal("stall trigger never fired under residency decay")
	}
	for i, m := range rep.Migrations {
		if m.Trigger != "stall" {
			t.Errorf("migration %d trigger = %q, want \"stall\"", i, m.Trigger)
		}
	}
}

package serve

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chaos"
	"repro/internal/expertmem"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/stats"
)

// PhaseStats summarizes the requests that *arrived* during one time span —
// attributing latency to the traffic era that caused it, not the era it
// happened to finish in.
type PhaseStats struct {
	Name       string
	Start, End float64
	Requests   int
	Mean       float64
	P50        float64
	P95        float64
	P99        float64
	// Throughput is decode tokens per second completed inside [Start, End).
	Throughput float64
}

// Report is the outcome of a serving run.
type Report struct {
	// Phases aligns with Options.Phases; Overall spans the whole run.
	Phases  []PhaseStats
	Overall PhaseStats
	// LatencyP95 buckets completed requests by finish time: x is the bucket
	// midpoint (simulated seconds), y the bucket's P95 latency. Migration
	// pauses appear as spikes here.
	LatencyP95 *stats.Series
	// Throughput is decoded tokens/second per bucket.
	Throughput *stats.Series
	// Drift is the detector score over time.
	Drift *stats.Series
	// CrossFrac is the cross-node dispatch fraction over time (bucket-mean
	// of the per-iteration values) — the quantity the live re-placement
	// exists to pull back down.
	CrossFrac *stats.Series
	// QueueDepth is the fleet-wide queued+active request count over time.
	QueueDepth *stats.Series
	// Migrations lists every applied re-placement.
	Migrations []MigrationEvent
	// Solves counts background re-solves launched by the controller;
	// DiscardedSolves counts those whose result was thrown away by the
	// staleness guard (routing drifted past threshold again while the solve
	// ran). Solves also includes re-solves rejected by MinGain.
	Solves          int
	DiscardedSolves int
	// ExpertMem aggregates tiered expert-weight memory activity across the
	// fleet (nil when Options.Oversubscription is zero). Its StallSeconds
	// sums every access's wait even when accesses stall in parallel across
	// GPUs; MemStallSeconds below is the wall-clock-consistent figure.
	ExpertMem *expertmem.Stats
	// MeanDispatchImbalance is the mean per-iteration inbound-row straggler
	// factor the hop cost was scaled by (Options.DispatchImbalance); zero
	// when the straggler model is off. 1 means perfectly balanced links.
	MeanDispatchImbalance float64
	// MemStallSeconds is the expert-miss stall actually charged to the
	// fleet's iteration clocks (per layer, the slowest GPU's wait — the
	// others overlap). Compare against Makespan; zero when the memory
	// layer is off or nothing missed.
	MemStallSeconds float64
	// Makespan, Iterations, MeanBatch, Requests, Tokens summarize the run.
	Makespan   float64
	Iterations int
	MeanBatch  float64
	Requests   int
	Tokens     int
	// Saturated reports whether the fleet-wide queue was still growing at
	// the end of the run (offered load above capacity).
	Saturated bool
	// Fleet is the fleet tier's run summary — admission accounting,
	// autoscaler activity, shared host-cache stats (nil when Options.Fleet
	// is nil).
	Fleet *fleet.Report
	// Faults is the fault-injection ledger — crash outcomes with recovery
	// times, accumulated downtime, re-dispatched requests, degraded-link
	// windows, fetch retry/timeout/exhaustion counts, and retry-exhausted
	// sheds (nil when Options.Chaos is nil or empty).
	Faults *chaos.Report
	// Metrics is the end-of-run snapshot of Options.Metrics (nil when no
	// registry was attached). Its mem_stall_seconds counter equals
	// MemStallSeconds exactly: both accumulate the same float additions in
	// the same order.
	Metrics *obs.Snapshot

	// arrivals/latencies (sorted by arrival) back WindowStats.
	arrivalTimes []float64
	latencies    []float64
	finishTimes  []float64
}

// WindowStats computes request statistics over the requests arriving in
// [t0, t1) — the primitive behind per-phase and post-recovery comparisons.
func (r *Report) WindowStats(t0, t1 float64) PhaseStats {
	ps := PhaseStats{Name: fmt.Sprintf("[%.1f,%.1f)", t0, t1), Start: t0, End: t1}
	var lat []float64
	for i, at := range r.arrivalTimes {
		if at >= t0 && at < t1 {
			lat = append(lat, r.latencies[i])
		}
	}
	ps.Requests = len(lat)
	if len(lat) == 0 {
		return ps
	}
	ps.Mean = stats.Mean(lat)
	// One sort serves all three percentile queries (lat is local scratch);
	// stats.Percentile would copy and re-sort per query.
	sort.Float64s(lat)
	ps.P50 = stats.SortedPercentile(lat, 50)
	ps.P95 = stats.SortedPercentile(lat, 95)
	ps.P99 = stats.SortedPercentile(lat, 99)
	return ps
}

// String renders a compact human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "served %d requests (%d tokens) in %.2fs sim, mean batch %.1f, %d migrations\n",
		r.Requests, r.Tokens, r.Makespan, r.MeanBatch, len(r.Migrations))
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "  phase %-10s [%6.1fs,%6.1fs) %6d req  P50 %.3fs  P95 %.3fs  P99 %.3fs  %.0f tok/s\n",
			p.Name, p.Start, p.End, p.Requests, p.P50, p.P95, p.P99, p.Throughput)
	}
	for _, m := range r.Migrations {
		fmt.Fprintf(&b, "  migration @%.2fs: score %.4f, %d moves (%d cross-node), %.1fms pause/replica, predicted gain %.1f%%",
			m.Time, m.Score, m.Moves, m.CrossNodeMoves, m.Seconds*1e3, m.PredictedGain*100)
		if m.SolveSeconds > 0 {
			fmt.Fprintf(&b, ", solved in %.0fms overlap", m.SolveSeconds*1e3)
		}
		if m.ResidencyChurn > 0 {
			fmt.Fprintf(&b, ", %d resident copies churned (%.1fms refetch)", m.ResidencyChurn, m.ChurnSeconds*1e3)
		}
		if m.PredictedStallDelta != 0 || m.RealizedStallDelta != 0 {
			fmt.Fprintf(&b, ", stall/token predicted %+.3fms realized %+.3fms",
				m.PredictedStallDelta*1e3, m.RealizedStallDelta*1e3)
		}
		b.WriteByte('\n')
	}
	if r.ExpertMem != nil {
		fmt.Fprintf(&b, "  %s\n", r.ExpertMem)
	}
	if r.Faults != nil {
		fmt.Fprintf(&b, "  %s\n", r.Faults)
	}
	return b.String()
}

// buildReport aggregates the run state.
func (s *server) buildReport() *Report {
	// Shed requests never decode; every latency/throughput figure below is
	// over the admitted population (identical to all arrivals without a
	// fleet, where nothing can be shed).
	admitted := 0
	for _, rq := range s.arrivals {
		if !rq.shed {
			admitted++
		}
	}
	rep := &Report{
		Migrations:      s.migrations,
		Solves:          s.ctrl.solves,
		DiscardedSolves: s.ctrl.discards,
		Iterations:      s.iterations,
		Requests:        admitted,
		Tokens:          admitted * s.opts.DecodeTokens,
	}
	if s.mems != nil {
		mst := expertmem.Stats{}
		for _, mem := range s.mems {
			if mem == nil {
				continue // dark fleet slot, never activated
			}
			mst.Add(mem.Stats())
		}
		if s.fl != nil {
			mst.Add(s.fl.retiredStats)
		}
		if s.ch != nil {
			mst.Add(s.ch.retiredStats)
		}
		rep.ExpertMem = &mst
		rep.MemStallSeconds = s.memStall
		if s.kappaN > 0 {
			rep.MeanDispatchImbalance = s.kappaSum / float64(s.kappaN)
		}
	}
	if s.ch != nil {
		rep.Faults = s.faultReport(rep.ExpertMem)
	}
	if s.iterations > 0 {
		rep.MeanBatch = float64(s.batchTotal) / float64(s.iterations)
	}

	// Requests are already sorted by arrival (generated in time order).
	for _, rq := range s.arrivals {
		if rq.shed {
			continue
		}
		rep.arrivalTimes = append(rep.arrivalTimes, rq.arrival)
		rep.latencies = append(rep.latencies, rq.finish-rq.arrival)
		rep.finishTimes = append(rep.finishTimes, rq.finish)
		if rq.finish > rep.Makespan {
			rep.Makespan = rq.finish
		}
	}

	// Realize each migration's stall delta: charged stall per token over the
	// traffic between the previous migration (or start) and the decision,
	// minus the same over the traffic between completion and the next
	// migration (or end). Left at zero when either window saw no tokens.
	for i := range rep.Migrations {
		m := &rep.Migrations[i]
		t0 := 0.0
		if i > 0 {
			t0 = rep.Migrations[i-1].Completed
		}
		t1 := rep.Makespan + 1
		if i+1 < len(rep.Migrations) {
			t1 = rep.Migrations[i+1].Time
		}
		before, okB := s.stallPerToken(t0, m.Time)
		after, okA := s.stallPerToken(m.Completed, t1)
		if okB && okA {
			m.RealizedStallDelta = before - after
		}
	}

	// Per-phase and overall stats.
	start := 0.0
	for i, p := range s.opts.Phases {
		ps := rep.WindowStats(start, start+p.Duration)
		ps.Name = p.Name
		if ps.Name == "" {
			ps.Name = fmt.Sprintf("phase%d", i)
		}
		ps.Throughput = s.tokensIn(start, start+p.Duration) / p.Duration
		rep.Phases = append(rep.Phases, ps)
		start += p.Duration
	}
	rep.Overall = rep.WindowStats(0, rep.Makespan+1)
	rep.Overall.Name = "overall"
	if rep.Makespan > 0 {
		rep.Overall.Throughput = float64(rep.Tokens) / rep.Makespan
	}

	// Time-bucketed series.
	bucket := s.opts.LatencyBucket
	if bucket <= 0 {
		bucket = rep.Makespan / 80
	}
	if bucket > 0 {
		rep.LatencyP95 = bucketedP95(rep.finishTimes, rep.latencies, bucket)
		rep.LatencyP95.Name = "p95-latency"
		rep.Throughput = s.throughputSeries(bucket)
	}
	rep.Drift = &stats.Series{Name: "drift-score", X: s.driftT, Y: s.driftY}
	rep.CrossFrac = bucketedMean(s.fracT, s.fracY, bucket)
	rep.CrossFrac.Name = "cross-frac"
	rep.QueueDepth = &stats.Series{Name: "queue-depth", X: s.queueT, Y: s.queueY}
	if n := len(s.queueY); n >= 8 {
		early := stats.Max(s.queueY[:n/2])
		late := stats.Max(s.queueY[n/2:])
		rep.Saturated = late > 4*early+8
	}
	if s.fl != nil {
		rep.Fleet = s.fleetReport()
	}
	if s.opts.Metrics != nil {
		rep.Metrics = s.opts.Metrics.Snapshot()
	}
	return rep
}

// stallPerToken is the charged expert-stall per decoded token over the
// iterations starting in [t0, t1); ok is false when no tokens were decoded.
func (s *server) stallPerToken(t0, t1 float64) (float64, bool) {
	stall, tokens := 0.0, 0
	for _, ms := range s.memSamples {
		if ms.t >= t0 && ms.t < t1 {
			stall += ms.stall
			tokens += ms.tokens
		}
	}
	if tokens == 0 {
		return 0, false
	}
	return stall / float64(tokens), true
}

// tokensIn sums decoded tokens inside a time span.
func (s *server) tokensIn(t0, t1 float64) float64 {
	n := 0
	for _, tk := range s.decoded {
		if tk.t >= t0 && tk.t < t1 {
			n += tk.n
		}
	}
	return float64(n)
}

// throughputSeries buckets decoded tokens over time. The decoded ticks are
// in event order (nondecreasing time), so one advancing pair of cursors
// replaces a full tokensIn scan per bucket — O(iterations + buckets)
// instead of O(iterations x buckets).
func (s *server) throughputSeries(bucket float64) *stats.Series {
	out := &stats.Series{Name: "tokens-per-sec"}
	if len(s.decoded) == 0 {
		return out
	}
	end := s.decoded[len(s.decoded)-1].t
	i := 0
	for t0 := 0.0; t0 < end; t0 += bucket {
		t1 := t0 + bucket
		n := 0
		for ; i < len(s.decoded) && s.decoded[i].t < t1; i++ {
			n += s.decoded[i].n
		}
		out.Add(t0+bucket/2, float64(n)/bucket)
	}
	return out
}

// bucketedMean averages time-ordered samples per time bucket.
func bucketedMean(times, vals []float64, bucket float64) *stats.Series {
	if bucket <= 0 {
		return &stats.Series{X: append([]float64(nil), times...), Y: append([]float64(nil), vals...)}
	}
	out := &stats.Series{}
	edge := bucket
	sum, n := 0.0, 0
	flush := func() {
		if n > 0 {
			out.Add(edge-bucket/2, sum/float64(n))
			sum, n = 0, 0
		}
	}
	for i, t := range times {
		for t >= edge {
			flush()
			edge += bucket
		}
		sum += vals[i]
		n++
	}
	flush()
	return out
}

// bucketedP95 computes the P95 of latencies grouped by finish-time bucket.
func bucketedP95(times, lats []float64, bucket float64) *stats.Series {
	type idx struct{ t, l float64 }
	pairs := make([]idx, len(times))
	for i := range times {
		pairs[i] = idx{times[i], lats[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].t < pairs[b].t })
	out := &stats.Series{}
	var cur []float64
	edge := bucket
	flush := func() {
		if len(cur) > 0 {
			// Sort the reused scratch in place: stats.Percentile would copy
			// (and allocate) per bucket for its own sort.
			sort.Float64s(cur)
			out.Add(edge-bucket/2, stats.SortedPercentile(cur, 95))
			cur = cur[:0]
		}
	}
	for _, p := range pairs {
		for p.t >= edge {
			flush()
			edge += bucket
		}
		cur = append(cur, p.l)
	}
	flush()
	return out
}

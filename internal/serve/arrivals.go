package serve

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/synth"
)

// ArrivalKind selects the request arrival process of a traffic phase.
type ArrivalKind int

const (
	// Poisson arrivals: exponential inter-arrival gaps at the phase rate.
	Poisson ArrivalKind = iota
	// Bursty arrivals: a Markov-modulated on/off process. The long-run rate
	// equals the phase rate, but arrivals cluster in bursts at burstFactor
	// times that rate, stressing the queue's tail.
	Bursty
	// Diurnal arrivals: a sinusoidally modulated Poisson process (one full
	// cycle per phase), modeling daily traffic swing.
	Diurnal
)

// String implements fmt.Stringer.
func (k ArrivalKind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("ArrivalKind(%d)", int(k))
	}
}

// ParseArrivalKind maps a CLI string to an ArrivalKind.
func ParseArrivalKind(s string) (ArrivalKind, error) {
	switch s {
	case "", "poisson":
		return Poisson, nil
	case "bursty":
		return Bursty, nil
	case "diurnal":
		return Diurnal, nil
	default:
		return Poisson, fmt.Errorf("serve: unknown arrival kind %q", s)
	}
}

// Phase is one era of offered traffic: requests arrive for Duration seconds
// at mean Rate requests/second under the given process, drawing their token
// content from Dataset.
type Phase struct {
	Name     string
	Duration float64
	Rate     float64
	Kind     ArrivalKind
	Dataset  *synth.DatasetProfile
}

// validate checks one phase.
func (p Phase) validate() error {
	if p.Duration <= 0 || p.Rate <= 0 {
		return fmt.Errorf("serve: phase %q needs positive duration and rate", p.Name)
	}
	if p.Dataset == nil {
		return fmt.Errorf("serve: phase %q has no dataset", p.Name)
	}
	return p.Dataset.Validate()
}

const (
	burstFactor  = 3.0 // on-period rate multiple
	burstOnMean  = 1.0 // mean on-period seconds
	diurnalSwing = 0.5 // peak-to-mean amplitude of the diurnal sinusoid
)

// generateArrivals returns the deterministic, sorted arrival times of one
// phase, offset by start.
func generateArrivals(r *rng.RNG, p Phase, start float64) []float64 {
	var out []float64
	switch p.Kind {
	case Bursty:
		// On/off modulation: arrivals only during on-periods, at
		// burstFactor*Rate; duty cycle 1/burstFactor preserves the mean rate.
		offMean := burstOnMean * (burstFactor - 1)
		t, on := 0.0, true
		edge := r.Exponential() * burstOnMean
		for t < p.Duration {
			if on {
				gap := r.Exponential() / (burstFactor * p.Rate)
				if t+gap < edge {
					t += gap
					if t < p.Duration {
						out = append(out, start+t)
					}
					continue
				}
			}
			t = edge
			on = !on
			if on {
				edge = t + r.Exponential()*burstOnMean
			} else {
				edge = t + r.Exponential()*offMean
			}
		}
	case Diurnal:
		// Thinning against the envelope rate (1+swing)*Rate.
		envelope := (1 + diurnalSwing) * p.Rate
		t := 0.0
		for {
			t += r.Exponential() / envelope
			if t >= p.Duration {
				break
			}
			rate := p.Rate * (1 + diurnalSwing*math.Sin(2*math.Pi*t/p.Duration))
			if r.Float64() < rate/envelope {
				out = append(out, start+t)
			}
		}
	default: // Poisson
		t := 0.0
		for {
			t += r.Exponential() / p.Rate
			if t >= p.Duration {
				break
			}
			out = append(out, start+t)
		}
	}
	return out
}

package serve

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// obsRun executes the adaptive drift program under tiered expert memory with
// every observability sink attached and the registry's wall clock pinned to
// a constant — solver walls then measure exactly zero, which keeps the
// exported bytes a pure function of the seed.
func obsRun(t *testing.T) (*Report, *obs.Tracer, *obs.Registry, *obs.DecisionLog) {
	t.Helper()
	opts, drifted := testSystem(t)
	opts.Adaptive = true
	opts.Phases = driftProgram(opts, drifted)
	opts.Oversubscription = 2
	opts.CachePolicy = "affinity"
	// Thin the high-volume kinds (fetch/evict/prefetch/admit dominate under
	// 2x oversubscription) so the rare control-plane events are never
	// overwritten by ring wrap; sampling is per-kind and deterministic.
	tr := obs.NewTracer(obs.TracerOptions{Cap: 1 << 20, Sample: 128})
	reg := obs.NewRegistry()
	reg.SetNow(func() float64 { return 0 })
	dl := obs.NewDecisionLog(0)
	opts.Trace = tr
	opts.Metrics = reg
	opts.Decisions = dl
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep, tr, reg, dl
}

// TestServeObservabilityDeterministicExports pins the byte-determinism
// contract: two identical-seed adaptive runs (drift, migrations, tiered
// memory, background solves) must export byte-identical Perfetto traces,
// metric snapshots, and decision logs.
func TestServeObservabilityDeterministicExports(t *testing.T) {
	_, tr1, reg1, dl1 := obsRun(t)
	_, tr2, reg2, dl2 := obsRun(t)

	j1, err := obs.PerfettoJSON(tr1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := obs.PerfettoJSON(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("trace exports diverged across identical-seed runs (%d vs %d bytes)", len(j1), len(j2))
	}

	m1, err := reg1.Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := reg2.Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatalf("metrics exports diverged across identical-seed runs:\n%s\nvs\n%s", m1, m2)
	}

	if dl1.String() != dl2.String() {
		t.Fatal("decision logs diverged across identical-seed runs")
	}
}

// TestServeMemStallMetricMatchesReport pins the exactness contract between
// the metrics layer and the report: mem_stall_seconds mirrors
// Report.MemStallSeconds addition-for-addition, so the two must be equal to
// the bit, not merely within tolerance.
func TestServeMemStallMetricMatchesReport(t *testing.T) {
	rep, _, reg, _ := obsRun(t)
	if rep.MemStallSeconds <= 0 {
		t.Fatal("fixture produced no memory stall; the exactness check needs a nonzero value")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["mem_stall_seconds"]; got != rep.MemStallSeconds {
		t.Fatalf("mem_stall_seconds %v != Report.MemStallSeconds %v (delta %g)",
			got, rep.MemStallSeconds, got-rep.MemStallSeconds)
	}
	if rep.Metrics == nil {
		t.Fatal("Report.Metrics not filled despite attached registry")
	}
	if got := rep.Metrics.Counters["mem_stall_seconds"]; got != rep.MemStallSeconds {
		t.Fatalf("Report.Metrics mem_stall_seconds %v != MemStallSeconds %v", got, rep.MemStallSeconds)
	}
}

// TestServeTraceCoversLifecycle asserts one instrumented run emits every
// event family the Perfetto export renders: request admissions, iteration
// spans, expert stalls and fetches, migration pauses, and the solver
// lifecycle — plus the decision-log lines that narrate the controller.
func TestServeTraceCoversLifecycle(t *testing.T) {
	rep, tr, reg, dl := obsRun(t)
	if len(rep.Migrations) == 0 {
		t.Fatal("fixture produced no migrations; lifecycle coverage needs at least one")
	}
	kinds := map[obs.EventKind]int{}
	for _, e := range tr.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []obs.EventKind{
		obs.EvAdmit, obs.EvFinish, obs.EvIteration, obs.EvExpertStall, obs.EvFetch,
		obs.EvDrift, obs.EvQueueDepth, obs.EvSolveStart, obs.EvSolve, obs.EvInstall, obs.EvPause,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events in the trace", k)
		}
	}
	// The pause span count matches the report: one per replica per migration.
	wantPauses := len(rep.Migrations) * 2 // fixture runs 2 replicas
	if kinds[obs.EvPause] != wantPauses {
		t.Errorf("migration-pause spans = %d, want %d (%d migrations x 2 replicas)",
			kinds[obs.EvPause], wantPauses, len(rep.Migrations))
	}

	log := dl.String()
	for _, want := range []string{"observe drift=", "solve-launch drift=", "solve-accept gain=", "migration-complete"} {
		if !strings.Contains(log, want) {
			t.Errorf("decision log missing %q", want)
		}
	}

	// Solver metrics flowed through the registry from the background solve.
	snap := reg.Snapshot()
	if snap.Counters["controller_solves_total"] != float64(rep.Solves) {
		t.Errorf("controller_solves_total %v != Report.Solves %d",
			snap.Counters["controller_solves_total"], rep.Solves)
	}
	if snap.Counters["solver_swaps_proposed_total"] == 0 {
		t.Error("solver_swaps_proposed_total never incremented")
	}
	if h, ok := snap.Histograms["solver_wall_seconds"]; !ok || h.Count == 0 {
		t.Error("solver_wall_seconds histogram empty")
	}
	if h, ok := snap.Histograms["expertmem_fetch_seconds"]; !ok || h.Count == 0 {
		t.Error("expertmem_fetch_seconds histogram empty")
	}
}

// TestSolveEstimateUsesPriorThenRunningMean pins the AutoSolveSeconds
// latency source: the configured prior before any solve completed, then the
// running mean of measured walls.
func TestSolveEstimateUsesPriorThenRunningMean(t *testing.T) {
	opts := Options{SolveSecondsPrior: 0.25}
	c := &controller{opts: &opts}
	if got := c.solveEstimate(); got != 0.25 {
		t.Fatalf("estimate before any solve = %v, want the 0.25 prior", got)
	}
	c.wallSum, c.wallCount = 0.3, 2
	if got := c.solveEstimate(); got != 0.15 {
		t.Fatalf("estimate after two solves = %v, want the 0.15 running mean", got)
	}
}

// TestServeAutoSolveLatencyFeedsSimulatedClock runs the drift program with
// AutoSolveSeconds under a ticking fake wall clock and checks the accepted
// migration's solve overlap window reflects a measured (nonzero) latency
// even though Options.SolveSeconds is zero.
func TestServeAutoSolveLatencyFeedsSimulatedClock(t *testing.T) {
	opts, drifted := testSystem(t)
	opts.Adaptive = true
	opts.Phases = driftProgram(opts, drifted)
	opts.AutoSolveSeconds = true
	opts.SolveSecondsPrior = 0.05
	reg := obs.NewRegistry()
	reg.SetNow(func() float64 { return 0 }) // measured walls are zero...
	opts.Metrics = reg
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("fixture produced no migrations")
	}
	// ...so the first solve runs at the prior and later solves at the
	// measured zero mean. The first migration's overlap window must span at
	// least the prior (events can only lengthen it; allow float slack from
	// the event-time subtraction).
	if got := rep.Migrations[0].SolveSeconds; got < 0.05-1e-9 {
		t.Fatalf("first solve overlap %v shorter than the 0.05 prior", got)
	}
}

// TestOptionsValidateObservability covers the new option cross-checks.
func TestOptionsValidateObservability(t *testing.T) {
	opts, drifted := testSystem(t)
	opts.Phases = driftProgram(opts, drifted)
	opts.SolveSecondsPrior = -1
	if err := opts.Validate(); err == nil {
		t.Error("negative SolveSecondsPrior accepted")
	}
	opts.SolveSecondsPrior = 0.1
	opts.AutoSolveSeconds = false
	if err := opts.Validate(); err == nil {
		t.Error("SolveSecondsPrior without AutoSolveSeconds accepted")
	}
	opts.AutoSolveSeconds = true
	if err := opts.Validate(); err != nil {
		t.Errorf("valid auto-solve options rejected: %v", err)
	}
}

package serve

import (
	"repro/internal/expertmem"
	"repro/internal/obs"
	"repro/internal/placement"
)

// LayerStallTimeline is the serve layer's per-layer expert-stall
// approximation: it walks one bulk-synchronous decode iteration through a
// tiered expert-weight memory and returns the stall added to the iteration
// clock. paths[i][j] is token i's routed expert at layer j (only the first
// batch rows are read); computeDur is the iteration's memory-free duration,
// spread uniformly across layers — the overlap budget prefetches hide
// behind.
//
// Per layer, every distinct (owner GPU, expert) pair among the batch is
// demanded once and the layer stalls for the slowest access (the iteration
// is bulk-synchronous); then — under a prefetching policy — each routed
// expert's affinity successors are hinted to their layer-(j+1) owners, so
// their transfers overlap the remaining layer-j compute exactly as the
// engine overlaps them across its hint Alltoall. A hint lands on its owner
// GPU at that GPU's *own* post-stall instant (t plus the GPU's own demand
// stall this layer, not the fleet-wide maximum): in the engine each rank
// processes received hints right after its own demand fetches complete, so
// an unstalled owner starts speculating while the slowest rank is still
// fetching. Issuing at the shared layer start would drop hints against the
// owner's in-flight demand transfer (speculation never queues); issuing at
// the fleet-wide post-stall point would rob unstalled owners of overlap.
// Both mistimings were caught — as systematic hit-rate undershoot — when
// this model was first validated against engine runs by the conformance
// suite.
//
// The engine charges the same misses per rank on per-rank clocks instead;
// the two models are held to agree by the cross-layer stall-model
// conformance suite (TestStallModelConformance in the root package), which
// replays identical routing through both.
func LayerStallTimeline(mem *expertmem.Manager, pl *placement.Placement, paths [][]int, batch int, now, computeDur float64) float64 {
	return LayerStallTimelineTraced(mem, pl, paths, batch, now, computeDur, nil, 0)
}

// LayerStallTimelineTraced is LayerStallTimeline with span emission: each
// (GPU, layer) demand stall greater than zero becomes an EvExpertStall span
// on the GPU's track, starting at the layer's post-compute instant for that
// GPU. A nil tracer is the zero-overhead path (bit-identical stalls).
func LayerStallTimelineTraced(mem *expertmem.Manager, pl *placement.Placement, paths [][]int, batch int, now, computeDur float64, tr *obs.Tracer, rep int) float64 {
	st, _ := layerStallCore(mem, pl, paths, batch, now, computeDur, tr, rep, false)
	return st
}

// LayerStallTimelineChecked is LayerStallTimelineTraced under the chaos
// fetch-timeout model: demand accesses may exhaust their retries and fail.
// A failed (GPU, expert) fetch poisons every batch row routed through it
// this layer — those rows' weights will never arrive, so they drop out of
// the walk (no further demand, no prefetch hints) and their indices are
// returned for the caller to shed. With no timeout armed, failures are
// impossible and the stall is bit-identical to the unchecked walk.
func LayerStallTimelineChecked(mem *expertmem.Manager, pl *placement.Placement, paths [][]int, batch int, now, computeDur float64, tr *obs.Tracer, rep int) (float64, []int) {
	return layerStallCore(mem, pl, paths, batch, now, computeDur, tr, rep, true)
}

func layerStallCore(mem *expertmem.Manager, pl *placement.Placement, paths [][]int, batch int, now, computeDur float64, tr *obs.Tracer, rep int, checked bool) (float64, []int) {
	if !mem.Oversubscribed() {
		return 0, nil
	}
	layers := pl.Layers
	perLayer := computeDur / float64(layers)
	prefetch := mem.Prefetching()
	t := now
	total := 0.0
	seen := make(map[[2]int]bool, batch)
	gpuStall := make([]float64, pl.GPUs)
	// Replicated placements assign each distinct (layer, expert) demand to
	// ONE copy per iteration — warm (currently resident) copies first, then
	// the least fetch-loaded GPU, lowest id on ties. Warmth-first is the
	// residency table the router would consult: sending a demand to a cold
	// copy pays a fetch the warm copy serves for free, and a copy nothing
	// routes to simply stays cold (pure slot displacement, which the
	// annealer prices). Stickiness matters too: splitting one expert's rows
	// across its copies would fetch the same weights over two host links,
	// while assigning whole experts to copies spreads the *serialized fetch
	// queues* the bulk-synchronous layer stall takes the max of — the
	// single-GPU bandwidth ceiling replication exists to break. demandLoad
	// therefore counts distinct expert demands per GPU, not batch rows.
	// Single-copy placements skip all of it and walk the primaries bit for
	// bit.
	replicated := pl.Replicated()
	var demandLoad []int
	var rowOwner []int
	var pickedOwner []int // per layer: expert -> chosen copy, -1 unpicked
	if replicated {
		demandLoad = make([]int, pl.GPUs)
		rowOwner = make([]int, batch)
		pickedOwner = make([]int, pl.Experts)
	}
	var failed []bool              // lazily allocated: rows dropped by a failed fetch
	var failedRows []int           // their indices, in discovery order
	var failedKeys map[[2]int]bool // this layer's exhausted (GPU, expert) fetches
	for j := 0; j < layers; j++ {
		clear(seen)
		for g := range gpuStall {
			gpuStall[g] = 0
		}
		for g := range demandLoad {
			demandLoad[g] = 0
		}
		for e := range pickedOwner {
			pickedOwner[e] = -1
		}
		stall := 0.0
		// Demand accesses first: same-instant speculation must never delay
		// them (Prefetch only uses idle link bandwidth anyway). A GPU's
		// accesses serialize on its host link and its clock advances
		// through each stall — exactly how the engine charges a rank — so
		// each access is issued at the GPU's accumulated post-stall time
		// and the GPU's total stall is its demand-completion offset.
		for i := 0; i < batch; i++ {
			if failed != nil && failed[i] {
				continue
			}
			e := paths[i][j]
			gpu := pl.GPUOf(j, e)
			if replicated {
				if pickedOwner[e] < 0 {
					cold := func(_, g int) int {
						if mem.Resident(g, j, e) {
							return 0
						}
						return 1
					}
					// Warm copies serve for free, so when any copy is
					// resident the pick must be STABLE (nil load signal:
					// lowest id wins every iteration) — a least-loaded
					// tie-break would ping-pong demand across warm copies,
					// refresh every copy's recency, and pin duplicates of
					// the same weights in HBM forever, displacing the tail.
					// Only a cold set has a fetch queue to spread: then the
					// least-loaded holder takes the fetch.
					g := pl.PickReplica(j, e, 0, nil, cold)
					if !mem.Resident(g, j, e) {
						g = pl.PickReplica(j, e, 0, demandLoad, cold)
						demandLoad[g]++
					}
					pickedOwner[e] = g
				}
				gpu = pickedOwner[e]
				rowOwner[i] = gpu
			}
			k := [2]int{gpu, e}
			if seen[k] {
				continue
			}
			seen[k] = true
			if checked {
				st, ok := mem.AccessChecked(gpu, j, e, t+gpuStall[gpu])
				gpuStall[gpu] += st
				if !ok {
					if failedKeys == nil {
						failedKeys = make(map[[2]int]bool)
					}
					failedKeys[k] = true
				}
			} else {
				gpuStall[gpu] += mem.Access(gpu, j, e, t+gpuStall[gpu])
			}
			if gpuStall[gpu] > stall {
				stall = gpuStall[gpu]
			}
		}
		if len(failedKeys) > 0 {
			if failed == nil {
				failed = make([]bool, batch)
			}
			for i := 0; i < batch; i++ {
				if failed[i] {
					continue
				}
				e := paths[i][j]
				own := pl.GPUOf(j, e)
				if replicated {
					own = rowOwner[i]
				}
				if failedKeys[[2]int{own, e}] {
					failed[i] = true
					failedRows = append(failedRows, i)
				}
			}
			clear(failedKeys)
		}
		if prefetch && j+1 < layers {
			for i := 0; i < batch; i++ {
				if failed != nil && failed[i] {
					continue
				}
				for _, sc := range mem.Successors(j, paths[i][j]) {
					owner := pl.GPUOf(j+1, sc)
					if replicated {
						// Each hint addresses exactly ONE holder of the
						// successor's replica set: a warm copy is hinted
						// deterministically (nil load signal — the refresh
						// keeps ONE copy alive and lets duplicates decay
						// out of HBM), and a fully cold set speculates on
						// its designated holder — the primary, whose copy
						// the residency table scores at full mass — so the
						// prefetcher warms the steady-state holder rather
						// than scattering transient zero-priority copies
						// that attract demand and then evict. Spreading
						// belongs to realized demand (below), not to
						// speculation. The alternatives were tried and
						// lose: fanning out to every copy duplicates the
						// transfer and displaces double the footprint, and
						// load-balancing warm copies refreshes all of them
						// — permanent duplicates.
						cold := func(_, g int) int {
							if mem.Resident(g, j+1, sc) {
								return 0
							}
							return 1
						}
						owner = pl.PickReplica(j+1, sc, 0, nil, cold)
						if !mem.Resident(owner, j+1, sc) {
							owner = pl.GPUOf(j+1, sc)
						}
					}
					mem.Prefetch(owner, j+1, sc, t+gpuStall[owner])
				}
			}
		}
		if tr != nil {
			for g, st := range gpuStall {
				if st > 0 {
					tr.Emit(obs.Event{Kind: obs.EvExpertStall, Rep: int32(rep), GPU: int32(g),
						Layer: int32(j), Expert: -1, T: t, Dur: st, Value: st})
				}
			}
		}
		total += stall
		t += perLayer + stall
	}
	return total, failedRows
}

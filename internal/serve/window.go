package serve

import (
	"fmt"
)

// TraceWindow is a ring buffer over the most recent token routing paths,
// maintaining the per-layer-pair transition-count tensor incrementally: when
// a path is pushed the counts along it are incremented, and when it evicts
// the oldest path those counts are decremented. This gives the serving layer
// an O(L) per-token view of the *live* routing distribution — the online
// analogue of the offline profiling trace.
type TraceWindow struct {
	layers, experts int
	buf             [][]uint16
	head            int
	size            int
	counts          [][][]float64 // [layer][from][to], layer in [0, layers-2]
	pushed          int           // lifetime pushes, for diagnostics
}

// NewTraceWindow allocates a window holding up to capacity paths.
func NewTraceWindow(layers, experts, capacity int) *TraceWindow {
	if layers < 2 || experts <= 0 || capacity <= 0 {
		panic(fmt.Sprintf("serve: invalid window shape %dx%d cap %d", layers, experts, capacity))
	}
	w := &TraceWindow{
		layers:  layers,
		experts: experts,
		buf:     make([][]uint16, capacity),
		counts:  make([][][]float64, layers-1),
	}
	for j := range w.counts {
		w.counts[j] = make([][]float64, experts)
		for e := range w.counts[j] {
			w.counts[j][e] = make([]float64, experts)
		}
	}
	return w
}

// Size returns the number of paths currently held.
func (w *TraceWindow) Size() int { return w.size }

// Capacity returns the ring size.
func (w *TraceWindow) Capacity() int { return len(w.buf) }

// Fill returns Size/Capacity in [0,1].
func (w *TraceWindow) Fill() float64 { return float64(w.size) / float64(len(w.buf)) }

// Pushed returns the lifetime number of pushed paths.
func (w *TraceWindow) Pushed() int { return w.pushed }

// Push records one token's per-layer expert path, evicting the oldest path
// if the window is full. The path length must equal the layer count.
func (w *TraceWindow) Push(path []int) {
	if len(path) != w.layers {
		panic(fmt.Sprintf("serve: path length %d, want %d", len(path), w.layers))
	}
	// Reuse the evicted row's buffer when the ring is full: Push runs once
	// per active request per decode iteration, the simulation's hottest loop.
	row := w.buf[w.head]
	if row != nil {
		w.apply(row, -1)
		w.size--
	} else {
		row = make([]uint16, w.layers)
	}
	for j, e := range path {
		if e < 0 || e >= w.experts {
			panic(fmt.Sprintf("serve: expert %d out of range at layer %d", e, j))
		}
		row[j] = uint16(e)
	}
	w.buf[w.head] = row
	w.apply(row, +1)
	w.size++
	w.head = (w.head + 1) % len(w.buf)
	w.pushed++
}

// apply adds delta to the transition counts along a path.
func (w *TraceWindow) apply(path []uint16, delta float64) {
	for j := 0; j+1 < w.layers; j++ {
		w.counts[j][path[j]][path[j+1]] += delta
	}
}

// Counts returns the live transition tensor. The returned slices are the
// window's internal state: callers must treat them as read-only and must not
// retain them across Push calls.
func (w *TraceWindow) Counts() [][][]float64 { return w.counts }

// Snapshot deep-copies the transition tensor, safe to hand to a background
// placement solve while the window keeps accumulating.
func (w *TraceWindow) Snapshot() [][][]float64 {
	out := make([][][]float64, len(w.counts))
	for j := range w.counts {
		out[j] = make([][]float64, w.experts)
		for e := range w.counts[j] {
			out[j][e] = append([]float64(nil), w.counts[j][e]...)
		}
	}
	return out
}

// Pooled sums the window's transition counts over all layer pairs into one
// E x E matrix. Pooling multiplies the per-row sample mass by (layers-1),
// which is what makes the drift detector's divergence estimate low-variance
// enough to separate real distribution shift from sampling noise.
func (w *TraceWindow) Pooled() [][]float64 {
	return poolCounts(w.counts, w.experts)
}

// Pool sums an arbitrary transition tensor across layers — the form the
// drift Detector consumes (see TraceWindow.Pooled).
func Pool(counts [][][]float64, experts int) [][]float64 {
	return poolCounts(counts, experts)
}

// poolCounts sums a transition tensor across layers.
func poolCounts(counts [][][]float64, experts int) [][]float64 {
	out := make([][]float64, experts)
	for e := range out {
		out[e] = make([]float64, experts)
	}
	for j := range counts {
		for from := range counts[j] {
			row := counts[j][from]
			dst := out[from]
			for to, v := range row {
				if v != 0 {
					dst[to] += v
				}
			}
		}
	}
	return out
}

package ilp

import "fmt"

// This file encodes the paper's expert-placement integer program (Formulas
// 8-12) over a routing trace:
//
//	minimize   sum_k sum_j R_{k,j}                          (8)
//	subject to sum_i x^p_{i,j}   = E/P   for all j, p       (9)  load balance
//	           sum_p x^p_{i,j}   = 1     for all j, i       (10) exclusivity
//	           R_{k,j} >= x^p_{i,j} - x^p_{i',j+1}          (11)
//	           R_{k,j} >= x^p_{i',j+1} - x^p_{i,j}          (12)
//	where i = e(k,j) and i' = e(k,j+1) are token k's experts.
//
// Tokens sharing the same (j, from, to) transition produce identical
// constraint rows, so they are aggregated into one weighted R variable —
// an exact reformulation that shrinks the model dramatically.

// PlacementProblem describes an instance.
type PlacementProblem struct {
	Layers  int
	Experts int
	GPUs    int
	// Counts[j][from][to] is the number of profiled tokens transitioning
	// from expert `from` at layer j to expert `to` at layer j+1
	// (trace.AllTransitionCounts output).
	Counts [][][]float64
}

// PlacementModel couples the ILP with the variable layout needed to decode
// a solution.
type PlacementModel struct {
	Model   *Model
	Problem PlacementProblem
	xVar    [][][]int // [layer][expert][gpu] -> var index
}

// BuildPlacement constructs the exact ILP for the problem. It panics if the
// expert count is not divisible by the GPU count (the paper's balance
// constraint requires it).
func BuildPlacement(p PlacementProblem) *PlacementModel {
	if p.Experts%p.GPUs != 0 {
		panic(fmt.Sprintf("ilp: experts %d not divisible by gpus %d", p.Experts, p.GPUs))
	}
	if len(p.Counts) != p.Layers-1 {
		panic(fmt.Sprintf("ilp: counts for %d layer pairs, want %d", len(p.Counts), p.Layers-1))
	}
	m := NewModel()
	pm := &PlacementModel{Model: m, Problem: p}
	cap := p.Experts / p.GPUs

	// Placement variables.
	pm.xVar = make([][][]int, p.Layers)
	for j := 0; j < p.Layers; j++ {
		pm.xVar[j] = make([][]int, p.Experts)
		for i := 0; i < p.Experts; i++ {
			pm.xVar[j][i] = make([]int, p.GPUs)
			for g := 0; g < p.GPUs; g++ {
				pm.xVar[j][i][g] = m.AddVar(0, fmt.Sprintf("x[l%d,e%d,g%d]", j, i, g))
			}
		}
	}
	// (9) load balance per layer per GPU.
	for j := 0; j < p.Layers; j++ {
		for g := 0; g < p.GPUs; g++ {
			terms := make([]Term, 0, p.Experts)
			for i := 0; i < p.Experts; i++ {
				terms = append(terms, Term{Var: pm.xVar[j][i][g], Coef: 1})
			}
			m.AddConstraint(Constraint{Terms: terms, Sense: EQ, RHS: float64(cap),
				Name: fmt.Sprintf("balance[l%d,g%d]", j, g)})
		}
	}
	// (10) exclusivity per layer per expert.
	for j := 0; j < p.Layers; j++ {
		for i := 0; i < p.Experts; i++ {
			terms := make([]Term, 0, p.GPUs)
			for g := 0; g < p.GPUs; g++ {
				terms = append(terms, Term{Var: pm.xVar[j][i][g], Coef: 1})
			}
			m.AddConstraint(Constraint{Terms: terms, Sense: EQ, RHS: 1,
				Name: fmt.Sprintf("exclusive[l%d,e%d]", j, i)})
		}
	}
	// Symmetry breaking: the objective is invariant under a *global* GPU
	// relabeling (the same permutation applied to every layer), so some
	// optimal solution places expert 0 of layer 0 on GPU 0. Pinning it
	// removes a factor-P symmetry without affecting the optimum.
	m.AddConstraint(Constraint{
		Terms: []Term{{Var: pm.xVar[0][0][0], Coef: 1}},
		Sense: EQ, RHS: 1, Name: "symmetry[e0,l0->g0]",
	})
	// (8), (11), (12): one aggregated R per observed transition.
	for j := 0; j < p.Layers-1; j++ {
		for from := 0; from < p.Experts; from++ {
			for to := 0; to < p.Experts; to++ {
				w := p.Counts[j][from][to]
				if w == 0 {
					continue
				}
				r := m.AddVar(w, fmt.Sprintf("R[l%d,%d->%d]", j, from, to))
				for g := 0; g < p.GPUs; g++ {
					m.AddConstraint(Constraint{
						Terms: []Term{
							{Var: r, Coef: 1},
							{Var: pm.xVar[j][from][g], Coef: -1},
							{Var: pm.xVar[j+1][to][g], Coef: 1},
						},
						Sense: GE, RHS: 0,
						Name: fmt.Sprintf("r11[l%d,%d->%d,g%d]", j, from, to, g),
					})
					m.AddConstraint(Constraint{
						Terms: []Term{
							{Var: r, Coef: 1},
							{Var: pm.xVar[j][from][g], Coef: 1},
							{Var: pm.xVar[j+1][to][g], Coef: -1},
						},
						Sense: GE, RHS: 0,
						Name: fmt.Sprintf("r12[l%d,%d->%d,g%d]", j, from, to, g),
					})
				}
			}
		}
	}
	return pm
}

// Solve runs the exact search and decodes the placement: result[j][i] is
// the GPU holding expert i at layer j. The second return is the optimal
// number of (weighted) cross-GPU transitions; ok is false when the node
// budget was exhausted before proving optimality or finding a solution.
func (pm *PlacementModel) Solve(opts SolveOptions) (placement [][]int, crossings float64, ok bool) {
	sol := pm.Model.Solve(opts)
	if !sol.Feasible {
		return nil, 0, false
	}
	p := pm.Problem
	placement = make([][]int, p.Layers)
	for j := 0; j < p.Layers; j++ {
		placement[j] = make([]int, p.Experts)
		for i := 0; i < p.Experts; i++ {
			placement[j][i] = -1
			for g := 0; g < p.GPUs; g++ {
				if sol.X[pm.xVar[j][i][g]] == 1 {
					placement[j][i] = g
					break
				}
			}
		}
	}
	return placement, sol.Objective, sol.Optimal
}

package ilp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSolveTrivialMinimum(t *testing.T) {
	m := NewModel()
	a := m.AddVar(3, "a")
	b := m.AddVar(-2, "b")
	sol := m.Solve(SolveOptions{})
	if !sol.Feasible || !sol.Optimal {
		t.Fatal("unconstrained model must solve")
	}
	if sol.X[a] != 0 || sol.X[b] != 1 || sol.Objective != -2 {
		t.Fatalf("wrong solution: %+v", sol)
	}
}

func TestSolveEqualityConstraint(t *testing.T) {
	// Minimize x0 + 2 x1 + 3 x2 subject to x0 + x1 + x2 == 2.
	m := NewModel()
	v := []int{m.AddVar(1, "x0"), m.AddVar(2, "x1"), m.AddVar(3, "x2")}
	m.AddConstraint(Constraint{
		Terms: []Term{{v[0], 1}, {v[1], 1}, {v[2], 1}},
		Sense: EQ, RHS: 2,
	})
	sol := m.Solve(SolveOptions{})
	if !sol.Feasible || sol.Objective != 3 {
		t.Fatalf("want objective 3, got %+v", sol)
	}
	if sol.X[v[0]] != 1 || sol.X[v[1]] != 1 || sol.X[v[2]] != 0 {
		t.Fatalf("wrong assignment: %v", sol.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	m := NewModel()
	a := m.AddVar(1, "a")
	m.AddConstraint(Constraint{Terms: []Term{{a, 1}}, Sense: GE, RHS: 2})
	sol := m.Solve(SolveOptions{})
	if sol.Feasible {
		t.Fatal("model should be infeasible")
	}
}

func TestSolveLEAndGE(t *testing.T) {
	// Maximize-ish: minimize -(x0+x1) with x0+x1 <= 1 => objective -1.
	m := NewModel()
	a := m.AddVar(-1, "a")
	b := m.AddVar(-1, "b")
	m.AddConstraint(Constraint{Terms: []Term{{a, 1}, {b, 1}}, Sense: LE, RHS: 1})
	sol := m.Solve(SolveOptions{})
	if sol.Objective != -1 {
		t.Fatalf("want -1, got %v", sol.Objective)
	}
}

func TestSolveMatchesExhaustive(t *testing.T) {
	// Random small models: B&B must agree with exhaustive enumeration.
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(6) // 3..8 vars
		m := NewModel()
		for i := 0; i < n; i++ {
			m.AddVar(r.Float64()*4-2, "v")
		}
		nCons := 1 + r.Intn(4)
		for c := 0; c < nCons; c++ {
			var terms []Term
			for i := 0; i < n; i++ {
				if r.Float64() < 0.6 {
					terms = append(terms, Term{Var: i, Coef: float64(r.Intn(5) - 2)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			m.AddConstraint(Constraint{
				Terms: terms,
				Sense: Sense(r.Intn(3)),
				RHS:   float64(r.Intn(4) - 1),
			})
		}
		sol := m.Solve(SolveOptions{})
		// Exhaustive check.
		bestObj := math.Inf(1)
		feasible := false
		x := make([]int, n)
		for mask := 0; mask < 1<<n; mask++ {
			for i := range x {
				x[i] = (mask >> i) & 1
			}
			if obj, ok := m.Eval(x); ok {
				feasible = true
				if obj < bestObj {
					bestObj = obj
				}
			}
		}
		if feasible != sol.Feasible {
			t.Fatalf("trial %d: feasibility mismatch (bb=%v exhaustive=%v)", trial, sol.Feasible, feasible)
		}
		if feasible && math.Abs(bestObj-sol.Objective) > 1e-6 {
			t.Fatalf("trial %d: bb %v vs exhaustive %v", trial, sol.Objective, bestObj)
		}
		if feasible {
			if obj, ok := m.Eval(sol.X); !ok || math.Abs(obj-sol.Objective) > 1e-9 {
				t.Fatalf("trial %d: reported solution does not evaluate", trial)
			}
		}
	}
}

func TestSolveNodeBudget(t *testing.T) {
	m := NewModel()
	for i := 0; i < 30; i++ {
		m.AddVar(0, "x")
	}
	sol := m.Solve(SolveOptions{MaxNodes: 5})
	if sol.Optimal {
		t.Fatal("tiny node budget cannot prove optimality")
	}
}

func TestAddConstraintUnknownVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewModel()
	m.AddConstraint(Constraint{Terms: []Term{{Var: 3, Coef: 1}}})
}

func TestEvalValidation(t *testing.T) {
	m := NewModel()
	a := m.AddVar(1, "a")
	m.AddConstraint(Constraint{Terms: []Term{{a, 1}}, Sense: LE, RHS: 0})
	if _, ok := m.Eval([]int{1}); ok {
		t.Fatal("violating assignment must not evaluate ok")
	}
	if _, ok := m.Eval([]int{2}); ok {
		t.Fatal("non-binary assignment must not evaluate ok")
	}
	if obj, ok := m.Eval([]int{0}); !ok || obj != 0 {
		t.Fatal("feasible assignment must evaluate")
	}
}

func TestVarName(t *testing.T) {
	m := NewModel()
	v := m.AddVar(0, "hello")
	if m.VarName(v) != "hello" || m.NumVars() != 1 {
		t.Fatal("bookkeeping wrong")
	}
}

// Package ilp implements a small exact 0/1 integer linear programming
// solver: a model builder for binary variables with linear constraints, and
// a depth-first branch-and-bound search with constraint propagation.
//
// The paper formulates expert placement as an ILP (Formulas 8-12) and solves
// it offline. Production-sized instances are handled by the heuristic
// pipeline in package placement; this exact solver (a) provides the
// faithful encoding of the paper's formulation (see exflow.go) and (b)
// certifies on small instances that the heuristics reach the true optimum.
package ilp

import (
	"fmt"
	"math"
	"sort"
)

// Sense is a constraint comparison direction.
type Sense int

const (
	// LE means coef . x <= rhs.
	LE Sense = iota
	// GE means coef . x >= rhs.
	GE
	// EQ means coef . x == rhs.
	EQ
)

// Term is one coefficient of a linear expression.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a linear constraint over binary variables.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
	Name  string
}

// Model is a 0/1 ILP: minimize Obj . x subject to the constraints.
type Model struct {
	numVars     int
	Obj         []float64
	Constraints []Constraint
	names       []string
}

// NewModel creates an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a binary variable with the given objective coefficient and
// returns its index.
func (m *Model) AddVar(objCoef float64, name string) int {
	m.Obj = append(m.Obj, objCoef)
	m.names = append(m.names, name)
	m.numVars++
	return m.numVars - 1
}

// NumVars returns the variable count.
func (m *Model) NumVars() int { return m.numVars }

// VarName returns the debug name of a variable.
func (m *Model) VarName(v int) string { return m.names[v] }

// AddConstraint registers a constraint; Terms referencing unknown variables
// panic.
func (m *Model) AddConstraint(c Constraint) {
	for _, t := range c.Terms {
		if t.Var < 0 || t.Var >= m.numVars {
			panic(fmt.Sprintf("ilp: constraint %q references unknown var %d", c.Name, t.Var))
		}
	}
	m.Constraints = append(m.Constraints, c)
}

// Solution is the result of Solve.
type Solution struct {
	// X holds the variable values (0 or 1).
	X []int
	// Objective is Obj . X.
	Objective float64
	// Optimal is true when the search space was exhausted; false when the
	// node budget ran out (X is then the best incumbent found, possibly
	// none — check Feasible).
	Optimal bool
	// Feasible is false when no feasible assignment was found.
	Feasible bool
	// Nodes is the number of search nodes expanded.
	Nodes int
}

// SolveOptions tunes the search.
type SolveOptions struct {
	// MaxNodes bounds the search; 0 means DefaultMaxNodes.
	MaxNodes int
}

// DefaultMaxNodes is large enough for the test-scale encodings while
// guaranteeing termination on accidental large models.
const DefaultMaxNodes = 5_000_000

const (
	unset = -1
)

// solver carries the mutable search state.
type solver struct {
	m        *Model
	assign   []int // -1 unset, else 0/1
	order    []int // branching order
	best     []int
	bestObj  float64
	found    bool
	nodes    int
	maxNodes int
	// per-constraint running bounds of sum over assigned vars, plus the
	// remaining min/max contribution of unassigned vars.
	conAssigned []float64
	conMinFree  []float64
	conMaxFree  []float64
}

// Solve runs branch and bound and returns the best solution found.
func (m *Model) Solve(opts SolveOptions) Solution {
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	s := &solver{
		m:        m,
		assign:   make([]int, m.numVars),
		bestObj:  math.Inf(1),
		maxNodes: maxNodes,
	}
	for i := range s.assign {
		s.assign[i] = unset
	}
	// Branch on structural (zero-objective) variables first: in the
	// placement encoding these are the x variables, whose assignment
	// determines the R variables; the R variables (non-zero objective)
	// come last, where constraint feasibility checks pin them immediately.
	s.order = make([]int, m.numVars)
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		return math.Abs(m.Obj[s.order[a]]) < math.Abs(m.Obj[s.order[b]])
	})
	s.initConstraintBounds()
	s.search(0, 0)
	sol := Solution{
		Optimal:  s.nodes < s.maxNodes,
		Feasible: s.found,
		Nodes:    s.nodes,
	}
	if s.found {
		sol.X = s.best
		sol.Objective = s.bestObj
	}
	return sol
}

func (s *solver) initConstraintBounds() {
	n := len(s.m.Constraints)
	s.conAssigned = make([]float64, n)
	s.conMinFree = make([]float64, n)
	s.conMaxFree = make([]float64, n)
	for ci, c := range s.m.Constraints {
		for _, t := range c.Terms {
			if t.Coef < 0 {
				s.conMinFree[ci] += t.Coef
			} else {
				s.conMaxFree[ci] += t.Coef
			}
		}
	}
}

// setVar assigns v=val, updating constraint bounds. Returns false if some
// constraint becomes infeasible.
func (s *solver) setVar(v, val int) bool {
	s.assign[v] = val
	ok := true
	for ci, c := range s.m.Constraints {
		touched := false
		for _, t := range c.Terms {
			if t.Var != v {
				continue
			}
			touched = true
			if t.Coef < 0 {
				s.conMinFree[ci] -= t.Coef
			} else {
				s.conMaxFree[ci] -= t.Coef
			}
			s.conAssigned[ci] += t.Coef * float64(val)
		}
		if touched && !s.conFeasible(ci) {
			ok = false
		}
	}
	return ok
}

// unsetVar undoes setVar.
func (s *solver) unsetVar(v, val int) {
	s.assign[v] = unset
	for ci, c := range s.m.Constraints {
		for _, t := range c.Terms {
			if t.Var != v {
				continue
			}
			if t.Coef < 0 {
				s.conMinFree[ci] += t.Coef
			} else {
				s.conMaxFree[ci] += t.Coef
			}
			s.conAssigned[ci] -= t.Coef * float64(val)
		}
	}
}

// conFeasible checks whether constraint ci can still be satisfied given the
// assigned prefix and the free variables' attainable range.
func (s *solver) conFeasible(ci int) bool {
	c := s.m.Constraints[ci]
	lo := s.conAssigned[ci] + s.conMinFree[ci]
	hi := s.conAssigned[ci] + s.conMaxFree[ci]
	const eps = 1e-9
	switch c.Sense {
	case LE:
		return lo <= c.RHS+eps
	case GE:
		return hi >= c.RHS-eps
	default:
		return lo <= c.RHS+eps && hi >= c.RHS-eps
	}
}

// lowerBound returns an admissible bound on the final objective given the
// current partial assignment: assigned contribution plus every free
// variable's best-case contribution.
func (s *solver) lowerBound(assignedObj float64, depth int) float64 {
	bound := assignedObj
	for _, v := range s.order[depth:] {
		if c := s.m.Obj[v]; c < 0 {
			bound += c
		}
	}
	return bound
}

func (s *solver) search(depth int, objSoFar float64) {
	if s.nodes >= s.maxNodes {
		return
	}
	s.nodes++
	if s.found && s.lowerBound(objSoFar, depth) >= s.bestObj-1e-9 {
		return
	}
	if depth == len(s.order) {
		if objSoFar < s.bestObj-1e-9 || !s.found {
			s.bestObj = objSoFar
			s.best = append([]int(nil), s.assign...)
			s.found = true
		}
		return
	}
	v := s.order[depth]
	// Try the objective-preferred value first.
	first, second := 0, 1
	if s.m.Obj[v] < 0 {
		first, second = 1, 0
	}
	for _, val := range []int{first, second} {
		if s.setVar(v, val) {
			s.search(depth+1, objSoFar+s.m.Obj[v]*float64(val))
		}
		s.unsetVar(v, val)
		if s.nodes >= s.maxNodes {
			return
		}
	}
}

// Eval returns the objective value of a full assignment and whether it
// satisfies all constraints (useful for validating external solutions).
func (m *Model) Eval(x []int) (float64, bool) {
	if len(x) != m.numVars {
		panic("ilp: Eval with wrong assignment length")
	}
	obj := 0.0
	for i, v := range x {
		if v != 0 && v != 1 {
			return 0, false
		}
		obj += m.Obj[i] * float64(v)
	}
	const eps = 1e-9
	for _, c := range m.Constraints {
		lhs := 0.0
		for _, t := range c.Terms {
			lhs += t.Coef * float64(x[t.Var])
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+eps {
				return obj, false
			}
		case GE:
			if lhs < c.RHS-eps {
				return obj, false
			}
		default:
			if math.Abs(lhs-c.RHS) > eps {
				return obj, false
			}
		}
	}
	return obj, true
}

package ilp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// randomCounts builds a transition-count tensor for a small instance.
func randomCounts(seed uint64, layers, experts, tokens int, strength float64) [][][]float64 {
	r := rng.New(seed)
	counts := make([][][]float64, layers-1)
	for j := range counts {
		counts[j] = make([][]float64, experts)
		for e := range counts[j] {
			counts[j][e] = make([]float64, experts)
		}
	}
	for k := 0; k < tokens; k++ {
		prev := r.Intn(experts)
		for j := 0; j < layers-1; j++ {
			var next int
			if r.Float64() < strength {
				next = (prev + 1) % experts // deterministic successor pattern
			} else {
				next = r.Intn(experts)
			}
			counts[j][prev][next]++
			prev = next
		}
	}
	return counts
}

// bruteForcePlacement enumerates all balanced placements (up to global GPU
// relabeling fixed by trying all) and returns the minimal crossings.
func bruteForcePlacement(counts [][][]float64, layers, experts, gpus int) float64 {
	cap := experts / gpus
	// Enumerate balanced assignments of one layer as slices.
	var layerAssignments [][]int
	assign := make([]int, experts)
	var rec func(e int, used []int)
	rec = func(e int, used []int) {
		if e == experts {
			layerAssignments = append(layerAssignments, append([]int(nil), assign...))
			return
		}
		for g := 0; g < gpus; g++ {
			if used[g] < cap {
				used[g]++
				assign[e] = g
				rec(e+1, used)
				used[g]--
			}
		}
	}
	rec(0, make([]int, gpus))

	crossings := func(a, b []int, c [][]float64) float64 {
		total := 0.0
		for from := range c {
			for to, w := range c[from] {
				if w != 0 && a[from] != b[to] {
					total += w
				}
			}
		}
		return total
	}

	best := math.Inf(1)
	// DFS over layer choices.
	chosen := make([][]int, layers)
	var walk func(j int, acc float64)
	walk = func(j int, acc float64) {
		if acc >= best {
			return
		}
		if j == layers {
			best = acc
			return
		}
		for _, la := range layerAssignments {
			add := 0.0
			if j > 0 {
				add = crossings(chosen[j-1], la, counts[j-1])
			}
			chosen[j] = la
			walk(j+1, acc+add)
		}
	}
	walk(0, 0)
	return best
}

func TestBuildPlacementValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible experts")
		}
	}()
	BuildPlacement(PlacementProblem{Layers: 2, Experts: 5, GPUs: 2, Counts: randomCounts(1, 2, 5, 5, 0.5)})
}

func TestBuildPlacementCountsShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong counts length")
		}
	}()
	BuildPlacement(PlacementProblem{Layers: 3, Experts: 4, GPUs: 2, Counts: randomCounts(1, 2, 4, 5, 0.5)})
}

func TestPlacementILPMatchesBruteForce(t *testing.T) {
	for trial := uint64(0); trial < 6; trial++ {
		layers, experts, gpus := 2, 4, 2
		if trial%2 == 1 {
			layers = 3
		}
		counts := randomCounts(trial, layers, experts, 12, 0.6)
		pm := BuildPlacement(PlacementProblem{Layers: layers, Experts: experts, GPUs: gpus, Counts: counts})
		pl, obj, ok := pm.Solve(SolveOptions{})
		if !ok {
			t.Fatalf("trial %d: solver did not prove optimality", trial)
		}
		want := bruteForcePlacement(counts, layers, experts, gpus)
		if math.Abs(obj-want) > 1e-6 {
			t.Fatalf("trial %d: ilp %v vs brute force %v", trial, obj, want)
		}
		// Decoded placement must be balanced and reproduce the objective.
		for j := 0; j < layers; j++ {
			counts_ := make([]int, gpus)
			for e := 0; e < experts; e++ {
				g := pl[j][e]
				if g < 0 || g >= gpus {
					t.Fatalf("trial %d: invalid gpu %d", trial, g)
				}
				counts_[g]++
			}
			for g, c := range counts_ {
				if c != experts/gpus {
					t.Fatalf("trial %d: layer %d gpu %d has %d experts", trial, j, g, c)
				}
			}
		}
		check := 0.0
		for j := 0; j < layers-1; j++ {
			for from := 0; from < experts; from++ {
				for to, w := range counts[j][from] {
					if w != 0 && pl[j][from] != pl[j+1][to] {
						check += w
					}
				}
			}
		}
		if math.Abs(check-obj) > 1e-6 {
			t.Fatalf("trial %d: decoded placement crossings %v != objective %v", trial, check, obj)
		}
	}
}

func TestPlacementILPPerfectAffinityZeroCrossings(t *testing.T) {
	// A ring successor pattern (expert e -> e+1 mod E) with E=4, P=2 admits
	// a zero-crossing placement only if the successor groups align; with
	// cap=2 the groups {e, e+1} can follow the chain. Construct counts with
	// a strictly block-diagonal-friendly structure instead: experts 0,1
	// always transition among {0,1} and 2,3 among {2,3}.
	layers, experts, gpus := 3, 4, 2
	counts := make([][][]float64, layers-1)
	for j := range counts {
		counts[j] = make([][]float64, experts)
		for e := range counts[j] {
			counts[j][e] = make([]float64, experts)
		}
		counts[j][0][1] = 5
		counts[j][1][0] = 5
		counts[j][2][3] = 5
		counts[j][3][2] = 5
	}
	pm := BuildPlacement(PlacementProblem{Layers: layers, Experts: experts, GPUs: gpus, Counts: counts})
	_, obj, ok := pm.Solve(SolveOptions{})
	if !ok || obj != 0 {
		t.Fatalf("block-structured counts must give zero crossings, got %v (ok=%v)", obj, ok)
	}
}

package stats

import (
	"fmt"
	"strings"
)

// Heatmap is a labeled 2-D grid of non-negative intensities, used to render
// the paper's expert-affinity figures (Fig 2, Figs 14-16) as text or CSV.
type Heatmap struct {
	Title      string
	RowLabel   string
	ColLabel   string
	Values     [][]float64
	RowStride  int // label every RowStride-th row; 0 means every row
	cellRamp   []rune
	downsample int
}

// shadeRamp maps intensity quantiles to characters, light to dark.
var shadeRamp = []rune{' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'}

// NewHeatmap constructs a heatmap over values (rows x cols). The slice is
// retained, not copied.
func NewHeatmap(title string, values [][]float64) *Heatmap {
	return &Heatmap{Title: title, Values: values, cellRamp: shadeRamp}
}

// CSV renders the grid as comma-separated values with row/col indices.
func (h *Heatmap) CSV() string {
	var b strings.Builder
	if len(h.Values) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "# %s\n", h.Title)
	b.WriteString("row\\col")
	for j := range h.Values[0] {
		fmt.Fprintf(&b, ",%d", j)
	}
	b.WriteByte('\n')
	for i, row := range h.Values {
		fmt.Fprintf(&b, "%d", i)
		for _, v := range row {
			fmt.Fprintf(&b, ",%.6f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render draws the grid with a shade character per cell, darker meaning a
// larger value relative to the grid maximum. It is intentionally simple: it
// is used to eyeball the "few dark columns per row" structure of Fig 2 in a
// terminal.
func (h *Heatmap) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", h.Title)
	if len(h.Values) == 0 {
		return b.String()
	}
	maxV := 0.0
	for _, row := range h.Values {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	for i, row := range h.Values {
		fmt.Fprintf(&b, "%3d |", i)
		for _, v := range row {
			idx := 0
			if maxV > 0 {
				idx = int(v / maxV * float64(len(h.cellRamp)-1))
				if idx >= len(h.cellRamp) {
					idx = len(h.cellRamp) - 1
				}
			}
			b.WriteRune(h.cellRamp[idx])
		}
		b.WriteString("|\n")
	}
	if h.RowLabel != "" || h.ColLabel != "" {
		fmt.Fprintf(&b, "rows: %s, cols: %s\n", h.RowLabel, h.ColLabel)
	}
	return b.String()
}

// DominantColumnFraction returns, averaged over rows, the share of each
// row's mass captured by its top-k columns. A high value (for small k)
// is exactly the paper's "for each row only a few columns are red"
// observation quantified.
func (h *Heatmap) DominantColumnFraction(k int) float64 {
	if len(h.Values) == 0 {
		return 0
	}
	total := 0.0
	rows := 0
	for _, row := range h.Values {
		sum := Sum(row)
		if sum == 0 {
			continue
		}
		sorted := append([]float64(nil), row...)
		// Partial selection of top k by simple repeated max; rows are short.
		top := 0.0
		for i := 0; i < k && i < len(sorted); i++ {
			maxIdx := 0
			for j := 1; j < len(sorted); j++ {
				if sorted[j] > sorted[maxIdx] {
					maxIdx = j
				}
			}
			top += sorted[maxIdx]
			sorted[maxIdx] = -1
		}
		total += top / sum
		rows++
	}
	if rows == 0 {
		return 0
	}
	return total / float64(rows)
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanSumStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 || Sum(xs) != 10 {
		t.Fatal("Mean/Sum wrong")
	}
	if !almostEq(StdDev(xs), math.Sqrt(1.25), 1e-12) {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice handling wrong")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max wrong")
	}
	for _, f := range []func(){func() { Min(nil) }, func() { Max(nil) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 || Percentile(xs, 50) != 3 {
		t.Fatal("Percentile endpoints wrong")
	}
	if !almostEq(Percentile(xs, 25), 2, 1e-12) {
		t.Fatalf("P25 = %v", Percentile(xs, 25))
	}
	if Percentile([]float64{7}, 50) != 7 {
		t.Fatal("singleton percentile wrong")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNormalizeProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 10
		}
		p := Normalize(xs)
		return almostEq(Sum(p), 1, 1e-9)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	// Zero-sum becomes uniform.
	p := Normalize([]float64{0, 0, 0, 0})
	for _, v := range p {
		if v != 0.25 {
			t.Fatal("zero-sum should normalize to uniform")
		}
	}
	if len(Normalize(nil)) != 0 {
		t.Fatal("empty normalize should be empty")
	}
}

func TestNormalizeRowsDoesNotMutate(t *testing.T) {
	m := [][]float64{{2, 2}, {0, 0}}
	out := NormalizeRows(m)
	if m[0][0] != 2 {
		t.Fatal("input mutated")
	}
	if out[0][0] != 0.5 || out[1][0] != 0.5 {
		t.Fatal("NormalizeRows wrong")
	}
}

func TestScaleTo(t *testing.T) {
	out := ScaleTo([]float64{1, 2, 4}, 1)
	if out[2] != 1 || out[0] != 0.25 {
		t.Fatalf("ScaleTo wrong: %v", out)
	}
	zero := ScaleTo([]float64{0, 0}, 1)
	if zero[0] != 0 {
		t.Fatal("zero input should stay zero")
	}
}

func TestEntropy(t *testing.T) {
	if Entropy([]float64{1, 0, 0}) != 0 {
		t.Fatal("deterministic entropy should be 0")
	}
	if !almostEq(Entropy([]float64{1, 1, 1, 1}), math.Log(4), 1e-12) {
		t.Fatal("uniform entropy wrong")
	}
}

func TestGiniImbalance(t *testing.T) {
	if g := GiniImbalance([]float64{1, 1, 1, 1}); !almostEq(g, 0, 1e-12) {
		t.Fatalf("uniform gini = %v", g)
	}
	skew := GiniImbalance([]float64{0, 0, 0, 100})
	if skew < 0.7 {
		t.Fatalf("skewed gini too low: %v", skew)
	}
	if GiniImbalance([]float64{5}) != 0 || GiniImbalance(nil) != 0 {
		t.Fatal("degenerate gini should be 0")
	}
}

func TestRatioAndFormatPct(t *testing.T) {
	if Ratio(4, 2) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio wrong")
	}
	if FormatPct(0.423) != "42.3%" {
		t.Fatalf("FormatPct wrong: %s", FormatPct(0.423))
	}
}

func TestHeatmapCSVAndRender(t *testing.T) {
	h := NewHeatmap("test", [][]float64{{0, 1}, {2, 3}})
	csv := h.CSV()
	if !strings.Contains(csv, "# test") || !strings.Contains(csv, "0,0.000000,1.000000") {
		t.Fatalf("CSV malformed:\n%s", csv)
	}
	r := h.Render()
	if !strings.Contains(r, "test") || !strings.Contains(r, "@") {
		t.Fatalf("Render should shade max cell:\n%s", r)
	}
	empty := NewHeatmap("e", nil)
	if empty.CSV() != "" {
		t.Fatal("empty CSV should be empty")
	}
	_ = empty.Render() // must not panic
}

func TestDominantColumnFraction(t *testing.T) {
	// Perfectly concentrated rows: top-1 captures everything.
	h := NewHeatmap("c", [][]float64{{0, 5, 0}, {9, 0, 0}})
	if f := h.DominantColumnFraction(1); !almostEq(f, 1, 1e-12) {
		t.Fatalf("concentrated top-1 = %v", f)
	}
	// Uniform rows: top-1 captures 1/3.
	u := NewHeatmap("u", [][]float64{{1, 1, 1}})
	if f := u.DominantColumnFraction(1); !almostEq(f, 1.0/3, 1e-12) {
		t.Fatalf("uniform top-1 = %v", f)
	}
	if NewHeatmap("z", nil).DominantColumnFraction(1) != 0 {
		t.Fatal("empty heatmap fraction should be 0")
	}
}

func TestSeriesAndTable(t *testing.T) {
	tb := NewTable("fig", "gpus")
	a := tb.NewSeries("baseline")
	b := tb.NewSeries("exflow")
	a.Add(4, 1.0)
	a.Add(8, 2.0)
	b.Add(8, 1.5)
	if a.Len() != 2 {
		t.Fatal("Series.Len wrong")
	}
	text := tb.Render()
	if !strings.Contains(text, "fig") || !strings.Contains(text, "baseline") {
		t.Fatalf("Render missing parts:\n%s", text)
	}
	// Missing point renders as "-".
	if !strings.Contains(text, "-") {
		t.Fatalf("missing point not rendered:\n%s", text)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "gpus,baseline,exflow") {
		t.Fatalf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "4,1,") {
		t.Fatalf("CSV missing-value row wrong:\n%s", csv)
	}
}

func TestTableXUnionSorted(t *testing.T) {
	tb := NewTable("t", "x")
	s := tb.NewSeries("s")
	s.Add(5, 1)
	s.Add(1, 2)
	s.Add(3, 3)
	xs := tb.xUnion()
	if xs[0] != 1 || xs[1] != 3 || xs[2] != 5 {
		t.Fatalf("xUnion not sorted: %v", xs)
	}
}

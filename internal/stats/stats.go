// Package stats provides the small statistical and presentation helpers the
// experiment harness relies on: normalization, summary statistics, named
// series, and textual heatmap rendering for the paper's affinity figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Min returns the smallest element; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice. The
// input is copied; hot paths that already hold sorted data (or can sort in
// place) should use SortedPercentile to avoid the per-call copy and sort.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return SortedPercentile(sorted, p)
}

// SortedPercentile is Percentile over already-sorted (ascending) data: no
// copy, no sort. Querying several percentiles of one sample costs one sort
// total instead of one copy+sort per query.
func SortedPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Normalize returns xs scaled so the values sum to 1. A zero-sum input
// returns a uniform distribution.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	total := Sum(xs)
	if total == 0 {
		if len(xs) == 0 {
			return out
		}
		for i := range out {
			out[i] = 1 / float64(len(xs))
		}
		return out
	}
	for i, x := range xs {
		out[i] = x / total
	}
	return out
}

// NormalizeRows returns a copy of the matrix with every row scaled to sum to
// one (rows that sum to zero become uniform). The input is not modified.
func NormalizeRows(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = Normalize(row)
	}
	return out
}

// ScaleTo returns xs linearly rescaled so that its maximum equals top. A
// zero or empty input is returned unchanged (as a copy). This matches the
// paper's "scaled" presentation (e.g. Figs 6 and 12, where series are
// normalized for visualization).
func ScaleTo(xs []float64, top float64) []float64 {
	out := append([]float64(nil), xs...)
	if len(out) == 0 {
		return out
	}
	m := Max(out)
	if m == 0 {
		return out
	}
	for i := range out {
		out[i] = out[i] / m * top
	}
	return out
}

// Entropy returns the Shannon entropy (nats) of a distribution given as
// unnormalized non-negative weights.
func Entropy(ws []float64) float64 {
	p := Normalize(ws)
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// GiniImbalance returns a [0,1] load-imbalance score for a set of loads:
// 0 means perfectly uniform, values near 1 mean one bin holds everything.
func GiniImbalance(loads []float64) float64 {
	n := len(loads)
	if n <= 1 {
		return 0
	}
	sorted := append([]float64(nil), loads...)
	sort.Float64s(sorted)
	total := Sum(sorted)
	if total == 0 {
		return 0
	}
	// Standard Gini coefficient over the sorted loads.
	var cum float64
	for i, x := range sorted {
		cum += float64(i+1) * x
	}
	return (2*cum/(float64(n)*total) - float64(n+1)/float64(n))
}

// Ratio formats a/b defensively, returning 0 when b == 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// FormatPct renders a fraction as a fixed-width percentage, e.g. "42.3%".
func FormatPct(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

package stats

import (
	"fmt"
	"strings"
)

// Series is a named sequence of (x, y) points, the unit the experiment
// harness uses to emit every figure's line data.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Table is a set of series sharing one x-axis, rendered as aligned columns
// (markdown-ish) or CSV. This is the canonical textual form of each figure.
type Table struct {
	Title   string
	XName   string
	SeriesL []*Series
}

// NewTable creates an empty table.
func NewTable(title, xName string) *Table {
	return &Table{Title: title, XName: xName}
}

// AddSeries appends a series to the table.
func (t *Table) AddSeries(s *Series) { t.SeriesL = append(t.SeriesL, s) }

// NewSeries creates, registers, and returns a fresh series.
func (t *Table) NewSeries(name string) *Series {
	s := &Series{Name: name}
	t.AddSeries(s)
	return s
}

// xUnion returns the sorted union of all x values across series.
func (t *Table) xUnion() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range t.SeriesL {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	// Insertion sort; x axes are tiny.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

func (t *Table) lookup(s *Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Render returns the table as aligned text columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	xs := t.xUnion()
	fmt.Fprintf(&b, "%-14s", t.XName)
	for _, s := range t.SeriesL {
		fmt.Fprintf(&b, " %20s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14.6g", x)
		for _, s := range t.SeriesL {
			if y, ok := t.lookup(s, x); ok {
				fmt.Fprintf(&b, " %20.6g", y)
			} else {
				fmt.Fprintf(&b, " %20s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV returns the table in comma-separated form.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	b.WriteString(t.XName)
	for _, s := range t.SeriesL {
		fmt.Fprintf(&b, ",%s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range t.xUnion() {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range t.SeriesL {
			if y, ok := t.lookup(s, x); ok {
				fmt.Fprintf(&b, ",%g", y)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

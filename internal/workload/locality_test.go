package workload

import (
	"math"
	"testing"
)

// syntheticPoints samples a known model over a grid of batch sizes and
// locality profiles.
func syntheticPoints(m LocalityModel) []LocalityPoint {
	var pts []LocalityPoint
	for _, n := range []int{16, 64, 128} {
		for _, f := range [][2]float64{{0.1, 0.7}, {0.2, 0.5}, {0.3, 0.2}} {
			pts = append(pts, LocalityPoint{
				Batch: n, FracNode: f[0], FracCross: f[1],
				Seconds: m.Time(n, f[0], f[1]),
			})
		}
	}
	return pts
}

func TestFitLocalityModelRecoversCoefficients(t *testing.T) {
	want := LocalityModel{Fixed: 600e-6, PerToken: 5e-6, PerNodeHop: 1.5e-6, PerCrossHop: 4e-6}
	got, err := FitLocalityModel(syntheticPoints(want))
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]float64{
		"fixed":    {want.Fixed, got.Fixed},
		"perToken": {want.PerToken, got.PerToken},
		"nodeHop":  {want.PerNodeHop, got.PerNodeHop},
		"crossHop": {want.PerCrossHop, got.PerCrossHop},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-9 {
			t.Fatalf("%s: got %v want %v", name, pair[1], pair[0])
		}
	}
}

func TestFitLocalityModelTooFewPoints(t *testing.T) {
	m := LocalityModel{Fixed: 1e-3, PerToken: 1e-5}
	if _, err := FitLocalityModel(syntheticPoints(m)[:3]); err == nil {
		t.Fatal("three points must not fit four coefficients")
	}
}

func TestFitLocalityModelRejectsZeroMeasurements(t *testing.T) {
	pts := syntheticPoints(LocalityModel{Fixed: 1e-3, PerToken: 1e-5})
	pts[0].Seconds = 0
	if _, err := FitLocalityModel(pts); err == nil {
		t.Fatal("zero-second measurement must be rejected")
	}
	pts[0].Seconds = 1e-3
	pts[1].Batch = 0
	if _, err := FitLocalityModel(pts); err == nil {
		t.Fatal("zero batch must be rejected")
	}
}

func TestFitLocalityModelClampsNoise(t *testing.T) {
	// Points where locality has no effect at all: hop terms must clamp to
	// zero, not go negative, and the batch scaling must survive.
	var pts []LocalityPoint
	for _, n := range []int{8, 16, 32, 64, 128} {
		for _, fc := range []float64{0.2, 0.5, 0.8} {
			pts = append(pts, LocalityPoint{Batch: n, FracCross: fc, Seconds: 1e-3 + float64(n)*1e-5})
		}
	}
	m, err := FitLocalityModel(pts)
	if err != nil {
		t.Fatal(err)
	}
	if m.PerNodeHop < 0 || m.PerCrossHop < 0 {
		t.Fatalf("hop terms not clamped: %+v", m)
	}
	if math.Abs(m.PerToken-1e-5) > 1e-8 || math.Abs(m.Fixed-1e-3) > 1e-7 {
		t.Fatalf("base terms off: %+v", m)
	}
}

func TestLocalityModelTime(t *testing.T) {
	m := LocalityModel{Fixed: 1e-3, PerToken: 1e-5, PerNodeHop: 1e-6, PerCrossHop: 5e-6}
	if m.Time(0, 0.5, 0.5) != 0 || m.Time(-3, 0, 0) != 0 {
		t.Fatal("empty batch should take no time")
	}
	if m.Time(10, 0, 0.8) <= m.Time(10, 0, 0.2) {
		t.Fatal("more cross-node dispatch must cost more")
	}
	it := m.At(0.2, 0.5)
	if math.Abs(it.Time(10)-m.Time(10, 0.2, 0.5)) > 1e-12 {
		t.Fatal("At() must agree with Time()")
	}
}

func TestFitIterationModelRejectsZeroMeasurements(t *testing.T) {
	if _, err := FitIterationModel(8, 0, 32, 0.005); err == nil {
		t.Fatal("zero first measurement must be rejected")
	}
	if _, err := FitIterationModel(8, 0.005, 32, 0); err == nil {
		t.Fatal("zero second measurement must be rejected")
	}
	if _, err := FitIterationModel(8, -0.1, 32, 0.005); err == nil {
		t.Fatal("negative measurement must be rejected")
	}
}

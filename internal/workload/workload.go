// Package workload models the serving layer above the inference engine:
// request arrival processes, continuous batching, and end-to-end request
// latency. The paper evaluates steady-state throughput; a downstream user
// of ExFlow cares equally about what the throughput gain does to tail
// latency under load, which this package answers with a discrete-event
// queueing simulation driven by iteration-time measurements from the
// engine.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/stats"
)

// IterationModel is the serving-side summary of an engine configuration:
// the time of one decode iteration as a function of the active batch size,
// time(n) = Fixed + PerToken * n. Engine measurements at two batch sizes
// fit it (see FitIterationModel).
type IterationModel struct {
	Fixed    float64
	PerToken float64
}

// Time returns the modeled iteration time for an active batch of n.
func (m IterationModel) Time(n int) float64 {
	if n <= 0 {
		return 0
	}
	return m.Fixed + m.PerToken*float64(n)
}

// FitIterationModel fits the linear model through two measurements
// (batch size, per-iteration seconds). The batch sizes must differ and the
// measured times must be positive — a zero measurement would fit a model
// under which iterations are free and every queue is infinitely fast.
func FitIterationModel(n1 int, t1 float64, n2 int, t2 float64) (IterationModel, error) {
	if n1 == n2 {
		return IterationModel{}, fmt.Errorf("workload: need two distinct batch sizes")
	}
	if t1 <= 0 || t2 <= 0 {
		return IterationModel{}, fmt.Errorf("workload: non-positive iteration measurement (t1=%v t2=%v)", t1, t2)
	}
	per := (t2 - t1) / float64(n2-n1)
	fixed := t1 - per*float64(n1)
	if per < 0 || fixed < 0 {
		// Measurement noise can produce a slightly negative component;
		// clamp rather than reject, but never both.
		if per < 0 && fixed < 0 {
			return IterationModel{}, fmt.Errorf("workload: degenerate fit (fixed=%v per=%v)", fixed, per)
		}
		if per < 0 {
			per = 0
			fixed = (t1 + t2) / 2
		} else {
			fixed = 0
			per = (t1 + t2) / float64(n1+n2)
		}
	}
	return IterationModel{Fixed: fixed, PerToken: per}, nil
}

// Spec describes the offered workload.
type Spec struct {
	// ArrivalRate is requests per second (Poisson).
	ArrivalRate float64
	// DecodeTokens is the number of iterations each request needs.
	DecodeTokens int
	// MaxBatch is the server's active-slot limit (continuous batching).
	MaxBatch int
	// Requests is the number of requests to simulate.
	Requests int
	Seed     uint64
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.ArrivalRate <= 0 || s.DecodeTokens <= 0 || s.MaxBatch <= 0 || s.Requests <= 0 {
		return fmt.Errorf("workload: non-positive spec field: %+v", s)
	}
	return nil
}

// Result summarizes a simulation.
type Result struct {
	// Latencies are per-request end-to-end seconds (arrival to last token).
	Latencies []float64
	// P50, P95, P99 are latency percentiles.
	P50, P95, P99 float64
	// MeanBatch is the average active batch across iterations.
	MeanBatch float64
	// Makespan is the total simulated time.
	Makespan float64
	// Throughput is generated tokens per second over the makespan.
	Throughput float64
	// Saturated reports whether the queue grew monotonically (offered load
	// above capacity).
	Saturated bool
}

// request tracks one simulated request.
type simReq struct {
	arrival   float64
	remaining int
	finish    float64
}

// Simulate runs the continuous-batching queue: at every iteration boundary
// the server admits queued requests into free slots (FIFO), runs one decode
// iteration for all active requests (every active request yields one
// token), and retires requests that have all their tokens.
func Simulate(model IterationModel, spec Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(rng.Mix64(spec.Seed, 0x1047))
	// Pre-draw arrivals.
	reqs := make([]*simReq, spec.Requests)
	now := 0.0
	for i := range reqs {
		now += r.Exponential() / spec.ArrivalRate
		reqs[i] = &simReq{arrival: now, remaining: spec.DecodeTokens}
	}

	var active []*simReq
	next := 0 // next unadmitted request
	clock := 0.0
	iterations := 0
	batchTotal := 0
	queuePeakEarly, queuePeakLate := 0, 0
	for next < len(reqs) || len(active) > 0 {
		// Admit.
		for next < len(reqs) && len(active) < spec.MaxBatch && reqs[next].arrival <= clock {
			active = append(active, reqs[next])
			next++
		}
		if len(active) == 0 {
			// Idle: jump to the next arrival.
			clock = reqs[next].arrival
			continue
		}
		// One iteration.
		clock += model.Time(len(active))
		iterations++
		batchTotal += len(active)
		kept := active[:0]
		for _, rq := range active {
			rq.remaining--
			if rq.remaining == 0 {
				rq.finish = clock
			} else {
				kept = append(kept, rq)
			}
		}
		active = kept
		// Track queue growth for saturation detection.
		queued := 0
		for i := next; i < len(reqs) && reqs[i].arrival <= clock; i++ {
			queued++
		}
		if iterations < 64 {
			if queued > queuePeakEarly {
				queuePeakEarly = queued
			}
		} else if queued > queuePeakLate {
			queuePeakLate = queued
		}
	}

	res := &Result{Makespan: clock}
	for _, rq := range reqs {
		res.Latencies = append(res.Latencies, rq.finish-rq.arrival)
	}
	sort.Float64s(res.Latencies)
	res.P50 = stats.Percentile(res.Latencies, 50)
	res.P95 = stats.Percentile(res.Latencies, 95)
	res.P99 = stats.Percentile(res.Latencies, 99)
	if iterations > 0 {
		res.MeanBatch = float64(batchTotal) / float64(iterations)
	}
	if clock > 0 {
		res.Throughput = float64(spec.Requests*spec.DecodeTokens) / clock
	}
	res.Saturated = queuePeakLate > 4*queuePeakEarly+8
	return res, nil
}

// CapacityTokensPerSecond returns the model's asymptotic token throughput
// at full batch — the knee of the latency-vs-load curve.
func CapacityTokensPerSecond(model IterationModel, maxBatch int) float64 {
	t := model.Time(maxBatch)
	if t == 0 {
		return 0
	}
	return float64(maxBatch) / t
}

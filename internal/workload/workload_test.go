package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func testModel() IterationModel {
	return IterationModel{Fixed: 0.002, PerToken: 0.0001}
}

func TestFitIterationModel(t *testing.T) {
	m, err := FitIterationModel(8, 0.0028, 32, 0.0052)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.PerToken-0.0001) > 1e-9 || math.Abs(m.Fixed-0.002) > 1e-9 {
		t.Fatalf("bad fit: %+v", m)
	}
	if _, err := FitIterationModel(8, 1, 8, 2); err == nil {
		t.Fatal("same batch sizes should error")
	}
}

func TestFitClampsNoise(t *testing.T) {
	// Slightly decreasing measurements (noise) must not produce a negative
	// per-token term.
	m, err := FitIterationModel(8, 0.0030, 32, 0.0029)
	if err != nil {
		t.Fatal(err)
	}
	if m.PerToken < 0 || m.Fixed < 0 {
		t.Fatalf("fit not clamped: %+v", m)
	}
}

func TestModelTime(t *testing.T) {
	m := testModel()
	if m.Time(0) != 0 || m.Time(-1) != 0 {
		t.Fatal("empty batch should take no time")
	}
	if m.Time(10) <= m.Time(1) {
		t.Fatal("time must grow with batch")
	}
}

func TestSimulateLowLoad(t *testing.T) {
	m := testModel()
	res, err := Simulate(m, Spec{ArrivalRate: 5, DecodeTokens: 10, MaxBatch: 32, Requests: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latencies) != 300 {
		t.Fatalf("got %d latencies", len(res.Latencies))
	}
	// At 5 req/s against a capacity of ~6000 tok/s the system is nearly
	// idle: latency ~ DecodeTokens * Time(1).
	ideal := 10 * m.Time(1)
	if res.P50 > 3*ideal {
		t.Fatalf("low-load P50 %v too far above ideal %v", res.P50, ideal)
	}
	if res.Saturated {
		t.Fatal("low load must not saturate")
	}
	if res.P95 < res.P50 || res.P99 < res.P95 {
		t.Fatal("percentiles out of order")
	}
}

func TestSimulateLatencyGrowsWithLoad(t *testing.T) {
	m := testModel()
	p95 := func(rate float64) float64 {
		res, err := Simulate(m, Spec{ArrivalRate: rate, DecodeTokens: 10, MaxBatch: 16, Requests: 500, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res.P95
	}
	low, mid, high := p95(10), p95(100), p95(300)
	if !(low <= mid && mid < high) {
		t.Fatalf("latency should grow with load: %v, %v, %v", low, mid, high)
	}
}

func TestSimulateSaturationDetected(t *testing.T) {
	m := testModel()
	// Capacity with MaxBatch 16: 16 / (0.002 + 0.0016) = ~4400 tok/s =
	// ~440 req/s at 10 tokens each. Offer well beyond it.
	res, err := Simulate(m, Spec{ArrivalRate: 2000, DecodeTokens: 10, MaxBatch: 16, Requests: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("overload should be flagged as saturated")
	}
	if res.MeanBatch < 15 {
		t.Fatalf("saturated server should run full batches, got %v", res.MeanBatch)
	}
}

func TestSimulateFasterModelLowerLatency(t *testing.T) {
	// The serving-level consequence of ExFlow: a smaller Fixed term (less
	// Alltoall per iteration) gives lower tail latency at equal load.
	slow := IterationModel{Fixed: 0.004, PerToken: 0.0001}
	fast := IterationModel{Fixed: 0.002, PerToken: 0.0001}
	spec := Spec{ArrivalRate: 150, DecodeTokens: 10, MaxBatch: 16, Requests: 800, Seed: 4}
	rs, err := Simulate(slow, spec)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Simulate(fast, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rf.P95 >= rs.P95 {
		t.Fatalf("faster iteration model must cut P95: %v vs %v", rf.P95, rs.P95)
	}
	if rf.Throughput <= rs.Throughput && rs.Saturated {
		t.Fatal("faster model should not lose throughput under load")
	}
}

func TestSimulateSpecValidation(t *testing.T) {
	m := testModel()
	bad := []Spec{
		{},
		{ArrivalRate: 1, DecodeTokens: 0, MaxBatch: 1, Requests: 1},
		{ArrivalRate: 1, DecodeTokens: 1, MaxBatch: 0, Requests: 1},
		{ArrivalRate: -1, DecodeTokens: 1, MaxBatch: 1, Requests: 1},
	}
	for i, s := range bad {
		if _, err := Simulate(m, s); err == nil {
			t.Fatalf("spec %d should fail", i)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := testModel()
	spec := Spec{ArrivalRate: 80, DecodeTokens: 8, MaxBatch: 8, Requests: 400, Seed: 9}
	a, err := Simulate(m, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(m, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.P95 != b.P95 || a.Makespan != b.Makespan {
		t.Fatal("simulation not deterministic")
	}
}

func TestLatenciesNonNegativeProperty(t *testing.T) {
	m := testModel()
	if err := quick.Check(func(seed uint64, rateRaw uint8) bool {
		rate := float64(rateRaw%200) + 1
		res, err := Simulate(m, Spec{ArrivalRate: rate, DecodeTokens: 5, MaxBatch: 8, Requests: 100, Seed: seed})
		if err != nil {
			return false
		}
		for _, l := range res.Latencies {
			if l < 0 {
				return false
			}
		}
		return res.Makespan > 0 && res.Throughput > 0
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityTokensPerSecond(t *testing.T) {
	m := testModel()
	c := CapacityTokensPerSecond(m, 16)
	want := 16.0 / m.Time(16)
	if math.Abs(c-want) > 1e-9 {
		t.Fatalf("capacity %v, want %v", c, want)
	}
	if CapacityTokensPerSecond(IterationModel{}, 4) != 0 {
		t.Fatal("zero model should have zero capacity")
	}
}

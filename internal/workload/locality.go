package workload

import (
	"fmt"
	"math"
)

// LocalityModel extends IterationModel with the quantity the whole ExFlow
// pipeline optimizes: where token dispatches land. One decode iteration of an
// active batch of n tokens whose dispatches stay on the current GPU with
// probability (1 - fracNode - fracCross) is modeled as
//
//	time(n, fracNode, fracCross) =
//	    Fixed + n*(PerToken + PerNodeHop*fracNode + PerCrossHop*fracCross)
//
// so a placement that lowers the cross-node dispatch fraction lowers the
// effective service rate of the continuous-batching queue. The coefficients
// are fit from real engine runs (FitLocalityModel), which is how the online
// serving layer turns live routing statistics into latency without re-running
// the engine inside the discrete-event loop.
type LocalityModel struct {
	// Fixed is the per-iteration cost independent of batch size (kernel
	// launches, collective latency terms).
	Fixed float64
	// PerToken is the per-token compute cost (attention, gating, expert FFN).
	PerToken float64
	// PerNodeHop is the extra per-token cost when the dispatch crosses GPUs
	// within a node (NVLink).
	PerNodeHop float64
	// PerCrossHop is the extra per-token cost when the dispatch crosses the
	// inter-node fabric (IB).
	PerCrossHop float64
}

// Time returns the modeled iteration seconds for an active batch of n with
// the given dispatch-locality fractions.
func (m LocalityModel) Time(n int, fracNode, fracCross float64) float64 {
	if n <= 0 {
		return 0
	}
	return m.Fixed + float64(n)*(m.PerToken+m.PerNodeHop*fracNode+m.PerCrossHop*fracCross)
}

// At collapses the model to a plain IterationModel at fixed locality
// fractions — the bridge to the locality-oblivious Simulate queue.
func (m LocalityModel) At(fracNode, fracCross float64) IterationModel {
	return IterationModel{
		Fixed:    m.Fixed,
		PerToken: m.PerToken + m.PerNodeHop*fracNode + m.PerCrossHop*fracCross,
	}
}

// LocalityPoint is one engine measurement: an iteration of Batch active
// tokens whose dispatches crossed GPUs within a node with frequency FracNode
// and crossed nodes with frequency FracCross took Seconds.
type LocalityPoint struct {
	Batch               int
	FracNode, FracCross float64
	Seconds             float64
}

// FitLocalityModel least-squares fits the four coefficients through the
// measurement points. At least four points are required, and they must span
// more than one batch size and more than one locality profile or the system
// is singular. Negative coefficients (possible under measurement noise) are
// clamped to zero, mirroring FitIterationModel.
func FitLocalityModel(points []LocalityPoint) (LocalityModel, error) {
	if len(points) < 4 {
		return LocalityModel{}, fmt.Errorf("workload: need >= 4 measurement points, got %d", len(points))
	}
	for _, p := range points {
		if p.Batch <= 0 || p.Seconds <= 0 {
			return LocalityModel{}, fmt.Errorf("workload: non-positive measurement %+v", p)
		}
	}
	// Normal equations A^T A x = A^T y for rows [1, n, n*fN, n*fC] with a
	// tiny ridge term keeping near-degenerate point sets solvable.
	var ata [4][4]float64
	var aty [4]float64
	for _, p := range points {
		n := float64(p.Batch)
		row := [4]float64{1, n, n * p.FracNode, n * p.FracCross}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				ata[i][j] += row[i] * row[j]
			}
			aty[i] += row[i] * p.Seconds
		}
	}
	scale := 0.0
	for i := 0; i < 4; i++ {
		scale += ata[i][i]
	}
	ridge := 1e-12 * scale / 4
	for i := 0; i < 4; i++ {
		ata[i][i] += ridge
	}
	x, err := solve4(ata, aty)
	if err != nil {
		return LocalityModel{}, err
	}
	m := LocalityModel{Fixed: x[0], PerToken: x[1], PerNodeHop: x[2], PerCrossHop: x[3]}
	if m.Fixed < 0 {
		m.Fixed = 0
	}
	if m.PerToken < 0 {
		m.PerToken = 0
	}
	if m.PerNodeHop < 0 {
		m.PerNodeHop = 0
	}
	if m.PerCrossHop < 0 {
		m.PerCrossHop = 0
	}
	if m.Fixed == 0 && m.PerToken == 0 && m.PerNodeHop == 0 && m.PerCrossHop == 0 {
		return LocalityModel{}, fmt.Errorf("workload: degenerate locality fit (all coefficients clamped)")
	}
	return m, nil
}

// solve4 solves a 4x4 linear system by Gaussian elimination with partial
// pivoting.
func solve4(a [4][4]float64, b [4]float64) ([4]float64, error) {
	for col := 0; col < 4; col++ {
		pivot := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return [4]float64{}, fmt.Errorf("workload: singular locality fit system")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < 4; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [4]float64
	for r := 3; r >= 0; r-- {
		x[r] = b[r]
		for c := r + 1; c < 4; c++ {
			x[r] -= a[r][c] * x[c]
		}
		x[r] /= a[r][r]
	}
	return x, nil
}

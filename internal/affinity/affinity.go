// Package affinity estimates inter-layer expert affinity — the conditional
// probability P(E_{p,j+1} | E_{i,j}) of a token visiting expert p at layer
// j+1 given it visited expert i at layer j (paper Formula 1) — from routing
// traces, and provides the derived queries the placement pipeline and the
// paper's figures need.
package affinity

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Model holds the estimated conditional probabilities for every consecutive
// layer pair. Cond[j][i][p] = P(expert p at layer j+1 | expert i at layer j).
type Model struct {
	Layers  int
	Experts int
	// Cond has Layers-1 entries; rows are normalized (rows with no observed
	// tokens are uniform).
	Cond [][][]float64
	// Marginal[j][i] is the fraction of profiled tokens routed to expert i
	// at layer j.
	Marginal [][]float64
}

// Estimate fits the affinity model to a trace by maximum likelihood
// (normalized transition counts). Unobserved rows become uniform — for
// placement purposes an expert that never fires carries no preference.
func Estimate(tr *trace.Trace) *Model {
	if tr.Tokens() == 0 {
		panic("affinity: cannot estimate from an empty trace")
	}
	m := &Model{Layers: tr.Layers, Experts: tr.Experts}
	m.Cond = make([][][]float64, tr.Layers-1)
	for j := 0; j < tr.Layers-1; j++ {
		m.Cond[j] = stats.NormalizeRows(tr.TransitionCounts(j))
	}
	m.Marginal = make([][]float64, tr.Layers)
	for j := 0; j < tr.Layers; j++ {
		m.Marginal[j] = stats.Normalize(tr.LayerLoad(j))
	}
	return m
}

// P returns P(expert to at layer j+1 | expert from at layer j).
func (m *Model) P(j, from, to int) float64 {
	if j < 0 || j >= m.Layers-1 {
		panic(fmt.Sprintf("affinity: layer %d out of range", j))
	}
	return m.Cond[j][from][to]
}

// MostAffiliated returns the expert at layer j+1 with the highest
// conditional probability given expert `from` at layer j — the paper's
// Formula 2, the single-expert local optimum that Lina-style replication
// schemes chase.
func (m *Model) MostAffiliated(j, from int) int {
	row := m.Cond[j][from]
	best := 0
	for p := 1; p < len(row); p++ {
		if row[p] > row[best] {
			best = p
		}
	}
	return best
}

// GroupAffinity evaluates the paper's Formula 5: the combined probability
// that a token served by any of the `srcs` experts at layer j is next routed
// to one of the `dsts` experts at layer j+1, weighting each source row by
// the source expert's marginal load (so heavily used experts matter more).
func (m *Model) GroupAffinity(j int, srcs, dsts []int) float64 {
	total := 0.0
	weight := 0.0
	for _, s := range srcs {
		w := m.Marginal[j][s]
		row := m.Cond[j][s]
		for _, d := range dsts {
			total += w * row[d]
		}
		weight += w
	}
	if weight == 0 {
		return 0
	}
	return total / weight
}

// PairHeatmap renders the conditional-probability matrix between two
// arbitrary layers i < j of a trace as a heatmap — the artifact behind the
// paper's Fig 2 (consecutive layers) and Figs 14-16 (all later layers).
func PairHeatmap(tr *trace.Trace, i, j int) *stats.Heatmap {
	probs := stats.NormalizeRows(tr.PairCounts(i, j))
	h := stats.NewHeatmap(fmt.Sprintf("expert affinity: layer %d -> layer %d", i, j), probs)
	h.RowLabel = fmt.Sprintf("experts at layer %d", i)
	h.ColLabel = fmt.Sprintf("experts at layer %d", j)
	return h
}

// Concentration returns the mean top-k row mass of the consecutive-layer
// conditional matrices — a scalar summary of "how few columns are red" that
// the synthetic-kernel calibration and tests use.
func (m *Model) Concentration(k int) float64 {
	total := 0.0
	for j := 0; j < m.Layers-1; j++ {
		total += stats.NewHeatmap("", m.Cond[j]).DominantColumnFraction(k)
	}
	return total / float64(m.Layers-1)
}

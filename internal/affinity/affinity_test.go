package affinity

import (
	"math"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/trace"
)

func collectTrace(strength float64, tokens int) *trace.Trace {
	k := synth.NewKernel(synth.KernelParams{Seed: 3, Layers: 5, Experts: 8, Strength: strength, Domains: 1})
	kr := synth.NewKernelRouter(k, synth.Pile(), 1)
	return trace.Collect(kr, 5, trace.SequentialIDs(tokens, nil))
}

func TestEstimateRowsStochastic(t *testing.T) {
	m := Estimate(collectTrace(0.8, 2000))
	for j := 0; j < m.Layers-1; j++ {
		for i := 0; i < m.Experts; i++ {
			sum := 0.0
			for p := 0; p < m.Experts; p++ {
				v := m.P(j, i, p)
				if v < 0 || v > 1 {
					t.Fatalf("P(%d|%d)@%d = %v out of range", p, i, j, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("row (%d,%d) sums to %v", j, i, sum)
			}
		}
	}
}

func TestEstimateConvergesToKernel(t *testing.T) {
	// With a single domain the kernel's tilted rows are the ground truth;
	// estimation from many tokens must converge to them.
	k := synth.NewKernel(synth.KernelParams{Seed: 9, Layers: 3, Experts: 8, Strength: 0.7, Domains: 1})
	kr := synth.NewKernelRouter(k, synth.Pile(), 1)
	tr := trace.Collect(kr, 3, trace.SequentialIDs(80000, nil))
	m := Estimate(tr)
	load := tr.LayerLoad(0)
	for from := 0; from < 8; from++ {
		if load[from] < 1000 {
			continue
		}
		// Reconstruct the domain-averaged truth empirically is overkill;
		// since Domains=1 every token uses domain 0's tilt of the same row.
		want := kernelTiltedRow(k, 0, from)
		for to := 0; to < 8; to++ {
			if math.Abs(m.P(0, from, to)-want[to]) > 0.03 {
				t.Fatalf("P(%d|%d): est %v, kernel %v", to, from, m.P(0, from, to), want[to])
			}
		}
	}
}

// kernelTiltedRow exposes the kernel's effective row for domain 0 by Monte
// Carlo over the kernel itself (avoiding reliance on unexported methods).
func kernelTiltedRow(k *synth.Kernel, layer, from int) []float64 {
	row := make([]float64, k.Experts)
	const n = 40000
	for i := 0; i < n; i++ {
		row[k.Next(uint64(1_000_000+i), layer+1, from, 0)]++
	}
	for i := range row {
		row[i] /= n
	}
	return row
}

func TestEstimateEmptyTracePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Estimate(trace.New(3, 4))
}

func TestMostAffiliatedIsArgmax(t *testing.T) {
	m := Estimate(collectTrace(0.9, 3000))
	for j := 0; j < m.Layers-1; j++ {
		for i := 0; i < m.Experts; i++ {
			best := m.MostAffiliated(j, i)
			for p := 0; p < m.Experts; p++ {
				if m.P(j, i, p) > m.P(j, i, best) {
					t.Fatalf("MostAffiliated(%d,%d) not argmax", j, i)
				}
			}
		}
	}
}

func TestPLayerOutOfRangePanics(t *testing.T) {
	m := Estimate(collectTrace(0.5, 100))
	for _, f := range []func(){
		func() { m.P(-1, 0, 0) },
		func() { m.P(m.Layers-1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGroupAffinityBounds(t *testing.T) {
	m := Estimate(collectTrace(0.8, 2000))
	all := make([]int, m.Experts)
	for i := range all {
		all[i] = i
	}
	// Routing into the full expert set is certain.
	if got := m.GroupAffinity(0, all, all); math.Abs(got-1) > 1e-9 {
		t.Fatalf("full-set group affinity %v, want 1", got)
	}
	// Subsets give values in [0,1], and growing the destination set cannot
	// decrease the affinity.
	small := m.GroupAffinity(0, []int{0, 1}, []int{0})
	big := m.GroupAffinity(0, []int{0, 1}, []int{0, 1, 2, 3})
	if small < 0 || big > 1 || big < small {
		t.Fatalf("group affinity monotonicity broken: %v vs %v", small, big)
	}
	// Empty source group has zero weight.
	if m.GroupAffinity(0, nil, all) != 0 {
		t.Fatal("empty source group should give 0")
	}
}

func TestConcentrationTracksStrength(t *testing.T) {
	strong := Estimate(collectTrace(0.95, 4000)).Concentration(2)
	weak := Estimate(collectTrace(0.0, 4000)).Concentration(2)
	if strong <= weak+0.15 {
		t.Fatalf("concentration should track kernel strength: strong=%v weak=%v", strong, weak)
	}
}

func TestPairHeatmap(t *testing.T) {
	tr := collectTrace(0.8, 500)
	h := PairHeatmap(tr, 0, 3)
	if !strings.Contains(h.Title, "layer 0 -> layer 3") {
		t.Fatalf("title wrong: %s", h.Title)
	}
	if len(h.Values) != tr.Experts {
		t.Fatal("heatmap shape wrong")
	}
	// Rows are normalized.
	for _, row := range h.Values {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("heatmap row sums to %v", sum)
		}
	}
}

func TestMarginalSumsToOne(t *testing.T) {
	m := Estimate(collectTrace(0.8, 1000))
	for j := 0; j < m.Layers; j++ {
		sum := 0.0
		for _, v := range m.Marginal[j] {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("marginal layer %d sums to %v", j, sum)
		}
	}
}

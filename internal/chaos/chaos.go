// Package chaos is the deterministic fault-injection layer for the serving
// simulator: a declarative Schedule of typed fault events pinned to the
// simulated clock, plus the fetch-path failure model (stall-timeout with
// bounded retry/backoff) and the preemptible-DMA switch that lets a demand
// fetch reclaim the host link from an in-flight speculative prefetch.
//
// The package holds only the fault taxonomy and its arithmetic; the serve
// event loop injects crashes and recoveries, expertmem applies the link
// degradation, retries, and preemption. Everything is a pure function of the
// schedule and the simulated time, so runs with identical seeds and
// identical schedules replay bit-identically — the property the scenario
// matrix's determinism gate pins.
package chaos

import (
	"fmt"
	"math"
)

// FaultKind is the typed fault taxonomy.
type FaultKind int

const (
	// FaultCrash kills a replica at At: its residency tables and in-flight
	// iteration are lost, queued and active requests re-dispatch to the
	// surviving replicas, and its shared-host-cache references are released.
	// With RecoverAfter >= 0 the replica begins recovery after that many dead
	// seconds: the parameter re-copy and HBM re-warm are charged to the
	// simulated clock (master copies re-fetched through the fleet HostCache
	// when one exists) before it serves again. RecoverAfter < 0 means the
	// replica never recovers — its slot is then free for an autoscaler to
	// re-commission.
	FaultCrash FaultKind = iota
	// FaultLinkDegrade multiplies every host/NVMe fetch duration by Factor
	// over the window [At, At+Duration) — a degraded PCIe/NVMe path.
	FaultLinkDegrade
)

// String names the kind as it appears in logs and scenario rows.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultLinkDegrade:
		return "link-degrade"
	default:
		return "unknown"
	}
}

// Fault is one scheduled fault event. Which fields are read depends on Kind;
// the constructors below build well-formed values.
type Fault struct {
	Kind FaultKind
	// At is the simulated time the fault strikes.
	At float64
	// Replica is the crash target (FaultCrash). Replica 0 is the serving
	// stack's anchor — drift scoring and churn pricing read it — and is
	// rejected by Validate.
	Replica int
	// RecoverAfter is the dead time before the crash recovery's parameter
	// re-copy begins; negative means the replica stays dead (FaultCrash).
	RecoverAfter float64
	// Duration / Factor shape the degraded-link window (FaultLinkDegrade):
	// fetches starting inside [At, At+Duration) run Factor times slower.
	Duration float64
	Factor   float64
}

// Crash builds a replica-crash fault that begins recovery after recoverAfter
// dead seconds.
func Crash(at float64, replica int, recoverAfter float64) Fault {
	return Fault{Kind: FaultCrash, At: at, Replica: replica, RecoverAfter: recoverAfter}
}

// CrashForever builds a replica crash with no recovery.
func CrashForever(at float64, replica int) Fault {
	return Fault{Kind: FaultCrash, At: at, Replica: replica, RecoverAfter: -1}
}

// DegradeLink builds a degraded host/NVMe link window: fetches starting in
// [at, at+duration) run factor times slower.
func DegradeLink(at, duration, factor float64) Fault {
	return Fault{Kind: FaultLinkDegrade, At: at, Duration: duration, Factor: factor}
}

// Recovers reports whether a crash fault schedules a recovery.
func (f Fault) Recovers() bool { return f.Kind == FaultCrash && f.RecoverAfter >= 0 }

// Schedule is a declarative chaos plan: the fault events plus the fetch-path
// failure model. The zero value (and nil) injects nothing; a serving run
// with a nil or empty Schedule is bit-identical to one without the chaos
// layer at all.
type Schedule struct {
	// Faults are the scheduled events; order is irrelevant (the serve event
	// heap sequences them).
	Faults []Fault

	// FetchTimeout arms the fetch stall-timeout: a demand expert fetch whose
	// transfer would run longer than this many simulated seconds is abandoned
	// at the timeout and retried after FetchBackoff (doubling per attempt),
	// up to FetchRetries retries. A fetch that exhausts its retries fails,
	// and the serving layer sheds the requests stranded on it — graceful
	// degradation instead of an unbounded stall. Zero disables the model
	// (fetches wait as long as the link takes). Speculative prefetches are
	// never retried; they are preempted or evicted instead.
	FetchTimeout float64
	// FetchRetries bounds the retry attempts after the first timeout
	// (default 2 when FetchTimeout is set).
	FetchRetries int
	// FetchBackoff is the idle wait before the first retry, doubling each
	// attempt (default FetchTimeout/2).
	FetchBackoff float64

	// PreemptibleDMA lets a demand fetch preempt an in-flight speculative
	// prefetch occupying the same GPU's host link: the speculative transfer
	// is cancelled (slot freed, master reference released) and the demand
	// transfer starts immediately, instead of queueing FIFO behind
	// speculation — PR 2's open priority-DMA item.
	PreemptibleDMA bool
}

// Enabled reports whether the schedule injects anything at all. Nil-safe.
func (s *Schedule) Enabled() bool {
	if s == nil {
		return false
	}
	return len(s.Faults) > 0 || s.FetchTimeout > 0 || s.PreemptibleDMA
}

// WithDefaults returns the schedule with the retry model's derived defaults
// resolved.
func (s Schedule) WithDefaults() Schedule {
	if s.FetchTimeout > 0 {
		if s.FetchRetries == 0 {
			s.FetchRetries = 2
		}
		if s.FetchBackoff == 0 {
			s.FetchBackoff = s.FetchTimeout / 2
		}
	}
	return s
}

// Validate checks the schedule. Replica ids are validated against the
// serving fleet's slot count by the serve layer (the schedule cannot know
// it); everything else is checked here.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, f := range s.Faults {
		switch f.Kind {
		case FaultCrash:
			if f.At < 0 {
				return fmt.Errorf("chaos: fault %d: crash time must be non-negative, got %v", i, f.At)
			}
			if f.Replica == 0 {
				// Replica 0 anchors drift scoring and churn pricing and is
				// never drained by the autoscaler either; crashing it would
				// leave the controller without a reference replica.
				return fmt.Errorf("chaos: fault %d: replica 0 is the controller anchor and cannot crash", i)
			}
			if f.Replica < 0 {
				return fmt.Errorf("chaos: fault %d: crash replica must be positive, got %d", i, f.Replica)
			}
		case FaultLinkDegrade:
			if f.At < 0 {
				return fmt.Errorf("chaos: fault %d: degrade start must be non-negative, got %v", i, f.At)
			}
			if f.Duration <= 0 {
				return fmt.Errorf("chaos: fault %d: degrade duration must be positive, got %v", i, f.Duration)
			}
			if f.Factor < 1 {
				return fmt.Errorf("chaos: fault %d: degrade factor must be >= 1, got %v", i, f.Factor)
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %d", i, int(f.Kind))
		}
	}
	switch {
	case s.FetchTimeout < 0:
		return fmt.Errorf("chaos: FetchTimeout must be non-negative, got %v", s.FetchTimeout)
	case s.FetchRetries < 0:
		return fmt.Errorf("chaos: FetchRetries must be non-negative, got %d", s.FetchRetries)
	case s.FetchBackoff < 0:
		return fmt.Errorf("chaos: FetchBackoff must be non-negative, got %v", s.FetchBackoff)
	case s.FetchTimeout == 0 && (s.FetchRetries > 0 || s.FetchBackoff > 0):
		return fmt.Errorf("chaos: FetchRetries/FetchBackoff set but FetchTimeout is 0 (retry model disabled); set FetchTimeout or drop them")
	}
	return nil
}

// ValidateReplicas checks crash targets against the serving fleet's slot
// count (initial replicas plus any autoscaler headroom).
func (s *Schedule) ValidateReplicas(slots int) error {
	if s == nil {
		return nil
	}
	for i, f := range s.Faults {
		if f.Kind == FaultCrash && f.Replica >= slots {
			return fmt.Errorf("chaos: fault %d: crash replica %d out of range (fleet has %d slots)", i, f.Replica, slots)
		}
	}
	return nil
}

// LinkFactor is the bandwidth slowdown multiplying a fetch that starts at
// simulated time now: the product of every degrade window covering now, 1
// when none do. Nil-safe.
func (s *Schedule) LinkFactor(now float64) float64 {
	if s == nil {
		return 1
	}
	factor := 1.0
	for _, f := range s.Faults {
		if f.Kind == FaultLinkDegrade && now >= f.At && now < f.At+f.Duration {
			factor *= f.Factor
		}
	}
	return factor
}

// Degraded reports whether any degrade window exists, so integrations can
// skip installing the per-fetch LinkFactor hook entirely on schedules that
// never touch the link. Nil-safe.
func (s *Schedule) Degraded() bool {
	if s == nil {
		return false
	}
	for _, f := range s.Faults {
		if f.Kind == FaultLinkDegrade {
			return true
		}
	}
	return false
}

// Crashes returns the crash faults in schedule order.
func (s *Schedule) Crashes() []Fault {
	if s == nil {
		return nil
	}
	var out []Fault
	for _, f := range s.Faults {
		if f.Kind == FaultCrash {
			out = append(out, f)
		}
	}
	return out
}

// DegradeWindows counts the degraded-link windows.
func (s *Schedule) DegradeWindows() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, f := range s.Faults {
		if f.Kind == FaultLinkDegrade {
			n++
		}
	}
	return n
}

// Backoff returns the idle wait before retry attempt (1-based),
// doubling per attempt: FetchBackoff, 2*FetchBackoff, 4*FetchBackoff, ...
func (s *Schedule) Backoff(attempt int) float64 {
	if s == nil || attempt < 1 {
		return 0
	}
	return s.FetchBackoff * math.Pow(2, float64(attempt-1))
}

// CrashOutcome records one crash fault's realized lifecycle for the report.
type CrashOutcome struct {
	// Replica and At echo the fault; Redispatched counts the queued plus
	// in-flight requests moved to surviving replicas at the crash instant.
	Replica      int
	At           float64
	Redispatched int
	// RecoveredAt is when the replica went live again (0 while dead; the
	// fault may never recover).
	RecoveredAt float64
}

// Report is the fault ledger a chaos-enabled serving run attaches to its
// report (ServeReport.Faults): what was injected and what it cost.
type Report struct {
	// Crashes is the per-crash ledger; Recoveries counts those that
	// completed recovery, and DowntimeSeconds sums their dead-to-live spans.
	Crashes         []CrashOutcome
	Recoveries      int
	DowntimeSeconds float64
	// Redispatched / LostIterations: requests moved off crashed replicas and
	// in-flight iterations aborted by crashes.
	Redispatched   int
	LostIterations int
	// LinkDegradeWindows counts the scheduled degraded-link windows.
	LinkDegradeWindows int
	// FetchRetries / FetchTimeouts / RetryExhausted are the fetch failure
	// model's counters (from expertmem): retry attempts issued, attempts
	// abandoned at the timeout, and fetches that exhausted their retries.
	FetchRetries   int
	FetchTimeouts  int
	RetryExhausted int
	// ShedRetryExhausted counts requests shed because their iteration
	// depended on a retry-exhausted fetch — the graceful-degradation path.
	ShedRetryExhausted int
	// Preemptions counts speculative transfers cancelled by demand fetches
	// under preemptible DMA.
	Preemptions int
}

// String renders a one-line summary.
func (r *Report) String() string {
	if r == nil {
		return "chaos: no faults"
	}
	return fmt.Sprintf("chaos: %d crashes (%d recovered, %.3fs down, %d redispatched, %d iterations lost), %d degrade windows, fetch %d retries/%d timeouts/%d exhausted (%d shed), %d preemptions",
		len(r.Crashes), r.Recoveries, r.DowntimeSeconds, r.Redispatched, r.LostIterations,
		r.LinkDegradeWindows, r.FetchRetries, r.FetchTimeouts, r.RetryExhausted, r.ShedRetryExhausted, r.Preemptions)
}

package chaos

import (
	"strings"
	"testing"
)

func TestScheduleEnabled(t *testing.T) {
	var nilSched *Schedule
	if nilSched.Enabled() {
		t.Error("nil schedule reported enabled")
	}
	if (&Schedule{}).Enabled() {
		t.Error("empty schedule reported enabled")
	}
	for _, s := range []*Schedule{
		{Faults: []Fault{Crash(1, 1, 0)}},
		{FetchTimeout: 0.01},
		{PreemptibleDMA: true},
	} {
		if !s.Enabled() {
			t.Errorf("schedule %+v reported disabled", s)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	var nilSched *Schedule
	if err := nilSched.Validate(); err != nil {
		t.Errorf("nil schedule rejected: %v", err)
	}
	good := &Schedule{
		Faults: []Fault{
			Crash(2, 1, 0.5),
			CrashForever(3, 2),
			DegradeLink(1, 2, 4),
		},
		FetchTimeout: 0.02, FetchRetries: 3, FetchBackoff: 0.01,
		PreemptibleDMA: true,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	bad := []struct {
		name string
		s    Schedule
		want string
	}{
		{"crash replica 0", Schedule{Faults: []Fault{Crash(1, 0, 0)}}, "anchor"},
		{"negative crash replica", Schedule{Faults: []Fault{Crash(1, -1, 0)}}, "positive"},
		{"negative crash time", Schedule{Faults: []Fault{Crash(-1, 1, 0)}}, "non-negative"},
		{"negative degrade start", Schedule{Faults: []Fault{DegradeLink(-1, 1, 2)}}, "non-negative"},
		{"zero degrade duration", Schedule{Faults: []Fault{DegradeLink(1, 0, 2)}}, "duration"},
		{"sub-1 degrade factor", Schedule{Faults: []Fault{DegradeLink(1, 1, 0.5)}}, "factor"},
		{"unknown kind", Schedule{Faults: []Fault{{Kind: FaultKind(99), At: 1}}}, "unknown"},
		{"negative timeout", Schedule{FetchTimeout: -1}, "FetchTimeout"},
		{"negative retries", Schedule{FetchTimeout: 1, FetchRetries: -1}, "FetchRetries"},
		{"negative backoff", Schedule{FetchTimeout: 1, FetchBackoff: -1}, "FetchBackoff"},
		{"retries without timeout", Schedule{FetchRetries: 2}, "retry model disabled"},
	}
	for _, tc := range bad {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateReplicas(t *testing.T) {
	var nilSched *Schedule
	if err := nilSched.ValidateReplicas(2); err != nil {
		t.Errorf("nil schedule rejected: %v", err)
	}
	s := &Schedule{Faults: []Fault{Crash(1, 3, 0)}}
	if err := s.ValidateReplicas(4); err != nil {
		t.Errorf("in-range crash rejected: %v", err)
	}
	if err := s.ValidateReplicas(3); err == nil {
		t.Error("out-of-range crash replica accepted")
	}
}

func TestLinkFactorWindows(t *testing.T) {
	var nilSched *Schedule
	if got := nilSched.LinkFactor(1); got != 1 {
		t.Errorf("nil schedule factor = %v, want 1", got)
	}
	s := &Schedule{Faults: []Fault{
		DegradeLink(1, 2, 4), // [1, 3)
		DegradeLink(2, 2, 3), // [2, 4): overlaps -> factors multiply
		Crash(2.5, 1, 0),     // ignored by the link model
	}}
	cases := []struct {
		now, want float64
	}{
		{0.5, 1}, {1, 4}, {2.5, 12}, {3, 3}, {3.999, 3}, {4, 1},
	}
	for _, c := range cases {
		if got := s.LinkFactor(c.now); got != c.want {
			t.Errorf("LinkFactor(%v) = %v, want %v", c.now, got, c.want)
		}
	}
	if !s.Degraded() {
		t.Error("schedule with degrade windows reported un-degraded")
	}
	if (&Schedule{Faults: []Fault{Crash(1, 1, 0)}}).Degraded() {
		t.Error("crash-only schedule reported degraded")
	}
	if nilSched.Degraded() {
		t.Error("nil schedule reported degraded")
	}
}

func TestWithDefaultsResolvesRetryModel(t *testing.T) {
	s := (Schedule{FetchTimeout: 0.1}).WithDefaults()
	if s.FetchRetries != 2 {
		t.Errorf("default retries = %d, want 2", s.FetchRetries)
	}
	if s.FetchBackoff != 0.05 {
		t.Errorf("default backoff = %v, want 0.05", s.FetchBackoff)
	}
	// Explicit values survive; a disabled model stays untouched.
	s = (Schedule{FetchTimeout: 0.1, FetchRetries: 5, FetchBackoff: 0.2}).WithDefaults()
	if s.FetchRetries != 5 || s.FetchBackoff != 0.2 {
		t.Errorf("explicit retry model overwritten: %+v", s)
	}
	s = (Schedule{}).WithDefaults()
	if s.FetchRetries != 0 || s.FetchBackoff != 0 {
		t.Errorf("disabled model gained defaults: %+v", s)
	}
}

func TestBackoffDoubles(t *testing.T) {
	s := &Schedule{FetchTimeout: 1, FetchBackoff: 0.01}
	want := []float64{0.01, 0.02, 0.04}
	for i, w := range want {
		if got := s.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := s.Backoff(0); got != 0 {
		t.Errorf("Backoff(0) = %v, want 0", got)
	}
	var nilSched *Schedule
	if got := nilSched.Backoff(1); got != 0 {
		t.Errorf("nil Backoff = %v, want 0", got)
	}
}

func TestScheduleAccessors(t *testing.T) {
	var nilSched *Schedule
	if nilSched.Crashes() != nil || nilSched.DegradeWindows() != 0 {
		t.Error("nil schedule accessors not empty")
	}
	s := &Schedule{Faults: []Fault{
		Crash(1, 1, 0.5),
		DegradeLink(2, 1, 2),
		CrashForever(3, 2),
	}}
	cr := s.Crashes()
	if len(cr) != 2 || cr[0].Replica != 1 || cr[1].Replica != 2 {
		t.Errorf("Crashes() = %+v", cr)
	}
	if !cr[0].Recovers() || cr[1].Recovers() {
		t.Errorf("Recovers wrong: %+v", cr)
	}
	if s.DegradeWindows() != 1 {
		t.Errorf("DegradeWindows = %d, want 1", s.DegradeWindows())
	}
	for k, want := range map[FaultKind]string{FaultCrash: "crash", FaultLinkDegrade: "link-degrade", FaultKind(9): "unknown"} {
		if k.String() != want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestReportString(t *testing.T) {
	var nilRep *Report
	if !strings.Contains(nilRep.String(), "no faults") {
		t.Errorf("nil report string = %q", nilRep.String())
	}
	r := &Report{
		Crashes:            []CrashOutcome{{Replica: 1, At: 2, RecoveredAt: 3}},
		Recoveries:         1,
		DowntimeSeconds:    1,
		Redispatched:       4,
		LinkDegradeWindows: 1,
		RetryExhausted:     2,
		ShedRetryExhausted: 2,
		Preemptions:        7,
	}
	out := r.String()
	for _, want := range []string{"1 crashes", "1 recovered", "4 redispatched", "2 exhausted", "7 preemptions"} {
		if !strings.Contains(out, want) {
			t.Errorf("report string %q missing %q", out, want)
		}
	}
}

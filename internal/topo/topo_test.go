package topo

import (
	"math"
	"testing"
	"testing/quick"
)

func testTopo() *Topology { return Wilkes3(4) }

func TestValidatePresets(t *testing.T) {
	for _, tp := range []*Topology{Wilkes3(1), Wilkes3(16), SingleNode(4), SingleNode(8), ForGPUs(1), ForGPUs(64)} {
		if err := tp.Validate(); err != nil {
			t.Fatalf("preset invalid: %v", err)
		}
	}
}

func TestValidateRejectsBad(t *testing.T) {
	bad := []*Topology{
		{Nodes: 0, GPUsPerNode: 4, IntraNode: LinkCost{0, 1}, InterNode: LinkCost{0, 1}, LocalCopy: LinkCost{0, 1}},
		{Nodes: 1, GPUsPerNode: 0, IntraNode: LinkCost{0, 1}, InterNode: LinkCost{0, 1}, LocalCopy: LinkCost{0, 1}},
		{Nodes: 1, GPUsPerNode: 1, IntraNode: LinkCost{0, 0}, InterNode: LinkCost{0, 1}, LocalCopy: LinkCost{0, 1}},
		{Nodes: 1, GPUsPerNode: 1, IntraNode: LinkCost{-1, 1}, InterNode: LinkCost{0, 1}, LocalCopy: LinkCost{0, 1}},
	}
	for i, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestRankGeometryRoundTrip(t *testing.T) {
	tp := testTopo()
	if err := quick.Check(func(raw uint16) bool {
		r := int(raw) % tp.TotalGPUs()
		return tp.Rank(tp.NodeOf(r), tp.LocalOf(r)) == r
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassify(t *testing.T) {
	tp := testTopo() // 4 nodes x 4 gpus
	cases := []struct {
		src, dst int
		want     HopClass
	}{
		{0, 0, SameGPU},
		{0, 1, SameNode},
		{0, 3, SameNode},
		{0, 4, CrossNode},
		{5, 6, SameNode},
		{5, 9, CrossNode},
		{15, 15, SameGPU},
		{12, 15, SameNode},
		{3, 12, CrossNode},
	}
	for _, c := range cases {
		if got := tp.Classify(c.src, c.dst); got != c.want {
			t.Fatalf("Classify(%d,%d) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestClassifySymmetric(t *testing.T) {
	tp := testTopo()
	for src := 0; src < tp.TotalGPUs(); src++ {
		for dst := 0; dst < tp.TotalGPUs(); dst++ {
			if tp.Classify(src, dst) != tp.Classify(dst, src) {
				t.Fatalf("asymmetric classification %d<->%d", src, dst)
			}
		}
	}
}

func TestLinkTierOrdering(t *testing.T) {
	tp := testTopo()
	const n = 1 << 20 // 1 MiB
	local := tp.TransferTime(0, 0, n)
	intra := tp.TransferTime(0, 1, n)
	inter := tp.TransferTime(0, 4, n)
	if !(local < intra && intra < inter) {
		t.Fatalf("tier ordering broken: local=%v intra=%v inter=%v", local, intra, inter)
	}
}

func TestTransferTimeMonotoneInBytes(t *testing.T) {
	tp := testTopo()
	if err := quick.Check(func(aRaw, bRaw uint32) bool {
		a, b := int(aRaw%1e6), int(bRaw%1e6)
		if a > b {
			a, b = b, a
		}
		return tp.TransferTime(0, 4, a) <= tp.TransferTime(0, 4, b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBytesZeroTime(t *testing.T) {
	tp := testTopo()
	if tp.TransferTime(0, 4, 0) != 0 {
		t.Fatal("zero-byte transfer should be free")
	}
}

func TestNegativeBytesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testTopo().TransferTime(0, 1, -1)
}

func TestRanksOnNode(t *testing.T) {
	tp := testTopo()
	rs := tp.RanksOnNode(2)
	want := []int{8, 9, 10, 11}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("RanksOnNode(2) = %v", rs)
		}
	}
}

func TestRankOutOfRangePanics(t *testing.T) {
	tp := testTopo()
	for _, f := range []func(){
		func() { tp.NodeOf(-1) },
		func() { tp.NodeOf(16) },
		func() { tp.Classify(0, 16) },
		func() { tp.RanksOnNode(4) },
		func() { tp.Rank(0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestForGPUsGeometry(t *testing.T) {
	cases := []struct {
		gpus, nodes, perNode int
	}{
		{1, 1, 1}, {2, 1, 2}, {4, 1, 4}, {8, 2, 4}, {16, 4, 4}, {32, 8, 4}, {64, 16, 4},
	}
	for _, c := range cases {
		tp := ForGPUs(c.gpus)
		if tp.Nodes != c.nodes || tp.GPUsPerNode != c.perNode {
			t.Fatalf("ForGPUs(%d) = %dx%d, want %dx%d", c.gpus, tp.Nodes, tp.GPUsPerNode, c.nodes, c.perNode)
		}
		if tp.TotalGPUs() != c.gpus {
			t.Fatalf("ForGPUs(%d) total %d", c.gpus, tp.TotalGPUs())
		}
	}
}

func TestForGPUsRejectsBadCounts(t *testing.T) {
	for _, g := range []int{0, -4, 6, 13} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %d", g)
				}
			}()
			ForGPUs(g)
		}()
	}
}

func TestLinkCostTime(t *testing.T) {
	l := LinkCost{Latency: 1e-6, Bandwidth: 1e9}
	if got := l.Time(1000); math.Abs(got-2e-6) > 1e-12 {
		t.Fatalf("Time(1000) = %v, want 2e-6", got)
	}
}

func TestHopClassString(t *testing.T) {
	if SameGPU.String() != "same-gpu" || SameNode.String() != "same-node" || CrossNode.String() != "cross-node" {
		t.Fatal("HopClass strings wrong")
	}
}

func TestMemoryTierDefaults(t *testing.T) {
	// Presets carry explicit memory-tier figures.
	w := Wilkes3(2)
	if w.HBMCapacity() != DefaultHBMBytes || w.HostPath() != DefaultHostLink || w.NVMePath() != DefaultNVMeLink {
		t.Fatalf("preset tiers wrong: %+v", w)
	}
	// A legacy literal topology (zero tier fields) falls back to defaults
	// and still validates.
	legacy := &Topology{
		Nodes: 1, GPUsPerNode: 2,
		IntraNode: LinkCost{Latency: 1e-6, Bandwidth: 1e11},
		InterNode: LinkCost{Latency: 1e-6, Bandwidth: 1e10},
		LocalCopy: LinkCost{Latency: 1e-7, Bandwidth: 1e12},
	}
	if err := legacy.Validate(); err != nil {
		t.Fatal(err)
	}
	if legacy.HBMCapacity() != DefaultHBMBytes || legacy.HostPath().Bandwidth != DefaultHostLink.Bandwidth {
		t.Fatal("legacy topology did not default its memory tiers")
	}
	// Host/NVMe tier ordering: HBM-local copy beats host beats NVMe.
	n := 16 << 20
	if !(legacy.LocalCopy.Time(n) < legacy.HostPath().Time(n) && legacy.HostPath().Time(n) < legacy.NVMePath().Time(n)) {
		t.Fatal("memory tier ordering violated")
	}
	// Malformed tier fields are rejected.
	bad := *legacy
	bad.HBMBytes = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative HBM accepted")
	}
	bad = *legacy
	bad.HostLink = LinkCost{Latency: 1e-6}
	if err := bad.Validate(); err == nil {
		t.Fatal("latency-only host link accepted")
	}
}

package topo

// Wilkes3 returns a topology modeled after the cluster the paper evaluates
// on: nodes of 4 NVIDIA A100-SXM4-80GB GPUs connected by NVLink, with
// dual-rail Mellanox HDR200 InfiniBand between nodes.
//
// Numbers are effective point-to-point figures, not peak marketing numbers:
//   - NVLink (A100, NVLink3): ~300 GB/s effective unidirectional per pair,
//     ~2 microsecond launch+copy latency.
//   - HDR200 dual-rail: 2 x 200 Gb/s = ~50 GB/s, ~5 microsecond latency
//     (RDMA small-message latency is ~1-2 us; 5 us accounts for GPUDirect
//     staging overhead at the message sizes MoE inference produces).
//   - Local HBM2e copy: ~1.5 TB/s, negligible latency.
//
// The memory-tier figures extend the same philosophy one level down: 80 GB
// HBM per A100, a PCIe 4.0 x16 host link (~25 GB/s effective) to host DRAM,
// and a datacenter NVMe drive (~6 GB/s sustained read) behind it. The
// tiered expert-weight memory subsystem only needs the ordering
// HBM >> PCIe >> NVMe, which these preserve.
//
// The paper's qualitative claims depend only on the ordering
// LocalCopy >> NVLink >> IB, which these figures preserve.
func Wilkes3(nodes int) *Topology {
	return &Topology{
		Nodes:       nodes,
		GPUsPerNode: 4,
		IntraNode:   LinkCost{Latency: 2e-6, Bandwidth: 300e9},
		InterNode:   LinkCost{Latency: 5e-6, Bandwidth: 50e9},
		LocalCopy:   LinkCost{Latency: 1e-7, Bandwidth: 1500e9},
		HBMBytes:    DefaultHBMBytes,
		HostLink:    DefaultHostLink,
		NVMeLink:    DefaultNVMeLink,
	}
}

// SingleNode returns a one-node topology with the given GPU count, NVLink
// only. Used for the paper's 4- and 8-GPU single-node configurations (the
// 8-GPU case models a DGX-style box).
func SingleNode(gpus int) *Topology {
	return &Topology{
		Nodes:       1,
		GPUsPerNode: gpus,
		IntraNode:   LinkCost{Latency: 2e-6, Bandwidth: 300e9},
		InterNode:   LinkCost{Latency: 5e-6, Bandwidth: 50e9},
		LocalCopy:   LinkCost{Latency: 1e-7, Bandwidth: 1500e9},
		HBMBytes:    DefaultHBMBytes,
		HostLink:    DefaultHostLink,
		NVMeLink:    DefaultNVMeLink,
	}
}

// ForGPUs returns the topology the paper uses for a given total GPU count:
// a single node when the count fits in one 4-GPU (or 8-GPU) box, otherwise
// ceil(gpus/4) Wilkes3 nodes. It panics if gpus is not a positive multiple
// that fits the 4-GPU node geometry (except 1, 2 and 8, which the paper also
// uses as single-box runs).
func ForGPUs(gpus int) *Topology {
	switch {
	case gpus <= 0:
		panic("topo: non-positive gpu count")
	case gpus <= 4:
		return SingleNode(gpus)
	case gpus == 8:
		// The paper's 8-GPU expert-parallel runs use 2 Wilkes3 nodes.
		return Wilkes3(2)
	default:
		if gpus%4 != 0 {
			panic("topo: gpu count must be a multiple of 4 beyond one node")
		}
		return Wilkes3(gpus / 4)
	}
}

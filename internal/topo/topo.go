// Package topo models the hierarchical hardware topology of a GPU cluster:
// nodes connected by an inter-node fabric (e.g. InfiniBand) and GPUs inside
// each node connected by a fast intra-node interconnect (e.g. NVLink).
//
// The paper's entire optimization revolves around which of three tiers a
// token hop traverses — same GPU (free), same node (NVLink), or cross node
// (IB) — so this package provides both the rank<->(node, local GPU) geometry
// and an alpha-beta (latency + bytes/bandwidth) cost model for each tier.
package topo

import "fmt"

// HopClass classifies where a point-to-point transfer lands relative to the
// sending GPU.
type HopClass int

const (
	// SameGPU means source and destination rank are identical; no transfer.
	SameGPU HopClass = iota
	// SameNode means the transfer rides the intra-node interconnect.
	SameNode
	// CrossNode means the transfer crosses the inter-node fabric.
	CrossNode
)

// String returns a human-readable tier name.
func (h HopClass) String() string {
	switch h {
	case SameGPU:
		return "same-gpu"
	case SameNode:
		return "same-node"
	case CrossNode:
		return "cross-node"
	default:
		return fmt.Sprintf("HopClass(%d)", int(h))
	}
}

// LinkCost is an alpha-beta cost model: transferring n bytes over the link
// takes Latency + n/Bandwidth seconds.
type LinkCost struct {
	// Latency is the fixed per-message cost in seconds.
	Latency float64
	// Bandwidth is in bytes per second.
	Bandwidth float64
}

// Time returns the modeled transfer time in seconds for n bytes.
func (l LinkCost) Time(n int) float64 {
	if n < 0 {
		panic("topo: negative byte count")
	}
	if n == 0 {
		return 0
	}
	return l.Latency + float64(n)/l.Bandwidth
}

// Topology describes a homogeneous cluster of Nodes nodes, each holding
// GPUsPerNode GPUs. Global ranks are assigned node-major: rank = node *
// GPUsPerNode + localGPU, matching the usual MPI + CUDA_VISIBLE_DEVICES
// launch convention.
type Topology struct {
	Nodes       int
	GPUsPerNode int
	// IntraNode is the GPU-to-GPU link inside a node (NVLink class).
	IntraNode LinkCost
	// InterNode is the GPU-to-GPU path across nodes (IB class).
	InterNode LinkCost
	// LocalCopy is the cost of moving data within one GPU's memory. The
	// paper treats same-GPU routing as free relative to the network; a small
	// non-zero bandwidth keeps the simulator's time strictly monotone in
	// bytes moved.
	LocalCopy LinkCost

	// The memory hierarchy below HBM, used by the tiered expert-weight
	// memory subsystem (internal/expertmem) to page expert parameters when
	// the model oversubscribes aggregate GPU memory. Zero values fall back
	// to DefaultHBMBytes / DefaultHostLink / DefaultNVMeLink via the
	// accessor methods, so topologies constructed literally by older code
	// keep working.

	// HBMBytes is one GPU's high-bandwidth-memory capacity in bytes.
	HBMBytes int64
	// HostLink is the HBM <-> host-DRAM path (PCIe class), per GPU.
	HostLink LinkCost
	// NVMeLink is the host-DRAM <-> NVMe path for expert master copies that
	// do not fit in host DRAM.
	NVMeLink LinkCost
}

// Default memory-tier figures: an A100-SXM4-80GB behind PCIe 4.0 x16
// (~25 GB/s effective host link) over a datacenter NVMe drive (~6 GB/s
// sustained read). As with the network links these are effective
// point-to-point numbers; the tiering conclusions only need the ordering
// HBM >> PCIe >> NVMe.
var (
	DefaultHostLink = LinkCost{Latency: 10e-6, Bandwidth: 25e9}
	DefaultNVMeLink = LinkCost{Latency: 100e-6, Bandwidth: 6e9}
)

// DefaultHBMBytes is the per-GPU HBM capacity assumed when a topology does
// not specify one (A100-80GB).
const DefaultHBMBytes = int64(80e9)

// HBMCapacity returns the per-GPU HBM byte budget, defaulting when unset.
func (t *Topology) HBMCapacity() int64 {
	if t.HBMBytes > 0 {
		return t.HBMBytes
	}
	return DefaultHBMBytes
}

// HostPath returns the HBM<->host-DRAM link cost, defaulting when unset.
func (t *Topology) HostPath() LinkCost {
	if t.HostLink.Bandwidth > 0 {
		return t.HostLink
	}
	return DefaultHostLink
}

// NVMePath returns the host-DRAM<->NVMe link cost, defaulting when unset.
func (t *Topology) NVMePath() LinkCost {
	if t.NVMeLink.Bandwidth > 0 {
		return t.NVMeLink
	}
	return DefaultNVMeLink
}

// Validate reports an error if the topology is malformed.
func (t *Topology) Validate() error {
	if t.Nodes <= 0 || t.GPUsPerNode <= 0 {
		return fmt.Errorf("topo: need positive nodes (%d) and gpus/node (%d)", t.Nodes, t.GPUsPerNode)
	}
	if t.IntraNode.Bandwidth <= 0 || t.InterNode.Bandwidth <= 0 || t.LocalCopy.Bandwidth <= 0 {
		return fmt.Errorf("topo: bandwidths must be positive")
	}
	if t.IntraNode.Latency < 0 || t.InterNode.Latency < 0 || t.LocalCopy.Latency < 0 {
		return fmt.Errorf("topo: latencies must be non-negative")
	}
	// Memory-tier fields are optional (zero selects defaults) but must not
	// be negative or half-specified in a way Time() would misprice.
	if t.HBMBytes < 0 {
		return fmt.Errorf("topo: negative HBM capacity %d", t.HBMBytes)
	}
	for _, l := range []struct {
		name string
		lc   LinkCost
	}{{"host", t.HostLink}, {"nvme", t.NVMeLink}} {
		if l.lc.Bandwidth < 0 || l.lc.Latency < 0 {
			return fmt.Errorf("topo: %s link must have non-negative latency and bandwidth", l.name)
		}
		if l.lc.Bandwidth == 0 && l.lc.Latency > 0 {
			return fmt.Errorf("topo: %s link has latency but no bandwidth", l.name)
		}
	}
	return nil
}

// TotalGPUs returns the number of global ranks.
func (t *Topology) TotalGPUs() int { return t.Nodes * t.GPUsPerNode }

// NodeOf returns the node index that owns global rank r.
func (t *Topology) NodeOf(r int) int {
	t.checkRank(r)
	return r / t.GPUsPerNode
}

// LocalOf returns the GPU index of rank r within its node.
func (t *Topology) LocalOf(r int) int {
	t.checkRank(r)
	return r % t.GPUsPerNode
}

// Rank returns the global rank for (node, local).
func (t *Topology) Rank(node, local int) int {
	if node < 0 || node >= t.Nodes || local < 0 || local >= t.GPUsPerNode {
		panic(fmt.Sprintf("topo: invalid (node=%d, local=%d)", node, local))
	}
	return node*t.GPUsPerNode + local
}

func (t *Topology) checkRank(r int) {
	if r < 0 || r >= t.TotalGPUs() {
		panic(fmt.Sprintf("topo: rank %d out of range [0,%d)", r, t.TotalGPUs()))
	}
}

// Classify returns the hop tier between two ranks.
func (t *Topology) Classify(src, dst int) HopClass {
	t.checkRank(src)
	t.checkRank(dst)
	switch {
	case src == dst:
		return SameGPU
	case src/t.GPUsPerNode == dst/t.GPUsPerNode:
		return SameNode
	default:
		return CrossNode
	}
}

// Link returns the cost model for transfers between two ranks.
func (t *Topology) Link(src, dst int) LinkCost {
	switch t.Classify(src, dst) {
	case SameGPU:
		return t.LocalCopy
	case SameNode:
		return t.IntraNode
	default:
		return t.InterNode
	}
}

// TransferTime returns the modeled seconds to move n bytes from src to dst.
func (t *Topology) TransferTime(src, dst, n int) float64 {
	return t.Link(src, dst).Time(n)
}

// RanksOnNode returns the global ranks hosted by the given node.
func (t *Topology) RanksOnNode(node int) []int {
	if node < 0 || node >= t.Nodes {
		panic(fmt.Sprintf("topo: node %d out of range", node))
	}
	rs := make([]int, t.GPUsPerNode)
	for i := range rs {
		rs[i] = t.Rank(node, i)
	}
	return rs
}

// String summarizes the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("topology{%d nodes x %d gpus, nvlink %.0f GB/s, ib %.0f GB/s}",
		t.Nodes, t.GPUsPerNode, t.IntraNode.Bandwidth/1e9, t.InterNode.Bandwidth/1e9)
}

package assign

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// bruteForce enumerates all assignments of items to groups under the
// capacities and returns the minimal total cost.
func bruteForce(cost [][]float64, caps []int) float64 {
	items := len(cost)
	groups := len(caps)
	best := math.Inf(1)
	used := make([]int, groups)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc >= best {
			return
		}
		if i == items {
			best = acc
			return
		}
		for g := 0; g < groups; g++ {
			if used[g] < caps[g] {
				used[g]++
				rec(i+1, acc+cost[i][g])
				used[g]--
			}
		}
	}
	rec(0, 0)
	return best
}

func randomCost(r *rng.RNG, items, groups int) [][]float64 {
	cost := make([][]float64, items)
	for i := range cost {
		cost[i] = make([]float64, groups)
		for g := range cost[i] {
			cost[i][g] = r.Float64() * 10
		}
	}
	return cost
}

func TestBalancedMatchesBruteForce(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 40; trial++ {
		items := 2 + r.Intn(7) // 2..8
		groups := 1 + r.Intn(3)
		caps := make([]int, groups)
		remaining := items
		for g := range caps {
			caps[g] = remaining/groups + 1
			remaining -= caps[g]
		}
		// Ensure capacity suffices.
		caps[0] += items
		cost := randomCost(r, items, groups)
		got, total, err := Balanced(cost, caps)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForce(cost, caps)
		if math.Abs(total-want) > 1e-6 {
			t.Fatalf("trial %d: mcmf %v vs brute force %v", trial, total, want)
		}
		// Assignment must respect capacities and reproduce the cost.
		used := make([]int, groups)
		check := 0.0
		for i, g := range got {
			used[g]++
			check += cost[i][g]
		}
		for g := range used {
			if used[g] > caps[g] {
				t.Fatalf("trial %d: group %d over capacity", trial, g)
			}
		}
		if math.Abs(check-total) > 1e-6 {
			t.Fatalf("trial %d: assignment cost %v != reported %v", trial, check, total)
		}
	}
}

func TestBalancedExactCapacities(t *testing.T) {
	// 6 items, 3 groups of exactly 2 — the placement sweep's shape.
	r := rng.New(13)
	cost := randomCost(r, 6, 3)
	got, total, err := Balanced(cost, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	used := make([]int, 3)
	for _, g := range got {
		used[g]++
	}
	for g, u := range used {
		if u != 2 {
			t.Fatalf("group %d has %d items", g, u)
		}
	}
	if want := bruteForce(cost, []int{2, 2, 2}); math.Abs(total-want) > 1e-6 {
		t.Fatalf("got %v want %v", total, want)
	}
}

func TestBalancedKnownOptimum(t *testing.T) {
	cost := [][]float64{
		{0, 10},
		{10, 0},
	}
	got, total, err := Balanced(cost, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1 || total != 0 {
		t.Fatalf("got %v total %v", got, total)
	}
}

func TestBalancedForcedSuboptimalItem(t *testing.T) {
	// Both items prefer group 0, but capacity 1 forces a split; the solver
	// must put the item with the larger regret on its preferred group.
	cost := [][]float64{
		{0, 100}, // item 0: huge regret
		{0, 1},   // item 1: tiny regret
	}
	got, total, err := Balanced(cost, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1 || total != 1 {
		t.Fatalf("got %v total %v", got, total)
	}
}

func TestBalancedErrors(t *testing.T) {
	if _, _, err := Balanced([][]float64{{1}}, nil); err == nil {
		t.Fatal("expected error for no groups")
	}
	if _, _, err := Balanced([][]float64{{1}, {1}}, []int{1}); err == nil {
		t.Fatal("expected error for insufficient capacity")
	}
	if _, _, err := Balanced([][]float64{{1, 2}, {1}}, []int{2, 2}); err == nil {
		t.Fatal("expected error for ragged cost matrix")
	}
	if _, _, err := Balanced([][]float64{{1}}, []int{-1, 2}); err == nil {
		t.Fatal("expected error for negative capacity")
	}
}

func TestBalancedEmptyItems(t *testing.T) {
	got, total, err := Balanced(nil, []int{1})
	if err != nil || got != nil || total != 0 {
		t.Fatal("empty input should trivially succeed")
	}
}

func TestMaximizeBalanced(t *testing.T) {
	benefit := [][]float64{
		{5, 1},
		{1, 5},
	}
	got, total, err := MaximizeBalanced(benefit, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1 || math.Abs(total-10) > 1e-9 {
		t.Fatalf("got %v total %v", got, total)
	}
}

func TestNegativeCostsHandled(t *testing.T) {
	// MaximizeBalanced internally negates, producing negative costs; make
	// sure Bellman-Ford based search handles them directly too.
	cost := [][]float64{
		{-5, 0},
		{0, -5},
		{-1, -1},
	}
	got, total, err := Balanced(cost, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteForce(cost, []int{2, 2}); math.Abs(total-want) > 1e-9 {
		t.Fatalf("got %v want %v (assignment %v)", total, want, got)
	}
}

func BenchmarkBalanced64x16(b *testing.B) {
	r := rng.New(1)
	cost := randomCost(r, 64, 16)
	caps := make([]int, 16)
	for i := range caps {
		caps[i] = 4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Balanced(cost, caps); err != nil {
			b.Fatal(err)
		}
	}
}

// Package assign solves the balanced assignment (transportation)
// subproblems the placement layer-sweep produces: distribute E experts into
// P groups of fixed capacity, minimizing a per-(expert, group) cost. It is
// an exact solver built on min-cost max-flow with successive shortest paths.
package assign

import (
	"fmt"
	"math"
)

// edge is one directed arc of the flow network (paired with its reverse).
type edge struct {
	to   int
	cap  int
	cost float64
	rev  int // index of reverse edge in graph[to]
}

// graph is an adjacency-list flow network.
type graph struct {
	adj [][]edge
}

func newGraph(n int) *graph {
	return &graph{adj: make([][]edge, n)}
}

func (g *graph) addEdge(from, to, capacity int, cost float64) {
	g.adj[from] = append(g.adj[from], edge{to: to, cap: capacity, cost: cost, rev: len(g.adj[to])})
	g.adj[to] = append(g.adj[to], edge{to: from, cap: 0, cost: -cost, rev: len(g.adj[from]) - 1})
}

// minCostFlow pushes up to maxFlow units from s to t using successive
// shortest paths (Bellman-Ford, which tolerates the negative reverse arcs).
// It returns the flow achieved and its total cost.
func (g *graph) minCostFlow(s, t, maxFlow int) (int, float64) {
	n := len(g.adj)
	totalFlow := 0
	totalCost := 0.0
	for totalFlow < maxFlow {
		dist := make([]float64, n)
		inQueue := make([]bool, n)
		prevV := make([]int, n)
		prevE := make([]int, n)
		for i := range dist {
			dist[i] = math.Inf(1)
			prevV[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		inQueue[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			inQueue[v] = false
			for ei, e := range g.adj[v] {
				if e.cap > 0 && dist[v]+e.cost < dist[e.to]-1e-12 {
					dist[e.to] = dist[v] + e.cost
					prevV[e.to] = v
					prevE[e.to] = ei
					if !inQueue[e.to] {
						queue = append(queue, e.to)
						inQueue[e.to] = true
					}
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break // no augmenting path
		}
		// Find bottleneck along the path.
		push := maxFlow - totalFlow
		for v := t; v != s; v = prevV[v] {
			if c := g.adj[prevV[v]][prevE[v]].cap; c < push {
				push = c
			}
		}
		// Apply.
		for v := t; v != s; v = prevV[v] {
			e := &g.adj[prevV[v]][prevE[v]]
			e.cap -= push
			g.adj[e.to][e.rev].cap += push
		}
		totalFlow += push
		totalCost += float64(push) * dist[t]
	}
	return totalFlow, totalCost
}

// Balanced assigns each of len(cost) items to one of len(caps) groups,
// minimizing the total cost[item][group], subject to group g receiving at
// most caps[g] items. It returns the assignment (group per item) and the
// optimal total cost. It returns an error if the capacities cannot hold all
// items.
func Balanced(cost [][]float64, caps []int) ([]int, float64, error) {
	items := len(cost)
	groups := len(caps)
	if items == 0 {
		return nil, 0, nil
	}
	if groups == 0 {
		return nil, 0, fmt.Errorf("assign: no groups")
	}
	totalCap := 0
	for g, c := range caps {
		if c < 0 {
			return nil, 0, fmt.Errorf("assign: negative capacity for group %d", g)
		}
		totalCap += c
	}
	if totalCap < items {
		return nil, 0, fmt.Errorf("assign: capacity %d < items %d", totalCap, items)
	}
	for i, row := range cost {
		if len(row) != groups {
			return nil, 0, fmt.Errorf("assign: cost row %d has %d entries, want %d", i, len(row), groups)
		}
	}

	// Node layout: 0 = source, 1..items = items, items+1..items+groups =
	// groups, last = sink.
	n := items + groups + 2
	src, sink := 0, n-1
	g := newGraph(n)
	for i := 0; i < items; i++ {
		g.addEdge(src, 1+i, 1, 0)
		for p := 0; p < groups; p++ {
			g.addEdge(1+i, 1+items+p, 1, cost[i][p])
		}
	}
	for p := 0; p < groups; p++ {
		g.addEdge(1+items+p, sink, caps[p], 0)
	}
	flow, total := g.minCostFlow(src, sink, items)
	if flow < items {
		return nil, 0, fmt.Errorf("assign: only placed %d of %d items", flow, items)
	}
	// Read the assignment off the saturated item->group arcs.
	out := make([]int, items)
	for i := 0; i < items; i++ {
		out[i] = -1
		for _, e := range g.adj[1+i] {
			if e.to >= 1+items && e.to < 1+items+groups && e.cap == 0 {
				out[i] = e.to - 1 - items
				break
			}
		}
		if out[i] == -1 {
			return nil, 0, fmt.Errorf("assign: item %d unassigned after flow", i)
		}
	}
	return out, total, nil
}

// MaximizeBalanced is Balanced over a *benefit* matrix: it maximizes total
// benefit[item][group] under the same capacity constraints.
func MaximizeBalanced(benefit [][]float64, caps []int) ([]int, float64, error) {
	cost := make([][]float64, len(benefit))
	for i, row := range benefit {
		cost[i] = make([]float64, len(row))
		for p, b := range row {
			cost[i][p] = -b
		}
	}
	a, total, err := Balanced(cost, caps)
	return a, -total, err
}

package moe

import (
	"math"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range AllPresets() {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
}

func TestPresetShapes(t *testing.T) {
	cases := []struct {
		cfg             Config
		layers, experts int
		dmodel          int
	}{
		{GPTM(8), 24, 8, 1024},
		{GPTM(64), 24, 64, 1024},
		{GPTM32L(), 32, 32, 1024},
		{GPTM40L(), 40, 32, 1024},
		{GPTXL(), 24, 16, 2048},
	}
	for _, c := range cases {
		if c.cfg.Layers != c.layers || c.cfg.Experts != c.experts || c.cfg.DModel != c.dmodel {
			t.Fatalf("%s: wrong shape %+v", c.cfg.Name, c.cfg)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		func() Config { c := GPTM(8); c.TopK = 3; return c }(),
		func() Config { c := GPTM(8); c.Heads = 7; return c }(),
		func() Config { c := GPTM(8); c.ComputeDim = 10; return c }(),
		func() Config { c := GPTM(8); c.VocabSize = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

func TestParamCountScale(t *testing.T) {
	// Base (non-expert) parameters of GPT-M should be a few hundred million
	// with vocab, and more experts must mean more parameters.
	p8 := GPTM(8).ParamCount()
	p64 := GPTM(64).ParamCount()
	if p64 <= p8 {
		t.Fatal("more experts must increase parameters")
	}
	if p8 < 100e6 || p8 > 3e9 {
		t.Fatalf("GPT-M/8E parameter count implausible: %d", p8)
	}
}

func TestTokenWireBytes(t *testing.T) {
	if GPTM(8).TokenWireBytes() != 2048 {
		t.Fatalf("fp16 1024-dim token should be 2048 bytes, got %d", GPTM(8).TokenWireBytes())
	}
	if GPTXL().TokenWireBytes() != 4096 {
		t.Fatal("XL wire bytes wrong")
	}
}

func TestExpertDeterministicAcrossLoads(t *testing.T) {
	a := NewExpert(7, 3, 5, 32)
	b := NewExpert(7, 3, 5, 32)
	x := make([]float32, 32)
	for i := range x {
		x[i] = float32(i) / 32
	}
	ya, yb := a.Forward(x), b.Forward(x)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatal("same (seed,layer,index) must give identical experts")
		}
	}
}

func TestExpertsDifferByIndexAndLayer(t *testing.T) {
	x := make([]float32, 32)
	x[0] = 1
	base := NewExpert(7, 3, 5, 32).Forward(x)
	otherIdx := NewExpert(7, 3, 6, 32).Forward(x)
	otherLayer := NewExpert(7, 4, 5, 32).Forward(x)
	same := func(a, b []float32) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if same(base, otherIdx) || same(base, otherLayer) {
		t.Fatal("distinct experts must have distinct weights")
	}
}

func TestExpertForwardShapeAndFiniteness(t *testing.T) {
	e := NewExpert(1, 0, 0, 32)
	x := make([]float32, 32)
	for i := range x {
		x[i] = float32(i%5) - 2
	}
	y := e.Forward(x)
	if len(y) != 32 {
		t.Fatalf("output dim %d", len(y))
	}
	for _, v := range y {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite output")
		}
	}
	if e.ParamBytes() <= 0 {
		t.Fatal("ParamBytes must be positive")
	}
}

func TestAttentionDecodeGrowsCache(t *testing.T) {
	a := NewAttention(1, 0, 32)
	cache := &KVCache{}
	x := make([]float32, 32)
	x[3] = 1
	for step := 0; step < 5; step++ {
		out := a.Forward(x, cache)
		if len(out) != 32 {
			t.Fatalf("output dim %d", len(out))
		}
		if cache.Len() != step+1 {
			t.Fatalf("cache len %d after step %d", cache.Len(), step)
		}
	}
}

func TestAttentionDependsOnContext(t *testing.T) {
	a := NewAttention(1, 0, 32)
	x := make([]float32, 32)
	x[0] = 1

	empty := &KVCache{}
	out1 := a.Forward(append([]float32(nil), x...), empty)

	primed := &KVCache{}
	ctx := make([]float32, 32)
	ctx[7] = 2
	k, v := a.Project(ctx)
	primed.Append(k, v)
	out2 := a.Forward(append([]float32(nil), x...), primed)

	diff := 0.0
	for i := range out1 {
		diff += math.Abs(float64(out1[i] - out2[i]))
	}
	if diff < 1e-6 {
		t.Fatal("attention output must depend on cached context")
	}
}

func TestKVCacheCloneIndependent(t *testing.T) {
	c := &KVCache{}
	c.Append([]float32{1, 2}, []float32{3, 4})
	d := c.Clone()
	d.Keys[0][0] = 99
	if c.Keys[0][0] != 1 {
		t.Fatal("clone aliases original")
	}
	d.Append([]float32{5}, []float32{6})
	if c.Len() != 1 || d.Len() != 2 {
		t.Fatal("clone length coupling")
	}
}

func TestWeightRouterDeterministicAndInRange(t *testing.T) {
	cfg := GPTM(16)
	wr := NewWeightRouter(cfg, 9)
	h := make([]float32, cfg.ActualComputeDim())
	h[2] = 1.5
	a := wr.Route(3, 0, -1, h)
	b := wr.Route(3, 0, -1, h)
	if len(a) != 1 || a[0] != b[0] {
		t.Fatal("router must be deterministic")
	}
	if a[0] < 0 || a[0] >= cfg.Experts {
		t.Fatalf("expert %d out of range", a[0])
	}
	if wr.Experts() != 16 {
		t.Fatal("Experts() wrong")
	}
}

func TestWeightRouterTop2Distinct(t *testing.T) {
	cfg := GPTM(16)
	cfg.TopK = 2
	wr := NewWeightRouter(cfg, 9)
	h := make([]float32, cfg.ActualComputeDim())
	h[5] = 1
	es := wr.Route(0, 0, -1, h)
	if len(es) != 2 || es[0] == es[1] {
		t.Fatalf("top-2 must return two distinct experts: %v", es)
	}
}

func TestWeightRouterProbsSumToOne(t *testing.T) {
	cfg := GPTM(8)
	wr := NewWeightRouter(cfg, 9)
	h := make([]float32, cfg.ActualComputeDim())
	h[0] = 3
	p := wr.Probs(2, h)
	sum := float32(0)
	for _, v := range p {
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-5 {
		t.Fatalf("probs sum %v", sum)
	}
}

func TestModelAccessorsAndBounds(t *testing.T) {
	cfg := GPTM(8)
	cfg.Layers = 2 // keep construction cheap
	m := NewModel(cfg, 3)
	if m.Expert(1, 7).Index != 7 || m.Expert(1, 7).Layer != 1 {
		t.Fatal("Expert identity wrong")
	}
	if m.Attention(0) == nil {
		t.Fatal("missing attention")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range expert")
		}
	}()
	m.Expert(0, 8)
}

func TestModelEmbedAndNextTokenDeterministic(t *testing.T) {
	cfg := GPTM(8)
	cfg.Layers = 1
	m := NewModel(cfg, 3)
	e1 := m.Embed(42)
	e2 := m.Embed(42)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	e1[0] = 999
	if m.Embed(42)[0] == 999 {
		t.Fatal("Embed must return a copy")
	}
	h := m.Embed(7)
	tok := m.NextToken(h)
	if tok < 0 || tok >= vocabComputeDim {
		t.Fatalf("token %d out of compute vocab", tok)
	}
	if tok != m.NextToken(h) {
		t.Fatal("NextToken not deterministic")
	}
}

func TestLayerNormMethod(t *testing.T) {
	cfg := GPTM(8)
	cfg.Layers = 1
	m := NewModel(cfg, 3)
	h := []float32{1, 2, 3, 4}
	m.LayerNorm(h)
	var mean float64
	for _, v := range h {
		mean += float64(v)
	}
	if math.Abs(mean/4) > 1e-5 {
		t.Fatal("LayerNorm did not center")
	}
}

func TestCostModelMonotonicity(t *testing.T) {
	cm := DefaultCostModel()
	cfg := GPTM(32)
	if cm.Time(0) != 0 || cm.Time(-5) != 0 {
		t.Fatal("non-positive flops must cost 0")
	}
	if cm.AttentionTime(cfg, 100) >= cm.AttentionTime(cfg, 1000) {
		t.Fatal("attention cost must grow with context")
	}
	if cm.GatingTime(cfg, 1) >= cm.GatingTime(cfg, 100) {
		t.Fatal("gating cost must grow with tokens")
	}
	if cm.ExpertTime(cfg) <= 0 {
		t.Fatal("expert time must be positive")
	}
	// XL experts are 4x the FLOPs of M experts (2x d, 2x dff).
	ratio := ExpertFlops(GPTXL()) / ExpertFlops(GPTM(8))
	if math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("XL/M expert flop ratio %v, want 4", ratio)
	}
}

func TestGatingFlopsScaleWithExperts(t *testing.T) {
	if GatingFlops(GPTM(64)) <= GatingFlops(GPTM(8)) {
		t.Fatal("gating flops must grow with expert count")
	}
}

func TestExpertTimeReasonableMagnitude(t *testing.T) {
	// One GPT-M token through one expert at A100-ish effective rates should
	// land in the sub-millisecond range — the regime where Alltoall latency
	// is comparable, which Fig 9 depends on.
	dt := DefaultCostModel().ExpertTime(GPTM(32))
	if dt < 1e-8 || dt > 1e-3 {
		t.Fatalf("expert time %v out of plausible range", dt)
	}
}

package moe

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Attention is a multi-head self-attention module at ComputeDim width with
// per-sequence KV caching, as used during autoregressive decode.
type Attention struct {
	Layer int
	dim   int
	heads int
	wq    *tensor.Matrix
	wk    *tensor.Matrix
	wv    *tensor.Matrix
	wo    *tensor.Matrix
}

// computeHeads is the head count for the real math; it must divide
// ComputeDim (config validation guarantees ComputeDim % 4 == 0).
const computeHeads = 4

// NewAttention builds a deterministic attention module for a layer.
func NewAttention(seed uint64, layer, dim int) *Attention {
	r := rng.New(rng.Mix64(seed, 0xA7, uint64(layer)))
	a := &Attention{
		Layer: layer,
		dim:   dim,
		heads: computeHeads,
		wq:    tensor.NewMatrix(dim, dim),
		wk:    tensor.NewMatrix(dim, dim),
		wv:    tensor.NewMatrix(dim, dim),
		wo:    tensor.NewMatrix(dim, dim),
	}
	initMatrix(r, a.wq)
	initMatrix(r, a.wk)
	initMatrix(r, a.wv)
	initMatrix(r, a.wo)
	return a
}

// KVCache stores the per-position key and value vectors of one sequence for
// one layer. In context-coherent expert parallelism every GPU holds a
// replica of every sequence's cache, which is what lets a token attend
// in place on whichever GPU its expert lives.
type KVCache struct {
	Keys [][]float32
	Vals [][]float32
}

// Len returns the number of cached positions.
func (kv *KVCache) Len() int { return len(kv.Keys) }

// Clone deep-copies the cache (used when replicating context across GPUs).
func (kv *KVCache) Clone() *KVCache {
	c := &KVCache{
		Keys: make([][]float32, len(kv.Keys)),
		Vals: make([][]float32, len(kv.Vals)),
	}
	for i := range kv.Keys {
		c.Keys[i] = append([]float32(nil), kv.Keys[i]...)
		c.Vals[i] = append([]float32(nil), kv.Vals[i]...)
	}
	return c
}

// Append adds a position's key/value pair.
func (kv *KVCache) Append(k, v []float32) {
	kv.Keys = append(kv.Keys, k)
	kv.Vals = append(kv.Vals, v)
}

// Project computes the key and value vectors for a token activation without
// attending (used to extend the cache for prompt positions).
func (a *Attention) Project(x []float32) (k, v []float32) {
	return tensor.VecMat(x, a.wk), tensor.VecMat(x, a.wv)
}

// Forward computes one token's attention output over the cached context plus
// the token itself, appends the token's K/V to the cache, and returns the
// output projection. This is the standard single-position decode step.
func (a *Attention) Forward(x []float32, cache *KVCache) []float32 {
	q := tensor.VecMat(x, a.wq)
	k, v := a.Project(x)
	cache.Append(k, v)

	hd := a.dim / a.heads
	scale := float32(1 / math.Sqrt(float64(hd)))
	ctx := cache.Len()
	out := make([]float32, a.dim)
	scores := make([]float32, ctx)
	for h := 0; h < a.heads; h++ {
		lo, hi := h*hd, (h+1)*hd
		qh := q[lo:hi]
		for t := 0; t < ctx; t++ {
			scores[t] = tensor.Dot(qh, cache.Keys[t][lo:hi]) * scale
		}
		tensor.Softmax(scores)
		oh := out[lo:hi]
		for t := 0; t < ctx; t++ {
			w := scores[t]
			vh := cache.Vals[t][lo:hi]
			for i := range oh {
				oh[i] += w * vh[i]
			}
		}
	}
	return tensor.VecMat(out, a.wo)
}

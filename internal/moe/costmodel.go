package moe

// CostModel converts the paper-scale arithmetic of each operation into
// simulated seconds on an A100-class accelerator. The engine charges these
// times to the simulated clock while the real (ComputeDim-sized) math runs
// on the CPU.
//
// Rates are effective, not peak: decode-time GEMMs with small batches are
// memory-bandwidth bound on A100s, so the effective throughput is far below
// the 312 TFLOP/s fp16 peak. The default (see DefaultCostModel) was chosen
// so the compute/communication proportions reproduce the paper's Fig 9
// (about 15% Alltoall on one node rising to ~76% on eight nodes).
type CostModel struct {
	// FlopsPerSecond is the effective arithmetic rate for large GEMMs
	// (expert FFN, attention projections).
	FlopsPerSecond float64
	// GatingOverhead is a fixed per-layer cost covering the gating softmax,
	// top-k selection and dispatch index construction (kernel-launch bound
	// rather than FLOP bound on real systems).
	GatingOverhead float64
}

// DefaultCostModel returns the calibrated A100-class model.
func DefaultCostModel() CostModel {
	return CostModel{
		FlopsPerSecond: 25e12, // effective decode-time throughput
		GatingOverhead: 12e-6, // ~12us of launch/softmax/scatter per layer
	}
}

// Time converts a FLOP count into simulated seconds.
func (cm CostModel) Time(flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	return flops / cm.FlopsPerSecond
}

// ExpertFlops returns the arithmetic of one token through one expert FFN at
// paper scale: two GEMVs of DModel x DFF.
func ExpertFlops(c Config) float64 {
	return 2 * 2 * float64(c.DModel) * float64(c.DFF)
}

// AttentionFlops returns the arithmetic of one token's decode-time attention
// at paper scale with ctxLen cached positions: QKV + output projections
// (4 GEMVs of DModel x DModel) plus score and value mixing over the context.
func AttentionFlops(c Config, ctxLen int) float64 {
	d := float64(c.DModel)
	proj := 4 * 2 * d * d
	mix := 2 * 2 * d * float64(ctxLen)
	return proj + mix
}

// GatingFlops returns the arithmetic of routing one token: a GEMV of
// DModel x Experts plus the softmax.
func GatingFlops(c Config) float64 {
	return 2*float64(c.DModel)*float64(c.Experts) + 5*float64(c.Experts)
}

// ExpertTime, AttentionTime and GatingTime are the per-token per-layer
// simulated costs the engine charges.

// ExpertTime returns the simulated seconds for one token through one expert.
func (cm CostModel) ExpertTime(c Config) float64 {
	return cm.Time(ExpertFlops(c))
}

// AttentionTime returns the simulated seconds for one token's attention with
// the given cached context length.
func (cm CostModel) AttentionTime(c Config, ctxLen int) float64 {
	return cm.Time(AttentionFlops(c, ctxLen))
}

// GatingTime returns the simulated seconds for gating a batch of n tokens in
// one layer on one GPU (the fixed overhead is per layer, the FLOPs per
// token).
func (cm CostModel) GatingTime(c Config, n int) float64 {
	return cm.GatingOverhead + float64(n)*cm.Time(GatingFlops(c))
}

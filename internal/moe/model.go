package moe

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// vocabComputeDim is the truncated vocabulary used for real-math generation:
// the LM head projects to this many logits and the argmax is the next token
// id. It keeps generation deterministic and cheap; the paper-scale vocab
// only matters for parameter counting.
const vocabComputeDim = 128

// Model is a full GPT MoE model instance: per-layer attention modules and
// expert banks at ComputeDim width, plus an embedding and LM head. All
// weights are pure functions of (Config, Seed) so that any simulated GPU can
// "load" any expert and obtain bit-identical parameters.
type Model struct {
	Cfg  Config
	Seed uint64

	attn    []*Attention
	experts [][]*Expert // [layer][expert]
	embed   *tensor.Matrix
	lmHead  *tensor.Matrix
}

// NewModel materializes the model. Memory scales with Layers*Experts at
// ComputeDim width, which is a few tens of MB for the largest preset.
func NewModel(cfg Config, seed uint64) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	dim := cfg.ActualComputeDim()
	m := &Model{Cfg: cfg, Seed: seed}
	m.attn = make([]*Attention, cfg.Layers)
	m.experts = make([][]*Expert, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		m.attn[l] = NewAttention(seed, l, dim)
		m.experts[l] = make([]*Expert, cfg.Experts)
		for e := 0; e < cfg.Experts; e++ {
			m.experts[l][e] = NewExpert(seed, l, e, dim)
		}
	}
	m.embed = tensor.NewMatrix(vocabComputeDim, dim)
	initMatrix(rng.New(rng.Mix64(seed, 0xEB)), m.embed)
	m.lmHead = tensor.NewMatrix(dim, vocabComputeDim)
	initMatrix(rng.New(rng.Mix64(seed, 0x17)), m.lmHead)
	return m
}

// Expert returns expert index e of layer l.
func (m *Model) Expert(l, e int) *Expert {
	if l < 0 || l >= m.Cfg.Layers || e < 0 || e >= m.Cfg.Experts {
		panic(fmt.Sprintf("moe: expert (%d,%d) out of range", l, e))
	}
	return m.experts[l][e]
}

// Attention returns the attention module of layer l.
func (m *Model) Attention(l int) *Attention { return m.attn[l] }

// Embed returns the embedding of a token id (ids are reduced modulo the
// compute vocabulary).
func (m *Model) Embed(token int) []float32 {
	row := m.embed.Row(token % vocabComputeDim)
	return append([]float32(nil), row...)
}

// NextToken greedily decodes the next token id from a final hidden state.
func (m *Model) NextToken(h []float32) int {
	logits := tensor.VecMat(h, m.lmHead)
	return tensor.ArgMax(logits)
}

// LayerNorm applies the model's (identity-parameter) layer normalization.
// Kept as a method so a future learned-parameter variant slots in.
func (m *Model) LayerNorm(h []float32) {
	tensor.LayerNorm(h, nil, nil)
}

// Package moe implements the GPT Mixture-of-Experts model: configuration,
// gating, expert feed-forward networks, multi-head attention with a KV
// cache, and the analytic compute-cost model used to charge simulated GPU
// time for each operation.
//
// Two dimensionalities coexist deliberately. Config.DModel/DFF describe the
// *paper-scale* model and drive the cost model and communication volumes
// (a token's activation is DModel fp16 values on the wire). ComputeDim is
// the width at which the *actual* tensor math runs on the CPU, so that the
// engine performs a real forward pass (real routing inputs, real expert
// FFNs, real attention) at laptop speed while the simulated clock reflects
// A100-scale arithmetic.
package moe

import "fmt"

// Config describes a GPT MoE model variant.
type Config struct {
	// Name is a human-readable variant label, e.g. "GPT-M/32E".
	Name string
	// DModel is the paper-scale hidden size (1024 for GPT-M, 2048 for XL).
	DModel int
	// DFF is the paper-scale expert FFN inner size (4 * DModel).
	DFF int
	// Heads is the attention head count.
	Heads int
	// Layers is the number of MoE transformer layers.
	Layers int
	// Experts is the number of experts per MoE layer.
	Experts int
	// TopK is the gating fan-out (1 for top-1 gating, 2 for top-2).
	TopK int
	// VocabSize is the token vocabulary size.
	VocabSize int
	// ComputeDim is the width used for real CPU tensor math (see package
	// comment). Zero means DefaultComputeDim.
	ComputeDim int
}

// DefaultComputeDim keeps real math cheap while remaining wide enough for
// attention heads to divide evenly.
const DefaultComputeDim = 32

// ActualComputeDim resolves ComputeDim's default.
func (c Config) ActualComputeDim() int {
	if c.ComputeDim > 0 {
		return c.ComputeDim
	}
	return DefaultComputeDim
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	switch {
	case c.DModel <= 0 || c.DFF <= 0:
		return fmt.Errorf("moe: non-positive dims in %q", c.Name)
	case c.Layers <= 0 || c.Experts <= 0:
		return fmt.Errorf("moe: non-positive layers/experts in %q", c.Name)
	case c.TopK != 1 && c.TopK != 2:
		return fmt.Errorf("moe: TopK must be 1 or 2, got %d", c.TopK)
	case c.Heads <= 0 || c.DModel%c.Heads != 0:
		return fmt.Errorf("moe: heads %d must divide DModel %d", c.Heads, c.DModel)
	case c.VocabSize <= 0:
		return fmt.Errorf("moe: non-positive vocab in %q", c.Name)
	case c.ActualComputeDim()%4 != 0:
		return fmt.Errorf("moe: ComputeDim must be a multiple of 4")
	}
	return nil
}

// TokenWireBytes is the number of bytes one token's activation occupies on
// the network: DModel fp16 values. This is the unit of Alltoall volume.
func (c Config) TokenWireBytes() int { return c.DModel * 2 }

// ExpertParams returns the parameter count of a single expert FFN at paper
// scale (two weight matrices plus biases).
func (c Config) ExpertParams() int64 {
	d, f := int64(c.DModel), int64(c.DFF)
	return d*f + f + f*d + d
}

// ParamCount estimates total parameters at paper scale: embeddings,
// per-layer attention (4 d^2) and gate, and Experts expert FFNs per layer.
func (c Config) ParamCount() int64 {
	d := int64(c.DModel)
	perLayer := 4*d*d + d*int64(c.Experts) + int64(c.Experts)*c.ExpertParams()
	return int64(c.VocabSize)*d + int64(c.Layers)*perLayer
}

// String implements fmt.Stringer.
func (c Config) String() string {
	return fmt.Sprintf("%s (%dL x %dE, d=%d)", c.Name, c.Layers, c.Experts, c.DModel)
}

// Model presets matching the paper's Table II. The "base" parameter counts
// (350M/470M/590M/1.3B) refer to the dense backbone; expert counts multiply
// the FFN parameters as in Deepspeed-Megatron.

// GPTM returns a GPT-M 350M-base model (24 layers, d=1024) with the given
// experts per layer (the paper uses 8, 16, 32 and 64).
func GPTM(experts int) Config {
	return Config{
		Name:      fmt.Sprintf("GPT-M/%dE", experts),
		DModel:    1024,
		DFF:       4096,
		Heads:     16,
		Layers:    24,
		Experts:   experts,
		TopK:      1,
		VocabSize: 50257,
	}
}

// GPTM32L returns the 470M-base 32-layer MoE-32 variant.
func GPTM32L() Config {
	c := GPTM(32)
	c.Name = "GPT-M-32L/32E"
	c.Layers = 32
	return c
}

// GPTM40L returns the 590M-base 40-layer MoE-32 variant.
func GPTM40L() Config {
	c := GPTM(32)
	c.Name = "GPT-M-40L/32E"
	c.Layers = 40
	return c
}

// GPTXL returns the GPT-XL 1.3B-base MoE-16 variant (24 layers, d=2048).
func GPTXL() Config {
	return Config{
		Name:      "GPT-XL/16E",
		DModel:    2048,
		DFF:       8192,
		Heads:     16,
		Layers:    24,
		Experts:   16,
		TopK:      1,
		VocabSize: 50257,
	}
}

// AllPresets returns the seven variants evaluated in the paper's Fig 10.
func AllPresets() []Config {
	return []Config{
		GPTM(8), GPTM(16), GPTM(32), GPTM(64), GPTM32L(), GPTM40L(), GPTXL(),
	}
}

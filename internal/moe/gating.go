package moe

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Router decides which experts a token visits at a layer. Implementations
// must be deterministic pure functions of their arguments: the paper's
// context-coherent design relies on "the gating function is shared among all
// GPUs, so that no matter the token on which GPU, the gating function can
// always route it to the right expert" (Section IV-A) — i.e. every GPU
// evaluating the router for the same token must reach the same decision.
//
// layer is the MoE layer index; tokenID is a globally unique token identity;
// prev is the expert chosen at layer-1 (-1 at layer 0); h is the token's
// current hidden activation at ComputeDim width. Implementations may use any
// subset of these. The returned slice has TopK entries, primary expert
// first.
type Router interface {
	Route(layer int, tokenID uint64, prev int, h []float32) []int
	// Experts returns the number of experts per layer this router targets.
	Experts() int
}

// WeightedRouter is implemented by routers that also expose combine weights
// for top-k gating: RouteWeighted returns the selected experts (primary
// first) and their normalized mixture weights. Routers that do not
// implement it are combined with RouteWeights' fallback.
type WeightedRouter interface {
	Router
	RouteWeighted(layer int, tokenID uint64, prev int, h []float32) ([]int, []float64)
}

// RouteWeights calls RouteWeighted when available and otherwise falls back
// to Route with a deterministic geometric weighting (2/3, 1/3 for top-2),
// normalized over the selected experts.
func RouteWeights(r Router, layer int, tokenID uint64, prev int, h []float32) ([]int, []float64) {
	if wr, ok := r.(WeightedRouter); ok {
		return wr.RouteWeighted(layer, tokenID, prev, h)
	}
	experts := r.Route(layer, tokenID, prev, h)
	weights := make([]float64, len(experts))
	total := 0.0
	w := 1.0
	for i := range weights {
		weights[i] = w
		total += w
		w /= 2
	}
	for i := range weights {
		weights[i] /= total
	}
	return experts, weights
}

// WeightRouter is the standard learned gate: a per-layer weight matrix maps
// the hidden state to expert logits; top-k of the softmax wins. With random
// (untrained) weights it exhibits no inter-layer affinity — it serves as the
// affinity-free control in tests and ablations.
type WeightRouter struct {
	cfg   Config
	gates []*tensor.Matrix // layer -> ComputeDim x Experts
}

// NewWeightRouter builds deterministic per-layer gates.
func NewWeightRouter(cfg Config, seed uint64) *WeightRouter {
	dim := cfg.ActualComputeDim()
	w := &WeightRouter{cfg: cfg, gates: make([]*tensor.Matrix, cfg.Layers)}
	for l := 0; l < cfg.Layers; l++ {
		g := tensor.NewMatrix(dim, cfg.Experts)
		initMatrix(rng.New(rng.Mix64(seed, 0x6A, uint64(l))), g)
		w.gates[l] = g
	}
	return w
}

// Experts implements Router.
func (w *WeightRouter) Experts() int { return w.cfg.Experts }

// Route implements Router using the learned-gate rule.
func (w *WeightRouter) Route(layer int, tokenID uint64, prev int, h []float32) []int {
	logits := tensor.VecMat(h, w.gates[layer])
	tensor.Softmax(logits)
	return tensor.TopK(logits, w.cfg.TopK)
}

// Probs returns the full softmax distribution at a layer (used by training
// diagnostics and tests).
func (w *WeightRouter) Probs(layer int, h []float32) []float32 {
	logits := tensor.VecMat(h, w.gates[layer])
	tensor.Softmax(logits)
	return logits
}

// RouteWeighted implements WeightedRouter: the gate's softmax probabilities
// of the selected experts, renormalized.
func (w *WeightRouter) RouteWeighted(layer int, tokenID uint64, prev int, h []float32) ([]int, []float64) {
	probs := w.Probs(layer, h)
	experts := tensor.TopK(probs, w.cfg.TopK)
	weights := make([]float64, len(experts))
	total := 0.0
	for i, e := range experts {
		weights[i] = float64(probs[e])
		total += weights[i]
	}
	if total == 0 {
		for i := range weights {
			weights[i] = 1 / float64(len(weights))
		}
		return experts, weights
	}
	for i := range weights {
		weights[i] /= total
	}
	return experts, weights
}

var _ WeightedRouter = (*WeightRouter)(nil)

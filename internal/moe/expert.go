package moe

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Expert is one feed-forward expert network: y = W2 * gelu(W1*x + b1) + b2,
// at ComputeDim width (the cost model charges paper-scale time separately).
type Expert struct {
	// Layer and Index identify the expert within the model, matching the
	// paper's E_{i,j} notation (Index = i, Layer = j).
	Layer, Index int

	w1 *tensor.Matrix // dim x inner
	b1 []float32
	w2 *tensor.Matrix // inner x dim
	b2 []float32
}

// expertInnerFactor scales the real-math FFN inner width relative to dim,
// mirroring the 4x of the paper-scale DFF/DModel ratio.
const expertInnerFactor = 4

// NewExpert builds a deterministic expert whose weights depend only on
// (seed, layer, index), so every GPU that loads expert E_{i,j} materializes
// bit-identical parameters — exactly like loading the same checkpoint shard.
func NewExpert(seed uint64, layer, index, dim int) *Expert {
	r := rng.New(rng.Mix64(seed, 0xE4, uint64(layer), uint64(index)))
	inner := dim * expertInnerFactor
	e := &Expert{
		Layer: layer,
		Index: index,
		w1:    tensor.NewMatrix(dim, inner),
		b1:    make([]float32, inner),
		w2:    tensor.NewMatrix(inner, dim),
		b2:    make([]float32, dim),
	}
	initMatrix(r, e.w1)
	initMatrix(r, e.w2)
	initVector(r, e.b1)
	initVector(r, e.b2)
	return e
}

// initMatrix fills m with scaled Gaussian entries (Xavier-style).
func initMatrix(r *rng.RNG, m *tensor.Matrix) {
	scale := 1.0 / float64(m.Rows)
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64() * scale)
	}
}

func initVector(r *rng.RNG, v []float32) {
	for i := range v {
		v[i] = float32(r.NormFloat64() * 0.01)
	}
}

// Forward applies the expert FFN to a single token activation and returns a
// fresh slice.
func (e *Expert) Forward(x []float32) []float32 {
	h := tensor.VecMat(x, e.w1)
	tensor.AddVec(h, e.b1)
	tensor.GELU(h)
	y := tensor.VecMat(h, e.w2)
	tensor.AddVec(y, e.b2)
	return y
}

// ParamBytes returns the real in-memory size of this expert's weights.
func (e *Expert) ParamBytes() int {
	return 4 * (len(e.w1.Data) + len(e.b1) + len(e.w2.Data) + len(e.b2))
}

// Package trace captures, stores, samples and aggregates expert-routing
// traces: for each profiled token, the expert chosen at every MoE layer.
//
// Traces are the input to the whole ExFlow pipeline — the paper profiles a
// pre-trained model on sampled Pile tokens, records routing decisions at
// every layer, and solves the placement ILP from the resulting counts
// (Section IV-B, Section V-A).
package trace

import (
	"fmt"

	"repro/internal/moe"
	"repro/internal/rng"
)

// Trace holds the routing paths of a set of profiled tokens. Paths[t][j] is
// the (primary) expert chosen by token t at layer j.
type Trace struct {
	Layers  int
	Experts int
	Paths   [][]uint16
}

// New creates an empty trace for a model shape.
func New(layers, experts int) *Trace {
	if layers <= 0 || experts <= 0 || experts > 1<<16 {
		panic(fmt.Sprintf("trace: invalid shape %dx%d", layers, experts))
	}
	return &Trace{Layers: layers, Experts: experts}
}

// Tokens returns the number of recorded token paths.
func (t *Trace) Tokens() int { return len(t.Paths) }

// Append records one token's path. The path length must equal Layers and
// every expert must be in range.
func (t *Trace) Append(path []int) {
	if len(path) != t.Layers {
		panic(fmt.Sprintf("trace: path length %d, want %d", len(path), t.Layers))
	}
	row := make([]uint16, t.Layers)
	for j, e := range path {
		if e < 0 || e >= t.Experts {
			panic(fmt.Sprintf("trace: expert %d out of range at layer %d", e, j))
		}
		row[j] = uint16(e)
	}
	t.Paths = append(t.Paths, row)
}

// Merge appends all paths of o (which must share the shape) into t.
func (t *Trace) Merge(o *Trace) {
	if o.Layers != t.Layers || o.Experts != t.Experts {
		panic("trace: merge shape mismatch")
	}
	t.Paths = append(t.Paths, o.Paths...)
}

// Sample returns a new trace containing n paths drawn uniformly without
// replacement (or all paths if n >= Tokens()).
func (t *Trace) Sample(n int, seed uint64) *Trace {
	out := New(t.Layers, t.Experts)
	if n >= t.Tokens() {
		out.Paths = append(out.Paths, t.Paths...)
		return out
	}
	perm := rng.New(seed).Perm(t.Tokens())
	for _, idx := range perm[:n] {
		out.Paths = append(out.Paths, t.Paths[idx])
	}
	return out
}

// Head returns a trace with the first n paths (or all if fewer).
func (t *Trace) Head(n int) *Trace {
	if n > t.Tokens() {
		n = t.Tokens()
	}
	out := New(t.Layers, t.Experts)
	out.Paths = append(out.Paths, t.Paths[:n]...)
	return out
}

// TransitionCounts returns the E x E matrix of transition counts between
// layer j and layer j+1: counts[from][to] is the number of profiled tokens
// routed to expert `from` at layer j and `to` at layer j+1.
func (t *Trace) TransitionCounts(j int) [][]float64 {
	return t.PairCounts(j, j+1)
}

// PairCounts returns the E x E count matrix between two arbitrary layers
// i < j (used for the appendix Figs 14-16 grids).
func (t *Trace) PairCounts(i, j int) [][]float64 {
	if i < 0 || j >= t.Layers || i >= j {
		panic(fmt.Sprintf("trace: invalid layer pair (%d,%d)", i, j))
	}
	counts := make([][]float64, t.Experts)
	for e := range counts {
		counts[e] = make([]float64, t.Experts)
	}
	for _, path := range t.Paths {
		counts[path[i]][path[j]]++
	}
	return counts
}

// AllTransitionCounts returns TransitionCounts for every consecutive layer
// pair, indexed by the earlier layer. This is the placement solvers' input.
func (t *Trace) AllTransitionCounts() [][][]float64 {
	out := make([][][]float64, t.Layers-1)
	for j := range out {
		out[j] = t.TransitionCounts(j)
	}
	return out
}

// LayerLoad returns the per-expert token counts at one layer.
func (t *Trace) LayerLoad(j int) []float64 {
	if j < 0 || j >= t.Layers {
		panic("trace: layer out of range")
	}
	load := make([]float64, t.Experts)
	for _, path := range t.Paths {
		load[path[j]]++
	}
	return load
}

// Collect routes `tokens` token ids through a router and records the primary
// expert path of each. ids[i] must be globally unique token identities;
// prev expert state is threaded across layers exactly as the engine does it.
func Collect(router moe.Router, layers int, ids []uint64) *Trace {
	t := New(layers, router.Experts())
	path := make([]int, layers)
	for _, id := range ids {
		prev := -1
		for j := 0; j < layers; j++ {
			experts := router.Route(j, id, prev, nil)
			path[j] = experts[0]
			prev = experts[0]
		}
		t.Append(path)
	}
	return t
}

// SequentialIDs is a convenience producing ids [start, start+n) mapped
// through a per-dataset namespace function.
func SequentialIDs(n int, mapID func(uint64) uint64) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		if mapID != nil {
			ids[i] = mapID(uint64(i))
		} else {
			ids[i] = uint64(i)
		}
	}
	return ids
}

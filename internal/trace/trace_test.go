package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/synth"
)

func sampleTrace(tokens int) *Trace {
	k := synth.NewKernel(synth.KernelParams{Seed: 1, Layers: 5, Experts: 8, Strength: 0.8})
	kr := synth.NewKernelRouter(k, synth.Pile(), 1)
	return Collect(kr, 5, SequentialIDs(tokens, nil))
}

func TestCollectShape(t *testing.T) {
	tr := sampleTrace(100)
	if tr.Tokens() != 100 || tr.Layers != 5 || tr.Experts != 8 {
		t.Fatalf("bad shape: %d tokens, %dx%d", tr.Tokens(), tr.Layers, tr.Experts)
	}
	for _, path := range tr.Paths {
		for _, e := range path {
			if int(e) >= 8 {
				t.Fatal("expert out of range")
			}
		}
	}
}

func TestCollectMatchesRouter(t *testing.T) {
	k := synth.NewKernel(synth.KernelParams{Seed: 2, Layers: 4, Experts: 8, Strength: 0.7})
	kr := synth.NewKernelRouter(k, synth.Pile(), 1)
	tr := Collect(kr, 4, []uint64{42})
	prev := -1
	for j := 0; j < 4; j++ {
		want := kr.Route(j, 42, prev, nil)[0]
		if int(tr.Paths[0][j]) != want {
			t.Fatalf("layer %d: trace %d vs router %d", j, tr.Paths[0][j], want)
		}
		prev = want
	}
}

func TestAppendValidation(t *testing.T) {
	tr := New(3, 4)
	for _, bad := range [][]int{{1, 2}, {1, 2, 4}, {1, 2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", bad)
				}
			}()
			tr.Append(bad)
		}()
	}
	tr.Append([]int{0, 3, 2})
	if tr.Tokens() != 1 {
		t.Fatal("append failed")
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 4) },
		func() { New(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMergeAndHead(t *testing.T) {
	a := New(2, 4)
	a.Append([]int{0, 1})
	b := New(2, 4)
	b.Append([]int{2, 3})
	b.Append([]int{1, 1})
	a.Merge(b)
	if a.Tokens() != 3 {
		t.Fatalf("merge gave %d tokens", a.Tokens())
	}
	h := a.Head(2)
	if h.Tokens() != 2 || h.Paths[0][0] != 0 {
		t.Fatal("Head wrong")
	}
	if a.Head(99).Tokens() != 3 {
		t.Fatal("Head overflow wrong")
	}
}

func TestMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 4).Merge(New(3, 4))
}

func TestSampleProperties(t *testing.T) {
	tr := sampleTrace(200)
	s := tr.Sample(50, 7)
	if s.Tokens() != 50 {
		t.Fatalf("sample size %d", s.Tokens())
	}
	// Sampling everything returns all paths.
	if tr.Sample(500, 7).Tokens() != 200 {
		t.Fatal("oversample should return all")
	}
	// Deterministic given the seed.
	s2 := tr.Sample(50, 7)
	for i := range s.Paths {
		for j := range s.Paths[i] {
			if s.Paths[i][j] != s2.Paths[i][j] {
				t.Fatal("sampling not deterministic")
			}
		}
	}
}

func TestTransitionCountsConsistency(t *testing.T) {
	tr := New(3, 4)
	tr.Append([]int{0, 1, 2})
	tr.Append([]int{0, 1, 3})
	tr.Append([]int{2, 1, 3})
	c0 := tr.TransitionCounts(0)
	if c0[0][1] != 2 || c0[2][1] != 1 {
		t.Fatalf("layer-0 counts wrong: %v", c0)
	}
	c1 := tr.TransitionCounts(1)
	if c1[1][3] != 2 || c1[1][2] != 1 {
		t.Fatalf("layer-1 counts wrong: %v", c1)
	}
	// Total counts per pair equals token count.
	for j := 0; j < 2; j++ {
		total := 0.0
		for _, row := range tr.TransitionCounts(j) {
			for _, v := range row {
				total += v
			}
		}
		if total != 3 {
			t.Fatalf("pair %d total %v", j, total)
		}
	}
}

func TestPairCountsArbitraryLayers(t *testing.T) {
	tr := New(4, 4)
	tr.Append([]int{0, 1, 2, 3})
	c := tr.PairCounts(0, 3)
	if c[0][3] != 1 {
		t.Fatal("PairCounts(0,3) wrong")
	}
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {3, 2}, {0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", bad)
				}
			}()
			tr.PairCounts(bad[0], bad[1])
		}()
	}
}

func TestAllTransitionCounts(t *testing.T) {
	tr := sampleTrace(50)
	all := tr.AllTransitionCounts()
	if len(all) != tr.Layers-1 {
		t.Fatalf("got %d pair matrices", len(all))
	}
}

func TestLayerLoad(t *testing.T) {
	tr := New(2, 3)
	tr.Append([]int{0, 2})
	tr.Append([]int{0, 1})
	load := tr.LayerLoad(0)
	if load[0] != 2 || load[1] != 0 {
		t.Fatalf("load wrong: %v", load)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.LayerLoad(2)
}

func TestCodecRoundTrip(t *testing.T) {
	tr := sampleTrace(123)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Layers != tr.Layers || got.Experts != tr.Experts || got.Tokens() != tr.Tokens() {
		t.Fatal("shape mismatch after round trip")
	}
	for i := range tr.Paths {
		for j := range tr.Paths[i] {
			if got.Paths[i][j] != tr.Paths[i][j] {
				t.Fatalf("path (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 40)
		r := rng.New(seed)
		tr := New(3, 16)
		for i := 0; i < n; i++ {
			tr.Append([]int{r.Intn(16), r.Intn(16), r.Intn(16)})
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || got.Tokens() != n {
			return false
		}
		for i := range tr.Paths {
			for j := range tr.Paths[i] {
				if got.Paths[i][j] != tr.Paths[i][j] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC........................"),
	}
	for i, c := range cases {
		if _, err := Decode(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Truncated payload.
	tr := sampleTrace(10)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error for truncated trace")
	}
}

func TestDecodeRejectsOutOfRangeExpert(t *testing.T) {
	tr := New(1, 2)
	tr.Append([]int{1})
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-2] = 0xFF // corrupt the expert id upward
	raw[len(raw)-1] = 0x00
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected error for out-of-range expert")
	}
}

func TestSequentialIDs(t *testing.T) {
	plain := SequentialIDs(3, nil)
	if plain[0] != 0 || plain[2] != 2 {
		t.Fatal("plain ids wrong")
	}
	mapped := SequentialIDs(3, func(i uint64) uint64 { return i * 10 })
	if mapped[1] != 10 {
		t.Fatal("mapped ids wrong")
	}
}

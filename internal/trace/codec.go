package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic   "EXFTRC01" (8 bytes)
//	layers  uint32 LE
//	experts uint32 LE
//	tokens  uint32 LE
//	paths   tokens * layers * uint16 LE, token-major
//
// The format is deliberately trivial: traces are large (millions of uint16s)
// and a fixed-layout codec both encodes fast and round-trips exactly.

var magic = [8]byte{'E', 'X', 'F', 'T', 'R', 'C', '0', '1'}

// Encode writes the trace to w.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	hdr := []uint32{uint32(t.Layers), uint32(t.Experts), uint32(t.Tokens())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, 2*t.Layers)
	for _, path := range t.Paths {
		for j, e := range path {
			binary.LittleEndian.PutUint16(buf[2*j:], e)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a trace previously written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var layers, experts, tokens uint32
	for _, p := range []*uint32{&layers, &experts, &tokens} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	if layers == 0 || experts == 0 || experts > 1<<16 {
		return nil, fmt.Errorf("trace: corrupt header (%d layers, %d experts)", layers, experts)
	}
	t := New(int(layers), int(experts))
	buf := make([]byte, 2*layers)
	for k := uint32(0); k < tokens; k++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("trace: reading path %d: %w", k, err)
		}
		row := make([]uint16, layers)
		for j := range row {
			e := binary.LittleEndian.Uint16(buf[2*j:])
			if int(e) >= int(experts) {
				return nil, fmt.Errorf("trace: corrupt path %d: expert %d out of range", k, e)
			}
			row[j] = e
		}
		t.Paths = append(t.Paths, row)
	}
	return t, nil
}

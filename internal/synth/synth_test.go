package synth

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func testKernel(strength float64) *Kernel {
	return NewKernel(KernelParams{Seed: 1, Layers: 6, Experts: 16, Strength: strength})
}

func TestKernelDeterministic(t *testing.T) {
	k := testKernel(0.8)
	for tok := uint64(0); tok < 50; tok++ {
		a := k.Path(tok, 0)
		b := k.Path(tok, 0)
		for l := range a {
			if a[l] != b[l] {
				t.Fatal("kernel paths not deterministic")
			}
		}
	}
}

func TestKernelPathInRange(t *testing.T) {
	k := testKernel(0.8)
	if err := quick.Check(func(tok uint64, dRaw uint8) bool {
		path := k.Path(tok, int(dRaw))
		if len(path) != k.Layers {
			return false
		}
		for _, e := range path {
			if e < 0 || e >= k.Experts {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitionRowsStochastic(t *testing.T) {
	k := testKernel(0.8)
	for l := 0; l < k.Layers-1; l++ {
		for from := 0; from < k.Experts; from++ {
			row := k.Transition(l, from)
			sum := 0.0
			for _, p := range row {
				if p < 0 {
					t.Fatal("negative transition probability")
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("row (%d,%d) sums to %v", l, from, sum)
			}
		}
	}
}

func TestStrengthControlsConcentration(t *testing.T) {
	strong := testKernel(0.95)
	weak := testKernel(0.0)
	topMass := func(k *Kernel, top int) float64 {
		rows := make([][]float64, 0, k.Experts)
		for from := 0; from < k.Experts; from++ {
			rows = append(rows, k.Transition(0, from))
		}
		return stats.NewHeatmap("", rows).DominantColumnFraction(top)
	}
	// "For each row only a few columns are red" (Fig 2): the top few
	// successors capture most of the mass in a strong kernel, while a
	// zero-strength kernel is uniform (top-1 mass = 1/E).
	if s := topMass(strong, 3); s < 0.6 {
		t.Fatalf("strong kernel top-3 mass %v too low", s)
	}
	if w := topMass(weak, 1); w > 1.0/16+1e-9 {
		t.Fatalf("zero-strength kernel should be uniform, top-1 mass %v", w)
	}
	if s1, w1 := topMass(strong, 1), topMass(weak, 1); s1 <= 2*w1 {
		t.Fatalf("strength must sharpen rows: strong top-1 %v vs uniform %v", s1, w1)
	}
}

func TestEmpiricalTransitionsMatchKernel(t *testing.T) {
	// Token samples drawn through the kernel (single domain, to avoid the
	// domain tilt) must converge to the declared transition rows.
	k := NewKernel(KernelParams{Seed: 2, Layers: 3, Experts: 8, Strength: 0.7, Domains: 1})
	const tokens = 60000
	counts := make([][]float64, k.Experts)
	for i := range counts {
		counts[i] = make([]float64, k.Experts)
	}
	for tok := uint64(0); tok < tokens; tok++ {
		p := k.Path(tok, 0)
		counts[p[0]][p[1]]++
	}
	// With a single domain the tilt is constant per row, so compare against
	// the tilted row.
	for from := 0; from < k.Experts; from++ {
		row := k.tilted(k.Transition(0, from), 0)
		total := 0.0
		for _, c := range counts[from] {
			total += c
		}
		if total < 500 {
			continue // too few samples through this expert for a tight check
		}
		for to := 0; to < k.Experts; to++ {
			got := counts[from][to] / total
			if math.Abs(got-row[to]) > 0.04 {
				t.Fatalf("P(%d|%d): empirical %v vs kernel %v", to, from, got, row[to])
			}
		}
	}
}

func TestActiveExpertsRestriction(t *testing.T) {
	k := NewKernel(KernelParams{Seed: 3, Layers: 4, Experts: 16, Strength: 0.8, ActiveExperts: 3})
	for tok := uint64(0); tok < 500; tok++ {
		for _, e := range k.Path(tok, int(tok%4)) {
			if e >= 3 {
				t.Fatalf("inactive expert %d routed to", e)
			}
		}
	}
}

func TestKernelParamValidation(t *testing.T) {
	bad := []KernelParams{
		{Layers: 0, Experts: 4, Strength: 0.5},
		{Layers: 2, Experts: 0, Strength: 0.5},
		{Layers: 2, Experts: 4, Strength: 1.5},
		{Layers: 2, Experts: 4, Strength: -0.1},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			NewKernel(p)
		}()
	}
}

func TestNextArgumentValidation(t *testing.T) {
	k := testKernel(0.5)
	for _, f := range []func(){
		func() { k.Next(1, 0, 0, 0) },
		func() { k.Next(1, k.Layers, 0, 0) },
		func() { k.Next(1, 1, -1, 0) },
		func() { k.Next(1, 1, k.Experts, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDatasetProfilesValid(t *testing.T) {
	for _, d := range AllDatasets() {
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if len(d.Mix) != standardDomains {
			t.Fatalf("%s: wrong domain count", d.Name)
		}
	}
}

func TestDatasetValidateRejectsBad(t *testing.T) {
	bad := []*DatasetProfile{
		{Name: "empty"},
		{Name: "neg", Mix: []float64{0.5, -0.1}},
		{Name: "zero", Mix: []float64{0, 0}},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("%s should be invalid", d.Name)
		}
	}
}

func TestTokenDomainFollowsMix(t *testing.T) {
	d := Yelp()
	counts := make([]float64, len(d.Mix))
	const n = 50000
	for i := uint64(0); i < n; i++ {
		counts[d.TokenDomain(i)]++
	}
	for dom, m := range d.Mix {
		got := counts[dom] / n
		if math.Abs(got-m) > 0.01 {
			t.Fatalf("domain %d frequency %v, want %v", dom, got, m)
		}
	}
}

func TestTokenIDsDisjointAcrossDatasets(t *testing.T) {
	pile, c4 := Pile(), C4()
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[pile.TokenID(i)] = true
	}
	collisions := 0
	for i := uint64(0); i < 1000; i++ {
		if seen[c4.TokenID(i)] {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("%d token-id collisions across datasets", collisions)
	}
}

func TestKernelRouterMatchesKernel(t *testing.T) {
	k := testKernel(0.8)
	p := Pile()
	kr := NewKernelRouter(k, p, 1)
	for tok := uint64(0); tok < 100; tok++ {
		dom := p.TokenDomain(tok)
		want := k.First(tok, dom)
		got := kr.Route(0, tok, -1, nil)
		if len(got) != 1 || got[0] != want {
			t.Fatalf("layer-0 route mismatch: %v vs %d", got, want)
		}
		next := kr.Route(1, tok, want, nil)
		if next[0] != k.Next(tok, 1, want, dom) {
			t.Fatal("layer-1 route mismatch")
		}
	}
}

func TestKernelRouterTop2Distinct(t *testing.T) {
	kr := NewKernelRouter(testKernel(0.8), Pile(), 2)
	for tok := uint64(0); tok < 200; tok++ {
		es := kr.Route(2, tok, int(tok)%16, nil)
		if len(es) != 2 {
			t.Fatalf("want 2 experts, got %v", es)
		}
		if es[0] == es[1] {
			t.Fatalf("top-2 experts must differ: %v", es)
		}
	}
}

func TestKernelRouterBadTopKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKernelRouter(testKernel(0.5), Pile(), 3)
}

func TestEvolutionActiveExpertsMonotone(t *testing.T) {
	ev := NewEvolution(1, 12, 32)
	prev := 0
	for _, iter := range []int{0, 100, 300, 600, 1000, 2000, 5000} {
		n := ev.ActiveExperts(iter)
		if n < prev {
			t.Fatalf("active experts decreased at iter %d", iter)
		}
		if n < 2 || n > 32 {
			t.Fatalf("active experts %d out of range", n)
		}
		prev = n
	}
	if ev.ActiveExperts(0) >= 16 {
		t.Fatalf("training should start collapsed, got %d active", ev.ActiveExperts(0))
	}
	if ev.ActiveExperts(5000) != 32 {
		t.Fatal("training should end with all experts active")
	}
}

func TestEvolutionLoadSharesShape(t *testing.T) {
	ev := NewEvolution(1, 6, 16)
	early := ev.LoadShares(0, 4000)
	late := ev.LoadShares(18000, 4000)
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	if math.Abs(sum(early)-1) > 1e-9 || math.Abs(sum(late)-1) > 1e-9 {
		t.Fatal("shares must sum to 1")
	}
	// Early training is skewed, late training balanced (Fig 11).
	if stats.GiniImbalance(early) <= stats.GiniImbalance(late) {
		t.Fatalf("imbalance should fall during training: early=%v late=%v",
			stats.GiniImbalance(early), stats.GiniImbalance(late))
	}
	if stats.Max(late) > 3.0/16 {
		t.Fatalf("late-training load should be near-balanced, max share %v", stats.Max(late))
	}
}

func TestEvolutionStrengthShape(t *testing.T) {
	ev := NewEvolution(1, 6, 16)
	s0 := ev.Strength(0)
	sDip := ev.Strength(800)
	sLate := ev.Strength(18000)
	if !(s0 > sDip) {
		t.Fatalf("strength should dip after collapse: s0=%v s800=%v", s0, sDip)
	}
	if !(sLate > sDip) {
		t.Fatalf("strength should recover with specialization: s800=%v s18000=%v", sDip, sLate)
	}
	if sLate < 0.9 || sLate > 1 {
		t.Fatalf("late strength %v implausible", sLate)
	}
	// Steady climb in the 2k-18k window (Fig 12b).
	prev := 0.0
	for iter := 2000; iter <= 18000; iter += 1000 {
		s := ev.Strength(iter)
		if s < prev-1e-9 {
			t.Fatalf("strength not monotone in specialization phase at %d", iter)
		}
		prev = s
	}
}

package synth

import (
	"fmt"

	"repro/internal/rng"
)

// DatasetProfile stands in for a text corpus: it assigns each token a domain
// according to a dataset-specific mixture. All profiles share the routing
// Kernel (expert specialization is a property of the *model*), so the only
// thing that differs across datasets is how often each domain — and hence
// each tilt of the transition rows — appears. This mirrors the paper's
// Table III finding that expert affinity is an intrinsic model property that
// holds on out-of-distribution data.
type DatasetProfile struct {
	Name string
	// Mix is the domain mixture; its length must match the kernel's Domains.
	Mix []float64
	// seed namespaces token identities so "token 5 of C4" differs from
	// "token 5 of Pile".
	seed uint64
}

// standardDomains is the domain count shared by the built-in profiles.
const standardDomains = 6

// Built-in profiles analogous to the paper's datasets. Mixtures are chosen
// to reflect the corpora's character: Pile is a broad academic/web/code mix,
// C4 is web-crawl heavy, Dolma is a broad mix with different proportions,
// and Yelp is narrow (reviews).
func Pile() *DatasetProfile {
	return &DatasetProfile{Name: "pile", Mix: []float64{0.22, 0.20, 0.18, 0.16, 0.12, 0.12}, seed: 0x9112E}
}

func C4() *DatasetProfile {
	return &DatasetProfile{Name: "c4", Mix: []float64{0.45, 0.20, 0.10, 0.10, 0.08, 0.07}, seed: 0xC4C4}
}

func Dolma() *DatasetProfile {
	return &DatasetProfile{Name: "dolma", Mix: []float64{0.18, 0.25, 0.20, 0.15, 0.12, 0.10}, seed: 0xD01A}
}

func Yelp() *DatasetProfile {
	return &DatasetProfile{Name: "yelp", Mix: []float64{0.05, 0.08, 0.07, 0.10, 0.15, 0.55}, seed: 0x4E1B}
}

// Custom builds a user-defined dataset profile — e.g. a synthetic drifted
// corpus for online-serving experiments. The mix length must match the
// routing kernel's domain count (standardDomains for the built-in kernels);
// seed namespaces the profile's token identities away from the built-ins.
func Custom(name string, mix []float64, seed uint64) *DatasetProfile {
	d := &DatasetProfile{Name: name, Mix: append([]float64(nil), mix...), seed: seed}
	if err := d.Validate(); err != nil {
		panic(err)
	}
	return d
}

// AllDatasets returns the four built-in profiles, Pile first.
func AllDatasets() []*DatasetProfile {
	return []*DatasetProfile{Pile(), C4(), Dolma(), Yelp()}
}

// Validate checks the mixture.
func (d *DatasetProfile) Validate() error {
	if len(d.Mix) == 0 {
		return fmt.Errorf("synth: dataset %q has empty mix", d.Name)
	}
	total := 0.0
	for _, m := range d.Mix {
		if m < 0 {
			return fmt.Errorf("synth: dataset %q has negative mix entry", d.Name)
		}
		total += m
	}
	if total == 0 {
		return fmt.Errorf("synth: dataset %q mix sums to zero", d.Name)
	}
	return nil
}

// TokenDomain deterministically assigns a domain to a token id.
func (d *DatasetProfile) TokenDomain(tokenID uint64) int {
	r := rng.New(rng.Mix64(d.seed, tokenID, 0xD0))
	return r.Categorical(d.Mix)
}

// TokenID maps a dataset-local token ordinal to the global token identity
// space, so different datasets produce disjoint token streams.
func (d *DatasetProfile) TokenID(ordinal uint64) uint64 {
	return rng.Mix64(d.seed, ordinal)
}

package synth

import (
	"repro/internal/moe"
	"repro/internal/rng"
)

// KernelRouter adapts a Kernel (plus a dataset profile for domain
// assignment) to the moe.Router interface used by the inference engine. The
// hidden activation is ignored — routing statistics come from the kernel —
// but the router is still a deterministic pure function of (layer, tokenID,
// prev), which is the property the engine's shared-gating invariant needs.
//
// TopK of 2 returns a second, distinct expert drawn from the same
// conditional row (GShard-style top-2).
type KernelRouter struct {
	Kernel  *Kernel
	Profile *DatasetProfile
	TopK    int
}

// NewKernelRouter wires a kernel and a dataset profile together.
func NewKernelRouter(k *Kernel, p *DatasetProfile, topK int) *KernelRouter {
	if topK != 1 && topK != 2 {
		panic("synth: TopK must be 1 or 2")
	}
	return &KernelRouter{Kernel: k, Profile: p, TopK: topK}
}

// Experts implements moe.Router.
func (kr *KernelRouter) Experts() int { return kr.Kernel.Experts }

// Route implements moe.Router.
func (kr *KernelRouter) Route(layer int, tokenID uint64, prev int, h []float32) []int {
	domain := kr.Profile.TokenDomain(tokenID)
	var primary int
	if layer == 0 || prev < 0 {
		primary = kr.Kernel.First(tokenID, domain)
	} else {
		primary = kr.Kernel.Next(tokenID, layer, prev, domain)
	}
	if kr.TopK == 1 {
		return []int{primary}
	}
	secondary := kr.second(layer, tokenID, prev, domain, primary)
	return []int{primary, secondary}
}

// second draws a distinct secondary expert from the same conditional row.
func (kr *KernelRouter) second(layer int, tokenID uint64, prev, domain, primary int) int {
	var row []float64
	if layer == 0 || prev < 0 {
		row = kr.Kernel.tilted(kr.Kernel.initDist, domain)
	} else {
		row = kr.Kernel.tilted(kr.Kernel.trans[layer-1][prev], domain)
	}
	masked := append([]float64(nil), row...)
	masked[primary] = 0
	r := rng.New(rng.Mix64(kr.Kernel.Seed, tokenID, uint64(layer), 0x2ED))
	total := 0.0
	for _, v := range masked {
		total += v
	}
	if total == 0 {
		// Degenerate row (probability mass entirely on primary): fall back
		// to the next expert index, preserving determinism.
		return (primary + 1) % kr.Kernel.Experts
	}
	return r.Categorical(masked)
}

// RouteWeighted implements moe.WeightedRouter: mixture weights proportional
// to the kernel's conditional probabilities of the selected experts.
func (kr *KernelRouter) RouteWeighted(layer int, tokenID uint64, prev int, h []float32) ([]int, []float64) {
	experts := kr.Route(layer, tokenID, prev, h)
	domain := kr.Profile.TokenDomain(tokenID)
	var row []float64
	if layer == 0 || prev < 0 {
		row = kr.Kernel.tilted(kr.Kernel.initDist, domain)
	} else {
		row = kr.Kernel.tilted(kr.Kernel.trans[layer-1][prev], domain)
	}
	weights := make([]float64, len(experts))
	total := 0.0
	for i, e := range experts {
		weights[i] = row[e]
		total += row[e]
	}
	if total == 0 {
		for i := range weights {
			weights[i] = 1 / float64(len(weights))
		}
		return experts, weights
	}
	for i := range weights {
		weights[i] /= total
	}
	return experts, weights
}

var _ moe.Router = (*KernelRouter)(nil)
var _ moe.WeightedRouter = (*KernelRouter)(nil)

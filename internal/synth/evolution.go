package synth

import (
	"math"

	"repro/internal/rng"
)

// Evolution models how a MoE model's routing behaviour changes over training
// iterations, reproducing the dynamics in the paper's Figs 11-12:
//
//   - At iteration 0 the gate is random and collapsed: a handful of experts
//     receive almost all tokens (Fig 11's early spike). Because so few
//     experts are active, the measured affinity is trivially high.
//   - The GShard load-balancing loss then spreads tokens across experts;
//     while the active set is still growing, affinity *dips* (the routing is
//     balanced but not yet specialized) — the oscillation in Fig 12a.
//   - From ~2k iterations on, experts specialize: routing stays balanced but
//     transition rows sharpen, so affinity climbs steadily and stabilizes
//     (Fig 12b).
//
// The curves below encode those phases; checkpoints expose both the expert
// load distribution (Fig 11) and a Kernel snapshot whose measured affinity
// follows Fig 12.
type Evolution struct {
	Seed    uint64
	Layers  int
	Experts int
}

// NewEvolution creates a training-evolution model.
func NewEvolution(seed uint64, layers, experts int) *Evolution {
	return &Evolution{Seed: seed, Layers: layers, Experts: experts}
}

// ActiveExperts returns how many experts receive non-negligible traffic at
// an iteration: a few at the start, all of them once balancing kicks in.
func (ev *Evolution) ActiveExperts(iter int) int {
	// Starts at ~12% of experts (at least 2), saturates around iter 1200.
	frac := 0.12 + 0.88*sigmoid((float64(iter)-500)/180)
	n := int(math.Round(frac * float64(ev.Experts)))
	if n < 2 {
		n = 2
	}
	if n > ev.Experts {
		n = ev.Experts
	}
	return n
}

// Strength returns the kernel affinity concentration at an iteration,
// following the dip-then-climb shape described above.
func (ev *Evolution) Strength(iter int) float64 {
	t := float64(iter)
	// Early collapse: high apparent concentration decaying quickly.
	collapse := 0.95 * math.Exp(-t/250)
	// Specialization: slow climb toward 0.97 with midpoint ~5k iterations.
	specialize := 0.97 * sigmoid((t-3000)/2600)
	// Balanced-but-unspecialized floor.
	s := 0.30 + collapse*0.65 + specialize*0.68
	if s > 0.97 {
		s = 0.97
	}
	return s
}

// KernelAt returns the routing-kernel snapshot at a training iteration. The
// kernel seed is fixed across iterations (the *model* is the same; only its
// sharpness and active set evolve), so successive checkpoints are
// comparable.
func (ev *Evolution) KernelAt(iter int) *Kernel {
	return NewKernel(KernelParams{
		Seed:          rng.Mix64(ev.Seed, 0xE0),
		Layers:        ev.Layers,
		Experts:       ev.Experts,
		Strength:      ev.Strength(iter),
		ActiveExperts: ev.ActiveExperts(iter),
	})
}

// LoadShares returns each expert's share of routed tokens at the last MoE
// layer for a checkpoint (the quantity plotted in Fig 11), measured by
// sampling `tokens` token paths through the checkpoint kernel.
func (ev *Evolution) LoadShares(iter, tokens int) []float64 {
	k := ev.KernelAt(iter)
	profile := Pile()
	counts := make([]float64, ev.Experts)
	last := ev.Layers - 1
	for t := 0; t < tokens; t++ {
		id := rng.Mix64(ev.Seed, 0x70AD, uint64(iter), uint64(t))
		path := k.Path(id, profile.TokenDomain(id))
		counts[path[last]]++
	}
	total := float64(tokens)
	for i := range counts {
		counts[i] /= total
	}
	return counts
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

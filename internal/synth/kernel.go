// Package synth generates synthetic expert-routing behaviour with
// controllable inter-layer affinity. It stands in for the pre-trained GPT
// MoE checkpoints the paper profiles (see DESIGN.md, substitutions): what
// the ExFlow pipeline consumes from a real model is the joint distribution
// of per-layer expert choices, and this package produces that distribution
// as a first-order Markov process over layers whose transition rows have a
// tunable concentration — reproducing the "few red columns per row"
// structure of the paper's Fig 2 heatmaps.
package synth

import (
	"fmt"

	"repro/internal/rng"
)

// Kernel is a generative model of token routing: a token's expert at layer 0
// is drawn from an initial distribution and the expert at layer j+1 is drawn
// from a row-stochastic transition matrix indexed by the expert at layer j.
// Rows mix a spiky (Dirichlet) component with the uniform distribution;
// Strength in [0,1] sets the mixing weight and therefore the affinity.
//
// Tokens belong to domains (see DatasetProfile); a domain tilts the
// transition rows multiplicatively, modeling topical specialization without
// destroying the shared backbone — this is what makes affinity learned on
// one dataset transfer to others (paper Table III).
type Kernel struct {
	Seed     uint64
	Layers   int
	Experts  int
	Strength float64
	Domains  int

	initDist []float64     // layer-0 expert distribution
	trans    [][][]float64 // [layer][from][to], layer in [0, Layers-2]
	domPref  [][]float64   // [domain][expert] multiplicative tilt
}

// KernelParams configures NewKernel.
type KernelParams struct {
	Seed    uint64
	Layers  int
	Experts int
	// Strength in [0,1]: 0 gives uniform routing (no affinity), values near
	// 1 give near-deterministic successor experts. Pre-trained GPT MoE models
	// measured in the paper correspond to roughly 0.75-0.9.
	Strength float64
	// Domains is the number of token domains (default 6).
	Domains int
	// SpikyAlpha is the Dirichlet concentration of the spiky row component;
	// smaller is spikier. Default 0.15.
	SpikyAlpha float64
	// DomainTilt scales the spread of the per-domain expert preferences.
	// 1 (the default, also selected by 0) reproduces the mild tilt that
	// makes affinity transfer across datasets (paper Table III); larger
	// values model more domain-specialized checkpoints, whose routing — and
	// hence whose optimal placement — genuinely shifts when the serving
	// traffic's domain mixture drifts.
	DomainTilt float64
	// ActiveExperts restricts routing to the first ActiveExperts experts
	// (used by the training-evolution model to reproduce early-training
	// expert collapse). Zero means all experts are active.
	ActiveExperts int
}

// NewKernel builds a deterministic kernel from the parameters.
func NewKernel(p KernelParams) *Kernel {
	if p.Layers < 1 || p.Experts < 1 {
		panic(fmt.Sprintf("synth: invalid kernel shape %dx%d", p.Layers, p.Experts))
	}
	if p.Strength < 0 || p.Strength > 1 {
		panic("synth: Strength must be in [0,1]")
	}
	if p.Domains <= 0 {
		p.Domains = 6
	}
	if p.SpikyAlpha <= 0 {
		p.SpikyAlpha = 0.15
	}
	if p.DomainTilt <= 0 {
		p.DomainTilt = 1
	}
	active := p.ActiveExperts
	if active <= 0 || active > p.Experts {
		active = p.Experts
	}
	k := &Kernel{
		Seed:     p.Seed,
		Layers:   p.Layers,
		Experts:  p.Experts,
		Strength: p.Strength,
		Domains:  p.Domains,
	}
	r := rng.New(rng.Mix64(p.Seed, 0x5E17))

	uniform := 1.0 / float64(active)
	k.initDist = make([]float64, p.Experts)
	spikyInit := r.Dirichlet(active, 0.8)
	for e := 0; e < active; e++ {
		k.initDist[e] = 0.5*spikyInit[e] + 0.5*uniform
	}

	k.trans = make([][][]float64, p.Layers-1)
	for l := range k.trans {
		k.trans[l] = make([][]float64, p.Experts)
		for from := 0; from < p.Experts; from++ {
			row := make([]float64, p.Experts)
			spiky := r.Dirichlet(active, p.SpikyAlpha)
			for to := 0; to < active; to++ {
				row[to] = p.Strength*spiky[to] + (1-p.Strength)*uniform
			}
			k.trans[l][from] = row
		}
	}

	k.domPref = make([][]float64, p.Domains)
	for d := range k.domPref {
		pref := make([]float64, p.Experts)
		draw := r.Dirichlet(active, 1.2)
		for e := 0; e < active; e++ {
			// Tilt factors in [0.6, 0.6 + 0.8*DomainTilt*E*p]; at the default
			// tilt the mean is 1.4-ish, mild enough that the backbone
			// dominates.
			pref[e] = 0.6 + 0.8*p.DomainTilt*float64(active)*draw[e]
		}
		k.domPref[d] = pref
	}
	return k
}

// tilted returns base element-wise multiplied by the domain preference,
// normalized. base entries for inactive experts are zero and stay zero.
func (k *Kernel) tilted(base []float64, domain int) []float64 {
	pref := k.domPref[domain%k.Domains]
	out := make([]float64, len(base))
	total := 0.0
	for i, b := range base {
		out[i] = b * pref[i]
		total += out[i]
	}
	if total == 0 {
		return base
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// First samples the layer-0 expert for a token. The draw is a pure function
// of (kernel seed, tokenID), so repeated calls agree — this is what makes
// the shared-gating-function invariant hold in the engine: any GPU asking
// "where does token t go at layer 0" gets the same answer.
func (k *Kernel) First(tokenID uint64, domain int) int {
	r := rng.New(rng.Mix64(k.Seed, tokenID, 0))
	return r.Categorical(k.tilted(k.initDist, domain))
}

// Next samples the expert at layer given the expert chosen at layer-1.
// layer must be in [1, Layers). Deterministic in (seed, tokenID, layer,
// prev, domain).
func (k *Kernel) Next(tokenID uint64, layer, prev, domain int) int {
	if layer < 1 || layer >= k.Layers {
		panic(fmt.Sprintf("synth: Next layer %d out of range [1,%d)", layer, k.Layers))
	}
	if prev < 0 || prev >= k.Experts {
		panic(fmt.Sprintf("synth: invalid prev expert %d", prev))
	}
	r := rng.New(rng.Mix64(k.Seed, tokenID, uint64(layer)))
	return r.Categorical(k.tilted(k.trans[layer-1][prev], domain))
}

// Path returns the full per-layer expert path of a token.
func (k *Kernel) Path(tokenID uint64, domain int) []int {
	path := make([]int, k.Layers)
	path[0] = k.First(tokenID, domain)
	for l := 1; l < k.Layers; l++ {
		path[l] = k.Next(tokenID, l, path[l-1], domain)
	}
	return path
}

// Transition returns the ground-truth row P(.|from) between layer and
// layer+1 (domain-untilted). Exposed for estimation-convergence tests.
func (k *Kernel) Transition(layer, from int) []float64 {
	return k.trans[layer][from]
}

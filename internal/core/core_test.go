package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/topo"
	"repro/internal/trace"
)

func testTrace(tokens int) *trace.Trace {
	k := synth.NewKernel(synth.KernelParams{Seed: 5, Layers: 6, Experts: 16, Strength: 0.85})
	kr := synth.NewKernelRouter(k, synth.Pile(), 1)
	return trace.Collect(kr, 6, trace.SequentialIDs(tokens, synth.Pile().TokenID))
}

func testOptimizer() *Optimizer {
	return &Optimizer{ModelName: "test/16E", Topo: topo.Wilkes3(2), Seed: 3}
}

func TestSolveProducesValidPlan(t *testing.T) {
	plan, err := testOptimizer().Solve(testTrace(1500))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.Model != "test/16E" || plan.ProfiledTokens != 1500 {
		t.Fatalf("provenance wrong: %+v", plan)
	}
	if plan.ImprovementRatio() <= 1 {
		t.Fatalf("solve should improve on baseline, ratio %v", plan.ImprovementRatio())
	}
}

func TestSolveErrors(t *testing.T) {
	o := testOptimizer()
	if _, err := o.Solve(trace.New(6, 16)); err == nil {
		t.Fatal("empty trace should error")
	}
	// 10 experts over 8 gpus is indivisible.
	k := synth.NewKernel(synth.KernelParams{Seed: 1, Layers: 3, Experts: 10, Strength: 0.5})
	tr := trace.Collect(synth.NewKernelRouter(k, synth.Pile(), 1), 3, trace.SequentialIDs(50, nil))
	if _, err := o.Solve(tr); err == nil {
		t.Fatal("indivisible expert count should error")
	}
	bad := &Optimizer{}
	if _, err := bad.Solve(testTrace(10)); err == nil {
		t.Fatal("nil topology should error")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	plan, err := testOptimizer().Solve(testTrace(800))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"assign"`) {
		t.Fatal("JSON missing assign field")
	}
	got, err := DecodePlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Layers != plan.Layers || got.Experts != plan.Experts || got.SolvedCross != plan.SolvedCross {
		t.Fatal("round trip lost fields")
	}
	for j := range plan.Assign {
		for e := range plan.Assign[j] {
			if got.Assign[j][e] != plan.Assign[j][e] {
				t.Fatal("assignment changed in round trip")
			}
		}
	}
}

func TestDecodePlanRejectsCorrupt(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"version": 99}`,
		`{"version": 1, "layers": 2, "experts": 4, "nodes": 1, "gpus_per_node": 2, "assign": [[0,0,1,1]]}`, // wrong layer count
		`{"version": 1, "layers": 1, "experts": 4, "nodes": 1, "gpus_per_node": 2, "assign": [[0,0,0,1]]}`, // imbalanced
	}
	for i, c := range cases {
		if _, err := DecodePlan(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestCheckCompatible(t *testing.T) {
	plan, err := testOptimizer().Solve(testTrace(500))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.CheckCompatible(6, 16, topo.Wilkes3(2)); err != nil {
		t.Fatalf("compatible plan rejected: %v", err)
	}
	if err := plan.CheckCompatible(7, 16, topo.Wilkes3(2)); err == nil {
		t.Fatal("layer mismatch should fail")
	}
	if err := plan.CheckCompatible(6, 16, topo.Wilkes3(4)); err == nil {
		t.Fatal("topology mismatch should fail")
	}
}

func TestPlanPlacementMatchesAssign(t *testing.T) {
	plan, err := testOptimizer().Solve(testTrace(500))
	if err != nil {
		t.Fatal(err)
	}
	pl := plan.Placement()
	for j := range plan.Assign {
		for e := range plan.Assign[j] {
			if pl.Assign[j][e] != plan.Assign[j][e] {
				t.Fatal("Placement() diverges from Assign")
			}
		}
	}
}

func TestSearchTokenBudgetConverges(t *testing.T) {
	o := testOptimizer()
	profile := testTrace(4000)
	heldOut := func() *trace.Trace {
		k := synth.NewKernel(synth.KernelParams{Seed: 5, Layers: 6, Experts: 16, Strength: 0.85})
		kr := synth.NewKernelRouter(k, synth.Pile(), 1)
		ids := make([]uint64, 3000)
		for i := range ids {
			ids[i] = synth.Pile().TokenID(uint64(1<<20 + i))
		}
		return trace.Collect(kr, 6, ids)
	}()
	best, curve, err := o.SearchTokenBudget(profile, heldOut, 100, 4000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) == 0 {
		t.Fatal("no curve points")
	}
	if best < 100 || best > 4000 {
		t.Fatalf("budget %d out of range", best)
	}
	// Gains must all be >= 1 (affinity placement never loses to contiguous
	// on this strong-affinity kernel) and non-decreasing along the kept
	// prefix.
	for _, pt := range curve {
		if pt.HeldOutGain < 1 {
			t.Fatalf("gain %v below 1 at %d tokens", pt.HeldOutGain, pt.Tokens)
		}
	}
}

func TestSearchTokenBudgetErrors(t *testing.T) {
	o := testOptimizer()
	tr := testTrace(100)
	if _, _, err := o.SearchTokenBudget(tr, tr, 0, 100, 0.01); err == nil {
		t.Fatal("invalid range should error")
	}
	if _, _, err := o.SearchTokenBudget(tr, tr, 100, 1000, 0.01); err == nil {
		t.Fatal("insufficient profile should error")
	}
}

func TestAnalyze(t *testing.T) {
	o := testOptimizer()
	tr := testTrace(1200)
	plan, err := o.Solve(tr)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := o.Analyze(plan, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Concentration <= 0 || rep.LocalFrac <= 0 || rep.IntraNodeFrac < rep.LocalFrac {
		t.Fatalf("implausible report: %+v", rep)
	}
	// Analyzing against a mismatched trace fails.
	k := synth.NewKernel(synth.KernelParams{Seed: 9, Layers: 4, Experts: 16, Strength: 0.5})
	other := trace.Collect(synth.NewKernelRouter(k, synth.Pile(), 1), 4, trace.SequentialIDs(50, nil))
	if _, err := o.Analyze(plan, other); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

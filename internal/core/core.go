// Package core is the ExFlow optimizer proper: it orchestrates the offline
// pipeline the paper describes — profile a pre-trained model's routing,
// estimate inter-layer expert affinity, solve the staged placement integer
// program, and emit a deployable placement Plan — and defines the Plan
// artifact that inference servers load at model-load time ("variable x in
// the solution will be directly used as the expert placement strategy when
// loading the MoE model to GPUs", Section IV-D).
//
// A Plan is a serializable, self-validating artifact: it records the model
// shape and the topology it was solved for, the per-layer expert→GPU map,
// and provenance (profiling tokens, objective values), so a deployment can
// verify at load time that the plan matches the model and cluster it is
// being applied to.
package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/affinity"
	"repro/internal/placement"
	"repro/internal/topo"
	"repro/internal/trace"
)

// PlanVersion is bumped when the serialized format changes.
const PlanVersion = 1

// Plan is the deployable output of the ExFlow pipeline.
type Plan struct {
	Version int    `json:"version"`
	Model   string `json:"model"`
	Layers  int    `json:"layers"`
	Experts int    `json:"experts"`

	// Topology the plan was solved for.
	Nodes       int `json:"nodes"`
	GPUsPerNode int `json:"gpus_per_node"`

	// Assign[layer][expert] = global GPU rank.
	Assign [][]int `json:"assign"`

	// Provenance.
	ProfiledTokens int     `json:"profiled_tokens"`
	BaselineCross  float64 `json:"baseline_crossings"`
	SolvedCross    float64 `json:"solved_crossings"`
	Seed           uint64  `json:"seed"`
}

// Placement converts the plan back into a placement value.
func (p *Plan) Placement() *placement.Placement {
	pl := placement.NewPlacement(p.Layers, p.Experts, p.Nodes*p.GPUsPerNode)
	for j := range p.Assign {
		copy(pl.Assign[j], p.Assign[j])
	}
	return pl
}

// Validate checks internal consistency and the paper's balance/exclusivity
// constraints.
func (p *Plan) Validate() error {
	if p.Version != PlanVersion {
		return fmt.Errorf("core: plan version %d, want %d", p.Version, PlanVersion)
	}
	if p.Layers <= 0 || p.Experts <= 0 || p.Nodes <= 0 || p.GPUsPerNode <= 0 {
		return fmt.Errorf("core: plan has invalid shape")
	}
	if len(p.Assign) != p.Layers {
		return fmt.Errorf("core: plan has %d layers of assignments, want %d", len(p.Assign), p.Layers)
	}
	for j, row := range p.Assign {
		if len(row) != p.Experts {
			return fmt.Errorf("core: plan layer %d has %d experts, want %d", j, len(row), p.Experts)
		}
	}
	return p.Placement().Validate()
}

// CheckCompatible verifies the plan was solved for the given model shape
// and topology; a mismatch means the plan must be re-solved, not silently
// applied.
func (p *Plan) CheckCompatible(layers, experts int, tp *topo.Topology) error {
	if p.Layers != layers || p.Experts != experts {
		return fmt.Errorf("core: plan is for %dL x %dE, model is %dL x %dE", p.Layers, p.Experts, layers, experts)
	}
	if p.Nodes != tp.Nodes || p.GPUsPerNode != tp.GPUsPerNode {
		return fmt.Errorf("core: plan is for %dx%d topology, cluster is %dx%d",
			p.Nodes, p.GPUsPerNode, tp.Nodes, tp.GPUsPerNode)
	}
	return nil
}

// ImprovementRatio returns baseline/solved crossings (>= 1 when the solve
// helped); 0 when provenance is missing.
func (p *Plan) ImprovementRatio() float64 {
	if p.SolvedCross <= 0 {
		return 0
	}
	return p.BaselineCross / p.SolvedCross
}

// Encode writes the plan as JSON.
func (p *Plan) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// DecodePlan reads and validates a plan.
func DecodePlan(r io.Reader) (*Plan, error) {
	var p Plan
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decoding plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Optimizer runs the offline pipeline.
type Optimizer struct {
	// ModelName is recorded in plan provenance.
	ModelName string
	// Topo is the target cluster.
	Topo *topo.Topology
	// Seed feeds the annealer.
	Seed uint64
}

// Solve profiles nothing itself — it consumes a routing trace (from
// trace.Collect or a decoded trace file) and produces the deployable Plan.
func (o *Optimizer) Solve(tr *trace.Trace) (*Plan, error) {
	if o.Topo == nil {
		return nil, fmt.Errorf("core: optimizer needs a topology")
	}
	gpus := o.Topo.TotalGPUs()
	if tr.Experts%gpus != 0 {
		return nil, fmt.Errorf("core: %d experts not divisible over %d gpus", tr.Experts, gpus)
	}
	if tr.Tokens() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	counts := tr.AllTransitionCounts()
	pl := placement.Staged(counts, tr.Layers, tr.Experts, o.Topo, o.Seed)
	base := placement.Contiguous(tr.Layers, tr.Experts, gpus)
	plan := &Plan{
		Version:        PlanVersion,
		Model:          o.ModelName,
		Layers:         tr.Layers,
		Experts:        tr.Experts,
		Nodes:          o.Topo.Nodes,
		GPUsPerNode:    o.Topo.GPUsPerNode,
		Assign:         pl.Assign,
		ProfiledTokens: tr.Tokens(),
		BaselineCross:  base.Crossings(counts),
		SolvedCross:    pl.Crossings(counts),
		Seed:           o.Seed,
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("core: solver produced invalid plan: %w", err)
	}
	return plan, nil
}

// BudgetResult records one step of SearchTokenBudget.
type BudgetResult struct {
	Tokens      int
	HeldOutGain float64 // baseline/solved crossings on held-out tokens
}

// SearchTokenBudget answers the paper's Fig 13 question operationally:
// starting from minTokens, it doubles the profiling budget until the
// held-out improvement ratio stops growing by at least epsilon, and returns
// the chosen budget with the measurement curve. profile must contain at
// least maxTokens paths; heldOut is a disjoint evaluation trace.
func (o *Optimizer) SearchTokenBudget(profile, heldOut *trace.Trace, minTokens, maxTokens int, epsilon float64) (int, []BudgetResult, error) {
	if minTokens <= 0 || maxTokens < minTokens {
		return 0, nil, fmt.Errorf("core: invalid budget range [%d, %d]", minTokens, maxTokens)
	}
	if profile.Tokens() < maxTokens {
		return 0, nil, fmt.Errorf("core: profile trace has %d tokens, need %d", profile.Tokens(), maxTokens)
	}
	evalCounts := heldOut.AllTransitionCounts()
	base := placement.Contiguous(profile.Layers, profile.Experts, o.Topo.TotalGPUs())
	baseCross := base.Crossings(evalCounts)

	var curve []BudgetResult
	best := minTokens
	prevGain := 0.0
	for n := minTokens; n <= maxTokens; n *= 2 {
		plan, err := o.Solve(profile.Head(n))
		if err != nil {
			return 0, nil, err
		}
		cross := plan.Placement().Crossings(evalCounts)
		gain := 1.0
		if cross > 0 {
			gain = baseCross / cross
		}
		curve = append(curve, BudgetResult{Tokens: n, HeldOutGain: gain})
		if gain > prevGain+epsilon {
			best = n
			prevGain = gain
		} else {
			// Converged: the doubled budget did not help.
			return best, curve, nil
		}
	}
	return best, curve, nil
}

// Report summarizes a plan against a trace for operator consumption.
type Report struct {
	Plan          *Plan
	Concentration float64 // top-3 affinity mass of the trace
	LocalFrac     float64 // same-GPU transition fraction under the plan
	IntraNodeFrac float64
}

// Analyze produces the operator report.
func (o *Optimizer) Analyze(plan *Plan, tr *trace.Trace) (*Report, error) {
	if err := plan.CheckCompatible(tr.Layers, tr.Experts, o.Topo); err != nil {
		return nil, err
	}
	aff := affinity.Estimate(tr)
	loc := plan.Placement().Locality(tr, o.Topo)
	return &Report{
		Plan:          plan,
		Concentration: aff.Concentration(3),
		LocalFrac:     loc.FracSameGPU,
		IntraNodeFrac: loc.FracIntraNode,
	}, nil
}

package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDecisionLogRecords(t *testing.T) {
	dl := NewDecisionLog(16)
	dl.Logf(0.5, "observe drift=%.3f threshold=%.3f", 0.12, 0.25)
	dl.Logf(1.0, "solve-launch drift=%.3f", 0.31)
	if dl.Len() != 2 {
		t.Fatalf("len=%d, want 2", dl.Len())
	}
	lines := dl.Lines()
	if !strings.HasPrefix(lines[0], "[t=0.500000s] observe drift=0.120") {
		t.Fatalf("line 0 = %q", lines[0])
	}
	out := dl.String()
	if strings.Contains(out, "truncated") {
		t.Fatal("unwrapped log should have no truncation header")
	}
	if got := strings.Count(out, "\n"); got != 2 {
		t.Fatalf("rendered %d lines, want 2", got)
	}
	if !dl.Enabled() {
		t.Fatal("non-nil log should be enabled")
	}
}

func TestDecisionLogWrapsWithHeader(t *testing.T) {
	dl := NewDecisionLog(4)
	for i := 0; i < 10; i++ {
		dl.Logf(float64(i), "line %d", i)
	}
	lines := dl.Lines()
	if len(lines) != 4 {
		t.Fatalf("len=%d, want 4", len(lines))
	}
	if !strings.HasSuffix(lines[0], "line 6") || !strings.HasSuffix(lines[3], "line 9") {
		t.Fatalf("wrong window: %v", lines)
	}
	if !strings.Contains(dl.String(), "truncated: showing most recent 4 of 10") {
		t.Fatalf("missing truncation header:\n%s", dl.String())
	}
}

func TestDecisionLogExactlyFull(t *testing.T) {
	dl := NewDecisionLog(3)
	for i := 0; i < 3; i++ {
		dl.Logf(float64(i), "line %d", i)
	}
	lines := dl.Lines()
	if len(lines) != 3 || !strings.HasSuffix(lines[0], "line 0") {
		t.Fatalf("exactly-full window wrong: %v", lines)
	}
}

func TestDecisionLogNilSafe(t *testing.T) {
	var dl *DecisionLog
	dl.Logf(1, "x")
	if dl.Enabled() || dl.Len() != 0 || dl.Lines() != nil || dl.String() != "" {
		t.Fatal("nil decision log not inert")
	}
	var buf bytes.Buffer
	if _, err := dl.WriteTo(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil WriteTo should write nothing")
	}
}

func TestDecisionLogWriteFile(t *testing.T) {
	dl := NewDecisionLog(8)
	dl.Logf(0.1, "install replica=%d moves=%d", 1, 3)
	path := filepath.Join(t.TempDir(), "decisions.log")
	if err := dl.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != dl.String() {
		t.Fatal("file contents differ from String()")
	}
	var buf bytes.Buffer
	if _, err := dl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != dl.String() {
		t.Fatal("WriteTo differs from String()")
	}
}

func TestWriteFileAtomicErrors(t *testing.T) {
	if err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x")); err == nil {
		t.Fatal("write into missing directory should fail")
	}
	path := filepath.Join(t.TempDir(), "f.json")
	if err := WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	blob, _ := os.ReadFile(path)
	if string(blob) != "two" {
		t.Fatalf("got %q after overwrite", blob)
	}
}

package obs

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path via a temp file in the same directory
// followed by rename, so an interrupted run can never leave a truncated
// artifact for CI to parse. The rename is atomic on POSIX filesystems when
// source and target share a directory, which the same-dir temp guarantees.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	return nil
}

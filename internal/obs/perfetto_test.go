package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func exportFixture() *Tracer {
	tr := NewTracer(TracerOptions{Cap: 64})
	tr.Emit(Event{Kind: EvIteration, Rep: 0, GPU: -1, Layer: -1, Expert: -1, T: 0.1, Dur: 0.02, Aux: 8})
	tr.Emit(Event{Kind: EvExpertStall, Rep: 0, GPU: 2, Layer: 5, Expert: 17, T: 0.11, Dur: 0.003, Value: 0.003})
	tr.Emit(Event{Kind: EvFetch, Rep: 1, GPU: 0, Layer: 3, Expert: 4, T: 0.12, Dur: 0.001})
	tr.Emit(Event{Kind: EvDrift, Rep: -1, GPU: -1, Layer: -1, Expert: -1, T: 0.2, Value: 0.31})
	tr.Emit(Event{Kind: EvSolve, Rep: -1, GPU: -1, Layer: -1, Expert: -1, T: 0.2, Dur: 0.5})
	tr.Emit(Event{Kind: EvInstall, Rep: 1, GPU: -1, Layer: -1, Expert: -1, T: 0.7, Aux: 3})
	tr.Emit(Event{Kind: EvPause, Rep: 1, GPU: -1, Layer: -1, Expert: -1, T: 0.7, Dur: 0.05})
	tr.Emit(Event{Kind: EvQueueDepth, Rep: -1, GPU: -1, Layer: -1, Expert: -1, T: 0.2, Value: 12})
	return tr
}

func TestPerfettoJSONStructure(t *testing.T) {
	blob, err := PerfettoJSON(exportFixture())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit=%q", doc.DisplayTimeUnit)
	}
	if doc.OtherData["clock"] != "simulated" {
		t.Fatal("otherData.clock missing")
	}

	byPhase := map[string]int{}
	procNames := map[int]string{}
	var sawPause, sawSolveSpan, sawStallSpan bool
	for _, e := range doc.TraceEvents {
		byPhase[e.Ph]++
		if e.Ph == "M" && e.Name == "process_name" {
			procNames[e.Pid], _ = e.Args["name"].(string)
		}
		switch e.Name {
		case "migration-pause":
			if e.Ph == "X" && e.Dur > 0 {
				sawPause = true
			}
		case "solve":
			if e.Ph == "X" && e.Dur == 0.5*1e6 {
				sawSolveSpan = true
			}
		case "expert-stall":
			// GPU 2 of replica 0 → pid 0, tid 3; layer/expert in args.
			if e.Ph == "X" && e.Pid == 0 && e.Tid == 3 &&
				e.Args["layer"] == float64(5) && e.Args["expert"] == float64(17) {
				sawStallSpan = true
			}
		}
	}
	if !sawPause || !sawSolveSpan || !sawStallSpan {
		t.Fatalf("missing spans: pause=%v solve=%v stall=%v", sawPause, sawSolveSpan, sawStallSpan)
	}
	if byPhase["C"] != 2 {
		t.Fatalf("got %d counter events, want 2 (drift + queue depth)", byPhase["C"])
	}
	if byPhase["i"] == 0 {
		t.Fatal("no instant events (install should be one)")
	}
	// maxRep is 1, so the controller process is pid 2.
	if procNames[2] != "controller" {
		t.Fatalf("controller pid not named: %v", procNames)
	}
	if procNames[0] != "replica 0" || procNames[1] != "replica 1" {
		t.Fatalf("replica process names wrong: %v", procNames)
	}
}

func TestPerfettoJSONDeterministic(t *testing.T) {
	a, err := PerfettoJSON(exportFixture())
	if err != nil {
		t.Fatal(err)
	}
	b, err := PerfettoJSON(exportFixture())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical tracers exported different bytes")
	}
}

func TestPerfettoNilAndEmptyTracer(t *testing.T) {
	for _, tr := range []*Tracer{nil, NewTracer(TracerOptions{Cap: 4})} {
		blob, err := PerfettoJSON(tr)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(blob, &doc); err != nil {
			t.Fatalf("empty export invalid: %v", err)
		}
		if _, ok := doc["traceEvents"]; !ok {
			t.Fatal("empty export missing traceEvents")
		}
	}
}

func TestWritePerfettoAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	if err := WritePerfetto(exportFixture(), path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := PerfettoJSON(exportFixture())
	if !bytes.Equal(blob, want) {
		t.Fatal("written file differs from in-memory export")
	}
	// Overwrite must succeed and leave no temp litter.
	if err := WritePerfetto(exportFixture(), path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
	var buf bytes.Buffer
	if err := WritePerfettoTo(exportFixture(), &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("WritePerfettoTo differs from PerfettoJSON")
	}
}

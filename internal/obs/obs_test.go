package obs

import (
	"sync"
	"testing"
)

func TestTracerRecordsInOrder(t *testing.T) {
	tr := NewTracer(TracerOptions{Cap: 16})
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: EvSolve, T: float64(i), Rep: -1, GPU: -1})
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.T != float64(i) {
			t.Fatalf("event %d at T=%v, want %d", i, e.T, i)
		}
	}
	if tr.Truncated() {
		t.Fatal("tracer reports truncated without wrapping")
	}
	if tr.Emitted() != 5 || tr.Dropped() != 0 || tr.Len() != 5 {
		t.Fatalf("counters: emitted=%d dropped=%d len=%d", tr.Emitted(), tr.Dropped(), tr.Len())
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(TracerOptions{Cap: 4})
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: EvSolve, T: float64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want cap 4", len(evs))
	}
	want := []float64{6, 7, 8, 9}
	for i, e := range evs {
		if e.T != want[i] {
			t.Fatalf("event %d at T=%v, want %v", i, e.T, want[i])
		}
	}
	if !tr.Truncated() {
		t.Fatal("wrapped ring not reported truncated")
	}
}

func TestTracerExactlyFullNoWrap(t *testing.T) {
	tr := NewTracer(TracerOptions{Cap: 4})
	for i := 0; i < 4; i++ {
		tr.Emit(Event{Kind: EvSolve, T: float64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.T != float64(i) {
			t.Fatalf("event %d at T=%v, want %d", i, e.T, i)
		}
	}
	if tr.Truncated() {
		t.Fatal("exactly-full ring should not report truncated")
	}
}

func TestTracerSamplingThinsHighVolumeOnly(t *testing.T) {
	tr := NewTracer(TracerOptions{Cap: 1024, Sample: 4})
	for i := 0; i < 16; i++ {
		tr.Emit(Event{Kind: EvFetch, T: float64(i)}) // high-volume: thinned
		tr.Emit(Event{Kind: EvSolve, T: float64(i)}) // control-plane: kept
	}
	var fetches, solves int
	for _, e := range tr.Events() {
		switch e.Kind {
		case EvFetch:
			fetches++
		case EvSolve:
			solves++
		}
	}
	if fetches != 4 {
		t.Fatalf("got %d fetches after 1-in-4 sampling of 16, want 4", fetches)
	}
	if solves != 16 {
		t.Fatalf("got %d solves, want all 16 (control-plane never sampled)", solves)
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped=%d, want 12", tr.Dropped())
	}
	// Deterministic thinning: every kept fetch is a multiple-of-4 index.
	for _, e := range tr.Events() {
		if e.Kind == EvFetch && int(e.T)%4 != 0 {
			t.Fatalf("kept fetch at T=%v, want multiples of 4", e.T)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: EvFetch})
	if tr.Enabled() || tr.Len() != 0 || tr.Emitted() != 0 || tr.Dropped() != 0 || tr.Truncated() {
		t.Fatal("nil tracer not inert")
	}
	if tr.Events() != nil {
		t.Fatal("nil tracer Events() should be nil")
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(TracerOptions{Cap: 1 << 12})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Event{Kind: EvSolve, Rep: int32(g), T: float64(i)})
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("got %d events, want 800", tr.Len())
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventKind(0); int(k) < numEventKinds; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind should stringify as unknown")
	}
}

// TestNilFastPathAllocs pins the acceptance criterion: with observability
// off (nil handles), instrumented hot paths allocate nothing.
func TestNilFastPathAllocs(t *testing.T) {
	var tr *Tracer
	var c *Counter
	var g *Gauge
	var h *Histogram
	var dl *DecisionLog
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: EvFetch, Rep: 1, GPU: 2, Layer: 3, Expert: 4, T: 1, Dur: 2})
		c.Add(1)
		c.Inc()
		g.Set(3)
		h.Observe(0.5)
		// No varargs here: interface boxing of arguments happens at the call
		// site before the nil check can run, so hot paths either pass none or
		// guard with dl.Enabled(). The decision log is control-plane-rate, so
		// the non-nil cost is irrelevant; only the nil path is pinned.
		dl.Logf(1, "skip")
	})
	if allocs != 0 {
		t.Fatalf("nil fast path allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkNilTracerEmit(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: EvFetch, Rep: 1, GPU: 2, Layer: 3, Expert: 4, T: float64(i)})
	}
}

func BenchmarkEnabledTracerEmit(b *testing.B) {
	tr := NewTracer(TracerOptions{Cap: 1 << 12})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: EvFetch, Rep: 1, GPU: 2, Layer: 3, Expert: 4, T: float64(i)})
	}
}

package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Add(2)
	c.Inc()
	if got := c.Value(); got != 3 {
		t.Fatalf("counter=%v, want 3", got)
	}
	if r.Counter("reqs_total") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("drift")
	if g.Value() != 0 {
		t.Fatal("unset gauge should read 0")
	}
	g.Set(0.25)
	g.Set(0.5)
	if g.Value() != 0.5 {
		t.Fatalf("gauge=%v, want last write 0.5", g.Value())
	}

	h := r.Histogram("lat", []float64{0.1, 1, 10})
	wantSum := 0.0
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
		wantSum += v
	}
	if h.Count() != 5 {
		t.Fatalf("count=%d, want 5", h.Count())
	}
	if h.Sum() != wantSum {
		t.Fatalf("sum=%v, want %v", h.Sum(), wantSum)
	}
	if h.Mean() != wantSum/5 {
		t.Fatalf("mean=%v", h.Mean())
	}
	// Bucket semantics: upper bounds are inclusive, last slot is overflow.
	snap := r.Snapshot().Histograms["lat"]
	wantCounts := []uint64{2, 1, 1, 1}
	for i, w := range wantCounts {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Mean() != h.Mean() {
		t.Fatal("snapshot mean disagrees with live mean")
	}
	if (HistSnapshot{}).Mean() != 0 {
		t.Fatal("empty snapshot mean should be 0")
	}
	if r.Histogram("lat", nil) != h {
		t.Fatal("second histogram lookup returned a different handle")
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry should hand out nil handles")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	if r.Now() != 0 {
		t.Fatal("nil registry Now should be 0")
	}
	r.SetNow(func() float64 { return 1 })

	var c *Counter
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter not inert")
	}
	var g *Gauge
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge not inert")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram not inert")
	}
}

func TestRegistryNowHook(t *testing.T) {
	r := NewRegistry()
	real1 := r.Now()
	if real1 <= 0 {
		t.Fatalf("real Now()=%v, want positive epoch seconds", real1)
	}
	fake := 0.0
	r.SetNow(func() float64 { fake += 0.5; return fake })
	if a, b := r.Now(), r.Now(); a != 0.5 || b != 1.0 {
		t.Fatalf("fake clock gave %v, %v", a, b)
	}
	r.SetNow(nil)
	if r.Now() < real1 {
		t.Fatal("restoring real clock went backwards")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("x").Add(-1)
}

func TestHistogramBadBucketsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets did not panic")
		}
	}()
	NewRegistry().Histogram("x", []float64{1, 1})
}

func TestSnapshotIsFrozenAndDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	r.Gauge("b").Set(2)
	r.Histogram("c", []float64{1}).Observe(0.5)
	s1 := r.Snapshot()
	r.Counter("a").Add(10) // must not affect the frozen snapshot
	if s1.Counters["a"] != 1 {
		t.Fatalf("snapshot mutated: a=%v", s1.Counters["a"])
	}
	blob1, err := s1.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := s1.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob1, blob2) {
		t.Fatal("snapshot JSON not deterministic across marshals")
	}
	if blob1[len(blob1)-1] != '\n' {
		t.Fatal("snapshot JSON missing trailing newline")
	}
}

// TestRegistryConcurrentUpdates exercises the shared-handle paths the solver
// portfolio workers hit; run under -race this is the registry's race pin.
func TestRegistryConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			h := r.Histogram("shared_seconds", SecondsBuckets())
			g := r.Gauge("shared_gauge")
			for i := 0; i < 500; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-4)
				g.Set(float64(i))
				if i%100 == 0 {
					_ = r.Snapshot() // snapshot mid-run while writers are live
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 4000 {
		t.Fatalf("counter=%v, want 4000", got)
	}
	if got := r.Histogram("shared_seconds", nil).Count(); got != 4000 {
		t.Fatalf("histogram count=%v, want 4000", got)
	}
}

func TestSecondsBucketsAscending(t *testing.T) {
	b := SecondsBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bucket %d (%v) not above %v", i, b[i], b[i-1])
		}
	}
}

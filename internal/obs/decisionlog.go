package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// DecisionLog is a bounded, human-readable record of controller decisions:
// every observe/skip/solve/discard/reject/install with the inputs that drove
// it (drift score, MinGain arithmetic, staleness check). Lines are stamped
// with the simulated clock. All methods are no-ops on a nil receiver.
type DecisionLog struct {
	mu      sync.Mutex
	lines   []string
	next    int
	wrapped bool
	total   uint64
}

// DefaultDecisionLogCap bounds the log when NewDecisionLog is given a
// non-positive capacity. Controller decisions are control-plane-rate (a few
// per drift check), so 4096 lines covers any realistic run.
const DefaultDecisionLogCap = 4096

// NewDecisionLog builds a log keeping the most recent capacity lines.
func NewDecisionLog(capacity int) *DecisionLog {
	if capacity <= 0 {
		capacity = DefaultDecisionLogCap
	}
	return &DecisionLog{lines: make([]string, 0, capacity)}
}

// Logf appends one decision line stamped t (simulated seconds). The format
// string follows fmt rules; callers put the decision verb first so the log
// greps cleanly (e.g. "solve-launch drift=0.31 ...").
func (l *DecisionLog) Logf(t float64, format string, args ...any) {
	if l == nil {
		return
	}
	line := fmt.Sprintf("[t=%.6fs] ", t) + fmt.Sprintf(format, args...)
	l.mu.Lock()
	l.total++
	if len(l.lines) < cap(l.lines) {
		l.lines = append(l.lines, line)
	} else {
		l.lines[l.next] = line
		l.wrapped = true
	}
	l.next++
	if l.next == cap(l.lines) {
		l.next = 0
	}
	l.mu.Unlock()
}

// Enabled reports whether lines are being recorded, mirroring the nil check.
func (l *DecisionLog) Enabled() bool { return l != nil }

// Len returns the number of lines currently held.
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines)
}

// Lines returns the held lines oldest-first. The slice is a copy.
func (l *DecisionLog) Lines() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.lines))
	if l.wrapped {
		out = append(out, l.lines[l.next:]...)
		out = append(out, l.lines[:l.next]...)
		return out
	}
	if l.next == 0 && len(l.lines) == cap(l.lines) && len(l.lines) > 0 {
		return append(out, l.lines...)
	}
	return append(out, l.lines[:l.next]...)
}

// String renders the log as newline-joined text, with a truncation header
// when old lines have been overwritten.
func (l *DecisionLog) String() string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	total := l.total
	wrapped := l.wrapped
	l.mu.Unlock()
	var b strings.Builder
	if wrapped {
		fmt.Fprintf(&b, "# decision log truncated: showing most recent %d of %d lines\n", l.Len(), total)
	}
	for _, line := range l.Lines() {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteTo writes the rendered log to w.
func (l *DecisionLog) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, l.String())
	return int64(n), err
}

// WriteFile writes the rendered log to path atomically.
func (l *DecisionLog) WriteFile(path string) error {
	return WriteFileAtomic(path, []byte(l.String()))
}

package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Registry is the metrics registry: named counters, gauges, and fixed-bucket
// histograms, snapshotable mid-run. Metric handles are cheap pointers meant
// to be resolved once at setup and cached by the instrumented component;
// every handle method is safe on a nil receiver (the observability-off fast
// path) and safe for concurrent use (solver portfolio workers update shared
// counters).
type Registry struct {
	mu    sync.Mutex
	c     map[string]*Counter
	g     map[string]*Gauge
	h     map[string]*Histogram
	nowFn func() float64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		c: map[string]*Counter{},
		g: map[string]*Gauge{},
		h: map[string]*Histogram{},
	}
}

// Now returns host wall-clock seconds — the one non-simulated time source in
// the package, used to measure placement-solver wall time. Tests inject a
// deterministic source with SetNow so exports stay byte-identical.
func (r *Registry) Now() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	fn := r.nowFn
	r.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return float64(time.Now().UnixNano()) / 1e9
}

// SetNow overrides the host clock (nil restores the real one). The function
// must be safe for concurrent use; solver goroutines call Now.
func (r *Registry) SetNow(fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.nowFn = fn
	r.mu.Unlock()
}

// Counter returns the named monotone counter, creating it on first use.
// A nil registry returns a nil handle, whose methods are all no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.c[name]
	if c == nil {
		c = &Counter{}
		r.c[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.g[name]
	if g == nil {
		g = &Gauge{}
		r.g[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it with the
// given bucket upper bounds (ascending; an implicit +Inf bucket is added) on
// first use. Later calls ignore buckets and return the existing histogram.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.h[name]
	if h == nil {
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
			}
		}
		h = &Histogram{
			bounds: append([]float64(nil), buckets...),
			counts: make([]uint64, len(buckets)+1),
		}
		r.h[name] = h
	}
	return h
}

// Counter is a monotone float total (integer-valued for pure counts,
// seconds for accumulated durations).
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increments the counter; negative deltas panic (use a Gauge).
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	if v < 0 {
		panic("obs: negative counter increment")
	}
	c.mu.Lock()
	c.v += v
	c.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a last-write-wins scalar.
type Gauge struct {
	mu  sync.Mutex
	v   float64
	set bool
}

// Set records the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v, g.set = v, true
	g.mu.Unlock()
}

// Value returns the last value set (zero if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a fixed-bucket histogram: counts per upper bound plus an
// implicit overflow bucket, with sum and count for mean queries.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count and Sum return the totals; Mean is Sum/Count (0 when empty).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observed sample, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// HistSnapshot is one histogram's frozen state. Bounds carries the
// configured upper bounds; Counts has one extra entry for the overflow
// bucket.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the snapshot's mean sample, 0 when empty.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a frozen, self-contained view of a registry, safe to retain
// and marshal after the run continues. encoding/json sorts map keys, so the
// serialized form is deterministic given deterministic metric values.
type Snapshot struct {
	Counters   map[string]float64      `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state. Nil registries return nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	cs := make(map[string]*Counter, len(r.c))
	gs := make(map[string]*Gauge, len(r.g))
	hs := make(map[string]*Histogram, len(r.h))
	for n, c := range r.c {
		cs[n] = c
	}
	for n, g := range r.g {
		gs[n] = g
	}
	for n, h := range r.h {
		hs[n] = h
	}
	r.mu.Unlock()

	s := &Snapshot{
		Counters:   make(map[string]float64, len(cs)),
		Gauges:     make(map[string]float64, len(gs)),
		Histograms: make(map[string]HistSnapshot, len(hs)),
	}
	for n, c := range cs {
		s.Counters[n] = c.Value()
	}
	for n, g := range gs {
		s.Gauges[n] = g.Value()
	}
	for n, h := range hs {
		h.mu.Lock()
		s.Histograms[n] = HistSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
		}
		h.mu.Unlock()
	}
	return s
}

// MarshalIndentJSON renders the snapshot as stable, human-diffable JSON
// (keys sorted, trailing newline).
func (s *Snapshot) MarshalIndentJSON() ([]byte, error) {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// SecondsBuckets is the standard latency-style bucket ladder used by the
// stack's duration histograms (fetches, stage times, solver wall): 1 µs to
// ~100 s in roughly 3x steps.
func SecondsBuckets() []float64 {
	return []float64{
		1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
		1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
		1, 3, 10, 30, 100,
	}
}

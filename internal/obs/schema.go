package obs

import (
	"encoding/json"
	"fmt"
	"math"
)

// Minimal JSON-Schema-subset validator — just enough to gate the exported
// trace and metrics artifacts in CI without pulling in a dependency. The
// supported keywords are: "type" (string or list), "properties", "required",
// "items", "enum" (scalars), "additionalProperties" (schema form only; the
// boolean false form is unsupported), and "minItems". Unknown keywords are
// ignored, matching JSON Schema's open-world stance.

// ValidateJSONSchema checks doc against schema (both raw JSON). It returns
// nil when the document conforms and a path-annotated error on the first
// violation.
func ValidateJSONSchema(schema, doc []byte) error {
	var s, d any
	if err := json.Unmarshal(schema, &s); err != nil {
		return fmt.Errorf("schema parse: %w", err)
	}
	if err := json.Unmarshal(doc, &d); err != nil {
		return fmt.Errorf("document parse: %w", err)
	}
	return validate(s, d, "$")
}

func validate(schema, doc any, path string) error {
	sm, ok := schema.(map[string]any)
	if !ok {
		return fmt.Errorf("%s: schema node is not an object", path)
	}

	if tv, ok := sm["type"]; ok {
		if err := checkType(tv, doc, path); err != nil {
			return err
		}
	}

	if ev, ok := sm["enum"]; ok {
		if err := checkEnum(ev, doc, path); err != nil {
			return err
		}
	}

	if obj, ok := doc.(map[string]any); ok {
		if rv, ok := sm["required"].([]any); ok {
			for _, r := range rv {
				name, _ := r.(string)
				if _, present := obj[name]; !present {
					return fmt.Errorf("%s: missing required property %q", path, name)
				}
			}
		}
		props, _ := sm["properties"].(map[string]any)
		for name, sub := range props {
			if v, present := obj[name]; present {
				if err := validate(sub, v, path+"."+name); err != nil {
					return err
				}
			}
		}
		if ap, ok := sm["additionalProperties"].(map[string]any); ok {
			for name, v := range obj {
				if _, declared := props[name]; declared {
					continue
				}
				if err := validate(ap, v, path+"."+name); err != nil {
					return err
				}
			}
		}
	}

	if arr, ok := doc.([]any); ok {
		if mi, ok := sm["minItems"].(float64); ok && float64(len(arr)) < mi {
			return fmt.Errorf("%s: %d items, need at least %g", path, len(arr), mi)
		}
		if items, ok := sm["items"]; ok {
			for i, v := range arr {
				if err := validate(items, v, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	}

	return nil
}

func checkType(tv, doc any, path string) error {
	switch t := tv.(type) {
	case string:
		if !typeMatches(t, doc) {
			return fmt.Errorf("%s: want type %s, got %s", path, t, jsonTypeOf(doc))
		}
	case []any:
		for _, one := range t {
			if s, ok := one.(string); ok && typeMatches(s, doc) {
				return nil
			}
		}
		return fmt.Errorf("%s: type %s matches none of %v", path, jsonTypeOf(doc), t)
	}
	return nil
}

func typeMatches(t string, doc any) bool {
	switch t {
	case "object":
		_, ok := doc.(map[string]any)
		return ok
	case "array":
		_, ok := doc.([]any)
		return ok
	case "string":
		_, ok := doc.(string)
		return ok
	case "number":
		_, ok := doc.(float64)
		return ok
	case "integer":
		f, ok := doc.(float64)
		return ok && f == math.Trunc(f)
	case "boolean":
		_, ok := doc.(bool)
		return ok
	case "null":
		return doc == nil
	}
	return false
}

func jsonTypeOf(doc any) string {
	switch doc.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "boolean"
	case nil:
		return "null"
	}
	return "unknown"
}

func checkEnum(ev, doc any, path string) error {
	vals, ok := ev.([]any)
	if !ok {
		return nil
	}
	for _, v := range vals {
		if v == doc {
			return nil
		}
	}
	return fmt.Errorf("%s: value %v not in enum %v", path, doc, vals)
}

// Package obs is the zero-dependency observability layer for the simulated
// serving stack: a span/event recorder (Tracer) and a metrics registry
// (Registry), both keyed to the *simulated* clock, plus exporters — a
// Chrome/Perfetto trace_event JSON writer (perfetto.go) and a human-readable
// controller decision log (decisionlog.go).
//
// Everything in the package honors a nil fast path: a nil *Tracer, *Counter,
// *Gauge, *Histogram or *DecisionLog accepts every call as a no-op without
// allocating, so instrumented hot paths cost nothing measurable when
// observability is off (pinned by TestNilFastPathAllocs and
// BenchmarkNilTracerEmit). Instrumentation therefore threads optional
// pointers, never interface values — interface boxing would allocate on the
// disabled path.
//
// Timestamps are simulated seconds throughout. The only host-wall-clock
// surface is Registry.Now, used to time placement solves
// (solver_wall_seconds); tests pin it with Registry.SetNow so exports stay
// byte-deterministic.
package obs

import "sync"

// EventKind is the typed event taxonomy. Kinds marked high-volume below are
// subject to TracerOptions.Sample.
type EventKind uint8

const (
	// EvAdmit / EvFinish bracket one request's life: admitted to a replica's
	// queue, final token decoded. Aux is the request index.
	EvAdmit EventKind = iota
	EvFinish
	// EvIteration is one decode iteration on a replica (engine: on a rank):
	// a span of Dur seconds. Aux is the batch size (engine: iteration index).
	EvIteration
	// EvExpertStall is one GPU's demand expert-miss stall inside one layer of
	// a bulk-synchronous iteration: a span of Dur seconds on the GPU's track.
	EvExpertStall
	// EvFetch is a demand expert-weight fetch (a miss): a span covering the
	// host-link transfer. EvEvict marks a residency eviction.
	EvFetch
	EvEvict
	// EvPrefetchIssue / EvPrefetchHit / EvPrefetchDrop are the speculative
	// path: a speculative fetch issued, a prefetched expert serving a later
	// demand access, and a hint dropped (link busy, already present, or no
	// evictable slot).
	EvPrefetchIssue
	EvPrefetchHit
	EvPrefetchDrop
	// EvSolveStart / EvSolve / EvSolveDiscard / EvSolveReject are the
	// controller's background re-solve: launch instant, the full overlap
	// window as a span, and the two no-migration outcomes (stale result
	// discarded; gain below MinGain). Value on EvSolveStart is the drift
	// score that fired.
	EvSolveStart
	EvSolve
	EvSolveDiscard
	EvSolveReject
	// EvInstall is one replica adopting a migrated placement (instant);
	// EvPause is that replica's parameter-copy pause as a span.
	EvInstall
	EvPause
	// EvDrift is a drift-detector observation; Value is the score. Rendered
	// as a Perfetto counter track.
	EvDrift
	// EvQueueDepth samples the fleet-wide queued+active request count
	// (Value). Rendered as a Perfetto counter track.
	EvQueueDepth
	// EvScaleUp / EvScaleDown are autoscaler actions: a replica beginning its
	// warm-up (EvScaleUp spans the parameter-copy + cache-fill time) and a
	// replica drained out of the serving set. Aux is the replica id.
	EvScaleUp
	EvScaleDown
	// EvShed / EvDefer are admission-control outcomes for one arriving
	// request: dropped, or re-offered after a short wait. Aux is the request
	// index.
	EvShed
	EvDefer
	// EvFleetSize samples the committed (live + warming) replica count
	// (Value). Rendered as a Perfetto counter track.
	EvFleetSize
	// EvCrash / EvRecover are injected replica faults (internal/chaos): the
	// crash instant (Aux is the replica id, Value the requests re-dispatched)
	// and the replica serving again (Value is the downtime in seconds).
	EvCrash
	EvRecover
	// EvLinkDegrade is one scheduled degraded-host-link window as a span
	// (Value is the bandwidth slowdown factor).
	EvLinkDegrade
	// EvFetchRetry is one fetch attempt abandoned at the stall timeout and
	// re-issued after backoff (Aux is the attempt number); EvPreempt is a
	// speculative transfer cancelled by a demand fetch under preemptible DMA.
	EvFetchRetry
	EvPreempt

	numEventKinds = int(EvPreempt) + 1
)

// String names the kind as it appears in exported traces.
func (k EventKind) String() string {
	switch k {
	case EvAdmit:
		return "admit"
	case EvFinish:
		return "finish"
	case EvIteration:
		return "iteration"
	case EvExpertStall:
		return "expert-stall"
	case EvFetch:
		return "fetch"
	case EvEvict:
		return "evict"
	case EvPrefetchIssue:
		return "prefetch"
	case EvPrefetchHit:
		return "prefetch-hit"
	case EvPrefetchDrop:
		return "prefetch-drop"
	case EvSolveStart:
		return "solve-start"
	case EvSolve:
		return "solve"
	case EvSolveDiscard:
		return "solve-discard"
	case EvSolveReject:
		return "solve-reject"
	case EvInstall:
		return "install"
	case EvPause:
		return "migration-pause"
	case EvDrift:
		return "drift-score"
	case EvQueueDepth:
		return "queue-depth"
	case EvScaleUp:
		return "scale-up"
	case EvScaleDown:
		return "scale-down"
	case EvShed:
		return "shed"
	case EvDefer:
		return "defer"
	case EvFleetSize:
		return "fleet-size"
	case EvCrash:
		return "crash"
	case EvRecover:
		return "recover"
	case EvLinkDegrade:
		return "link-degrade"
	case EvFetchRetry:
		return "fetch-retry"
	case EvPreempt:
		return "preempt"
	default:
		return "unknown"
	}
}

// highVolume marks the kinds that scale with tokens x layers x GPUs rather
// than with control-plane activity; only these are thinned by
// TracerOptions.Sample. Control-plane events (solves, migrations, drift
// scores) are never sampled away — they are exactly what a trace is opened
// to see.
var highVolume = [numEventKinds]bool{
	EvAdmit:         true,
	EvFinish:        true,
	EvExpertStall:   true,
	EvFetch:         true,
	EvEvict:         true,
	EvPrefetchIssue: true,
	EvPrefetchHit:   true,
	EvPrefetchDrop:  true,
	EvShed:          true,
	EvDefer:         true,
	// Fetch retries and preemptions ride the per-fetch path and scale with
	// traffic; crash/recover/degrade events are control-plane and never
	// thinned.
	EvFetchRetry: true,
	EvPreempt:    true,
}

// Event is one recorded occurrence on the simulated clock. It is a flat
// value type (no pointers, no interfaces) so emitting one allocates nothing.
type Event struct {
	Kind EventKind
	// Rep is the replica (serve) or 0 (engine); -1 marks fleet-level events
	// (the controller's track). GPU is the device within the replica, -1 for
	// replica- or fleet-level events. Layer/Expert are -1 when not
	// applicable.
	Rep, GPU, Layer, Expert int32
	// T is the event time in simulated seconds; Dur > 0 makes the event a
	// span ending at T+Dur.
	T, Dur float64
	// Value is the kind-specific scalar (drift score, queue depth, stall
	// seconds); Aux the kind-specific integer (batch size, move count,
	// request index).
	Value float64
	Aux   int64
}

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Cap bounds the ring storage in events; once full, the oldest events
	// are overwritten (the tail of a long run is what a trace viewer is
	// opened on). Zero means DefaultTracerCap.
	Cap int
	// Sample keeps one in Sample events of each high-volume kind (admits,
	// finishes, expert stalls, fetches, prefetch traffic), counted per kind
	// so thinning is deterministic. Zero or one keeps everything.
	// Control-plane events are always kept.
	Sample int
}

// DefaultTracerCap bounds the ring when TracerOptions.Cap is zero: 1<<18
// events (~16 MiB) comfortably holds a full bench-scale serving run.
const DefaultTracerCap = 1 << 18

// Tracer records typed events into a bounded ring. All methods are safe for
// concurrent use (the engine emits from one goroutine per rank) and safe on
// a nil receiver, where they cost two instructions and zero allocations.
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	next    int    // write cursor
	wrapped bool   // ring has overwritten at least one event
	emitted uint64 // events stored (post-sampling)
	dropped uint64 // events thinned by sampling
	sample  int
	seen    [numEventKinds]uint64 // per-kind emit attempts (sampling basis)
}

// NewTracer builds a tracer.
func NewTracer(opts TracerOptions) *Tracer {
	c := opts.Cap
	if c <= 0 {
		c = DefaultTracerCap
	}
	s := opts.Sample
	if s < 1 {
		s = 1
	}
	return &Tracer{ring: make([]Event, 0, c), sample: s}
}

// Emit records one event. Nil tracers drop it for free; high-volume kinds
// are thinned to one in Sample occurrences.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.sample > 1 && highVolume[e.Kind] {
		n := t.seen[e.Kind]
		t.seen[e.Kind] = n + 1
		if n%uint64(t.sample) != 0 {
			t.dropped++
			t.mu.Unlock()
			return
		}
	}
	t.emitted++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
		t.wrapped = true
	}
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	t.mu.Unlock()
}

// Enabled reports whether events are being recorded — for callers that want
// to skip building expensive event payloads, mirroring the nil check.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of events currently held (bounded by Cap).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Emitted and Dropped report the stored-event and sampling-drop totals, so a
// truncated or thinned trace is detectable rather than silently partial.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Dropped returns the count of events thinned away by sampling.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Truncated reports whether the ring has overwritten old events.
func (t *Tracer) Truncated() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wrapped
}

// Events returns the recorded events oldest-first. The slice is a copy.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if t.wrapped {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	if !t.wrapped && t.next == 0 {
		// Ring filled exactly to capacity without wrapping leaves next at 0
		// with every element valid and already appended above via t.ring[:0];
		// fix up by appending the whole ring.
		out = append(out, t.ring...)
	}
	return out
}

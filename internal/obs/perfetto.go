package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Perfetto/Chrome trace_event export. The produced JSON loads directly in
// ui.perfetto.dev (or chrome://tracing): one process per replica plus one
// for the controller, one thread per GPU plus a replica-level thread, spans
// ("X") for durations (iterations, stalls, fetches, solves, pauses),
// instants ("i") for point events, and counter tracks ("C") for drift score
// and queue depth.
//
// trace_event timestamps are microseconds; simulated seconds are scaled by
// 1e6. Serialization is deterministic: metadata rows come first in sorted
// track order, events keep ring (emission) order, and encoding/json sorts
// arg map keys.

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

// perfettoTrack maps an event to its (pid, tid). Replica r is process r; the
// controller (Rep == -1) is one process past the highest replica. Within a
// replica process, thread 0 is the replica-level track and GPU g is thread
// g+1.
func perfettoTrack(e Event, controllerPID int) (pid, tid int) {
	if e.Rep < 0 {
		return controllerPID, 0
	}
	pid = int(e.Rep)
	if e.GPU < 0 {
		return pid, 0
	}
	return pid, int(e.GPU) + 1
}

// eventArgs builds the args payload shown in the viewer's detail pane. Only
// meaningful fields are included so instants stay compact.
func eventArgs(e Event) map[string]any {
	args := map[string]any{}
	if e.Layer >= 0 {
		args["layer"] = int(e.Layer)
	}
	if e.Expert >= 0 {
		args["expert"] = int(e.Expert)
	}
	if e.Value != 0 {
		args["value"] = e.Value
	}
	if e.Aux != 0 {
		args["aux"] = e.Aux
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// PerfettoJSON renders the tracer's events as Chrome trace_event JSON. A nil
// or empty tracer yields a valid trace with no events.
func PerfettoJSON(t *Tracer) ([]byte, error) {
	events := t.Events()

	maxRep := -1
	for _, e := range events {
		if int(e.Rep) > maxRep {
			maxRep = int(e.Rep)
		}
	}
	controllerPID := maxRep + 1

	// Track discovery: name every (pid, tid) pair that carries events so the
	// viewer shows stable labels instead of bare numbers.
	type track struct{ pid, tid int }
	seen := map[track]bool{}
	for _, e := range events {
		pid, tid := perfettoTrack(e, controllerPID)
		seen[track{pid, tid}] = true
	}
	tracks := make([]track, 0, len(seen))
	for tr := range seen {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})

	out := traceFile{
		TraceEvents:     make([]traceEvent, 0, len(tracks)*2+len(events)),
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"clock":     "simulated",
			"emitted":   t.Emitted(),
			"sampled":   t.Dropped(),
			"truncated": t.Truncated(),
		},
	}

	namedPID := map[int]bool{}
	for _, tr := range tracks {
		if !namedPID[tr.pid] {
			namedPID[tr.pid] = true
			pname := "replica " + strconv.Itoa(tr.pid)
			if tr.pid == controllerPID {
				pname = "controller"
			}
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "process_name", Ph: "M", Pid: tr.pid, Tid: tr.tid,
				Args: map[string]any{"name": pname},
			})
		}
		tname := "replica"
		switch {
		case tr.pid == controllerPID:
			tname = "controller"
		case tr.tid > 0:
			tname = "gpu " + strconv.Itoa(tr.tid-1)
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: tr.pid, Tid: tr.tid,
			Args: map[string]any{"name": tname},
		})
	}

	for _, e := range events {
		pid, tid := perfettoTrack(e, controllerPID)
		te := traceEvent{
			Name: e.Kind.String(),
			Ts:   e.T * 1e6,
			Pid:  pid,
			Tid:  tid,
			Args: eventArgs(e),
		}
		switch {
		case e.Kind == EvDrift || e.Kind == EvQueueDepth || e.Kind == EvFleetSize:
			te.Ph = "C"
			te.Args = map[string]any{"value": e.Value}
		case e.Dur > 0:
			te.Ph = "X"
			d := e.Dur * 1e6
			te.Dur = &d
		default:
			te.Ph = "i"
			te.S = "t"
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}

	return json.Marshal(out)
}

// WritePerfettoTo streams the trace JSON to w.
func WritePerfettoTo(t *Tracer, w io.Writer) error {
	blob, err := PerfettoJSON(t)
	if err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// WritePerfetto writes the trace JSON to path atomically.
func WritePerfetto(t *Tracer, path string) error {
	blob, err := PerfettoJSON(t)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, blob)
}

package obs

import (
	"os"
	"strings"
	"testing"
)

// readRepoFile loads a file relative to this package directory (the test
// working directory), failing the test if it is missing.
func readRepoFile(t *testing.T, rel string) []byte {
	t.Helper()
	blob, err := os.ReadFile(rel)
	if err != nil {
		t.Fatalf("read %s: %v", rel, err)
	}
	return blob
}

const testSchema = `{
  "type": "object",
  "required": ["name", "items"],
  "properties": {
    "name": {"type": "string"},
    "count": {"type": "integer"},
    "ratio": {"type": ["number", "null"]},
    "kind": {"type": "string", "enum": ["a", "b"]},
    "items": {
      "type": "array",
      "minItems": 1,
      "items": {"type": "object", "required": ["id"], "properties": {"id": {"type": "integer"}}}
    }
  },
  "additionalProperties": {"type": "boolean"}
}`

func TestValidateJSONSchemaAccepts(t *testing.T) {
	doc := `{"name":"x","count":3,"ratio":null,"kind":"a","items":[{"id":1},{"id":2}],"extra":true}`
	if err := ValidateJSONSchema([]byte(testSchema), []byte(doc)); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
}

func TestValidateJSONSchemaRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"missing required", `{"name":"x"}`, "missing required"},
		{"wrong type", `{"name":5,"items":[{"id":1}]}`, "want type string"},
		{"non-integer", `{"name":"x","count":1.5,"items":[{"id":1}]}`, "want type integer"},
		{"bad union", `{"name":"x","ratio":"nope","items":[{"id":1}]}`, "matches none"},
		{"bad enum", `{"name":"x","kind":"z","items":[{"id":1}]}`, "not in enum"},
		{"empty array", `{"name":"x","items":[]}`, "need at least"},
		{"bad item", `{"name":"x","items":[{"id":"s"}]}`, "$.items[0].id"},
		{"bad extra", `{"name":"x","items":[{"id":1}],"extra":"s"}`, "want type boolean"},
		{"root type", `[1]`, "want type object"},
	}
	for _, tc := range cases {
		err := ValidateJSONSchema([]byte(testSchema), []byte(tc.doc))
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestValidateJSONSchemaParseErrors(t *testing.T) {
	if err := ValidateJSONSchema([]byte("{"), []byte("{}")); err == nil {
		t.Fatal("broken schema accepted")
	}
	if err := ValidateJSONSchema([]byte("{}"), []byte("{")); err == nil {
		t.Fatal("broken document accepted")
	}
	if err := ValidateJSONSchema([]byte(`"notobj"`), []byte(`{}`)); err == nil {
		t.Fatal("non-object schema node accepted")
	}
}

func TestValidateExportsAgainstCheckedInSchemas(t *testing.T) {
	traceSchema := readRepoFile(t, "../../schema/trace.schema.json")
	blob, err := PerfettoJSON(exportFixture())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSONSchema(traceSchema, blob); err != nil {
		t.Fatalf("trace export violates checked-in schema: %v", err)
	}

	metricsSchema := readRepoFile(t, "../../schema/metrics.schema.json")
	r := NewRegistry()
	r.Counter("mem_stall_seconds").Add(1.5)
	r.Gauge("controller_drift_score").Set(0.2)
	r.Histogram("expertmem_fetch_seconds", SecondsBuckets()).Observe(0.001)
	snap, err := r.Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSONSchema(metricsSchema, snap); err != nil {
		t.Fatalf("metrics export violates checked-in schema: %v", err)
	}
}

package expertmem

import (
	"math"
	"testing"
)

// Chaos fetch-model tests: degraded link, stall-timeout retry, preemptible
// DMA, and the charged re-warm. The hooks mirror chaos.Schedule but are
// plain closures here so the package stays self-contained.

func TestLinkScaleStretchesFetch(t *testing.T) {
	m := New(testConfig(1, LRU()))
	m.SetLinkScale(func(now float64) float64 {
		if now < 1 {
			return 3
		}
		return 1
	})
	if st := m.Access(0, 0, 0, 0); !almost(st, 3*testFetch) {
		t.Fatalf("degraded miss stall %v, want %v", st, 3*testFetch)
	}
	// Outside the window the link is back to full speed.
	if st := m.Access(0, 0, 1, 2); !almost(st, testFetch) {
		t.Fatalf("post-window miss stall %v, want %v", st, testFetch)
	}
}

func TestFetchRetrySucceedsAfterDegradeWindow(t *testing.T) {
	const (
		windowEnd = 0.006
		timeout   = 0.005
		backoff   = 0.002
	)
	m := New(testConfig(1, LRU()))
	m.SetLinkScale(func(now float64) float64 {
		if now < windowEnd {
			return 10
		}
		return 1
	})
	m.SetFetchRetry(timeout, 2, backoff)
	// At t=0 the transfer would take 10*testFetch > timeout: abandoned at the
	// timeout, retried at timeout+backoff = 0.007 — past the window, where it
	// fits under the timeout and succeeds.
	stall, ok := m.AccessChecked(0, 0, 0, 0)
	if !ok {
		t.Fatal("retry past the degrade window should succeed")
	}
	want := timeout + backoff + testFetch
	if !almost(stall, want) {
		t.Fatalf("retried stall %v, want %v", stall, want)
	}
	st := m.Stats()
	if st.FetchTimeouts != 1 || st.FetchRetries != 1 || st.FetchFailures != 0 {
		t.Fatalf("retry stats %+v", st)
	}
	// The fetched expert is installed: the next access is a hit.
	if stall := m.Access(0, 0, 0, 1); stall != 0 {
		t.Fatalf("post-retry access stalled %v", stall)
	}
}

func TestFetchRetryExhaustionFails(t *testing.T) {
	const (
		timeout = 0.005
		backoff = 0.001
	)
	m := New(testConfig(1, LRU()))
	m.SetLinkScale(func(float64) float64 { return 100 }) // never recovers
	m.SetFetchRetry(timeout, 2, backoff)
	stall, ok := m.AccessChecked(0, 0, 0, 0)
	if ok {
		t.Fatal("permanently degraded fetch should exhaust retries")
	}
	// Attempts at 0, timeout+backoff, 2*timeout+3*backoff; give-up one
	// timeout after the last.
	want := 3*timeout + 3*backoff
	if !almost(stall, want) {
		t.Fatalf("give-up stall %v, want %v", stall, want)
	}
	st := m.Stats()
	if st.FetchTimeouts != 3 || st.FetchRetries != 2 || st.FetchFailures != 1 {
		t.Fatalf("exhaustion stats %+v", st)
	}
	// Nothing was installed: the expert is not resident and no slot is held.
	if m.Resident(0, 0, 0) {
		t.Fatal("failed fetch left the expert resident")
	}
	if m.shards[0].used != 0 {
		t.Fatalf("failed fetch holds %d slots", m.shards[0].used)
	}
}

func TestPreemptibleDMAYieldsLink(t *testing.T) {
	run := func(preempt bool) (float64, Stats) {
		m := New(testConfig(2, LRU()))
		m.SetPreemptibleDMA(preempt)
		m.Prefetch(0, 0, 0, 0) // speculative transfer occupies the link
		stall := m.Access(0, 0, 1, 0)
		return stall, m.Stats()
	}
	fifo, fst := run(false)
	if !almost(fifo, 2*testFetch) {
		t.Fatalf("FIFO demand stall %v, want %v", fifo, 2*testFetch)
	}
	if fst.Preemptions != 0 {
		t.Fatalf("FIFO run preempted: %+v", fst)
	}
	pre, pst := run(true)
	if !almost(pre, testFetch) {
		t.Fatalf("preemptive demand stall %v, want %v", pre, testFetch)
	}
	if pst.Preemptions != 1 {
		t.Fatalf("preemption stats %+v", pst)
	}
	if pre >= fifo {
		t.Fatalf("preemption did not beat FIFO: %v >= %v", pre, fifo)
	}
}

func TestPreemptSkipsDemandOwnedTransfer(t *testing.T) {
	m := New(testConfig(2, LRU()))
	m.SetPreemptibleDMA(true)
	m.Prefetch(0, 0, 0, 0)
	// A demand access adopts the speculative transfer (late hit): it is now
	// demand-owned and must not be preempted by the next miss.
	if st := m.Access(0, 0, 0, 0); !almost(st, testFetch) {
		t.Fatalf("late-hit stall %v", st)
	}
	if st := m.Access(0, 0, 1, 0); !almost(st, 2*testFetch) {
		t.Fatalf("second demand stall %v, want queued %v", st, 2*testFetch)
	}
	if st := m.Stats(); st.Preemptions != 0 {
		t.Fatalf("demand-owned transfer preempted: %+v", st)
	}
}

func TestWarmChargedPaysMasterHops(t *testing.T) {
	cfg := testConfig(6, LRU())
	cfg.HostSlots = 4 // 8 of 12 master copies fall through to NVMe
	m := New(cfg)
	extra := m.WarmCharged(contiguousAssign(), 0)
	nvmeTime := cfg.NVMeLink.Time(cfg.ExpertBytes)
	if extra <= 0 {
		t.Fatal("charged re-warm with NVMe-resident masters cost nothing")
	}
	// The surcharge is a whole number of NVMe hops (the slowest GPU's).
	hops := extra / nvmeTime
	if math.Abs(hops-math.Round(hops)) > 1e-9 || hops > 6 {
		t.Fatalf("surcharge %v is not a plausible hop multiple (%v hops)", extra, hops)
	}
	// Warm state is identical to the uncharged path: everything preloaded is
	// resident on its owner.
	if !m.Resident(0, 0, 0) || !m.Resident(1, 0, 2) {
		t.Fatal("charged warm did not preload")
	}
}

// Package expertmem is the tiered expert-weight memory subsystem: it lets
// the system serve MoE checkpoints whose expert parameters exceed aggregate
// GPU HBM by paging expert weights across an HBM / host-DRAM / NVMe
// hierarchy — the same fast-memory/bulk-memory tradeoff packet-classification
// systems exploit to keep hot rules in TCAM while bulk state lives a tier
// down.
//
// Each GPU owns a bounded number of HBM expert slots (a residency table).
// Accessing a non-resident expert issues an asynchronous fetch over the
// GPU's host link; the caller is charged the simulated stall until the
// transfer completes. Fetches on one GPU serialize on its host-link channel,
// so speculative traffic genuinely contends with demand traffic. Master
// copies live in host DRAM, except that when the DRAM working set is itself
// bounded (Config.HostSlots) the coldest experts by affinity popularity fall
// through to NVMe and pay both hops.
//
// Residency is governed by a pluggable Policy: LRU, LFU, static
// pin-by-popularity, and the headline affinity policy, which reads the
// inter-layer affinity matrix — the same object the placement solver
// optimizes — as a full memory oracle. It is, by construction, a predictor
// of which experts a token will need at layer l+1 given its expert at layer
// l: eviction drops the expert with the least affinity mass (LRU is
// pathological under decode's cyclic layer scan; expected future demand is
// not), and when a token's layer-l expert is decided the manager
// speculatively fetches the top-k layer-(l+1) successors by affinity mass
// so the transfer overlaps layer-l compute.
//
// The Manager is sharded per GPU and is safe for the engine's SPMD use as
// long as every call for GPU g is made by rank g (each shard is then
// single-goroutine); the serving simulator drives all shards from its
// single-threaded event loop.
package expertmem

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/topo"
)

// Config describes one tiered expert-memory instance.
type Config struct {
	// Layers, Experts, GPUs give the expert-weight universe: Layers*Experts
	// weight tensors spread over GPUs by the placement.
	Layers, Experts, GPUs int
	// ExpertBytes is the parameter size of one expert (prices every fetch).
	ExpertBytes int
	// SlotsPerGPU is the HBM capacity budget in expert slots per GPU. Use
	// SlotsFor to derive it from an oversubscription ratio, or
	// SlotsForBytes from a byte budget.
	SlotsPerGPU int
	// HostLink is the HBM <-> host-DRAM path (see topo.Topology.HostPath).
	HostLink topo.LinkCost
	// NVMeLink is the host-DRAM <-> NVMe path, paid on top of HostLink for
	// experts whose master copy does not fit in DRAM (see HostSlots).
	NVMeLink topo.LinkCost
	// HostSlots bounds how many expert master copies fit in host DRAM
	// (fleet-wide for the replica). Zero means all of them; otherwise the
	// coldest Layers*Experts-HostSlots experts by popularity live on NVMe.
	HostSlots int
	// Policy selects the eviction policy (nil means LRU).
	Policy Policy
	// PrefetchK is how many affinity successors Successors returns per
	// routed expert; zero disables prefetching.
	PrefetchK int
	// Affinity is the inter-layer transition-count tensor
	// [layer][from][to] (layer in [0, Layers-2]) that powers both the
	// popularity ranking (warm preload, pinning, DRAM working set) and the
	// prefetch oracle. Nil degrades to index-order popularity and no
	// successor prediction.
	Affinity [][][]float64
}

// SlotsFor returns the per-GPU HBM slot budget for an oversubscription
// ratio: ratio 1 holds every expert a balanced placement assigns to the GPU,
// ratio 2 half of them, and so on.
func SlotsFor(layers, experts, gpus int, oversub float64) int {
	perGPU := layers * experts / gpus
	if oversub <= 1 {
		return perGPU
	}
	slots := int(math.Ceil(float64(perGPU) / oversub))
	if slots < 1 {
		slots = 1
	}
	return slots
}

// SlotsForBytes converts a per-GPU HBM byte budget into expert slots.
func SlotsForBytes(hbmBytes int64, expertBytes int) int {
	if expertBytes <= 0 {
		return 0
	}
	return int(hbmBytes / int64(expertBytes))
}

// ConfigFor derives the standard deployment config shared by the engine and
// serving integrations: the slot budget comes from the oversubscription
// ratio, clamped to what the topology's physical HBM can actually hold, and
// the fetch links come from the topology's memory-tier presets.
func ConfigFor(tp *topo.Topology, layers, experts, expertBytes int, oversub float64,
	pol Policy, prefetchK, hostSlots int, affinity [][][]float64) Config {
	gpus := tp.TotalGPUs()
	slots := SlotsFor(layers, experts, gpus, oversub)
	if byBytes := SlotsForBytes(tp.HBMCapacity(), expertBytes); byBytes >= 1 && byBytes < slots {
		slots = byBytes
	}
	return Config{
		Layers: layers, Experts: experts, GPUs: gpus,
		ExpertBytes: expertBytes,
		SlotsPerGPU: slots,
		HostLink:    tp.HostPath(),
		NVMeLink:    tp.NVMePath(),
		HostSlots:   hostSlots,
		Policy:      pol,
		PrefetchK:   prefetchK,
		Affinity:    affinity,
	}
}

// validate panics on impossible configuration (programmer error).
func (c *Config) validate() {
	if c.Layers <= 0 || c.Experts <= 0 || c.GPUs <= 0 {
		panic(fmt.Sprintf("expertmem: invalid shape %dx%d on %d gpus", c.Layers, c.Experts, c.GPUs))
	}
	if c.ExpertBytes <= 0 {
		panic("expertmem: ExpertBytes must be positive")
	}
	if c.SlotsPerGPU <= 0 {
		panic("expertmem: SlotsPerGPU must be positive")
	}
	if c.HostLink.Bandwidth <= 0 {
		panic("expertmem: HostLink bandwidth must be positive")
	}
	if c.HostSlots > 0 && c.NVMeLink.Bandwidth <= 0 {
		panic("expertmem: bounded HostSlots needs an NVMe link")
	}
}

// key identifies one expert weight tensor.
type key struct{ layer, expert int }

// Entry is one residency-table row: an expert weight tensor that is either
// resident in a GPU's HBM or in flight on its host link.
type Entry struct {
	Layer, Expert int
	resident      bool
	readyAt       float64 // fetch completion time while in flight
	lastUse       float64
	uses          int
	pop           float64 // affinity popularity (the affinity policy's score)
	pinned        bool
	prefetched    bool // brought in speculatively and not yet demanded
}

// shard is one GPU's residency table plus its host-link fetch channel.
type shard struct {
	gpu        int
	entries    map[key]*Entry
	used       int // entries occupying slots (resident or in flight)
	linkFreeAt float64
	stats      Stats
	// hasSpec marks that the transfer currently occupying the link (through
	// specUntil) is the speculative fetch of specKey — the one preemptible
	// DMA may cancel for a demand miss.
	hasSpec   bool
	specKey   key
	specUntil float64
}

// Stats counts one shard's (or, aggregated, one manager's) activity.
type Stats struct {
	// Accesses = Hits + LateHits + Misses.
	Accesses int
	// Hits are demand accesses served from HBM with zero stall.
	Hits int
	// LateHits are demand accesses that found their expert already in
	// flight and stalled only for the residual transfer.
	LateHits int
	// Misses are demand accesses that had to issue a full fetch.
	Misses int
	// Bypasses counts misses that could not be cached (every slot pinned or
	// in flight) and streamed through instead.
	Bypasses  int
	Evictions int
	// Prefetches / PrefetchHits / WastedPrefetches track the speculative
	// path: issued fetches, prefetched entries that served a later demand
	// access, and prefetched entries evicted untouched.
	PrefetchHits     int
	Prefetches       int
	WastedPrefetches int
	// StallSeconds is the total simulated time demand accesses waited.
	StallSeconds float64
	// BytesFetched is the total host-link traffic (demand + speculative).
	BytesFetched int64
	// NVMeFetches counts fetches whose master copy was not in host DRAM and
	// paid the NVMe hop (NVMeSeconds in total) — under the static split the
	// cold-by-popularity experts, under a shared HostTier whatever the
	// node-level cache missed.
	NVMeFetches int
	NVMeSeconds float64
	// Chaos fetch-model counters (all zero unless a chaos schedule arms the
	// fetch path): retry attempts issued after a stall timeout, attempts
	// abandoned at the timeout, demand fetches that exhausted their retries,
	// and speculative transfers cancelled by demand fetches under preemptible
	// DMA.
	FetchRetries  int
	FetchTimeouts int
	FetchFailures int
	Preemptions   int
}

// HitRate is the fraction of demand accesses served with zero stall.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// EffectiveHitRate is HitRate with the reporting convention for runs that
// recorded no accesses: the serving path skips the manager entirely when
// the budget is not binding (the 1x short-circuit), so zero accesses means
// every access was resident by construction — a 100% hit rate, not 0.
func (s Stats) EffectiveHitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return s.HitRate()
}

// Add accumulates another stats block.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.LateHits += o.LateHits
	s.Misses += o.Misses
	s.Bypasses += o.Bypasses
	s.Evictions += o.Evictions
	s.PrefetchHits += o.PrefetchHits
	s.Prefetches += o.Prefetches
	s.WastedPrefetches += o.WastedPrefetches
	s.StallSeconds += o.StallSeconds
	s.BytesFetched += o.BytesFetched
	s.NVMeFetches += o.NVMeFetches
	s.NVMeSeconds += o.NVMeSeconds
	s.FetchRetries += o.FetchRetries
	s.FetchTimeouts += o.FetchTimeouts
	s.FetchFailures += o.FetchFailures
	s.Preemptions += o.Preemptions
}

// String renders a compact summary.
func (s Stats) String() string {
	return fmt.Sprintf("expertmem: %d accesses, %.1f%% hit (%d late, %d miss), %.3fs stalled, %d prefetches (%d hits, %d wasted)",
		s.Accesses, s.HitRate()*100, s.LateHits, s.Misses, s.StallSeconds, s.Prefetches, s.PrefetchHits, s.WastedPrefetches)
}

// Manager is the tiered expert-weight memory: per-GPU residency shards, an
// async fetch model, and the affinity-derived popularity/prefetch oracles.
type Manager struct {
	cfg    Config
	policy Policy
	shards []*shard

	perGPU     int       // balanced expert instances per GPU
	hostOnNVMe []bool    // [layer*Experts+expert]: master copy on NVMe
	popularity []float64 // [layer*Experts+expert]: affinity mass
	succ       [][][]int // [layer][expert]: top-K layer+1 successors
	hostTime   float64   // HostLink.Time(ExpertBytes)
	nvmeTime   float64   // NVMeLink.Time(ExpertBytes)

	// Replica layout learned at Warm time (both nil until a replicated
	// preload): popAt concentrates each replicated expert's affinity mass on
	// its designated holder — the primary owner — so overflow copies hold no
	// steady-state claim on HBM (see popAt).
	repAssign [][]int
	repExtra  [][][]int

	// hostTier, when set, replaces the static hostOnNVMe split with a shared
	// node-level master-copy tier (see SetHostTier); tierRep is this
	// manager's replica id there.
	hostTier HostTier
	tierRep  int

	// Chaos fetch-model hooks (see SetLinkScale / SetFetchRetry /
	// SetPreemptibleDMA); the zero values leave the fetch model untouched.
	linkScale func(float64) float64
	ftTimeout float64
	ftRetries int
	ftBackoff float64
	preempt   bool

	// Observability (see Instrument); zero values are the no-op fast path.
	tr  *obs.Tracer
	rep int32
	met memMetrics
}

// New builds a manager. Call Warm before the first access to model the
// deployment-time preload of each GPU's most popular assigned experts.
func New(cfg Config) *Manager {
	cfg.validate()
	m := &Manager{
		cfg:      cfg,
		policy:   cfg.Policy,
		perGPU:   cfg.Layers * cfg.Experts / cfg.GPUs,
		hostTime: cfg.HostLink.Time(cfg.ExpertBytes),
	}
	if m.policy == nil {
		m.policy = LRU()
	}
	if cfg.NVMeLink.Bandwidth > 0 {
		m.nvmeTime = cfg.NVMeLink.Time(cfg.ExpertBytes)
	}
	m.shards = make([]*shard, cfg.GPUs)
	for g := range m.shards {
		m.shards[g] = &shard{gpu: g, entries: make(map[key]*Entry, cfg.SlotsPerGPU)}
	}
	m.buildOracles()
	return m
}

// HostTier abstracts where expert master copies live between host DRAM and
// NVMe. The manager's default is its static popularity split (hostOnNVMe);
// a shared node-level cache (internal/fleet.HostCache) implements this
// interface so co-located replicas share one DRAM working set. FetchMaster
// returns the extra seconds a fetch pays beyond the host link (zero on a
// DRAM hit); Retain/Release track which replicas hold HBM copies fetched
// through a master so the tier never evicts a master some replica's HBM
// depends on re-fetching cheaply.
type HostTier interface {
	FetchMaster(rep, layer, expert int, now float64) float64
	Retain(rep, layer, expert int)
	Release(rep, layer, expert int)
}

// SetHostTier routes this manager's master-copy lookups through a shared
// host tier as replica rep. Call before Warm so the preload registers its
// references. With a tier installed the static hostOnNVMe split no longer
// decides fetch cost (the tier does), though FetchSeconds still reports the
// static estimate for pricing.
func (m *Manager) SetHostTier(t HostTier, rep int) {
	m.hostTier = t
	m.tierRep = rep
}

// retainMaster / releaseMaster notify the shared tier (no-ops without one)
// that this replica gained or lost an HBM copy of (layer, expert).
func (m *Manager) retainMaster(layer, expert int) {
	if m.hostTier != nil {
		m.hostTier.Retain(m.tierRep, layer, expert)
	}
}

func (m *Manager) releaseMaster(layer, expert int) {
	if m.hostTier != nil {
		m.hostTier.Release(m.tierRep, layer, expert)
	}
}

// SetLinkScale installs a host/NVMe bandwidth-degradation hook: every fetch
// starting at simulated time t runs fn(t) times slower (fn returns 1 outside
// degraded windows; see chaos.Schedule.LinkFactor). Call before Instrument.
func (m *Manager) SetLinkScale(fn func(now float64) float64) { m.linkScale = fn }

// SetFetchRetry arms the demand-fetch stall-timeout model: a demand transfer
// that would run longer than timeout seconds is abandoned at the timeout and
// re-issued after backoff idle seconds (doubling per attempt), up to retries
// retries; a fetch that exhausts them fails and AccessChecked reports it.
// Retries re-resolve the master-copy tier, so a first attempt that paid the
// NVMe hop (and thereby populated host DRAM) can succeed on retry from DRAM.
// Speculative prefetches are never retried. Call before Instrument.
func (m *Manager) SetFetchRetry(timeout float64, retries int, backoff float64) {
	m.ftTimeout = timeout
	m.ftRetries = retries
	m.ftBackoff = backoff
}

// SetPreemptibleDMA lets a demand miss cancel the speculative transfer
// occupying its GPU's host link and start immediately, instead of queueing
// FIFO behind speculation. Call before Instrument.
func (m *Manager) SetPreemptibleDMA(on bool) { m.preempt = on }

// chaosArmed reports whether any chaos fetch-model hook is installed.
func (m *Manager) chaosArmed() bool {
	return m.linkScale != nil || m.ftTimeout > 0 || m.preempt
}

// Oversubscribed reports whether the HBM budget is actually binding: when
// every assigned expert fits, the manager is a no-op and callers can skip
// its bookkeeping entirely (the 1x-adds-no-overhead guarantee).
func (m *Manager) Oversubscribed() bool { return m.cfg.SlotsPerGPU < m.perGPU }

// Prefetching reports whether the affinity prefetcher is active.
func (m *Manager) Prefetching() bool {
	return m.cfg.PrefetchK > 0 && m.policy.Prefetch() && m.succ != nil
}

// PolicyName returns the active eviction policy's name.
func (m *Manager) PolicyName() string { return m.policy.Name() }

// buildOracles precomputes popularity, the DRAM/NVMe master-copy split, and
// the top-K successor lists from the affinity tensor.
func (m *Manager) buildOracles() {
	n := m.cfg.Layers * m.cfg.Experts
	m.popularity = make([]float64, n)
	aff := m.cfg.Affinity
	if aff != nil {
		// Popularity of (l, e): incoming affinity mass for l > 0, outgoing
		// row mass for layer 0 (which has no incoming transitions).
		for l := 0; l < m.cfg.Layers && l < len(aff)+1; l++ {
			for e := 0; e < m.cfg.Experts; e++ {
				mass := 0.0
				if l == 0 {
					if len(aff) > 0 {
						for _, w := range aff[0][e] {
							mass += w
						}
					}
				} else {
					for from := range aff[l-1] {
						mass += aff[l-1][from][e]
					}
				}
				m.popularity[l*m.cfg.Experts+e] = mass
			}
		}
		if k := m.cfg.PrefetchK; k > 0 {
			m.succ = make([][][]int, len(aff))
			for l := range aff {
				m.succ[l] = make([][]int, m.cfg.Experts)
				for from := 0; from < m.cfg.Experts; from++ {
					m.succ[l][from] = topKIndices(aff[l][from], k)
				}
			}
		}
	}
	if m.cfg.HostSlots > 0 && m.cfg.HostSlots < n {
		// The coldest experts' master copies fall through to NVMe.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			if m.popularity[order[a]] != m.popularity[order[b]] {
				return m.popularity[order[a]] > m.popularity[order[b]]
			}
			return order[a] < order[b]
		})
		m.hostOnNVMe = make([]bool, n)
		for _, idx := range order[m.cfg.HostSlots:] {
			m.hostOnNVMe[idx] = true
		}
	}
}

// topKIndices returns the indices of the k largest row entries with positive
// mass, in decreasing order (ties broken by index).
func topKIndices(row []float64, k int) []int {
	idx := make([]int, 0, len(row))
	for i, w := range row {
		if w > 0 {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if row[idx[a]] != row[idx[b]] {
			return row[idx[a]] > row[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	return append([]int(nil), idx...)
}

// popOf returns the affinity popularity of (layer, expert).
func (m *Manager) popOf(layer, expert int) float64 {
	return m.popularity[layer*m.cfg.Experts+expert]
}

// popAt is popOf concentrated on a replica set's designated holder: for an
// expert with extra copies (per the layout Warm recorded) the full affinity
// mass scores only on the primary owner's GPU; on any other holder the copy
// scores zero — it competes as scratch, is the first victim the policy
// reclaims, and never earns a steady-state slot. That mirrors the stall
// walk's warm-first routing, which sends the set's demand to one stable
// holder and touches the others only while it is cold. Single-copy experts
// (and managers never handed a replicated layout) score full mass on every
// GPU, so the degree-1 path is bit-identical to popOf.
func (m *Manager) popAt(gpu, layer, expert int) float64 {
	if m.repExtra == nil || layer >= len(m.repExtra) || len(m.repExtra[layer][expert]) == 0 {
		return m.popOf(layer, expert)
	}
	if layer < len(m.repAssign) && m.repAssign[layer][expert] == gpu {
		return m.popOf(layer, expert)
	}
	return 0
}

// Popularity returns the affinity-derived demand mass of (layer, expert) —
// the score Warm preloads by and the pin/affinity policies rank by. The
// memory-aware placement objective reads it so the solver and the runtime
// policy agree on what "hot" means.
func (m *Manager) Popularity(layer, expert int) float64 { return m.popOf(layer, expert) }

// Successors returns the top-K experts most likely at layer+1 given the
// routed expert at layer — the affinity matrix read as a prefetch oracle.
// Empty at the last layer or when prefetching is off.
func (m *Manager) Successors(layer, expert int) []int {
	if m.succ == nil || layer < 0 || layer >= len(m.succ) {
		return nil
	}
	return m.succ[layer][expert]
}

// FetchSeconds is the modeled time to bring one expert into HBM from its
// master copy tier (host DRAM, or NVMe then DRAM for cold experts).
func (m *Manager) FetchSeconds(layer, expert int) float64 {
	t := m.hostTime
	if m.hostOnNVMe != nil && m.hostOnNVMe[layer*m.cfg.Experts+expert] {
		t += m.nvmeTime
	}
	return t
}

// Warm preloads each GPU's most popular assigned experts up to the slot
// budget, modeling the deployment-time weight load. assign[layer][expert]
// is the owning GPU (a placement's Assign tensor). Under a pinning policy
// the preloaded set is immovable.
func (m *Manager) Warm(assign [][]int) { m.warm(assign, nil, false, 0) }

// WarmReplicated is Warm for replicated placements: extra[layer][expert]
// (a placement's Extra tensor; nil for single-copy) lists additional GPUs
// holding copies of the expert. Deployment ships exactly ONE warm copy per
// expert — the primary's, at full popularity, just as Warm would — and the
// layout is remembered so runtime fetches onto overflow holders carry zero
// residency priority (popAt): the stall walk's warm-first router concentrates
// a replica set's steady-state demand on one holder, so a copy elsewhere sees
// demand only while that holder's weights are in flight. Preloading or
// score-protecting such copies was tried and pins duplicates of the hottest
// weights in HBM, displacing the tail on every holder — the dominant
// replication loss channel before this rule. A nil extra is exactly Warm.
func (m *Manager) WarmReplicated(assign [][]int, extra [][][]int) {
	m.warm(assign, extra, false, 0)
}

// WarmCharged is Warm with the crash-recovery cost model: every preloaded
// expert's master copy is re-fetched through the tier at simulated time now
// (the crash dropped the replica's host-cache references, so some masters
// must come back from NVMe). It returns the extra simulated seconds the
// slowest GPU's preload pays beyond the plain host-link parameter copy —
// the re-warm surcharge the recovery timeline must absorb.
func (m *Manager) WarmCharged(assign [][]int, now float64) float64 {
	return m.warm(assign, nil, true, now)
}

// WarmChargedReplicated is WarmCharged with extra replica copies (see
// WarmReplicated).
func (m *Manager) WarmChargedReplicated(assign [][]int, extra [][][]int, now float64) float64 {
	return m.warm(assign, extra, true, now)
}

func (m *Manager) warm(assign [][]int, extra [][][]int, charged bool, now float64) float64 {
	m.repAssign, m.repExtra = assign, extra
	pin := m.policy.Pin()
	type cand struct {
		k   key
		pop float64
	}
	// Only primaries preload — an overflow copy starts cold (and, per popAt,
	// stays reclaimable), so a replicated layout warms exactly the working
	// set its single-copy counterpart would.
	perGPU := make([][]cand, m.cfg.GPUs)
	for l := 0; l < m.cfg.Layers && l < len(assign); l++ {
		for e := 0; e < m.cfg.Experts; e++ {
			g := assign[l][e]
			pop := m.popularity[l*m.cfg.Experts+e]
			perGPU[g] = append(perGPU[g], cand{key{l, e}, pop})
		}
	}
	maxExtra := 0.0
	for g, cands := range perGPU {
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].pop != cands[b].pop {
				return cands[a].pop > cands[b].pop
			}
			if cands[a].k.layer != cands[b].k.layer {
				return cands[a].k.layer < cands[b].k.layer
			}
			return cands[a].k.expert < cands[b].k.expert
		})
		s := m.shards[g]
		gpuExtra := 0.0
		for _, c := range cands {
			if s.used >= m.cfg.SlotsPerGPU {
				break
			}
			s.entries[c.k] = &Entry{
				Layer: c.k.layer, Expert: c.k.expert,
				resident: true, pinned: pin, pop: c.pop,
			}
			s.used++
			if charged {
				var hop float64
				if m.hostTier != nil {
					hop = m.hostTier.FetchMaster(m.tierRep, c.k.layer, c.k.expert, now)
				} else if m.hostOnNVMe != nil && m.hostOnNVMe[c.k.layer*m.cfg.Experts+c.k.expert] {
					hop = m.nvmeTime
				}
				if hop > 0 {
					s.stats.NVMeFetches++
					s.stats.NVMeSeconds += hop
				}
				if m.linkScale != nil {
					hop *= m.linkScale(now)
				}
				gpuExtra += hop
			}
			m.retainMaster(c.k.layer, c.k.expert)
		}
		if gpuExtra > maxExtra {
			// GPUs preload in parallel; the recovery waits for the slowest.
			maxExtra = gpuExtra
		}
	}
	return maxExtra
}

// Access is a demand access to expert (layer, expert) on the given GPU at
// simulated time now. It returns the stall the accessing computation must
// wait before the weights are usable. Misses issue a fetch on the GPU's
// host-link channel; if no slot can be freed the transfer streams through
// without caching.
func (m *Manager) Access(gpu, layer, expert int, now float64) float64 {
	stall, _ := m.AccessChecked(gpu, layer, expert, now)
	return stall
}

// AccessChecked is Access plus the fetch failure signal: ok is false when the
// demand fetch exhausted its chaos retry budget (SetFetchRetry), in which
// case the weights never arrive and the caller must shed the work that
// needed them. Without an armed retry model ok is always true.
func (m *Manager) AccessChecked(gpu, layer, expert int, now float64) (stall float64, ok bool) {
	s := m.shards[gpu]
	s.stats.Accesses++
	if !m.Oversubscribed() {
		s.stats.Hits++
		m.met.hits.Inc()
		return 0, true
	}
	k := key{layer, expert}
	if e := s.entries[k]; e != nil {
		stall := 0.0
		if !e.resident {
			if e.readyAt > now {
				stall = e.readyAt - now
				s.stats.LateHits++
				m.met.lateHits.Inc()
			} else {
				s.stats.Hits++
				m.met.hits.Inc()
			}
			e.resident = true
			if s.hasSpec && s.specKey == k {
				// The speculative transfer is now demand-owned; preempting
				// it would stall the very access it serves.
				s.hasSpec = false
			}
		} else {
			s.stats.Hits++
			m.met.hits.Inc()
		}
		if e.prefetched {
			s.stats.PrefetchHits++
			m.met.prefetchHits.Inc()
			if m.tr != nil {
				m.tr.Emit(obs.Event{Kind: obs.EvPrefetchHit, Rep: m.rep, GPU: int32(gpu),
					Layer: int32(layer), Expert: int32(expert), T: now})
			}
			e.prefetched = false
		}
		e.uses++
		e.lastUse = now + stall
		s.stats.StallSeconds += stall
		m.met.stallSeconds.Add(stall)
		return stall, true
	}
	// Miss: fetch over the serialized host link. Under preemptible DMA a
	// speculative transfer holding the link yields it first: the in-flight
	// prefetch is cancelled (slot freed, master reference released) and the
	// demand transfer starts immediately instead of queueing behind it.
	s.stats.Misses++
	m.met.misses.Inc()
	if m.preempt && s.hasSpec && s.linkFreeAt > now && s.specUntil == s.linkFreeAt {
		if e := s.entries[s.specKey]; e != nil && e.prefetched && !e.resident {
			delete(s.entries, s.specKey)
			s.used--
			m.releaseMaster(s.specKey.layer, s.specKey.expert)
			s.stats.Preemptions++
			m.met.preemptions.Inc()
			if m.tr != nil {
				m.tr.Emit(obs.Event{Kind: obs.EvPreempt, Rep: m.rep, GPU: int32(gpu),
					Layer: int32(s.specKey.layer), Expert: int32(s.specKey.expert), T: now})
			}
			s.linkFreeAt = now
		}
		s.hasSpec = false
	}
	ready, xfer, fetched := m.issueDemandFetch(s, k, now)
	stall = ready - now
	s.stats.StallSeconds += stall
	m.met.stallSeconds.Add(stall)
	if !fetched {
		return stall, false
	}
	m.met.fetchSeconds.Observe(xfer)
	if m.tr != nil {
		m.tr.Emit(obs.Event{Kind: obs.EvFetch, Rep: m.rep, GPU: int32(gpu),
			Layer: int32(layer), Expert: int32(expert), T: ready - xfer, Dur: xfer, Value: stall})
	}
	if m.freeSlot(s, now) {
		s.entries[k] = &Entry{
			Layer: layer, Expert: expert,
			readyAt: ready, uses: 1, lastUse: ready, pop: m.popAt(gpu, layer, expert),
		}
		s.used++
		m.retainMaster(layer, expert)
	} else {
		s.stats.Bypasses++
		m.met.bypasses.Inc()
	}
	return stall, true
}

// Prefetch speculatively fetches (layer, expert) into the GPU's HBM at
// simulated time now. Speculation rides idle host-link bandwidth only: when
// a transfer is already occupying the GPU's link the hint is dropped, so a
// burst of prefetches can never starve the demand fetches behind it (a
// demand miss waits for at most one in-flight speculative transfer). It is
// also a no-op if the expert is already resident or in flight, or if no
// slot can be freed without disturbing pinned or in-flight entries.
func (m *Manager) Prefetch(gpu, layer, expert int, now float64) {
	if !m.Oversubscribed() {
		return
	}
	s := m.shards[gpu]
	if s.linkFreeAt > now {
		m.dropPrefetch(gpu, layer, expert, now, DropLinkBusy)
		return
	}
	k := key{layer, expert}
	if s.entries[k] != nil {
		m.dropPrefetch(gpu, layer, expert, now, DropPresent)
		return
	}
	if !m.freeSlot(s, now) {
		m.dropPrefetch(gpu, layer, expert, now, DropNoSlot)
		return
	}
	ready, _ := m.issueFetch(s, k, now)
	s.entries[k] = &Entry{
		Layer: layer, Expert: expert,
		readyAt: ready, lastUse: ready, prefetched: true, pop: m.popAt(gpu, layer, expert),
	}
	s.used++
	m.retainMaster(layer, expert)
	s.hasSpec = true
	s.specKey = k
	s.specUntil = ready
	s.stats.Prefetches++
	m.met.prefetches.Inc()
	if m.tr != nil {
		m.tr.Emit(obs.Event{Kind: obs.EvPrefetchIssue, Rep: m.rep, GPU: int32(gpu),
			Layer: int32(layer), Expert: int32(expert), T: now, Dur: ready - now})
	}
}

// dropPrefetch records a declined speculation hint with its reason code.
func (m *Manager) dropPrefetch(gpu, layer, expert int, now float64, reason int64) {
	m.met.prefetchDrops.Inc()
	if m.tr != nil {
		m.tr.Emit(obs.Event{Kind: obs.EvPrefetchDrop, Rep: m.rep, GPU: int32(gpu),
			Layer: int32(layer), Expert: int32(expert), T: now, Aux: reason})
	}
}

// issueFetch charges one expert transfer to the shard's host-link channel
// and returns the completion time plus the transfer's own duration. The
// master-copy hop comes from the shared HostTier when one is installed
// (DRAM hit for anything a neighbor replica already fetched), otherwise
// from the static popularity split.
func (m *Manager) issueFetch(s *shard, k key, now float64) (ready, xfer float64) {
	start := now
	if s.linkFreeAt > start {
		start = s.linkFreeAt
	}
	var extra float64
	xfer, extra = m.fetchCost(k, now, start)
	if extra > 0 {
		s.stats.NVMeFetches++
		s.stats.NVMeSeconds += extra
	}
	ready = start + xfer
	s.linkFreeAt = ready
	s.stats.BytesFetched += int64(m.cfg.ExpertBytes)
	m.met.bytesFetched.Add(float64(m.cfg.ExpertBytes))
	return ready, xfer
}

// fetchCost prices one expert transfer: the host-link hop plus the
// master-copy hop (shared tier or static split, resolved at masterAt), the
// whole thing stretched by the degraded-link factor in force when the
// transfer starts. extra is the unscaled master-copy hop for NVMe stats.
func (m *Manager) fetchCost(k key, masterAt, start float64) (xfer, extra float64) {
	if m.hostTier != nil {
		extra = m.hostTier.FetchMaster(m.tierRep, k.layer, k.expert, masterAt)
	} else if m.hostOnNVMe != nil && m.hostOnNVMe[k.layer*m.cfg.Experts+k.expert] {
		extra = m.nvmeTime
	}
	xfer = m.hostTime + extra
	if m.linkScale != nil {
		xfer *= m.linkScale(start)
	}
	return xfer, extra
}

// issueDemandFetch is issueFetch with the chaos stall-timeout model: each
// attempt whose transfer would overrun the timeout is abandoned (the link is
// held for the timeout window) and re-issued after backoff; the retry
// re-prices the master hop, so it can succeed where the first attempt could
// not (DRAM now warm, or a degrade window that ended). ok=false means the
// fetch exhausted its retries; ready is then the give-up time.
func (m *Manager) issueDemandFetch(s *shard, k key, now float64) (ready, xfer float64, ok bool) {
	if m.ftTimeout <= 0 {
		ready, xfer = m.issueFetch(s, k, now)
		return ready, xfer, true
	}
	start := now
	if s.linkFreeAt > start {
		start = s.linkFreeAt
	}
	for attempt := 0; ; attempt++ {
		var extra float64
		xfer, extra = m.fetchCost(k, start, start)
		if xfer <= m.ftTimeout {
			if extra > 0 {
				s.stats.NVMeFetches++
				s.stats.NVMeSeconds += extra
			}
			ready = start + xfer
			s.linkFreeAt = ready
			s.stats.BytesFetched += int64(m.cfg.ExpertBytes)
			m.met.bytesFetched.Add(float64(m.cfg.ExpertBytes))
			return ready, xfer, true
		}
		// Abandoned at the timeout: the link was occupied (and the partial
		// transfer's bytes moved) for the full timeout window.
		s.stats.FetchTimeouts++
		m.met.fetchTimeouts.Inc()
		s.linkFreeAt = start + m.ftTimeout
		if attempt >= m.ftRetries {
			s.stats.FetchFailures++
			m.met.fetchFailures.Inc()
			return s.linkFreeAt, 0, false
		}
		s.stats.FetchRetries++
		m.met.fetchRetries.Inc()
		if m.tr != nil {
			m.tr.Emit(obs.Event{Kind: obs.EvFetchRetry, Rep: m.rep, GPU: int32(s.gpu),
				Layer: int32(k.layer), Expert: int32(k.expert), T: s.linkFreeAt, Aux: int64(attempt + 1)})
		}
		start = s.linkFreeAt + m.backoff(attempt+1)
	}
}

// backoff is the idle wait before retry attempt (1-based), doubling each time.
func (m *Manager) backoff(attempt int) float64 {
	b := m.ftBackoff
	for i := 1; i < attempt; i++ {
		b *= 2
	}
	return b
}

// freeSlot ensures the shard has a free slot, evicting a policy-chosen
// victim if needed. It reports whether a slot is available. Pinned entries
// and in-flight transfers (readyAt > now) are never evicted.
func (m *Manager) freeSlot(s *shard, now float64) bool {
	if s.used < m.cfg.SlotsPerGPU {
		return true
	}
	var victim *Entry
	for _, e := range s.entries {
		if e.pinned || (!e.resident && e.readyAt > now) {
			continue
		}
		victim = m.policy.Better(victim, e)
	}
	if victim == nil {
		return false
	}
	if victim.prefetched && victim.uses == 0 {
		s.stats.WastedPrefetches++
		m.met.wastedPrefetches.Inc()
	}
	delete(s.entries, key{victim.Layer, victim.Expert})
	s.used--
	m.releaseMaster(victim.Layer, victim.Expert)
	s.stats.Evictions++
	m.met.evictions.Inc()
	if m.tr != nil {
		m.tr.Emit(obs.Event{Kind: obs.EvEvict, Rep: m.rep, GPU: int32(s.gpu),
			Layer: int32(victim.Layer), Expert: int32(victim.Expert), T: now})
	}
	return true
}

// Resident reports whether (layer, expert) is HBM-resident on the GPU.
func (m *Manager) Resident(gpu, layer, expert int) bool {
	if !m.Oversubscribed() {
		return true
	}
	e := m.shards[gpu].entries[key{layer, expert}]
	return e != nil && e.resident
}

// Relocate applies one placement move at simulated time now: the expert's
// HBM copy (if any) on the old owner is invalidated, and the parameter copy
// the migration already priced lands it resident on the new owner (evicting
// by policy; skipped if no slot can be freed). It returns whether the source
// held a resident copy — the residency churn the migration destroyed.
func (m *Manager) Relocate(layer, expert, from, to int, now float64) bool {
	if !m.Oversubscribed() {
		return false
	}
	k := key{layer, expert}
	src := m.shards[from]
	churned := false
	if e := src.entries[k]; e != nil {
		if e.resident {
			churned = true
		}
		delete(src.entries, k)
		src.used--
		m.releaseMaster(layer, expert)
	}
	dst := m.shards[to]
	if dst.entries[k] == nil && m.freeSlot(dst, now) {
		dst.entries[k] = &Entry{
			Layer: layer, Expert: expert,
			resident: true, lastUse: now, pinned: m.policy.Pin(), pop: m.popOf(layer, expert),
		}
		dst.used++
		m.retainMaster(layer, expert)
	}
	return churned
}

// Install lands a new replica copy of (layer, expert) resident on the GPU at
// simulated time now — the runtime half of a replication move (the transfer
// itself is priced by the migration plan, like Relocate's). Evicts by policy
// for a slot; a GPU already holding the expert, or unable to free a slot, is
// left unchanged.
func (m *Manager) Install(layer, expert, gpu int, now float64) {
	if !m.Oversubscribed() {
		return
	}
	k := key{layer, expert}
	s := m.shards[gpu]
	if s.entries[k] == nil && m.freeSlot(s, now) {
		s.entries[k] = &Entry{
			Layer: layer, Expert: expert,
			resident: true, lastUse: now, pinned: m.policy.Pin(), pop: m.popOf(layer, expert),
		}
		s.used++
		m.retainMaster(layer, expert)
	}
}

// Discard drops the copy of (layer, expert) from the GPU — the runtime half
// of a replica-drop move, freeing the HBM slot. It returns whether a
// resident copy was destroyed (the residency churn, mirroring Relocate's
// source half).
func (m *Manager) Discard(layer, expert, gpu int) bool {
	if !m.Oversubscribed() {
		return false
	}
	k := key{layer, expert}
	s := m.shards[gpu]
	e := s.entries[k]
	if e == nil {
		return false
	}
	churned := e.resident
	delete(s.entries, k)
	s.used--
	m.releaseMaster(layer, expert)
	return churned
}

// Stats aggregates all shards' counters.
func (m *Manager) Stats() Stats {
	var total Stats
	for _, s := range m.shards {
		total.Add(s.stats)
	}
	return total
}

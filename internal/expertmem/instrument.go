package expertmem

import "repro/internal/obs"

// memMetrics caches the registry handles the manager touches on its hot
// paths, so instrumentation costs one nil check per update rather than a map
// lookup. The zero value (all nil handles) is the observability-off fast
// path.
type memMetrics struct {
	fetchSeconds *obs.Histogram
	stallSeconds *obs.Counter
	bytesFetched *obs.Counter

	hits, lateHits, misses, bypasses *obs.Counter

	evictions, prefetches, prefetchHits, wastedPrefetches, prefetchDrops *obs.Counter

	// Chaos fetch-model counters; registered only when a chaos hook is
	// installed (SetLinkScale / SetFetchRetry / SetPreemptibleDMA), so
	// fault-free runs keep exactly today's exported metric name set.
	fetchRetries, fetchTimeouts, fetchFailures, preemptions *obs.Counter
}

// Prefetch-drop reasons, carried in EvPrefetchDrop's Aux field.
const (
	// DropLinkBusy: the GPU's host link was occupied; speculation only rides
	// idle bandwidth.
	DropLinkBusy = 1
	// DropPresent: the expert was already resident or in flight.
	DropPresent = 2
	// DropNoSlot: no slot could be freed without evicting pinned or
	// in-flight entries.
	DropNoSlot = 3
)

// Instrument attaches a tracer and/or metrics registry to the manager,
// tagging every emitted event with the given replica index. Either argument
// may be nil; calling with both nil (or never calling) leaves the manager on
// the zero-cost fast path. Call before the first Access.
func (m *Manager) Instrument(tr *obs.Tracer, reg *obs.Registry, rep int) {
	m.tr = tr
	m.rep = int32(rep)
	if reg == nil {
		m.met = memMetrics{}
		return
	}
	m.met = memMetrics{
		fetchSeconds:     reg.Histogram("expertmem_fetch_seconds", obs.SecondsBuckets()),
		stallSeconds:     reg.Counter("expertmem_stall_seconds"),
		bytesFetched:     reg.Counter("expertmem_bytes_fetched_total"),
		hits:             reg.Counter("expertmem_hits_total"),
		lateHits:         reg.Counter("expertmem_late_hits_total"),
		misses:           reg.Counter("expertmem_misses_total"),
		bypasses:         reg.Counter("expertmem_bypasses_total"),
		evictions:        reg.Counter("expertmem_evictions_total"),
		prefetches:       reg.Counter("expertmem_prefetches_total"),
		prefetchHits:     reg.Counter("expertmem_prefetch_hits_total"),
		wastedPrefetches: reg.Counter("expertmem_wasted_prefetches_total"),
		prefetchDrops:    reg.Counter("expertmem_prefetch_drops_total"),
	}
	if m.chaosArmed() {
		m.met.fetchRetries = reg.Counter("expertmem_fetch_retries_total")
		m.met.fetchTimeouts = reg.Counter("expertmem_fetch_timeouts_total")
		m.met.fetchFailures = reg.Counter("expertmem_fetch_failures_total")
		m.met.preemptions = reg.Counter("expertmem_preemptions_total")
	}
}

package expertmem

import (
	"fmt"
	"strings"
)

// Policy governs HBM residency: which entry to evict when a slot is needed,
// whether warm-preloaded entries are pinned, and whether the affinity
// prefetcher should run on top of it.
//
// Better must impose a strict total order over eviction candidates (ties
// broken by (Layer, Expert)) and return the preferable victim of the two;
// either argument may be nil. A total order makes victim selection
// independent of residency-table iteration order, which is what keeps the
// whole simulation deterministic.
type Policy interface {
	Name() string
	// Better returns the preferable eviction victim of a and b.
	Better(a, b *Entry) *Entry
	// Pin reports whether warm-preloaded entries are immovable.
	Pin() bool
	// Prefetch reports whether the affinity prefetcher runs on top.
	Prefetch() bool
}

// tieBreak orders entries deterministically when a policy's metric ties.
func tieBreak(a, b *Entry) *Entry {
	if a.Layer != b.Layer {
		if a.Layer < b.Layer {
			return a
		}
		return b
	}
	if a.Expert <= b.Expert {
		return a
	}
	return b
}

// lruPolicy evicts the least recently used entry.
type lruPolicy struct{}

func (lruPolicy) Name() string   { return "lru" }
func (lruPolicy) Pin() bool      { return false }
func (lruPolicy) Prefetch() bool { return false }
func (lruPolicy) Better(a, b *Entry) *Entry {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.lastUse != b.lastUse {
		if a.lastUse < b.lastUse {
			return a
		}
		return b
	}
	return tieBreak(a, b)
}

// affinityPolicy is the headline policy: the inter-layer affinity matrix is
// read as a full memory oracle. Eviction drops the expert with the least
// affinity mass (the least expected future demand — LRU is pathological
// under decode's cyclic layer scan, popularity is not), and the prefetcher
// chases each routed expert's top-K successors so their fetches overlap the
// current layer's compute.
type affinityPolicy struct{}

func (affinityPolicy) Name() string   { return "affinity" }
func (affinityPolicy) Pin() bool      { return false }
func (affinityPolicy) Prefetch() bool { return true }
func (affinityPolicy) Better(a, b *Entry) *Entry {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.pop != b.pop {
		if a.pop < b.pop {
			return a
		}
		return b
	}
	if a.lastUse != b.lastUse {
		if a.lastUse < b.lastUse {
			return a
		}
		return b
	}
	return tieBreak(a, b)
}

// lfuPolicy evicts the least frequently used entry (LRU, then key, breaks
// ties).
type lfuPolicy struct{}

func (lfuPolicy) Name() string   { return "lfu" }
func (lfuPolicy) Pin() bool      { return false }
func (lfuPolicy) Prefetch() bool { return false }
func (lfuPolicy) Better(a, b *Entry) *Entry {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.uses != b.uses {
		if a.uses < b.uses {
			return a
		}
		return b
	}
	if a.lastUse != b.lastUse {
		if a.lastUse < b.lastUse {
			return a
		}
		return b
	}
	return tieBreak(a, b)
}

// pinPolicy is the static pin-by-popularity baseline: Warm fills every slot
// with the most popular assigned experts and pins them; everything else
// streams through HBM without caching.
type pinPolicy struct{}

func (pinPolicy) Name() string   { return "pin" }
func (pinPolicy) Pin() bool      { return true }
func (pinPolicy) Prefetch() bool { return false }
func (pinPolicy) Better(a, b *Entry) *Entry {
	// Pinned entries never reach Better; among any stragglers fall back to
	// LRU order so the policy still functions if warm missed a slot.
	return lruPolicy{}.Better(a, b)
}

// LRU returns the least-recently-used eviction policy.
func LRU() Policy { return lruPolicy{} }

// LFU returns the least-frequently-used eviction policy.
func LFU() Policy { return lfuPolicy{} }

// PinByPopularity returns the static pin-by-popularity policy.
func PinByPopularity() Policy { return pinPolicy{} }

// AffinityPrefetch returns the headline policy: affinity-mass eviction plus
// the affinity-guided prefetcher (Config.PrefetchK successors per routed
// expert).
func AffinityPrefetch() Policy { return affinityPolicy{} }

// PolicyNames lists the built-in policies in presentation order.
func PolicyNames() []string { return []string{"lru", "lfu", "pin", "affinity"} }

// ParsePolicy maps a CLI/API string to a built-in policy. The empty string
// selects affinity-prefetch, the headline default.
func ParsePolicy(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case "", "affinity", "affinity-prefetch":
		return AffinityPrefetch(), nil
	case "lru":
		return LRU(), nil
	case "lfu":
		return LFU(), nil
	case "pin", "popularity", "pin-popular":
		return PinByPopularity(), nil
	default:
		return nil, fmt.Errorf("expertmem: unknown cache policy %q (known: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
}

package expertmem

import (
	"math"
	"strings"
	"testing"

	"repro/internal/topo"
)

const (
	testBytes   = 1 << 20
	testHostLat = 1e-3
	testHostBW  = float64(1 << 30)
	testNVMeLat = 10e-3
	testNVMeBW  = float64(1 << 28)
)

// testFetch is the host-DRAM fetch time under the test link.
var testFetch = testHostLat + testBytes/testHostBW

// testConfig is a 3-layer, 4-expert, 2-GPU universe (6 experts per GPU when
// balanced) with a hand-written affinity tensor whose rows have a clear
// top successor.
func testConfig(slots int, pol Policy) Config {
	aff := make([][][]float64, 2)
	for l := range aff {
		aff[l] = make([][]float64, 4)
		for from := range aff[l] {
			row := make([]float64, 4)
			// Successor (from+1)%4 dominates, (from+2)%4 second.
			row[(from+1)%4] = 10
			row[(from+2)%4] = 3
			row[from] = 1
			aff[l][from] = row
		}
	}
	return Config{
		Layers: 3, Experts: 4, GPUs: 2,
		ExpertBytes: testBytes,
		SlotsPerGPU: slots,
		HostLink:    topo.LinkCost{Latency: testHostLat, Bandwidth: testHostBW},
		NVMeLink:    topo.LinkCost{Latency: testNVMeLat, Bandwidth: testNVMeBW},
		Policy:      pol,
		PrefetchK:   2,
		Affinity:    aff,
	}
}

// contiguousAssign assigns experts 0-1 of every layer to GPU 0, 2-3 to GPU 1.
func contiguousAssign() [][]int {
	assign := make([][]int, 3)
	for l := range assign {
		assign[l] = []int{0, 0, 1, 1}
	}
	return assign
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestSlotsFor(t *testing.T) {
	cases := []struct {
		oversub float64
		want    int
	}{{0, 96}, {1, 96}, {1.5, 64}, {2, 48}, {4, 24}, {1000, 1}}
	for _, c := range cases {
		if got := SlotsFor(16, 48, 8, c.oversub); got != c.want {
			t.Fatalf("SlotsFor(oversub=%v) = %d, want %d", c.oversub, got, c.want)
		}
	}
	if got := SlotsForBytes(80e9, 16<<20); got != 4768 {
		t.Fatalf("SlotsForBytes = %d", got)
	}
}

func TestUnconstrainedIsFree(t *testing.T) {
	m := New(testConfig(6, LRU())) // 6 slots = everything fits
	m.Warm(contiguousAssign())
	if m.Oversubscribed() {
		t.Fatal("6 slots for 6 experts/GPU must not be oversubscribed")
	}
	for l := 0; l < 3; l++ {
		for e := 0; e < 4; e++ {
			g := contiguousAssign()[l][e]
			if st := m.Access(g, l, e, 1.0); st != 0 {
				t.Fatalf("unconstrained access stalled %v", st)
			}
		}
	}
	st := m.Stats()
	if st.Misses != 0 || st.StallSeconds != 0 || st.Hits != st.Accesses {
		t.Fatalf("unconstrained stats %+v", st)
	}
}

func TestMissStallAndLRUEviction(t *testing.T) {
	cfg := testConfig(1, LRU())
	m := New(cfg)
	// No warm: first access to each expert is a cold miss.
	if st := m.Access(0, 0, 0, 0); !almost(st, testFetch) {
		t.Fatalf("cold miss stall %v, want %v", st, testFetch)
	}
	// Same expert again: resident hit.
	if st := m.Access(0, 0, 0, 1); st != 0 {
		t.Fatalf("resident access stalled %v", st)
	}
	// A different expert evicts the only slot...
	if st := m.Access(0, 0, 1, 2); !almost(st, testFetch) {
		t.Fatalf("second miss stall %v", st)
	}
	// ...so the first misses again (thrash).
	if st := m.Access(0, 0, 0, 3); !almost(st, testFetch) {
		t.Fatalf("thrash miss stall %v", st)
	}
	st := m.Stats()
	if st.Misses != 3 || st.Hits != 1 || st.Evictions != 2 {
		t.Fatalf("stats %+v", st)
	}
	if !almost(st.StallSeconds, 3*testFetch) {
		t.Fatalf("stall total %v", st.StallSeconds)
	}
}

func TestHostLinkSerializes(t *testing.T) {
	m := New(testConfig(2, LRU()))
	// Two cold misses at the same instant: the second queues behind the
	// first on the GPU's host link.
	st1 := m.Access(0, 0, 0, 0)
	st2 := m.Access(0, 0, 1, 0)
	if !almost(st1, testFetch) {
		t.Fatalf("first stall %v", st1)
	}
	if !almost(st2, 2*testFetch) {
		t.Fatalf("queued stall %v, want %v", st2, 2*testFetch)
	}
}

func TestLFUKeepsHotExpert(t *testing.T) {
	m := New(testConfig(2, LFU()))
	m.Access(0, 0, 0, 0) // expert 0: 3 uses
	m.Access(0, 0, 0, 1)
	m.Access(0, 0, 0, 2)
	m.Access(0, 0, 1, 3) // expert 1: 1 use
	m.Access(0, 0, 2, 4) // needs a slot: must evict expert 1, not 0
	if !m.Resident(0, 0, 0) {
		t.Fatal("LFU evicted the hot expert")
	}
	if m.Resident(0, 0, 1) {
		t.Fatal("LFU kept the cold expert")
	}
}

func TestPinByPopularityStreamsMisses(t *testing.T) {
	cfg := testConfig(1, PinByPopularity())
	m := New(cfg)
	m.Warm(contiguousAssign())
	// GPU 0 holds experts 0 and 1 across 3 layers; one slot is pinned with
	// the most popular. Accesses to anything else must bypass (stream).
	pre := m.Stats()
	if pre.Accesses != 0 {
		t.Fatalf("warm should not count accesses: %+v", pre)
	}
	var pinnedKey *Entry
	for _, e := range m.shards[0].entries {
		pinnedKey = e
	}
	if pinnedKey == nil || !pinnedKey.pinned {
		t.Fatal("warm did not pin")
	}
	// Access a non-pinned expert twice: both stream (full stall, no caching).
	other := 1
	if pinnedKey.Expert == 1 && pinnedKey.Layer == 0 {
		other = 0
	}
	st1 := m.Access(0, 0, other, 0)
	st2 := m.Access(0, 0, other, 10)
	if !almost(st1, testFetch) || !almost(st2, testFetch) {
		t.Fatalf("streamed stalls %v %v", st1, st2)
	}
	st := m.Stats()
	if st.Bypasses != 2 || st.Evictions != 0 {
		t.Fatalf("pin stats %+v", st)
	}
	// The pinned expert itself is a free hit.
	if s := m.Access(0, pinnedKey.Layer, pinnedKey.Expert, 20); s != 0 {
		t.Fatalf("pinned access stalled %v", s)
	}
}

func TestPrefetchOverlapsAndLateHit(t *testing.T) {
	m := New(testConfig(2, AffinityPrefetch()))
	// Prefetch at t=0; the fetch completes at testFetch.
	m.Prefetch(0, 1, 2, 0)
	// Demand access well after completion: free hit, credited to prefetch.
	if st := m.Access(0, 1, 2, 2*testFetch); st != 0 {
		t.Fatalf("prefetched access stalled %v", st)
	}
	// Prefetch another and demand it halfway through the transfer: the
	// stall is only the residual.
	m.Prefetch(0, 1, 3, 1.0)
	st := m.Access(0, 1, 3, 1.0+testFetch/2)
	if !almost(st, testFetch/2) {
		t.Fatalf("late-hit stall %v, want %v", st, testFetch/2)
	}
	stats := m.Stats()
	if stats.Prefetches != 2 || stats.PrefetchHits != 2 || stats.LateHits != 1 || stats.Misses != 0 {
		t.Fatalf("prefetch stats %+v", stats)
	}
}

func TestWastedPrefetchCounted(t *testing.T) {
	m := New(testConfig(1, AffinityPrefetch()))
	m.Prefetch(0, 0, 0, 0)
	// Demand a different expert after the prefetch landed: the untouched
	// prefetched entry is the only victim.
	m.Access(0, 0, 1, 2*testFetch)
	st := m.Stats()
	if st.WastedPrefetches != 1 {
		t.Fatalf("wasted prefetch not counted: %+v", st)
	}
	// In-flight transfers must never be evicted: a prefetch mid-flight
	// blocks caching of a new miss (bypass) rather than being cancelled.
	m2 := New(testConfig(1, AffinityPrefetch()))
	m2.Prefetch(0, 0, 0, 0)
	m2.Access(0, 0, 1, testFetch/10)
	if s := m2.Stats(); s.Bypasses != 1 || s.Evictions != 0 {
		t.Fatalf("in-flight eviction: %+v", s)
	}
}

func TestInFlightDemandFetchNotEvicted(t *testing.T) {
	// Two same-instant misses on a single slot: the second must NOT evict
	// the first (its transfer is still on the link) — it bypasses instead.
	m := New(testConfig(1, AffinityPrefetch()))
	m.Access(0, 0, 0, 0)
	m.Access(0, 0, 1, 0)
	st := m.Stats()
	if st.Evictions != 0 || st.Bypasses != 1 {
		t.Fatalf("in-flight demand fetch evicted: %+v", st)
	}
	// After the transfer lands the first expert is a hit.
	if s := m.Access(0, 0, 0, 3*testFetch); s != 0 {
		t.Fatalf("landed fetch stalled %v", s)
	}
}

func TestSuccessorsRankedByAffinity(t *testing.T) {
	m := New(testConfig(2, AffinityPrefetch()))
	got := m.Successors(0, 1)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("successors of (0,1) = %v, want [2 3]", got)
	}
	if s := m.Successors(2, 0); s != nil {
		t.Fatalf("last layer has successors %v", s)
	}
	if !m.Prefetching() {
		t.Fatal("affinity policy should prefetch")
	}
	if New(testConfig(2, LRU())).Prefetching() {
		t.Fatal("lru policy should not prefetch")
	}
}

func TestNVMeTierPricesColdExperts(t *testing.T) {
	cfg := testConfig(1, LRU())
	cfg.HostSlots = 11 // exactly one master copy falls to NVMe
	m := New(cfg)
	nvme := testNVMeLat + testBytes/testNVMeBW
	cold, hot := -1.0, -1.0
	for l := 0; l < 3; l++ {
		for e := 0; e < 4; e++ {
			ft := m.FetchSeconds(l, e)
			if almost(ft, testFetch+nvme) {
				cold = ft
			} else if almost(ft, testFetch) {
				hot = ft
			} else {
				t.Fatalf("unexpected fetch time %v", ft)
			}
		}
	}
	if cold < 0 || hot < 0 {
		t.Fatal("expected both DRAM and NVMe master copies")
	}
	n := 0
	for i := range m.hostOnNVMe {
		if m.hostOnNVMe[i] {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d experts on NVMe, want 1", n)
	}
}

func TestRelocateChurnsResidency(t *testing.T) {
	m := New(testConfig(3, LRU()))
	m.Warm(contiguousAssign())
	if !m.Resident(0, 0, 0) {
		t.Fatal("warm missed (0,0)")
	}
	if churn := m.Relocate(0, 0, 0, 1, 5.0); !churn {
		t.Fatal("relocating a resident expert must report churn")
	}
	if m.Resident(0, 0, 0) {
		t.Fatal("source residency survived relocation")
	}
	if !m.Resident(1, 0, 0) {
		t.Fatal("target did not adopt the moved expert")
	}
	// Relocating a non-resident expert churns nothing.
	if churn := m.Relocate(2, 3, 0, 1, 6.0); churn {
		t.Fatal("non-resident relocation reported churn")
	}
}

func TestWarmPreloadsMostPopular(t *testing.T) {
	// Popularity of layer-1 experts is their incoming mass: expert
	// (from+1)%4 rows put mass 10 on each; all equal here, so check layer 0
	// vs capacity only: with 3 slots per GPU and 6 assigned, exactly 3
	// resident.
	m := New(testConfig(3, LRU()))
	m.Warm(contiguousAssign())
	for g := 0; g < 2; g++ {
		if m.shards[g].used != 3 {
			t.Fatalf("gpu %d warm used %d slots", g, m.shards[g].used)
		}
	}
}

func TestHostSlotsZeroKeepsEverythingInDRAM(t *testing.T) {
	// HostSlots == 0 means the DRAM working set is unbounded: no master
	// copy may fall to NVMe and every fetch pays the host link only.
	cfg := testConfig(1, LRU())
	cfg.HostSlots = 0
	m := New(cfg)
	if m.hostOnNVMe != nil {
		t.Fatalf("HostSlots=0 built an NVMe split: %v", m.hostOnNVMe)
	}
	for l := 0; l < 3; l++ {
		for e := 0; e < 4; e++ {
			if ft := m.FetchSeconds(l, e); !almost(ft, testFetch) {
				t.Fatalf("fetch(%d,%d) = %v, want host-only %v", l, e, ft, testFetch)
			}
		}
	}
	// A budget covering every expert behaves identically to zero.
	cfg.HostSlots = 12 // == Layers*Experts
	if m2 := New(cfg); m2.hostOnNVMe != nil {
		t.Fatal("all-fitting HostSlots built an NVMe split")
	}
}

func TestPrefetchKAtLeastExperts(t *testing.T) {
	// PrefetchK >= experts must clamp to the positive-mass successors, not
	// pad or panic; every successor list stays within the expert universe
	// and in decreasing-mass order.
	cfg := testConfig(2, AffinityPrefetch())
	cfg.PrefetchK = 100 // far beyond the 4-expert universe
	m := New(cfg)
	for l := 0; l < 2; l++ {
		for from := 0; from < 4; from++ {
			succ := m.Successors(l, from)
			// The test affinity rows have exactly 3 positive entries.
			if len(succ) != 3 {
				t.Fatalf("successors(%d,%d) = %v, want the 3 positive-mass entries", l, from, succ)
			}
			for i, e := range succ {
				if e < 0 || e >= 4 {
					t.Fatalf("successor out of range: %v", succ)
				}
				if i > 0 && m.cfg.Affinity[l][from][succ[i-1]] < m.cfg.Affinity[l][from][e] {
					t.Fatalf("successors not mass-ordered: %v", succ)
				}
			}
		}
	}
}

func TestSingleSlotThrash(t *testing.T) {
	// One HBM slot under a cyclic two-expert scan is the worst case for any
	// recency/frequency policy: every access misses, every miss evicts, and
	// the accounting must stay exact (no bypasses — a slot is always
	// reclaimable once the previous transfer landed).
	m := New(testConfig(1, LRU()))
	accesses := 0
	now := 0.0
	for round := 0; round < 10; round++ {
		for _, e := range []int{0, 1} {
			now += 2 * testFetch // let each transfer land before the next access
			if st := m.Access(0, 0, e, now); !almost(st, testFetch) {
				t.Fatalf("round %d expert %d: stall %v, want full fetch %v", round, e, st, testFetch)
			}
			accesses++
		}
	}
	st := m.Stats()
	if st.Accesses != accesses || st.Hits != 0 || st.Misses != accesses {
		t.Fatalf("thrash stats %+v, want %d pure misses", st, accesses)
	}
	if st.Evictions != accesses-1 || st.Bypasses != 0 {
		t.Fatalf("thrash stats %+v: want %d evictions, 0 bypasses", st, accesses-1)
	}
	if !almost(st.StallSeconds, float64(accesses)*testFetch) {
		t.Fatalf("thrash stall %v, want %v", st.StallSeconds, float64(accesses)*testFetch)
	}
}

func TestParsePolicyRejectionMessage(t *testing.T) {
	// The error must name the offending input and list every known policy —
	// it surfaces verbatim through CLI flags and ServeOptions.Validate.
	_, err := ParsePolicy("clockpro")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"clockpro"`) {
		t.Fatalf("error %q does not quote the unknown name", msg)
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error %q does not list known policy %q", msg, name)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil || p.Name() != name {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p.Name() != "affinity" {
		t.Fatalf("default policy = %v, %v", p, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestWarmReplicatedConcentratesResidency(t *testing.T) {
	extra := make([][][]int, 3)
	for l := range extra {
		extra[l] = make([][]int, 4)
	}
	extra[0][2] = []int{0} // copy of (0,2) on GPU 0; primary on GPU 1

	// Replicated warm preloads exactly the single-copy working set: the
	// primary holder at full popularity, the overflow copy not at all.
	single := New(testConfig(4, AffinityPrefetch()))
	single.Warm(contiguousAssign())
	m := New(testConfig(4, AffinityPrefetch()))
	m.WarmReplicated(contiguousAssign(), extra)
	for l := 0; l < 3; l++ {
		for e := 0; e < 4; e++ {
			for g := 0; g < 2; g++ {
				if single.Resident(g, l, e) != m.Resident(g, l, e) {
					t.Fatalf("replicated preload diverged from single-copy at gpu %d (%d,%d)", g, l, e)
				}
			}
		}
	}

	// A demand fetch of the copy onto its overflow holder carries zero
	// residency priority: the very next slot pressure on GPU 0 reclaims the
	// copy, never a primary — the copy serves transiently, it cannot
	// displace GPU 0's own working set.
	m.Access(0, 0, 2, 1.0)
	m.Access(0, 0, 2, 5.0) // post-arrival touch marks the entry resident
	if !m.Resident(0, 0, 2) {
		t.Fatal("demand fetch must land the overflow copy in GPU 0's HBM")
	}
	m.Access(0, 2, 3, 6.0) // miss on a GPU-1 primary: needs a slot on GPU 0
	if m.Resident(0, 0, 2) {
		t.Fatal("slot pressure must reclaim the zero-priority overflow copy first")
	}

	// The same fetch onto the designated (primary) holder keeps full mass.
	if got, want := m.popAt(1, 0, 2), m.popOf(0, 2); got != want {
		t.Fatalf("primary holder popAt = %v, want full mass %v", got, want)
	}
	if got := m.popAt(0, 0, 2); got != 0 {
		t.Fatalf("overflow holder popAt = %v, want 0", got)
	}

	// Nil extra is exactly Warm, charged or not.
	a := New(testConfig(4, LRU()))
	a.Warm(contiguousAssign())
	b := New(testConfig(4, LRU()))
	if got := b.WarmChargedReplicated(contiguousAssign(), nil, 0); got != 0 {
		t.Fatalf("unbounded host DRAM re-warm surcharge = %v, want 0", got)
	}
	for l := 0; l < 3; l++ {
		for e := 0; e < 4; e++ {
			for g := 0; g < 2; g++ {
				if a.Resident(g, l, e) != b.Resident(g, l, e) {
					t.Fatalf("nil-extra warm diverged at gpu %d (%d,%d)", g, l, e)
				}
			}
		}
	}
}

func TestResidentUnconstrained(t *testing.T) {
	m := New(testConfig(6, LRU())) // 6 slots = everything fits
	if !m.Resident(0, 2, 3) || !m.Resident(1, 0, 0) {
		t.Fatal("unconstrained memory must report everything resident")
	}
}

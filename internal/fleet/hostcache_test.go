package fleet

import "testing"

// popRank gives every (layer, expert) a distinct popularity so seeding and
// eviction orders are fully determined: higher flat index = more popular.
func popRank(experts int) func(int, int) float64 {
	return func(layer, expert int) float64 {
		return float64(layer*experts + expert)
	}
}

func TestHostCacheSeedsTopByPopularity(t *testing.T) {
	// 2x4 = 8 masters, 3 slots: indices 7, 6, 5 are the most popular.
	c := NewHostCache(2, 4, 3, 1e-3, popRank(4))
	for flat := 0; flat < 8; flat++ {
		want := flat >= 5
		if got := c.Resident(flat/4, flat%4); got != want {
			t.Errorf("Resident(%d,%d) = %v, want %v", flat/4, flat%4, got, want)
		}
	}
}

func TestHostCacheHitAndMiss(t *testing.T) {
	c := NewHostCache(2, 4, 3, 1e-3, popRank(4))
	// Seeded master: DRAM hit, no extra seconds.
	if extra := c.FetchMaster(0, 1, 3, 1.0); extra != 0 {
		t.Errorf("hit cost = %v, want 0", extra)
	}
	// Cold master: pays the NVMe hop and is cached for the next replica.
	if extra := c.FetchMaster(0, 0, 0, 2.0); extra != 1e-3 {
		t.Errorf("miss cost = %v, want 1e-3", extra)
	}
	if extra := c.FetchMaster(1, 0, 0, 3.0); extra != 0 {
		t.Errorf("neighbor refetch cost = %v, want 0 (shared tier)", extra)
	}
	st := c.Stats()
	if st.DRAMHits != 2 || st.NVMeFetches != 1 || st.Inserts != 1 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 fetch / 1 insert / 1 eviction", st)
	}
	if st.NVMeSeconds != 1e-3 {
		t.Errorf("NVMeSeconds = %v, want 1e-3", st.NVMeSeconds)
	}
}

func TestHostCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewHostCache(1, 8, 3, 1e-3, popRank(8))
	// Seeded: 7, 6, 5 (lastUse 0 for all). Touch 6 and 5 so 7 is the LRU.
	c.FetchMaster(0, 0, 6, 1.0)
	c.FetchMaster(0, 0, 5, 2.0)
	c.FetchMaster(0, 0, 0, 3.0) // cold: inserts 0, must evict 7
	if c.Resident(0, 7) {
		t.Error("expert 7 (least recently used) should have been evicted")
	}
	for _, e := range []int{6, 5, 0} {
		if !c.Resident(0, e) {
			t.Errorf("expert %d should be resident", e)
		}
	}
}

func TestHostCacheEvictionTieBreaksByPopularityThenKey(t *testing.T) {
	// All seeded entries share lastUse 0, so the first eviction falls back to
	// lowest popularity: that is expert 5 (pop 5 < 6 < 7).
	c := NewHostCache(1, 8, 3, 1e-3, popRank(8))
	c.FetchMaster(0, 0, 1, 1.0)
	if c.Resident(0, 5) {
		t.Error("expert 5 (lowest popularity at equal recency) should have been evicted")
	}

	// Equal popularity and recency: lowest key loses.
	flat := NewHostCache(1, 4, 2, 1e-3, func(int, int) float64 { return 1 })
	// Seeded with ties broken by index: experts 0 and 1.
	flat.FetchMaster(0, 0, 3, 1.0)
	if flat.Resident(0, 0) {
		t.Error("expert 0 (lowest key at equal recency and popularity) should have been evicted")
	}
	if !flat.Resident(0, 1) || !flat.Resident(0, 3) {
		t.Error("experts 1 and 3 should be resident")
	}
}

func TestHostCacheRefsDoNotPinEviction(t *testing.T) {
	c := NewHostCache(1, 8, 3, 1e-3, popRank(8))
	// Pin every seeded entry with replica references; eviction must still
	// pick the LRU (refs are retirement bookkeeping, not pins).
	for _, e := range []int{5, 6, 7} {
		c.Retain(0, 0, e)
	}
	c.FetchMaster(0, 0, 0, 1.0)
	if st := c.Stats(); st.Evictions != 1 || st.Bypasses != 0 {
		t.Errorf("stats = %+v, want 1 eviction and no bypasses despite refs", st)
	}
}

func TestHostCacheUnbounded(t *testing.T) {
	for _, slots := range []int{0, 8, 100} {
		c := NewHostCache(1, 8, slots, 1e-3, popRank(8))
		if extra := c.FetchMaster(0, 0, 2, 1.0); extra != 0 {
			t.Errorf("slots=%d: unbounded fetch cost = %v, want 0", slots, extra)
		}
		if !c.Resident(0, 2) {
			t.Errorf("slots=%d: everything is resident in an unbounded tier", slots)
		}
		if st := c.Stats(); st.NVMeFetches != 0 {
			t.Errorf("slots=%d: NVMeFetches = %d, want 0", slots, st.NVMeFetches)
		}
	}
}

func TestHostCacheRefcountBookkeeping(t *testing.T) {
	c := NewHostCache(1, 8, 3, 1e-3, popRank(8))
	c.Retain(0, 0, 7)
	c.Retain(0, 0, 7)
	c.Retain(1, 0, 7)
	e := c.entries[c.key(0, 7)]
	if e.total != 3 || e.refs[0] != 2 || e.refs[1] != 1 {
		t.Fatalf("refs = %v total %d, want {0:2 1:1} total 3", e.refs, e.total)
	}
	c.Release(0, 0, 7)
	if e.total != 2 || e.refs[0] != 1 {
		t.Errorf("after release: refs = %v total %d, want {0:1 1:1} total 2", e.refs, e.total)
	}
	// Releasing with no reference held is a no-op.
	c.Release(3, 0, 7)
	if e.total != 2 {
		t.Errorf("release without a ref changed total to %d", e.total)
	}
	// Releasing a master that is not cached is a no-op.
	c.Release(0, 0, 1)

	// Retiring replica 0 drops its remaining reference but leaves replica 1's.
	c.ReleaseReplica(0)
	if e.total != 1 || e.refs[1] != 1 {
		t.Errorf("after ReleaseReplica(0): refs = %v total %d, want {1:1} total 1", e.refs, e.total)
	}
	if _, held := e.refs[0]; held {
		t.Error("replica 0's ref map entry should be gone")
	}
}

func TestHostCacheRetainAfterEvictionNoOps(t *testing.T) {
	c := NewHostCache(1, 8, 3, 1e-3, popRank(8))
	c.FetchMaster(0, 0, 0, 1.0) // evicts one seeded entry (expert 5)
	c.Retain(0, 0, 5)           // master no longer cached: no-op
	if c.Resident(0, 5) {
		t.Error("Retain must not resurrect an evicted master")
	}
}

func TestHostCacheInvalidate(t *testing.T) {
	c := NewHostCache(1, 8, 3, 1e-3, popRank(8))
	c.Retain(0, 0, 7)
	c.Invalidate(0, 7)
	if c.Resident(0, 7) {
		t.Error("invalidated master still resident")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", st.Invalidations)
	}
	// The outstanding reference died with the entry: its release no-ops.
	c.Release(0, 0, 7)
	// Invalidating an absent master is a no-op, not a double count.
	c.Invalidate(0, 7)
	if st := c.Stats(); st.Invalidations != 1 {
		t.Errorf("Invalidations = %d after re-invalidate, want 1", st.Invalidations)
	}
	// Unbounded tier: invalidate is a no-op (there is nothing to manage).
	u := NewHostCache(1, 8, 0, 1e-3, popRank(8))
	u.Invalidate(0, 3)
	if st := u.Stats(); st.Invalidations != 0 {
		t.Errorf("unbounded Invalidations = %d, want 0", st.Invalidations)
	}
}

// Crash coherence: a replica crash releases its references exactly like a
// retirement (serve calls ReleaseReplica from the crash path), and the shared
// DRAM tier must stay coherent for the survivors and the later re-warm.

func TestHostCacheCrashReleaseRewarm(t *testing.T) {
	c := NewHostCache(1, 8, 3, 1e-3, popRank(8))
	c.Retain(0, 0, 7)
	c.Retain(1, 0, 7)
	c.Retain(1, 0, 6)
	// Replica 1 crashes: its HBM copies are gone, so its references drop —
	// without disturbing the survivor's refs or the DRAM residency itself.
	c.ReleaseReplica(1)
	e := c.entries[c.key(0, 7)]
	if e.total != 1 || e.refs[0] != 1 {
		t.Fatalf("crash release broke survivor refs: %v total %d, want {0:1} total 1", e.refs, e.total)
	}
	if e6 := c.entries[c.key(0, 6)]; e6.total != 0 || len(e6.refs) != 0 {
		t.Fatalf("crashed replica's sole ref survived: %v total %d", e6.refs, e6.total)
	}
	if !c.Resident(0, 7) || !c.Resident(0, 6) {
		t.Fatal("crash release must not evict DRAM masters (refs are bookkeeping, not pins)")
	}
	// Recovery re-warm: the recovered replica fetches through the cache again
	// — a DRAM hit, the whole point of the shared tier surviving the crash —
	// and re-registers its references.
	if extra := c.FetchMaster(1, 0, 7, 5.0); extra != 0 {
		t.Fatalf("re-warm fetch of a DRAM-resident master cost %v, want 0", extra)
	}
	c.Retain(1, 0, 7)
	if e.total != 2 || e.refs[1] != 1 {
		t.Fatalf("re-warm did not re-register: %v total %d, want {0:1 1:1} total 2", e.refs, e.total)
	}
}

func TestHostCacheCrashReleaseIdempotent(t *testing.T) {
	// Crash then retirement firing on the same replica id: the second
	// ReleaseReplica must be a no-op, not an underflow.
	c := NewHostCache(1, 8, 3, 1e-3, popRank(8))
	c.Retain(1, 0, 7)
	c.ReleaseReplica(1)
	c.ReleaseReplica(1)
	if e := c.entries[c.key(0, 7)]; e.total != 0 || len(e.refs) != 0 {
		t.Fatalf("double release corrupted refs: %v total %d", e.refs, e.total)
	}
}

func TestHostCacheCrashPreservesEvictionOrder(t *testing.T) {
	// Dropping a crashed replica's refs must not perturb the deterministic
	// eviction order: at equal recency the victim is still the least popular
	// entry, referenced-before-crash or not.
	c := NewHostCache(1, 8, 3, 1e-3, popRank(8))
	c.Retain(1, 0, 5)
	c.Retain(1, 0, 7)
	c.ReleaseReplica(1)
	c.FetchMaster(0, 0, 1, 1.0) // cold insert forces one eviction
	if c.Resident(0, 5) {
		t.Error("expert 5 (lowest popularity at equal recency) should have been evicted")
	}
	if !c.Resident(0, 7) || !c.Resident(0, 6) || !c.Resident(0, 1) {
		t.Error("eviction order perturbed by crash release")
	}
}

func TestCacheStatsString(t *testing.T) {
	s := CacheStats{DRAMHits: 2, NVMeFetches: 1, NVMeSeconds: 0.5, Evictions: 3, Invalidations: 4}
	want := "hostcache: 2 DRAM hits, 1 NVMe fetches (0.500s), 3 evictions, 4 invalidations"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

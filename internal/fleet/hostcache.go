package fleet

import "fmt"

// CacheStats counts the shared host tier's activity.
type CacheStats struct {
	// DRAMHits are master-copy lookups served from host DRAM; NVMeFetches
	// had to pull the master copy up from NVMe first, spending NVMeSeconds
	// of link time in total.
	DRAMHits    int
	NVMeFetches int
	NVMeSeconds float64
	// Inserts / Evictions / Bypasses track the DRAM working set: a fetched
	// master cached, the least-recently-used victim dropped to make room,
	// and a fetch streamed through without caching (only possible on a
	// degenerate empty working set).
	Inserts   int
	Evictions int
	Bypasses  int
	// Invalidations counts entries dropped for coherence when a migration
	// relocated the expert (the master copy is re-ranked under the new
	// placement's traffic, so the cached copy must not serve stale hits
	// unobserved — see HostCache.Invalidate).
	Invalidations int
}

// String renders a compact summary.
func (s CacheStats) String() string {
	return fmt.Sprintf("hostcache: %d DRAM hits, %d NVMe fetches (%.3fs), %d evictions, %d invalidations",
		s.DRAMHits, s.NVMeFetches, s.NVMeSeconds, s.Evictions, s.Invalidations)
}

// hcEntry is one cached master copy: which replicas hold HBM copies fetched
// through it (refs), and the ranking state eviction uses.
type hcEntry struct {
	pop     float64
	lastUse float64
	refs    map[int]int
	total   int // sum of refs
}

// HostCache is the node-level shared host-DRAM master-copy tier: one bounded
// working set of expert master copies serving every co-located replica.
// A replica's HBM miss asks the cache for the master copy (FetchMaster):
// DRAM-resident masters transfer at host-link speed (the caller's cost, not
// ours — we return only the extra NVMe hop), cold ones pay the NVMe hop once
// and are then warm for every neighbor until recency-first eviction (see
// evict) turns them over. Per-replica reference counts record which replicas
// hold HBM copies fetched through each master — retirement bookkeeping
// (ReleaseReplica) and coherence (Invalidate), not eviction pins.
//
// The cache is driven from the serving simulator's single-threaded event
// loop and is deliberately not safe for concurrent use. Eviction scans the
// whole map under a total order (popularity, then last use, then key), so
// victim choice is deterministic regardless of map iteration order.
type HostCache struct {
	layers, experts int
	slots           int
	nvmeSeconds     float64
	pop             []float64
	entries         map[int]*hcEntry
	stats           CacheStats
}

// NewHostCache builds the shared tier and seeds it with the slots most
// popular experts — the same deployment-time preload the per-replica static
// split models, so at one replica the shared tier's DRAM set matches the
// independent tier's. popularity is the affinity-mass oracle (for example
// expertmem.Manager.Popularity).
func NewHostCache(layers, experts, slots int, nvmeSeconds float64, popularity func(layer, expert int) float64) *HostCache {
	n := layers * experts
	c := &HostCache{
		layers: layers, experts: experts,
		slots:       slots,
		nvmeSeconds: nvmeSeconds,
		pop:         make([]float64, n),
		entries:     make(map[int]*hcEntry, slots),
	}
	for l := 0; l < layers; l++ {
		for e := 0; e < experts; e++ {
			c.pop[l*experts+e] = popularity(l, e)
		}
	}
	if slots <= 0 || slots >= n {
		// Unbounded: every master fits in DRAM; nothing to manage.
		c.slots = 0
		return c
	}
	// Seed the top-slots experts by popularity (ties by index, matching the
	// per-replica static split's ordering).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		// Insertion sort by (pop desc, index asc): n is small (layers*experts)
		// and this runs once.
		for j := i; j > 0 && c.pop[order[j]] > c.pop[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, k := range order[:slots] {
		c.entries[k] = &hcEntry{pop: c.pop[k], refs: make(map[int]int)}
	}
	return c
}

func (c *HostCache) key(layer, expert int) int { return layer*c.experts + expert }

// FetchMaster resolves replica rep's fetch of (layer, expert)'s master copy
// at simulated time now and returns the extra seconds beyond the host-link
// transfer: zero for a DRAM hit, the NVMe hop for a cold master. A cold
// master is cached afterwards (evicting the least popular unreferenced
// entry) so the next replica's fetch hits DRAM.
func (c *HostCache) FetchMaster(rep, layer, expert int, now float64) float64 {
	if c.slots == 0 {
		c.stats.DRAMHits++
		return 0
	}
	k := c.key(layer, expert)
	if e := c.entries[k]; e != nil {
		e.lastUse = now
		c.stats.DRAMHits++
		return 0
	}
	c.stats.NVMeFetches++
	c.stats.NVMeSeconds += c.nvmeSeconds
	if len(c.entries) >= c.slots && !c.evict() {
		c.stats.Bypasses++
		return c.nvmeSeconds
	}
	c.entries[k] = &hcEntry{pop: c.pop[k], lastUse: now, refs: make(map[int]int)}
	c.stats.Inserts++
	return c.nvmeSeconds
}

// evict drops the least-recently-used entry (ties by lowest popularity, then
// lowest key — a total order, so the full-map scan is deterministic despite
// map iteration). Recency, not popularity, picks the victim: what DRAM saves
// is the repeated NVMe fetch, and the masters fetched recently — the cold
// tail thrashing in and out of HBM — are exactly the ones about to be
// fetched again, by a neighbor replica or by the same one after its HBM
// working set turns over. The overall popularity ranking would instead keep
// the hot experts, which are HBM-resident and never fetched at all.
// References do not block eviction (a master backed by some replica's HBM
// copy costs nothing to drop until that copy is evicted); they exist for
// retirement and coherence bookkeeping. Returns false only on an empty
// cache.
func (c *HostCache) evict() bool {
	victim := -1
	var ve *hcEntry
	for k, e := range c.entries {
		if ve == nil || better(e, k, ve, victim) {
			victim, ve = k, e
		}
	}
	if ve == nil {
		return false
	}
	delete(c.entries, victim)
	c.stats.Evictions++
	return true
}

// better reports whether candidate (e, k) beats the current victim (ve, vk).
func better(e *hcEntry, k int, ve *hcEntry, vk int) bool {
	if e.lastUse != ve.lastUse {
		return e.lastUse < ve.lastUse
	}
	if e.pop != ve.pop {
		return e.pop < ve.pop
	}
	return k < vk
}

// Retain records that replica rep now holds an HBM copy fetched through this
// master. No-op when the master is not cached (evicted, bypassed, or already
// invalidated).
func (c *HostCache) Retain(rep, layer, expert int) {
	if c.slots == 0 {
		return
	}
	if e := c.entries[c.key(layer, expert)]; e != nil {
		e.refs[rep]++
		e.total++
	}
}

// Release drops one of replica rep's references (HBM eviction or relocation
// away). No-op when the master is not cached or rep holds no reference.
func (c *HostCache) Release(rep, layer, expert int) {
	if c.slots == 0 {
		return
	}
	e := c.entries[c.key(layer, expert)]
	if e == nil || e.refs[rep] == 0 {
		return
	}
	e.refs[rep]--
	e.total--
	if e.refs[rep] == 0 {
		delete(e.refs, rep)
	}
}

// Invalidate drops (layer, expert)'s cached master for coherence: a
// migration moved the expert, the popularity ranking it was cached under no
// longer reflects the live placement's traffic, and replicas installing the
// new placement must re-fetch through the current ranking rather than hit a
// stale entry forever. Outstanding replica references die with the entry
// (their later Releases no-op).
func (c *HostCache) Invalidate(layer, expert int) {
	if c.slots == 0 {
		return
	}
	k := c.key(layer, expert)
	if c.entries[k] != nil {
		delete(c.entries, k)
		c.stats.Invalidations++
	}
}

// ReleaseReplica drops every reference replica rep holds — called when a
// drained replica retires so its pins stop protecting entries.
func (c *HostCache) ReleaseReplica(rep int) {
	for _, e := range c.entries {
		if n := e.refs[rep]; n > 0 {
			e.total -= n
			delete(e.refs, rep)
		}
	}
}

// Resident reports whether (layer, expert)'s master copy is in DRAM.
func (c *HostCache) Resident(layer, expert int) bool {
	if c.slots == 0 {
		return true
	}
	return c.entries[c.key(layer, expert)] != nil
}

// Stats returns a copy of the counters.
func (c *HostCache) Stats() CacheStats { return c.stats }

package fleet

import "testing"

// scalerSpec is a defaulted spec with round numbers: one replica serves 10
// req/s at full utilization (100 tokens/s, 10 decode tokens) and
// TargetUtilization 1 keeps desired = ceil(rate/10).
func scalerSpec() Spec {
	return Spec{
		MinReplicas: 1, MaxReplicas: 8,
		TargetUtilization: 1,
		ForecastHalfLife:  1,
		ScaleUpCooldown:   2,
		ScaleDownCooldown: 6,
		DownscaleStreak:   3,
	}.WithDefaults()
}

func arrive(a *Autoscaler, n int) {
	for i := 0; i < n; i++ {
		a.ObserveArrival()
	}
}

func TestAutoscalerScaleUpJumpsToDesired(t *testing.T) {
	a := NewAutoscaler(scalerSpec())
	arrive(a, 50) // 50 req/s over [0,1): desired = ceil(50/10) = 5
	dec, act := a.Reconcile(1, 2, 100, 10)
	if !act || dec.Delta != 3 || dec.Desired != 5 {
		t.Fatalf("decision = %+v act=%v, want delta 3 to desired 5", dec, act)
	}
	if a.Rate() != 50 {
		t.Errorf("rate = %v, want 50 (first sample seeds the EWMA)", a.Rate())
	}
}

func TestAutoscalerScaleUpCooldown(t *testing.T) {
	a := NewAutoscaler(scalerSpec())
	arrive(a, 30)
	if _, act := a.Reconcile(1, 1, 100, 10); !act {
		t.Fatal("first scale-up should act")
	}
	// Demand keeps growing, but the up at t=1 blocks until t=3.
	arrive(a, 80)
	if dec, act := a.Reconcile(2, 3, 100, 10); act {
		t.Fatalf("scale-up inside cooldown acted: %+v", dec)
	}
	arrive(a, 80)
	if _, act := a.Reconcile(3.5, 3, 100, 10); !act {
		t.Fatal("scale-up after cooldown expiry should act")
	}
}

func TestAutoscalerDownscaleStreakAndSingleStep(t *testing.T) {
	a := NewAutoscaler(scalerSpec())
	// No arrivals at all: rate 0, desired clamps to MinReplicas 1 < committed 5.
	for i, now := range []float64{1, 2} {
		if dec, act := a.Reconcile(now, 5, 100, 10); act {
			t.Fatalf("reconcile %d acted before the streak filled: %+v", i, dec)
		} else if dec.Streak != i+1 {
			t.Fatalf("reconcile %d streak = %d, want %d", i, dec.Streak, i+1)
		}
	}
	dec, act := a.Reconcile(3, 5, 100, 10)
	if !act || dec.Delta != -1 {
		t.Fatalf("third low reconcile = %+v act=%v, want delta -1", dec, act)
	}
	// The streak resets after acting and the down-cooldown (6s) holds the next
	// drain until t=9 even though desired is still far below committed.
	for _, now := range []float64{4, 5, 6, 7, 8} {
		if dec, act := a.Reconcile(now, 4, 100, 10); act {
			t.Fatalf("drain inside ScaleDownCooldown acted at t=%v: %+v", now, dec)
		}
	}
	if _, act := a.Reconcile(9.5, 4, 100, 10); !act {
		t.Fatal("drain after cooldown expiry should act")
	}
}

func TestAutoscalerNoFlapAtBoundary(t *testing.T) {
	// A down must not be followed by an immediate up when the desired count
	// blips back (committed just shrank past it): the cross-block holds ups
	// for ScaleDownCooldown.
	a := NewAutoscaler(scalerSpec())
	// Rate ~=20 req/s: desired 2. Committed 3 -> streak toward a drain.
	for _, now := range []float64{1, 2, 3} {
		arrive(a, 20)
		dec, act := a.Reconcile(now, 3, 100, 10)
		if now < 3 && act {
			t.Fatalf("acted before streak at t=%v: %+v", now, dec)
		}
		if now == 3 && (!act || dec.Delta != -1) {
			t.Fatalf("expected drain at t=3, got %+v act=%v", dec, act)
		}
	}
	// Boundary rate wobbles up to 25 req/s: desired 3 > committed 2, but the
	// down at t=3 blocks ups until t=9.
	for _, now := range []float64{4, 5, 6, 7, 8} {
		arrive(a, 25)
		if dec, act := a.Reconcile(now, 2, 100, 10); act {
			t.Fatalf("up inside the post-down block acted at t=%v: %+v", now, dec)
		}
	}
	// And symmetrically: after the up finally lands, collapsing demand cannot
	// immediately drain it (ups block downs for ScaleUpCooldown): the streak
	// fills at t=11 but the up at t=9.5 blocks downs until t=11.5.
	arrive(a, 45)
	if _, act := a.Reconcile(9.5, 2, 100, 10); !act {
		t.Fatal("up after the block expired should act")
	}
	for _, now := range []float64{10, 10.5, 11} {
		if dec, act := a.Reconcile(now, 3, 100, 10); act {
			t.Fatalf("down inside the post-up block acted at t=%v: %+v", now, dec)
		}
	}
	if _, act := a.Reconcile(12, 3, 100, 10); !act {
		t.Fatal("down after the post-up block expired should act")
	}
}

func TestAutoscalerClamps(t *testing.T) {
	a := NewAutoscaler(scalerSpec())
	arrive(a, 10000) // desired would be 1000; clamps to MaxReplicas 8
	dec, act := a.Reconcile(1, 2, 100, 10)
	if !act || dec.Desired != 8 || dec.Delta != 6 {
		t.Fatalf("decision = %+v act=%v, want clamp to max 8", dec, act)
	}
	// Zero demand clamps to MinReplicas, never zero.
	b := NewAutoscaler(scalerSpec())
	for _, now := range []float64{1, 2, 3} {
		if dec, _ := b.Reconcile(now, 2, 100, 10); dec.Desired != 1 {
			t.Fatalf("desired = %d, want MinReplicas 1", dec.Desired)
		}
	}
}

func TestAutoscalerZeroCapacityHoldsSteady(t *testing.T) {
	// Without a capacity estimate desired stays at committed: no decision.
	a := NewAutoscaler(scalerSpec())
	arrive(a, 500)
	if dec, act := a.Reconcile(1, 2, 0, 10); act || dec.Desired != 2 {
		t.Fatalf("decision = %+v act=%v, want hold at committed", dec, act)
	}
}

func TestAutoscalerHoldUpdatesForecastOnly(t *testing.T) {
	a := NewAutoscaler(scalerSpec())
	arrive(a, 40)
	a.Hold(1)
	if a.Rate() != 40 {
		t.Errorf("rate after Hold = %v, want 40", a.Rate())
	}
	// The held-through arrivals are folded in; an immediate reconcile with no
	// new arrivals sees a decayed rate, not a double-counted one.
	dec, _ := a.Reconcile(2, 4, 100, 10)
	if dec.Rate >= 40 {
		t.Errorf("rate after idle second = %v, want decayed below 40", dec.Rate)
	}
}

func TestAutoscalerDeterministic(t *testing.T) {
	run := func() []Decision {
		a := NewAutoscaler(scalerSpec())
		var out []Decision
		arrivals := []int{5, 50, 80, 80, 20, 5, 0, 0, 0, 0, 0, 0, 0, 0}
		committed := 2
		for i, n := range arrivals {
			arrive(a, n)
			if dec, act := a.Reconcile(float64(i+1), committed, 100, 10); act {
				out = append(out, dec)
				committed += dec.Delta
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("decision counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) < 2 {
		t.Fatalf("expected at least one up and one down, got %+v", a)
	}
	if a[0].Delta <= 0 || a[len(a)-1].Delta != -1 {
		t.Errorf("expected spike up then drain down, got %+v", a)
	}
}

func TestAutoscalerEWMADecay(t *testing.T) {
	a := NewAutoscaler(scalerSpec()) // half-life 1s
	arrive(a, 100)
	a.Hold(1) // rate seeds at 100
	a.Hold(2) // one idle half-life: rate halves
	if r := a.Rate(); r < 49.9 || r > 50.1 {
		t.Errorf("rate after one idle half-life = %v, want ~50", r)
	}
	// Zero-dt tick is a no-op.
	a.Hold(2)
	if r := a.Rate(); r < 49.9 || r > 50.1 {
		t.Errorf("rate after zero-dt tick = %v, want unchanged ~50", r)
	}
}

// Package fleet is the node-level coordination tier above the serving
// simulator: it owns what co-located replicas share and how many of them
// exist. Three pieces compose it:
//
//   - a shared host-DRAM master-copy cache (HostCache): one popularity-ranked,
//     HostSlots-bounded DRAM tier per node instead of one per replica, with
//     per-replica reference counts and coherence invalidation on migration
//     install — a weight fetched by one replica is a DRAM hit for its
//     neighbors, and fleet-wide NVMe traffic collapses to one fetch per cold
//     expert instead of one per replica;
//
//   - an autoscaler (Autoscaler) running a reconciliation loop on the
//     simulated clock: a declarative Spec states the desired world (min/max
//     replicas, target utilization, cooldowns), an EWMA forecasts the arrival
//     rate, and each reconcile step moves the committed replica count one
//     decision toward desired — spiderpool's controller/agent split for
//     declaratively-specified elastic resource pools is the architectural
//     exemplar;
//
//   - admission control (Spec.Admit) that prices each arriving request's
//     expected time-to-complete — backlog tokens over a decode capacity that
//     includes the predicted expert-paging stall per token, from the same
//     residency oracles the placement solver uses — and defers or sheds when
//     that price, not raw queue depth, threatens the SLO.
//
// The package is pure policy plus bookkeeping: internal/serve owns the event
// loop and calls in; nothing here touches a clock or a goroutine.
package fleet

import (
	"fmt"

	"repro/internal/stats"
)

// Admission policy names for Spec.Admission.
const (
	// AdmissionQueue sheds by fleet-wide queue depth (requests), the classic
	// front-end guard: cheap, but blind to how expensive each queued request
	// is under expert paging.
	AdmissionQueue = "queue"
	// AdmissionPaging sheds by predicted completion time: backlog tokens over
	// a capacity estimate that folds in the residency model's predicted
	// expert-stall seconds per token. Under oversubscription a short queue of
	// paging-heavy requests can cost more than a long queue of warm ones;
	// this policy sees that, queue depth cannot.
	AdmissionPaging = "paging"
)

// Spec declares the fleet tier's desired state. The zero value is inert:
// every request admitted, no autoscaling, no shared cache — a serving run
// with an inert Spec is bit-identical to one with no fleet tier at all.
type Spec struct {
	// SharedHostCache replaces each replica's independent host-DRAM
	// master-copy tier with one node-level HostCache shared by all
	// co-located replicas. Requires the memory layer (Oversubscription > 0)
	// and a bounded host tier (HostSlots > 0).
	SharedHostCache bool

	// MinReplicas / MaxReplicas bound the autoscaler. MaxReplicas 0 disables
	// autoscaling (the replica count stays at ServeOptions.Replicas). When
	// enabled, MinReplicas defaults to 1 and the initial replica count must
	// lie inside [MinReplicas, MaxReplicas].
	MinReplicas int
	MaxReplicas int
	// TargetUtilization is the fraction of fleet decode capacity the
	// autoscaler provisions for: desired = ceil(forecast demand /
	// (TargetUtilization * per-replica capacity)). Default 0.75; must be in
	// (0, 1].
	TargetUtilization float64
	// ForecastHalfLife is the EWMA half-life in simulated seconds of the
	// arrival-rate forecast (default 5).
	ForecastHalfLife float64
	// ScaleUpCooldown / ScaleDownCooldown are the minimum simulated seconds
	// between consecutive scale-ups / scale-downs (defaults 2 and 6 — fast
	// out, slow back, the standard asymmetry against flapping).
	ScaleUpCooldown   float64
	ScaleDownCooldown float64
	// DownscaleStreak is how many consecutive reconcile rounds must want
	// fewer replicas before one is drained (default 3) — hysteresis so a
	// boundary arrival rate never flaps the fleet.
	DownscaleStreak int
	// ReconcileInterval is the reconciliation cadence in simulated seconds
	// (default 1).
	ReconcileInterval float64

	// Admission selects the admission-control policy: "" (admit everything),
	// AdmissionQueue, or AdmissionPaging.
	Admission string
	// SLOSeconds is the target request completion time the paging policy
	// defends (required > 0 with AdmissionPaging).
	SLOSeconds float64
	// MaxQueuePerReplica is the queue policy's shed threshold in queued+active
	// requests per live replica (default 64).
	MaxQueuePerReplica int
	// DeferSeconds is how long a deferred request waits before re-arriving
	// (default 0.25); MaxDefers bounds how many times one request may be
	// deferred before the choice is admit-or-shed (default 2).
	DeferSeconds float64
	MaxDefers    int
}

// Autoscaling reports whether the spec enables elastic replica scaling.
func (s *Spec) Autoscaling() bool { return s.MaxReplicas > 0 }

// WithDefaults resolves zero tunables to their defaults, returning a copy.
func (s Spec) WithDefaults() Spec {
	if s.TargetUtilization == 0 {
		s.TargetUtilization = 0.75
	}
	if s.ForecastHalfLife == 0 {
		s.ForecastHalfLife = 5
	}
	if s.ScaleUpCooldown == 0 {
		s.ScaleUpCooldown = 2
	}
	if s.ScaleDownCooldown == 0 {
		s.ScaleDownCooldown = 6
	}
	if s.DownscaleStreak == 0 {
		s.DownscaleStreak = 3
	}
	if s.ReconcileInterval == 0 {
		s.ReconcileInterval = 1
	}
	if s.MaxQueuePerReplica == 0 {
		s.MaxQueuePerReplica = 64
	}
	if s.DeferSeconds == 0 {
		s.DeferSeconds = 0.25
	}
	if s.MaxDefers == 0 {
		s.MaxDefers = 2
	}
	if s.Autoscaling() && s.MinReplicas == 0 {
		s.MinReplicas = 1
	}
	return s
}

// Validate rejects malformed specs. replicas is the deployment's initial
// replica count, which autoscaling bounds must bracket.
func (s *Spec) Validate(replicas int) error {
	switch {
	case s.MinReplicas < 0 || s.MaxReplicas < 0:
		return fmt.Errorf("fleet: MinReplicas and MaxReplicas must be non-negative, got %d/%d", s.MinReplicas, s.MaxReplicas)
	case s.MinReplicas > 0 && s.MaxReplicas == 0:
		return fmt.Errorf("fleet: MinReplicas %d set but MaxReplicas is 0 (autoscaling off); set MaxReplicas or drop the floor", s.MinReplicas)
	case s.MaxReplicas > 0 && s.MinReplicas > s.MaxReplicas:
		return fmt.Errorf("fleet: MinReplicas %d exceeds MaxReplicas %d", s.MinReplicas, s.MaxReplicas)
	case s.MaxReplicas > 0 && (replicas < s.MinReplicas || replicas > s.MaxReplicas):
		return fmt.Errorf("fleet: initial replica count %d outside autoscaler bounds [%d, %d]", replicas, s.MinReplicas, s.MaxReplicas)
	case s.TargetUtilization < 0 || s.TargetUtilization > 1:
		return fmt.Errorf("fleet: TargetUtilization must be in (0, 1] (zero for the default 0.75), got %v", s.TargetUtilization)
	case s.ForecastHalfLife < 0 || s.ScaleUpCooldown < 0 || s.ScaleDownCooldown < 0 ||
		s.ReconcileInterval < 0 || s.DeferSeconds < 0 || s.SLOSeconds < 0:
		return fmt.Errorf("fleet: time tunables must be non-negative")
	case s.DownscaleStreak < 0 || s.MaxQueuePerReplica < 0 || s.MaxDefers < 0:
		return fmt.Errorf("fleet: count tunables must be non-negative")
	}
	switch s.Admission {
	case "", AdmissionQueue, AdmissionPaging:
	default:
		return fmt.Errorf("fleet: unknown admission policy %q (want %q or %q)", s.Admission, AdmissionQueue, AdmissionPaging)
	}
	if s.Admission == AdmissionPaging && s.SLOSeconds == 0 {
		return fmt.Errorf("fleet: paging admission defends an SLO; set SLOSeconds > 0")
	}
	return nil
}

// Report summarizes the fleet tier's activity over one serving run.
type Report struct {
	// Arrivals counts distinct requests offered to the front-end; every one
	// is either admitted or shed (Arrivals == Admitted + Shed). Deferred
	// counts defer events — one request can contribute several.
	Arrivals, Admitted, Shed, Deferred int
	// ScaleUps / ScaleDowns count autoscaler actions; MaxLive and FinalLive
	// are the peak and end-of-run serving replica counts.
	ScaleUps, ScaleDowns int
	MaxLive, FinalLive   int
	// Replicas is the committed (live + warming) replica count over time.
	Replicas *stats.Series
	// HostCache is the shared host tier's counters (nil unless
	// Spec.SharedHostCache).
	HostCache *CacheStats
}

package fleet

// AdmissionDecision is the front-end's verdict on one arriving request.
type AdmissionDecision int

const (
	// Admit enqueues the request now.
	Admit AdmissionDecision = iota
	// Defer re-offers the request Spec.DeferSeconds later — brief overload
	// rides out a transient (a warming replica, a draining spike) without
	// dropping work. After Spec.MaxDefers the choice is admit-or-shed.
	Defer
	// Shed drops the request.
	Shed
)

// String names the decision.
func (d AdmissionDecision) String() string {
	switch d {
	case Admit:
		return "admit"
	case Defer:
		return "defer"
	case Shed:
		return "shed"
	}
	return "unknown"
}

// AdmissionInput is the fleet state one admission decision is priced on.
type AdmissionInput struct {
	// Queued is the fleet-wide queued+active request count; Live the serving
	// (non-draining) replica count.
	Queued int
	Live   int
	// BacklogTokens is the undecoded token backlog across the fleet
	// (queued requests at full decode length plus active remainders).
	BacklogTokens int
	// TokensPerSec is the fleet's decode capacity estimate including the
	// residency model's predicted expert-stall seconds per token — the same
	// oracle (static or Che, per ServeOptions.ResidencyModel) the placement
	// solver prices re-solves with. Zero means no estimate (admit).
	TokensPerSec float64
	// DecodeSeconds is the request's own pipelined decode stretch: its decode
	// length times the predicted (stall-inflated) iteration time. A decode
	// emits one token per iteration however much fleet throughput is spare,
	// so this floor, not DecodeTokens/TokensPerSec, is what the request adds
	// to its completion time.
	DecodeSeconds float64
	// Defers is how many times this request has already been deferred.
	Defers int
}

// Admit applies the spec's admission policy.
//
// The paging policy prices the request's expected completion time:
//
//	wait = BacklogTokens / TokensPerSec + DecodeSeconds
//
// — the backlog ahead of it drains at the fleet's stall-inflated decode
// rate, then the request itself decodes one token per (stall-inflated)
// iteration. When wait exceeds SLOSeconds the request is deferred (up to
// MaxDefers) and then shed: under a shifted hot set the same queue depth can
// be several times more expensive, and the policy sheds exactly when the
// paging-inflated backlog — not the raw count — breaks the SLO. The queue
// policy is the depth-threshold baseline.
func (s *Spec) Admit(in AdmissionInput) AdmissionDecision {
	over := false
	switch s.Admission {
	case AdmissionQueue:
		over = in.Live > 0 && in.Queued >= s.MaxQueuePerReplica*in.Live
	case AdmissionPaging:
		if in.TokensPerSec > 0 {
			wait := float64(in.BacklogTokens)/in.TokensPerSec + in.DecodeSeconds
			over = wait > s.SLOSeconds
		}
	default:
		return Admit
	}
	switch {
	case !over:
		return Admit
	case in.Defers < s.MaxDefers:
		return Defer
	default:
		return Shed
	}
}

package fleet

import (
	"strings"
	"testing"
)

func TestSpecWithDefaults(t *testing.T) {
	d := Spec{}.WithDefaults()
	if d.TargetUtilization != 0.75 || d.ForecastHalfLife != 5 ||
		d.ScaleUpCooldown != 2 || d.ScaleDownCooldown != 6 ||
		d.DownscaleStreak != 3 || d.ReconcileInterval != 1 ||
		d.MaxQueuePerReplica != 64 || d.DeferSeconds != 0.25 || d.MaxDefers != 2 {
		t.Errorf("defaults = %+v", d)
	}
	if d.MinReplicas != 0 {
		t.Errorf("MinReplicas defaulted to %d with autoscaling off, want 0", d.MinReplicas)
	}
	if a := (Spec{MaxReplicas: 4}).WithDefaults(); a.MinReplicas != 1 {
		t.Errorf("MinReplicas = %d with autoscaling on, want floor 1", a.MinReplicas)
	}
	// Explicit values survive defaulting.
	e := Spec{TargetUtilization: 0.5, MaxDefers: 7}.WithDefaults()
	if e.TargetUtilization != 0.5 || e.MaxDefers != 7 {
		t.Errorf("explicit tunables overwritten: %+v", e)
	}
}

func TestSpecAutoscaling(t *testing.T) {
	if (&Spec{}).Autoscaling() {
		t.Error("zero spec reports autoscaling on")
	}
	if !(&Spec{MaxReplicas: 2}).Autoscaling() {
		t.Error("MaxReplicas 2 reports autoscaling off")
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name     string
		spec     Spec
		replicas int
		wantErr  string
	}{
		{"inert ok", Spec{}, 2, ""},
		{"autoscaling ok", Spec{MinReplicas: 1, MaxReplicas: 4}, 2, ""},
		{"negative bounds", Spec{MinReplicas: -1}, 2, "non-negative"},
		{"floor without ceiling", Spec{MinReplicas: 2}, 2, "MaxReplicas is 0"},
		{"min over max", Spec{MinReplicas: 5, MaxReplicas: 4}, 4, "exceeds"},
		{"replicas outside bounds", Spec{MinReplicas: 2, MaxReplicas: 4}, 1, "outside autoscaler bounds"},
		{"utilization over one", Spec{TargetUtilization: 1.5}, 2, "TargetUtilization"},
		{"negative time", Spec{DeferSeconds: -1}, 2, "time tunables"},
		{"negative count", Spec{MaxDefers: -1}, 2, "count tunables"},
		{"unknown admission", Spec{Admission: "vibes"}, 2, "unknown admission policy"},
		{"paging without SLO", Spec{Admission: AdmissionPaging}, 2, "SLOSeconds"},
		{"paging with SLO ok", Spec{Admission: AdmissionPaging, SLOSeconds: 2}, 2, ""},
		{"queue ok", Spec{Admission: AdmissionQueue}, 2, ""},
	}
	for _, c := range cases {
		err := c.spec.Validate(c.replicas)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

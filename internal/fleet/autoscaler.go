package fleet

import "math"

// Decision is one reconcile step's outcome.
type Decision struct {
	// Time is the reconcile instant; Rate the EWMA arrival-rate forecast
	// (requests/second) it acted on.
	Time float64
	Rate float64
	// Desired is the clamped replica count the forecast wants; Delta is the
	// change actually committed this step (positive = scale up by Delta,
	// -1 = drain one replica). Delta 0 never reaches the caller.
	Desired int
	Delta   int
	// Streak is the consecutive-low-reconcile count at decision time
	// (scale-down hysteresis state, for the decision log).
	Streak int
}

// Autoscaler is the reconciliation loop's state: a declarative Spec is the
// desired world, Reconcile compares it against the committed replica count
// and moves one step toward it. Scale-ups jump straight to the clamped
// desired count (a flash crowd needs capacity now); scale-downs drain one
// replica at a time and only after DownscaleStreak consecutive reconciles
// agreed — the slow-back hysteresis that keeps a boundary arrival rate from
// flapping the fleet. All state advances only on Observe/Reconcile calls, so
// decisions are a pure function of the arrival sequence — deterministic for
// a fixed seed.
type Autoscaler struct {
	spec Spec

	pending  int // arrivals since the last rate update
	rate     float64
	lastTick float64
	haveRate bool

	upBlockedUntil   float64
	downBlockedUntil float64
	lowStreak        int
}

// NewAutoscaler builds the loop state for a defaulted spec.
func NewAutoscaler(spec Spec) *Autoscaler { return &Autoscaler{spec: spec} }

// ObserveArrival records one offered request (shed or admitted alike — the
// forecast tracks demand, not acceptance).
func (a *Autoscaler) ObserveArrival() { a.pending++ }

// Rate is the current arrival-rate forecast in requests/second.
func (a *Autoscaler) Rate() float64 { return a.rate }

// tick folds the arrivals since the last update into the EWMA forecast. The
// smoothing factor depends on the elapsed interval — alpha = 1 - exp(-dt *
// ln2 / halfLife) — so the forecast's half-life is ForecastHalfLife seconds
// of simulated time regardless of the reconcile cadence.
func (a *Autoscaler) tick(now float64) {
	dt := now - a.lastTick
	if dt <= 0 {
		return
	}
	inst := float64(a.pending) / dt
	a.pending = 0
	a.lastTick = now
	if !a.haveRate {
		a.rate = inst
		a.haveRate = true
		return
	}
	alpha := 1 - math.Exp(-dt*math.Ln2/a.spec.ForecastHalfLife)
	a.rate += alpha * (inst - a.rate)
}

// Hold updates the forecast without acting — called while a migration
// rollout is in flight and the replica set must not change under it.
func (a *Autoscaler) Hold(now float64) { a.tick(now) }

// Reconcile runs one loop step: update the forecast, compute the desired
// replica count for it, and decide. committed is the current live+warming
// replica count; perReplicaTokensPerSec one replica's decode capacity
// including predicted paging stall; decodeTokens the per-request decode
// length. Returns false when no change is committed (at target, clamped, in
// cooldown, or inside the downscale streak).
func (a *Autoscaler) Reconcile(now float64, committed int, perReplicaTokensPerSec float64, decodeTokens int) (Decision, bool) {
	a.tick(now)
	dec := Decision{Time: now, Rate: a.rate}
	desired := committed
	if per := a.spec.TargetUtilization * perReplicaTokensPerSec; per > 0 {
		desired = int(math.Ceil(a.rate * float64(decodeTokens) / per))
	}
	if desired < a.spec.MinReplicas {
		desired = a.spec.MinReplicas
	}
	if desired > a.spec.MaxReplicas {
		desired = a.spec.MaxReplicas
	}
	dec.Desired = desired
	switch {
	case desired > committed:
		a.lowStreak = 0
		if now < a.upBlockedUntil {
			return dec, false
		}
		a.upBlockedUntil = now + a.spec.ScaleUpCooldown
		// An up expresses confidence demand is high; hold any down until the
		// new capacity has served for a cooldown (anti-flap, one direction).
		if t := now + a.spec.ScaleUpCooldown; t > a.downBlockedUntil {
			a.downBlockedUntil = t
		}
		dec.Delta = desired - committed
		return dec, true
	case desired < committed:
		a.lowStreak++
		dec.Streak = a.lowStreak
		if a.lowStreak < a.spec.DownscaleStreak || now < a.downBlockedUntil {
			return dec, false
		}
		a.lowStreak = 0
		a.downBlockedUntil = now + a.spec.ScaleDownCooldown
		// ... and a down expresses confidence demand is low; a desired-count
		// blip right after (committed just shrank past it) must not bounce
		// the fleet straight back up (anti-flap, the other direction).
		if t := now + a.spec.ScaleDownCooldown; t > a.upBlockedUntil {
			a.upBlockedUntil = t
		}
		dec.Delta = -1
		return dec, true
	default:
		a.lowStreak = 0
		return dec, false
	}
}

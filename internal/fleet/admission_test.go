package fleet

import "testing"

func TestAdmissionDefaultAdmitsEverything(t *testing.T) {
	s := Spec{}.WithDefaults()
	in := AdmissionInput{Queued: 1 << 20, Live: 1, BacklogTokens: 1 << 30, TokensPerSec: 1, DecodeSeconds: 1e9}
	if d := s.Admit(in); d != Admit {
		t.Errorf("inert spec admitted %v, want Admit regardless of load", d)
	}
}

func TestAdmissionQueuePolicy(t *testing.T) {
	s := Spec{Admission: AdmissionQueue, MaxQueuePerReplica: 4}.WithDefaults()
	cases := []struct {
		queued, live, defers int
		want                 AdmissionDecision
	}{
		{queued: 7, live: 2, want: Admit},             // under 4*2
		{queued: 8, live: 2, want: Defer},             // at the bound, first offenses defer
		{queued: 8, live: 2, defers: 1, want: Defer},  // still under MaxDefers (2)
		{queued: 8, live: 2, defers: 2, want: Shed},   // defers exhausted
		{queued: 100, live: 0, want: Admit},           // no live replicas: depth undefined, admit
		{queued: 100, live: 1, defers: 5, want: Shed}, // way over
	}
	for _, c := range cases {
		d := s.Admit(AdmissionInput{Queued: c.queued, Live: c.live, Defers: c.defers})
		if d != c.want {
			t.Errorf("queue admit(queued=%d live=%d defers=%d) = %v, want %v",
				c.queued, c.live, c.defers, d, c.want)
		}
	}
}

func TestAdmissionPagingPolicy(t *testing.T) {
	s := Spec{Admission: AdmissionPaging, SLOSeconds: 2}.WithDefaults()
	cases := []struct {
		name string
		in   AdmissionInput
		want AdmissionDecision
	}{
		// wait = 100/100 + 0.5 = 1.5 <= 2
		{"under SLO", AdmissionInput{BacklogTokens: 100, TokensPerSec: 100, DecodeSeconds: 0.5}, Admit},
		// wait = 180/100 + 0.5 = 2.3 > 2
		{"backlog over SLO", AdmissionInput{BacklogTokens: 180, TokensPerSec: 100, DecodeSeconds: 0.5}, Defer},
		// The request's own pipelined decode stretch alone can break the SLO
		// even with an empty backlog.
		{"decode stretch over SLO", AdmissionInput{TokensPerSec: 100, DecodeSeconds: 2.5}, Defer},
		{"defers exhausted", AdmissionInput{BacklogTokens: 1000, TokensPerSec: 100, DecodeSeconds: 0.5, Defers: 2}, Shed},
		// No capacity estimate yet: optimistic admit.
		{"no estimate", AdmissionInput{BacklogTokens: 1 << 30}, Admit},
	}
	for _, c := range cases {
		if d := s.Admit(c.in); d != c.want {
			t.Errorf("%s: paging admit = %v, want %v", c.name, d, c.want)
		}
	}
}

func TestAdmissionDecisionString(t *testing.T) {
	for d, want := range map[AdmissionDecision]string{
		Admit: "admit", Defer: "defer", Shed: "shed", AdmissionDecision(42): "unknown",
	} {
		if got := d.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", d, got, want)
		}
	}
}

// Package scenario runs the declarative chaos scenario matrix: a checked-in
// catalog of fault-injection serving runs, each with an explicit pass/fail
// gate, executed by exflow-serve -scenarios and enforced in CI.
//
// Every row is a small experiment over the same synthetic serving system (no
// engine — a fixed kernel, a staged placement from a profiling trace, and a
// hand-set locality cost model of engine-like magnitude, mirroring the serve
// package's test fixture) with a chaos.Schedule injected and a quantitative
// acceptance gate evaluated on the resulting report: the no-fault control
// must be bit-identical to chaos-disabled, a crash arm must recover its P95
// tail, preemptible DMA must beat FIFO, retry exhaustion must shed instead
// of hang, and so on. Rows run concurrently with per-row deterministic seeds
// (rng.Mix64 off Config.Seed), and results keep catalog order, so the
// marshaled summary is byte-identical across runs — CI diffs it and a
// determinism test asserts it.
//
// Two scales share the catalog: "bench" (the checked-in BENCH_scenarios.json:
// long eras, tight gates — the 25% P95 recovery bound, strict preemptible-DMA
// win) and "smoke" (shorter eras and looser recovery gates for the quick CI
// pass; the structural gates — conservation, shedding, ledger shape — stay
// identical).
package scenario

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes a matrix run.
type Config struct {
	// Seed derives every row's deterministic serving seed (default 7).
	Seed uint64
	// Scale selects the matrix size: "bench" (default) or "smoke".
	Scale string
}

// scaleParams are the per-scale era lengths and gate tightness.
type scaleParams struct {
	warm          float64 // in-distribution era before faults land
	dur           float64 // main-era seconds
	recoveryGate  float64 // post-recovery P95 may exceed pre-crash by this factor
	strictPreempt bool    // preemptible DMA must strictly beat FIFO P95
}

var scales = map[string]scaleParams{
	"bench": {warm: 3, dur: 10, recoveryGate: 1.25, strictPreempt: true},
	"smoke": {warm: 2, dur: 5, recoveryGate: 2.0, strictPreempt: false},
}

// Result is one scenario row's outcome.
type Result struct {
	ID          string             `json:"id"`
	Category    string             `json:"category"` // control | crash | memory | fleet
	Priority    string             `json:"priority"` // P0 (acceptance-critical) .. P2
	Description string             `json:"description"`
	Pass        bool               `json:"pass"`
	Metrics     map[string]float64 `json:"metrics"`
	Notes       string             `json:"notes"`
}

// Summary is the machine-readable matrix outcome (BENCH_scenarios.json).
type Summary struct {
	Seed           uint64   `json:"seed"`
	Scale          string   `json:"scale"`
	GPUs           int      `json:"gpus"`
	Replicas       int      `json:"replicas"`
	Layers         int      `json:"layers"`
	Experts        int      `json:"experts"`
	MainEraSeconds float64  `json:"main_era_s"`
	RecoveryGate   float64  `json:"recovery_gate"`
	Scenarios      []Result `json:"scenarios"`
	AllPass        bool     `json:"all_pass"`
}

// Marshal renders the summary as stable indented JSON with a trailing
// newline. Metrics are maps, which encoding/json emits with sorted keys, and
// rows keep catalog order — the bytes are a pure function of (Seed, Scale).
func (s *Summary) Marshal() ([]byte, error) {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// system is the shared serving fixture every row copies from. serve.Run
// treats its inputs as read-only (the replay tests depend on it), so the
// placement and baseline counts are safe to share across concurrent rows.
type system struct {
	opts    serve.Options
	drifted *synth.DatasetProfile
}

func buildSystem() system {
	tp := topo.ForGPUs(8) // 2 nodes x 4 GPUs
	k := synth.NewKernel(synth.KernelParams{
		Seed: 0xBEEF, Layers: 12, Experts: 32, Strength: 0.85, DomainTilt: 8,
	})
	pile := synth.Pile()
	tr := trace.Collect(synth.NewKernelRouter(k, pile, 1), k.Layers, trace.SequentialIDs(2500, pile.TokenID))
	counts := tr.AllTransitionCounts()
	pl := placement.Staged(counts, k.Layers, k.Experts, tp, 5)
	cost := workload.LocalityModel{Fixed: 500e-6, PerToken: 5e-6, PerNodeHop: 1e-6, PerCrossHop: 4e-6}
	return system{
		opts: serve.Options{
			Topo:           tp,
			Kernel:         k,
			Placement:      pl,
			BaselineCounts: counts,
			Cost:           cost,
			ExpertBytes:    16 << 20,
			Replicas:       2,
			MaxBatch:       32,
			DecodeTokens:   16,
			Window:         2048,
			DriftThreshold: 0.02,
		},
		drifted: synth.Custom("drifted", []float64{0, 0, 0, 0, 1, 0}, 0xD81F),
	}
}

// knee returns a request rate at the given fraction of the fleet's modeled
// capacity (cost evaluated at typical dispatch locality).
func knee(o serve.Options, frac float64) float64 {
	perReplica := float64(o.MaxBatch) / o.Cost.Time(o.MaxBatch, 0.2, 0.5)
	return frac * perReplica * float64(o.Replicas) / float64(o.DecodeTokens)
}

func steady(o serve.Options, frac, dur float64) []serve.Phase {
	return []serve.Phase{{Name: "steady", Duration: dur, Rate: knee(o, frac), Dataset: synth.Pile()}}
}

// autoscaled is the shared fleet spec for the autoscaler rows: fast
// reconciling so scale actions land inside short eras.
func autoscaled(min int) *fleet.Spec {
	return &fleet.Spec{
		MinReplicas: min, MaxReplicas: 4,
		ReconcileInterval: 0.25,
		ScaleUpCooldown:   0.5,
		ScaleDownCooldown: 0.5,
		DownscaleStreak:   2,
		ForecastHalfLife:  0.5,
	}
}

type rowFunc func(sys system, sp scaleParams, seed uint64) (bool, map[string]float64, string, error)

type row struct {
	id, category, priority, description string
	run                                 rowFunc
}

// catalog is the scenario matrix. Order is the output order; gates reference
// the acceptance criteria each row exists to enforce.
func catalog() []row {
	return []row{
		{
			id: "control-no-fault", category: "control", priority: "P0",
			description: "An empty chaos schedule is bit-identical to chaos disabled: same makespan, requests, iterations, and latency percentiles, and no fault ledger.",
			run:         runControl,
		},
		{
			id: "crash-recovery-mid-drift", category: "crash", priority: "P0",
			description: "A replica crashes mid-drift and recovers: no admitted request is lost, the outage is visible in the tail, and post-recovery P95 returns to within the gate of pre-crash.",
			run:         runCrashRecoveryMidDrift,
		},
		{
			id: "crash-during-migration", category: "crash", priority: "P1",
			description: "A replica crashes inside a rolling re-placement window (probed from a fault-free run): the rollout baton passes on, the migration completes, and every request still finishes.",
			run:         runCrashDuringMigration,
		},
		{
			id: "degraded-link-oversub", category: "memory", priority: "P1",
			description: "A degraded host link under 2x oversubscription: the window is ledgered and stretches memory stalls without losing requests.",
			run:         runDegradedLink,
		},
		{
			id: "preempt-vs-fifo", category: "memory", priority: "P0",
			description: "Preemptible DMA under 2x oversubscription: demand fetches preempt speculative transfers and the P95 tail beats FIFO link scheduling.",
			run:         runPreemptVsFIFO,
		},
		{
			id: "flash-crowd-crash", category: "fleet", priority: "P1",
			description: "A replica crashes during a flash crowd under the autoscaler: the fleet scales up, the crash recovers, and arrival accounting stays exact.",
			run:         runFlashCrowdCrash,
		},
		{
			id: "autoscaler-replaces-crash", category: "fleet", priority: "P1",
			description: "A permanent crash under the autoscaler: the reconciler re-commissions replacement capacity and no admitted request is stranded.",
			run:         runAutoscalerReplacesCrash,
		},
		{
			id: "retry-exhaustion-shed", category: "memory", priority: "P0",
			description: "A near-dead link under a tight fetch timeout: retries exhaust and the affected requests shed gracefully (counted in the fault ledger) instead of wedging the batch.",
			run:         runRetryExhaustionShed,
		},
		{
			id: "drain-conservation", category: "fleet", priority: "P2",
			description: "Scale-down after a spike drains gracefully: retiring replicas hand their queues to survivors and finished + shed equals arrivals.",
			run:         runDrainConservation,
		},
	}
}

// RunAll executes the catalog concurrently and returns the summary. Rows are
// independent serving runs with rng.Mix64-derived seeds; results keep catalog
// order so the output is deterministic regardless of completion order.
func RunAll(cfg Config) (*Summary, error) {
	if cfg.Scale == "" {
		cfg.Scale = "bench"
	}
	sp, ok := scales[cfg.Scale]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scale %q (want smoke or bench)", cfg.Scale)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	sys := buildSystem()
	rows := catalog()
	results := make([]Result, len(rows))
	errs := make([]error, len(rows))
	var wg sync.WaitGroup
	for i, rw := range rows {
		wg.Add(1)
		go func(i int, rw row) {
			defer wg.Done()
			pass, met, notes, err := rw.run(sys, sp, rng.Mix64(cfg.Seed, 0x5CE11A, uint64(i)))
			if err != nil {
				errs[i] = fmt.Errorf("scenario %s: %w", rw.id, err)
				return
			}
			results[i] = Result{
				ID: rw.id, Category: rw.category, Priority: rw.priority,
				Description: rw.description, Pass: pass, Metrics: met, Notes: notes,
			}
		}(i, rw)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	all := true
	for _, r := range results {
		all = all && r.Pass
	}
	o := sys.opts
	return &Summary{
		Seed: cfg.Seed, Scale: cfg.Scale,
		GPUs: o.Topo.TotalGPUs(), Replicas: o.Replicas,
		Layers: o.Kernel.Layers, Experts: o.Kernel.Experts,
		MainEraSeconds: sp.dur, RecoveryGate: sp.recoveryGate,
		Scenarios: results, AllPass: all,
	}, nil
}

func runControl(sys system, sp scaleParams, seed uint64) (bool, map[string]float64, string, error) {
	o := sys.opts
	o.Seed = seed
	o.Phases = steady(o, 0.8, sp.dur)
	off, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	o.Chaos = &chaos.Schedule{}
	on, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	pass := on.Makespan == off.Makespan && on.Requests == off.Requests &&
		on.Iterations == off.Iterations &&
		on.Overall.P50 == off.Overall.P50 && on.Overall.P95 == off.Overall.P95 &&
		on.Overall.P99 == off.Overall.P99 && on.Faults == nil
	met := map[string]float64{
		"requests":   float64(on.Requests),
		"p95_s":      on.Overall.P95,
		"makespan_s": on.Makespan,
	}
	notes := "empty schedule bit-identical to chaos disabled"
	if !pass {
		notes = "empty chaos schedule perturbed the run"
	}
	return pass, met, notes, nil
}

func runCrashRecoveryMidDrift(sys system, sp scaleParams, seed uint64) (bool, map[string]float64, string, error) {
	o := sys.opts
	o.Seed = seed
	o.Adaptive = true
	rate := knee(o, 0.7)
	o.Phases = []serve.Phase{
		{Name: "warm", Duration: sp.warm, Rate: rate, Dataset: synth.Pile()},
		{Name: "drift", Duration: sp.dur, Rate: rate, Dataset: sys.drifted},
	}
	base, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	crashAt := sp.warm + 0.25*sp.dur
	const recoverAfter = 1.0
	o.Chaos = &chaos.Schedule{Faults: []chaos.Fault{chaos.Crash(crashAt, 1, recoverAfter)}}
	rep, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	fr := rep.Faults
	if fr == nil || len(fr.Crashes) != 1 {
		return false, nil, "fault ledger missing the crash", nil
	}
	end := sp.warm + sp.dur
	recAt := fr.Crashes[0].RecoveredAt
	pre := rep.WindowStats(0.5, crashAt)
	during := rep.WindowStats(crashAt, recAt)
	post := rep.WindowStats(recAt+1, end)
	met := map[string]float64{
		"pre_p95_s":    pre.P95,
		"during_p95_s": during.P95,
		"post_p95_s":   post.P95,
		"downtime_s":   fr.DowntimeSeconds,
		"redispatched": float64(fr.Redispatched),
		"requests":     float64(rep.Requests),
	}
	pass := fr.Recoveries == 1 && recAt > crashAt &&
		rep.Requests == base.Requests && // redispatch loses nothing
		pre.Requests > 0 && during.Requests > 0 && post.Requests > 0 &&
		during.P95 > pre.P95 && // the outage is visible
		post.P95 <= sp.recoveryGate*pre.P95 // and the tail comes back
	notes := fmt.Sprintf("post/pre P95 %.2fx (gate %.2fx); %s", post.P95/pre.P95, sp.recoveryGate, fr)
	return pass, met, notes, nil
}

func runCrashDuringMigration(sys system, sp scaleParams, seed uint64) (bool, map[string]float64, string, error) {
	o := sys.opts
	o.Seed = seed
	o.Adaptive = true
	rate := knee(o, 0.8)
	o.Phases = []serve.Phase{
		{Name: "warm", Duration: sp.warm, Rate: rate, Dataset: synth.Pile()},
		{Name: "drift", Duration: sp.dur, Rate: rate, Dataset: sys.drifted},
	}
	probe, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	if len(probe.Migrations) == 0 {
		return false, map[string]float64{"probe_migrations": 0},
			"probe run never migrated; no rollout window to crash into", nil
	}
	// Aim the crash at the middle of the probed rolling-migration window; the
	// chaos arm replays the same seed, so the rollout is in flight when the
	// replica dies and the baton-pass path is what is under test.
	m := probe.Migrations[0]
	crashAt := m.Time + 0.5*(m.Completed-m.Time)
	if m.Completed <= m.Time {
		crashAt = m.Time + 0.01
	}
	o.Chaos = &chaos.Schedule{Faults: []chaos.Fault{chaos.Crash(crashAt, 1, 1)}}
	rep, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	fr := rep.Faults
	if fr == nil || len(fr.Crashes) != 1 {
		return false, nil, "fault ledger missing the crash", nil
	}
	met := map[string]float64{
		"migration_window_s": m.Completed - m.Time,
		"crash_at_s":         crashAt,
		"migrations":         float64(len(rep.Migrations)),
		"requests":           float64(rep.Requests),
		"redispatched":       float64(fr.Redispatched),
	}
	pass := fr.Recoveries == 1 &&
		len(rep.Migrations) >= 1 && // rollout survived the dead baton holder
		rep.Requests == probe.Requests // nothing lost end to end
	notes := fmt.Sprintf("crash at %.3fs inside migration [%.3fs, %.3fs]; %s",
		crashAt, m.Time, m.Completed, fr)
	return pass, met, notes, nil
}

func runDegradedLink(sys system, sp scaleParams, seed uint64) (bool, map[string]float64, string, error) {
	o := sys.opts
	o.Seed = seed
	o.Oversubscription = 2
	o.CachePolicy = "affinity"
	o.Phases = steady(o, 0.7, sp.dur)
	base, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	o.Chaos = &chaos.Schedule{Faults: []chaos.Fault{chaos.DegradeLink(0.25*sp.dur, 0.5*sp.dur, 3)}}
	rep, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	fr := rep.Faults
	if fr == nil {
		return false, nil, "fault ledger missing", nil
	}
	met := map[string]float64{
		"stall_s":      rep.MemStallSeconds,
		"base_stall_s": base.MemStallSeconds,
		"p95_s":        rep.Overall.P95,
		"base_p95_s":   base.Overall.P95,
		"requests":     float64(rep.Requests),
	}
	pass := fr.LinkDegradeWindows == 1 &&
		rep.MemStallSeconds > base.MemStallSeconds &&
		rep.Requests == base.Requests
	notes := fmt.Sprintf("3x degraded link for %.1fs: stalls %.4fs vs %.4fs fault-free",
		0.5*sp.dur, rep.MemStallSeconds, base.MemStallSeconds)
	return pass, met, notes, nil
}

func runPreemptVsFIFO(sys system, sp scaleParams, seed uint64) (bool, map[string]float64, string, error) {
	o := sys.opts
	o.Seed = seed
	o.Oversubscription = 2
	o.CachePolicy = "affinity"
	o.Phases = steady(o, 0.75, sp.dur)
	fifo, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	o.Chaos = &chaos.Schedule{PreemptibleDMA: true}
	rep, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	fr := rep.Faults
	if fr == nil {
		return false, nil, "fault ledger missing", nil
	}
	met := map[string]float64{
		"preemptions":  float64(fr.Preemptions),
		"p95_s":        rep.Overall.P95,
		"fifo_p95_s":   fifo.Overall.P95,
		"stall_s":      rep.MemStallSeconds,
		"fifo_stall_s": fifo.MemStallSeconds,
	}
	p95Win := rep.Overall.P95 < fifo.Overall.P95
	if !sp.strictPreempt {
		p95Win = rep.Overall.P95 <= fifo.Overall.P95
	}
	pass := fr.Preemptions > 0 && p95Win &&
		rep.MemStallSeconds <= fifo.MemStallSeconds
	notes := fmt.Sprintf("%d preemptions; P95 %.4fs vs FIFO %.4fs",
		fr.Preemptions, rep.Overall.P95, fifo.Overall.P95)
	return pass, met, notes, nil
}

func runFlashCrowdCrash(sys system, sp scaleParams, seed uint64) (bool, map[string]float64, string, error) {
	o := sys.opts
	o.Seed = seed
	warm := knee(o, 0.5)
	o.Phases = []serve.Phase{
		{Name: "warm", Duration: sp.warm, Rate: warm, Dataset: synth.Pile()},
		{Name: "spike", Duration: 0.4 * sp.dur, Rate: 3 * warm, Dataset: synth.Pile()},
		{Name: "recover", Duration: 0.6 * sp.dur, Rate: warm, Dataset: synth.Pile()},
	}
	o.Fleet = autoscaled(2)
	crashAt := sp.warm + 0.2*sp.dur // inside the spike
	o.Chaos = &chaos.Schedule{Faults: []chaos.Fault{chaos.Crash(crashAt, 1, 1)}}
	rep, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	fr, fl := rep.Faults, rep.Fleet
	if fr == nil || fl == nil || len(fr.Crashes) != 1 {
		return false, nil, "fault or fleet ledger missing", nil
	}
	met := map[string]float64{
		"scale_ups":    float64(fl.ScaleUps),
		"arrivals":     float64(fl.Arrivals),
		"admitted":     float64(fl.Admitted),
		"shed":         float64(fl.Shed),
		"redispatched": float64(fr.Redispatched),
		"max_live":     float64(fl.MaxLive),
	}
	pass := fr.Recoveries == 1 && fl.ScaleUps > 0 &&
		fl.Arrivals == fl.Admitted+fl.Shed && // admission accounting exact
		rep.Requests == fl.Admitted // nothing admitted is stranded
	notes := fmt.Sprintf("crash at %.2fs during 3x spike; %d scale-ups, %d/%d admitted; %s",
		crashAt, fl.ScaleUps, fl.Admitted, fl.Arrivals, fr)
	return pass, met, notes, nil
}

func runAutoscalerReplacesCrash(sys system, sp scaleParams, seed uint64) (bool, map[string]float64, string, error) {
	o := sys.opts
	o.Seed = seed
	o.Phases = steady(o, 0.5, sp.warm+sp.dur)
	o.Fleet = autoscaled(2)
	o.Chaos = &chaos.Schedule{Faults: []chaos.Fault{chaos.CrashForever(sp.warm, 1)}}
	rep, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	fr, fl := rep.Faults, rep.Fleet
	if fr == nil || fl == nil || len(fr.Crashes) != 1 {
		return false, nil, "fault or fleet ledger missing", nil
	}
	met := map[string]float64{
		"scale_ups":  float64(fl.ScaleUps),
		"final_live": float64(fl.FinalLive),
		"admitted":   float64(fl.Admitted),
		"arrivals":   float64(fl.Arrivals),
	}
	pass := fr.Recoveries == 0 && // the slot itself never comes back
		fl.ScaleUps > 0 && // but the autoscaler replaced the capacity
		fl.Arrivals == fl.Admitted+fl.Shed &&
		rep.Requests == fl.Admitted
	notes := fmt.Sprintf("permanent crash at %.1fs; %d scale-ups replaced the slot; %s",
		sp.warm, fl.ScaleUps, fr)
	return pass, met, notes, nil
}

func runRetryExhaustionShed(sys system, sp scaleParams, seed uint64) (bool, map[string]float64, string, error) {
	o := sys.opts
	o.Seed = seed
	o.Oversubscription = 2
	o.CachePolicy = "lru"
	o.Phases = steady(o, 0.7, sp.dur)
	base, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	// A near-dead link for the rest of the run under a tight stall timeout:
	// demand fetches time out, retry, exhaust, and their requests shed.
	o.Chaos = &chaos.Schedule{
		Faults:       []chaos.Fault{chaos.DegradeLink(0.5, sp.dur, 50)},
		FetchTimeout: 0.002, FetchRetries: 1, FetchBackoff: 0.001,
	}
	rep, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	fr := rep.Faults
	if fr == nil {
		return false, nil, "fault ledger missing", nil
	}
	met := map[string]float64{
		"fetch_timeouts":  float64(fr.FetchTimeouts),
		"retry_exhausted": float64(fr.RetryExhausted),
		"shed":            float64(fr.ShedRetryExhausted),
		"finished":        float64(rep.Requests),
		"offered":         float64(base.Requests),
	}
	// Reaching here at all proves the batch never wedged: the run terminated.
	pass := fr.FetchTimeouts > 0 && fr.RetryExhausted > 0 &&
		fr.ShedRetryExhausted > 0 &&
		rep.Requests+fr.ShedRetryExhausted == base.Requests
	notes := fmt.Sprintf("%d finished + %d shed = %d offered; %s",
		rep.Requests, fr.ShedRetryExhausted, base.Requests, fr)
	return pass, met, notes, nil
}

func runDrainConservation(sys system, sp scaleParams, seed uint64) (bool, map[string]float64, string, error) {
	o := sys.opts
	o.Seed = seed
	warm := knee(o, 0.4)
	o.Phases = []serve.Phase{
		{Name: "spike", Duration: 0.3 * sp.dur, Rate: 4 * warm, Dataset: synth.Pile()},
		{Name: "calm", Duration: sp.warm + 0.7*sp.dur, Rate: warm / 2, Dataset: synth.Pile()},
	}
	o.Fleet = autoscaled(1)
	rep, err := serve.Run(o)
	if err != nil {
		return false, nil, "", err
	}
	fl := rep.Fleet
	if fl == nil {
		return false, nil, "fleet ledger missing", nil
	}
	met := map[string]float64{
		"scale_downs": float64(fl.ScaleDowns),
		"arrivals":    float64(fl.Arrivals),
		"admitted":    float64(fl.Admitted),
		"shed":        float64(fl.Shed),
		"finished":    float64(rep.Requests),
	}
	pass := fl.ScaleDowns > 0 &&
		fl.Arrivals == fl.Admitted+fl.Shed &&
		rep.Requests == fl.Admitted // drains strand nothing
	notes := fmt.Sprintf("%d scale-downs after the spike; %d admitted all finished",
		fl.ScaleDowns, fl.Admitted)
	return pass, met, notes, nil
}

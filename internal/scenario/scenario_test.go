package scenario

import (
	"bytes"
	"testing"
)

// The smoke scale is what CI runs on every push: the full catalog must pass
// its gates there, not just at bench scale.
func TestScenarioMatrixSmokeAllPass(t *testing.T) {
	sum, err := RunAll(Config{Scale: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Scenarios) < 8 {
		t.Fatalf("catalog shrank to %d rows, want >= 8", len(sum.Scenarios))
	}
	cats := map[string]bool{"control": true, "crash": true, "memory": true, "fleet": true}
	seen := map[string]bool{}
	for _, r := range sum.Scenarios {
		if seen[r.ID] {
			t.Errorf("duplicate scenario id %q", r.ID)
		}
		seen[r.ID] = true
		if !cats[r.Category] {
			t.Errorf("%s: unknown category %q", r.ID, r.Category)
		}
		if r.Priority == "" || r.Description == "" || r.Notes == "" {
			t.Errorf("%s: missing priority/description/notes", r.ID)
		}
		if len(r.Metrics) == 0 {
			t.Errorf("%s: empty metrics", r.ID)
		}
		if !r.Pass {
			t.Errorf("%s FAILED its gate: %s", r.ID, r.Notes)
		}
	}
	if !sum.AllPass {
		t.Error("all_pass is false")
	}
	if sum.Scale != "smoke" || sum.Seed == 0 || sum.GPUs == 0 {
		t.Errorf("summary header wrong: %+v", sum)
	}
}

// Satellite gate: the same seed and schedule must produce a byte-identical
// BENCH_scenarios.json — the matrix is a pure function of (Seed, Scale).
func TestScenarioMatrixByteIdenticalJSON(t *testing.T) {
	a, err := RunAll(Config{Seed: 42, Scale: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAll(Config{Seed: 42, Scale: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("scenario matrix replay is not byte-identical:\n--- a ---\n%s\n--- b ---\n%s", ab, bb)
	}
	if ab[len(ab)-1] != '\n' {
		t.Error("marshaled summary missing trailing newline")
	}
}

func TestScenarioMatrixUnknownScale(t *testing.T) {
	if _, err := RunAll(Config{Scale: "galactic"}); err == nil {
		t.Fatal("unknown scale must be rejected")
	}
}

package placement

import (
	"math"
	"testing"

	"repro/internal/affinity"
	"repro/internal/ilp"
	"repro/internal/synth"
	"repro/internal/topo"
	"repro/internal/trace"
)

func makeTrace(seed uint64, layers, experts, tokens int, strength float64) *trace.Trace {
	k := synth.NewKernel(synth.KernelParams{Seed: seed, Layers: layers, Experts: experts, Strength: strength})
	kr := synth.NewKernelRouter(k, synth.Pile(), 1)
	return trace.Collect(kr, layers, trace.SequentialIDs(tokens, nil))
}

func TestContiguousMatchesDeepspeedLayout(t *testing.T) {
	p := Contiguous(3, 8, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		for e := 0; e < 8; e++ {
			if p.Assign[j][e] != e/2 {
				t.Fatalf("expert %d layer %d on gpu %d", e, j, p.Assign[j][e])
			}
		}
	}
	if p.Capacity() != 2 {
		t.Fatal("capacity wrong")
	}
}

func TestRandomBalancedAndSeeded(t *testing.T) {
	a := Random(4, 16, 4, 7)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b := Random(4, 16, 4, 7)
	for j := range a.Assign {
		for e := range a.Assign[j] {
			if a.Assign[j][e] != b.Assign[j][e] {
				t.Fatal("same seed must give same placement")
			}
		}
	}
	c := Random(4, 16, 4, 8)
	diff := false
	for j := range a.Assign {
		for e := range a.Assign[j] {
			if a.Assign[j][e] != c.Assign[j][e] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestValidateCatchesImbalance(t *testing.T) {
	p := Contiguous(2, 8, 4)
	p.Assign[0][0] = 3 // now gpu0 has 1, gpu3 has 3
	if err := p.Validate(); err == nil {
		t.Fatal("expected imbalance error")
	}
	p2 := Contiguous(2, 8, 4)
	p2.Assign[1][5] = 99
	if err := p2.Validate(); err == nil {
		t.Fatal("expected invalid-gpu error")
	}
	p3 := NewPlacement(2, 7, 2)
	if err := p3.Validate(); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestCheckShapePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Contiguous(2, 7, 2) },
		func() { Contiguous(2, 8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCloneIndependent(t *testing.T) {
	p := Contiguous(2, 4, 2)
	c := p.Clone()
	c.Assign[0][0] = 1
	if p.Assign[0][0] != 0 {
		t.Fatal("clone aliases original")
	}
}

func TestExpertsOn(t *testing.T) {
	p := Contiguous(2, 8, 4)
	got := p.ExpertsOn(0, 2)
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("ExpertsOn wrong: %v", got)
	}
}

func TestCrossingsManual(t *testing.T) {
	// 2 layers, 4 experts, 2 gpus, contiguous: experts 0,1 on gpu0; 2,3 on
	// gpu1. Transition 0->1 local, 0->2 crossing.
	p := Contiguous(2, 4, 2)
	counts := [][][]float64{{
		{0, 3, 5, 0},
		{0, 0, 0, 0},
		{0, 0, 0, 7},
		{2, 0, 0, 0},
	}}
	got := p.Crossings(counts)
	if got != 5+2 {
		t.Fatalf("crossings %v, want 7", got)
	}
}

func TestNodeCrossingsCoarserThanGPU(t *testing.T) {
	tr := makeTrace(1, 4, 16, 800, 0.8)
	counts := tr.AllTransitionCounts()
	p := Random(4, 16, 8, 3)
	gpuCross := p.Crossings(counts)
	nodeCross := p.NodeCrossings(counts, 4) // 2 nodes of 4 gpus
	if nodeCross > gpuCross {
		t.Fatalf("node crossings %v cannot exceed gpu crossings %v", nodeCross, gpuCross)
	}
}

func TestLayerSweepImprovesOverContiguous(t *testing.T) {
	tr := makeTrace(2, 6, 16, 2000, 0.85)
	counts := tr.AllTransitionCounts()
	base := Contiguous(6, 16, 4).Crossings(counts)
	swept := LayerSweep(counts, 6, 16, 4, LayerSweepOptions{})
	if err := swept.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := swept.Crossings(counts); got >= base {
		t.Fatalf("sweep did not improve: %v vs baseline %v", got, base)
	}
}

func TestLayerSweepMonotoneNonWorsening(t *testing.T) {
	tr := makeTrace(3, 5, 8, 1000, 0.7)
	counts := tr.AllTransitionCounts()
	init := Random(5, 8, 4, 9)
	swept := LayerSweep(counts, 5, 8, 4, LayerSweepOptions{Init: init})
	if swept.Crossings(counts) > init.Crossings(counts) {
		t.Fatal("sweep worsened the objective")
	}
}

func TestAnnealNonWorsening(t *testing.T) {
	tr := makeTrace(4, 5, 16, 1500, 0.8)
	counts := tr.AllTransitionCounts()
	init := Contiguous(5, 16, 4)
	out := Anneal(counts, init, AnnealOptions{Iterations: 5000, Seed: 11})
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.Crossings(counts) > init.Crossings(counts) {
		t.Fatal("anneal returned worse-than-initial placement")
	}
}

func TestAnnealSingleGPUNoop(t *testing.T) {
	tr := makeTrace(5, 3, 4, 100, 0.5)
	counts := tr.AllTransitionCounts()
	init := Contiguous(3, 4, 1)
	out := Anneal(counts, init, AnnealOptions{Iterations: 100, Seed: 1})
	if out.Crossings(counts) != 0 {
		t.Fatal("single gpu placement must have zero crossings")
	}
}

func TestSolvePipelineBeatsGreedyAndRandom(t *testing.T) {
	tr := makeTrace(6, 8, 16, 3000, 0.85)
	counts := tr.AllTransitionCounts()
	aff := affinity.Estimate(tr)
	solved := Solve(counts, 8, 16, 4, 13)
	if err := solved.Validate(); err != nil {
		t.Fatal(err)
	}
	sObj := solved.Crossings(counts)
	gObj := Greedy(aff, 4).Crossings(counts)
	rObj := Random(8, 16, 4, 13).Crossings(counts)
	if sObj > gObj {
		t.Fatalf("solver (%v) should not lose to greedy (%v)", sObj, gObj)
	}
	if sObj >= rObj {
		t.Fatalf("solver (%v) should beat random (%v)", sObj, rObj)
	}
}

func TestGreedyValidAndBetterThanRandom(t *testing.T) {
	tr := makeTrace(7, 6, 16, 2500, 0.85)
	aff := affinity.Estimate(tr)
	counts := tr.AllTransitionCounts()
	g := Greedy(aff, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Crossings(counts) >= Random(6, 16, 4, 5).Crossings(counts) {
		t.Fatal("greedy should beat random on a strong-affinity trace")
	}
}

func TestSolveMatchesExactILPOnSmallInstances(t *testing.T) {
	// The heuristic pipeline must reach the certified global optimum on
	// instances small enough for the exact branch-and-bound.
	for trial := uint64(0); trial < 3; trial++ {
		tr := makeTrace(20+trial, 3, 4, 60, 0.8)
		counts := tr.AllTransitionCounts()
		solved := Solve(counts, 3, 4, 2, trial)
		heurObj := solved.Crossings(counts)
		pm := ilp.BuildPlacement(ilp.PlacementProblem{Layers: 3, Experts: 4, GPUs: 2, Counts: counts})
		_, exactObj, ok := pm.Solve(ilp.SolveOptions{})
		if !ok {
			t.Fatalf("trial %d: exact solver exhausted budget", trial)
		}
		if heurObj > exactObj+1e-6 {
			t.Fatalf("trial %d: heuristic %v worse than exact %v", trial, heurObj, exactObj)
		}
		if heurObj < exactObj-1e-6 {
			t.Fatalf("trial %d: heuristic %v beats 'exact' %v — exact solver bug", trial, heurObj, exactObj)
		}
	}
}

func TestStagedValidAndReducesNodeCrossings(t *testing.T) {
	tp := topo.Wilkes3(2) // 8 gpus
	tr := makeTrace(8, 6, 16, 3000, 0.85)
	counts := tr.AllTransitionCounts()
	staged := Staged(counts, 6, 16, tp, 17)
	if err := staged.Validate(); err != nil {
		t.Fatal(err)
	}
	if staged.GPUs != 8 {
		t.Fatal("staged placement gpu count wrong")
	}
	base := Contiguous(6, 16, 8)
	if staged.NodeCrossings(counts, 4) >= base.NodeCrossings(counts, 4) {
		t.Fatalf("staged should reduce inter-node crossings: %v vs %v",
			staged.NodeCrossings(counts, 4), base.NodeCrossings(counts, 4))
	}
}

func TestStagedSingleNodeDelegates(t *testing.T) {
	tp := topo.SingleNode(4)
	tr := makeTrace(9, 4, 8, 800, 0.8)
	counts := tr.AllTransitionCounts()
	p := Staged(counts, 4, 8, tp, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.GPUs != 4 {
		t.Fatal("gpu count wrong")
	}
}

func TestLocalityReport(t *testing.T) {
	tp := topo.Wilkes3(2)
	tr := makeTrace(10, 5, 16, 1000, 0.85)
	counts := tr.AllTransitionCounts()
	solved := Staged(counts, 5, 16, tp, 3)
	repSolved := solved.Locality(tr, tp)
	repBase := Contiguous(5, 16, 8).Locality(tr, tp)
	if math.Abs(repSolved.FracSameGPU+repSolved.SameNode/repSolved.Transitions+repSolved.FracCrossNode-1) > 1e-9 {
		t.Fatal("locality fractions must sum to 1")
	}
	if repSolved.FracSameGPU <= repBase.FracSameGPU {
		t.Fatalf("affinity placement should keep more tokens on-GPU: %v vs %v",
			repSolved.FracSameGPU, repBase.FracSameGPU)
	}
	if repSolved.Transitions != float64(1000*4) {
		t.Fatalf("transition count %v", repSolved.Transitions)
	}
}

func TestLocalityTopologyMismatchPanics(t *testing.T) {
	tr := makeTrace(11, 3, 8, 100, 0.5)
	p := Contiguous(3, 8, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Locality(tr, topo.Wilkes3(2))
}

func TestPopularityReplication(t *testing.T) {
	tr := makeTrace(12, 5, 16, 2000, 0.85)
	pr := NewPopularityReplication(tr, 4, 2)
	if pr.ExtraExpertSlots != 2*5 {
		t.Fatalf("extra slots %d", pr.ExtraExpertSlots)
	}
	fracWith := pr.FractionLocal(tr)
	none := NewPopularityReplication(tr, 4, 0)
	fracWithout := none.FractionLocal(tr)
	if fracWith <= fracWithout {
		t.Fatalf("replication should increase locality: %v vs %v", fracWith, fracWithout)
	}
	if none.ExtraExpertSlots != 0 {
		t.Fatal("k=0 must add no replicas")
	}
	// IsLocal: home experts are always local.
	if !pr.IsLocal(0, 0, pr.Base.Assign[0][0]) {
		t.Fatal("home expert must be local")
	}
}

func TestAnnealIncrementalDeltaConsistency(t *testing.T) {
	// The annealer tracks the objective incrementally; its reported best
	// must equal a from-scratch evaluation.
	tr := makeTrace(13, 6, 8, 800, 0.7)
	counts := tr.AllTransitionCounts()
	init := Random(6, 8, 4, 21)
	out := Anneal(counts, init, AnnealOptions{Iterations: 8000, Seed: 22})
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Re-annealing from the result must not find anything dramatically
	// better immediately (sanity that the search actually worked).
	again := Anneal(counts, out, AnnealOptions{Iterations: 2000, Seed: 23})
	if again.Crossings(counts) > out.Crossings(counts) {
		t.Fatal("anneal from better start returned worse result")
	}
}

package placement

import (
	"testing"

	"repro/internal/moe"
	"repro/internal/topo"
)

func TestDiffEmptyForIdentical(t *testing.T) {
	a := Contiguous(3, 8, 4)
	if moves := Diff(a, a.Clone()); len(moves) != 0 {
		t.Fatalf("identical placements should need no moves, got %d", len(moves))
	}
}

func TestDiffCountsChangedSlots(t *testing.T) {
	a := Contiguous(3, 8, 4)
	b := a.Clone()
	b.Assign[1][0], b.Assign[1][2] = b.Assign[1][2], b.Assign[1][0] // swap two experts
	moves := Diff(a, b)
	if len(moves) != 2 {
		t.Fatalf("swap should be 2 moves, got %d", len(moves))
	}
	for _, m := range moves {
		if m.Layer != 1 {
			t.Fatalf("unexpected move %+v", m)
		}
	}
}

func TestDiffShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Diff(Contiguous(3, 8, 4), Contiguous(3, 8, 2))
}

func TestCanonicalizeRemovesPureRelabeling(t *testing.T) {
	a := Random(4, 16, 4, 1)
	// b = a with GPUs globally relabeled (0<->3, 1<->2).
	perm := []int{3, 2, 1, 0}
	b := a.Clone()
	for j := range b.Assign {
		for e := range b.Assign[j] {
			b.Assign[j][e] = perm[a.Assign[j][e]]
		}
	}
	canon := Canonicalize(a, b)
	if moves := Diff(a, canon); len(moves) != 0 {
		t.Fatalf("pure relabeling should canonicalize to zero moves, got %d", len(moves))
	}
}

func TestCanonicalizePreservesCrossings(t *testing.T) {
	tr := makeTrace(31, 5, 16, 1000, 0.8)
	counts := tr.AllTransitionCounts()
	a := Contiguous(5, 16, 4)
	b := Random(5, 16, 4, 9)
	canon := Canonicalize(a, b)
	if err := canon.Validate(); err != nil {
		t.Fatal(err)
	}
	if canon.Crossings(counts) != b.Crossings(counts) {
		t.Fatalf("global relabeling must not change crossings: %v vs %v",
			canon.Crossings(counts), b.Crossings(counts))
	}
	if len(Diff(a, canon)) > len(Diff(a, b)) {
		t.Fatal("canonicalization increased the move count")
	}
}

func TestCanonicalizeTopoPreservesNodeStructure(t *testing.T) {
	// An unconstrained global permutation can relabel GPUs across node
	// boundaries, silently destroying the staged solver's inter-node
	// optimization; the topology-aware canonicalization must not.
	tp := topo.Wilkes3(4)
	tr := makeTrace(17, 6, 32, 3000, 0.85)
	counts := tr.AllTransitionCounts()
	a := Staged(counts, 6, 32, tp, 1)
	b := Staged(counts, 6, 32, tp, 99) // independent solve, same problem
	canon := CanonicalizeTopo(a, b, tp.GPUsPerNode)
	if err := canon.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := canon.Crossings(counts), b.Crossings(counts); got != want {
		t.Fatalf("GPU crossings changed: %v vs %v", got, want)
	}
	if got, want := canon.NodeCrossings(counts, tp.GPUsPerNode), b.NodeCrossings(counts, tp.GPUsPerNode); got != want {
		t.Fatalf("node crossings changed: %v vs %v", got, want)
	}
	if len(Diff(a, canon)) > len(Diff(a, b)) {
		t.Fatal("canonicalization increased the move count")
	}
}

func TestCanonicalizeTopoRemovesHierarchicalRelabeling(t *testing.T) {
	// b = a with nodes swapped and GPUs reversed inside each node: a pure
	// hierarchical relabeling must cost zero moves.
	a := Random(4, 16, 8, 3)
	perm := []int{7, 6, 5, 4, 3, 2, 1, 0}
	b := a.Clone()
	for j := range b.Assign {
		for e := range b.Assign[j] {
			b.Assign[j][e] = perm[a.Assign[j][e]]
		}
	}
	canon := CanonicalizeTopo(a, b, 4)
	if moves := Diff(a, canon); len(moves) != 0 {
		t.Fatalf("hierarchical relabeling should canonicalize to zero moves, got %d", len(moves))
	}
}

func TestPriceMigration(t *testing.T) {
	tp := topo.Wilkes3(2)
	a := Contiguous(4, 16, 8)
	b := a.Clone()
	b.Assign[0][0], b.Assign[0][2] = b.Assign[0][2], b.Assign[0][0] // intra-node-ish swap
	b.Assign[2][0], b.Assign[2][8] = b.Assign[2][8], b.Assign[2][0] // cross-node swap
	expertBytes := int(moe.GPTM(16).ExpertParams()) * 2             // fp16
	plan := PriceMigration(a, b, tp, expertBytes)
	if len(plan.Moves) != 4 {
		t.Fatalf("expected 4 moves, got %d", len(plan.Moves))
	}
	if plan.Bytes != 4*expertBytes {
		t.Fatalf("bytes %d", plan.Bytes)
	}
	if plan.Seconds <= 0 {
		t.Fatal("migration must take time")
	}
	if plan.CrossNodeMoves != 2 {
		t.Fatalf("cross-node moves %d, want 2", plan.CrossNodeMoves)
	}
}

func TestPriceMigrationZeroForRelabeling(t *testing.T) {
	tp := topo.Wilkes3(2)
	a := Random(3, 16, 8, 5)
	perm := []int{7, 6, 5, 4, 3, 2, 1, 0}
	b := a.Clone()
	for j := range b.Assign {
		for e := range b.Assign[j] {
			b.Assign[j][e] = perm[a.Assign[j][e]]
		}
	}
	plan := PriceMigration(a, b, tp, 1000)
	if len(plan.Moves) != 0 || plan.Seconds != 0 {
		t.Fatalf("relabeling-only migration should be free, got %d moves", len(plan.Moves))
	}
}

func TestBreakEvenIterations(t *testing.T) {
	plan := &MigrationPlan{Seconds: 2.0}
	if got := plan.BreakEvenIterations(0.5); got != 4 {
		t.Fatalf("break-even %v, want 4", got)
	}
	if plan.BreakEvenIterations(0) != -1 {
		t.Fatal("zero saving should return -1")
	}
}

func TestMigrationRealisticDriftScenario(t *testing.T) {
	// Drift: placement solved on one workload, re-solved on a shifted one.
	// The migration should touch only part of the cluster, not everything.
	tp := topo.Wilkes3(2)
	trA := makeTrace(41, 5, 16, 2000, 0.85)
	trB := makeTrace(41, 5, 16, 2000, 0.85) // same kernel -> similar counts
	pa := Staged(trA.AllTransitionCounts(), 5, 16, tp, 1)
	pb := Staged(trB.Sample(1500, 3).AllTransitionCounts(), 5, 16, tp, 2)
	plan := PriceMigration(pa, pb, tp, 1<<20)
	total := 5 * 16
	if len(plan.Moves) == total {
		t.Fatal("similar workloads should not require moving every expert")
	}
}

package placement

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// Replica-set placement support: the solver-side half of ROADMAP item 1
// ("spend slots on copies, not just moves"). A Placement may hold extra
// copies of hot experts (Placement.Extra); this file provides the replica
// bookkeeping, the router's copy-selection rule, the replicated crossing
// model, and AnnealReplicas — the replicate/dereplicate refinement anneal
// that spends a copy budget where the memory/Che objective says the slot
// and occupancy price is worth the crossing and load relief.

// Replicated reports whether any expert has more than one copy.
func (p *Placement) Replicated() bool {
	if p.Extra == nil {
		return false
	}
	for j := range p.Extra {
		for _, ex := range p.Extra[j] {
			if len(ex) > 0 {
				return true
			}
		}
	}
	return false
}

// Degree returns the number of copies of expert e at layer j (>= 1).
func (p *Placement) Degree(j, e int) int {
	return 1 + len(p.extraOf(j, e))
}

// TotalExtras counts the extra copies across the whole placement — the
// quantity a replication budget bounds.
func (p *Placement) TotalExtras() int {
	if p.Extra == nil {
		return 0
	}
	n := 0
	for j := range p.Extra {
		for _, ex := range p.Extra[j] {
			n += len(ex)
		}
	}
	return n
}

// ExtraCopies returns the extra-replica GPU list of expert e at layer j in
// ascending order (nil or empty when single-copy). Callers must not mutate
// the returned slice.
func (p *Placement) ExtraCopies(j, e int) []int {
	return p.extraOf(j, e)
}

// HasCopy reports whether GPU g holds a copy (primary or extra) of expert e
// at layer j.
func (p *Placement) HasCopy(j, e, g int) bool {
	if p.Assign[j][e] == g {
		return true
	}
	ex := p.extraOf(j, e)
	i := sort.SearchInts(ex, g)
	return i < len(ex) && ex[i] == g
}

// AddReplica installs an extra copy of expert e at layer j on GPU g,
// allocating the replica structure on first use. Panics if g already holds
// a copy.
func (p *Placement) AddReplica(j, e, g int) {
	if p.HasCopy(j, e, g) {
		panic("placement: AddReplica on a GPU already holding a copy")
	}
	if p.Extra == nil {
		p.Extra = make([][][]int, p.Layers)
		for l := range p.Extra {
			p.Extra[l] = make([][]int, p.Experts)
		}
	}
	ex := p.Extra[j][e]
	i := sort.SearchInts(ex, g)
	ex = append(ex, 0)
	copy(ex[i+1:], ex[i:])
	ex[i] = g
	p.Extra[j][e] = ex
}

// DropReplica removes the extra copy of expert e at layer j from GPU g.
// Panics if g holds no extra copy there (the primary cannot be dropped).
func (p *Placement) DropReplica(j, e, g int) {
	ex := p.extraOf(j, e)
	i := sort.SearchInts(ex, g)
	if i >= len(ex) || ex[i] != g {
		panic("placement: DropReplica of a copy that does not exist")
	}
	p.Extra[j][e] = append(ex[:i], ex[i+1:]...)
}

// relabelExtra maps every extra-replica GPU id through a permutation and
// restores each list's ascending order — the replica half of the
// canonicalization relabeling (the primary half rewrites Assign). permTo is
// a bijection and extras never equal their primary, so relabeled extras
// cannot collide with the relabeled primary.
func (p *Placement) relabelExtra(permTo []int) {
	if p.Extra == nil {
		return
	}
	for j := range p.Extra {
		for _, ex := range p.Extra[j] {
			for i, g := range ex {
				ex[i] = permTo[g]
			}
			sort.Ints(ex)
		}
	}
}

// normalizeExtra drops an all-empty replica structure back to nil so
// degree-1 placements stay in the canonical single-copy representation.
func (p *Placement) normalizeExtra() {
	if p.Extra != nil && !p.Replicated() {
		p.Extra = nil
	}
}

// PickReplica returns the cheapest live copy of expert e at layer j for a
// router at GPU `at`: the copy with the lowest hop class from the token's
// current position (class(at, g) — the whole point of replicating is keeping
// the transition chain local), ties broken least-loaded so the batch still
// spreads across equally-placed copies, then by lowest GPU id —
// deterministic for any fixed load state. load and class may each be nil to
// drop that criterion. Single-copy experts return the primary without
// touching either signal: the pre-replication routing path, bit for bit.
func (p *Placement) PickReplica(j, e, at int, load []int, class func(from, to int) int) int {
	best := p.Assign[j][e]
	if p.Extra == nil {
		return best
	}
	ex := p.Extra[j][e]
	if len(ex) == 0 {
		return best
	}
	for _, g := range ex {
		if class != nil {
			cg, cb := class(at, g), class(at, best)
			if cg != cb {
				if cg < cb {
					best = g
				}
				continue
			}
		}
		if load != nil {
			if load[g] != load[best] {
				if load[g] < load[best] {
					best = g
				}
				continue
			}
		}
		if g < best {
			best = g
		}
	}
	return best
}

// copiesIntersect reports whether some copy of (j1, e1) shares a GPU with
// some copy of (j2, e2) — the replicated non-crossing condition.
func (p *Placement) copiesIntersect(j1, e1, j2, e2 int) bool {
	if p.HasCopy(j2, e2, p.Assign[j1][e1]) {
		return true
	}
	for _, g := range p.extraOf(j1, e1) {
		if p.HasCopy(j2, e2, g) {
			return true
		}
	}
	return false
}

// copiesShareNode reports whether some copy pair of (j1, e1) and (j2, e2)
// lands on the same node.
func (p *Placement) copiesShareNode(j1, e1, j2, e2, gpusPerNode int) bool {
	check := func(g int) bool {
		n := g / gpusPerNode
		if p.Assign[j2][e2]/gpusPerNode == n {
			return true
		}
		for _, h := range p.extraOf(j2, e2) {
			if h/gpusPerNode == n {
				return true
			}
		}
		return false
	}
	if check(p.Assign[j1][e1]) {
		return true
	}
	for _, g := range p.extraOf(j1, e1) {
		if check(g) {
			return true
		}
	}
	return false
}

// TransitionHop returns the best hop class (in topo.HopClass order: 0 same
// GPU, 1 same node, 2 cross node) a replica-aware router can achieve for the
// transition (j, from) -> (j+1, to) on a homogeneous topology with
// gpusPerNode GPUs per node: same-GPU when the copy sets intersect,
// same-node when some copy pair shares a node. Single-copy placements reduce
// to classifying the two primaries.
func (p *Placement) TransitionHop(j, from, to, gpusPerNode int) int {
	if p.copiesIntersect(j, from, j+1, to) {
		return 0
	}
	if p.copiesShareNode(j, from, j+1, to, gpusPerNode) {
		return 1
	}
	return 2
}

// crossingsReplicated is Formula 8 lifted to replica sets: a transition is
// non-crossing when the two experts' copy sets intersect — the router can
// keep the token in place by running both on the shared GPU. An optimistic
// bound (every token is assumed to sit on the right copy), which is the
// standard relaxation for replication-aware placement search; the serve
// simulator realizes it with the least-loaded/locality-first router.
func (p *Placement) crossingsReplicated(counts [][][]float64) float64 {
	total := 0.0
	for j := 0; j < p.Layers-1 && j < len(counts); j++ {
		for from := 0; from < p.Experts; from++ {
			row := counts[j][from]
			for to, w := range row {
				if w != 0 && !p.copiesIntersect(j, from, j+1, to) {
					total += w
				}
			}
		}
	}
	return total
}

// applyReplicaBudget is the solver pipelines' single replication hook: when
// budget > 0 it runs AnnealReplicas over the finished single-copy placement
// (seed salted off the pipeline seed so the pass is independent of the swap
// anneal's stream), otherwise it returns the placement untouched. Every
// pipeline applies it exactly once, at the very end — never inside staged
// sub-solves, whose local GPU numbering would not survive reassembly.
func applyReplicaBudget(counts [][][]float64, p *Placement, budget int, seed uint64, mem *MemoryObjective, ix *TransIndex) *Placement {
	if budget <= 0 {
		return p
	}
	return AnnealReplicas(counts, p, ReplicaOptions{
		Budget: budget,
		Seed:   rng.Mix64(seed, 0x5EB11CA, 0),
		Memory: mem,
		Index:  ix,
	})
}

// ReplicaOptions tunes AnnealReplicas.
type ReplicaOptions struct {
	// Budget is the maximum number of extra copies across the placement;
	// zero disables the pass entirely (callers should not invoke it).
	Budget int
	// Iterations is the number of proposed replicate/dereplicate moves;
	// zero means 20000.
	Iterations int
	// StartTemp and EndTemp bound the geometric cooling schedule as
	// fractions of the initial objective; zeros mean 0.02 and 1e-5 (the
	// swap anneal's defaults).
	StartTemp, EndTemp float64
	Seed               uint64
	// Memory prices the slot/occupancy cost of every copy under its
	// residency model (each copy of an expert carries mass/degree of its
	// demand — the router splits the load). Nil or inactive leaves copies
	// free in memory terms, pricing crossings only.
	Memory *MemoryObjective
	// Index optionally supplies a prebuilt sparse transition index; nil
	// builds one.
	Index *TransIndex
}

// AnnealReplicas refines a placement by replicate/dereplicate moves under a
// Metropolis acceptance rule: each proposal adds a copy of one expert to a
// GPU not yet holding it (budget permitting) or drops an existing extra
// copy. The move delta blends the replicated crossing relief (copy sets
// intersecting more transitions) with the memory objective's price for the
// copy's slot and occupancy, in the same units as the swap anneal. The
// primaries are never touched, so the balance constraint (Formula 9) holds
// throughout; only exclusivity (Formula 10) is relaxed, by at most Budget
// copies. The returned placement is the best state encountered, normalized
// back to the single-copy representation when no copy survived.
func AnnealReplicas(counts [][][]float64, init *Placement, opts ReplicaOptions) *Placement {
	if opts.Budget <= 0 || init.GPUs == 1 {
		return init.Clone()
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 20000
	}
	startT, endT := opts.StartTemp, opts.EndTemp
	if startT <= 0 {
		startT = 0.02
	}
	if endT <= 0 {
		endT = 1e-5
	}
	ix := opts.Index
	if ix == nil {
		ix = NewTransIndex(counts, init.Layers, init.Experts)
	}
	rs := newRepState(init.Clone(), opts.Memory, ix)
	cur := rs.p.Crossings(counts)
	invHop := 0.0
	if rs.memActive {
		invHop = 1 / opts.Memory.HopSeconds
		cur += rs.memSum * invHop
	}
	best := rs.p.Clone()
	bestObj := cur
	scale := cur
	if scale == 0 {
		scale = 1
	}
	r := rng.New(opts.Seed)
	cool := math.Pow(endT/startT, 1/float64(iters))
	temp := startT * scale
	for it := 0; it < iters; it++ {
		j := r.Intn(rs.p.Layers)
		e := r.Intn(rs.p.Experts)
		g := r.Intn(rs.p.GPUs)
		add := !rs.p.HasCopy(j, e, g)
		if add && rs.extras >= opts.Budget {
			temp *= cool
			continue
		}
		if !add && rs.p.Assign[j][e] == g {
			temp *= cool // the primary cannot be dropped
			continue
		}
		delta := rs.crossDelta(j, e, g, add)
		memDelta := rs.memDelta(j, e, g, add)
		delta += memDelta * invHop
		if delta <= 0 || r.Float64() < math.Exp(-delta/temp) {
			rs.commit(j, e, g, add)
			cur += delta
			if cur < bestObj {
				bestObj = cur
				best = rs.p.Clone()
			}
		}
		temp *= cool
	}
	best.normalizeExtra()
	return best
}

// repState is AnnealReplicas' incremental view: per-GPU copy sets with
// per-copy deflated masses (mass/degree — the router splits an expert's
// demand across its copies) and cached per-GPU stall under the memory
// objective's residency model.
type repState struct {
	p         *Placement
	mo        *MemoryObjective
	ix        *TransIndex
	memActive bool
	deg       []int32   // packed id -> copy count
	gpuItems  [][]int32 // per GPU: packed ids held (unordered)
	cost      []float64 // per GPU stall seconds (memActive only)
	cheT      []float64 // per GPU warm-start T (Che model only)
	memSum    float64
	extras    int
	idBuf     []int32
	massBuf   []float64
	pend      []pendCost // affected-GPU costs from the last memDelta
}

type pendCost struct {
	g    int
	cost float64
	t    float64
}

func newRepState(p *Placement, mo *MemoryObjective, ix *TransIndex) *repState {
	rs := &repState{
		p:  p,
		mo: mo,
		ix: ix,
		// Active()'s Slots < PerGPU shortcut only holds for single-copy
		// placements: extra copies can overflow even an exactly-provisioned
		// (1x) slot budget, so the copy pass prices memory whenever an
		// objective exists at all.
		memActive: mo != nil && mo.Slots > 0,
		deg:       make([]int32, p.Layers*p.Experts),
		gpuItems:  make([][]int32, p.GPUs),
	}
	for j := 0; j < p.Layers; j++ {
		for e := 0; e < p.Experts; e++ {
			id := int32(j*p.Experts + e)
			rs.deg[id] = int32(p.Degree(j, e))
			rs.gpuItems[p.Assign[j][e]] = append(rs.gpuItems[p.Assign[j][e]], id)
			for _, g := range p.extraOf(j, e) {
				rs.gpuItems[g] = append(rs.gpuItems[g], id)
				rs.extras++
			}
		}
	}
	if rs.memActive {
		rs.cost = make([]float64, p.GPUs)
		rs.cheT = make([]float64, p.GPUs)
		for g := range rs.gpuItems {
			rs.cost[g], rs.cheT[g] = rs.gpuStall(g, -1, 0, false)
			rs.memSum += rs.cost[g]
		}
	}
	return rs
}

// gpuStall prices GPU g's copy set under the objective's residency model,
// with an optional hypothetical toggle: when toggleID >= 0, the copy of
// toggleID on toggleG is added (toggleAdd) or removed, and every copy of
// toggleID prices at its post-toggle deflated mass. Returns the stall and
// the characteristic time used (Che model; +Inf otherwise).
func (rs *repState) gpuStall(g int, toggleID int32, toggleG int, toggleAdd bool) (float64, float64) {
	mo := rs.mo
	rs.idBuf = rs.idBuf[:0]
	rs.massBuf = rs.massBuf[:0]
	for _, id := range rs.gpuItems[g] {
		if id == toggleID && !toggleAdd && g == toggleG {
			continue
		}
		rs.idBuf = append(rs.idBuf, id)
	}
	if toggleID >= 0 && toggleAdd && g == toggleG {
		rs.idBuf = append(rs.idBuf, toggleID)
	}
	for _, id := range rs.idBuf {
		d := float64(rs.deg[id])
		if id == toggleID {
			if toggleAdd {
				d++
			} else {
				d--
			}
		}
		rs.massBuf = append(rs.massBuf, mo.mass[id]/d)
	}
	if mo.Model == ResidencyChe {
		warm := 0.0
		if rs.cheT != nil {
			warm = rs.cheT[g]
			if math.IsInf(warm, 1) {
				warm = 0
			}
		}
		return mo.cheStallMass(rs.idBuf, rs.massBuf, warm)
	}
	return mo.staticStallMass(rs.idBuf, rs.massBuf), math.Inf(1)
}

// memDelta prices the memory-term change of toggling a copy of (j, e) on g:
// the toggled GPU gains or loses an item, and every other GPU holding a copy
// re-prices at the new deflated mass. The affected costs are cached for the
// matching commit.
func (rs *repState) memDelta(j, e, g int, add bool) float64 {
	if !rs.memActive {
		return 0
	}
	id := int32(j*rs.p.Experts + e)
	rs.pend = rs.pend[:0]
	delta := 0.0
	price := func(gpu int) {
		c, t := rs.gpuStall(gpu, id, g, add)
		rs.pend = append(rs.pend, pendCost{gpu, c, t})
		delta += c - rs.cost[gpu]
	}
	price(rs.p.Assign[j][e])
	seen := rs.p.Assign[j][e] == g
	for _, h := range rs.p.extraOf(j, e) {
		price(h)
		if h == g {
			seen = true
		}
	}
	if add && !seen {
		price(g)
	}
	return delta
}

// crossDelta prices the replicated-crossing change of toggling a copy of
// (j, e) on g, scanning only the transitions incident to e.
func (rs *repState) crossDelta(j, e, g int, add bool) float64 {
	p := rs.p
	delta := 0.0
	// wasCross/isCross: intersection with the copy set of (j, e) before and
	// after the toggle. After an add, any neighbor holding a copy on g
	// becomes non-crossing; after a drop, a neighbor that only met us on g
	// becomes crossing.
	contrib := func(nj, ne int, w float64) {
		old := !p.copiesIntersect(nj, ne, j, e)
		neu := old
		if add {
			if old && p.HasCopy(nj, ne, g) {
				neu = false
			}
		} else if !old {
			neu = !rs.intersectExcept(nj, ne, j, e, g)
		}
		if old != neu {
			if neu {
				delta += w
			} else {
				delta -= w
			}
		}
	}
	if j > 0 && j-1 < len(rs.ix.pairs) {
		pair := &rs.ix.pairs[j-1]
		for i := pair.predStart[e]; i < pair.predStart[e+1]; i++ {
			contrib(j-1, int(pair.predFrom[i]), pair.predW[i])
		}
	}
	if j < p.Layers-1 && j < len(rs.ix.pairs) {
		pair := &rs.ix.pairs[j]
		for i := pair.succStart[e]; i < pair.succStart[e+1]; i++ {
			contrib(j+1, int(pair.succTo[i]), pair.succW[i])
		}
	}
	return delta
}

// intersectExcept reports whether the copy sets of (j1, e1) and (j2, e2)
// intersect when (j2, e2)'s copy on `exclude` is ignored.
func (rs *repState) intersectExcept(j1, e1, j2, e2, exclude int) bool {
	p := rs.p
	check := func(g int) bool { return g != exclude && p.HasCopy(j2, e2, g) }
	if check(p.Assign[j1][e1]) {
		return true
	}
	for _, g := range p.extraOf(j1, e1) {
		if check(g) {
			return true
		}
	}
	return false
}

// commit applies a move previously priced by crossDelta+memDelta.
func (rs *repState) commit(j, e, g int, add bool) {
	id := int32(j*rs.p.Experts + e)
	if add {
		rs.p.AddReplica(j, e, g)
		rs.gpuItems[g] = append(rs.gpuItems[g], id)
		rs.deg[id]++
		rs.extras++
	} else {
		rs.p.DropReplica(j, e, g)
		items := rs.gpuItems[g]
		for i, it := range items {
			if it == id {
				items[i] = items[len(items)-1]
				rs.gpuItems[g] = items[:len(items)-1]
				break
			}
		}
		rs.deg[id]--
		rs.extras--
	}
	if rs.memActive {
		for _, pc := range rs.pend {
			rs.memSum += pc.cost - rs.cost[pc.g]
			rs.cost[pc.g] = pc.cost
			rs.cheT[pc.g] = pc.t
		}
	}
}

package placement

import (
	"testing"

	"repro/internal/topo"
)

func TestWeightedSweepValid(t *testing.T) {
	tp := topo.Wilkes3(2)
	tr := makeTrace(51, 6, 16, 2000, 0.85)
	counts := tr.AllTransitionCounts()
	p := WeightedSweep(counts, 6, 16, tp, 5, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.GPUs != 8 {
		t.Fatal("gpu count wrong")
	}
}

func TestWeightedSweepBeatsContiguousOnBlendedObjective(t *testing.T) {
	tp := topo.Wilkes3(2)
	tr := makeTrace(52, 6, 16, 2500, 0.85)
	counts := tr.AllTransitionCounts()
	const penalty = 5.0
	blended := func(p *Placement) float64 {
		return p.Crossings(counts) + penalty*p.NodeCrossings(counts, tp.GPUsPerNode)
	}
	base := Contiguous(6, 16, 8)
	w := WeightedSweep(counts, 6, 16, tp, penalty, 1)
	if blended(w) >= blended(base) {
		t.Fatalf("weighted sweep (%v) should beat contiguous (%v) on its own objective",
			blended(w), blended(base))
	}
}

func TestWeightedSweepCompetitiveWithStaged(t *testing.T) {
	// Neither dominates in general; the weighted solve must stay within a
	// reasonable factor of the staged solve on the blended objective, and
	// specifically should not be catastrophically worse on node crossings.
	tp := topo.Wilkes3(2)
	tr := makeTrace(53, 6, 16, 2500, 0.85)
	counts := tr.AllTransitionCounts()
	const penalty = 5.0
	blended := func(p *Placement) float64 {
		return p.Crossings(counts) + penalty*p.NodeCrossings(counts, tp.GPUsPerNode)
	}
	w := WeightedSweep(counts, 6, 16, tp, penalty, 1)
	s := Staged(counts, 6, 16, tp, 1)
	if blended(w) > 1.25*blended(s) {
		t.Fatalf("weighted solve too far behind staged: %v vs %v", blended(w), blended(s))
	}
}

func TestWeightedSweepZeroPenaltyMatchesFlatObjective(t *testing.T) {
	// With zero node penalty the blended objective degenerates to plain
	// GPU crossings; the result must be comparable with Solve.
	tp := topo.Wilkes3(2)
	tr := makeTrace(54, 5, 16, 2000, 0.85)
	counts := tr.AllTransitionCounts()
	w := WeightedSweep(counts, 5, 16, tp, 0, 1)
	flat := Solve(counts, 5, 16, 8, 1)
	if w.Crossings(counts) > 1.15*flat.Crossings(counts) {
		t.Fatalf("zero-penalty weighted solve (%v) should track the flat solver (%v)",
			w.Crossings(counts), flat.Crossings(counts))
	}
}

func TestWeightedSweepNegativePenaltyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightedSweep(nil, 2, 8, topo.Wilkes3(1), -1, 1)
}

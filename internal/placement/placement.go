// Package placement computes and evaluates expert-to-GPU placements — the
// output of the ExFlow pipeline. A placement maps every (layer, expert)
// pair to a GPU subject to the paper's constraints: per-layer load balance
// (each GPU holds exactly E/P experts per layer, Formula 9) and exclusivity
// (each expert lives on exactly one GPU, Formula 10).
//
// Strategies provided:
//   - Contiguous: the Deepspeed-MoE default (expert i -> GPU i/(E/P)),
//     identical at every layer; the paper's baseline.
//   - Random: a per-layer random balanced assignment; control.
//   - Greedy: chain most-affiliated experts layer by layer (a Formula-2
//     style local optimum).
//   - LayerSweep: coordinate descent where each layer is re-placed optimally
//     (an exact balanced-transportation solve) against its fixed neighbors.
//   - Anneal: simulated-annealing refinement by intra-layer expert swaps.
//   - Solve: the production pipeline (sweep + anneal).
//   - Staged: the two-stage node-then-GPU hierarchy of Section IV-C.
package placement

import (
	"fmt"

	"repro/internal/topo"
	"repro/internal/trace"
)

// Placement assigns experts to GPUs as replica sets. Assign[layer][expert]
// is the expert's primary GPU — the copy that always exists, subject to the
// paper's balance constraint (Formula 9) — and Extra[layer][expert], when
// present, lists additional GPUs holding copies of the same expert
// (relaxing Formula 10's exclusivity: a hot expert may spend HBM slots on
// copies instead of cross-GPU moves). Extra is nil for single-copy
// placements; every consumer's single-copy path is gated on that and stays
// bit-identical to the pre-replication representation.
type Placement struct {
	Layers  int
	Experts int
	GPUs    int
	Assign  [][]int
	// Extra[layer][expert] holds the expert's additional replica GPUs in
	// ascending order, never including Assign[layer][expert]. A nil Extra
	// (or an Extra of all-empty lists) is the single-copy placement.
	Extra [][][]int
}

// NewPlacement allocates an all-zero placement (valid only if GPUs == 1).
func NewPlacement(layers, experts, gpus int) *Placement {
	p := &Placement{Layers: layers, Experts: experts, GPUs: gpus}
	p.Assign = make([][]int, layers)
	for j := range p.Assign {
		p.Assign[j] = make([]int, experts)
	}
	return p
}

// Capacity returns the experts-per-GPU-per-layer count (the paper's C1).
func (p *Placement) Capacity() int { return p.Experts / p.GPUs }

// GPUOf returns the GPU holding expert e at layer j.
func (p *Placement) GPUOf(j, e int) int { return p.Assign[j][e] }

// Clone deep-copies the placement, replica sets included.
func (p *Placement) Clone() *Placement {
	c := NewPlacement(p.Layers, p.Experts, p.GPUs)
	for j := range p.Assign {
		copy(c.Assign[j], p.Assign[j])
	}
	if p.Extra != nil {
		c.Extra = make([][][]int, p.Layers)
		for j := range p.Extra {
			c.Extra[j] = make([][]int, p.Experts)
			for e, ex := range p.Extra[j] {
				if len(ex) > 0 {
					c.Extra[j][e] = append([]int(nil), ex...)
				}
			}
		}
	}
	return c
}

// Equal reports whether two placements have the same shape and agree on
// every (layer, expert) replica set. A nil Extra equals an all-empty one,
// so a degree-1 placement compares equal regardless of representation.
func (p *Placement) Equal(o *Placement) bool {
	if p.Layers != o.Layers || p.Experts != o.Experts || p.GPUs != o.GPUs {
		return false
	}
	for j := range p.Assign {
		for e, g := range p.Assign[j] {
			if o.Assign[j][e] != g {
				return false
			}
		}
	}
	if p.Extra == nil && o.Extra == nil {
		return true
	}
	for j := 0; j < p.Layers; j++ {
		for e := 0; e < p.Experts; e++ {
			pe, oe := p.extraOf(j, e), o.extraOf(j, e)
			if len(pe) != len(oe) {
				return false
			}
			for i := range pe {
				if pe[i] != oe[i] {
					return false
				}
			}
		}
	}
	return true
}

// extraOf returns the extra-replica list for (j, e), nil when none.
func (p *Placement) extraOf(j, e int) []int {
	if p.Extra == nil {
		return nil
	}
	return p.Extra[j][e]
}

// Validate checks the paper's Formulas 9 and 10: every expert on exactly one
// GPU (structurally true here) and every GPU holding exactly E/P experts at
// every layer.
func (p *Placement) Validate() error {
	if p.Experts%p.GPUs != 0 {
		return fmt.Errorf("placement: %d experts not divisible by %d gpus", p.Experts, p.GPUs)
	}
	cap := p.Capacity()
	for j := 0; j < p.Layers; j++ {
		counts := make([]int, p.GPUs)
		for e := 0; e < p.Experts; e++ {
			g := p.Assign[j][e]
			if g < 0 || g >= p.GPUs {
				return fmt.Errorf("placement: layer %d expert %d on invalid gpu %d", j, e, g)
			}
			counts[g]++
		}
		for g, c := range counts {
			if c != cap {
				return fmt.Errorf("placement: layer %d gpu %d holds %d experts, want %d", j, g, c, cap)
			}
		}
	}
	if p.Extra != nil {
		if len(p.Extra) != p.Layers {
			return fmt.Errorf("placement: extra replicas cover %d layers, want %d", len(p.Extra), p.Layers)
		}
		for j := range p.Extra {
			if len(p.Extra[j]) != p.Experts {
				return fmt.Errorf("placement: layer %d extra replicas cover %d experts, want %d", j, len(p.Extra[j]), p.Experts)
			}
			for e, ex := range p.Extra[j] {
				prev := -1
				for _, g := range ex {
					if g < 0 || g >= p.GPUs {
						return fmt.Errorf("placement: layer %d expert %d replica on invalid gpu %d", j, e, g)
					}
					if g == p.Assign[j][e] {
						return fmt.Errorf("placement: layer %d expert %d replica duplicates primary gpu %d", j, e, g)
					}
					if g <= prev {
						return fmt.Errorf("placement: layer %d expert %d replica list not strictly ascending", j, e)
					}
					prev = g
				}
			}
		}
	}
	return nil
}

// ExpertsOn returns the experts placed on GPU g at layer j.
func (p *Placement) ExpertsOn(j, g int) []int {
	var out []int
	for e := 0; e < p.Experts; e++ {
		if p.Assign[j][e] == g {
			out = append(out, e)
		}
	}
	return out
}

// Crossings evaluates the paper's objective (Formula 8) on transition
// counts: the weighted number of consecutive-layer transitions whose two
// experts live on different GPUs. With replica sets present a transition is
// non-crossing when any copy of `from` shares a GPU with any copy of `to`
// (the router can keep the token in place by picking the co-located
// copies); for a single-copy placement the loop below is the pre-replication
// path, bit for bit.
func (p *Placement) Crossings(counts [][][]float64) float64 {
	if p.Extra != nil {
		return p.crossingsReplicated(counts)
	}
	total := 0.0
	for j := 0; j < p.Layers-1 && j < len(counts); j++ {
		for from := 0; from < p.Experts; from++ {
			gFrom := p.Assign[j][from]
			row := counts[j][from]
			for to, w := range row {
				if w != 0 && gFrom != p.Assign[j+1][to] {
					total += w
				}
			}
		}
	}
	return total
}

// NodeCrossings evaluates the staged objective: transitions whose experts
// live on different *nodes* under the given GPUs-per-node grouping. Replica
// sets count as non-crossing when some copy pair shares a node.
func (p *Placement) NodeCrossings(counts [][][]float64, gpusPerNode int) float64 {
	total := 0.0
	for j := 0; j < p.Layers-1 && j < len(counts); j++ {
		for from := 0; from < p.Experts; from++ {
			nFrom := p.Assign[j][from] / gpusPerNode
			row := counts[j][from]
			for to, w := range row {
				if w == 0 {
					continue
				}
				if nFrom == p.Assign[j+1][to]/gpusPerNode {
					continue
				}
				if p.Extra != nil && p.copiesShareNode(j, from, j+1, to, gpusPerNode) {
					continue
				}
				total += w
			}
		}
	}
	return total
}

// LocalityReport summarizes where a trace's transitions land under a
// placement and topology: the fractions of token hops that stay on the same
// GPU, stay intra-node, or cross nodes (the quantities in the paper's
// Figs 7 and 8).
type LocalityReport struct {
	Transitions   float64
	SameGPU       float64
	SameNode      float64 // strictly: same node, different GPU
	CrossNode     float64
	FracSameGPU   float64
	FracIntraNode float64 // SameGPU + SameNode
	FracCrossNode float64
}

// Locality classifies every consecutive-layer transition of a trace.
func (p *Placement) Locality(tr *trace.Trace, tp *topo.Topology) LocalityReport {
	if tp.TotalGPUs() != p.GPUs {
		panic(fmt.Sprintf("placement: topology has %d gpus, placement %d", tp.TotalGPUs(), p.GPUs))
	}
	var rep LocalityReport
	class := func(from, to int) int { return int(tp.Classify(from, to)) }
	for _, path := range tr.Paths {
		if len(path) == 0 {
			continue
		}
		// Walk the token along its chosen copies: with replica sets the
		// router holds the token on the nearest copy (PickReplica with no
		// load signal), so locality is scored on the copies actually used.
		// Single-copy placements reduce to the primary assignment walk.
		at := p.PickReplica(0, int(path[0]), p.Assign[0][path[0]], nil, class)
		for j := 0; j+1 < len(path); j++ {
			dst := p.PickReplica(j+1, int(path[j+1]), at, nil, class)
			rep.Transitions++
			switch tp.Classify(at, dst) {
			case topo.SameGPU:
				rep.SameGPU++
			case topo.SameNode:
				rep.SameNode++
			default:
				rep.CrossNode++
			}
			at = dst
		}
	}
	if rep.Transitions > 0 {
		rep.FracSameGPU = rep.SameGPU / rep.Transitions
		rep.FracIntraNode = (rep.SameGPU + rep.SameNode) / rep.Transitions
		rep.FracCrossNode = rep.CrossNode / rep.Transitions
	}
	return rep
}

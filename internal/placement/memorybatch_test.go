package placement

import (
	"testing"
	"testing/quick"
)

// Batch-aware demand deflation and migration re-warm pricing (ROADMAP items
// 3a/3b): unit and property coverage for the two satellite pricers.

func TestDeflateBatchProperties(t *testing.T) {
	var nilMo *MemoryObjective
	nilMo.DeflateBatch(8) // must not panic

	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		mo := memObjectiveFor(counts, layers, experts, gpus, 2)
		before := append([]float64(nil), mo.mass...)

		// B <= 1 is a bit-identical no-op.
		mo.DeflateBatch(1)
		for i, m := range mo.mass {
			if m != before[i] {
				return false
			}
		}

		const B = 16
		mo.DeflateBatch(B)
		if mo.Batch != B {
			return false
		}
		for i, m := range mo.mass {
			// Deflation shrinks every mass (a batch demands an expert at
			// most once per layer step) but never below mass/B and never
			// kills live demand.
			if m > before[i]+1e-12 || m < before[i]/B-1e-12 {
				return false
			}
			if before[i] > 0 && m <= 0 {
				return false
			}
			// p -> (1-(1-p)^B)/B is strictly increasing: the residency
			// order is preserved, so warm sets never reorder.
			for k := range mo.mass {
				if before[i] < before[k] && mo.mass[i] > mo.mass[k]+1e-12 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDeflateBatchLimits(t *testing.T) {
	tr, layers, experts, gpus := randomInstance(7)
	counts := tr.AllTransitionCounts()
	mo := memObjectiveFor(counts, layers, experts, gpus, 2)
	const B = 32.0
	// A saturated expert (p = 1) is demanded exactly once per batch: its
	// mass deflates by the full factor B.
	mo.mass[0] = mo.tokens
	// A cold expert (p*B << 1) is nearly unchanged.
	mo.mass[1] = mo.tokens * 1e-4
	cold := mo.mass[1]
	mo.DeflateBatch(B)
	if got, want := mo.mass[0], mo.tokens/B; !closeRel(got, want, 1e-9) {
		t.Fatalf("saturated mass deflated to %v, want %v", got, want)
	}
	if got := mo.mass[1]; !closeRel(got, cold, 5e-3) {
		t.Fatalf("cold mass changed to %v from %v", got, cold)
	}
}

func closeRel(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*(1+b)
}

// TestPropertyRewarmSecondsBounded: re-warm prices each arriving copy at
// fetch weighted by its destination occupancy, so the total is bounded by
// the plain sum of fetches, drops are free, and an inactive objective
// prices nothing.
func TestPropertyRewarmSecondsBounded(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		a := Random(layers, experts, gpus, seed)
		b := Random(layers, experts, gpus, seed^0x11F)
		addRandomReplicas(b, 3, seed^0x22F)
		moves := Diff(a, b)
		dropsOnly := Diff(b, a.Clone())
		for _, model := range []ResidencyModel{ResidencyStatic, ResidencyChe} {
			mo := memObjectiveFor(counts, layers, experts, gpus, 2)
			mo.Model = model
			got := mo.RewarmSeconds(b, moves)
			bound := 0.0
			for _, m := range moves {
				if !m.Drop() {
					bound += mo.fetch[int32(m.Layer*mo.experts+m.Expert)]
				}
			}
			if got < 0 || got > bound+1e-12 {
				return false
			}
			// A drop frees a slot; nothing is fetched.
			onlyDrops := true
			for _, m := range dropsOnly {
				onlyDrops = onlyDrops && m.Drop()
			}
			if onlyDrops && len(dropsOnly) > 0 && mo.RewarmSeconds(a, dropsOnly) != 0 {
				return false
			}
			// An exactly-provisioned (1x) objective is inactive: free.
			at1x := memObjectiveFor(counts, layers, experts, gpus, 1)
			at1x.Model = model
			if at1x.RewarmSeconds(b, moves) != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

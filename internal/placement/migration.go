package placement

import (
	"fmt"
	"sort"

	"repro/internal/topo"
)

// This file supports online re-placement, a natural extension of the
// paper's offline pipeline ("paving the way for future research"): when the
// serving workload drifts, the affinity counts change and a better
// placement may exist — but moving an expert means copying its parameters
// across the cluster, which stalls serving. Diff and MigrationPlan quantify
// that trade so a server can decide whether a re-solve pays for itself.

// Move describes relocating one expert's parameters. Replica churn uses -1
// sentinels: From == -1 is a copy install (parameters fetched from the host
// master tier onto To), To == -1 is a copy drop (the HBM slot on From is
// freed; nothing transfers). Primary relocations always carry real GPU ids
// on both sides.
type Move struct {
	Layer, Expert int
	From, To      int
	Tier          topo.HopClass
}

// Install reports whether the move is a replica install (host fetch).
func (m Move) Install() bool { return m.From < 0 }

// Drop reports whether the move is a replica drop (free).
func (m Move) Drop() bool { return m.To < 0 }

// Diff lists the expert moves required to turn placement a into b: primary
// relocations first (in (layer, expert) order, exactly the pre-replication
// listing), then replica installs and drops for every copy-set change. A GPU
// that holds a copy in b but not in a gets an install unless it is b's
// primary (the relocation already ships the parameters there); a GPU whose
// copy exists only in a gets a drop unless it is a's primary (the relocation
// already vacates it). The two placements must share shape.
func Diff(a, b *Placement) []Move {
	if a.Layers != b.Layers || a.Experts != b.Experts || a.GPUs != b.GPUs {
		panic("placement: Diff shape mismatch")
	}
	var moves []Move
	for j := 0; j < a.Layers; j++ {
		for e := 0; e < a.Experts; e++ {
			if a.Assign[j][e] != b.Assign[j][e] {
				moves = append(moves, Move{Layer: j, Expert: e, From: a.Assign[j][e], To: b.Assign[j][e]})
			}
		}
	}
	if a.Extra == nil && b.Extra == nil {
		return moves
	}
	for j := 0; j < a.Layers; j++ {
		for e := 0; e < a.Experts; e++ {
			for _, g := range b.extraOf(j, e) {
				if !a.HasCopy(j, e, g) {
					moves = append(moves, Move{Layer: j, Expert: e, From: -1, To: g})
				}
			}
			for _, g := range a.extraOf(j, e) {
				if !b.HasCopy(j, e, g) {
					moves = append(moves, Move{Layer: j, Expert: e, From: g, To: -1})
				}
			}
		}
	}
	return moves
}

// Canonicalize relabels placement b's GPUs (with one global permutation,
// which never changes b's crossings) to minimize the number of moves from
// a. Without this, a re-solve that found an equivalent-up-to-relabeling
// placement would look like a full-cluster migration.
//
// The permutation is chosen greedily: GPU labels are matched in decreasing
// order of how many (layer, expert) slots they share between a and b.
// Greedy matching is within a factor of optimal for this assignment and is
// exact in the common near-identical case.
//
// On a multi-node topology use CanonicalizeTopo instead: an unconstrained
// global permutation preserves GPU-level crossings but can move GPU labels
// between nodes, scrambling which experts share a node and thereby
// destroying the staged solver's inter-node optimization.
func Canonicalize(a, b *Placement) *Placement {
	if a.Layers != b.Layers || a.Experts != b.Experts || a.GPUs != b.GPUs {
		panic("placement: Canonicalize shape mismatch")
	}
	// overlap[p][q]: slots where a uses p and b uses q.
	overlap := make([][]int, a.GPUs)
	for p := range overlap {
		overlap[p] = make([]int, a.GPUs)
	}
	for j := 0; j < a.Layers; j++ {
		for e := 0; e < a.Experts; e++ {
			overlap[a.Assign[j][e]][b.Assign[j][e]]++
		}
	}
	permTo := greedyMatch(overlap)
	out := b.Clone()
	for j := 0; j < b.Layers; j++ {
		for e := 0; e < b.Experts; e++ {
			out.Assign[j][e] = permTo[b.Assign[j][e]]
		}
	}
	out.relabelExtra(permTo)
	return fewerMoves(a, out, b)
}

// fewerMoves returns whichever candidate relabeling of b needs fewer moves
// from a. Greedy matching is near-optimal but not optimal; without this
// guard a canonicalization could occasionally cost more moves than using b
// unrelabeled.
func fewerMoves(a, canon, b *Placement) *Placement {
	if len(Diff(a, canon)) <= len(Diff(a, b)) {
		return canon
	}
	return b.Clone()
}

// greedyMatch matches columns (b-labels) to rows (a-labels) in decreasing
// overlap order, returning permTo[q] = p.
func greedyMatch(overlap [][]int) []int {
	n := len(overlap)
	type pair struct{ p, q, n int }
	var pairs []pair
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			pairs = append(pairs, pair{p, q, overlap[p][q]})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].n > pairs[j].n })
	permTo := make([]int, n)
	usedP := make([]bool, n)
	usedQ := make([]bool, n)
	for i := range permTo {
		permTo[i] = -1
	}
	for _, pr := range pairs {
		if usedP[pr.p] || usedQ[pr.q] {
			continue
		}
		permTo[pr.q] = pr.p
		usedP[pr.p] = true
		usedQ[pr.q] = true
	}
	return permTo
}

// CanonicalizeTopo relabels b's GPUs to minimize moves from a while
// preserving b's node structure: the permutation factors into a node
// permutation composed with per-node GPU permutations, which (on a
// homogeneous topology) leaves both b's GPU-level and node-level crossings
// unchanged. This is the correct canonicalization for placements produced by
// the staged solver.
func CanonicalizeTopo(a, b *Placement, gpusPerNode int) *Placement {
	if a.Layers != b.Layers || a.Experts != b.Experts || a.GPUs != b.GPUs {
		panic("placement: CanonicalizeTopo shape mismatch")
	}
	if gpusPerNode <= 0 || a.GPUs%gpusPerNode != 0 {
		panic(fmt.Sprintf("placement: %d gpus not divisible into nodes of %d", a.GPUs, gpusPerNode))
	}
	nodes := a.GPUs / gpusPerNode
	if nodes == 1 {
		return Canonicalize(a, b)
	}
	// Stage 1: match b's nodes to a's nodes by slot overlap.
	overlapN := make([][]int, nodes)
	for p := range overlapN {
		overlapN[p] = make([]int, nodes)
	}
	for j := 0; j < a.Layers; j++ {
		for e := 0; e < a.Experts; e++ {
			overlapN[a.Assign[j][e]/gpusPerNode][b.Assign[j][e]/gpusPerNode]++
		}
	}
	nodePerm := greedyMatch(overlapN) // b-node -> a-node
	// Stage 2: inside each matched node pair, match GPU labels.
	permTo := make([]int, a.GPUs) // b-gpu -> new label
	for qb := 0; qb < nodes; qb++ {
		pa := nodePerm[qb]
		overlapG := make([][]int, gpusPerNode)
		for p := range overlapG {
			overlapG[p] = make([]int, gpusPerNode)
		}
		for j := 0; j < a.Layers; j++ {
			for e := 0; e < a.Experts; e++ {
				ag, bg := a.Assign[j][e], b.Assign[j][e]
				if ag/gpusPerNode == pa && bg/gpusPerNode == qb {
					overlapG[ag%gpusPerNode][bg%gpusPerNode]++
				}
			}
		}
		local := greedyMatch(overlapG)
		for ql := 0; ql < gpusPerNode; ql++ {
			permTo[qb*gpusPerNode+ql] = pa*gpusPerNode + local[ql]
		}
	}
	out := b.Clone()
	for j := 0; j < b.Layers; j++ {
		for e := 0; e < b.Experts; e++ {
			out.Assign[j][e] = permTo[b.Assign[j][e]]
		}
	}
	out.relabelExtra(permTo)
	return fewerMoves(a, out, b)
}

// MigrationPlan prices a set of moves on a topology.
type MigrationPlan struct {
	Moves []Move
	// Bytes is the total parameter traffic (expertBytes per move).
	Bytes int
	// Seconds is the modeled serial transfer time (moves execute one at a
	// time on the slowest-involved link; a scheduler could parallelize,
	// making this an upper bound).
	Seconds float64
	// CrossNodeMoves counts moves over the inter-node fabric.
	CrossNodeMoves int
}

// PriceMigration computes the cost of migrating from a to b (after
// topology-aware canonicalization) with the given per-expert parameter size.
// Callers that intend to *install* the canonicalized placement should
// canonicalize themselves and use PriceMoves, so the plan prices exactly the
// placement being adopted.
func PriceMigration(a, b *Placement, tp *topo.Topology, expertBytes int) *MigrationPlan {
	if tp.TotalGPUs() != a.GPUs {
		panic(fmt.Sprintf("placement: topology %d gpus, placement %d", tp.TotalGPUs(), a.GPUs))
	}
	canon := CanonicalizeTopo(a, b, tp.GPUsPerNode)
	return PriceMoves(Diff(a, canon), tp, expertBytes)
}

// PriceMoves prices an explicit move set on a topology. Primary relocations
// price as GPU-to-GPU transfers over their classified hop. Replica installs
// (From == -1) ship the parameters from the host master tier over the host
// link — every GPU can reach it, so installs never count as cross-node
// fabric traffic. Replica drops (To == -1) free an HBM slot and cost
// nothing.
func PriceMoves(moves []Move, tp *topo.Topology, expertBytes int) *MigrationPlan {
	plan := &MigrationPlan{Moves: moves}
	for i := range plan.Moves {
		m := &plan.Moves[i]
		switch {
		case m.Drop():
			m.Tier = topo.SameGPU
		case m.Install():
			m.Tier = topo.SameGPU
			plan.Bytes += expertBytes
			plan.Seconds += tp.HostPath().Time(expertBytes)
		default:
			m.Tier = tp.Classify(m.From, m.To)
			plan.Bytes += expertBytes
			plan.Seconds += tp.TransferTime(m.From, m.To, expertBytes)
			if m.Tier == topo.CrossNode {
				plan.CrossNodeMoves++
			}
		}
	}
	return plan
}

// BreakEvenIterations estimates how many inference iterations the migration
// must amortize over: migration seconds divided by the per-iteration time
// saved. Returns +Inf (as a large number is unhelpful, we use -1) when the
// new placement saves nothing.
func (mp *MigrationPlan) BreakEvenIterations(savedPerIteration float64) float64 {
	if savedPerIteration <= 0 {
		return -1
	}
	return mp.Seconds / savedPerIteration
}

package placement

import (
	"fmt"
	"sort"

	"repro/internal/topo"
)

// This file supports online re-placement, a natural extension of the
// paper's offline pipeline ("paving the way for future research"): when the
// serving workload drifts, the affinity counts change and a better
// placement may exist — but moving an expert means copying its parameters
// across the cluster, which stalls serving. Diff and MigrationPlan quantify
// that trade so a server can decide whether a re-solve pays for itself.

// Move describes relocating one expert's parameters.
type Move struct {
	Layer, Expert int
	From, To      int
	Tier          topo.HopClass
}

// Diff lists the expert moves required to turn placement a into b. The two
// placements must share shape.
func Diff(a, b *Placement) []Move {
	if a.Layers != b.Layers || a.Experts != b.Experts || a.GPUs != b.GPUs {
		panic("placement: Diff shape mismatch")
	}
	var moves []Move
	for j := 0; j < a.Layers; j++ {
		for e := 0; e < a.Experts; e++ {
			if a.Assign[j][e] != b.Assign[j][e] {
				moves = append(moves, Move{Layer: j, Expert: e, From: a.Assign[j][e], To: b.Assign[j][e]})
			}
		}
	}
	return moves
}

// Canonicalize relabels placement b's GPUs (with one global permutation,
// which never changes b's crossings) to minimize the number of moves from
// a. Without this, a re-solve that found an equivalent-up-to-relabeling
// placement would look like a full-cluster migration.
//
// The permutation is chosen greedily: GPU labels are matched in decreasing
// order of how many (layer, expert) slots they share between a and b.
// Greedy matching is within a factor of optimal for this assignment and is
// exact in the common near-identical case.
func Canonicalize(a, b *Placement) *Placement {
	if a.Layers != b.Layers || a.Experts != b.Experts || a.GPUs != b.GPUs {
		panic("placement: Canonicalize shape mismatch")
	}
	// overlap[p][q]: slots where a uses p and b uses q.
	overlap := make([][]int, a.GPUs)
	for p := range overlap {
		overlap[p] = make([]int, a.GPUs)
	}
	for j := 0; j < a.Layers; j++ {
		for e := 0; e < a.Experts; e++ {
			overlap[a.Assign[j][e]][b.Assign[j][e]]++
		}
	}
	type pair struct{ p, q, n int }
	var pairs []pair
	for p := 0; p < a.GPUs; p++ {
		for q := 0; q < a.GPUs; q++ {
			pairs = append(pairs, pair{p, q, overlap[p][q]})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].n > pairs[j].n })
	permTo := make([]int, a.GPUs) // b-label q -> new label
	usedP := make([]bool, a.GPUs)
	usedQ := make([]bool, a.GPUs)
	for i := range permTo {
		permTo[i] = -1
	}
	for _, pr := range pairs {
		if usedP[pr.p] || usedQ[pr.q] {
			continue
		}
		permTo[pr.q] = pr.p
		usedP[pr.p] = true
		usedQ[pr.q] = true
	}
	out := b.Clone()
	for j := 0; j < b.Layers; j++ {
		for e := 0; e < b.Experts; e++ {
			out.Assign[j][e] = permTo[b.Assign[j][e]]
		}
	}
	return out
}

// MigrationPlan prices a set of moves on a topology.
type MigrationPlan struct {
	Moves []Move
	// Bytes is the total parameter traffic (expertBytes per move).
	Bytes int
	// Seconds is the modeled serial transfer time (moves execute one at a
	// time on the slowest-involved link; a scheduler could parallelize,
	// making this an upper bound).
	Seconds float64
	// CrossNodeMoves counts moves over the inter-node fabric.
	CrossNodeMoves int
}

// PriceMigration computes the cost of migrating from a to b (after
// canonicalization) with the given per-expert parameter size.
func PriceMigration(a, b *Placement, tp *topo.Topology, expertBytes int) *MigrationPlan {
	if tp.TotalGPUs() != a.GPUs {
		panic(fmt.Sprintf("placement: topology %d gpus, placement %d", tp.TotalGPUs(), a.GPUs))
	}
	canon := Canonicalize(a, b)
	moves := Diff(a, canon)
	plan := &MigrationPlan{Moves: moves}
	for i := range plan.Moves {
		m := &plan.Moves[i]
		m.Tier = tp.Classify(m.From, m.To)
		plan.Bytes += expertBytes
		plan.Seconds += tp.TransferTime(m.From, m.To, expertBytes)
		if m.Tier == topo.CrossNode {
			plan.CrossNodeMoves++
		}
	}
	return plan
}

// BreakEvenIterations estimates how many inference iterations the migration
// must amortize over: migration seconds divided by the per-iteration time
// saved. Returns +Inf (as a large number is unhelpful, we use -1) when the
// new placement saves nothing.
func (mp *MigrationPlan) BreakEvenIterations(savedPerIteration float64) float64 {
	if savedPerIteration <= 0 {
		return -1
	}
	return mp.Seconds / savedPerIteration
}

package placement

import (
	"math"
	"testing"

	"repro/internal/expertmem"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/topo"
	"repro/internal/trace"
)

// memFixture builds a kernel-driven instance plus a memory objective at the
// given oversubscription ratio.
func memFixture(t *testing.T, layers, experts, gpus int, oversub float64, seed uint64) ([][][]float64, *MemoryObjective) {
	t.Helper()
	k := synth.NewKernel(synth.KernelParams{
		Seed: seed, Layers: layers, Experts: experts, Strength: 0.85,
	})
	kr := synth.NewKernelRouter(k, synth.Pile(), 1)
	tr := trace.Collect(kr, layers, trace.SequentialIDs(1200, nil))
	counts := tr.AllTransitionCounts()
	tp := topo.ForGPUs(gpus)
	cfg := expertmem.ConfigFor(tp, layers, experts, 16<<20, oversub,
		expertmem.AffinityPrefetch(), 4, 0, counts)
	return counts, NewMemoryObjective(cfg, 0)
}

func TestMemoryObjectiveInactiveWhenEverythingFits(t *testing.T) {
	counts, mo := memFixture(t, 6, 16, 4, 1, 3)
	if mo.Active() {
		t.Fatalf("1x objective active: slots %d perGPU %d", mo.Slots, mo.PerGPU)
	}
	pl := Random(6, 16, 4, 3)
	if s := mo.StallSeconds(pl); s != 0 {
		t.Fatalf("inactive objective stalls %v", s)
	}
	if got, want := mo.Objective(pl, counts), pl.Crossings(counts); got != want {
		t.Fatalf("inactive objective %v != crossings %v", got, want)
	}
	var nilMO *MemoryObjective
	if nilMO.Active() || nilMO.StallSeconds(pl) != 0 || nilMO.StallPerToken(pl) != 0 {
		t.Fatal("nil objective must be inactive and free")
	}
}

func TestMemoryObjectiveTopSlotsModel(t *testing.T) {
	// 2 layers x 4 experts on 2 GPUs, 2 slots each (4 assigned per GPU):
	// hand-checkable. Affinity rows: expert e of layer 0 routes to e with
	// mass (e+1)*10, so layer-0 outgoing mass and layer-1 incoming mass are
	// both (e+1)*10 for expert e.
	aff := make([][][]float64, 1)
	aff[0] = make([][]float64, 4)
	for e := range aff[0] {
		row := make([]float64, 4)
		row[e] = float64(e+1) * 10
		aff[0][e] = row
	}
	cfg := expertmem.Config{
		Layers: 2, Experts: 4, GPUs: 2,
		ExpertBytes: 1 << 20,
		SlotsPerGPU: 2,
		HostLink:    topo.LinkCost{Latency: 1e-3, Bandwidth: 1 << 30},
		Affinity:    aff,
	}
	mo := NewMemoryObjective(cfg, 0)
	if !mo.Active() {
		t.Fatal("2 slots for 4 assigned must be active")
	}
	fetch := 1e-3 + float64(1<<20)/float64(1<<30)

	// Contiguous: GPU 0 holds experts {0,1} of both layers with masses
	// {10,20,10,20}; top-2 = the two 20s, stall = (10+10)*fetch. GPU 1 holds
	// {2,3}: masses {30,40,30,40}, stall = (30+30)*fetch.
	pl := Contiguous(2, 4, 2)
	want := (10 + 10 + 30 + 30) * fetch
	if got := mo.StallSeconds(pl); math.Abs(got-want) > 1e-12 {
		t.Fatalf("contiguous stall %v, want %v", got, want)
	}

	// Splitting the hot pair across GPUs covers more mass: GPU 0 = {0,3},
	// GPU 1 = {1,2} at both layers. GPU 0 masses {10,40,10,40} -> stall
	// (10+10)*fetch; GPU 1 masses {20,30,20,30} -> stall (20+20)*fetch.
	split := NewPlacement(2, 4, 2)
	for j := 0; j < 2; j++ {
		split.Assign[j] = []int{0, 1, 1, 0}
	}
	want = (10 + 10 + 20 + 20) * fetch
	if got := mo.StallSeconds(split); math.Abs(got-want) > 1e-12 {
		t.Fatalf("split stall %v, want %v", got, want)
	}

	// Per-token normalization: layer-0 mass totals 100.
	if got := mo.StallPerToken(split); math.Abs(got-want/100) > 1e-15 {
		t.Fatalf("stall/token %v, want %v", got, want/100)
	}
}

// TestMemoryObjectiveShapeMismatchPanics: pricing a placement whose shape
// does not match the objective's oracles used to silently mis-index mass and
// fetch (packed ids collide); now every entry point fails fast.
func TestMemoryObjectiveShapeMismatchPanics(t *testing.T) {
	_, mo := memFixture(t, 5, 16, 4, 2, 3)
	wrong := Random(5, 8, 4, 3) // 8 experts vs the objective's 16
	shallow := Random(3, 16, 4, 3)
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s accepted a mismatched placement", name)
			}
		}()
		f()
	}
	for _, p := range []*Placement{wrong, shallow} {
		expectPanic("StallSeconds", func() { mo.StallSeconds(p) })
		expectPanic("newMemState", func() { newMemState(mo, p) })
		expectPanic("newSortedMemState", func() { newSortedMemState(mo, p) })
		expectPanic("newCheMemState", func() { newCheMemState(mo, p) })
	}
}

// TestStallPerTokenRobustToEmptyLayerZero: the per-token normalizer used to
// be layer 0's demand mass, so an oracle whose first layer saw no traffic
// (live windows can produce one) reported zero stall per token even with
// real downstream stall. The normalizer is now the max per-layer mass.
func TestStallPerTokenRobustToEmptyLayerZero(t *testing.T) {
	// 3 layers x 4 experts on 2 GPUs, 1 slot each: aff[0] is all zero (so
	// layer-0 and layer-1 masses vanish) while aff[1] carries real demand
	// into layer 2.
	aff := make([][][]float64, 2)
	for l := range aff {
		aff[l] = make([][]float64, 4)
		for e := range aff[l] {
			aff[l][e] = make([]float64, 4)
		}
	}
	for e := 0; e < 4; e++ {
		aff[1][e][e] = float64(e+1) * 10
	}
	cfg := expertmem.Config{
		Layers: 3, Experts: 4, GPUs: 2,
		ExpertBytes: 1 << 20,
		SlotsPerGPU: 1,
		HostLink:    topo.LinkCost{Latency: 1e-3, Bandwidth: 1 << 30},
		Affinity:    aff,
	}
	mo := NewMemoryObjective(cfg, 0)
	pl := Contiguous(3, 4, 2)
	if mo.StallSeconds(pl) <= 0 {
		t.Fatalf("fixture must stall: %v", mo.StallSeconds(pl))
	}
	// Layer 2 carries 10+20+30+40 = 100 mass; layers 0 and 1 carry none.
	if got := mo.StallPerToken(pl); got != mo.StallSeconds(pl)/100 {
		t.Fatalf("StallPerToken %v, want %v (max per-layer mass normalizer)", got, mo.StallSeconds(pl)/100)
	}
}

// TestRestrictEmptyAndRaggedResidents: restrict used to index residents[0]
// unconditionally and assume uniform row lengths; empty subproblems now
// price as nil and ragged rows are zero-padded phantoms that price nothing.
func TestRestrictEmptyAndRaggedResidents(t *testing.T) {
	_, mo := memFixture(t, 2, 8, 2, 2, 5)
	if sub := mo.restrict(nil); sub != nil {
		t.Fatal("restrict(nil) must be nil")
	}
	if sub := mo.restrict([][]int{{}, {}}); sub != nil {
		t.Fatal("restrict of all-empty rows must be nil")
	}
	var nilMO *MemoryObjective
	if nilMO.restrict([][]int{{0}}) != nil {
		t.Fatal("nil objective restricts to nil")
	}

	rect := mo.restrict([][]int{{0, 1}, {2, 3}})
	ragged := mo.restrict([][]int{{0, 1}, {2}})
	if ragged == nil || ragged.experts != 2 || ragged.layers != 2 {
		t.Fatalf("ragged restrict shape: %+v", ragged)
	}
	// The phantom slot (layer 1, slot 1) carries no mass and no fetch.
	if ragged.mass[1*2+1] != 0 || ragged.fetch[1*2+1] != 0 {
		t.Fatal("phantom slot must be massless")
	}
	// Real entries price identically to the rectangular projection.
	for l := 0; l < 2; l++ {
		for s := 0; s < 2; s++ {
			if l == 1 && s == 1 {
				continue
			}
			if ragged.mass[l*2+s] != rect.mass[l*2+s] || ragged.fetch[l*2+s] != rect.fetch[l*2+s] {
				t.Fatalf("real entry (%d,%d) mispriced under ragged restrict", l, s)
			}
		}
	}
}

func TestMemStateIncrementalMatchesFullEval(t *testing.T) {
	_, mo := memFixture(t, 5, 16, 4, 2, 11)
	if !mo.Active() {
		t.Fatal("fixture must be oversubscribed")
	}
	p := Random(5, 16, 4, 11)
	ms := newMemState(mo, p)
	if math.Abs(ms.total()-mo.StallSeconds(p)) > 1e-9 {
		t.Fatalf("initial memState total %v != full eval %v", ms.total(), mo.StallSeconds(p))
	}
	r := rng.New(99)
	for i := 0; i < 500; i++ {
		j, a, b := r.Intn(5), r.Intn(16), r.Intn(16)
		ga, gb := p.Assign[j][a], p.Assign[j][b]
		if a == b || ga == gb {
			continue
		}
		newGa, newGb := ms.swapCost(j, a, b, ga, gb)
		p.Assign[j][a], p.Assign[j][b] = gb, ga
		ms.apply(j, a, b, ga, gb, newGa, newGb)
		if full := mo.StallSeconds(p); math.Abs(ms.total()-full) > 1e-9 {
			t.Fatalf("step %d: incremental total %v != full eval %v", i, ms.total(), full)
		}
	}
}

func TestMemoryAwareAnnealTradesCrossingsForStall(t *testing.T) {
	counts, mo := memFixture(t, 8, 32, 4, 2, 7)
	if !mo.Active() {
		t.Fatal("fixture must be oversubscribed")
	}
	init := Contiguous(8, 32, 4)
	plain := Anneal(counts, init, AnnealOptions{Seed: 7})
	aware := Anneal(counts, init, AnnealOptions{Seed: 7, Memory: mo})
	if err := aware.Validate(); err != nil {
		t.Fatal(err)
	}
	// The memory-aware result must win on the blended objective...
	if mo.Objective(aware, counts) >= mo.Objective(plain, counts) {
		t.Fatalf("memory-aware anneal lost its own objective: %v vs %v",
			mo.Objective(aware, counts), mo.Objective(plain, counts))
	}
	// ...and on the stall term specifically: the crossing-only solver
	// concentrates the hot set, the memory-aware one dilutes it.
	if mo.StallSeconds(aware) >= mo.StallSeconds(plain) {
		t.Fatalf("memory-aware anneal did not reduce expected stall: %v vs %v",
			mo.StallSeconds(aware), mo.StallSeconds(plain))
	}
	// The blended objective never worsens relative to the start.
	if mo.Objective(aware, counts) > mo.Objective(init, counts)+1e-9 {
		t.Fatal("anneal worsened the blended objective")
	}
}

func TestStagedMemoryAwareValidAndImproves(t *testing.T) {
	layers, experts := 6, 32
	tp := topo.Wilkes3(2) // 2 nodes x 4 GPUs
	k := synth.NewKernel(synth.KernelParams{Seed: 5, Layers: layers, Experts: experts, Strength: 0.85})
	kr := synth.NewKernelRouter(k, synth.Pile(), 1)
	tr := trace.Collect(kr, layers, trace.SequentialIDs(1500, nil))
	counts := tr.AllTransitionCounts()
	cfg := expertmem.ConfigFor(tp, layers, experts, 16<<20, 2,
		expertmem.AffinityPrefetch(), 4, 0, counts)
	mo := NewMemoryObjective(cfg, 0)

	plain := Staged(counts, layers, experts, tp, 5)
	aware := StagedOpt(counts, layers, experts, tp, 5, StagedOptions{Memory: mo})
	if err := aware.Validate(); err != nil {
		t.Fatal(err)
	}
	if mo.StallSeconds(aware) >= mo.StallSeconds(plain) {
		t.Fatalf("memory-aware staged did not reduce expected stall: %v vs %v",
			mo.StallSeconds(aware), mo.StallSeconds(plain))
	}
	// Inactive options reproduce Staged bit-identically.
	same := StagedOpt(counts, layers, experts, tp, 5, StagedOptions{})
	for j := range plain.Assign {
		for e := range plain.Assign[j] {
			if plain.Assign[j][e] != same.Assign[j][e] {
				t.Fatalf("zero-options StagedOpt diverged at (%d,%d)", j, e)
			}
		}
	}
}

package placement

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/topo"
)

// The sparse TransIndex is the annealer's production move pricer; these
// tests pin its two contracts: exact (bitwise) agreement with the dense
// objective, and exact agreement of whole solve trajectories — the sparse
// path must be a pure speedup, never a different solver.

func TestPropertySparseCrossingsMatchesDense(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		ix := NewTransIndex(counts, layers, experts)
		for _, pl := range []*Placement{
			Random(layers, experts, gpus, seed^0x0F),
			Contiguous(layers, experts, gpus),
		} {
			// Bitwise equality, not tolerance: the index visits nonzeros in
			// dense scan order, so the accumulation is the same float
			// sequence.
			if ix.Crossings(pl) != pl.Crossings(counts) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseCrossingsEdgeShapes(t *testing.T) {
	// All-zero counts: no transitions, objective identically zero.
	layers, experts, gpus := 4, 8, 2
	zero := make([][][]float64, layers-1)
	for j := range zero {
		zero[j] = make([][]float64, experts)
		for e := range zero[j] {
			zero[j][e] = make([]float64, experts)
		}
	}
	ix := NewTransIndex(zero, layers, experts)
	if ix.NNZ() != 0 {
		t.Fatalf("all-zero counts produced %d nonzeros", ix.NNZ())
	}
	pl := Random(layers, experts, gpus, 3)
	if got, want := ix.Crossings(pl), pl.Crossings(zero); got != want || got != 0 {
		t.Fatalf("zero-counts crossings sparse %v dense %v", got, want)
	}
	// Anneal on the zero instance must still be feasible on both paths.
	for _, dense := range []bool{false, true} {
		out := Anneal(zero, pl, AnnealOptions{Iterations: 500, Seed: 1, Dense: dense})
		if err := out.Validate(); err != nil {
			t.Fatalf("dense=%v: %v", dense, err)
		}
	}

	// Single-expert layers: E=1 forces GPUs=1; the index degenerates to one
	// self-transition chain and the objective must still agree.
	one := make([][][]float64, 2)
	for j := range one {
		one[j] = [][]float64{{float64(3 + j)}}
	}
	ixOne := NewTransIndex(one, 3, 1)
	plOne := NewPlacement(3, 1, 1)
	if got, want := ixOne.Crossings(plOne), plOne.Crossings(one); got != want {
		t.Fatalf("single-expert crossings sparse %v dense %v", got, want)
	}
}

func TestPropertySparseAnnealBitIdenticalToDense(t *testing.T) {
	// The acceptance pin: for the same seed, the sparse (production) anneal
	// and the dense reference anneal walk identical trajectories — same RNG
	// draws, same accepts — and return bit-identical placements, with the
	// memory term both inactive and active.
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		init := Contiguous(layers, experts, gpus)
		for _, mem := range []*MemoryObjective{nil, memObjectiveFor(counts, layers, experts, gpus, 2)} {
			sparse := Anneal(counts, init, AnnealOptions{Iterations: 1500, Seed: seed, Memory: mem})
			dense := Anneal(counts, init, AnnealOptions{Iterations: 1500, Seed: seed, Memory: mem, Dense: true})
			if !sparse.Equal(dense) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPortfolioDeterministicAndNonWorsening(t *testing.T) {
	// A fixed (Seed, Workers) portfolio is reproducible, and adding workers
	// can never return a worse blended objective than Workers=1 — replica 0
	// IS the Workers=1 run and the winner is chosen by objective.
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		mo := memObjectiveFor(counts, layers, experts, gpus, 2)
		init := Contiguous(layers, experts, gpus)
		opts := AnnealOptions{Iterations: 1200, Seed: seed, Memory: mo}

		single := Anneal(counts, init, opts)
		opts.Workers = 4
		a := Anneal(counts, init, opts)
		b := Anneal(counts, init, opts)
		if !a.Equal(b) {
			return false // portfolio not deterministic
		}
		if a.Validate() != nil {
			return false
		}
		return mo.Objective(a, counts) <= mo.Objective(single, counts)+1e-9
	}, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestStagedPortfolioDeterministicAndValid(t *testing.T) {
	// The staged solve with Workers>1 parallelizes both the annealing
	// portfolio and the per-node stage-2 subproblems; the result must be
	// reproducible and feasible, and Workers=1 must match Staged exactly.
	r := rng.New(0xC0FFEE)
	tp := topo.Wilkes3(2 + r.Intn(2))
	layers := 4
	experts := tp.TotalGPUs() * 2
	counts := make([][][]float64, layers-1)
	rr := rng.New(7)
	for j := range counts {
		counts[j] = make([][]float64, experts)
		for e := range counts[j] {
			counts[j][e] = make([]float64, experts)
			for k := 0; k < 3; k++ {
				counts[j][e][rr.Intn(experts)] += float64(1 + rr.Intn(9))
			}
		}
	}
	serial := Staged(counts, layers, experts, tp, 42)
	w1 := StagedOpt(counts, layers, experts, tp, 42, StagedOptions{Workers: 1})
	if !serial.Equal(w1) {
		t.Fatal("Workers=1 staged solve diverged from Staged")
	}
	p1 := StagedOpt(counts, layers, experts, tp, 42, StagedOptions{Workers: 4})
	p2 := StagedOpt(counts, layers, experts, tp, 42, StagedOptions{Workers: 4})
	if !p1.Equal(p2) {
		t.Fatal("Workers=4 staged solve not deterministic")
	}
	if err := p1.Validate(); err != nil {
		t.Fatal(err)
	}
	// The portfolio guarantee is per stage (each annealed subproblem's
	// objective can only improve); the *hierarchical* global objective is
	// checked at the stage level where it holds: the node stage's inter-node
	// crossings never worsen.
	if p1.NodeCrossings(counts, tp.GPUsPerNode) > serial.NodeCrossings(counts, tp.GPUsPerNode)+1e-9 {
		t.Fatalf("portfolio staged solve worse at the node stage: %v vs %v",
			p1.NodeCrossings(counts, tp.GPUsPerNode), serial.NodeCrossings(counts, tp.GPUsPerNode))
	}
}

package placement

import (
	"math"

	"repro/internal/rng"
)

// AnnealOptions tunes the simulated-annealing refinement.
type AnnealOptions struct {
	// Iterations is the number of proposed swaps; zero means 20000.
	Iterations int
	// StartTemp and EndTemp bound the geometric cooling schedule, expressed
	// as a fraction of the initial objective; zeros mean 0.02 and 1e-5.
	StartTemp, EndTemp float64
	Seed               uint64
	// Memory, when active (a binding HBM slot budget), folds the expected
	// expert-stall cost into the objective: the annealer prices both the
	// crossing change and the hot-set concentration change of every proposed
	// swap. Nil or inactive leaves the crossing-only path bit-identical.
	Memory *MemoryObjective
}

// Anneal refines a placement by intra-layer expert swaps under a
// Metropolis acceptance rule. Swapping two experts within one layer
// preserves the balance constraint by construction, so every visited state
// is feasible. The returned placement is the best state encountered.
//
// The move delta is evaluated incrementally: swapping experts a and b at
// layer j only changes crossings on transitions incident to a or b at
// layers j-1->j and j->j+1, so each proposal is O(E) rather than O(L*E^2).
// With an active memory objective the stall delta is likewise incremental:
// only the two affected GPUs' residency sets are re-priced (memState), never
// the whole placement.
func Anneal(counts [][][]float64, init *Placement, opts AnnealOptions) *Placement {
	iters := opts.Iterations
	if iters <= 0 {
		iters = 20000
	}
	startT, endT := opts.StartTemp, opts.EndTemp
	if startT <= 0 {
		startT = 0.02
	}
	if endT <= 0 {
		endT = 1e-5
	}
	p := init.Clone()
	cur := p.Crossings(counts)
	memActive := opts.Memory.Active()
	var ms *memState
	var invHop float64
	if memActive {
		ms = newMemState(opts.Memory, p)
		invHop = 1 / opts.Memory.HopSeconds
		cur += ms.total * invHop
	}
	best := p.Clone()
	bestObj := cur
	if p.GPUs == 1 {
		return best // single GPU: every placement is equivalent
	}
	scale := cur
	if scale == 0 {
		scale = 1
	}
	r := rng.New(opts.Seed)
	cool := math.Pow(endT/startT, 1/float64(iters))
	temp := startT * scale

	// layerDelta computes the change in crossings if experts a and b of
	// layer j swapped GPUs.
	layerDelta := func(j, a, b int) float64 {
		ga, gb := p.Assign[j][a], p.Assign[j][b]
		if ga == gb {
			return 0
		}
		delta := 0.0
		contrib := func(e, gOld, gNew int) {
			if j > 0 {
				for from := 0; from < p.Experts; from++ {
					w := counts[j-1][from][e]
					if w == 0 {
						continue
					}
					gFrom := p.Assign[j-1][from]
					if gFrom != gOld {
						delta -= w
					}
					if gFrom != gNew {
						delta += w
					}
				}
			}
			if j < p.Layers-1 {
				for to, w := range counts[j][e] {
					if w == 0 {
						continue
					}
					gTo := p.Assign[j+1][to]
					if gOld != gTo {
						delta -= w
					}
					if gNew != gTo {
						delta += w
					}
				}
			}
		}
		// Every transition touches at most one of {a, b}: both live at
		// layer j while transition endpoints sit in adjacent layers, whose
		// placements are unchanged. So the two contributions are disjoint
		// and can simply be summed.
		contrib(a, ga, gb)
		contrib(b, gb, ga)
		return delta
	}

	for it := 0; it < iters; it++ {
		j := r.Intn(p.Layers)
		a := r.Intn(p.Experts)
		b := r.Intn(p.Experts)
		if a == b || p.Assign[j][a] == p.Assign[j][b] {
			temp *= cool
			continue
		}
		delta := layerDelta(j, a, b)
		ga, gb := p.Assign[j][a], p.Assign[j][b]
		var memGa, memGb float64
		if memActive {
			memGa, memGb = ms.swapCost(j, a, b, ga, gb)
			delta += (memGa + memGb - ms.cost[ga] - ms.cost[gb]) * invHop
		}
		if delta <= 0 || r.Float64() < math.Exp(-delta/temp) {
			p.Assign[j][a], p.Assign[j][b] = p.Assign[j][b], p.Assign[j][a]
			if memActive {
				ms.apply(j, a, b, ga, gb, memGa, memGb)
			}
			cur += delta
			if cur < bestObj {
				bestObj = cur
				best = p.Clone()
			}
		}
		temp *= cool
	}
	return best
}

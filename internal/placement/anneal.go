package placement

import (
	"math"
	"sync"

	"repro/internal/obs"
	"repro/internal/rng"
)

// AnnealOptions tunes the simulated-annealing refinement.
type AnnealOptions struct {
	// Iterations is the number of proposed swaps; zero means 20000.
	Iterations int
	// StartTemp and EndTemp bound the geometric cooling schedule, expressed
	// as a fraction of the initial objective; zeros mean 0.02 and 1e-5.
	StartTemp, EndTemp float64
	Seed               uint64
	// Memory, when active (a binding HBM slot budget), folds the expected
	// expert-stall cost into the objective: the annealer prices both the
	// crossing change and the hot-set concentration change of every proposed
	// swap, under the objective's residency model (static warm set or Che
	// fractional occupancy). Nil or inactive leaves the crossing-only path
	// bit-identical.
	Memory *MemoryObjective
	// Workers runs a portfolio of independent annealing replicas across
	// goroutines and returns the best result by blended objective. Replica 0
	// uses Seed itself and replicas i>0 use seeds derived from it, with ties
	// broken by replica order — so any fixed Workers value is reproducible,
	// Workers<=1 is bit-identical to the single-replica anneal, and
	// Workers=N can never return a worse objective than Workers=1 (replica 0
	// IS the Workers=1 run). Zero means 1.
	Workers int
	// Dense selects the dense reference move-pricing path: an O(E) scan of
	// the transition matrices per proposal instead of the sparse
	// TransIndex's O(degree) walk. The two paths accumulate floats in the
	// same order and produce bit-identical placements; Dense exists for the
	// equivalence tests and the sparse-vs-dense benchmarks.
	Dense bool
	// Index optionally supplies a prebuilt sparse transition index over
	// counts (see NewTransIndex); nil builds one per replica run. Portfolio
	// solves build it once and share it across replicas.
	Index *TransIndex
	// Obs optionally receives the annealer's proposal and acceptance
	// counters (solver_swaps_proposed_total, solver_swaps_accepted_total).
	// Portfolio replicas update the shared counters concurrently; the
	// registry is race-safe and the metrics never affect the solve.
	Obs *obs.Registry
	// ReplicaBudget, when positive, follows the swap anneal (and, for a
	// portfolio, the best-replica selection) with AnnealReplicas: a
	// replicate/dereplicate refinement pass that may spend up to this many
	// extra expert copies where the crossing relief beats the memory
	// objective's slot/occupancy price. Zero skips the pass entirely — the
	// swap anneal itself never proposes replica moves, so the single-copy
	// result stays bit-identical.
	ReplicaBudget int
}

// Anneal refines a placement by intra-layer expert swaps under a
// Metropolis acceptance rule. Swapping two experts within one layer
// preserves the balance constraint by construction, so every visited state
// is feasible. The returned placement is the best state encountered.
//
// The move delta is evaluated incrementally and sparsely: swapping experts
// a and b at layer j only changes crossings on transitions incident to a or
// b at layers j-1->j and j->j+1, and the TransIndex walks only the nonzero
// ones — O(degree) per proposal rather than O(E). With an active memory
// objective the stall delta is likewise incremental: only the two affected
// GPUs' residency sets are re-priced, without re-sorting (sortedMemState).
//
// With Workers > 1 the anneal becomes a parallel portfolio; see
// AnnealOptions.Workers for the determinism contract.
func Anneal(counts [][][]float64, init *Placement, opts AnnealOptions) *Placement {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		pl, _ := annealRun(counts, init, opts, opts.Seed)
		return applyReplicaBudget(counts, pl, opts.ReplicaBudget, opts.Seed, opts.Memory, opts.Index)
	}
	if opts.Index == nil && !opts.Dense {
		opts.Index = NewTransIndex(counts, init.Layers, init.Experts)
	}
	type result struct {
		pl  *Placement
		obj float64
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seed := opts.Seed
			if w > 0 {
				seed = rng.Mix64(opts.Seed, 0xA11EA1, uint64(w))
			}
			pl, obj := annealRun(counts, init, opts, seed)
			results[w] = result{pl, obj}
		}(w)
	}
	wg.Wait()
	best := 0
	for w := 1; w < workers; w++ {
		// Strict < breaks ties in replica (seed) order: the portfolio is a
		// pure function of (Seed, Workers).
		if results[w].obj < results[best].obj {
			best = w
		}
	}
	return applyReplicaBudget(counts, results[best].pl, opts.ReplicaBudget, opts.Seed, opts.Memory, opts.Index)
}

// memPricer is the annealer's incremental view of the memory term: per-GPU
// cached stall costs re-priced two GPUs at a time per proposal. Three
// implementations exist — sortedMemState (static production: sorted
// residency lists, no per-proposal sort), memState (static dense reference:
// scratch copy + sort per proposal; bit-identical to sortedMemState), and
// cheMemState (the Che residency model). The annealer always calls apply
// immediately after the swapCost that priced the same proposal; cheMemState
// relies on that pairing to carry its warm-started characteristic times
// from the pricing into the commit.
type memPricer interface {
	total() float64
	gpuCost(g int) float64
	swapCost(j, a, b, ga, gb int) (newGa, newGb float64)
	apply(j, a, b, ga, gb int, newGa, newGb float64)
}

// annealRun is one annealing replica: the Metropolis loop under a given
// seed, returning the best placement and its blended objective.
func annealRun(counts [][][]float64, init *Placement, opts AnnealOptions, seed uint64) (*Placement, float64) {
	iters := opts.Iterations
	if iters <= 0 {
		iters = 20000
	}
	startT, endT := opts.StartTemp, opts.EndTemp
	if startT <= 0 {
		startT = 0.02
	}
	if endT <= 0 {
		endT = 1e-5
	}
	p := init.Clone()
	cur := p.Crossings(counts)
	var proposed, accepted uint64
	defer func() {
		opts.Obs.Counter("solver_swaps_proposed_total").Add(float64(proposed))
		opts.Obs.Counter("solver_swaps_accepted_total").Add(float64(accepted))
	}()
	memActive := opts.Memory.Active()
	var ms memPricer
	var invHop float64
	if memActive {
		switch {
		case opts.Memory.Model == ResidencyChe:
			// The Che model has one incremental pricer; Dense still selects
			// the dense crossing path below, and the pricer is held to the
			// from-scratch StallSeconds by TestCheMemStateIncrementalMatchesFullEval.
			ms = newCheMemState(opts.Memory, p)
		case opts.Dense:
			ms = newMemState(opts.Memory, p)
		default:
			ms = newSortedMemState(opts.Memory, p)
		}
		invHop = 1 / opts.Memory.HopSeconds
		cur += ms.total() * invHop
	}
	best := p.Clone()
	bestObj := cur
	if p.GPUs == 1 {
		return best, bestObj // single GPU: every placement is equivalent
	}
	scale := cur
	if scale == 0 {
		scale = 1
	}
	r := rng.New(seed)
	cool := math.Pow(endT/startT, 1/float64(iters))
	temp := startT * scale

	// layerDelta computes the change in crossings if experts a and b of
	// layer j swapped GPUs.
	var layerDelta func(j, a, b int) float64
	if opts.Dense {
		layerDelta = denseLayerDelta(counts, p)
	} else {
		idx := opts.Index
		if idx == nil {
			idx = NewTransIndex(counts, p.Layers, p.Experts)
		}
		layerDelta = idx.layerDelta(p)
	}

	for it := 0; it < iters; it++ {
		j := r.Intn(p.Layers)
		a := r.Intn(p.Experts)
		b := r.Intn(p.Experts)
		if a == b || p.Assign[j][a] == p.Assign[j][b] {
			temp *= cool
			continue
		}
		proposed++
		delta := layerDelta(j, a, b)
		ga, gb := p.Assign[j][a], p.Assign[j][b]
		var memGa, memGb float64
		if memActive {
			memGa, memGb = ms.swapCost(j, a, b, ga, gb)
			delta += (memGa + memGb - ms.gpuCost(ga) - ms.gpuCost(gb)) * invHop
		}
		if delta <= 0 || r.Float64() < math.Exp(-delta/temp) {
			accepted++
			p.Assign[j][a], p.Assign[j][b] = p.Assign[j][b], p.Assign[j][a]
			if memActive {
				ms.apply(j, a, b, ga, gb, memGa, memGb)
			}
			cur += delta
			if cur < bestObj {
				bestObj = cur
				best = p.Clone()
			}
		}
		temp *= cool
	}
	return best, bestObj
}

// denseLayerDelta is the reference O(E)-per-proposal move pricer: a full
// column scan over the predecessor layer and a full row scan over the
// successor layer, skipping zeros. Kept (behind AnnealOptions.Dense) as the
// ground truth the sparse path is tested bit-identical against, and as the
// baseline the solver benchmarks measure speedup from.
func denseLayerDelta(counts [][][]float64, p *Placement) func(j, a, b int) float64 {
	return func(j, a, b int) float64 {
		ga, gb := p.Assign[j][a], p.Assign[j][b]
		if ga == gb {
			return 0
		}
		delta := 0.0
		contrib := func(e, gOld, gNew int) {
			if j > 0 {
				for from := 0; from < p.Experts; from++ {
					w := counts[j-1][from][e]
					if w == 0 {
						continue
					}
					gFrom := p.Assign[j-1][from]
					if gFrom != gOld {
						delta -= w
					}
					if gFrom != gNew {
						delta += w
					}
				}
			}
			if j < p.Layers-1 {
				for to, w := range counts[j][e] {
					if w == 0 {
						continue
					}
					gTo := p.Assign[j+1][to]
					if gOld != gTo {
						delta -= w
					}
					if gNew != gTo {
						delta += w
					}
				}
			}
		}
		// Every transition touches at most one of {a, b}: both live at
		// layer j while transition endpoints sit in adjacent layers, whose
		// placements are unchanged. So the two contributions are disjoint
		// and can simply be summed.
		contrib(a, ga, gb)
		contrib(b, gb, ga)
		return delta
	}
}

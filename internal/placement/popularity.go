package placement

import (
	"sort"

	"repro/internal/trace"
)

// PopularityReplication models the Lina-style baseline the paper contrasts
// with (Section VI, [19]): instead of globally optimizing placement, each
// GPU keeps the contiguous placement and additionally *replicates* the
// top-k most popular experts of every layer locally, spending extra memory
// to increase the chance a token finds its next expert on its current GPU.
type PopularityReplication struct {
	Base *Placement
	// Replicas[j] lists the expert indices replicated on every GPU at
	// layer j.
	Replicas [][]int
	// ExtraExpertSlots is the total number of additional expert copies per
	// GPU across layers — the extra-memory cost the paper's Table I points
	// at.
	ExtraExpertSlots int
}

// NewPopularityReplication selects the k most popular experts per layer from
// a trace and replicates them on all GPUs.
func NewPopularityReplication(tr *trace.Trace, gpus, k int) *PopularityReplication {
	base := Contiguous(tr.Layers, tr.Experts, gpus)
	pr := &PopularityReplication{
		Base:     base,
		Replicas: make([][]int, tr.Layers),
	}
	for j := 0; j < tr.Layers; j++ {
		load := tr.LayerLoad(j)
		idx := make([]int, tr.Experts)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return load[idx[a]] > load[idx[b]] })
		if k > tr.Experts {
			k = tr.Experts
		}
		pr.Replicas[j] = append([]int(nil), idx[:k]...)
		pr.ExtraExpertSlots += k
	}
	return pr
}

// IsLocal reports whether a token currently on GPU g finds expert e of
// layer j without leaving the GPU (either the home copy or a replica).
func (pr *PopularityReplication) IsLocal(j, e, g int) bool {
	if pr.Base.Assign[j][e] == g {
		return true
	}
	for _, rep := range pr.Replicas[j] {
		if rep == e {
			return true
		}
	}
	return false
}

// FractionLocal measures the share of a trace's transitions that stay on
// the token's current GPU under the replication scheme, assuming tokens
// start on the home GPU of their layer-0 expert and move only when forced.
func (pr *PopularityReplication) FractionLocal(tr *trace.Trace) float64 {
	local, total := 0.0, 0.0
	for _, path := range tr.Paths {
		g := pr.Base.Assign[0][path[0]]
		for j := 0; j+1 < len(path); j++ {
			next := int(path[j+1])
			total++
			if pr.IsLocal(j+1, next, g) {
				local++
			} else {
				g = pr.Base.Assign[j+1][next]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return local / total
}

package placement

import (
	"repro/internal/assign"
	"repro/internal/topo"
)

// WeightedSweep is a single-shot alternative to the two-stage Staged solve:
// instead of optimizing inter-node crossings first and intra-node crossings
// second, it minimizes one blended objective
//
//	cost(transition) = 1                    same node, different GPU
//	                 = 1 + NodePenalty      different node
//
// directly over GPU-level assignments, using the same transportation
// coordinate descent as LayerSweep with a topology-aware benefit matrix.
// NodePenalty expresses how much worse an inter-node hop is than an
// intra-node hop (the NVLink/IB gap suggests ~5-6 on the paper's hardware).
//
// Staged vs WeightedSweep is a real design choice the paper leaves open:
// staged guarantees stage-1 optimality on the slow tier but cannot trade a
// node crossing for several GPU crossings; the weighted objective can, at
// the price of a harder landscape. The ablation compares them empirically.
func WeightedSweep(counts [][][]float64, layers, experts int, tp *topo.Topology, nodePenalty float64, seed uint64) *Placement {
	gpus := tp.TotalGPUs()
	checkShape(experts, gpus)
	if nodePenalty < 0 {
		panic("placement: negative node penalty")
	}
	p := Contiguous(layers, experts, gpus)
	cap := experts / gpus
	caps := make([]int, gpus)
	for g := range caps {
		caps[g] = cap
	}

	// tierBenefit[gHere][gThere] is the benefit weight of keeping a unit of
	// transition between GPUs gHere and gThere: full (1 + nodePenalty) when
	// on the same GPU, nodePenalty when merely on the same node, 0 across
	// nodes. Maximizing total benefit == minimizing the blended cost.
	benefitOf := func(a, b int) float64 {
		switch tp.Classify(a, b) {
		case topo.SameGPU:
			return 1 + nodePenalty
		case topo.SameNode:
			return nodePenalty
		default:
			return 0
		}
	}

	resolveLayer := func(j int) {
		benefit := make([][]float64, experts)
		for e := range benefit {
			benefit[e] = make([]float64, gpus)
		}
		for g := 0; g < gpus; g++ {
			if j > 0 {
				for from := 0; from < experts; from++ {
					gFrom := p.Assign[j-1][from]
					w := benefitOf(gFrom, g)
					if w == 0 {
						continue
					}
					for to, c := range counts[j-1][from] {
						if c != 0 {
							benefit[to][g] += w * c
						}
					}
				}
			}
			if j < layers-1 {
				for from := 0; from < experts; from++ {
					row := counts[j][from]
					for to, c := range row {
						if c == 0 {
							continue
						}
						w := benefitOf(g, p.Assign[j+1][to])
						if w != 0 {
							benefit[from][g] += w * c
						}
					}
				}
			}
		}
		a, _, err := assign.MaximizeBalanced(benefit, caps)
		if err != nil {
			panic(err)
		}
		copy(p.Assign[j], a)
	}

	blended := func() float64 {
		return p.Crossings(counts) + nodePenalty*p.NodeCrossings(counts, tp.GPUsPerNode)
	}
	prev := blended()
	for sweep := 0; sweep < 8; sweep++ {
		for j := 0; j < layers; j++ {
			resolveLayer(j)
		}
		for j := layers - 1; j >= 0; j-- {
			resolveLayer(j)
		}
		cur := blended()
		if cur >= prev-1e-9 {
			break
		}
		prev = cur
	}
	// Polish with annealing on the GPU-level objective (cheap, keeps the
	// comparison with Solve/Staged fair).
	return Anneal(counts, p, AnnealOptions{Seed: seed})
}

package placement

import (
	"math"
	"sort"
)

// Che-approximation dynamic-residency model (MemoryObjective with
// Model == ResidencyChe).
//
// The static warm-set model prices a placement as if each GPU's top-Slots
// experts by demand mass were pinned forever: the hot set never churns, the
// tail always misses. A real residency table under LRU/LFU/affinity eviction
// does churn — a burst of tail accesses evicts warm experts, which then miss
// on their next access — so the static model systematically underpredicts
// realized stall, and the controller's MinGain pricing inherits the gap.
//
// The Che approximation (Che, Tung & Wang 2002) closes it with a
// fractional-occupancy model: under independent-reference demand with access
// rates mass_i, a capacity-Slots cache behaves as if every item had a single
// characteristic time T — an item is resident iff it was accessed within the
// last T. T solves the occupancy constraint
//
//	sum over assigned i of (1 - exp(-mass_i * T)) = Slots
//
// and item i then misses with probability exp(-mass_i * T). The expected
// stall of one GPU's assigned set becomes
//
//	sum over assigned i of mass_i * fetch_i * exp(-mass_i * T) * (1 - covered_i)
//
// where covered_i discounts demand the affinity prefetcher hints one layer
// ahead (its fetch overlaps compute instead of stalling; covered comes from
// the same expertmem oracles — the top-K successor lists — the runtime
// prefetcher chases).
//
// The left side of the occupancy constraint is increasing and concave in T,
// so Newton iteration converges globally; each solve is safeguarded by a
// bisection bracket and warm-started across annealing proposals (a swap
// changes one item in a set of PerGPU, so the previous T is an excellent
// seed and typically one or two Newton steps suffice).
//
// Note the model is NOT bounded by the static one: static is the occupancy
// vector a clairvoyant pinner would pick (all occupancy on the top-Slots
// items), which is the minimum of the stall over all occupancy vectors
// summing to Slots — churn can only cost more. The Che stall is bounded
// below by the static warm-set stall (for uniform fetch, before the
// prefetch-coverage discount) and above by the every-access-misses sum.

// cheConverged is the relative width at which the T bracket is considered
// solved. Tight enough that a warm-started and a cold-started solve agree to
// well under any tolerance the objective's consumers care about.
const cheConverged = 1e-12

// cheT solves the Che characteristic time for one GPU's assigned item set:
// sum(1 - exp(-mass_i*T)) = Slots. warmT seeds Newton when positive and
// finite (pass 0 for a cold start). Returns +Inf when the budget does not
// bind the positive-mass items (every demanded expert can stay resident —
// zero-mass items never occupy under Che).
func (mo *MemoryObjective) cheT(items []int32, warmT float64) float64 {
	slots := float64(mo.Slots)
	pos, sumRate := 0, 0.0
	for _, it := range items {
		if m := mo.mass[it]; m > 0 {
			pos++
			sumRate += m
		}
	}
	if float64(pos) <= slots {
		return math.Inf(1)
	}
	// F(T) = sum(1-exp(-mass*T)) - Slots: increasing and concave, F(0) < 0,
	// F(inf) = pos - Slots > 0, so the root exists and is unique. The exp
	// here and in the stall sums goes through the tabled expNeg (see
	// fastexp.go) — the solver's dominant flop at Che-model anneal scale.
	eval := func(t float64) (f, df float64) {
		f = -slots
		for _, it := range items {
			m := mo.mass[it]
			if m == 0 {
				continue
			}
			e := expNeg(m * t)
			f += 1 - e
			df += m * e
		}
		return f, df
	}
	t := warmT
	if !(t > 0) || math.IsInf(t, 1) {
		// Cold start at the small-T linearization sum(mass_i*T) = Slots.
		t = slots / sumRate
	}
	// Establish the bisection bracket [lo, hi] with F(lo) < 0 <= F(hi).
	lo, hi := 0.0, t
	for f, _ := eval(hi); f < 0; f, _ = eval(hi) {
		lo = hi
		hi *= 2
	}
	for iter := 0; iter < 80; iter++ {
		f, df := eval(t)
		if f >= 0 {
			hi = t
		} else {
			lo = t
		}
		// Two exits: the residual is negligible (the common warm-started
		// case — one or two evaluations) or the bracket has collapsed.
		if math.Abs(f) <= cheConverged*(slots+1) || hi-lo <= cheConverged*hi {
			break
		}
		nt := t
		if df > 0 {
			nt = t - f/df
		}
		if !(nt > lo && nt < hi) {
			nt = 0.5 * (lo + hi) // Newton left the bracket: bisect
		}
		if nt == t {
			break
		}
		t = nt
	}
	return t
}

// cheStall prices one GPU's assigned set under the Che model, returning the
// expected stall seconds and the characteristic time used (for warm-starting
// the next solve on this GPU). The items are iterated in slice order, so
// callers that keep a deterministic order get deterministic sums; the value
// itself is order-insensitive up to float rounding.
func (mo *MemoryObjective) cheStall(items []int32, warmT float64) (float64, float64) {
	if len(items) <= mo.Slots {
		return 0, math.Inf(1)
	}
	t := mo.cheT(items, warmT)
	if math.IsInf(t, 1) {
		return 0, t
	}
	stall := 0.0
	for _, it := range items {
		m := mo.mass[it]
		if m == 0 {
			continue
		}
		cost := m * mo.fetch[it] * expNeg(m*t)
		if mo.covered != nil {
			cost *= 1 - mo.covered[it]
		}
		stall += cost
	}
	return stall, t
}

// cheTMass is cheT with explicit per-item masses — the replicated pricer's
// path, where each copy of an expert carries mass/degree instead of the
// oracle mass its packed id would index.
func (mo *MemoryObjective) cheTMass(masses []float64, warmT float64) float64 {
	slots := float64(mo.Slots)
	pos, sumRate := 0, 0.0
	for _, m := range masses {
		if m > 0 {
			pos++
			sumRate += m
		}
	}
	if float64(pos) <= slots {
		return math.Inf(1)
	}
	eval := func(t float64) (f, df float64) {
		f = -slots
		for _, m := range masses {
			if m == 0 {
				continue
			}
			e := expNeg(m * t)
			f += 1 - e
			df += m * e
		}
		return f, df
	}
	t := warmT
	if !(t > 0) || math.IsInf(t, 1) {
		t = slots / sumRate
	}
	lo, hi := 0.0, t
	for f, _ := eval(hi); f < 0; f, _ = eval(hi) {
		lo = hi
		hi *= 2
	}
	for iter := 0; iter < 80; iter++ {
		f, df := eval(t)
		if f >= 0 {
			hi = t
		} else {
			lo = t
		}
		if math.Abs(f) <= cheConverged*(slots+1) || hi-lo <= cheConverged*hi {
			break
		}
		nt := t
		if df > 0 {
			nt = t - f/df
		}
		if !(nt > lo && nt < hi) {
			nt = 0.5 * (lo + hi)
		}
		if nt == t {
			break
		}
		t = nt
	}
	return t
}

// cheStallMass is cheStall with explicit per-item masses: the Che price of
// one GPU's replicated copy set (fetch and coverage still come from the
// packed ids; only the demand rate is deflated by copy degree).
func (mo *MemoryObjective) cheStallMass(items []int32, masses []float64, warmT float64) (float64, float64) {
	if len(items) <= mo.Slots {
		return 0, math.Inf(1)
	}
	t := mo.cheTMass(masses, warmT)
	if math.IsInf(t, 1) {
		return 0, t
	}
	stall := 0.0
	for i, it := range items {
		m := masses[i]
		if m == 0 {
			continue
		}
		cost := m * mo.fetch[it] * expNeg(m*t)
		if mo.covered != nil {
			cost *= 1 - mo.covered[it]
		}
		stall += cost
	}
	return stall, t
}

// cheMemState is the annealer's incremental Che pricer (the memPricer used
// when Model == ResidencyChe): per-GPU assigned-id lists kept in ascending
// packed-id order — the same iteration order StallSeconds builds, so the
// incremental sums track the from-scratch evaluation — plus per-GPU cached
// characteristic times that warm-start each re-solve. A swap re-prices only
// the two affected GPUs: one merge pass builds the post-swap set and one
// warm-started Newton solve (typically 1-2 iterations) re-prices it, so a
// proposal costs O(PerGPU), the same order as the static sorted pricer.
type cheMemState struct {
	mo      *MemoryObjective
	order   [][]int32 // per GPU: ids ascending
	t       []float64 // per GPU cached characteristic time
	cost    []float64 // per GPU cached stall seconds
	sum     float64
	scratch []int32
	// pendTa/pendTb carry the T values solved by swapCost into the matching
	// apply (the annealer always applies the proposal it just priced).
	pendTa, pendTb float64
}

func newCheMemState(mo *MemoryObjective, p *Placement) *cheMemState {
	mo.checkShape(p.Layers, p.Experts)
	ms := &cheMemState{
		mo:      mo,
		order:   make([][]int32, p.GPUs),
		t:       make([]float64, p.GPUs),
		cost:    make([]float64, p.GPUs),
		scratch: make([]int32, 0, mo.PerGPU),
	}
	for g := range ms.order {
		ms.order[g] = make([]int32, 0, mo.PerGPU)
	}
	// The (l, e) scan appends ascending packed ids per GPU: already sorted.
	for l := 0; l < p.Layers; l++ {
		for e := 0; e < p.Experts; e++ {
			g := p.Assign[l][e]
			ms.order[g] = append(ms.order[g], int32(l*mo.experts+e))
		}
	}
	for g := range ms.order {
		ms.cost[g], ms.t[g] = mo.cheStall(ms.order[g], 0)
		ms.sum += ms.cost[g]
	}
	return ms
}

func (ms *cheMemState) total() float64        { return ms.sum }
func (ms *cheMemState) gpuCost(g int) float64 { return ms.cost[g] }

// swapCost prices the hypothetical swap of experts a and b at layer j
// between GPUs ga and gb without mutating the state, warm-starting each
// GPU's T solve from its cached value.
func (ms *cheMemState) swapCost(j, a, b, ga, gb int) (newGa, newGb float64) {
	idA := int32(j*ms.mo.experts + a)
	idB := int32(j*ms.mo.experts + b)
	newGa, ms.pendTa = ms.replacedStall(ga, idA, idB)
	newGb, ms.pendTb = ms.replacedStall(gb, idB, idA)
	return newGa, newGb
}

// replacedStall prices GPU g's set with item out replaced by item in: one
// merge pass builds the post-swap ascending order in scratch, then a
// warm-started Che solve prices it.
func (ms *cheMemState) replacedStall(g int, out, in int32) (float64, float64) {
	ms.scratch = ms.scratch[:0]
	inserted := false
	for _, id := range ms.order[g] {
		if id == out {
			continue
		}
		if !inserted && in < id {
			ms.scratch = append(ms.scratch, in)
			inserted = true
		}
		ms.scratch = append(ms.scratch, id)
	}
	if !inserted {
		ms.scratch = append(ms.scratch, in)
	}
	return ms.mo.cheStall(ms.scratch, ms.t[g])
}

// apply commits a swap previously priced by swapCost, splicing each GPU's
// ascending order in place and installing the solves swapCost cached.
func (ms *cheMemState) apply(j, a, b, ga, gb int, newGa, newGb float64) {
	idA := int32(j*ms.mo.experts + a)
	idB := int32(j*ms.mo.experts + b)
	ms.replace(ga, idA, idB)
	ms.replace(gb, idB, idA)
	ms.sum += newGa + newGb - ms.cost[ga] - ms.cost[gb]
	ms.cost[ga], ms.cost[gb] = newGa, newGb
	ms.t[ga], ms.t[gb] = ms.pendTa, ms.pendTb
}

// replace removes out from GPU g's ascending order and inserts in at its
// sorted position (binary search + copy, no sort).
func (ms *cheMemState) replace(g int, out, in int32) {
	lst := ms.order[g]
	po := sort.Search(len(lst), func(i int) bool { return lst[i] >= out })
	ins := sort.Search(len(lst), func(i int) bool { return lst[i] > in })
	if ins <= po {
		copy(lst[ins+1:po+1], lst[ins:po])
		lst[ins] = in
	} else {
		copy(lst[po:ins-1], lst[po+1:ins])
		lst[ins-1] = in
	}
}

package placement

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/topo"
)

// Replica-set tests: bookkeeping invariants, the router's copy-selection
// rule, degree-1 bit-identity across every consumer (the tentpole's pin),
// and the replicate/dereplicate anneal's budget and objective guarantees.

func TestReplicaBookkeeping(t *testing.T) {
	pl := Contiguous(2, 4, 2)
	if pl.Replicated() || pl.TotalExtras() != 0 || pl.Degree(0, 0) != 1 {
		t.Fatal("fresh placement must be single-copy")
	}
	pl.AddReplica(0, 0, 1)
	if !pl.Replicated() || pl.TotalExtras() != 1 || pl.Degree(0, 0) != 2 {
		t.Fatal("AddReplica not reflected in bookkeeping")
	}
	if !pl.HasCopy(0, 0, 1) || !pl.HasCopy(0, 0, 0) || pl.HasCopy(1, 0, 1) {
		t.Fatal("HasCopy wrong after AddReplica")
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("replicated placement invalid: %v", err)
	}
	mustPanic(t, "duplicate AddReplica", func() { pl.AddReplica(0, 0, 1) })
	mustPanic(t, "AddReplica on primary", func() { pl.AddReplica(0, 0, 0) })
	mustPanic(t, "DropReplica of missing copy", func() { pl.DropReplica(1, 0, 1) })
	mustPanic(t, "DropReplica of primary", func() { pl.DropReplica(0, 0, 0) })
	pl.DropReplica(0, 0, 1)
	if pl.Replicated() || pl.TotalExtras() != 0 {
		t.Fatal("DropReplica not reflected in bookkeeping")
	}
	pl.normalizeExtra()
	if pl.Extra != nil {
		t.Fatal("normalizeExtra must restore the canonical single-copy representation")
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s must panic", what)
		}
	}()
	f()
}

func TestPickReplicaRouting(t *testing.T) {
	pl := Contiguous(1, 8, 4) // expert e's primary is GPU e/2
	sameGPU := func(from, to int) int {
		if from == to {
			return 0
		}
		return 1
	}
	// Single-copy experts return the primary without touching either signal.
	if got := pl.PickReplica(0, 5, 3, []int{9, 0, 9, 0}, sameGPU); got != 2 {
		t.Fatalf("single-copy pick = %d, want primary 2", got)
	}
	pl.AddReplica(0, 0, 3) // copies of expert 0 on {0, 3}
	// Locality first: the co-located copy wins even when it is more loaded.
	if got := pl.PickReplica(0, 0, 3, []int{0, 0, 0, 5}, sameGPU); got != 3 {
		t.Fatalf("co-located pick = %d, want 3", got)
	}
	// Equal hop class: least-loaded wins.
	if got := pl.PickReplica(0, 0, 1, []int{5, 0, 0, 2}, sameGPU); got != 3 {
		t.Fatalf("least-loaded pick = %d, want 3", got)
	}
	// Full tie: lowest GPU id.
	if got := pl.PickReplica(0, 0, 1, []int{1, 0, 0, 1}, sameGPU); got != 0 {
		t.Fatalf("tie pick = %d, want 0", got)
	}
	// Nil signals drop their criteria; the pick stays deterministic.
	for i := 0; i < 5; i++ {
		if got := pl.PickReplica(0, 0, 2, nil, nil); got != 0 {
			t.Fatalf("nil-signal pick = %d, want 0", got)
		}
	}
}

// TestPropertyReplicaBudgetZeroBitIdentical pins the tentpole's degree-1
// guarantee at the solver layer: a zero replication budget must leave both
// anneal pipelines bit-identical to the pre-replication solvers, with the
// canonical nil Extra representation.
func TestPropertyReplicaBudgetZeroBitIdentical(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		init := Contiguous(layers, experts, gpus)
		plain := Anneal(counts, init, AnnealOptions{Iterations: 1500, Seed: seed})
		withBudget := Anneal(counts, init, AnnealOptions{Iterations: 1500, Seed: seed, ReplicaBudget: 0})
		if !withBudget.Equal(plain) || withBudget.Extra != nil {
			return false
		}
		tp := topo.ForGPUs(gpus)
		s0 := StagedOpt(counts, layers, experts, tp, seed, StagedOptions{})
		s1 := StagedOpt(counts, layers, experts, tp, seed, StagedOptions{ReplicaBudget: 0})
		return s1.Equal(s0) && s1.Extra == nil
	}, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAnnealReplicasValidBudgetedNonWorsening: the copy pass must
// keep the placement valid, respect the budget, never touch a primary
// (Formula 9 holds throughout), and never worsen the crossing objective it
// anneals when memory is unpriced.
func TestPropertyAnnealReplicasValidBudgetedNonWorsening(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		init := Anneal(counts, Contiguous(layers, experts, gpus), AnnealOptions{Iterations: 800, Seed: seed})
		budget := 1 + int(seed%uint64(2*gpus))
		out := AnnealReplicas(counts, init, ReplicaOptions{Budget: budget, Iterations: 3000, Seed: seed})
		if out.Validate() != nil || out.TotalExtras() > budget {
			return false
		}
		for j := range init.Assign {
			for e := range init.Assign[j] {
				if out.Assign[j][e] != init.Assign[j][e] {
					return false
				}
			}
		}
		return out.Crossings(counts) <= init.Crossings(counts)+1e-9
	}, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAnnealReplicasMemoryPricedNonWorsening: with an active memory
// objective the pass anneals the blended objective (crossings plus stall in
// crossing units) and must never worsen it — copies that displace residency
// for less crossing relief than they cost are rejected.
func TestPropertyAnnealReplicasMemoryPricedNonWorsening(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		init := Contiguous(layers, experts, gpus)
		mo := memObjectiveFor(counts, layers, experts, gpus, 2)
		out := AnnealReplicas(counts, init, ReplicaOptions{Budget: gpus, Iterations: 3000, Seed: seed, Memory: mo})
		if out.Validate() != nil || out.TotalExtras() > gpus {
			return false
		}
		obj := func(p *Placement) float64 {
			return p.Crossings(counts) + mo.StallSeconds(p)/mo.HopSeconds
		}
		return obj(out) <= obj(init)+1e-6*(1+obj(init))
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// addRandomReplicas installs up to n random extra copies on p.
func addRandomReplicas(p *Placement, n int, seed uint64) int {
	r := rng.New(seed)
	added := 0
	for i := 0; i < n; i++ {
		j, e, g := r.Intn(p.Layers), r.Intn(p.Experts), r.Intn(p.GPUs)
		if !p.HasCopy(j, e, g) {
			p.AddReplica(j, e, g)
			added++
		}
	}
	return added
}

// TestPropertyDiffPriceReplicated: replica churn must price as host-tier
// installs (never cross-node fabric traffic) and free drops — the
// copy-aware half of the migration pricer.
func TestPropertyDiffPriceReplicated(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		_, layers, experts, gpus := randomInstance(seed)
		a := Random(layers, experts, gpus, seed)
		b := a.Clone()
		installs := addRandomReplicas(b, 4, seed^0x5EED)
		if installs == 0 {
			return true
		}
		tp := topo.ForGPUs(gpus)
		const bytes = 16 << 20
		fwd := PriceMoves(Diff(a, b), tp, bytes)
		if len(fwd.Moves) != installs || fwd.CrossNodeMoves != 0 || fwd.Bytes != installs*bytes {
			return false
		}
		for _, m := range fwd.Moves {
			if !m.Install() || m.Drop() {
				return false
			}
		}
		want := float64(installs) * tp.HostPath().Time(bytes)
		if math.Abs(fwd.Seconds-want) > 1e-9*want {
			return false
		}
		rev := PriceMoves(Diff(b, a), tp, bytes)
		if len(rev.Moves) != installs || rev.Bytes != 0 || rev.Seconds != 0 {
			return false
		}
		for _, m := range rev.Moves {
			if !m.Drop() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCanonicalizeTopoReplicated: relabeling must carry the replica
// sets through the permutation — the canonical placement stays valid, keeps
// every extra copy, preserves the replicated crossing count exactly, and
// never costs more moves than the unrelabeled target.
func TestPropertyCanonicalizeTopoReplicated(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		a := Random(layers, experts, gpus, seed)
		b := Random(layers, experts, gpus, seed^0xBADA)
		addRandomReplicas(b, 3, seed^0xCAFE)
		tp := topo.ForGPUs(gpus)
		canon := CanonicalizeTopo(a, b, tp.GPUsPerNode)
		if canon.Validate() != nil || canon.TotalExtras() != b.TotalExtras() {
			return false
		}
		if canon.Crossings(counts) != b.Crossings(counts) {
			return false
		}
		return len(Diff(a, canon)) <= len(Diff(a, b))
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// withEmptyExtra returns a clone carrying an allocated but all-empty replica
// structure — the non-canonical degree-1 representation every consumer must
// treat bit-identically to nil Extra.
func withEmptyExtra(p *Placement) *Placement {
	q := p.Clone()
	q.Extra = make([][][]int, q.Layers)
	for j := range q.Extra {
		q.Extra[j] = make([][]int, q.Experts)
	}
	return q
}

// TestPropertyDegree1EmptyExtraBitIdentical: crossings, equality, diffing
// and migration pricing must not distinguish an all-empty Extra from nil —
// the degree-1 bit-identity pin for the representation itself.
func TestPropertyDegree1EmptyExtraBitIdentical(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		a := Random(layers, experts, gpus, seed)
		b := Random(layers, experts, gpus, seed^0x90D0)
		a2, b2 := withEmptyExtra(a), withEmptyExtra(b)
		if a2.Replicated() || a2.Crossings(counts) != a.Crossings(counts) {
			return false
		}
		if !a2.Equal(a) || !a.Equal(a2) {
			return false
		}
		ma, mb := Diff(a, b), Diff(a2, b2)
		if len(ma) != len(mb) {
			return false
		}
		for i := range ma {
			if ma[i] != mb[i] {
				return false
			}
		}
		tp := topo.ForGPUs(gpus)
		const bytes = 16 << 20
		p1 := PriceMigration(a, b, tp, bytes)
		p2 := PriceMigration(a2, b2, tp, bytes)
		return p1.Seconds == p2.Seconds && p1.Bytes == p2.Bytes && p1.CrossNodeMoves == p2.CrossNodeMoves
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStallSecondsDegree1EmptyExtra: the memory objective's
// replicated pricer (explicit mass/degree) must reduce bit-identically to
// the single-copy path when every degree is 1.
func TestPropertyStallSecondsDegree1EmptyExtra(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		pl := Random(layers, experts, gpus, seed)
		for _, model := range []ResidencyModel{ResidencyStatic, ResidencyChe} {
			mo := memObjectiveFor(counts, layers, experts, gpus, 2)
			mo.Model = model
			if mo.StallSeconds(withEmptyExtra(pl)) != mo.StallSeconds(pl) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestFastExpNegBoundedError(t *testing.T) {
	// The table-plus-cubic path must stay within 1e-8 relative of math.Exp
	// across the whole tabled range (satellite 3's bound; the analytic
	// truncation error is ~2.5e-9 relative).
	check := func(x float64) {
		t.Helper()
		got, want := expNeg(x), math.Exp(-x)
		if diff := math.Abs(got - want); diff > 1e-8*want {
			t.Fatalf("expNeg(%v) = %v, want %v (rel err %v)", x, got, want, diff/want)
		}
	}
	for x := 0.0; x < 70; x += 0.0137 {
		check(x)
	}
	r := rng.New(42)
	for i := 0; i < 20000; i++ {
		check(r.Float64() * 70)
	}
	for _, x := range []float64{0, expNegStep / 2, expNegStep, 1, expNegMax - 1e-9, expNegMax, expNegMax + 1, 700} {
		check(x)
	}
	// Out-of-domain arguments take the exact fallback verbatim.
	for _, x := range []float64{-3, -0.5, math.Inf(1)} {
		if got, want := expNeg(x), math.Exp(-x); got != want {
			t.Fatalf("expNeg(%v) fallback = %v, want %v", x, got, want)
		}
	}
	if !math.IsNaN(expNeg(math.NaN())) {
		t.Fatal("expNeg(NaN) must be NaN")
	}
	// The cheExactExp toggle routes every call to math.Exp bit for bit.
	cheExactExp = true
	defer func() { cheExactExp = false }()
	for i := 0; i < 2000; i++ {
		x := r.Float64() * 70
		if expNeg(x) != math.Exp(-x) {
			t.Fatalf("cheExactExp path diverged at %v", x)
		}
	}
}

// TestPropertyCheStallTableVsExactClose compares whole Che pricings under
// the table path against the exact math.Exp reference: per-call error below
// 1e-8 relative must stay small through the Newton solve and the stall sum.
func TestPropertyCheStallTableVsExactClose(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		pl := Random(layers, experts, gpus, seed)
		mo := memObjectiveFor(counts, layers, experts, gpus, 2)
		mo.Model = ResidencyChe
		table := mo.StallSeconds(pl)
		cheExactExp = true
		exact := mo.StallSeconds(pl)
		cheExactExp = false
		return math.Abs(table-exact) <= 1e-6*(1+exact)
	}, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

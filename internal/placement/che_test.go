package placement

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/expertmem"
	"repro/internal/rng"
	"repro/internal/topo"
)

func TestParseResidencyModel(t *testing.T) {
	for _, c := range []struct {
		in   string
		want ResidencyModel
	}{{"", ResidencyStatic}, {"static", ResidencyStatic}, {"che", ResidencyChe}} {
		got, err := ParseResidencyModel(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseResidencyModel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseResidencyModel("clock"); err == nil {
		t.Fatal("ParseResidencyModel accepted an unknown model")
	}
}

// cheObjectiveFor builds a Che-model objective for a random instance; with
// prefetchK 0 the coverage discount is off (pure Che).
func cheObjectiveFor(counts [][][]float64, layers, experts, gpus int, oversub float64, prefetchK int) *MemoryObjective {
	cfg := expertmem.ConfigFor(topo.ForGPUs(gpus), layers, experts, 16<<20, oversub,
		expertmem.AffinityPrefetch(), prefetchK, 0, counts)
	mo := NewMemoryObjective(cfg, 0)
	mo.Model = ResidencyChe
	return mo
}

// TestPropertyCheObjectiveBounds pins the Che stall against its provable
// envelope on random instances: at least the static warm-set stall (the
// warm set is the stall-minimizing occupancy vector, so modeling churn can
// only cost more; fetch is uniform here), at most the every-access-misses
// sum, the prefetch-coverage discount only ever reduces it, and it
// collapses to exactly zero when the budget stops binding.
func TestPropertyCheObjectiveBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		pl := Random(layers, experts, gpus, seed^0xC4E)

		static := memObjectiveFor(counts, layers, experts, gpus, 2)
		che := cheObjectiveFor(counts, layers, experts, gpus, 2, 0)
		cheCov := cheObjectiveFor(counts, layers, experts, gpus, 2, 4)
		if !che.Active() {
			return true // tiny instance where the budget does not bind
		}
		full := 0.0 // every access misses: the stall ceiling
		for i := range che.mass {
			full += che.mass[i] * che.fetch[i]
		}
		s := static.StallSeconds(pl)
		c := che.StallSeconds(pl)
		cc := cheCov.StallSeconds(pl)
		tol := 1e-9 * (1 + full)
		if c < s-tol || c > full+tol {
			t.Logf("che %v outside [static %v, full %v]", c, s, full)
			return false
		}
		if cc > c+tol {
			t.Logf("coverage discount increased stall: %v > %v", cc, c)
			return false
		}

		// Budget not binding: exactly zero, bitwise.
		at1x := cheObjectiveFor(counts, layers, experts, gpus, 1, 0)
		return !at1x.Active() && at1x.StallSeconds(pl) == 0
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCheStallShrinksAsBudgetLoosens: widening the slot budget must
// monotonically shrink the Che stall toward zero — the "degenerates as the
// budget stops binding" half of the model contract.
func TestCheStallShrinksAsBudgetLoosens(t *testing.T) {
	counts, _ := memFixture(t, 6, 16, 4, 2, 9)
	pl := Random(6, 16, 4, 9)
	prev := math.Inf(1)
	base := cheObjectiveFor(counts, 6, 16, 4, 4, 0)
	for slots := 1; slots <= base.PerGPU; slots++ {
		mo := *base
		mo.Slots = slots
		cur := mo.StallSeconds(pl)
		if cur > prev+1e-12 {
			t.Fatalf("stall rose from %v to %v at slots %d", prev, cur, slots)
		}
		prev = cur
	}
	if prev != 0 {
		t.Fatalf("stall at a non-binding budget is %v, want exactly 0", prev)
	}
}

func TestCheMemStateIncrementalMatchesFullEval(t *testing.T) {
	counts, _ := memFixture(t, 5, 16, 4, 2, 11)
	mo := cheObjectiveFor(counts, 5, 16, 4, 2, 4)
	if !mo.Active() {
		t.Fatal("fixture must be oversubscribed")
	}
	p := Random(5, 16, 4, 11)
	ms := newCheMemState(mo, p)
	relEq := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
	}
	if full := mo.StallSeconds(p); !relEq(ms.total(), full) {
		t.Fatalf("initial cheMemState total %v != full eval %v", ms.total(), full)
	}
	r := rng.New(99)
	for i := 0; i < 500; i++ {
		j, a, b := r.Intn(5), r.Intn(16), r.Intn(16)
		ga, gb := p.Assign[j][a], p.Assign[j][b]
		if a == b || ga == gb {
			continue
		}
		newGa, newGb := ms.swapCost(j, a, b, ga, gb)
		p.Assign[j][a], p.Assign[j][b] = gb, ga
		ms.apply(j, a, b, ga, gb, newGa, newGb)
		// The incremental path warm-starts its Newton solves from the
		// previous characteristic time; the from-scratch evaluation solves
		// cold. Both converge the bracket to 1e-12 relative, so they agree
		// far inside the 1e-9 tolerance here.
		if full := mo.StallSeconds(p); !relEq(ms.total(), full) {
			t.Fatalf("step %d: incremental total %v != full eval %v", i, ms.total(), full)
		}
	}
}

// TestCheStaticPathBitIdentical: an objective pinned to ResidencyStatic
// must anneal bit-identically to the default (empty) model — the Che
// machinery (coverage oracle, Model field) must not perturb the static
// path's float accumulation or RNG trajectory.
func TestCheStaticPathBitIdentical(t *testing.T) {
	counts, mo := memFixture(t, 8, 32, 4, 2, 7)
	init := Contiguous(8, 32, 4)
	def := Anneal(counts, init, AnnealOptions{Seed: 7, Memory: mo})
	pinned := *mo
	pinned.Model = ResidencyStatic
	got := Anneal(counts, init, AnnealOptions{Seed: 7, Memory: &pinned})
	if !def.Equal(got) {
		t.Fatal("explicit ResidencyStatic diverged from the default model")
	}
	if mo.StallSeconds(def) != pinned.StallSeconds(def) {
		t.Fatal("explicit ResidencyStatic StallSeconds diverged from the default model")
	}
}

func TestCheAwareAnnealReducesCheStall(t *testing.T) {
	counts, _ := memFixture(t, 8, 32, 4, 2, 7)
	mo := cheObjectiveFor(counts, 8, 32, 4, 2, 4)
	if !mo.Active() {
		t.Fatal("fixture must be oversubscribed")
	}
	init := Contiguous(8, 32, 4)
	plain := Anneal(counts, init, AnnealOptions{Seed: 7})
	aware := Anneal(counts, init, AnnealOptions{Seed: 7, Memory: mo})
	if err := aware.Validate(); err != nil {
		t.Fatal(err)
	}
	if mo.Objective(aware, counts) >= mo.Objective(plain, counts) {
		t.Fatalf("che-aware anneal lost its own objective: %v vs %v",
			mo.Objective(aware, counts), mo.Objective(plain, counts))
	}
	if mo.StallSeconds(aware) >= mo.StallSeconds(plain) {
		t.Fatalf("che-aware anneal did not reduce Che stall: %v vs %v",
			mo.StallSeconds(aware), mo.StallSeconds(plain))
	}
	if mo.Objective(aware, counts) > mo.Objective(init, counts)+1e-9 {
		t.Fatal("anneal worsened the blended objective")
	}
}

// TestStagedCheValidAndImproves threads the Che objective through both
// staged stages: the node stage pools slot budgets (group), the GPU stage
// prices the node-local subproblem (restrict), and the result must beat the
// crossing-only staged solve on Che stall.
func TestStagedCheValidAndImproves(t *testing.T) {
	layers, experts := 6, 32
	tp := topo.Wilkes3(2)
	counts, _ := memFixture(t, layers, experts, tp.TotalGPUs(), 2, 5)
	cfg := expertmem.ConfigFor(tp, layers, experts, 16<<20, 2,
		expertmem.AffinityPrefetch(), 4, 0, counts)
	mo := NewMemoryObjective(cfg, 0)
	mo.Model = ResidencyChe

	plain := Staged(counts, layers, experts, tp, 5)
	aware := StagedOpt(counts, layers, experts, tp, 5, StagedOptions{Memory: mo})
	if err := aware.Validate(); err != nil {
		t.Fatal(err)
	}
	if mo.StallSeconds(aware) >= mo.StallSeconds(plain) {
		t.Fatalf("che-aware staged did not reduce Che stall: %v vs %v",
			mo.StallSeconds(aware), mo.StallSeconds(plain))
	}
}
